// Extension experiment 3 — incremental admission under tenant churn.
//
// Ramps a Pareto-lifetime churn workload (workload/churn.h) toward
// SFP_BENCH_CHURN_BOXES logical SFC boxes (default 20,000 for the CI
// smoke tier; nightly sets 1,000,000) and measures the per-arrival
// admission decision latency of the long-lived IncrementalAdmissionLp:
// every arrival appends one column and re-solves via the dual-simplex
// warm restart from the previous optimal basis, so the admit cost is
// proportional to the perturbation, not the committed population.
//
// SLOs (nonzero exit on violation, so CI fails even without the JSON
// diff):
//   * warm-hit rate >= 90% under steady churn at every tier;
//   * warm-vs-cold differential: SFP_BENCH_CHURN_DIFF_TRACES traces
//     (default 3; nightly 200) replayed solving every arrival both
//     incrementally and from scratch must agree on every admit/reject
//     and on the objective within tolerance.
//
// The JSON report carries solver.warm.* plus system.admit.latency.*
// for the top tier; tools/compare_bench_json.py gates the warm-hit
// percentage (abs_min), the differential mismatch count (abs_max 0)
// and the p99 scaling ratio between the top and bottom tiers (abs_max
// — warm admits must not degrade with population).
#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <unordered_map>
#include <vector>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "controlplane/admission_lp.h"
#include "workload/churn.h"

using namespace sfp;

namespace {

std::int64_t EnvInt(const char* name, std::int64_t fallback) {
  if (const char* env = std::getenv(name)) {
    const std::int64_t v = std::atoll(env);
    if (v > 0) return v;
  }
  return fallback;
}

/// Per-row capacities calibrated from a trace: the live demand at the
/// midpoint arrival (assuming every arrival admits), scaled by
/// `scale`. Anchoring to realized demand instead of the analytic
/// steady state guarantees the second half of the trace runs at or
/// above capacity — the heavy-tailed lifetimes make the analytic ramp
/// converge too slowly to saturate short traces.
struct Calibration {
  std::vector<double> stage_capacity;
  double backplane_gbps = 0.0;
};

Calibration CapacityAtMidpoint(const std::vector<workload::ChurnEvent>& trace,
                               const workload::ChurnOptions& churn, double scale) {
  std::vector<double> stage(static_cast<std::size_t>(churn.num_stages), 0.0);
  double backplane = 0.0;
  std::unordered_map<controlplane::IncrementalAdmissionLp::TenantKey,
                     const controlplane::TenantFootprint*>
      live;
  std::int64_t arrivals_seen = 0;
  const std::int64_t midpoint = churn.num_arrivals / 2;
  for (const auto& event : trace) {
    if (event.kind == workload::ChurnEvent::Kind::kArrive) {
      for (const auto& [s, entries] : event.footprint.stage_entries) {
        stage[static_cast<std::size_t>(s)] += entries;
      }
      backplane += event.footprint.BackplaneCharge();
      live.emplace(event.tenant, &event.footprint);
      if (++arrivals_seen == midpoint) break;
    } else if (const auto it = live.find(event.tenant); it != live.end()) {
      for (const auto& [s, entries] : it->second->stage_entries) {
        stage[static_cast<std::size_t>(s)] -= entries;
      }
      backplane -= it->second->BackplaneCharge();
      live.erase(it);
    }
  }
  Calibration cal;
  cal.stage_capacity.reserve(stage.size());
  for (const double demand : stage) cal.stage_capacity.push_back(demand * scale);
  cal.backplane_gbps = backplane * scale;
  return cal;
}

std::uint64_t Percentile(std::vector<std::uint64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0;
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return sorted_ns[std::min(idx, sorted_ns.size() - 1)];
}

struct TierResult {
  std::int64_t boxes = 0;
  std::int64_t population = 0;
  std::int64_t arrivals = 0;
  controlplane::IncrementalAdmissionLp::Counters counters;
  std::uint64_t p50_ns = 0;
  std::uint64_t p99_ns = 0;
  std::uint64_t max_ns = 0;
  double warm_hit_pct = 0.0;
};

// Mean boxes per tenant with chain length U[3, 7].
constexpr double kBoxesPerTenant = 5.0;

TierResult RunTier(std::int64_t boxes, std::uint64_t seed) {
  TierResult result;
  result.boxes = boxes;
  result.population =
      std::max<std::int64_t>(8, static_cast<std::int64_t>(
                                    static_cast<double>(boxes) / kBoxesPerTenant));

  workload::ChurnOptions churn;
  churn.target_population = result.population;
  // Two population turnovers past the ramp-up keeps each tier in
  // steady state for most of its arrivals.
  churn.num_arrivals = 2 * result.population;
  Rng rng(seed);
  const auto trace = workload::GenerateChurnTrace(churn, rng);

  // Capacity = 105% of the midpoint live demand: the second half of
  // the trace (the measurement window) runs at capacity, every
  // decision rides binding rows, and the Pareto bandwidth tail keeps
  // the binding set moving — the regime warm repair must survive.
  const Calibration cal = CapacityAtMidpoint(trace, churn, 1.05);
  controlplane::AdmissionLpOptions lp_options;
  lp_options.stage_capacity = cal.stage_capacity;
  lp_options.backplane_gbps = cal.backplane_gbps;
  controlplane::IncrementalAdmissionLp lp(lp_options);

  const std::size_t warmup_arrivals = static_cast<std::size_t>(result.population);
  std::vector<std::uint64_t> latencies_ns;
  latencies_ns.reserve(trace.size());
  std::size_t arrivals_seen = 0;
  for (const auto& event : trace) {
    if (event.kind == workload::ChurnEvent::Kind::kDepart) {
      lp.Remove(event.tenant);
      continue;
    }
    ++arrivals_seen;
    const auto started = std::chrono::steady_clock::now();
    lp.TryAdmit(event.tenant, event.footprint);
    const auto elapsed = std::chrono::steady_clock::now() - started;
    if (arrivals_seen > warmup_arrivals) {
      latencies_ns.push_back(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    }
  }

  std::sort(latencies_ns.begin(), latencies_ns.end());
  result.arrivals = static_cast<std::int64_t>(arrivals_seen);
  result.counters = lp.counters();
  result.p50_ns = Percentile(latencies_ns, 0.50);
  result.p99_ns = Percentile(latencies_ns, 0.99);
  result.max_ns = latencies_ns.empty() ? 0 : latencies_ns.back();
  result.warm_hit_pct =
      result.counters.warm_attempts > 0
          ? 100.0 * static_cast<double>(result.counters.warm_successes) /
                static_cast<double>(result.counters.warm_attempts)
          : 0.0;
  return result;
}

/// Replays one small tight-capacity trace solving every arrival both
/// warm-incrementally and via the from-scratch cold oracle. Returns the
/// number of disagreements (decision flips or objective divergence).
std::int64_t RunDifferentialTrace(std::uint64_t seed) {
  workload::ChurnOptions churn;
  churn.target_population = 48;
  churn.num_arrivals = 256;
  churn.num_stages = 6;
  Rng rng(seed);
  const auto trace = workload::GenerateChurnTrace(churn, rng);

  // Tight capacity (85% of midpoint demand) forces a reject-heavy mix
  // so the differential exercises both decision branches.
  const Calibration cal = CapacityAtMidpoint(trace, churn, 0.85);
  controlplane::AdmissionLpOptions lp_options;
  lp_options.stage_capacity = cal.stage_capacity;
  lp_options.backplane_gbps = cal.backplane_gbps;
  controlplane::IncrementalAdmissionLp warm(lp_options);

  std::int64_t mismatches = 0;
  for (const auto& event : trace) {
    if (event.kind == workload::ChurnEvent::Kind::kDepart) {
      warm.Remove(event.tenant);
      continue;
    }
    const auto cold = warm.ColdReference(event.tenant, event.footprint);
    const auto live = warm.TryAdmit(event.tenant, event.footprint);
    const double obj_tol = 1e-6 * std::max(1.0, std::abs(cold.objective));
    if (live.admitted != cold.admitted ||
        std::abs(live.objective - cold.objective) > obj_tol ||
        std::abs(live.candidate_value - cold.candidate_value) > 1e-6) {
      ++mismatches;
      std::printf("  differential mismatch (seed %" PRIu64 ", tenant %u): "
                  "warm{admit=%d obj=%.9f x=%.9f} cold{admit=%d obj=%.9f x=%.9f}\n",
                  seed, event.tenant, live.admitted, live.objective,
                  live.candidate_value, cold.admitted, cold.objective,
                  cold.candidate_value);
    }
  }
  return mismatches;
}

}  // namespace

int main() {
  bench::PrintHeader("Ext. 3", "incremental admission under million-tenant churn");
  bench::BenchReport report("ext3_admission_churn",
                            "incremental admission under million-tenant churn");

  const std::int64_t target_boxes = EnvInt("SFP_BENCH_CHURN_BOXES", 20000);
  const std::int64_t diff_traces = EnvInt("SFP_BENCH_CHURN_DIFF_TRACES", 3);

  Table table({"SFC boxes", "population", "arrivals", "admitted", "rejected",
               "warm hit %", "dual it/solve", "p50 admit (ns)", "p99 admit (ns)"});
  std::vector<TierResult> tiers;
  for (const std::int64_t divisor : {8, 4, 2, 1}) {
    const std::int64_t boxes = std::max<std::int64_t>(64, target_boxes / divisor);
    if (!tiers.empty() && tiers.back().boxes == boxes) continue;
    const TierResult tier = RunTier(boxes, /*seed=*/0x5F0C0FFEEULL + tiers.size());
    const double dual_per_solve =
        tier.counters.solves > 0
            ? static_cast<double>(tier.counters.dual_iterations) /
                  static_cast<double>(tier.counters.solves)
            : 0.0;
    table.Row()
        .Add(tier.boxes)
        .Add(tier.population)
        .Add(tier.arrivals)
        .Add(tier.counters.admitted)
        .Add(tier.counters.rejected)
        .Add(tier.warm_hit_pct, 1)
        .Add(dual_per_solve, 2)
        .Add(static_cast<std::int64_t>(tier.p50_ns))
        .Add(static_cast<std::int64_t>(tier.p99_ns));
    tiers.push_back(tier);
  }
  table.Print(std::cout);

  std::int64_t diff_mismatches = 0;
  for (std::int64_t t = 0; t < diff_traces; ++t) {
    diff_mismatches += RunDifferentialTrace(0xC0FFEEULL + static_cast<std::uint64_t>(t));
  }
  std::printf("differential: %lld trace(s), %lld mismatch(es)\n",
              static_cast<long long>(diff_traces),
              static_cast<long long>(diff_mismatches));

  const TierResult& top = tiers.back();
  const TierResult& bottom = tiers.front();
  const double p99_ratio =
      bottom.p99_ns > 0
          ? static_cast<double>(top.p99_ns) / static_cast<double>(bottom.p99_ns)
          : 0.0;
  bench::PrintNote(
      "steady-state admits re-solve from the previous optimal basis via dual "
      "pivots; cost tracks the perturbation, so p99 stays flat as the "
      "committed population grows 8x.");

  // The JSON carries the top tier's counters (the headline scale).
  auto& metrics = report.metrics();
  metrics.GetCounter("churn.boxes.target").Set(static_cast<std::uint64_t>(top.boxes));
  metrics.GetCounter("churn.population").Set(static_cast<std::uint64_t>(top.population));
  metrics.GetCounter("solver.warm.solves")
      .Set(static_cast<std::uint64_t>(top.counters.solves));
  metrics.GetCounter("solver.warm.attempts")
      .Set(static_cast<std::uint64_t>(top.counters.warm_attempts));
  metrics.GetCounter("solver.warm.successes")
      .Set(static_cast<std::uint64_t>(top.counters.warm_successes));
  metrics.GetCounter("solver.warm.hit_pct")
      .Set(static_cast<std::uint64_t>(top.warm_hit_pct));
  metrics.GetCounter("solver.warm.dual_iterations")
      .Set(static_cast<std::uint64_t>(top.counters.dual_iterations));
  metrics.GetCounter("solver.warm.total_iterations")
      .Set(static_cast<std::uint64_t>(top.counters.total_iterations));
  metrics.GetCounter("solver.warm.phase1_iterations")
      .Set(static_cast<std::uint64_t>(top.counters.phase1_iterations));
  metrics.GetCounter("solver.warm.rebuilds")
      .Set(static_cast<std::uint64_t>(top.counters.rebuilds));
  metrics.GetCounter("system.admit.latency.p50_ns").Set(top.p50_ns);
  metrics.GetCounter("system.admit.latency.p99_ns").Set(top.p99_ns);
  metrics.GetCounter("system.admit.latency.max_ns").Set(top.max_ns);
  metrics.GetCounter("churn.p99_scaling_ratio_x100")
      .Set(static_cast<std::uint64_t>(p99_ratio * 100.0));
  metrics.GetCounter("churn.diff.traces").Set(static_cast<std::uint64_t>(diff_traces));
  metrics.GetCounter("churn.diff.mismatches")
      .Set(static_cast<std::uint64_t>(diff_mismatches));

  report.AddTable("admission_churn", table);
  report.AddNote("p99 scaling ratio (top tier / bottom tier): " +
                 FormatDouble(p99_ratio, 2));
  report.Write();

  // SLO assertions — fail the bench (and CI) directly.
  bool ok = true;
  for (const TierResult& tier : tiers) {
    if (tier.warm_hit_pct < 90.0) {
      std::printf("SLO VIOLATION: warm-hit %.1f%% < 90%% at %lld boxes\n",
                  tier.warm_hit_pct, static_cast<long long>(tier.boxes));
      ok = false;
    }
  }
  if (diff_mismatches != 0) {
    std::printf("SLO VIOLATION: %lld warm-vs-cold mismatches\n",
                static_cast<long long>(diff_mismatches));
    ok = false;
  }
  return ok ? 0 : 1;
}
