// Fig. 11 — Runtime update: throughput after re-placement vs drop rate.
//
// Setup per §VI-D: 8 stages, recirculation budget 2, average chain
// length 5, 10 NF types, 20 initially allocated SFCs out of 50
// candidates. Residents are dropped with each rate; the §V-E update
// pins survivors in place and refills from the candidate pool.
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/runtime_update.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

int main() {
  bench::PrintHeader("Fig. 11", "throughput after runtime update vs drop rate");
  const int seeds = bench::NumSeeds();

  Table table({"drop rate", "origin thr (Gbps)", "updated thr (Gbps)", "dropped",
               "residents kept"});

  for (const double rate : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}) {
    double origin_sum = 0, updated_sum = 0;
    int dropped_sum = 0, kept_sum = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(11000 + static_cast<std::uint64_t>(seed) * 31);
      workload::DatasetParams params;
      params.num_sfcs = 50;
      params.num_types = 10;
      SwitchResources sw;
      auto instance = workload::GenerateInstance(params, sw, rng);

      RuntimeUpdateOptions options;
      options.solver.model.max_passes = 3;
      options.solver.only_max_passes = true;
      options.solver.seed = static_cast<std::uint64_t>(seed) + 5;
      RuntimeUpdateManager manager(instance, options);
      manager.PlaceInitial(/*initial_candidates=*/20);
      origin_sum += manager.current().OffloadedGbps(instance);

      Rng drop_rng(static_cast<std::uint64_t>(seed) * 7 + 3);
      dropped_sum += manager.DropRandom(rate, drop_rng);
      kept_sum += static_cast<int>(manager.Residents().size());
      manager.Refill();
      updated_sum += manager.current().OffloadedGbps(instance);
    }
    const double n = seeds;
    table.Row()
        .Add(rate, 1)
        .Add(origin_sum / n, 1)
        .Add(updated_sum / n, 1)
        .Add(static_cast<std::int64_t>(dropped_sum / seeds))
        .Add(static_cast<std::int64_t>(kept_sum / seeds));
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: the updated throughput stays near saturation at every "
      "drop rate and inches up with more drops (394.0 at 0.1 -> 399.8 at "
      "1.0): freed resources admit better candidate combinations.");
  return 0;
}
