// Scenario bench: the builtin tenant_churn scenario (see bench/scn_common.h
// for the report format and docs/SCENARIOS.md for the scenario).
#include "bench/scn_common.h"

int main() {
  return sfp::bench::RunScenarioBench(sfp::scenario::TenantChurnScenario());
}
