// Extension experiment 2 — end-to-end SfpSystem::ProcessBatch
// throughput vs worker threads, with telemetry accounting enabled.
//
// PRs 1/3 parallelized the pipeline itself; this bench measures the
// *system* serve loop, which additionally accounts every packet into
// the per-tenant TelemetryCollector. Two modes per thread count:
//
//   serial — the pre-sharding system path: Pipeline::ProcessBatch
//            followed by a serial per-packet TelemetryCollector::
//            Record loop on the caller (one lock per packet);
//   fused  — SfpSystem::ProcessBatch with the per-worker result sink:
//            each batch worker RecordBatch-es its own shard into the
//            tenant-striped collector while other shards still serve.
//
// Both modes must produce bit-identical per-tenant counters (the
// collector sums latency in fixed-point, so summation order cannot
// matter); the bench verifies this per row and exports
// system.throughput.verified_identical for the CI gate.
//
// The thread rows are the fixed set {1, 2, 4, 8}: the worker pool's
// DefaultParallelism is clamped to 8 by design, and a fixed row set
// keeps the JSON schema machine-independent for the bench-regression
// gate (compare_bench_json.py fails on changed row counts). Traffic
// streams from workload::TrafficSource into one reusable PacketBatch,
// so the generate+serve loop never allocates per packet.
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "workload/traffic.h"

using namespace sfp;

namespace {

constexpr int kTenants = 4;
constexpr int kPackets = 120000;
constexpr int kBatch = 4096;
constexpr int kFlowsPerTenant = 256;

core::SfpSystem MakeTestbedSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.blocks_per_stage = 20;
  config.entries_per_block = 1000;
  config.backplane_gbps = 3200.0;
  core::SfpSystem system(config);
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  return system;
}

dataplane::Sfc TestChain(dataplane::TenantId tenant) {
  dataplane::Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 100.0;
  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  nf::NfConfig lb;
  lb.type = nf::NfType::kLoadBalancer;
  lb.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 100), 80,
                                                  net::Ipv4Address::Of(192, 168, 0, 1)));
  nf::NfConfig tc;
  tc.type = nf::NfType::kClassifier;
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 1));
  nf::NfConfig rt;
  rt.type = nf::NfType::kRouter;
  rt.rules.push_back(nf::Router::Route(0, 0, 1));
  sfc.chain = {fw, lb, tc, rt};
  return sfc;
}

core::SfpSystem MakeLoadedSystem() {
  auto system = MakeTestbedSwitch();
  for (int t = 1; t <= kTenants; ++t) {
    const auto admit = system.AdmitTenant(TestChain(static_cast<dataplane::TenantId>(t)));
    if (!admit.admitted) {
      std::printf("FATAL: tenant %d admission failed: %s\n", t, admit.reason.c_str());
      std::exit(1);
    }
  }
  return system;
}

/// Multi-tenant stream: one deterministic TrafficSource per tenant,
/// interleaved round-robin, refilling the caller's batch in place.
class TenantMix {
 public:
  TenantMix() {
    workload::TrafficSpec spec;
    spec.num_flows = kFlowsPerTenant;
    spec.frame_bytes = 64;
    spec.round_robin_flows = true;
    for (int t = 1; t <= kTenants; ++t) {
      spec.tenant = static_cast<std::uint16_t>(t);
      sources_.emplace_back(spec);
    }
  }

  void Refill(workload::PacketBatch& batch, std::size_t count) {
    batch.packets.resize(count);
    for (std::size_t i = 0; i < count; ++i) {
      batch.packets[i] = sources_[i % sources_.size()].Next();
    }
  }

 private:
  std::vector<workload::TrafficSource> sources_;
};

struct RunResult {
  double mpps = 0.0;
  std::vector<dataplane::TenantCounters> tenants;  // index 0 = tenant 1
  dataplane::TenantCounters total;
};

/// Streams kPackets through `system` in kBatch chunks. serial=true
/// emulates the pre-sharding system path (pipeline batch + serial
/// per-packet Record on the caller); serial=false is the fused
/// SfpSystem::ProcessBatch.
RunResult Run(core::SfpSystem& system, int threads, bool serial) {
  switchsim::BatchOptions options;
  options.num_threads = threads;
  TenantMix mix;
  workload::PacketBatch batch;
  Stopwatch timer;
  for (int off = 0; off < kPackets; off += kBatch) {
    const auto n = static_cast<std::size_t>(std::min(kBatch, kPackets - off));
    mix.Refill(batch, n);
    if (serial) {
      const auto results = system.data_plane().ProcessBatch(batch.View(), options);
      for (std::size_t i = 0; i < n; ++i) {
        system.Telemetry().Record(batch.packets[i].WireBytes(), results[i]);
      }
    } else {
      system.ProcessBatch(batch.View(), options);
    }
  }
  RunResult run;
  run.mpps = kPackets / timer.ElapsedSeconds() / 1e6;
  for (int t = 1; t <= kTenants; ++t) {
    run.tenants.push_back(system.Telemetry().Tenant(static_cast<std::uint16_t>(t)));
  }
  run.total = system.Telemetry().Total();
  return run;
}

/// Bitwise equality of every counter field (doubles compared with ==:
/// the fixed-point collector makes them exactly reproducible).
bool Identical(const dataplane::TenantCounters& a, const dataplane::TenantCounters& b) {
  return a.packets == b.packets && a.bytes == b.bytes && a.drops == b.drops &&
         a.recirculated_packets == b.recirculated_packets &&
         a.total_passes == b.total_passes && a.total_latency_ns == b.total_latency_ns &&
         a.max_latency_ns == b.max_latency_ns;
}

bool Identical(const RunResult& a, const RunResult& b) {
  if (!Identical(a.total, b.total)) return false;
  for (int t = 0; t < kTenants; ++t) {
    if (!Identical(a.tenants[static_cast<std::size_t>(t)],
                   b.tenants[static_cast<std::size_t>(t)])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader("Ext. 2",
                     "system serve throughput vs threads: serial vs fused telemetry");
  bench::BenchReport report("ext2_system_throughput",
                            "SfpSystem::ProcessBatch packets/sec vs worker threads, "
                            "serial-Record vs fused sharded telemetry");

  Table table({"threads", "serial Mpps", "fused Mpps", "fused/serial", "identical"});
  bool all_identical = true;
  double serial_at_8 = 0.0;
  double fused_at_8 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    auto serial_system = MakeLoadedSystem();
    const auto serial = Run(serial_system, threads, /*serial=*/true);
    auto fused_system = MakeLoadedSystem();
    const auto fused = Run(fused_system, threads, /*serial=*/false);
    const bool identical = Identical(serial, fused);
    all_identical &= identical;
    if (threads == 8) {
      serial_at_8 = serial.mpps;
      fused_at_8 = fused.mpps;
    }
    table.Row()
        .Add(static_cast<std::int64_t>(threads))
        .Add(serial.mpps, 2)
        .Add(fused.mpps, 2)
        .Add(fused.mpps / serial.mpps, 2)
        .Add(identical ? "yes" : "NO");
    // Deterministic counter export from one designated run so the
    // gate compares a machine-independent snapshot.
    if (threads == 4) fused_system.ExportMetrics(report.metrics());
  }
  table.Print(std::cout);
  report.AddTable("system_throughput", table);

  std::printf("hardware threads available: %u (worker pool clamps to 8)\n",
              std::thread::hardware_concurrency());
  std::printf("fused/serial at 8 threads: %.2fx\n", fused_at_8 / serial_at_8);
  if (!all_identical) {
    std::printf("FATAL: fused telemetry diverged from the serial reference\n");
    return 1;
  }

  report.metrics().GetCounter("system.throughput.packets").Set(kPackets);
  report.metrics().GetCounter("system.throughput.verified_identical")
      .Set(all_identical ? 1 : 0);
  // Machine-dependent ratio: presence-only in the gate, recorded for
  // EXPERIMENTS.md. Scaled-integer (percent).
  report.metrics().GetCounter("system.throughput.fused_vs_serial_x8_pct")
      .Set(static_cast<std::uint64_t>(fused_at_8 / serial_at_8 * 100.0 + 0.5));
  bench::PrintNote(
      "fused mode records telemetry inside the batch workers against the "
      "tenant-striped collector; counters are verified bit-identical to the "
      "serial per-packet Record reference at every thread count.");
  report.AddNote("thread rows are fixed at {1,2,4,8}; the pool clamps beyond 8.");
  report.Write();
  return 0;
}
