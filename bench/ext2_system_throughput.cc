// Extension experiment 2 — end-to-end SfpSystem::ProcessBatch
// throughput vs worker threads: interpreted vs compiled serving.
//
// PRs 1/3 parallelized the pipeline and PR 5 fused telemetry into the
// batch workers; this PR adds the per-tenant pipeline compiler
// (docs/COMPILER.md). Two modes per thread count:
//
//   interp   — SfpSystem::ProcessBatch on the interpreted pipeline
//              (per-table Apply walk with the flow-decision cache);
//   compiled — the same system with EnableCompiledPlans(): admitted
//              tenants serve from CompiledPlans (SoA rule layout,
//              fused extraction groups, buffered counter deltas).
//
// Both modes must produce bit-identical per-tenant telemetry (the
// collector sums latency in fixed-point, so worker interleaving cannot
// change any total); the bench verifies this per thread row, exits
// nonzero on divergence, and exports
// system.throughput.verified_identical plus the single-thread speedup
// (system.throughput.compiled_vs_interpreted_x1_pct, gated >= 5x by
// tools/compare_bench_json.py) for the CI gate.
//
// The thread rows are the fixed set {1, 2, 4, 8}: the worker pool's
// DefaultParallelism is clamped to 8 by design, and a fixed row set
// keeps the JSON schema machine-independent for the bench-regression
// gate (compare_bench_json.py fails on changed row counts). Traffic is
// pre-generated into per-chunk batches *before* the timer starts, so
// the measured loop serves packets and does nothing else.
#include <algorithm>
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/stopwatch.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "workload/traffic.h"

using namespace sfp;

namespace {

constexpr int kTenants = 4;
constexpr int kPackets = 120000;
constexpr int kBatch = 4096;
constexpr int kFlowsPerTenant = 256;
/// Timed trials per (mode, threads) cell; Mpps is best-of (external
/// contention only ever slows a trial down, so the max is the least
/// noisy estimator on a shared machine). Counters accumulate across
/// trials and the identity check compares the accumulated totals.
constexpr int kTrials = 5;

core::SfpSystem MakeTestbedSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.blocks_per_stage = 20;
  config.entries_per_block = 1000;
  config.backplane_gbps = 3200.0;
  core::SfpSystem system(config);
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  return system;
}

dataplane::Sfc TestChain(dataplane::TenantId tenant) {
  dataplane::Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 100.0;
  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  nf::NfConfig lb;
  lb.type = nf::NfType::kLoadBalancer;
  lb.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 100), 80,
                                                  net::Ipv4Address::Of(192, 168, 0, 1)));
  nf::NfConfig tc;
  tc.type = nf::NfType::kClassifier;
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 1));
  nf::NfConfig rt;
  rt.type = nf::NfType::kRouter;
  rt.rules.push_back(nf::Router::Route(0, 0, 1));
  sfc.chain = {fw, lb, tc, rt};
  return sfc;
}

/// `compiled` turns the plan compiler on *after* all admissions, so
/// every tenant warm-compiles against the final table epochs and the
/// measured loop never recompiles (the counts stay deterministic for
/// the CI gate's exact compiler.* rules).
core::SfpSystem MakeLoadedSystem(bool compiled) {
  auto system = MakeTestbedSwitch();
  for (int t = 1; t <= kTenants; ++t) {
    const auto admit = system.AdmitTenant(TestChain(static_cast<dataplane::TenantId>(t)));
    if (!admit.admitted) {
      std::printf("FATAL: tenant %d admission failed: %s\n", t, admit.reason.c_str());
      std::exit(1);
    }
  }
  if (compiled) system.EnableCompiledPlans();
  return system;
}

/// Multi-tenant stream, pre-generated into kBatch-sized chunks before
/// any timer starts: one deterministic TrafficSource per tenant,
/// interleaved round-robin.
std::vector<workload::PacketBatch> PreGenerate() {
  workload::TrafficSpec spec;
  spec.num_flows = kFlowsPerTenant;
  spec.frame_bytes = 64;
  spec.round_robin_flows = true;
  std::vector<workload::TrafficSource> sources;
  for (int t = 1; t <= kTenants; ++t) {
    spec.tenant = static_cast<std::uint16_t>(t);
    sources.emplace_back(spec);
  }
  std::vector<workload::PacketBatch> batches;
  for (int off = 0; off < kPackets; off += kBatch) {
    const auto n = static_cast<std::size_t>(std::min(kBatch, kPackets - off));
    workload::PacketBatch batch;
    batch.packets.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.packets[i] = sources[i % sources.size()].Next();
    }
    batches.push_back(std::move(batch));
  }
  return batches;
}

struct RunResult {
  double mpps = 0.0;
  std::vector<dataplane::TenantCounters> tenants;  // index 0 = tenant 1
  dataplane::TenantCounters total;
};

/// One timed pass over the pre-generated stream into a reused result
/// buffer; returns the pass's Mpps.
double RunOnce(core::SfpSystem& system, const std::vector<workload::PacketBatch>& batches,
               std::vector<switchsim::ProcessResult>& results, int threads) {
  switchsim::BatchOptions options;
  options.num_threads = threads;
  Stopwatch timer;
  for (const auto& batch : batches) {
    system.ProcessBatchInto(batch.View(), results, options);
  }
  return kPackets / timer.ElapsedSeconds() / 1e6;
}

RunResult Snapshot(core::SfpSystem& system, double mpps) {
  RunResult run;
  run.mpps = mpps;
  for (int t = 1; t <= kTenants; ++t) {
    run.tenants.push_back(system.Telemetry().Tenant(static_cast<std::uint16_t>(t)));
  }
  run.total = system.Telemetry().Total();
  return run;
}

/// Bitwise equality of every counter field (doubles compared with ==:
/// the fixed-point collector makes them exactly reproducible).
bool Identical(const dataplane::TenantCounters& a, const dataplane::TenantCounters& b) {
  return a.packets == b.packets && a.bytes == b.bytes && a.drops == b.drops &&
         a.recirculated_packets == b.recirculated_packets &&
         a.total_passes == b.total_passes && a.total_latency_ns == b.total_latency_ns &&
         a.max_latency_ns == b.max_latency_ns;
}

bool Identical(const RunResult& a, const RunResult& b) {
  if (!Identical(a.total, b.total)) return false;
  for (int t = 0; t < kTenants; ++t) {
    if (!Identical(a.tenants[static_cast<std::size_t>(t)],
                   b.tenants[static_cast<std::size_t>(t)])) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  bench::PrintHeader("Ext. 2",
                     "system serve throughput vs threads: interpreted vs compiled plans");
  bench::BenchReport report("ext2_system_throughput",
                            "SfpSystem::ProcessBatch packets/sec vs worker threads, "
                            "interpreted pipeline vs per-tenant compiled plans");

  const auto batches = PreGenerate();

  Table table({"threads", "interp Mpps", "compiled Mpps", "speedup", "identical"});
  bool all_identical = true;
  double speedup_x1 = 0.0;
  double compiled_x1 = 0.0;
  double compiled_x8 = 0.0;
  for (const int threads : {1, 2, 4, 8}) {
    auto interp_system = MakeLoadedSystem(/*compiled=*/false);
    auto compiled_system = MakeLoadedSystem(/*compiled=*/true);
    // Trials alternate between the two modes so both sample the same
    // time windows — on a shared machine, drift between two back-to-
    // back measurement blocks would otherwise skew the ratio.
    std::vector<switchsim::ProcessResult> results(kBatch);
    double interp_mpps = 0.0;
    double compiled_mpps = 0.0;
    for (int trial = 0; trial < kTrials; ++trial) {
      interp_mpps = std::max(interp_mpps, RunOnce(interp_system, batches, results, threads));
      compiled_mpps =
          std::max(compiled_mpps, RunOnce(compiled_system, batches, results, threads));
    }
    const auto interp = Snapshot(interp_system, interp_mpps);
    const auto compiled = Snapshot(compiled_system, compiled_mpps);
    const bool identical = Identical(interp, compiled);
    all_identical &= identical;
    if (threads == 1) {
      speedup_x1 = compiled.mpps / interp.mpps;
      compiled_x1 = compiled.mpps;
    }
    if (threads == 8) compiled_x8 = compiled.mpps;
    table.Row()
        .Add(static_cast<std::int64_t>(threads))
        .Add(interp.mpps, 2)
        .Add(compiled.mpps, 2)
        .Add(compiled.mpps / interp.mpps, 2)
        .Add(identical ? "yes" : "NO");
    // Deterministic counter export from one designated compiled run so
    // the gate compares a machine-independent snapshot (including the
    // compiler.* rows; docs/METRICS.md).
    if (threads == 4) compiled_system.ExportMetrics(report.metrics());
  }
  table.Print(std::cout);
  report.AddTable("system_throughput", table);

  std::printf("hardware threads available: %u (worker pool clamps to 8)\n",
              std::thread::hardware_concurrency());
  std::printf("compiled/interpreted at 1 thread: %.2fx\n", speedup_x1);
  std::printf("compiled scaling 1 -> 8 threads: %.2fx\n", compiled_x8 / compiled_x1);
  if (!all_identical) {
    std::printf("FATAL: compiled serving diverged from the interpreted reference\n");
    return 1;
  }

  report.metrics().GetCounter("system.throughput.packets").Set(kPackets);
  report.metrics().GetCounter("system.throughput.verified_identical")
      .Set(all_identical ? 1 : 0);
  // Scaled-integer ratios (percent). The single-thread speedup carries
  // the acceptance floor (>= 500 = 5x, gated via abs_min); the 8-thread
  // scaling ratio is machine-dependent and recorded for EXPERIMENTS.md.
  report.metrics().GetCounter("system.throughput.compiled_vs_interpreted_x1_pct")
      .Set(static_cast<std::uint64_t>(speedup_x1 * 100.0 + 0.5));
  report.metrics().GetCounter("system.throughput.compiled_scaling_x8_pct")
      .Set(static_cast<std::uint64_t>(compiled_x8 / compiled_x1 * 100.0 + 0.5));
  bench::PrintNote(
      "compiled mode serves every tenant from a CompiledPlan (SoA rules, fused "
      "extraction groups, buffered counters); telemetry is verified bit-identical "
      "to the interpreted reference at every thread count.");
  report.AddNote("thread rows are fixed at {1,2,4,8}; the pool clamps beyond 8.");
  report.Write();
  return 0;
}
