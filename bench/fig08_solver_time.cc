// Fig. 8 — Execution time of SFP-IP vs SFP-Appro varying the number of
// SFCs (8 stages, recirculation budget 2, average chain length 5).
//
// The paper's claim: the IP runtime grows super-exponentially with L
// (Gurobi there, our branch & bound here) while the LP+rounding
// approximation stays polynomial. SFP-IP runs are capped at
// SFP_BENCH_IP_CAP seconds (default 60) and flagged when they hit it.
//
// On top of the paper sweep this bench calibrates the solver rebuild:
// one uncapped deterministic solve at L=25 on the sparse-LU kernels
// (the default), the same solve on the legacy dense-inverse reference,
// and the same solve with the parallel tree search. The three must
// agree on the optimal objective, and the deterministic node/pivot
// counters become the CI perf gate (tools/compare_bench_json.py).
#include <cmath>
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/approx_solver.h"
#include "controlplane/ilp_solver.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

namespace {

double IpCapSeconds() {
  if (const char* env = std::getenv("SFP_BENCH_IP_CAP")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 60.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 8", "solver execution time vs #SFCs: SFP-IP vs SFP-Appro");
  bench::BenchReport report("fig08_solver_time",
                            "solver execution time vs #SFCs: SFP-IP vs SFP-Appro");
  const double ip_cap = IpCapSeconds();

  Table table({"L", "SFP-IP (s)", "IP status", "SFP-Appro (s)", "IP obj", "Appro obj"});

  // One 50-SFC pool; each L solves its prefix (a growing-candidate
  // sweep as in Fig. 6).
  Rng rng(8000);
  workload::DatasetParams params;
  params.num_sfcs = 50;
  params.num_types = 10;
  SwitchResources sw;
  const auto pool = workload::GenerateInstance(params, sw, rng);

  for (const int L : {5, 10, 15, 20, 25, 30, 40, 50}) {
    auto instance = pool;
    instance.sfcs.resize(static_cast<std::size_t>(L));

    IlpOptions ilp_options;
    ilp_options.model.max_passes = 3;  // recirculation 2
    ilp_options.time_limit_seconds = ip_cap;
    ilp_options.relative_gap = 1e-4;
    auto ilp = SolveIlp(instance, ilp_options);

    ApproxOptions approx_options;
    approx_options.model.max_passes = 3;
    auto approx = SolveApprox(instance, approx_options);

    table.Row()
        .Add(static_cast<std::int64_t>(L))
        .Add(ilp.seconds, 2)
        .Add(lp::ToString(ilp.status))
        .Add(approx.seconds, 2)
        .Add(ilp.objective, 1)
        .Add(approx.objective, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: IP time explodes (they cut it past ~25 SFCs); the "
      "approximation stays polynomial (~70 s at 50 SFCs with Gurobi; ours is "
      "a from-scratch simplex, compare trends not constants).");

  // --- kernel calibration: sparse LU vs dense reference vs parallel ---
  // Uncapped deterministic solves of the L=25 prefix. Counters from the
  // sparse run are the gated CI baseline; wall-clock and the speedup
  // ratio are reported but not gated (machine-dependent).
  {
    auto instance = pool;
    instance.sfcs.resize(25);

    IlpOptions sparse_options;
    sparse_options.model.max_passes = 3;
    sparse_options.relative_gap = 1e-4;
    auto sparse = SolveIlp(instance, sparse_options);

    IlpOptions dense_options = sparse_options;
    dense_options.simplex.use_dense_inverse = true;
    auto dense = SolveIlp(instance, dense_options);

    IlpOptions parallel_options = sparse_options;
    parallel_options.deterministic = false;
    auto parallel = SolveIlp(instance, parallel_options);

    Table calib({"kernel", "time (s)", "status", "objective", "nodes", "pivots"});
    calib.Row()
        .Add("sparse-lu")
        .Add(sparse.seconds, 2)
        .Add(lp::ToString(sparse.status))
        .Add(sparse.objective, 1)
        .Add(sparse.nodes)
        .Add(sparse.pivots);
    calib.Row()
        .Add("dense-ref")
        .Add(dense.seconds, 2)
        .Add(lp::ToString(dense.status))
        .Add(dense.objective, 1)
        .Add(dense.nodes)
        .Add(dense.pivots);
    calib.Row()
        .Add("parallel")
        .Add(parallel.seconds, 2)
        .Add(lp::ToString(parallel.status))
        .Add(parallel.objective, 1)
        .Add(parallel.nodes)
        .Add(parallel.pivots);
    std::printf("\nkernel calibration (uncapped, L=25):\n");
    calib.Print(std::cout);
    const double speedup = sparse.seconds > 0 ? dense.seconds / sparse.seconds : 0.0;
    std::printf("sparse-LU speedup over dense reference: %.1fx\n", speedup);
    report.AddTable("calibration", calib);

    ExportSolverMetrics(sparse, report.metrics(), "solver");
    ExportSolverMetrics(dense, report.metrics(), "solver.dense");
    ExportSolverMetrics(parallel, report.metrics(), "solver.par");
    report.metrics()
        .GetCounter("solver.det.objective_milli")
        .Set(static_cast<std::uint64_t>(std::llround(sparse.objective * 1000.0)));
    report.metrics()
        .GetCounter("solver.par.objective_milli")
        .Set(static_cast<std::uint64_t>(std::llround(parallel.objective * 1000.0)));
    report.metrics()
        .GetCounter("solver.dense.objective_milli")
        .Set(static_cast<std::uint64_t>(std::llround(dense.objective * 1000.0)));
    report.metrics()
        .GetCounter("solver.speedup_pct")
        .Set(static_cast<std::uint64_t>(std::llround(speedup * 100.0)));
  }

  report.AddTable("sweep", table);
  report.AddNote("IP runs capped at SFP_BENCH_IP_CAP seconds; calibration solves uncapped");
  report.Write();
  return 0;
}
