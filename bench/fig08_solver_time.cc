// Fig. 8 — Execution time of SFP-IP vs SFP-Appro varying the number of
// SFCs (8 stages, recirculation budget 2, average chain length 5).
//
// The paper's claim: the IP runtime grows super-exponentially with L
// (Gurobi there, our branch & bound here) while the LP+rounding
// approximation stays polynomial. SFP-IP runs are capped at
// SFP_BENCH_IP_CAP seconds (default 60) and flagged when they hit it.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/approx_solver.h"
#include "controlplane/ilp_solver.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

namespace {

double IpCapSeconds() {
  if (const char* env = std::getenv("SFP_BENCH_IP_CAP")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 60.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 8", "solver execution time vs #SFCs: SFP-IP vs SFP-Appro");
  const double ip_cap = IpCapSeconds();

  Table table({"L", "SFP-IP (s)", "IP status", "SFP-Appro (s)", "IP obj", "Appro obj"});

  // One 50-SFC pool; each L solves its prefix (a growing-candidate
  // sweep as in Fig. 6).
  Rng rng(8000);
  workload::DatasetParams params;
  params.num_sfcs = 50;
  params.num_types = 10;
  SwitchResources sw;
  const auto pool = workload::GenerateInstance(params, sw, rng);

  for (const int L : {5, 10, 15, 20, 25, 30, 40, 50}) {
    auto instance = pool;
    instance.sfcs.resize(static_cast<std::size_t>(L));

    IlpOptions ilp_options;
    ilp_options.model.max_passes = 3;  // recirculation 2
    ilp_options.time_limit_seconds = ip_cap;
    ilp_options.relative_gap = 1e-4;
    auto ilp = SolveIlp(instance, ilp_options);

    ApproxOptions approx_options;
    approx_options.model.max_passes = 3;
    auto approx = SolveApprox(instance, approx_options);

    table.Row()
        .Add(static_cast<std::int64_t>(L))
        .Add(ilp.seconds, 2)
        .Add(lp::ToString(ilp.status))
        .Add(approx.seconds, 2)
        .Add(ilp.objective, 1)
        .Add(approx.objective, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: IP time explodes (they cut it past ~25 SFCs); the "
      "approximation stays polynomial (~70 s at 50 SFCs with Gurobi; ours is "
      "a from-scratch simplex, compare trends not constants).");
  return 0;
}
