// Fig. 6 — Throughput and resource utilization varying the number of
// SFC candidates L (10..50): SFP vs SFP-without-consolidation
// ("Baseline", eq. 25 memory accounting).
//
// Setup per §VI-C: 8 stages x 20 blocks x 1000 entries, 400 Gbps
// backplane, I=10 NF types, average chain length 5, recirculation
// budget 3 (4 passes). Numbers are means over SFP_BENCH_SEEDS datasets.
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/approx_solver.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

int main() {
  bench::PrintHeader("Fig. 6",
                     "throughput + block/entry utilization vs #SFCs (consolidation "
                     "ablation)");
  const int seeds = bench::NumSeeds();

  Table table({"L", "SFP thr (Gbps)", "Base thr (Gbps)", "SFP blocks", "Base blocks",
               "SFP entries", "Base entries"});

  // One candidate pool per seed; each L takes its prefix, so the series
  // is a growing-candidate sweep rather than independent redraws.
  std::vector<controlplane::PlacementInstance> pools;
  for (int seed = 0; seed < seeds; ++seed) {
    Rng rng(1000 + static_cast<std::uint64_t>(seed) * 17);
    workload::DatasetParams params;
    params.num_sfcs = 50;
    params.num_types = 10;
    SwitchResources sw;  // §VI-C defaults
    pools.push_back(workload::GenerateInstance(params, sw, rng));
  }

  for (const int L : {10, 15, 20, 25, 30, 40, 50}) {
    double sfp_thr = 0, base_thr = 0, sfp_blocks = 0, base_blocks = 0, sfp_entries = 0,
           base_entries = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      auto instance = pools[static_cast<std::size_t>(seed)];
      instance.sfcs.resize(static_cast<std::size_t>(L));

      ApproxOptions sfp_options;
      sfp_options.model.max_passes = 4;  // recirculation budget 3
      sfp_options.model.memory_model = MemoryModel::kConsolidated;
      sfp_options.only_max_passes = true;
      sfp_options.seed = static_cast<std::uint64_t>(seed) + 1;
      auto sfp = SolveApprox(instance, sfp_options);

      ApproxOptions base_options = sfp_options;
      base_options.model.memory_model = MemoryModel::kPerLogicalNf;
      auto base = SolveApprox(instance, base_options);

      sfp_thr += sfp.solution.OffloadedGbps(instance);
      base_thr += base.solution.OffloadedGbps(instance);
      sfp_blocks += sfp.solution.AvgBlockUtilization(instance, MemoryModel::kConsolidated);
      base_blocks += base.solution.AvgBlockUtilization(instance, MemoryModel::kPerLogicalNf);
      sfp_entries += sfp.solution.AvgEntryUtilization(instance);
      base_entries += base.solution.AvgEntryUtilization(instance);
    }
    const double n = seeds;
    table.Row()
        .Add(static_cast<std::int64_t>(L))
        .Add(sfp_thr / n, 1)
        .Add(base_thr / n, 1)
        .Add(sfp_blocks / n, 1)
        .Add(base_blocks / n, 1)
        .Add(sfp_entries / n, 1)
        .Add(base_entries / n, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: blocks saturate at B=20 by L~15; throughput keeps growing "
      "with L; SFP edges out the no-consolidation baseline in throughput and "
      "entry utilization (internal fragmentation).");
  return 0;
}
