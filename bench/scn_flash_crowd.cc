// Scenario bench: the builtin flash_crowd scenario (see bench/scn_common.h
// for the report format and docs/SCENARIOS.md for the scenario).
#include "bench/scn_common.h"

int main() {
  return sfp::bench::RunScenarioBench(sfp::scenario::FlashCrowdScenario());
}
