// Scenario bench: the builtin flash_crowd scenario (see bench/scn_common.h
// for the report format and docs/SCENARIOS.md for the scenario), plus an
// admit-horizon sweep for cross-tenant pass co-scheduling (DESIGN.md
// "Cross-tenant pass sharing").
//
// The sweep admits the engineered 50-tenant population of
// bench/xt_population.h into twin planes — per-tenant packing vs the
// stage-window co-scheduler — and counts how many tenants each plane
// sustains before the aggregate recirculation demand
// (sum of (passes - 1) x bandwidth) exceeds a 25 Gbps recirculation
// port, the flash-crowd admission question in miniature: folded
// tenants charge the port, single-pass tenants don't. The builtin
// scenario run is byte-identical to before the sweep existed; all
// sweep counters live under scenario.xt.*.
#include "bench/scn_common.h"
#include "bench/xt_population.h"

namespace {

/// Recirculation port budget for the sweep, matching the flash-crowd
/// scenario's switch (25 Gbps).
constexpr double kRecircPortGbps = 25.0;
constexpr double kTenantBandwidthGbps = 2.0;

/// Admits the population in order and returns the number of tenants
/// admitted before aggregate recirculation demand first exceeded the
/// port budget (the "admit horizon"; 50 when it never does).
int AdmitHorizon(bool cross_tenant) {
  auto plane = sfp::bench::xt::MakeXtPlane(cross_tenant);
  const auto population = sfp::bench::xt::BuildXtPopulation(kTenantBandwidthGbps);
  double demand_gbps = 0.0;
  int horizon = 0;
  bool overloaded = false;
  for (const auto& sfc : population) {
    const auto result = plane.AllocateSfc(sfc);
    if (!result.ok) break;
    demand_gbps += static_cast<double>(result.passes - 1) * sfc.bandwidth_gbps;
    if (overloaded) continue;
    if (demand_gbps > kRecircPortGbps) {
      overloaded = true;
    } else {
      ++horizon;
    }
  }
  return horizon;
}

void AddAdmitHorizonSeries(sfp::bench::BenchReport& report) {
  const int per_tenant = AdmitHorizon(/*cross_tenant=*/false);
  const int cross_tenant = AdmitHorizon(/*cross_tenant=*/true);

  sfp::Table table({"planner", "admit horizon (tenants)"});
  table.Row().Add("per-tenant packed").Add(static_cast<std::int64_t>(per_tenant));
  table.Row().Add("cross-tenant co-scheduled").Add(static_cast<std::int64_t>(cross_tenant));
  table.Print(std::cout);
  sfp::bench::PrintNote(
      "tenants sustained before aggregate recirculation demand exceeds the "
      "25 Gbps recirculation port: co-scheduling folds fewer tenants, so the "
      "flash crowd admits further before overload.");
  report.AddTable("xt_admit_horizon", table);

  auto& metrics = report.metrics();
  metrics.GetCounter("scenario.xt.admit_horizon.per_tenant")
      .Set(static_cast<std::uint64_t>(per_tenant));
  metrics.GetCounter("scenario.xt.admit_horizon.cross_tenant")
      .Set(static_cast<std::uint64_t>(cross_tenant));
  const std::uint64_t gain_pct =
      per_tenant > 0 && cross_tenant > per_tenant
          ? static_cast<std::uint64_t>(100 * (cross_tenant - per_tenant) / per_tenant)
          : 0;
  metrics.GetCounter("scenario.xt.admit_horizon_gain_pct").Set(gain_pct);
}

}  // namespace

int main() {
  return sfp::bench::RunScenarioBench(sfp::scenario::FlashCrowdScenario(),
                                      AddAdmitHorizonSeries);
}
