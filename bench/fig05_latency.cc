// Fig. 5 — Processing latency of SFP, software (DPDK) SFC, and
// SFP-Recir (the same 4 NFs applied one per pass over 4 passes).
//
// Latencies are measured by pushing real frames of each size through
// the switch simulator (SFP, SFP-Recir) and from the calibrated server
// model (DPDK). Paper's measured points: SFP ~= 341 ns, DPDK ~= 1151
// ns, SFP-Recir ~= SFP + 35 ns.
#include <algorithm>
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/sfp_system.h"
#include "workload/traffic.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "serversim/server_model.h"
#include "sim/event_sim.h"

using namespace sfp;

namespace {

nf::NfConfig Fw() {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  return config;
}
nf::NfConfig Lb() {
  nf::NfConfig config;
  config.type = nf::NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 100),
                                                      80,
                                                      net::Ipv4Address::Of(192, 168, 0, 1)));
  return config;
}
nf::NfConfig Tc() {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 1));
  return config;
}
nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

switchsim::SwitchConfig Testbed() {
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.backplane_gbps = 3200.0;
  return config;
}

/// Mean measured latency of the tenant chain over frames of each size.
/// Every sample is also observed into `histogram` when non-null.
/// Frames stream from a TrafficSource into one reusable PacketBatch
/// (no per-packet allocation in the measure loop).
sim::LatencyStats MeasureSwitch(core::SfpSystem& system, int expected_passes,
                                common::metrics::Histogram* histogram = nullptr) {
  sim::LatencyStats stats;
  workload::PacketBatch batch;
  for (const int size : {64, 128, 256, 512, 1024, 1500}) {
    workload::TrafficSpec spec;
    spec.tenant = 1;
    spec.num_flows = 200;
    spec.frame_bytes = size;
    spec.round_robin_flows = true;
    workload::TrafficSource source(spec);
    source.Refill(batch, 100);
    for (const auto& packet : batch.packets) {
      const auto out = system.Process(packet);
      if (out.meta.dropped || out.passes != expected_passes) {
        std::printf("FATAL: unexpected path (dropped=%d passes=%d)\n", out.meta.dropped,
                    out.passes);
        std::exit(1);
      }
      stats.Add(out.latency_ns);
      if (histogram != nullptr) histogram->Observe(out.latency_ns);
    }
  }
  return stats;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 5", "processing latency of SFP, DPDK SFC, and SFP-Recir");
  bench::BenchReport report("fig05_latency",
                            "processing latency of SFP, DPDK SFC, and SFP-Recir");

  // SFP: the 4-NF chain in pipeline order — one pass.
  core::SfpSystem in_order(Testbed());
  in_order.ProvisionPhysical({{nf::NfType::kFirewall},
                              {nf::NfType::kLoadBalancer},
                              {nf::NfType::kClassifier},
                              {nf::NfType::kRouter}});
  dataplane::Sfc chain;
  chain.tenant = 1;
  chain.bandwidth_gbps = 100;
  chain.chain = {Fw(), Lb(), Tc(), Rt()};
  if (!in_order.AdmitTenant(chain).admitted) return 1;
  auto& sfp_hist = report.metrics().GetHistogram(
      "latency.sfp_ns", common::metrics::ExponentialBounds(64, 2, 8));
  const auto sfp = MeasureSwitch(in_order, /*expected_passes=*/1, &sfp_hist);

  // SFP-Recir: same NFs, physical layout reversed so every NF lands in
  // its own pass (4 passes, 3 recirculations) — the §VI-C experiment
  // "in each pipeline pass-through we apply only one NF".
  core::SfpSystem reversed(Testbed());
  reversed.ProvisionPhysical({{nf::NfType::kRouter},
                              {nf::NfType::kClassifier},
                              {nf::NfType::kLoadBalancer},
                              {nf::NfType::kFirewall}});
  if (!reversed.AdmitTenant(chain).admitted) return 1;
  auto& recir_hist = report.metrics().GetHistogram(
      "latency.sfp_recir_ns", common::metrics::ExponentialBounds(64, 2, 8));
  const auto recir = MeasureSwitch(reversed, /*expected_passes=*/4, &recir_hist);

  serversim::ServerSfc dpdk{serversim::ServerConfig{}, serversim::DefaultChain()};

  Table table({"system", "mean (ns)", "min (ns)", "max (ns)", "paper (ns)"});
  table.Row().Add("SFP").Add(sfp.Mean(), 1).Add(sfp.Min(), 1).Add(sfp.Max(), 1).Add(
      "341");
  table.Row()
      .Add("SFP-Recir (4 passes)")
      .Add(recir.Mean(), 1)
      .Add(recir.Min(), 1)
      .Add(recir.Max(), 1)
      .Add("~376 (=341+35)");
  table.Row()
      .Add("DPDK SFC")
      .Add(dpdk.PacketLatencyNs(), 1)
      .Add(dpdk.PacketLatencyNs(), 1)
      .Add(dpdk.PacketLatencyNs(), 1)
      .Add("1151");
  table.Print(std::cout);
  report.AddTable("latency", table);

  std::printf("\nrecirculation overhead: %.1f ns for 3 recirculations (paper: ~35 ns)\n",
              recir.Mean() - sfp.Mean());
  std::printf("SFP / DPDK latency ratio: %.2fx (paper: ~0.3x)\n",
              sfp.Mean() / dpdk.PacketLatencyNs());
  bench::PrintNote(
      "latency tracks the SFC's processing complexity, not the recirculation "
      "count — the paper's Fig. 5 conclusion, structural in the timing model.");

  in_order.ExportMetrics(report.metrics());
  report.AddNote("SFP-Recir = same 4 NFs, one per pass (3 recirculations).");
  report.Write();
  return 0;
}
