// Fig. 9 — Early-terminated SFP-IP: objective quality vs solver time
// limit, L=25 SFCs.
//
// The paper tunes Gurobi's time limit: at 5 s it has no solution, at
// 10 s it is near-optimal, and it reaches the optimum threshold by
// ~30 s. We run our branch & bound once with the rounding heuristic
// disabled (mirroring a raw MIP warm-up) and once with it, record the
// incumbent trace, and report the objective available at each time
// limit, alongside SFP-Appro as the reference.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/approx_solver.h"
#include "controlplane/ilp_solver.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

namespace {

/// Best incumbent available at `limit` seconds from a trace.
double ObjectiveAt(const std::vector<lp::IncumbentEvent>& trace, double limit) {
  double best = 0.0;
  for (const auto& event : trace) {
    if (event.seconds <= limit) best = event.objective;
  }
  return best;
}

/// Solver horizon: SFP_BENCH_IP_CAP seconds (default 60).
double HorizonSeconds() {
  if (const char* env = std::getenv("SFP_BENCH_IP_CAP")) {
    const double v = std::atof(env);
    if (v > 0) return v;
  }
  return 60.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 9", "early-terminated SFP-IP: objective vs runtime limit");
  bench::BenchReport report("fig09_early_stop",
                            "early-terminated SFP-IP: objective vs runtime limit");

  Rng rng(9000);
  workload::DatasetParams params;
  params.num_sfcs = 25;
  params.num_types = 10;
  SwitchResources sw;
  auto instance = workload::GenerateInstance(params, sw, rng);

  const double horizon = HorizonSeconds();
  // "Leaf-guided": incumbents only once the physical layout and chain
  // selection go integral in the tree — the closest analogue of a raw
  // MIP solver's warm-up (a truly heuristic-free B&B finds nothing at
  // this size; Gurobi's warm-up sits between the two series).
  IlpOptions raw_options;
  raw_options.model.max_passes = 3;
  raw_options.time_limit_seconds = horizon;
  raw_options.use_rounding_heuristic = true;
  raw_options.heuristic_period = 0;  // threshold-triggered only
  raw_options.root_burst = false;    // expose the raw warm-up
  auto raw = SolveIlp(instance, raw_options);

  IlpOptions heur_options = raw_options;
  heur_options.heuristic_period = 25;
  heur_options.root_burst = true;
  auto heur = SolveIlp(instance, heur_options);

  ApproxOptions approx_options;
  approx_options.model.max_passes = 3;
  auto approx = SolveApprox(instance, approx_options);

  Table table({"time limit (s)", "IP leaf-guided obj", "IP+heuristic obj", "% of best bound"});
  const double reference = std::max({raw.best_bound, heur.best_bound, 1e-9});
  for (const double limit : {5.0, 10.0, 15.0, 20.0, 30.0, 45.0, 60.0}) {
    const double raw_at = ObjectiveAt(raw.incumbent_trace, limit);
    const double heur_at = ObjectiveAt(heur.incumbent_trace, limit);
    table.Row()
        .Add(limit, 0)
        .Add(raw_at, 1)
        .Add(heur_at, 1)
        .Add(100.0 * std::max(raw_at, heur_at) / reference, 1);
  }
  table.Print(std::cout);

  std::printf("\nIP dual bound: %.1f (raw status: %s); SFP-Appro: %.1f in %.1f s\n",
              reference, lp::ToString(raw.status), approx.objective, approx.seconds);
  bench::PrintNote(
      "paper shape: nothing at the smallest limit, near-optimal shortly "
      "after, optimal plateau by ~30 s; early-terminated IP rivals the "
      "approximation as a practical strategy.");

  report.AddTable("early_stop", table);
  // Gap-over-time lives in the solver.*.gap_pct histograms (incumbent
  // counts are timing-dependent, so a trace table would not have a
  // stable row count for the CI gate).
  ExportSolverMetrics(raw, report.metrics(), "solver.leaf");
  ExportSolverMetrics(heur, report.metrics(), "solver.heur");
  report.AddNote("horizon = SFP_BENCH_IP_CAP seconds (default 60); traces use the "
                 "deterministic tree search so reruns reproduce them");
  report.Write();
  return 0;
}
