// Extension experiment 1 — tenant latency under egress load.
//
// Beyond the paper's unloaded latency microbenchmark (Fig. 5), this
// harness measures queueing delay when the classifier's flow classes
// feed a strict-priority egress port: a premium tenant (high class)
// keeps flat latency while a best-effort tenant ramps from light load
// to 1.6x oversubscription and absorbs all queueing and loss.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "switchsim/egress.h"
#include "workload/traffic.h"

using namespace sfp;

namespace {

nf::NfConfig Classify(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

}  // namespace

int main() {
  bench::PrintHeader("Ext. 1", "per-tenant latency under egress load (priority classes)");
  bench::BenchReport report("ext1_latency_under_load",
                            "per-tenant latency under egress load (priority classes)");

  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kClassifier}});
  dataplane::Sfc premium;
  premium.tenant = 1;
  premium.bandwidth_gbps = 10;
  premium.chain = {Classify(2)};
  dataplane::Sfc best_effort;
  best_effort.tenant = 2;
  best_effort.bandwidth_gbps = 60;
  best_effort.chain = {Classify(1)};
  if (!system.AdmitTenant(premium).admitted || !system.AdmitTenant(best_effort).admitted) {
    return 1;
  }

  const double port_gbps = 100.0;
  Table table({"BE offered (Gbps)", "total offered", "premium mean wait (ns)",
               "premium max wait (ns)", "BE mean wait (ns)", "BE drop %"});
  // Fixed-size single-flow streams per tenant (the chain classifies by
  // port range, so only tenant tag and frame size matter): packets
  // come from TrafficSource by value — no heap churn in the load loop.
  workload::TrafficSpec premium_spec;
  premium_spec.tenant = 1;
  premium_spec.frame_bytes = 500;
  premium_spec.round_robin_flows = true;
  workload::TrafficSpec be_spec;
  be_spec.tenant = 2;
  be_spec.frame_bytes = 1500;
  be_spec.round_robin_flows = true;
  for (const double be_gbps : {20.0, 50.0, 80.0, 95.0, 110.0, 130.0, 160.0}) {
    switchsim::EgressPort port(3, port_gbps, 150 * 1000);
    workload::TrafficSource premium_source(premium_spec);
    workload::TrafficSource be_source(be_spec);
    const double horizon_ns = 400e3;
    const double premium_gap = 500 * 8.0 / 10.0;
    const double be_gap = 1500 * 8.0 / be_gbps;
    double tp = 0, tb = 0;
    while (tp < horizon_ns || tb < horizon_ns) {
      const bool premium_next = tp <= tb;
      const double t = premium_next ? tp : tb;
      const std::uint32_t size = premium_next ? 500 : 1500;
      const auto packet = premium_next ? premium_source.Next() : be_source.Next();
      auto out = system.Process(packet);
      port.Enqueue(t, size, out.meta.flow_class);
      (premium_next ? tp : tb) += premium_next ? premium_gap : be_gap;
    }
    port.DrainAll();
    port.TakeDepartures();
    const auto& be = port.stats(1);
    const double be_drop_pct =
        100.0 * static_cast<double>(be.dropped) /
        std::max<std::uint64_t>(1, be.enqueued + be.dropped);
    table.Row()
        .Add(be_gbps, 0)
        .Add(be_gbps + 10.0, 0)
        .Add(port.stats(2).MeanWaitNs(), 1)
        .Add(port.stats(2).max_wait_ns, 1)
        .Add(be.MeanWaitNs(), 1)
        .Add(be_drop_pct, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "strict priority isolates the premium tenant: its wait stays ~0 at any "
      "best-effort load, while best-effort queueing and loss grow past the "
      "port's saturation point (~90 Gbps residual).");
  report.AddTable("latency_under_load", table);
  system.ExportMetrics(report.metrics());
  report.Write();
  return 0;
}
