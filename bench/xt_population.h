// Engineered 50-tenant population for the cross-tenant pass
// co-scheduling benches (DESIGN.md "Cross-tenant pass sharing"):
// fig07_recirculation's xt series and scn_flash_crowd's admit-horizon
// sweep both admit this population, so their numbers describe the same
// workload.
//
// The population reproduces the capacity-coupling failure mode the
// co-scheduler targets. The 8-stage plane hosts two firewall
// instances (s1 and s6). 35 "ordered" tenants carry a src-matching
// firewall that MUST precede their NAT (NAT rewrites the source
// address the firewall matches), so a single-pass layout needs the
// s1 instance — the s6 instance sits after the only NAT (s3).
// 15 "unordered" tenants carry a port-matching firewall with no
// ordering constraint at all; either instance works for them. Under
// per-tenant packing (PR 9), the earliest-stage greedy sends the
// unordered firewalls to s1 too, exhausting its table budget and
// folding later ordered tenants into a second pass. The co-scheduler
// steers the successor-free unordered firewalls to s6, keeping s1
// free for the chains that need it — every tenant then fits one pass.
//
// Everything is deterministic: fixed chain templates cycled by tenant
// index, fixed interleaved admission order, no RNG. Chain lengths mix
// 2..6 NFs via classifier/router/load-balancer pads chosen so no pad
// introduces an ordering edge that would change the fold analysis.
#pragma once

#include <cstdint>
#include <vector>

#include "dataplane/data_plane.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/router.h"

namespace sfp::bench::xt {

/// Stage layout: s0 TC, s1 FW, s2 RT, s3 NAT, s4 LB, s5 TC, s6 FW,
/// s7 LB. One table block per stage so the s1 firewall budget binds.
constexpr int kNumStages = 8;
constexpr int kEntriesPerBlock = 320;
constexpr int kNumTenants = 50;

/// Builds the 8-stage plane. nf_parallelism is always on (the
/// per-tenant packed planner is the comparison baseline);
/// `cross_tenant` toggles the co-scheduler.
inline dataplane::DataPlane MakeXtPlane(bool cross_tenant) {
  switchsim::SwitchConfig config;
  config.num_stages = kNumStages;
  config.blocks_per_stage = 1;
  config.entries_per_block = kEntriesPerBlock;
  config.nf_parallelism = true;
  config.cross_tenant_packing = cross_tenant;
  dataplane::DataPlane plane(config);
  plane.InstallPhysicalNf(0, nf::NfType::kClassifier);
  plane.InstallPhysicalNf(1, nf::NfType::kFirewall);
  plane.InstallPhysicalNf(2, nf::NfType::kRouter);
  plane.InstallPhysicalNf(3, nf::NfType::kNat);
  plane.InstallPhysicalNf(4, nf::NfType::kLoadBalancer);
  plane.InstallPhysicalNf(5, nf::NfType::kClassifier);
  plane.InstallPhysicalNf(6, nf::NfType::kFirewall);
  plane.InstallPhysicalNf(7, nf::NfType::kLoadBalancer);
  return plane;
}

namespace detail {

/// Src-ternary firewall, 8 rules (9 entries with the catch-all): reads
/// the source address NAT rewrites, so it is ordered before the NAT.
inline nf::NfConfig OrderedFw(int tenant_index) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  const auto base = 0x0A000000u + (static_cast<std::uint32_t>(tenant_index) << 12);
  for (int r = 0; r < 8; ++r) {
    config.rules.push_back(nf::Firewall::Deny(
        switchsim::FieldMatch::Ternary(base + (static_cast<std::uint32_t>(r) << 8),
                                       0xFFFFFF00),
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Range(443, 443), switchsim::FieldMatch::Any()));
  }
  return config;
}

/// Port-range firewall, 20 rules (21 entries): no field overlap with
/// any other NF in the population, so it is successor-free.
inline nf::NfConfig UnorderedFw(int tenant_index) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  const auto lo = static_cast<std::uint16_t>(7000 + tenant_index * 32);
  for (int r = 0; r < 20; ++r) {
    const auto port = static_cast<std::uint16_t>(lo + r);
    config.rules.push_back(nf::Firewall::Deny(
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(port, port),
        switchsim::FieldMatch::Any()));
  }
  return config;
}

inline nf::NfConfig Tc(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

inline nf::NfConfig Nat(int tenant_index) {
  nf::NfConfig config;
  config.type = nf::NfType::kNat;
  config.rules.push_back(
      nf::Nat::Translate(net::Ipv4Address::Of(10, static_cast<std::uint8_t>(tenant_index), 2, 3),
                         net::Ipv4Address::Of(203, 0, 113, 7)));
  return config;
}

inline nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

inline nf::NfConfig Lb(int tenant_index) {
  nf::NfConfig config;
  config.type = nf::NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(
      net::Ipv4Address::Of(10, 0, 0, static_cast<std::uint8_t>(100 + (tenant_index % 100))),
      80, net::Ipv4Address::Of(192, 168, 0, 2)));
  return config;
}

}  // namespace detail

/// The 50 SFCs in admission order: positions with i % 10 < 3 are
/// unordered tenants (15 total), the rest ordered (35). The interleave
/// fixes exactly which ordered tenants fold under per-tenant packing,
/// making the aggregate pass counts single-valued. Tenant IDs are
/// 1-based admission positions; every tenant demands `bandwidth_gbps`.
inline std::vector<dataplane::Sfc> BuildXtPopulation(double bandwidth_gbps) {
  std::vector<dataplane::Sfc> population;
  population.reserve(kNumTenants);
  int ordered = 0, unordered = 0;
  for (int i = 0; i < kNumTenants; ++i) {
    dataplane::Sfc sfc;
    sfc.tenant = static_cast<dataplane::TenantId>(i + 1);
    sfc.bandwidth_gbps = bandwidth_gbps;
    using namespace detail;
    if (i % 10 < 3) {
      // Unordered tenant, chain length cycles 2..5.
      switch (unordered++ % 4) {
        case 0: sfc.chain = {UnorderedFw(i), Tc(1)}; break;
        case 1: sfc.chain = {UnorderedFw(i), Tc(1), Rt()}; break;
        case 2: sfc.chain = {UnorderedFw(i), Tc(1), Lb(i), Tc(2)}; break;
        default: sfc.chain = {UnorderedFw(i), Tc(1), Lb(i), Tc(2), Lb(i + 1)}; break;
      }
    } else {
      // Ordered tenant (firewall-before-NAT), chain length cycles 2..6.
      switch (ordered++ % 5) {
        case 0: sfc.chain = {OrderedFw(i), Nat(i)}; break;
        case 1: sfc.chain = {Tc(1), OrderedFw(i), Nat(i)}; break;
        case 2: sfc.chain = {Tc(1), OrderedFw(i), Nat(i), Rt()}; break;
        case 3: sfc.chain = {Tc(1), OrderedFw(i), Nat(i), Rt(), Tc(2)}; break;
        default: sfc.chain = {Tc(1), OrderedFw(i), Nat(i), Lb(i), Tc(2), Lb(i + 1)}; break;
      }
    }
    population.push_back(std::move(sfc));
  }
  return population;
}

}  // namespace sfp::bench::xt
