// Fig. 10 — Objective throughput of SFP-IP, SFP-Appro and the greedy
// baseline varying the number of candidate SFCs (10..60).
//
// Setup per §VI-C: 8 stages, recirculation budget 2, 10 NF types,
// average chain length 5, 400 Gbps backplane. SFP-IP is time-capped
// (SFP_BENCH_IP_CAP/2 per point, default 30 s) with the rounding
// heuristic on, so it reports its best incumbent — the paper's story
// (IP >= Appro >= Greedy, saturating near the backplane capacity with
// enough candidates) is about those incumbents.
#include <cstdlib>
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/approx_solver.h"
#include "controlplane/greedy_solver.h"
#include "controlplane/ilp_solver.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

namespace {

double IpCapSeconds() {
  if (const char* env = std::getenv("SFP_BENCH_IP_CAP")) {
    const double v = std::atof(env);
    if (v > 0) return v / 2;
  }
  return 30.0;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 10", "throughput of SFP-IP vs SFP-Appro vs Greedy");
  bench::BenchReport report("fig10_algorithms",
                            "throughput of SFP-IP vs SFP-Appro vs Greedy");
  const double ip_cap = IpCapSeconds();

  Table table({"L", "SFP-IP thr", "Appro thr", "Greedy thr", "IP obj", "Appro obj",
               "Greedy obj"});
  Rng rng(10000);
  workload::DatasetParams params;
  params.num_sfcs = 60;
  params.num_types = 10;
  SwitchResources sw;
  const auto pool = workload::GenerateInstance(params, sw, rng);

  for (const int L : {10, 20, 30, 40, 50, 60}) {
    auto instance = pool;
    instance.sfcs.resize(static_cast<std::size_t>(L));

    IlpOptions ilp_options;
    ilp_options.model.max_passes = 3;  // recirculation 2
    ilp_options.time_limit_seconds = ip_cap;
    ilp_options.relative_gap = 1e-3;
    auto ilp = SolveIlp(instance, ilp_options);
    if (L == 60) ExportSolverMetrics(ilp, report.metrics(), "solver.l60");

    ApproxOptions approx_options;
    approx_options.model.max_passes = 3;
    approx_options.only_max_passes = L > 30;  // keep large sweeps tractable
    auto approx = SolveApprox(instance, approx_options);

    GreedyOptions greedy_options;
    greedy_options.max_passes = 3;
    auto greedy = SolveGreedy(instance, greedy_options);

    table.Row()
        .Add(static_cast<std::int64_t>(L))
        .Add(ilp.solution.OffloadedGbps(instance), 1)
        .Add(approx.solution.OffloadedGbps(instance), 1)
        .Add(greedy.solution.OffloadedGbps(instance), 1)
        .Add(ilp.objective, 1)
        .Add(approx.objective, 1)
        .Add(greedy.objective, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: IP saturates the 400 Gbps capacity by ~50 SFCs; Appro "
      "and Greedy trail it (398 vs 377 vs 367 Gbps at L=60) with Appro above "
      "Greedy.");

  report.AddTable("throughput", table);
  report.AddNote("IP points capped at SFP_BENCH_IP_CAP/2 seconds each; solver.l60.* "
                 "counters come from the time-capped largest sweep point");
  report.Write();
  return 0;
}
