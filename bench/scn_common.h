// Shared driver for the scenario benches (scn_*): each binary runs one
// builtin scenario from src/scenario/scenario.h end to end and emits an
// sfp.bench.v1 report with the scenario's packet accounting,
// conservation-check results, fault-fire totals, recovery-time
// percentiles and the recovery controller's system.recover.* counters.
//
// Every builtin scenario serves with one worker thread, stamps packets
// with simulated time and draws all randomness from fixed seeds, so
// the exported counters are byte-reproducible and the bench-regression
// gate (tools/compare_bench_json.py) pins them exactly; only the
// recovery-time percentiles get a relative band plus a hard ceiling,
// since a boundary-case admission flip under a different compiler's
// floating-point contraction could legitimately shift one episode.
// Exits nonzero if the scenario reports a conservation violation, so
// the CI smoke fails even before the JSON diff.
#pragma once

#include <cmath>
#include <cstdio>
#include <functional>
#include <iostream>

#include "bench/bench_util.h"
#include "scenario/runner.h"

namespace sfp::bench {

/// Runs `spec`, prints its summary, exports metrics into `report`, and
/// returns the process exit code. `extend`, when set, runs right
/// before the report is written so a bench can append extra tables and
/// counters to the same JSON (the builtin scenario run itself is
/// untouched — its counters stay byte-identical with or without an
/// extension).
inline int RunScenarioBench(const scenario::ScenarioSpec& spec,
                            const std::function<void(BenchReport&)>& extend = {}) {
  PrintHeader(("scenario: " + spec.name).c_str(), spec.description.c_str());
  BenchReport report("scn_" + spec.name, spec.description);

  scenario::ScenarioRunner runner(spec);
  const auto result = runner.Run();

  Table table({"metric", "value"});
  table.Row().Add("ticks").Add(static_cast<std::int64_t>(result.ticks));
  table.Row().Add("packets sent").Add(static_cast<std::int64_t>(result.packets_sent));
  table.Row().Add("packets recorded").Add(static_cast<std::int64_t>(result.total.packets));
  table.Row().Add("drops").Add(static_cast<std::int64_t>(result.total.drops));
  table.Row().Add("recirculated").Add(
      static_cast<std::int64_t>(result.total.recirculated_packets));
  table.Row().Add("tenants admitted").Add(
      static_cast<std::int64_t>(result.tenants_admitted));
  table.Row().Add("tenants departed").Add(
      static_cast<std::int64_t>(result.tenants_departed));
  table.Row().Add("fault fires").Add(static_cast<std::int64_t>(result.fault_fires));
  table.Row().Add("recovery detections").Add(
      static_cast<std::int64_t>(result.recovery.detections));
  table.Row().Add("recovery successes").Add(
      static_cast<std::int64_t>(result.recovery.successes));
  table.Row().Add("quarantined").Add(
      static_cast<std::int64_t>(result.recovery.quarantined));
  table.Row().Add("recovery p50 (ms)").Add(result.recovery_p50_ms, 1);
  table.Row().Add("recovery p99 (ms)").Add(result.recovery_p99_ms, 1);
  table.Row().Add("conservation checks").Add(
      static_cast<std::int64_t>(result.conservation_checks));
  table.Row().Add("conservation violations").Add(
      static_cast<std::int64_t>(result.conservation_violations));
  table.Print(std::cout);
  report.AddTable("scenario_summary", table);

  auto& metrics = report.metrics();
  metrics.GetCounter("scenario.ticks").Set(result.ticks);
  metrics.GetCounter("scenario.packets_sent").Set(result.packets_sent);
  metrics.GetCounter("scenario.bytes_sent").Set(result.bytes_sent);
  metrics.GetCounter("scenario.truncated_ticks").Set(result.truncated_ticks);
  metrics.GetCounter("scenario.tenants_admitted").Set(result.tenants_admitted);
  metrics.GetCounter("scenario.tenants_departed").Set(result.tenants_departed);
  metrics.GetCounter("scenario.admit_rejects").Set(result.admit_rejects);
  metrics.GetCounter("scenario.conservation_checks").Set(result.conservation_checks);
  metrics.GetCounter("scenario.conservation_violations")
      .Set(result.conservation_violations);
  metrics.GetCounter("scenario.fault_fires").Set(result.fault_fires);
  metrics.GetCounter("scenario.open_episodes").Set(result.open_episodes);
  metrics.GetCounter("scenario.total.packets").Set(result.total.packets);
  metrics.GetCounter("scenario.total.bytes").Set(result.total.bytes);
  metrics.GetCounter("scenario.total.drops").Set(result.total.drops);
  metrics.GetCounter("scenario.total.recirculated_packets")
      .Set(result.total.recirculated_packets);
  metrics.GetCounter("scenario.total.passes").Set(result.total.total_passes);
  // Recovery-time percentiles in simulated microseconds: sim-time
  // deltas, so integer-exact on one binary but banded by the gate (see
  // header comment).
  metrics.GetCounter("scenario.recovery.p50_us")
      .Set(static_cast<std::uint64_t>(std::llround(result.recovery_p50_ms * 1000.0)));
  metrics.GetCounter("scenario.recovery.p99_us")
      .Set(static_cast<std::uint64_t>(std::llround(result.recovery_p99_ms * 1000.0)));
  metrics.GetCounter("scenario.recovery.max_us")
      .Set(static_cast<std::uint64_t>(std::llround(result.recovery_max_ms * 1000.0)));
  runner.recovery().ExportMetrics(metrics);

  report.AddNote("serve_threads=1 and simulated-time packet stamps make every "
                 "exported counter byte-reproducible for the regression gate.");
  if (extend) extend(report);
  report.Write();

  if (!result.ok) {
    for (const auto& error : result.errors) {
      std::printf("FATAL: %s\n", error.c_str());
    }
    return 1;
  }
  std::printf("scenario %s: ok (%llu packets, %llu fault fires, %llu recoveries)\n",
              spec.name.c_str(),
              static_cast<unsigned long long>(result.packets_sent),
              static_cast<unsigned long long>(result.fault_fires),
              static_cast<unsigned long long>(result.recovery.successes));
  return 0;
}

}  // namespace sfp::bench
