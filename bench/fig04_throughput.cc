// Fig. 4 — Throughput comparison between SFP and software (DPDK) SFC
// deployment, packet size 64..1500 B at 100 Gbps offered load.
//
// SFP runs the 4-NF chain on the 12-stage switch simulator: the chip
// forwards at line rate regardless of frame size, so the sender's
// 100 Gbps bounds it. The DPDK baseline is packet-rate bound by its
// worker cores. The bench also pushes real packets through the
// virtualized pipeline to confirm the chain semantics while measuring.
#include <iostream>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/units.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "serversim/server_model.h"

using namespace sfp;

namespace {

core::SfpSystem MakeTestbedSwitch() {
  // The §VI-B testbed: Tofino with 12 stages, 3.2 Tbps backplane.
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.blocks_per_stage = 20;
  config.entries_per_block = 1000;
  config.backplane_gbps = 3200.0;
  core::SfpSystem system(config);
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  return system;
}

dataplane::Sfc TestChain() {
  dataplane::Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 100.0;
  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  nf::NfConfig lb;
  lb.type = nf::NfType::kLoadBalancer;
  lb.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 100), 80,
                                                  net::Ipv4Address::Of(192, 168, 0, 1)));
  nf::NfConfig tc;
  tc.type = nf::NfType::kClassifier;
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 1));
  nf::NfConfig rt;
  rt.type = nf::NfType::kRouter;
  rt.rules.push_back(nf::Router::Route(0, 0, 1));
  sfc.chain = {fw, lb, tc, rt};
  return sfc;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 4", "throughput vs packet size: SFP vs DPDK SFC");

  auto system = MakeTestbedSwitch();
  const auto admit = system.AdmitTenant(TestChain());
  if (!admit.admitted) {
    std::printf("FATAL: chain admission failed: %s\n", admit.reason.c_str());
    return 1;
  }

  serversim::ServerSfc dpdk{serversim::ServerConfig{}, serversim::DefaultChain()};
  const double offered_gbps = 100.0;

  Table table({"pkt size (B)", "SFP (Gbps)", "DPDK (Gbps)", "SFP (Mpps)", "DPDK (Mpps)",
               "speedup"});
  Rng rng(2022);
  for (const int size : {64, 128, 256, 512, 1024, 1500}) {
    // Functional check: a sample of real frames of this size flows the
    // whole chain on the simulated switch.
    for (int i = 0; i < 200; ++i) {
      auto packet = net::MakeTcpPacket(
          1, net::Ipv4Address::Of(10, 1, 0, static_cast<std::uint8_t>(1 + i % 200)),
          net::Ipv4Address::Of(10, 0, 0, 100),
          static_cast<std::uint16_t>(1024 + i), 80, static_cast<std::uint32_t>(size));
      const auto out = system.Process(packet);
      if (out.meta.dropped) {
        std::printf("FATAL: unexpected drop at size %d\n", size);
        return 1;
      }
    }
    // SFP: the pipeline is line-rate; the sender's 100 Gbps binds.
    const double sfp_gbps =
        std::min(offered_gbps, system.data_plane().pipeline().config().backplane_gbps);
    const double dpdk_gbps = dpdk.ThroughputGbps(size, offered_gbps);
    table.Row()
        .Add(static_cast<std::int64_t>(size))
        .Add(sfp_gbps, 1)
        .Add(dpdk_gbps, 1)
        .Add(GbpsToPps(sfp_gbps, size) / 1e6, 2)
        .Add(GbpsToPps(dpdk_gbps, size) / 1e6, 2)
        .Add(sfp_gbps / dpdk_gbps, 1);
  }
  table.Print(std::cout);

  std::printf("\nDPDK footprint: %.0f MB memory, %.2f%% CPU (%d/%d cores)\n",
              dpdk.MemoryMb(), dpdk.CpuUtilization() * 100.0,
              dpdk.config().worker_cores + dpdk.config().master_cores + 6,
              dpdk.config().total_cores);
  bench::PrintNote(
      "paper: SFP saturates 100G at every size; DPDK reaches 100G only at "
      "~1500B and is >=10x slower at 64B (here the gap is the pps bound).");
  return 0;
}
