// Fig. 4 — Throughput comparison between SFP and software (DPDK) SFC
// deployment, packet size 64..1500 B at 100 Gbps offered load.
//
// SFP runs the 4-NF chain on the 12-stage switch simulator: the chip
// forwards at line rate regardless of frame size, so the sender's
// 100 Gbps bounds it. The DPDK baseline is packet-rate bound by its
// worker cores. The bench also pushes real packets through the
// virtualized pipeline to confirm the chain semantics while measuring.
//
// A second section measures the *simulator's own* serve rate: scalar
// Process() vs the flow-sharded ProcessBatch() at 1/2/4/8 worker
// threads on the same chain, verifying the batched outputs are
// byte-identical to the scalar ones. Results (both sections) are also
// written to BENCH_fig04_throughput.json (schema docs/METRICS.md).
#include <iostream>
#include <thread>

#include "bench/bench_util.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "common/units.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "serversim/server_model.h"
#include "workload/traffic.h"

using namespace sfp;

namespace {

core::SfpSystem MakeTestbedSwitch() {
  // The §VI-B testbed: Tofino with 12 stages, 3.2 Tbps backplane.
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.blocks_per_stage = 20;
  config.entries_per_block = 1000;
  config.backplane_gbps = 3200.0;
  core::SfpSystem system(config);
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  return system;
}

dataplane::Sfc TestChain(dataplane::TenantId tenant = 1, double bandwidth_gbps = 100.0) {
  dataplane::Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = bandwidth_gbps;
  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  nf::NfConfig lb;
  lb.type = nf::NfType::kLoadBalancer;
  lb.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 100), 80,
                                                  net::Ipv4Address::Of(192, 168, 0, 1)));
  nf::NfConfig tc;
  tc.type = nf::NfType::kClassifier;
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 1));
  nf::NfConfig rt;
  rt.type = nf::NfType::kRouter;
  rt.rules.push_back(nf::Router::Route(0, 0, 1));
  sfc.chain = {fw, lb, tc, rt};
  return sfc;
}

/// The fields of a result a tenant can observe: output frame bytes plus
/// the externally visible metadata.
struct PacketOutcome {
  std::vector<std::uint8_t> wire;
  bool dropped;
  int passes;
  std::uint8_t flow_class;
  std::int32_t egress_port;
  double latency_ns;

  bool operator==(const PacketOutcome&) const = default;

  static PacketOutcome Of(const switchsim::ProcessResult& result) {
    return {result.packet.Serialize(), result.meta.dropped,    result.passes,
            result.meta.flow_class,    result.meta.egress_port, result.latency_ns};
  }
};

/// 64 B frames over many distinct flows of tenant 1 (flow diversity is
/// what the batch path shards on), streamed into a reusable batch
/// instead of materialized as a whole trace. Deterministic: every
/// caller constructing the same source replays the same stream.
workload::TrafficSource BatchWorkloadSource(int flows) {
  workload::TrafficSpec spec;
  spec.tenant = 1;
  spec.num_flows = flows;
  spec.frame_bytes = 64;
  spec.round_robin_flows = true;
  return workload::TrafficSource(spec);
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 4", "throughput vs packet size: SFP vs DPDK SFC");
  bench::BenchReport report("fig04_throughput",
                            "throughput vs packet size: SFP vs DPDK SFC");

  auto system = MakeTestbedSwitch();
  const auto admit = system.AdmitTenant(TestChain());
  if (!admit.admitted) {
    std::printf("FATAL: chain admission failed: %s\n", admit.reason.c_str());
    return 1;
  }

  serversim::ServerSfc dpdk{serversim::ServerConfig{}, serversim::DefaultChain()};
  const double offered_gbps = 100.0;

  Table table({"pkt size (B)", "SFP (Gbps)", "DPDK (Gbps)", "SFP (Mpps)", "DPDK (Mpps)",
               "speedup"});
  Rng rng(2022);
  for (const int size : {64, 128, 256, 512, 1024, 1500}) {
    // Functional check: a sample of real frames of this size flows the
    // whole chain on the simulated switch.
    for (int i = 0; i < 200; ++i) {
      auto packet = net::MakeTcpPacket(
          1, net::Ipv4Address::Of(10, 1, 0, static_cast<std::uint8_t>(1 + i % 200)),
          net::Ipv4Address::Of(10, 0, 0, 100),
          static_cast<std::uint16_t>(1024 + i), 80, static_cast<std::uint32_t>(size));
      const auto out = system.Process(packet);
      if (out.meta.dropped) {
        std::printf("FATAL: unexpected drop at size %d\n", size);
        return 1;
      }
    }
    // SFP: the pipeline is line-rate; the sender's 100 Gbps binds.
    const double sfp_gbps =
        std::min(offered_gbps, system.data_plane().pipeline().config().backplane_gbps);
    const double dpdk_gbps = dpdk.ThroughputGbps(size, offered_gbps);
    table.Row()
        .Add(static_cast<std::int64_t>(size))
        .Add(sfp_gbps, 1)
        .Add(dpdk_gbps, 1)
        .Add(GbpsToPps(sfp_gbps, size) / 1e6, 2)
        .Add(GbpsToPps(dpdk_gbps, size) / 1e6, 2)
        .Add(sfp_gbps / dpdk_gbps, 1);
  }
  table.Print(std::cout);
  report.AddTable("throughput", table);

  std::printf("\nDPDK footprint: %.0f MB memory, %.2f%% CPU (%d/%d cores)\n",
              dpdk.MemoryMb(), dpdk.CpuUtilization() * 100.0,
              dpdk.config().worker_cores + dpdk.config().master_cores + 6,
              dpdk.config().total_cores);
  bench::PrintNote(
      "paper: SFP saturates 100G at every size; DPDK reaches 100G only at "
      "~1500B and is >=10x slower at 64B (here the gap is the pps bound).");

  // ---- simulator serve rate: scalar Process vs batched ProcessBatch --
  bench::PrintHeader("Fig. 4b", "simulator serve rate: scalar vs ProcessBatch");
  const int kPackets = 120000;
  const int kFlows = 512;
  const int kBatch = 4096;

  // Scalar reference run: timing + the per-packet outcomes every
  // batched run must reproduce exactly. The workload streams from a
  // TrafficSource into one reusable PacketBatch (net::Packet holds no
  // heap data, so refills don't allocate in steady state).
  std::vector<PacketOutcome> reference;
  reference.reserve(static_cast<std::size_t>(kPackets));
  double scalar_mpps = 0.0;
  {
    auto scalar = MakeTestbedSwitch();
    if (!scalar.AdmitTenant(TestChain()).admitted) return 1;
    auto source = BatchWorkloadSource(kFlows);
    workload::PacketBatch batch;
    Stopwatch timer;
    for (int off = 0; off < kPackets; off += kBatch) {
      const auto n = static_cast<std::size_t>(std::min(kBatch, kPackets - off));
      source.Refill(batch, n);
      for (const auto& packet : batch.packets) {
        reference.push_back(PacketOutcome::Of(scalar.Process(packet)));
      }
    }
    scalar_mpps = kPackets / timer.ElapsedSeconds() / 1e6;
  }

  Table batch_table({"threads", "Mpps", "speedup vs scalar", "identical to scalar"});
  batch_table.Row().Add("scalar").Add(scalar_mpps, 2).Add(1.0, 2).Add("-");
  auto& ns_hist = report.metrics().GetHistogram(
      "batch.ns_per_packet", common::metrics::ExponentialBounds(25, 2, 12));
  bool all_identical = true;
  for (const int threads : {1, 2, 4, 8}) {
    auto batched = MakeTestbedSwitch();
    if (!batched.AdmitTenant(TestChain()).admitted) return 1;
    switchsim::BatchOptions options;
    options.num_threads = threads;
    bool identical = true;
    // Same spec + seed as the scalar run: the stream replays exactly.
    auto source = BatchWorkloadSource(kFlows);
    workload::PacketBatch batch;
    Stopwatch timer;
    for (int off = 0; off < kPackets; off += kBatch) {
      const auto n = static_cast<std::size_t>(std::min(kBatch, kPackets - off));
      source.Refill(batch, n);
      Stopwatch batch_timer;
      const auto results = batched.ProcessBatch(batch.View(), options);
      ns_hist.Observe(batch_timer.ElapsedSeconds() * 1e9 / static_cast<double>(n));
      for (std::size_t i = 0; i < n; ++i) {
        identical &= PacketOutcome::Of(results[i]) ==
                     reference[static_cast<std::size_t>(off) + i];
      }
    }
    const double mpps = kPackets / timer.ElapsedSeconds() / 1e6;
    all_identical &= identical;
    batch_table.Row()
        .Add(static_cast<std::int64_t>(threads))
        .Add(mpps, 2)
        .Add(mpps / scalar_mpps, 2)
        .Add(identical ? "yes" : "NO");
    if (threads == 4) batched.ExportMetrics(report.metrics());
  }
  batch_table.Print(std::cout);
  report.AddTable("batch_serve_rate", batch_table);
  report.metrics().GetCounter("batch.verified_identical").Set(all_identical ? 1 : 0);
  std::printf("hardware threads available: %u\n", std::thread::hardware_concurrency());
  if (!all_identical) {
    std::printf("FATAL: batched outputs diverged from the scalar path\n");
    return 1;
  }
  bench::PrintNote(
      "ProcessBatch shards by flow hash, so speedup tracks available cores; "
      "outputs are verified byte-identical to the scalar path per run.");

  // ---- serve rate vs admitted tenants (lookup-index flatness) --------
  // Every tenant installs the same 4-NF chain, so the per-packet serve
  // cost should not depend on how many *other* tenants share the
  // physical tables: the exact-key (tenant, pass) index buckets each
  // tenant's rules, where the replaced linear scan degraded with the
  // total installed-rule population.
  bench::PrintHeader("Fig. 4c", "serve rate vs admitted tenants (lookup index)");
  Table tenant_table({"tenants", "entries", "Mpps", "ns/pkt", "cost vs 10 tenants"});
  const int kProbePackets = 40000;
  double ns_at_10 = 0.0;
  double ns_at_1000 = 0.0;
  for (const int tenants : {10, 100, 1000}) {
    auto scaled = MakeTestbedSwitch();
    for (int t = 1; t <= tenants; ++t) {
      const auto scaled_admit =
          scaled.AdmitTenant(TestChain(static_cast<dataplane::TenantId>(t), 1.0));
      if (!scaled_admit.admitted) {
        std::printf("FATAL: tenant-scale admission failed at %d/%d: %s\n", t, tenants,
                    scaled_admit.reason.c_str());
        return 1;
      }
    }
    // A fixed 16-tenant probe mix keeps the measured work identical at
    // every scale; only the installed-rule population grows.
    std::vector<net::Packet> probes;
    for (int i = 0; i < 16; ++i) {
      const int t = 1 + (i * std::max(1, tenants / 16)) % tenants;
      probes.push_back(net::MakeTcpPacket(
          static_cast<std::uint16_t>(t), net::Ipv4Address::Of(10, 1, 0, 1),
          net::Ipv4Address::Of(10, 0, 0, 100), static_cast<std::uint16_t>(1024 + i), 80,
          64));
    }
    Stopwatch timer;
    for (int i = 0; i < kProbePackets; ++i) {
      const auto out = scaled.Process(probes[static_cast<std::size_t>(i) % probes.size()]);
      if (out.meta.dropped) {
        std::printf("FATAL: unexpected drop at %d tenants\n", tenants);
        return 1;
      }
    }
    const double ns_per_pkt = timer.ElapsedSeconds() * 1e9 / kProbePackets;
    if (tenants == 10) ns_at_10 = ns_per_pkt;
    if (tenants == 1000) ns_at_1000 = ns_per_pkt;
    tenant_table.Row()
        .Add(static_cast<std::int64_t>(tenants))
        .Add(scaled.Stats().entries_used)
        .Add(1e3 / ns_per_pkt, 2)
        .Add(ns_per_pkt, 1)
        .Add(ns_per_pkt / ns_at_10, 2);
  }
  tenant_table.Print(std::cout);
  report.AddTable("tenant_scaling", tenant_table);
  // Scaled-integer ratio for the CI bench gate: per-packet cost at 1000
  // tenants as a percentage of the 10-tenant cost. 100 = perfectly
  // flat; the gate's ceiling of 200 is the "within 2x" acceptance bar.
  const auto flatness_pct =
      static_cast<std::int64_t>(ns_at_1000 / ns_at_10 * 100.0 + 0.5);
  report.metrics().GetCounter("serve.flatness_pct").Set(
      static_cast<std::uint64_t>(flatness_pct));
  std::printf("serve.flatness_pct = %lld (100 = flat, gate ceiling 200)\n",
              static_cast<long long>(flatness_pct));
  bench::PrintNote(
      "per-packet serve cost is bucketed by the exact (tenant, pass) key "
      "prefix, so it stays flat as tenants scale 10 -> 1000.");

  report.AddNote("Fig. 4b serve-rate speedup depends on host cores (see row table).");
  report.Write();
  return 0;
}
