// Fig. 7 — Throughput and resource utilization varying the allowed
// recirculation times (0..6, i.e. virtual pipelines of 8..56 stages).
//
// Setup per §VI-C: L=15 candidate SFCs (few, to isolate the effect of
// recirculation from inter-SFC contention), each a chain of 8 NFs
// drawn from 10 types — longer than the 8-stage pipeline, so ordering
// conflicts are common and folding matters.
#include <iostream>

#include "bench/bench_util.h"
#include "controlplane/approx_solver.h"
#include "workload/sfc_gen.h"

using namespace sfp;
using namespace sfp::controlplane;

int main() {
  bench::PrintHeader("Fig. 7", "throughput + utilization vs recirculation times");
  const int seeds = bench::NumSeeds();

  Table table({"recirc", "SFP thr (Gbps)", "Base thr (Gbps)", "SFP blocks", "Base blocks",
               "SFP entries", "Base entries"});

  for (int recirc = 0; recirc <= 6; ++recirc) {
    double sfp_thr = 0, base_thr = 0, sfp_blocks = 0, base_blocks = 0, sfp_entries = 0,
           base_entries = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(7000 + static_cast<std::uint64_t>(seed) * 13);
      workload::DatasetParams params;
      params.num_sfcs = 15;
      params.num_types = 10;
      params.fixed_chain_len = 8;
      SwitchResources sw;
      auto instance = workload::GenerateInstance(params, sw, rng);

      ApproxOptions sfp_options;
      sfp_options.model.max_passes = recirc + 1;
      sfp_options.model.memory_model = MemoryModel::kConsolidated;
      sfp_options.only_max_passes = true;
      sfp_options.seed = static_cast<std::uint64_t>(seed) + 1;
      auto sfp = SolveApprox(instance, sfp_options);

      ApproxOptions base_options = sfp_options;
      base_options.model.memory_model = MemoryModel::kPerLogicalNf;
      auto base = SolveApprox(instance, base_options);

      sfp_thr += sfp.solution.OffloadedGbps(instance);
      base_thr += base.solution.OffloadedGbps(instance);
      sfp_blocks += sfp.solution.AvgBlockUtilization(instance, MemoryModel::kConsolidated);
      base_blocks += base.solution.AvgBlockUtilization(instance, MemoryModel::kPerLogicalNf);
      sfp_entries += sfp.solution.AvgEntryUtilization(instance);
      base_entries += base.solution.AvgEntryUtilization(instance);
    }
    const double n = seeds;
    table.Row()
        .Add(static_cast<std::int64_t>(recirc))
        .Add(sfp_thr / n, 1)
        .Add(base_thr / n, 1)
        .Add(sfp_blocks / n, 1)
        .Add(base_blocks / n, 1)
        .Add(sfp_entries / n, 1)
        .Add(base_entries / n, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: with up to B=20 NF types per stage most length-8 chains "
      "already fit one pass, so recirc=0 places the bulk; one recirculation "
      "admits the order-conflicted remainder (paper: 138.3 -> 142.0 Gbps); "
      "more than one adds nothing. SFP > baseline entries throughout.");
  return 0;
}
