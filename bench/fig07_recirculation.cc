// Fig. 7 — Throughput and resource utilization varying the allowed
// recirculation times (0..6, i.e. virtual pipelines of 8..56 stages).
//
// Setup per §VI-C: L=15 candidate SFCs (few, to isolate the effect of
// recirculation from inter-SFC contention), each a chain of 8 NFs
// drawn from 10 types — longer than the 8-stage pipeline, so ordering
// conflicts are common and folding matters.
//
// A second series measures intra-chain NF parallelism (DESIGN.md) end
// to end on the simulated data plane: the same concrete tenant chains
// are admitted into twin switches with packing off and on, and both
// the control-plane pass counts and the per-packet virtual latency
// (passes x one pipeline traversal) are compared.
//
// A third series measures cross-tenant pass co-scheduling (DESIGN.md
// "Cross-tenant pass sharing") on the engineered 50-tenant population
// of bench/xt_population.h: aggregate recirculation passes with
// per-tenant packing vs the stage-window co-scheduler.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench/bench_util.h"
#include "bench/xt_population.h"
#include "controlplane/approx_solver.h"
#include "dataplane/data_plane.h"
#include "nf/rate_limiter.h"
#include "workload/sfc_gen.h"
#include "workload/traffic.h"

using namespace sfp;
using namespace sfp::controlplane;

namespace {

/// One full pipeline traversal of the virtual switch (ingress to
/// recirculation port), used to turn pass counts into a deterministic
/// latency figure — machine-independent, unlike wall-clock ns.
constexpr double kPassTraversalNs = 450.0;

double Percentile(std::vector<double>& values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const auto at = static_cast<std::size_t>(q * (static_cast<double>(values.size()) - 1));
  return values[at];
}

/// A data plane hosting every NF type once, on a seed-shuffled stage
/// layout (so chain order and stage order disagree as in Fig. 3).
dataplane::DataPlane MakePlane(bool parallel, const std::vector<int>& stages) {
  switchsim::SwitchConfig config;
  config.num_stages = nf::kNumNfTypes;
  config.nf_parallelism = parallel;
  dataplane::DataPlane plane(config);
  for (int t = 0; t < nf::kNumNfTypes; ++t) {
    const auto type = static_cast<nf::NfType>(t);
    const int stage = stages[static_cast<std::size_t>(t)];
    plane.InstallPhysicalNf(stage, type);
    if (type == nf::NfType::kRateLimiter) {
      static_cast<nf::RateLimiter*>(plane.PhysicalNf(stage, type))->AddBucket(100.0, 10.0);
    }
  }
  return plane;
}

}  // namespace

int main() {
  bench::PrintHeader("Fig. 7", "throughput + utilization vs recirculation times");
  bench::BenchReport report("fig07_recirculation",
                            "throughput + utilization vs recirculation times; "
                            "intra-chain NF parallelism pass savings");
  const int seeds = bench::NumSeeds();

  Table table({"recirc", "SFP thr (Gbps)", "Base thr (Gbps)", "SFP blocks", "Base blocks",
               "SFP entries", "Base entries"});

  for (int recirc = 0; recirc <= 6; ++recirc) {
    double sfp_thr = 0, base_thr = 0, sfp_blocks = 0, base_blocks = 0, sfp_entries = 0,
           base_entries = 0;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(7000 + static_cast<std::uint64_t>(seed) * 13);
      workload::DatasetParams params;
      params.num_sfcs = 15;
      params.num_types = 10;
      params.fixed_chain_len = 8;
      SwitchResources sw;
      auto instance = workload::GenerateInstance(params, sw, rng);

      ApproxOptions sfp_options;
      sfp_options.model.max_passes = recirc + 1;
      sfp_options.model.memory_model = MemoryModel::kConsolidated;
      sfp_options.only_max_passes = true;
      sfp_options.seed = static_cast<std::uint64_t>(seed) + 1;
      auto sfp = SolveApprox(instance, sfp_options);

      ApproxOptions base_options = sfp_options;
      base_options.model.memory_model = MemoryModel::kPerLogicalNf;
      auto base = SolveApprox(instance, base_options);

      sfp_thr += sfp.solution.OffloadedGbps(instance);
      base_thr += base.solution.OffloadedGbps(instance);
      sfp_blocks += sfp.solution.AvgBlockUtilization(instance, MemoryModel::kConsolidated);
      base_blocks += base.solution.AvgBlockUtilization(instance, MemoryModel::kPerLogicalNf);
      sfp_entries += sfp.solution.AvgEntryUtilization(instance);
      base_entries += base.solution.AvgEntryUtilization(instance);
    }
    const double n = seeds;
    table.Row()
        .Add(static_cast<std::int64_t>(recirc))
        .Add(sfp_thr / n, 1)
        .Add(base_thr / n, 1)
        .Add(sfp_blocks / n, 1)
        .Add(base_blocks / n, 1)
        .Add(sfp_entries / n, 1)
        .Add(base_entries / n, 1);
  }
  table.Print(std::cout);
  bench::PrintNote(
      "paper shape: with up to B=20 NF types per stage most length-8 chains "
      "already fit one pass, so recirc=0 places the bulk; one recirculation "
      "admits the order-conflicted remainder (paper: 138.3 -> 142.0 Gbps); "
      "more than one adds nothing. SFP > baseline entries throughout.");
  report.AddTable("recirculation", table);

  // ---- intra-chain NF parallelism: packed vs sequential passes -----
  bench::PrintHeader("Fig. 7b", "pass packing: sequential vs packed layouts");
  Table packing({"chain len", "seq passes", "packed passes", "saved %",
                 "seq p50 (ns)", "packed p50 (ns)", "seq p99 (ns)", "packed p99 (ns)"});
  std::int64_t grand_seq = 0, grand_packed = 0;
  std::int64_t l6_seq = 0, l6_packed = 0;
  double l6_seq_p99 = 0, l6_packed_p99 = 0;
  for (int chain_len = 2; chain_len <= 6; ++chain_len) {
    std::int64_t seq_passes = 0, packed_passes = 0;
    std::vector<double> seq_lat, packed_lat;
    for (int seed = 0; seed < seeds; ++seed) {
      Rng rng(9100 + static_cast<std::uint64_t>(seed) * 31 +
              static_cast<std::uint64_t>(chain_len) * 977);
      std::vector<int> stages(static_cast<std::size_t>(nf::kNumNfTypes));
      for (int t = 0; t < nf::kNumNfTypes; ++t) stages[static_cast<std::size_t>(t)] = t;
      rng.Shuffle(stages);
      auto sequential = MakePlane(false, stages);
      auto packed = MakePlane(true, stages);

      for (dataplane::TenantId tenant = 1; tenant <= 20; ++tenant) {
        const auto sfc =
            workload::GenerateConcreteSfc(tenant, chain_len, 10.0, rng, /*rules_per_nf=*/8);
        const auto seq_result = sequential.AllocateSfc(sfc);
        const auto packed_result = packed.AllocateSfc(sfc);
        if (!seq_result.ok || !packed_result.ok) continue;
        seq_passes += seq_result.passes;
        packed_passes += packed_result.passes;

        workload::PacketSizeProfile profile;
        const auto packets =
            workload::GenerateFlows(tenant, /*num_flows=*/4, /*count=*/25, profile, rng);
        for (const auto& packet : packets) {
          seq_lat.push_back(sequential.Process(packet).passes * kPassTraversalNs);
          packed_lat.push_back(packed.Process(packet).passes * kPassTraversalNs);
        }
      }
    }
    grand_seq += seq_passes;
    grand_packed += packed_passes;
    const double saved_pct =
        seq_passes > 0
            ? 100.0 * static_cast<double>(seq_passes - packed_passes) /
                  static_cast<double>(seq_passes)
            : 0.0;
    const double sp99 = Percentile(seq_lat, 0.99);
    const double pp99 = Percentile(packed_lat, 0.99);
    if (chain_len == 6) {
      l6_seq = seq_passes;
      l6_packed = packed_passes;
      l6_seq_p99 = sp99;
      l6_packed_p99 = pp99;
    }
    packing.Row()
        .Add(static_cast<std::int64_t>(chain_len))
        .Add(seq_passes)
        .Add(packed_passes)
        .Add(saved_pct, 1)
        .Add(Percentile(seq_lat, 0.50), 0)
        .Add(Percentile(packed_lat, 0.50), 0)
        .Add(sp99, 0)
        .Add(pp99, 0);
  }
  packing.Print(std::cout);
  bench::PrintNote(
      "same tenants, same shuffled stage layout: packing merges independent "
      "chain segments into shared passes, so both the solver-visible pass "
      "budget and the tail latency (passes x traversal) drop; the saved-% "
      "column is the acceptance metric (>=30% on mixed 6-NF chains).");
  report.AddTable("nf_parallelism", packing);

  // Deterministic acceptance counters (integer percent, gated in
  // tools/compare_bench_json.py).
  auto pct_saved = [](std::int64_t seq, std::int64_t packed) -> std::uint64_t {
    if (seq <= 0 || packed >= seq) return 0;
    return static_cast<std::uint64_t>(100 * (seq - packed) / seq);
  };
  report.metrics().GetCounter("parallelism.passes_saved_pct").Set(pct_saved(grand_seq, grand_packed));
  report.metrics().GetCounter("parallelism.passes_saved_pct_l6").Set(pct_saved(l6_seq, l6_packed));
  const std::uint64_t p99_saved_pct =
      l6_seq_p99 > 0 && l6_packed_p99 < l6_seq_p99
          ? static_cast<std::uint64_t>(100.0 * (l6_seq_p99 - l6_packed_p99) / l6_seq_p99)
          : 0;
  report.metrics().GetCounter("parallelism.p99_saved_pct_l6").Set(p99_saved_pct);

  // ---- cross-tenant pass co-scheduling: aggregate passes -----------
  // The engineered 50-tenant population of bench/xt_population.h is
  // admitted into twin planes: per-tenant packing (PR 9 baseline) vs
  // the stage-window co-scheduler. The acceptance metric is aggregate
  // recirculation passes across the whole population (gated >= 20%
  // saved): per-tenant packing lets order-free firewalls exhaust the
  // early firewall instance's table budget, folding later
  // order-constrained tenants; the co-scheduler steers them late.
  bench::PrintHeader("Fig. 7c", "cross-tenant co-scheduling: aggregate passes");
  auto per_tenant = bench::xt::MakeXtPlane(/*cross_tenant=*/false);
  auto co_sched = bench::xt::MakeXtPlane(/*cross_tenant=*/true);
  const auto population = bench::xt::BuildXtPopulation(/*bandwidth_gbps=*/10.0);
  std::int64_t xt_base_passes = 0, xt_co_passes = 0;
  std::int64_t xt_base_folded = 0, xt_co_folded = 0;
  int xt_base_admitted = 0, xt_co_admitted = 0;
  for (const auto& sfc : population) {
    const auto base_result = per_tenant.AllocateSfc(sfc);
    const auto co_result = co_sched.AllocateSfc(sfc);
    if (base_result.ok) {
      ++xt_base_admitted;
      xt_base_passes += base_result.passes;
      if (base_result.passes > 1) ++xt_base_folded;
    }
    if (co_result.ok) {
      ++xt_co_admitted;
      xt_co_passes += co_result.passes;
      if (co_result.passes > 1) ++xt_co_folded;
    }
  }
  Table xt_table({"planner", "admitted", "aggregate passes", "folded tenants"});
  xt_table.Row()
      .Add("per-tenant packed")
      .Add(static_cast<std::int64_t>(xt_base_admitted))
      .Add(xt_base_passes)
      .Add(xt_base_folded);
  xt_table.Row()
      .Add("cross-tenant co-scheduled")
      .Add(static_cast<std::int64_t>(xt_co_admitted))
      .Add(xt_co_passes)
      .Add(xt_co_folded);
  xt_table.Print(std::cout);
  bench::PrintNote(
      "same 50 tenants, same admission order, same 8-stage plane: the "
      "co-scheduler's stage-window steering keeps the early firewall "
      "instance free for order-constrained chains, so the aggregate "
      "pass count (and with it eq. 26 recirculation charge) drops.");
  report.AddTable("xt_packing", xt_table);
  report.metrics().GetCounter("parallelism.xt.aggregate_passes_per_tenant")
      .Set(static_cast<std::uint64_t>(xt_base_passes));
  report.metrics().GetCounter("parallelism.xt.aggregate_passes_cross_tenant")
      .Set(static_cast<std::uint64_t>(xt_co_passes));
  report.metrics().GetCounter("parallelism.xt.folded_tenants_per_tenant")
      .Set(static_cast<std::uint64_t>(xt_base_folded));
  report.metrics().GetCounter("parallelism.xt.folded_tenants_cross_tenant")
      .Set(static_cast<std::uint64_t>(xt_co_folded));
  report.metrics().GetCounter("parallelism.xt.passes_saved_pct")
      .Set(pct_saved(xt_base_passes, xt_co_passes));
  report.Write();
  return 0;
}
