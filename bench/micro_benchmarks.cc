// Micro-benchmarks (google-benchmark): hot paths of the simulator and
// the solver, plus the two design ablations DESIGN.md calls out
// (aggregated vs disaggregated consistency rows; structured vs naive
// rounding).
#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "controlplane/approx_solver.h"
#include "controlplane/greedy_solver.h"
#include "controlplane/model_builder.h"
#include "controlplane/verifier.h"
#include "core/sfp_system.h"
#include "lp/simplex.h"
#include "nf/firewall.h"
#include "workload/sfc_gen.h"
#include "lp/presolve.h"
#include "lp/rounding.h"
#include "workload/traffic.h"

// --- allocation counter ----------------------------------------------
// Counts every heap allocation in the binary so the zero-allocation
// benchmarks below can assert that the steady-state generate+serve
// loops never touch the heap per packet (an acceptance criterion of
// the reusable-buffer TrafficSource / SerializeInto path).

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
}  // namespace

void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace sfp;

std::uint64_t AllocCount() { return g_alloc_count.load(std::memory_order_relaxed); }

// --- switch data path -------------------------------------------------

void BM_PipelineProcess4Nf(benchmark::State& state) {
  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  Rng rng(1);
  auto sfc = workload::GenerateConcreteSfc(1, 4, 10.0, rng, /*rules_per_nf=*/50);
  if (!system.AdmitTenant(sfc).admitted) state.SkipWithError("admission failed");
  auto packet = net::MakeTcpPacket(1, net::Ipv4Address::Of(10, 1, 2, 3),
                                   net::Ipv4Address::Of(10, 0, 0, 100), 1234, 80, 256);
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Process(packet));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PipelineProcess4Nf);

void BM_PipelineProcessBatch4Nf(benchmark::State& state) {
  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  Rng rng(1);
  auto sfc = workload::GenerateConcreteSfc(1, 4, 10.0, rng, /*rules_per_nf=*/50);
  if (!system.AdmitTenant(sfc).admitted) state.SkipWithError("admission failed");
  std::vector<net::Packet> batch;
  for (int i = 0; i < 1024; ++i) {
    batch.push_back(net::MakeTcpPacket(
        1, net::Ipv4Address::Of(10, 1, static_cast<std::uint8_t>(i >> 8),
                                static_cast<std::uint8_t>(i & 0xFF)),
        net::Ipv4Address::Of(10, 0, 0, 100), static_cast<std::uint16_t>(1024 + i), 80,
        256));
  }
  switchsim::BatchOptions options;
  options.num_threads = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.ProcessBatch(batch, options));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(batch.size()));
}
BENCHMARK(BM_PipelineProcessBatch4Nf)->Arg(1)->Arg(2)->Arg(4);

// Serve-path cost as a function of *admitted tenants*. Every tenant
// installs the same small rule set, so with the exact-key lookup index
// the per-packet cost must stay flat (within 2x) from 10 to 1000
// tenants — the linear scan it replaced degraded proportionally.
void BM_PipelineServeVsTenants(benchmark::State& state) {
  const int tenants = static_cast<int>(state.range(0));
  switchsim::SwitchConfig config;
  config.backplane_gbps = 100000.0;  // admission capacity is not under test
  core::SfpSystem system{config};
  system.ProvisionPhysical({{nf::NfType::kFirewall, nf::NfType::kRateLimiter},
                            {nf::NfType::kLoadBalancer, nf::NfType::kNat},
                            {nf::NfType::kClassifier},
                            {nf::NfType::kRouter}});
  Rng rng(7);
  for (int t = 1; t <= tenants; ++t) {
    auto sfc = workload::GenerateConcreteSfc(t, 4, 0.05, rng, /*rules_per_nf=*/8);
    if (!system.AdmitTenant(sfc).admitted) {
      state.SkipWithError("admission failed");
      return;
    }
  }
  // Serve a fixed-size sample of tenants so the measured packet mix is
  // the same at every scale; only the installed-rule population grows.
  std::vector<net::Packet> probes;
  for (int i = 0; i < 16; ++i) {
    const int t = 1 + (i * std::max(1, tenants / 16)) % tenants;
    probes.push_back(net::MakeTcpPacket(
        static_cast<std::uint16_t>(t), net::Ipv4Address::Of(10, 1, 2, 3),
        net::Ipv4Address::Of(10, 0, 0, 100), static_cast<std::uint16_t>(1024 + i), 80,
        128));
  }
  std::size_t next = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.Process(probes[next]));
    next = (next + 1) % probes.size();
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["tenants"] = tenants;
  state.counters["entries"] = static_cast<double>(system.Stats().entries_used);
}
BENCHMARK(BM_PipelineServeVsTenants)->Arg(10)->Arg(100)->Arg(1000);

void BM_TableLookup(benchmark::State& state) {
  const int entries = static_cast<int>(state.range(0));
  nf::Firewall fw;
  switchsim::MatchActionTable table("fw", fw.KeySpec());
  fw.BindActions(table);
  Rng rng(2);
  for (const auto& rule : fw.GenerateRules(rng, entries)) {
    // action 0 = allow (registered first).
    table.AddEntry(rule.matches, 0, rule.args, rule.priority);
  }
  auto packet = net::MakeTcpPacket(1, net::Ipv4Address::Of(10, 1, 2, 3),
                                   net::Ipv4Address::Of(10, 4, 5, 6), 1234, 80, 128);
  switchsim::PacketMeta meta;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.Lookup(packet, meta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TableLookup)->Arg(10)->Arg(100)->Arg(1000);

void BM_PacketParseSerialize(benchmark::State& state) {
  auto packet = net::MakeTcpPacket(3, net::Ipv4Address::Of(10, 1, 2, 3),
                                   net::Ipv4Address::Of(10, 4, 5, 6), 1234, 80, 512);
  const auto bytes = packet.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::Packet::Parse(bytes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * bytes.size());
}
BENCHMARK(BM_PacketParseSerialize);

// --- telemetry --------------------------------------------------------

/// Serial per-packet Record (Arg 0) vs one RecordBatch call (Arg 1)
/// over the same mixed-tenant result array. The batch path pays one
/// shard lock per tenant group instead of one global lock per packet.
void BM_TelemetryRecord(benchmark::State& state) {
  const bool batched = state.range(0) == 1;
  constexpr std::size_t kBatch = 1024;
  dataplane::TelemetryCollector collector;
  std::vector<switchsim::ProcessResult> results(kBatch);
  std::vector<std::uint32_t> wire(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    results[i].meta.tenant_id = static_cast<std::uint16_t>(1 + i % 8);
    results[i].meta.dropped = (i % 31) == 0;
    results[i].passes = 1 + static_cast<int>(i % 3);
    results[i].latency_ns = 300.0 + static_cast<double>(i % 7) * 50.0;
    wire[i] = 64 + static_cast<std::uint32_t>(i % 1400);
  }
  for (auto _ : state) {
    if (batched) {
      collector.RecordBatch(wire, results);
    } else {
      for (std::size_t i = 0; i < kBatch; ++i) collector.Record(wire[i], results[i]);
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_TelemetryRecord)->Arg(0)->Arg(1)->ArgNames({"batch"});

// --- zero-allocation steady state ------------------------------------

/// Streams a TrafficSource into one reusable PacketBatch, serves each
/// frame through the scalar path (the loop shape of fig05/ext1), and
/// re-serializes it into a reused wire buffer. After warm-up the loop
/// must not allocate: `allocs_per_packet` is the acceptance gate
/// (expected 0). The batched path adds only O(1) per-batch result
/// vectors, never per-packet allocations.
void BM_SteadyStateServeAllocs(benchmark::State& state) {
  constexpr std::size_t kBatch = 256;
  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kFirewall}});
  dataplane::Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 10;
  {
    nf::NfConfig fw;
    fw.type = nf::NfType::kFirewall;
    fw.rules.push_back(nf::Firewall::Deny(
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
        switchsim::FieldMatch::Any()));
    sfc.chain = {fw};
  }
  if (!system.AdmitTenant(sfc).admitted) {
    state.SkipWithError("admission failed");
    return;
  }
  workload::TrafficSpec spec;
  spec.tenant = 1;
  spec.num_flows = 64;
  spec.round_robin_flows = true;
  workload::TrafficSource source(spec);
  workload::PacketBatch batch;
  std::vector<std::uint8_t> wire;
  wire.reserve(2048);
  // Warm-up: sizes the batch, the telemetry series map, and the wire
  // buffer to their steady-state capacities.
  for (int warm = 0; warm < 4; ++warm) {
    source.Refill(batch, kBatch);
    for (const auto& packet : batch.packets) {
      const auto out = system.Process(packet);
      benchmark::DoNotOptimize(out.passes);
      packet.SerializeInto(wire);
    }
  }
  const std::uint64_t before = AllocCount();
  std::uint64_t packets = 0;
  for (auto _ : state) {
    source.Refill(batch, kBatch);
    for (const auto& packet : batch.packets) {
      const auto out = system.Process(packet);
      benchmark::DoNotOptimize(out.passes);
      packet.SerializeInto(wire);
      benchmark::DoNotOptimize(wire.data());
    }
    packets += kBatch;
  }
  const std::uint64_t allocs = AllocCount() - before;
  state.SetItemsProcessed(static_cast<std::int64_t>(packets));
  state.counters["allocs_per_packet"] =
      static_cast<double>(allocs) / static_cast<double>(std::max<std::uint64_t>(1, packets));
}
BENCHMARK(BM_SteadyStateServeAllocs);

// --- solver -----------------------------------------------------------

controlplane::PlacementInstance BenchInstance(int num_sfcs, std::uint64_t seed) {
  Rng rng(seed);
  workload::DatasetParams params;
  params.num_sfcs = num_sfcs;
  params.num_types = 10;
  controlplane::SwitchResources sw;
  return workload::GenerateInstance(params, sw, rng);
}

void BM_LpRelaxation(benchmark::State& state) {
  auto instance = BenchInstance(static_cast<int>(state.range(0)), 77);
  controlplane::ModelOptions options;
  options.max_passes = 3;
  auto pm = controlplane::BuildPlacementModel(instance, options);
  for (auto _ : state) {
    lp::Simplex simplex(pm.model);
    benchmark::DoNotOptimize(simplex.Solve());
  }
}
BENCHMARK(BM_LpRelaxation)->Arg(10)->Arg(20)->Unit(benchmark::kMillisecond);

// Ablation: aggregated (scalable) vs disaggregated (tight) eq. 9 rows.
void BM_LpConsistencyAblation(benchmark::State& state) {
  auto instance = BenchInstance(10, 78);
  controlplane::ModelOptions options;
  options.max_passes = 3;
  options.aggregated_consistency = state.range(0) == 1;
  auto pm = controlplane::BuildPlacementModel(instance, options);
  double bound = 0;
  for (auto _ : state) {
    lp::Simplex simplex(pm.model);
    auto solution = simplex.Solve();
    bound = solution.objective;
    benchmark::DoNotOptimize(solution);
  }
  state.counters["rows"] = static_cast<double>(pm.model.num_rows());
  state.counters["lp_bound"] = bound;
}
BENCHMARK(BM_LpConsistencyAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"aggregated"});

// Ablation: structured (dependent) vs naive independent rounding —
// measures cost and, via counters, how often each verifies.
void BM_RoundingAblation(benchmark::State& state) {
  auto instance = BenchInstance(15, 79);
  controlplane::ModelOptions options;
  options.max_passes = 3;
  auto pm = controlplane::BuildPlacementModel(instance, options);
  lp::Simplex simplex(pm.model);
  auto lp_solution = simplex.Solve();
  if (lp_solution.status != lp::SolveStatus::kOptimal) {
    state.SkipWithError("LP failed");
    return;
  }
  controlplane::VerifyOptions verify_options;
  verify_options.max_passes = 3;
  Rng rng(80);
  const bool structured = state.range(0) == 1;
  std::int64_t verified = 0, total = 0;
  for (auto _ : state) {
    ++total;
    if (structured) {
      auto rounded = controlplane::StructuredRound(instance, pm, lp_solution.values, rng);
      if (rounded && controlplane::Verify(instance, *rounded, verify_options).ok) ++verified;
      benchmark::DoNotOptimize(rounded);
    } else {
      auto values = lp::RandomizedRound(pm.model, lp_solution.values, rng);
      // Naive rounding rarely even yields a decodable placement; count
      // it verified only if the full model accepts it.
      auto extracted = controlplane::ExtractSolution(instance, pm, values);
      if (controlplane::Verify(instance, extracted, verify_options).ok) ++verified;
      benchmark::DoNotOptimize(extracted);
    }
  }
  state.counters["verify_rate"] =
      total > 0 ? static_cast<double>(verified) / static_cast<double>(total) : 0.0;
}
BENCHMARK(BM_RoundingAblation)->Arg(0)->Arg(1)->ArgNames({"structured"});

// Presolve ablation on the placement model: reduction counts and the
// LP solve time with/without it.
void BM_LpPresolveAblation(benchmark::State& state) {
  const bool presolve = state.range(0) == 1;
  auto instance = BenchInstance(15, 83);
  controlplane::ModelOptions options;
  options.max_passes = 3;
  int rows_removed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    auto pm = controlplane::BuildPlacementModel(instance, options);
    state.ResumeTiming();
    if (presolve) {
      auto stats = lp::Presolve(pm.model);
      rows_removed = stats.rows_removed;
    }
    lp::Simplex simplex(pm.model);
    benchmark::DoNotOptimize(simplex.Solve());
  }
  state.counters["rows_removed"] = rows_removed;
}
BENCHMARK(BM_LpPresolveAblation)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond)
    ->ArgNames({"presolve"});

void BM_GreedyPlacement(benchmark::State& state) {
  auto instance = BenchInstance(static_cast<int>(state.range(0)), 81);
  controlplane::GreedyOptions options;
  options.max_passes = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(controlplane::SolveGreedy(instance, options));
  }
}
BENCHMARK(BM_GreedyPlacement)->Arg(20)->Arg(50)->Unit(benchmark::kMicrosecond);

void BM_SfcAllocateDeallocate(benchmark::State& state) {
  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kFirewall, nf::NfType::kClassifier},
                            {nf::NfType::kLoadBalancer, nf::NfType::kRouter},
                            {nf::NfType::kRateLimiter, nf::NfType::kNat},
                            {nf::NfType::kFirewall, nf::NfType::kRouter}});
  Rng rng(82);
  auto sfc = workload::GenerateConcreteSfc(1, 4, 5.0, rng, /*rules_per_nf=*/100);
  for (auto _ : state) {
    auto admitted = system.AdmitTenant(sfc);
    if (!admitted.admitted) state.SkipWithError("admission failed");
    system.RemoveTenant(1);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SfcAllocateDeallocate);

}  // namespace

BENCHMARK_MAIN();
