// Shared helpers for the figure-reproduction bench harnesses.
//
// Each bench binary regenerates one table/figure of the paper's §VI and
// prints the series as an aligned table (paste-ready for
// EXPERIMENTS.md). Randomized experiments average over SFP_BENCH_SEEDS
// dataset draws (default 3; the paper used 5 — set SFP_BENCH_SEEDS=5
// to match at ~1.7x runtime).
//
// Benches additionally emit machine-readable results: a BenchReport
// collects the printed tables, free-form notes and a metrics registry,
// and writes them as BENCH_<name>.json (schema "sfp.bench.v1",
// documented in docs/METRICS.md) into SFP_BENCH_JSON_DIR (default:
// the working directory), giving every PR a perf baseline to diff.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/table.h"

namespace sfp::bench {

/// Number of dataset seeds to average over.
inline int NumSeeds() {
  if (const char* env = std::getenv("SFP_BENCH_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 3;
}

/// Prints a figure header in a uniform style.
inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

/// Prints a short note line (calibration caveats etc.).
inline void PrintNote(const char* note) { std::printf("note: %s\n", note); }

/// Directory BENCH_*.json files are written to.
inline std::string JsonDir() {
  if (const char* env = std::getenv("SFP_BENCH_JSON_DIR")) return env;
  return ".";
}

/// Machine-readable result sink for one bench run. Collect tables and
/// metrics while the bench executes, then Write() once at the end.
class BenchReport {
 public:
  /// `name` keys the output file (BENCH_<name>.json); `caption` is the
  /// human-readable figure caption.
  BenchReport(std::string name, std::string caption)
      : name_(std::move(name)), caption_(std::move(caption)) {}

  /// Counters/histograms exported into the JSON "metrics" object.
  common::metrics::Registry& metrics() { return registry_; }

  /// Stores a copy of `table`'s cells under `id` in the "tables" object.
  void AddTable(const std::string& id, const Table& table) {
    tables_.push_back({id, table.headers(), table.rows()});
  }

  void AddNote(std::string note) { notes_.push_back(std::move(note)); }

  /// Writes JsonDir()/BENCH_<name>.json; creates the directory if
  /// needed. Returns false (with a warning on stdout) on I/O failure.
  bool Write() const {
    namespace metrics = common::metrics;
    const std::filesystem::path dir(JsonDir());
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);  // best effort; "." exists
    const std::filesystem::path path = dir / ("BENCH_" + name_ + ".json");
    std::ofstream os(path);
    if (!os) {
      std::printf("warning: cannot write %s\n", path.string().c_str());
      return false;
    }
    os << "{\"schema\": \"sfp.bench.v1\", \"bench\": \"" << metrics::JsonEscape(name_)
       << "\", \"caption\": \"" << metrics::JsonEscape(caption_)
       << "\", \"unix_time_s\": " << static_cast<long long>(std::time(nullptr))
       << ", \"seeds\": " << NumSeeds()
       // Build/host provenance: timing counters from a Debug build or a
       // loaded box are not comparable to the Release baselines, and
       // this stamp is how a reviewer tells the two apart in the JSON.
       << ", \"build_type\": \""
#ifdef NDEBUG
       << "release"
#else
       << "debug"
#endif
       << "\", \"hardware_threads\": " << std::thread::hardware_concurrency()
       << ", \"notes\": [";
    for (std::size_t i = 0; i < notes_.size(); ++i) {
      if (i > 0) os << ", ";
      os << '"' << metrics::JsonEscape(notes_[i]) << '"';
    }
    os << "], \"tables\": {";
    for (std::size_t t = 0; t < tables_.size(); ++t) {
      const auto& table = tables_[t];
      if (t > 0) os << ", ";
      os << '"' << metrics::JsonEscape(table.id) << "\": {\"columns\": [";
      for (std::size_t c = 0; c < table.columns.size(); ++c) {
        if (c > 0) os << ", ";
        os << '"' << metrics::JsonEscape(table.columns[c]) << '"';
      }
      os << "], \"rows\": [";
      for (std::size_t r = 0; r < table.rows.size(); ++r) {
        if (r > 0) os << ", ";
        os << '[';
        for (std::size_t c = 0; c < table.rows[r].size(); ++c) {
          if (c > 0) os << ", ";
          os << '"' << metrics::JsonEscape(table.rows[r][c]) << '"';
        }
        os << ']';
      }
      os << "]}";
    }
    os << "}, \"metrics\": ";
    registry_.WriteJson(os);
    os << "}\n";
    os.close();
    if (!os) {
      std::printf("warning: write to %s failed\n", path.string().c_str());
      return false;
    }
    std::printf("wrote %s\n", path.string().c_str());
    return true;
  }

 private:
  struct StoredTable {
    std::string id;
    std::vector<std::string> columns;
    std::vector<std::vector<std::string>> rows;
  };

  std::string name_;
  std::string caption_;
  std::vector<std::string> notes_;
  std::vector<StoredTable> tables_;
  common::metrics::Registry registry_;
};

}  // namespace sfp::bench
