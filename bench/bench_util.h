// Shared helpers for the figure-reproduction bench harnesses.
//
// Each bench binary regenerates one table/figure of the paper's §VI and
// prints the series as an aligned table (paste-ready for
// EXPERIMENTS.md). Randomized experiments average over SFP_BENCH_SEEDS
// dataset draws (default 3; the paper used 5 — set SFP_BENCH_SEEDS=5
// to match at ~1.7x runtime).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.h"

namespace sfp::bench {

/// Number of dataset seeds to average over.
inline int NumSeeds() {
  if (const char* env = std::getenv("SFP_BENCH_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 3;
}

/// Prints a figure header in a uniform style.
inline void PrintHeader(const char* figure, const char* caption) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", figure, caption);
  std::printf("================================================================\n");
}

/// Prints a short note line (calibration caveats etc.).
inline void PrintNote(const char* note) { std::printf("note: %s\n", note); }

}  // namespace sfp::bench
