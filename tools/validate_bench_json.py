#!/usr/bin/env python3
"""Validate BENCH_*.json files against the sfp.bench.v1 schema.

The schema is documented in docs/METRICS.md. CI runs this over the
files the benchmark binaries emit (SFP_BENCH_JSON_DIR); it uses only
the standard library so it works on any runner.

Usage: tools/validate_bench_json.py BENCH_foo.json [BENCH_bar.json ...]
Exits nonzero and prints one line per problem if any file is invalid.
"""
import json
import sys

SCHEMA = "sfp.bench.v1"


def fail(errors, path, message):
    errors.append(f"{path}: {message}")


def check_table(errors, path, table_id, table):
    where = f"tables[{table_id!r}]"
    if not isinstance(table, dict):
        return fail(errors, path, f"{where} is not an object")
    columns = table.get("columns")
    rows = table.get("rows")
    if not isinstance(columns, list) or not all(isinstance(c, str) for c in columns):
        return fail(errors, path, f"{where}.columns must be a list of strings")
    if not columns:
        fail(errors, path, f"{where}.columns is empty")
    if not isinstance(rows, list):
        return fail(errors, path, f"{where}.rows must be a list")
    for i, row in enumerate(rows):
        if not isinstance(row, list) or not all(isinstance(c, str) for c in row):
            fail(errors, path, f"{where}.rows[{i}] must be a list of strings")
        elif len(row) != len(columns):
            fail(errors, path,
                 f"{where}.rows[{i}] has {len(row)} cells, expected {len(columns)}")


def check_histogram(errors, path, name, histogram):
    where = f"metrics.histograms[{name!r}]"
    for key, kind in (("count", int), ("sum", (int, float)),
                      ("min", (int, float)), ("max", (int, float))):
        if not isinstance(histogram.get(key), kind):
            fail(errors, path, f"{where}.{key} missing or wrong type")
    buckets = histogram.get("buckets")
    if not isinstance(buckets, list):
        return fail(errors, path, f"{where}.buckets must be a list")
    total = 0
    for i, bucket in enumerate(buckets):
        if not isinstance(bucket, dict):
            fail(errors, path, f"{where}.buckets[{i}] is not an object")
            continue
        le = bucket.get("le")
        if not (isinstance(le, (int, float)) or le == "+inf"):
            fail(errors, path, f"{where}.buckets[{i}].le must be a number or \"+inf\"")
        if i == len(buckets) - 1 and le != "+inf":
            fail(errors, path, f"{where} last bucket must have le == \"+inf\"")
        if not isinstance(bucket.get("count"), int):
            fail(errors, path, f"{where}.buckets[{i}].count must be an integer")
        else:
            total += bucket["count"]
    if isinstance(histogram.get("count"), int) and total != histogram["count"]:
        fail(errors, path,
             f"{where} bucket counts sum to {total}, count says {histogram['count']}")


def check_file(errors, path):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        return fail(errors, path, f"cannot parse: {error}")
    if not isinstance(doc, dict):
        return fail(errors, path, "top level is not an object")

    if doc.get("schema") != SCHEMA:
        fail(errors, path, f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    for key, kind in (("bench", str), ("caption", str), ("unix_time_s", (int, float)),
                      ("seeds", int)):
        if not isinstance(doc.get(key), kind):
            fail(errors, path, f"{key!r} missing or wrong type")
    # Provenance stamps (build type + hardware threads): optional so
    # baselines written before the stamps existed stay valid, but
    # type-checked when present.
    for key, kind in (("build_type", str), ("hardware_threads", int)):
        if key in doc and not isinstance(doc[key], kind):
            fail(errors, path, f"{key!r} has wrong type")

    notes = doc.get("notes")
    if not isinstance(notes, list) or not all(isinstance(n, str) for n in notes):
        fail(errors, path, "'notes' must be a list of strings")

    tables = doc.get("tables")
    if not isinstance(tables, dict) or not tables:
        fail(errors, path, "'tables' must be a non-empty object")
    else:
        for table_id, table in tables.items():
            check_table(errors, path, table_id, table)

    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        return fail(errors, path, "'metrics' must be an object")
    counters = metrics.get("counters")
    if not isinstance(counters, dict):
        fail(errors, path, "metrics.counters must be an object")
    else:
        for name, value in counters.items():
            if not isinstance(value, int) or value < 0:
                fail(errors, path,
                     f"metrics.counters[{name!r}] must be a non-negative integer")
    histograms = metrics.get("histograms")
    if not isinstance(histograms, dict):
        fail(errors, path, "metrics.histograms must be an object")
    else:
        for name, histogram in histograms.items():
            if not isinstance(histogram, dict):
                fail(errors, path, f"metrics.histograms[{name!r}] is not an object")
            else:
                check_histogram(errors, path, name, histogram)


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    for path in argv[1:]:
        before = len(errors)
        check_file(errors, path)
        status = "FAIL" if len(errors) > before else "ok"
        print(f"{status}: {path}")
    for error in errors:
        print(error, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
