#!/usr/bin/env python3
"""Compare candidate BENCH_*.json files against checked-in baselines.

CI's bench-regression gate: after the bench smoke run, the candidate
JSON (sfp.bench.v1, see docs/METRICS.md) is diffed against the
baselines in bench/baseline/. The gate fails on

  * schema drift — a bench file, table, column, counter or histogram
    that appears on one side only, or a table whose row count changed
    (tables are structurally deterministic: row counts come from fixed
    loops, only cell values vary by machine);
  * metric regressions — gated counters (GATES below) moving outside
    their allowed envelope. Only counters whose values are
    deterministic or machine-bounded ratios are gated; raw wall-clock
    rates (Mpps table cells, ns histograms) are machine-dependent and
    deliberately not compared.

Each GATES entry maps a counter-name regex to a rule:
  exact      — candidate must equal the baseline;
  tolerance  — |candidate - baseline| <= tolerance * max(baseline, 1);
  abs_max    — candidate must not exceed this value, regardless of the
               baseline (used for scaled-integer ratios such as
               serve.flatness_pct, whose ceiling of 200 encodes the
               "per-packet cost stays within 2x from 10 to 1000
               tenants" acceptance bar);
  abs_min    — candidate must not fall below this value, regardless of
               the baseline (used for acceptance floors such as
               system.throughput.compiled_vs_interpreted_x1_pct, whose
               floor of 500 encodes "compiled serving is at least 5x
               the interpreter single-threaded").
Ungated counters are checked for presence only. The first matching
pattern wins; counters may match no pattern.

Regenerate baselines (from the repo root, Release build):
  SFP_BENCH_SEEDS=1 SFP_BENCH_JSON_DIR=bench/baseline \
      ./build/bench/fig04_throughput   # and fig05_latency,
                                       # ext1_latency_under_load,
                                       # ext2_system_throughput,
                                       # fig07_recirculation,
                                       # fig08_solver_time, fig09_early_stop,
                                       # fig10_algorithms (solver benches:
                                       # also set SFP_BENCH_IP_CAP=5),
                                       # ext3_admission_churn, scn_*

Usage:
  tools/compare_bench_json.py --baseline bench/baseline --candidate bench-out
Exits nonzero and prints one line per problem if the gate fails.
"""
import argparse
import json
import os
import re
import sys

SCHEMA = "sfp.bench.v1"

DEFAULT_TOLERANCE = 0.15

# (counter-name regex, rule). First match wins; see module docstring.
GATES = [
    # The batched serve path must reproduce the scalar path exactly.
    (r"batch\.verified_identical$", {"exact": True}),
    # Lookup-index flatness ratio (percent). 100 = flat; 200 is the
    # "within 2x" acceptance ceiling. Timing-derived, so it gets a wide
    # relative band on top of the hard ceiling.
    (r"serve\.flatness_pct$", {"abs_max": 200, "tolerance": 0.60}),
    # Packet accounting is fully deterministic for the fixed workloads.
    (r"pipeline\.(packets|batches|recirculations)$", {"exact": True}),
    (r"pipeline\.drops", {"exact": True}),
    (r"pipeline\.stage\d+\.\w+\.(hits|misses|default_hits)$", {"exact": True}),
    # Flow-decision-cache totals: deterministic for a fixed thread
    # count, but given the issue's default band in case a bench ever
    # exports a core-count-dependent run.
    (r"pipeline\.cache\.(hits|misses|evictions)$", {"tolerance": DEFAULT_TOLERANCE}),
    # ext3 churn bench (Ext.3, incremental admission). Admit latencies
    # are raw wall-clock nanoseconds — presence-only, never compared.
    (r"system\.admit\.latency\.", {}),
    # Workload shape is a pure function of the seed.
    (r"churn\.(boxes\.target|population|diff\.traces)$", {"exact": True}),
    # Warm and cold admission must never disagree on the differential
    # shard, whatever the baseline says.
    (r"churn\.diff\.mismatches$", {"abs_max": 0}),
    # p99 admit latency at the top population over p99 at the bottom,
    # x100. ~100 = flat scaling; 300 is a generous "p99 grows at most
    # 3x across the 8x population sweep" ceiling on a noisy runner.
    (r"churn\.p99_scaling_ratio_x100$", {"abs_max": 300}),
    # The warm-restart hit rate under steady churn is the tentpole
    # acceptance bar: at least 90% of re-solves must reuse the basis.
    (r"solver\.warm\.hit_pct$", {"abs_min": 90}),
    # Admission decisions are deterministic in exact arithmetic but a
    # boundary candidate can flip under fp contraction — band them.
    (r"solver\.warm\.(admitted|rejected)$", {"tolerance": DEFAULT_TOLERANCE}),
    # The decision count is a pure function of the trace.
    (r"solver\.warm\.solves$", {"exact": True}),
    # Pivot-path lengths drift like solver.pivots across the compiler
    # matrix; phase1_iterations and rebuilds are presence-only (tiny
    # integers where one legitimate fallback would trip any band).
    (r"solver\.warm\.(dual_iterations|total_iterations)$", {"tolerance": 0.25}),
    (r"solver\.warm\.", {}),
    (r"system\.(tenants|admit\.)", {"exact": True}),
    # ext2: fixed packet count, and compiled-vs-interpreted telemetry
    # must stay bit-identical.
    (r"system\.throughput\.(packets|verified_identical)$", {"exact": True}),
    # Compiled-plan speedup floor (percent, best-of-trials at 1 thread):
    # 500 = the "compiled serving >= 5x the interpreter" acceptance bar.
    # A floor rather than a band — the upside is machine-dependent.
    (r"system\.throughput\.compiled_vs_interpreted_x1_pct$", {"abs_min": 500}),
    # The 1->8 thread scaling ratio is machine-dependent (the CI runner
    # may have a single hardware thread), so it is presence-only.
    # Compiler pass statistics are pure functions of the admitted
    # chains: plan counts, fusion and elimination tallies must
    # reproduce exactly (docs/METRICS.md compiler.* rows).
    (r"compiler\.(plans_compiled|recompiles|invalidations|fallback_tenants|"
     r"fused_stages|dead_tables_eliminated|folded_tables)$", {"exact": True}),
    (r"telemetry\.", {"exact": True}),
    # Pass-packing telemetry (DESIGN.md "Intra-chain NF parallelism"):
    # pass counts and merge-reject tallies are pure functions of the
    # admitted chains and the conflict analysis — byte-reproducible.
    (r"pipeline\.passes\.", {"exact": True}),
    # fig07b acceptance floors (integer percent, deterministic for the
    # fixed seeds): packing must save >= 30% of the passes on mixed
    # 6-NF chains and strictly lower the virtual p99.
    (r"parallelism\.passes_saved_pct_l6$", {"abs_min": 30}),
    (r"parallelism\.p99_saved_pct_l6$", {"abs_min": 1}),
    (r"parallelism\.passes_saved_pct$", {"exact": True}),
    # Cross-tenant co-scheduling (DESIGN.md "Cross-tenant pass
    # sharing"): the fig07c population is fully deterministic (no RNG,
    # fixed admission order), so aggregate pass counts are exact; the
    # saved-% floor of 20 is the tentpole acceptance bar.
    (r"parallelism\.xt\.passes_saved_pct$", {"abs_min": 20, "exact": True}),
    (r"parallelism\.xt\.", {"exact": True}),
    # Branch & bound calibration (fig08's uncapped deterministic solve):
    # node/pivot counts are deterministic on one binary but drift a few
    # percent across the compiler matrix (fp-contract changes LP pivot
    # sequences, which shifts branching decisions), so they get a band
    # rather than an exact match.
    (r"solver\.(nodes|pivots|refactorizations)$", {"tolerance": 0.25}),
    # The calibration objectives (milli-units) must agree across the
    # sparse, dense-reference and parallel solvers to LP tolerance.
    (r"solver\.(det|dense|par)\.objective_milli$", {"tolerance": 0.001}),
    # Dropped nodes weaken the dual bound; the calibration solve must
    # never drop any.
    (r"solver\.nodes_dropped$", {"abs_max": 0}),
    # Scenario benches (scn_*): conservation must never be violated and
    # no recovery episode may be left open after the drain, whatever
    # the baseline says.
    (r"scenario\.conservation_violations$", {"abs_max": 0}),
    (r"scenario\.open_episodes$", {"abs_max": 0}),
    # Recovery-time percentiles (simulated microseconds). Sim-time
    # deltas are integer-exact on one binary, but a boundary-case
    # admission flip under a different compiler's fp contraction can
    # legitimately shift an episode — hence a band, plus a hard ceiling
    # (60 s covers a full max-backoff episode chain at the widest
    # builtin poll cadence with margin).
    (r"scenario\.recovery\.(p50|p99|max)_us$",
     {"tolerance": 0.25, "abs_max": 60_000_000}),
    # Flash-crowd admit-horizon sweep (deterministic population, no
    # RNG): co-scheduling must admit at least 15% further before the
    # recirculation port overloads. Listed before the generic
    # scenario.* rule so the floor applies (first match wins).
    (r"scenario\.xt\.admit_horizon_gain_pct$", {"abs_min": 15, "exact": True}),
    # Everything else the scenario runner and recovery loop export is a
    # pure function of the scenario seed (serve_threads=1): packet and
    # episode accounting must reproduce exactly.
    (r"scenario\.", {"exact": True}),
    (r"system\.recover\.", {"exact": True}),
]


def find_rule(name):
    for pattern, rule in GATES:
        if re.match(pattern, name):
            return pattern, rule
    return None, None


def load(path, errors):
    try:
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        errors.append(f"{path}: cannot parse: {error}")
        return None
    if doc.get("schema") != SCHEMA:
        errors.append(f"{path}: schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
        return None
    return doc


def diff_sets(errors, where, kind, base, cand):
    for name in sorted(base - cand):
        errors.append(f"{where}: {kind} {name!r} missing from candidate (schema drift)")
    for name in sorted(cand - base):
        errors.append(f"{where}: {kind} {name!r} not in baseline (schema drift — "
                      f"regenerate bench/baseline/)")


def compare_structure(errors, name, base, cand):
    base_tables, cand_tables = base.get("tables", {}), cand.get("tables", {})
    diff_sets(errors, name, "table", set(base_tables), set(cand_tables))
    for table_id in sorted(set(base_tables) & set(cand_tables)):
        bt, ct = base_tables[table_id], cand_tables[table_id]
        where = f"{name}: tables[{table_id!r}]"
        if bt.get("columns") != ct.get("columns"):
            errors.append(f"{where}: columns changed (schema drift): "
                          f"{bt.get('columns')} -> {ct.get('columns')}")
        base_rows = len(bt.get("rows", []))
        cand_rows = len(ct.get("rows", []))
        if base_rows != cand_rows:
            errors.append(f"{where}: row count changed {base_rows} -> {cand_rows}")
    base_hists = set(base.get("metrics", {}).get("histograms", {}))
    cand_hists = set(cand.get("metrics", {}).get("histograms", {}))
    diff_sets(errors, name, "histogram", base_hists, cand_hists)


def compare_counters(errors, name, base, cand):
    base_counters = base.get("metrics", {}).get("counters", {})
    cand_counters = cand.get("metrics", {}).get("counters", {})
    diff_sets(errors, name, "counter", set(base_counters), set(cand_counters))
    # A gated baseline counter that the candidate dropped entirely must
    # fail as an unevaluated gate, not just as generic schema drift:
    # the diff_sets message alone reads as cosmetic, and the loop below
    # only sees the intersection, so without this the rule would be
    # silently skipped.
    for counter in sorted(set(base_counters) - set(cand_counters)):
        pattern, rule = find_rule(counter)
        if rule is not None:
            errors.append(f"{name}: {counter}: gated counter missing from "
                          f"candidate; gate {pattern} not evaluated")
    gated = 0
    for counter in sorted(set(base_counters) & set(cand_counters)):
        pattern, rule = find_rule(counter)
        if rule is None:
            continue
        gated += 1
        expected, actual = base_counters[counter], cand_counters[counter]
        where = f"{name}: {counter}"
        # A rule may combine several sub-rules (e.g. a hard ceiling plus
        # a relative band): evaluate every one and report every
        # violation, so a single CI run shows the full picture instead
        # of stopping at the first failing sub-rule.
        if rule.get("exact") and actual != expected:
            errors.append(f"{where}: {actual} != baseline {expected} (gate {pattern})")
        abs_max = rule.get("abs_max")
        if abs_max is not None and actual > abs_max:
            errors.append(f"{where}: {actual} exceeds hard ceiling {abs_max} "
                          f"(gate {pattern})")
        abs_min = rule.get("abs_min")
        if abs_min is not None and actual < abs_min:
            errors.append(f"{where}: {actual} below hard floor {abs_min} "
                          f"(gate {pattern})")
        tolerance = rule.get("tolerance")
        if tolerance is not None:
            allowed = tolerance * max(expected, 1)
            if abs(actual - expected) > allowed:
                errors.append(
                    f"{where}: {actual} outside +/-{tolerance * 100:.0f}% of "
                    f"baseline {expected} (gate {pattern})")
    return gated


def bench_files(directory):
    try:
        names = os.listdir(directory)
    except OSError as error:
        raise SystemExit(f"cannot list {directory}: {error}")
    return {n for n in names if n.startswith("BENCH_") and n.endswith(".json")}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="directory of baseline JSON")
    parser.add_argument("--candidate", required=True, help="directory of candidate JSON")
    args = parser.parse_args(argv[1:])

    errors = []
    base_files = bench_files(args.baseline)
    cand_files = bench_files(args.candidate)
    if not base_files:
        errors.append(f"{args.baseline}: no BENCH_*.json baselines found")
    diff_sets(errors, "gate", "bench file", base_files, cand_files)

    for filename in sorted(base_files & cand_files):
        before = len(errors)
        base = load(os.path.join(args.baseline, filename), errors)
        cand = load(os.path.join(args.candidate, filename), errors)
        gated = 0
        if base is not None and cand is not None:
            compare_structure(errors, filename, base, cand)
            gated = compare_counters(errors, filename, base, cand)
        status = "FAIL" if len(errors) > before else "ok"
        print(f"{status}: {filename} ({gated} gated counters)")

    for error in errors:
        print(error, file=sys.stderr)
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
