#!/usr/bin/env python3
"""Fail on dead relative links in README.md and docs/*.md.

CI's docs gate: every Markdown inline link or image whose target is a
relative path must resolve to an existing file or directory in the
repository. External targets (http/https/mailto) and pure in-page
anchors (#...) are skipped; a fragment on a relative link is stripped
before the existence check (anchor validity is not checked). Reference-
style definitions (`[label]: target`) are checked the same way.

Usage:
  tools/check_doc_links.py [repo_root]
Exits nonzero and prints one line per dead link.
"""
import os
import re
import sys

# Inline links/images: [text](target) / ![alt](target "title").
INLINE = re.compile(r"!?\[[^\]]*\]\(\s*<?([^)\s>]+)>?(?:\s+\"[^\"]*\")?\s*\)")
# Reference definitions: [label]: target
REFDEF = re.compile(r"^\s*\[[^\]]+\]:\s+<?(\S+?)>?(?:\s+\"[^\"]*\")?\s*$")
FENCE = re.compile(r"^\s*(```|~~~)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def doc_files(root):
    files = [os.path.join(root, name)
             for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md")]
    docs = os.path.join(root, "docs")
    if os.path.isdir(docs):
        for name in sorted(os.listdir(docs)):
            if name.endswith(".md"):
                files.append(os.path.join(docs, name))
    return [f for f in files if os.path.isfile(f)]


def targets_in(path):
    """Yields (line_number, target) for every link target in the file,
    skipping fenced code blocks (their brackets are code, not links)."""
    in_fence = False
    with open(path, encoding="utf-8") as handle:
        for number, line in enumerate(handle, start=1):
            if FENCE.match(line):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            for match in INLINE.finditer(line):
                yield number, match.group(1)
            match = REFDEF.match(line)
            if match:
                yield number, match.group(1)


def main(argv):
    root = os.path.abspath(argv[1] if len(argv) > 1 else ".")
    dead = []
    checked = 0
    for path in doc_files(root):
        base = os.path.dirname(path)
        for number, target in targets_in(path):
            if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
                continue
            checked += 1
            resolved = os.path.normpath(
                os.path.join(base, target.split("#", 1)[0]))
            if not os.path.exists(resolved):
                rel = os.path.relpath(path, root)
                dead.append(f"{rel}:{number}: dead link {target!r} "
                            f"(resolved to {os.path.relpath(resolved, root)})")
    for line in dead:
        print(line, file=sys.stderr)
    print(f"{'FAIL' if dead else 'ok'}: {checked} relative links checked, "
          f"{len(dead)} dead")
    return 1 if dead else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
