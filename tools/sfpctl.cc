// sfpctl — command-line utility around the SFP library.
//
//   sfpctl gen   --sfcs N [--types I] [--seed S] [--len-min A --len-max B]
//                [--out FILE]            synthesize a placement instance
//   sfpctl place --in FILE --algo ip|appro|greedy|anneal
//                [--passes P] [--time-limit SEC] [--no-consolidation]
//                                         solve and print the placement
//   sfpctl p4    --layout fw,tc/lb,rt     emit P4 for a physical layout
//   sfpctl trace --replay FILE [--threads N] [--batch B]
//                [--nf-parallel on|off] [--xt-packing on|off]
//                [--tenants N] [--seed S]
//                                         replay an SFPT trace; batch > 1
//                                         or threads > 0 selects the
//                                         batched serve path with fused
//                                         telemetry; --tenants admits N
//                                         generated chains first and
//                                         prints the per-tenant pass map
//                                         (--xt-packing adds the shared
//                                         stage-window occupancy)
//   sfpctl scenario list                  list the builtin scenarios
//   sfpctl scenario run NAME [--duration SEC] [--threads N] [--compiled 1]
//                [--nf-parallel on|off] [--xt-packing on|off]
//                                         run a scenario with its
//                                         recovery loop and print the
//                                         summary (docs/SCENARIOS.md)
//   sfpctl churn --tenants N [--arrivals A] [--seed S] [--warm=off]
//                                         replay a Pareto-lifetime
//                                         admission churn trace through
//                                         the incremental admission LP
//                                         (the ext3 bench's generator)
//                                         and print warm-restart and
//                                         latency stats
//
// Exit code 0 on success, 1 on usage/solve errors (scenario run: also
// on a conservation violation).
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <initializer_list>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "controlplane/admission_lp.h"
#include "controlplane/annealing_solver.h"
#include "controlplane/approx_solver.h"
#include "controlplane/greedy_solver.h"
#include "controlplane/ilp_solver.h"
#include "core/sfp_system.h"
#include "net/trace.h"
#include "p4gen/p4gen.h"
#include "scenario/runner.h"
#include "workload/churn.h"
#include "workload/instance_io.h"
#include "workload/sfc_gen.h"

namespace {

using namespace sfp;
using namespace sfp::controlplane;

/// --key value / --key=value argument map (flags without values
/// unsupported except --no-consolidation).
std::map<std::string, std::string> ParseArgs(int argc, char** argv, int first) {
  std::map<std::string, std::string> args;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) continue;
    key = key.substr(2);
    if (const auto eq = key.find('='); eq != std::string::npos) {
      args[key.substr(0, eq)] = key.substr(eq + 1);
    } else if (key == "no-consolidation") {
      args[key] = "1";
    } else if (i + 1 < argc) {
      args[key] = argv[++i];
    }
  }
  return args;
}

std::string Get(const std::map<std::string, std::string>& args, const std::string& key,
                const std::string& fallback) {
  const auto it = args.find(key);
  return it != args.end() ? it->second : fallback;
}

int CmdGen(const std::map<std::string, std::string>& args) {
  workload::DatasetParams params;
  params.num_sfcs = std::atoi(Get(args, "sfcs", "20").c_str());
  params.num_types = std::atoi(Get(args, "types", "10").c_str());
  params.min_chain_len = std::atoi(Get(args, "len-min", "3").c_str());
  params.max_chain_len = std::atoi(Get(args, "len-max", "7").c_str());
  Rng rng(static_cast<std::uint64_t>(std::atoll(Get(args, "seed", "1").c_str())));
  SwitchResources sw;
  const auto instance = workload::GenerateInstance(params, sw, rng);

  const std::string out = Get(args, "out", "");
  if (out.empty()) {
    workload::WriteInstance(instance, std::cout);
  } else if (!workload::SaveInstance(instance, out)) {
    std::fprintf(stderr, "sfpctl: cannot write %s\n", out.c_str());
    return 1;
  } else {
    std::printf("wrote %d SFCs over %d types to %s\n", instance.NumSfcs(),
                instance.num_types, out.c_str());
  }
  return 0;
}

void PrintSolution(const PlacementInstance& instance, const PlacementSolution& solution,
                   double objective, double seconds) {
  std::printf("objective (eq.1) : %.1f\n", objective);
  std::printf("placed chains    : %d / %d\n", solution.NumPlaced(), instance.NumSfcs());
  std::printf("offloaded        : %.1f Gbps\n", solution.OffloadedGbps(instance));
  std::printf("backplane        : %.1f Gbps (C=%.0f)\n", solution.BackplaneGbps(instance),
              instance.sw.capacity_gbps);
  std::printf("blocks/stage avg : %.1f (B=%d)\n",
              solution.AvgBlockUtilization(instance, MemoryModel::kConsolidated),
              instance.sw.blocks_per_stage);
  std::printf("solve time       : %.2f s\n", seconds);
  std::printf("physical layout  :\n");
  for (int s = 0; s < instance.sw.stages; ++s) {
    std::printf("  stage %d:", s);
    for (int i = 0; i < instance.num_types; ++i) {
      if (solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]) {
        std::printf(" t%d", i);
      }
    }
    std::printf("\n");
  }
}

int CmdPlace(const std::map<std::string, std::string>& args) {
  const std::string in = Get(args, "in", "");
  if (in.empty()) {
    std::fprintf(stderr, "sfpctl place: --in FILE required\n");
    return 1;
  }
  auto instance = workload::LoadInstance(in);
  if (!instance) {
    std::fprintf(stderr, "sfpctl: cannot parse %s\n", in.c_str());
    return 1;
  }

  const std::string algo = Get(args, "algo", "appro");
  const int passes = std::atoi(Get(args, "passes", "3").c_str());
  const double time_limit = std::atof(Get(args, "time-limit", "30").c_str());
  const auto memory_model = args.contains("no-consolidation")
                                ? MemoryModel::kPerLogicalNf
                                : MemoryModel::kConsolidated;

  if (algo == "ip") {
    IlpOptions options;
    options.model.max_passes = passes;
    options.model.memory_model = memory_model;
    options.time_limit_seconds = time_limit;
    options.relative_gap = 1e-4;
    const auto report = SolveIlp(*instance, options);
    std::printf("SFP-IP (%s, bound %.1f)\n", lp::ToString(report.status),
                report.best_bound);
    PrintSolution(*instance, report.solution, report.objective, report.seconds);
  } else if (algo == "appro") {
    ApproxOptions options;
    options.model.max_passes = passes;
    options.model.memory_model = memory_model;
    const auto report = SolveApprox(*instance, options);
    if (!report.ok) {
      std::fprintf(stderr, "sfpctl: approximation found no verified placement\n");
      return 1;
    }
    std::printf("SFP-Appro (LP bound %.1f, %d roundings, %d stripped)\n", report.lp_bound,
                report.roundings, report.stripped_sfcs);
    PrintSolution(*instance, report.solution, report.objective, report.seconds);
  } else if (algo == "greedy") {
    GreedyOptions options;
    options.max_passes = passes;
    options.memory_model = memory_model;
    const auto report = SolveGreedy(*instance, options);
    std::printf("Greedy (Algorithm 2)\n");
    PrintSolution(*instance, report.solution, report.objective, report.seconds);
  } else if (algo == "anneal") {
    AnnealingOptions options;
    options.placement.max_passes = passes;
    options.placement.memory_model = memory_model;
    const auto report = SolveAnnealing(*instance, options);
    std::printf("Annealing (%d accepted / %d improving moves)\n", report.accepted_moves,
                report.improving_moves);
    PrintSolution(*instance, report.solution, report.objective, report.seconds);
  } else {
    std::fprintf(stderr, "sfpctl place: unknown --algo %s\n", algo.c_str());
    return 1;
  }
  return 0;
}

int CmdP4(const std::map<std::string, std::string>& args) {
  // --layout "fw,tc/lb,rt": stages separated by '/', NFs by ','.
  const std::string layout_text = Get(args, "layout", "fw/tc/lb/rt");
  dataplane::DataPlane dp{switchsim::SwitchConfig{}};

  std::map<std::string, nf::NfType> by_name;
  for (int t = 0; t < nf::kNumNfTypes; ++t) {
    by_name[nf::NfShortName(static_cast<nf::NfType>(t))] = static_cast<nf::NfType>(t);
  }
  std::istringstream stages(layout_text);
  std::string stage_text;
  int stage = 0;
  while (std::getline(stages, stage_text, '/')) {
    std::istringstream nfs(stage_text);
    std::string nf_name;
    while (std::getline(nfs, nf_name, ',')) {
      const auto it = by_name.find(nf_name);
      if (it == by_name.end()) {
        std::fprintf(stderr, "sfpctl p4: unknown NF '%s' (use fw/lb/tc/rt/rl/nat)\n",
                     nf_name.c_str());
        return 1;
      }
      if (!dp.InstallPhysicalNf(stage, it->second)) {
        std::fprintf(stderr, "sfpctl p4: cannot install %s at stage %d\n", nf_name.c_str(),
                     stage);
        return 1;
      }
    }
    ++stage;
  }
  std::cout << p4gen::EmitProgram(dp, "sfpctl_layout");
  return 0;
}

/// Prints every exported counter under the given prefixes (the serve
/// and telemetry stats a trace replay populates).
void PrintStats(const core::SfpSystem& system, std::initializer_list<const char*> prefixes) {
  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  std::printf("stats:\n");
  for (const auto& counter : registry.Counters()) {
    for (const char* prefix : prefixes) {
      if (counter.name.rfind(prefix, 0) == 0) {
        std::printf("  %-40s %llu\n", counter.name.c_str(),
                    static_cast<unsigned long long>(counter.value));
        break;
      }
    }
  }
}

/// Parses an on|off flag; returns `fallback` when absent, complains
/// and returns nullopt on anything else.
std::optional<bool> GetOnOff(const std::map<std::string, std::string>& args,
                             const std::string& key, bool fallback) {
  const std::string value = Get(args, key, fallback ? "on" : "off");
  if (value == "on") return true;
  if (value == "off") return false;
  std::fprintf(stderr, "sfpctl: --%s must be on or off (got '%s')\n", key.c_str(),
               value.c_str());
  return std::nullopt;
}

/// Admits `count` generated tenants and prints each one's pass map:
/// which (stage, pass) every logical NF landed on, and what the
/// chain-order reference would have cost. Lets `--nf-parallel on|off`
/// be compared tenant by tenant on the same command line.
bool AdmitGeneratedTenants(core::SfpSystem& system, int count, std::uint64_t seed) {
  Rng rng(seed);
  const auto& config = system.data_plane().pipeline().config();
  std::printf("tenant pass map (nf-parallel %s, xt-packing %s):\n",
              config.nf_parallelism ? "on" : "off",
              config.cross_tenant_packing ? "on" : "off");
  for (int t = 1; t <= count; ++t) {
    const auto tenant = static_cast<dataplane::TenantId>(t);
    const int chain_len = static_cast<int>(rng.UniformInt(3, 6));
    const auto sfc = workload::GenerateConcreteSfc(tenant, chain_len, 5.0, rng,
                                                   /*rules_per_nf=*/8);
    const auto admit = system.AdmitTenant(sfc);
    if (!admit.admitted) {
      std::printf("  tenant %-3d REJECTED: %s\n", t, admit.reason.c_str());
      continue;
    }
    const auto* alloc = system.data_plane().FindAllocation(tenant);
    std::ostringstream map;
    for (std::size_t j = 0; j < sfc.chain.size(); ++j) {
      if (j > 0) map << " -> ";
      map << nf::NfShortName(sfc.chain[j].type) << "@s"
          << alloc->placements[j].stage << "p" << alloc->placements[j].pass;
    }
    std::printf("  tenant %-3d passes %d (sequential %d)  %s\n", t, alloc->passes,
                alloc->sequential_passes, map.str().c_str());
  }
  return true;
}

/// Prints the shared stage-window occupancy ledger: one line per open
/// (pass, stage) window with its tenant-claim and rule-entry load.
/// Shared by `trace` and `scenario run` when --xt-packing is on.
void PrintXtOccupancy(const dataplane::DataPlane& data_plane) {
  const auto* ledger = data_plane.xt_ledger();
  if (ledger == nullptr) return;
  std::printf("stage-window occupancy (%zu tenants, %lld entries booked):\n",
              ledger->NumTenants(),
              static_cast<long long>(ledger->TotalEntries()));
  for (const auto& [key, window] : ledger->windows()) {
    std::printf("  pass %d stage %-2d  %3lld claims  %5lld entries\n", key.first,
                key.second, static_cast<long long>(window.claims),
                static_cast<long long>(window.entries));
  }
}

int CmdTrace(const std::map<std::string, std::string>& args) {
  const std::string path = Get(args, "replay", "");
  const int threads = std::atoi(Get(args, "threads", "0").c_str());
  const int batch = std::atoi(Get(args, "batch", "1").c_str());
  if (batch < 1 || threads < 0) {
    std::fprintf(stderr, "sfpctl trace: --batch must be >= 1 and --threads >= 0\n");
    return 1;
  }
  const auto parallel = GetOnOff(args, "nf-parallel", false);
  if (!parallel) return 1;
  const auto xt_packing = GetOnOff(args, "xt-packing", false);
  if (!xt_packing) return 1;
  const int tenants = std::atoi(Get(args, "tenants", "0").c_str());
  if (tenants < 0) {
    std::fprintf(stderr, "sfpctl trace: --tenants must be >= 0\n");
    return 1;
  }
  if (path.empty() && tenants == 0) {
    std::fprintf(stderr, "sfpctl trace: --replay FILE or --tenants N required\n");
    return 1;
  }

  switchsim::SwitchConfig config;
  config.nf_parallelism = *parallel;
  config.cross_tenant_packing = *xt_packing;
  core::SfpSystem system{config};
  for (int t = 0; t < nf::kNumNfTypes; ++t) {
    system.data_plane().InstallPhysicalNf(t % system.data_plane().pipeline().num_stages(),
                                          static_cast<nf::NfType>(t));
  }
  if (tenants > 0) {
    const auto seed =
        static_cast<std::uint64_t>(std::atoll(Get(args, "seed", "1").c_str()));
    AdmitGeneratedTenants(system, tenants, seed);
  }
  if (path.empty()) {
    // Pass-map-only mode: the admission output above is the result.
    PrintXtOccupancy(system.data_plane());
    PrintStats(system, {"pipeline.passes.", "parallelism.xt."});
    return 0;
  }
  const auto trace = net::Trace::Load(path);
  if (!trace) {
    std::fprintf(stderr, "sfpctl: cannot load %s\n", path.c_str());
    return 1;
  }
  std::printf("%zu frames, %.1f KB, duration %.1f us, offered %.2f Gbps\n", trace->size(),
              trace->TotalBytes() / 1e3, trace->DurationNs() / 1e3, trace->OfferedGbps());
  int parse_errors = 0;
  if (batch > 1 || threads > 0) {
    // Batched replay: parse up to --batch frames, then serve them via
    // the fused ProcessBatch path (telemetry recorded inside the
    // workers) on --threads workers (0 = hardware default).
    switchsim::BatchOptions options;
    options.num_threads = threads;
    std::vector<net::Packet> packets;
    packets.reserve(static_cast<std::size_t>(batch));
    const auto flush = [&] {
      if (packets.empty()) return;
      system.ProcessBatch(packets, options);
      packets.clear();
    };
    for (const auto& record : trace->records()) {
      auto packet = net::Packet::Parse(record.frame);
      if (!packet) {
        ++parse_errors;
        continue;
      }
      packets.push_back(std::move(*packet));
      if (packets.size() == static_cast<std::size_t>(batch)) flush();
    }
    flush();
  } else {
    for (const auto& record : trace->records()) {
      auto result = system.data_plane().pipeline().ProcessBytes(record.frame);
      if (result.parse_error) {
        ++parse_errors;
        continue;
      }
      system.Telemetry().Record(static_cast<std::uint32_t>(record.frame.size()), result);
    }
  }
  const auto total = system.Telemetry().Total();
  std::printf("replayed: %llu packets, %d parse errors, mean latency %.0f ns\n",
              static_cast<unsigned long long>(total.packets), parse_errors,
              total.MeanLatencyNs());
  PrintXtOccupancy(system.data_plane());
  PrintStats(system, {"telemetry.", "pipeline.cache.", "pipeline.passes.",
                      "parallelism.xt."});
  return 0;
}

int CmdChurn(const std::map<std::string, std::string>& args) {
  workload::ChurnOptions churn;
  churn.target_population = std::atoll(Get(args, "tenants", "1000").c_str());
  if (churn.target_population < 1) {
    std::fprintf(stderr, "sfpctl churn: --tenants must be >= 1\n");
    return 1;
  }
  churn.num_arrivals =
      std::atoll(Get(args, "arrivals",
                     std::to_string(2 * churn.target_population).c_str())
                     .c_str());
  const auto seed =
      static_cast<std::uint64_t>(std::atoll(Get(args, "seed", "1").c_str()));
  const bool warm = Get(args, "warm", "on") != "off";

  Rng rng(seed);
  const auto trace = workload::GenerateChurnTrace(churn, rng);

  // Capacity calibration mirrors bench/ext3_admission_churn: 105% of
  // the live demand at the midpoint arrival, so the second half of the
  // trace runs at capacity and decisions ride binding rows.
  std::vector<double> stage(static_cast<std::size_t>(churn.num_stages), 0.0);
  double backplane = 0.0;
  {
    std::map<controlplane::IncrementalAdmissionLp::TenantKey,
             const controlplane::TenantFootprint*>
        live;
    std::int64_t arrivals_seen = 0;
    const std::int64_t midpoint = churn.num_arrivals / 2;
    for (const auto& event : trace) {
      if (event.kind == workload::ChurnEvent::Kind::kArrive) {
        for (const auto& [s, entries] : event.footprint.stage_entries) {
          stage[static_cast<std::size_t>(s)] += entries;
        }
        backplane += event.footprint.BackplaneCharge();
        live.emplace(event.tenant, &event.footprint);
        if (++arrivals_seen == midpoint) break;
      } else if (const auto it = live.find(event.tenant); it != live.end()) {
        for (const auto& [s, entries] : it->second->stage_entries) {
          stage[static_cast<std::size_t>(s)] -= entries;
        }
        backplane -= it->second->BackplaneCharge();
        live.erase(it);
      }
    }
  }
  controlplane::AdmissionLpOptions lp_options;
  lp_options.stage_capacity.reserve(stage.size());
  for (const double demand : stage) lp_options.stage_capacity.push_back(demand * 1.05);
  lp_options.backplane_gbps = backplane * 1.05;
  lp_options.warm = warm;
  controlplane::IncrementalAdmissionLp lp(lp_options);

  std::vector<std::uint64_t> latencies_ns;
  latencies_ns.reserve(trace.size());
  std::size_t live_now = 0;
  std::size_t peak_live = 0;
  for (const auto& event : trace) {
    if (event.kind == workload::ChurnEvent::Kind::kDepart) {
      if (lp.Remove(event.tenant)) --live_now;
      continue;
    }
    const auto started = std::chrono::steady_clock::now();
    const auto decision = lp.TryAdmit(event.tenant, event.footprint);
    const auto elapsed = std::chrono::steady_clock::now() - started;
    latencies_ns.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count()));
    if (decision.admitted && ++live_now > peak_live) peak_live = live_now;
  }
  std::sort(latencies_ns.begin(), latencies_ns.end());
  const auto pct = [&](double q) -> unsigned long long {
    if (latencies_ns.empty()) return 0;
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(latencies_ns.size() - 1) + 0.5);
    return latencies_ns[std::min(idx, latencies_ns.size() - 1)];
  };

  const auto& counters = lp.counters();
  const double hit_pct =
      counters.warm_attempts > 0
          ? 100.0 * static_cast<double>(counters.warm_successes) /
                static_cast<double>(counters.warm_attempts)
          : 0.0;
  std::printf("churn trace       : %lld arrivals toward %lld live tenants "
              "(seed %llu, warm %s)\n",
              static_cast<long long>(churn.num_arrivals),
              static_cast<long long>(churn.target_population),
              static_cast<unsigned long long>(seed), warm ? "on" : "off");
  std::printf("decisions         : %lld admitted, %lld rejected "
              "(%zu live at end, peak %zu)\n",
              static_cast<long long>(counters.admitted),
              static_cast<long long>(counters.rejected), lp.num_admitted(),
              peak_live);
  std::printf("warm restarts     : %lld/%lld carried by dual repair "
              "(%.1f%%), %lld rebuilds\n",
              static_cast<long long>(counters.warm_successes),
              static_cast<long long>(counters.warm_attempts), hit_pct,
              static_cast<long long>(counters.rebuilds));
  std::printf("simplex pivots    : %lld dual, %lld phase-1, %lld total "
              "(%.2f per decision)\n",
              static_cast<long long>(counters.dual_iterations),
              static_cast<long long>(counters.phase1_iterations),
              static_cast<long long>(counters.total_iterations),
              counters.solves > 0
                  ? static_cast<double>(counters.total_iterations) /
                        static_cast<double>(counters.solves)
                  : 0.0);
  std::printf("admit latency     : p50 %llu ns, p99 %llu ns, max %llu ns\n",
              pct(0.50), pct(0.99),
              latencies_ns.empty()
                  ? 0ULL
                  : static_cast<unsigned long long>(latencies_ns.back()));
  return 0;
}

int CmdScenario(int argc, char** argv) {
  const std::string verb = argc > 2 ? argv[2] : "";
  if (verb == "list") {
    std::printf("builtin scenarios:\n");
    for (const auto& spec : scenario::BuiltinScenarios()) {
      std::printf("  %-14s %6.0f s  %s\n", spec.name.c_str(), spec.duration_s,
                  spec.description.c_str());
    }
    return 0;
  }
  if (verb != "run" || argc < 4) {
    std::fprintf(stderr, "usage: sfpctl scenario <list|run NAME> [--duration SEC] "
                         "[--threads N] [--compiled 1] [--nf-parallel on|off] "
                         "[--xt-packing on|off]\n");
    return 1;
  }

  scenario::ScenarioSpec spec;
  if (!scenario::FindScenario(argv[3], spec)) {
    std::fprintf(stderr, "sfpctl scenario: unknown scenario '%s' (try: sfpctl "
                         "scenario list)\n", argv[3]);
    return 1;
  }
  const auto args = ParseArgs(argc, argv, 4);
  const double duration = std::atof(Get(args, "duration", "0").c_str());
  if (duration > 0.0) spec.duration_s = duration;
  spec.serve_threads = std::atoi(Get(args, "threads", "1").c_str());
  if (std::atoi(Get(args, "compiled", "0").c_str()) != 0) spec.use_compiled_plans = true;
  const auto parallel = GetOnOff(args, "nf-parallel", spec.switch_config.nf_parallelism);
  if (!parallel) return 1;
  spec.switch_config.nf_parallelism = *parallel;
  const auto xt_packing =
      GetOnOff(args, "xt-packing", spec.switch_config.cross_tenant_packing);
  if (!xt_packing) return 1;
  spec.switch_config.cross_tenant_packing = *xt_packing;

  std::printf("running %s for %.0f simulated seconds (threads=%d%s%s%s)...\n",
              spec.name.c_str(), spec.duration_s, spec.serve_threads,
              spec.use_compiled_plans ? ", compiled plans" : "",
              spec.switch_config.nf_parallelism ? ", nf-parallel" : "",
              spec.switch_config.cross_tenant_packing ? ", xt-packing" : "");
  scenario::ScenarioRunner runner(spec);
  const auto result = runner.Run();

  std::printf("ticks             : %llu\n", static_cast<unsigned long long>(result.ticks));
  std::printf("packets           : %llu sent, %llu drops, %llu recirculated\n",
              static_cast<unsigned long long>(result.packets_sent),
              static_cast<unsigned long long>(result.total.drops),
              static_cast<unsigned long long>(result.total.recirculated_packets));
  std::printf("tenants           : %llu admitted, %llu departed, %llu rejects\n",
              static_cast<unsigned long long>(result.tenants_admitted),
              static_cast<unsigned long long>(result.tenants_departed),
              static_cast<unsigned long long>(result.admit_rejects));
  std::printf("fault fires       : %llu\n",
              static_cast<unsigned long long>(result.fault_fires));
  std::printf("recovery          : %llu detections, %llu attempts, %llu repaired, "
              "%llu quarantined\n",
              static_cast<unsigned long long>(result.recovery.detections),
              static_cast<unsigned long long>(result.recovery.attempts),
              static_cast<unsigned long long>(result.recovery.successes),
              static_cast<unsigned long long>(result.recovery.quarantined));
  std::printf("recovery time     : p50 %.0f ms, p99 %.0f ms, max %.0f ms\n",
              result.recovery_p50_ms, result.recovery_p99_ms, result.recovery_max_ms);
  std::printf("conservation      : %llu checks, %llu violations\n",
              static_cast<unsigned long long>(result.conservation_checks),
              static_cast<unsigned long long>(result.conservation_violations));
  for (const auto& error : result.errors) {
    std::fprintf(stderr, "sfpctl scenario: %s\n", error.c_str());
  }
  return result.ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: sfpctl <gen|place|p4|trace|scenario|churn> [--key value ...]\n"
                 "  gen   --sfcs N [--types I] [--seed S] [--out FILE]\n"
                 "  place --in FILE --algo ip|appro|greedy|anneal [--passes P]\n"
                 "        [--time-limit SEC] [--no-consolidation]\n"
                 "  p4    --layout fw,tc/lb,rt\n"
                 "  trace --replay FILE [--threads N] [--batch B]\n"
                 "        [--nf-parallel on|off] [--xt-packing on|off]\n"
                 "        [--tenants N] [--seed S]\n"
                 "  scenario <list|run NAME> [--duration SEC] [--threads N]\n"
                 "        [--compiled 1] [--nf-parallel on|off] [--xt-packing on|off]\n"
                 "  churn --tenants N [--arrivals A] [--seed S] [--warm=off]\n");
    return 1;
  }
  const std::string command = argv[1];
  const auto args = ParseArgs(argc, argv, 2);
  if (command == "gen") return CmdGen(args);
  if (command == "place") return CmdPlace(args);
  if (command == "p4") return CmdP4(args);
  if (command == "trace") return CmdTrace(args);
  if (command == "scenario") return CmdScenario(argc, argv);
  if (command == "churn") return CmdChurn(args);
  std::fprintf(stderr, "sfpctl: unknown command '%s'\n", command.c_str());
  return 1;
}
