file(REMOVE_RECURSE
  "CMakeFiles/sfpctl.dir/sfpctl.cc.o"
  "CMakeFiles/sfpctl.dir/sfpctl.cc.o.d"
  "sfpctl"
  "sfpctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfpctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
