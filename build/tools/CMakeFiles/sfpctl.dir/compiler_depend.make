# Empty compiler generated dependencies file for sfpctl.
# This may be replaced when dependencies are built.
