
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/p4gen/p4gen.cc" "src/p4gen/CMakeFiles/sfp_p4gen.dir/p4gen.cc.o" "gcc" "src/p4gen/CMakeFiles/sfp_p4gen.dir/p4gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dataplane/CMakeFiles/sfp_dataplane.dir/DependInfo.cmake"
  "/root/repo/build/src/nf/CMakeFiles/sfp_nf.dir/DependInfo.cmake"
  "/root/repo/build/src/switchsim/CMakeFiles/sfp_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sfp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
