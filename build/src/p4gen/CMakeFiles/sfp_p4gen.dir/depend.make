# Empty dependencies file for sfp_p4gen.
# This may be replaced when dependencies are built.
