file(REMOVE_RECURSE
  "CMakeFiles/sfp_p4gen.dir/p4gen.cc.o"
  "CMakeFiles/sfp_p4gen.dir/p4gen.cc.o.d"
  "libsfp_p4gen.a"
  "libsfp_p4gen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_p4gen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
