file(REMOVE_RECURSE
  "libsfp_p4gen.a"
)
