# Empty compiler generated dependencies file for sfp_workload.
# This may be replaced when dependencies are built.
