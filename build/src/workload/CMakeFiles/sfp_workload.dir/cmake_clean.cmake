file(REMOVE_RECURSE
  "CMakeFiles/sfp_workload.dir/instance_io.cc.o"
  "CMakeFiles/sfp_workload.dir/instance_io.cc.o.d"
  "CMakeFiles/sfp_workload.dir/sfc_gen.cc.o"
  "CMakeFiles/sfp_workload.dir/sfc_gen.cc.o.d"
  "CMakeFiles/sfp_workload.dir/traffic.cc.o"
  "CMakeFiles/sfp_workload.dir/traffic.cc.o.d"
  "libsfp_workload.a"
  "libsfp_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
