file(REMOVE_RECURSE
  "libsfp_workload.a"
)
