file(REMOVE_RECURSE
  "libsfp_dataplane.a"
)
