file(REMOVE_RECURSE
  "CMakeFiles/sfp_dataplane.dir/dag.cc.o"
  "CMakeFiles/sfp_dataplane.dir/dag.cc.o.d"
  "CMakeFiles/sfp_dataplane.dir/data_plane.cc.o"
  "CMakeFiles/sfp_dataplane.dir/data_plane.cc.o.d"
  "CMakeFiles/sfp_dataplane.dir/telemetry.cc.o"
  "CMakeFiles/sfp_dataplane.dir/telemetry.cc.o.d"
  "libsfp_dataplane.a"
  "libsfp_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
