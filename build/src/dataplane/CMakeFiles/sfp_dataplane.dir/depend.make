# Empty dependencies file for sfp_dataplane.
# This may be replaced when dependencies are built.
