file(REMOVE_RECURSE
  "libsfp_serversim.a"
)
