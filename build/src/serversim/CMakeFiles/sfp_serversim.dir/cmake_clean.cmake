file(REMOVE_RECURSE
  "CMakeFiles/sfp_serversim.dir/server_model.cc.o"
  "CMakeFiles/sfp_serversim.dir/server_model.cc.o.d"
  "CMakeFiles/sfp_serversim.dir/soft_chain.cc.o"
  "CMakeFiles/sfp_serversim.dir/soft_chain.cc.o.d"
  "libsfp_serversim.a"
  "libsfp_serversim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_serversim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
