# Empty compiler generated dependencies file for sfp_serversim.
# This may be replaced when dependencies are built.
