file(REMOVE_RECURSE
  "CMakeFiles/sfp_controlplane.dir/annealing_solver.cc.o"
  "CMakeFiles/sfp_controlplane.dir/annealing_solver.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/approx_solver.cc.o"
  "CMakeFiles/sfp_controlplane.dir/approx_solver.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/greedy_solver.cc.o"
  "CMakeFiles/sfp_controlplane.dir/greedy_solver.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/ilp_solver.cc.o"
  "CMakeFiles/sfp_controlplane.dir/ilp_solver.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/model_builder.cc.o"
  "CMakeFiles/sfp_controlplane.dir/model_builder.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/runtime_update.cc.o"
  "CMakeFiles/sfp_controlplane.dir/runtime_update.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/solution.cc.o"
  "CMakeFiles/sfp_controlplane.dir/solution.cc.o.d"
  "CMakeFiles/sfp_controlplane.dir/verifier.cc.o"
  "CMakeFiles/sfp_controlplane.dir/verifier.cc.o.d"
  "libsfp_controlplane.a"
  "libsfp_controlplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_controlplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
