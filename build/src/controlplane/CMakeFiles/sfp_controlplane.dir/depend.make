# Empty dependencies file for sfp_controlplane.
# This may be replaced when dependencies are built.
