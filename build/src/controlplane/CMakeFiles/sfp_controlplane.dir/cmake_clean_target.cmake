file(REMOVE_RECURSE
  "libsfp_controlplane.a"
)
