
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controlplane/annealing_solver.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/annealing_solver.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/annealing_solver.cc.o.d"
  "/root/repo/src/controlplane/approx_solver.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/approx_solver.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/approx_solver.cc.o.d"
  "/root/repo/src/controlplane/greedy_solver.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/greedy_solver.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/greedy_solver.cc.o.d"
  "/root/repo/src/controlplane/ilp_solver.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/ilp_solver.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/ilp_solver.cc.o.d"
  "/root/repo/src/controlplane/model_builder.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/model_builder.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/model_builder.cc.o.d"
  "/root/repo/src/controlplane/runtime_update.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/runtime_update.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/runtime_update.cc.o.d"
  "/root/repo/src/controlplane/solution.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/solution.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/solution.cc.o.d"
  "/root/repo/src/controlplane/verifier.cc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/verifier.cc.o" "gcc" "src/controlplane/CMakeFiles/sfp_controlplane.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lp/CMakeFiles/sfp_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sfp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
