file(REMOVE_RECURSE
  "libsfp_net.a"
)
