file(REMOVE_RECURSE
  "CMakeFiles/sfp_net.dir/headers.cc.o"
  "CMakeFiles/sfp_net.dir/headers.cc.o.d"
  "CMakeFiles/sfp_net.dir/packet.cc.o"
  "CMakeFiles/sfp_net.dir/packet.cc.o.d"
  "CMakeFiles/sfp_net.dir/trace.cc.o"
  "CMakeFiles/sfp_net.dir/trace.cc.o.d"
  "libsfp_net.a"
  "libsfp_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
