# Empty dependencies file for sfp_net.
# This may be replaced when dependencies are built.
