# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("lp")
subdirs("net")
subdirs("sim")
subdirs("switchsim")
subdirs("nf")
subdirs("serversim")
subdirs("workload")
subdirs("dataplane")
subdirs("core")
subdirs("controlplane")
subdirs("p4gen")
