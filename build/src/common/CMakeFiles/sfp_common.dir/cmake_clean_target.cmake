file(REMOVE_RECURSE
  "libsfp_common.a"
)
