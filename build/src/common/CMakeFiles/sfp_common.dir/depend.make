# Empty dependencies file for sfp_common.
# This may be replaced when dependencies are built.
