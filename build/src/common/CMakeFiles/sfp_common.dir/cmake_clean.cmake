file(REMOVE_RECURSE
  "CMakeFiles/sfp_common.dir/logging.cc.o"
  "CMakeFiles/sfp_common.dir/logging.cc.o.d"
  "CMakeFiles/sfp_common.dir/rng.cc.o"
  "CMakeFiles/sfp_common.dir/rng.cc.o.d"
  "CMakeFiles/sfp_common.dir/table.cc.o"
  "CMakeFiles/sfp_common.dir/table.cc.o.d"
  "libsfp_common.a"
  "libsfp_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
