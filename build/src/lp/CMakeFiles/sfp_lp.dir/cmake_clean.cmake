file(REMOVE_RECURSE
  "CMakeFiles/sfp_lp.dir/mip.cc.o"
  "CMakeFiles/sfp_lp.dir/mip.cc.o.d"
  "CMakeFiles/sfp_lp.dir/model.cc.o"
  "CMakeFiles/sfp_lp.dir/model.cc.o.d"
  "CMakeFiles/sfp_lp.dir/presolve.cc.o"
  "CMakeFiles/sfp_lp.dir/presolve.cc.o.d"
  "CMakeFiles/sfp_lp.dir/rounding.cc.o"
  "CMakeFiles/sfp_lp.dir/rounding.cc.o.d"
  "CMakeFiles/sfp_lp.dir/simplex.cc.o"
  "CMakeFiles/sfp_lp.dir/simplex.cc.o.d"
  "libsfp_lp.a"
  "libsfp_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
