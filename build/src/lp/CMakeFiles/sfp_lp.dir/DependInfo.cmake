
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lp/mip.cc" "src/lp/CMakeFiles/sfp_lp.dir/mip.cc.o" "gcc" "src/lp/CMakeFiles/sfp_lp.dir/mip.cc.o.d"
  "/root/repo/src/lp/model.cc" "src/lp/CMakeFiles/sfp_lp.dir/model.cc.o" "gcc" "src/lp/CMakeFiles/sfp_lp.dir/model.cc.o.d"
  "/root/repo/src/lp/presolve.cc" "src/lp/CMakeFiles/sfp_lp.dir/presolve.cc.o" "gcc" "src/lp/CMakeFiles/sfp_lp.dir/presolve.cc.o.d"
  "/root/repo/src/lp/rounding.cc" "src/lp/CMakeFiles/sfp_lp.dir/rounding.cc.o" "gcc" "src/lp/CMakeFiles/sfp_lp.dir/rounding.cc.o.d"
  "/root/repo/src/lp/simplex.cc" "src/lp/CMakeFiles/sfp_lp.dir/simplex.cc.o" "gcc" "src/lp/CMakeFiles/sfp_lp.dir/simplex.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
