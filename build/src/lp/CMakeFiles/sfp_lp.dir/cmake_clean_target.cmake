file(REMOVE_RECURSE
  "libsfp_lp.a"
)
