# Empty compiler generated dependencies file for sfp_lp.
# This may be replaced when dependencies are built.
