file(REMOVE_RECURSE
  "libsfp_sim.a"
)
