file(REMOVE_RECURSE
  "CMakeFiles/sfp_sim.dir/event_sim.cc.o"
  "CMakeFiles/sfp_sim.dir/event_sim.cc.o.d"
  "libsfp_sim.a"
  "libsfp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
