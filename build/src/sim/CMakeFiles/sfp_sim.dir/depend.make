# Empty dependencies file for sfp_sim.
# This may be replaced when dependencies are built.
