# Empty compiler generated dependencies file for sfp_switchsim.
# This may be replaced when dependencies are built.
