file(REMOVE_RECURSE
  "CMakeFiles/sfp_switchsim.dir/egress.cc.o"
  "CMakeFiles/sfp_switchsim.dir/egress.cc.o.d"
  "CMakeFiles/sfp_switchsim.dir/pipeline.cc.o"
  "CMakeFiles/sfp_switchsim.dir/pipeline.cc.o.d"
  "CMakeFiles/sfp_switchsim.dir/table.cc.o"
  "CMakeFiles/sfp_switchsim.dir/table.cc.o.d"
  "CMakeFiles/sfp_switchsim.dir/types.cc.o"
  "CMakeFiles/sfp_switchsim.dir/types.cc.o.d"
  "libsfp_switchsim.a"
  "libsfp_switchsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_switchsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
