
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/switchsim/egress.cc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/egress.cc.o" "gcc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/egress.cc.o.d"
  "/root/repo/src/switchsim/pipeline.cc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/pipeline.cc.o" "gcc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/pipeline.cc.o.d"
  "/root/repo/src/switchsim/table.cc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/table.cc.o" "gcc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/table.cc.o.d"
  "/root/repo/src/switchsim/types.cc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/types.cc.o" "gcc" "src/switchsim/CMakeFiles/sfp_switchsim.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sfp_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sfp_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
