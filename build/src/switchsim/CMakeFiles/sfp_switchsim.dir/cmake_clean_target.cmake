file(REMOVE_RECURSE
  "libsfp_switchsim.a"
)
