file(REMOVE_RECURSE
  "libsfp_nf.a"
)
