file(REMOVE_RECURSE
  "CMakeFiles/sfp_nf.dir/classifier.cc.o"
  "CMakeFiles/sfp_nf.dir/classifier.cc.o.d"
  "CMakeFiles/sfp_nf.dir/firewall.cc.o"
  "CMakeFiles/sfp_nf.dir/firewall.cc.o.d"
  "CMakeFiles/sfp_nf.dir/load_balancer.cc.o"
  "CMakeFiles/sfp_nf.dir/load_balancer.cc.o.d"
  "CMakeFiles/sfp_nf.dir/nat.cc.o"
  "CMakeFiles/sfp_nf.dir/nat.cc.o.d"
  "CMakeFiles/sfp_nf.dir/nf.cc.o"
  "CMakeFiles/sfp_nf.dir/nf.cc.o.d"
  "CMakeFiles/sfp_nf.dir/rate_limiter.cc.o"
  "CMakeFiles/sfp_nf.dir/rate_limiter.cc.o.d"
  "CMakeFiles/sfp_nf.dir/router.cc.o"
  "CMakeFiles/sfp_nf.dir/router.cc.o.d"
  "libsfp_nf.a"
  "libsfp_nf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_nf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
