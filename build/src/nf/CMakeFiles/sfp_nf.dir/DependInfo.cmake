
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nf/classifier.cc" "src/nf/CMakeFiles/sfp_nf.dir/classifier.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/classifier.cc.o.d"
  "/root/repo/src/nf/firewall.cc" "src/nf/CMakeFiles/sfp_nf.dir/firewall.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/firewall.cc.o.d"
  "/root/repo/src/nf/load_balancer.cc" "src/nf/CMakeFiles/sfp_nf.dir/load_balancer.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/load_balancer.cc.o.d"
  "/root/repo/src/nf/nat.cc" "src/nf/CMakeFiles/sfp_nf.dir/nat.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/nat.cc.o.d"
  "/root/repo/src/nf/nf.cc" "src/nf/CMakeFiles/sfp_nf.dir/nf.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/nf.cc.o.d"
  "/root/repo/src/nf/rate_limiter.cc" "src/nf/CMakeFiles/sfp_nf.dir/rate_limiter.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/rate_limiter.cc.o.d"
  "/root/repo/src/nf/router.cc" "src/nf/CMakeFiles/sfp_nf.dir/router.cc.o" "gcc" "src/nf/CMakeFiles/sfp_nf.dir/router.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/switchsim/CMakeFiles/sfp_switchsim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/sfp_net.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sfp_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
