# Empty compiler generated dependencies file for sfp_nf.
# This may be replaced when dependencies are built.
