file(REMOVE_RECURSE
  "CMakeFiles/sfp_core.dir/sfp_system.cc.o"
  "CMakeFiles/sfp_core.dir/sfp_system.cc.o.d"
  "libsfp_core.a"
  "libsfp_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sfp_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
