# Empty compiler generated dependencies file for sfp_core.
# This may be replaced when dependencies are built.
