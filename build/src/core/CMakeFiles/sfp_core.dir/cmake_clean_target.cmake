file(REMOVE_RECURSE
  "libsfp_core.a"
)
