# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/lp_simplex_test[1]_include.cmake")
include("/root/repo/build/tests/lp_mip_test[1]_include.cmake")
include("/root/repo/build/tests/net_test[1]_include.cmake")
include("/root/repo/build/tests/switchsim_test[1]_include.cmake")
include("/root/repo/build/tests/nf_test[1]_include.cmake")
include("/root/repo/build/tests/dataplane_test[1]_include.cmake")
include("/root/repo/build/tests/controlplane_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/serversim_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/p4gen_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/controlplane_state_test[1]_include.cmake")
include("/root/repo/build/tests/lp_stress_test[1]_include.cmake")
include("/root/repo/build/tests/switchsim_property_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/egress_test[1]_include.cmake")
include("/root/repo/build/tests/dag_test[1]_include.cmake")
include("/root/repo/build/tests/annealing_test[1]_include.cmake")
include("/root/repo/build/tests/instance_io_test[1]_include.cmake")
include("/root/repo/build/tests/net_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/lp_presolve_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/atomic_update_test[1]_include.cmake")
include("/root/repo/build/tests/misc_coverage_test[1]_include.cmake")
