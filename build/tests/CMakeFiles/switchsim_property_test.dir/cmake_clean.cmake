file(REMOVE_RECURSE
  "CMakeFiles/switchsim_property_test.dir/switchsim_property_test.cc.o"
  "CMakeFiles/switchsim_property_test.dir/switchsim_property_test.cc.o.d"
  "switchsim_property_test"
  "switchsim_property_test.pdb"
  "switchsim_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/switchsim_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
