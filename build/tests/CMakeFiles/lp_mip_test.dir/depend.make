# Empty dependencies file for lp_mip_test.
# This may be replaced when dependencies are built.
