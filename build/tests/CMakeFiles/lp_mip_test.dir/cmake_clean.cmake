file(REMOVE_RECURSE
  "CMakeFiles/lp_mip_test.dir/lp_mip_test.cc.o"
  "CMakeFiles/lp_mip_test.dir/lp_mip_test.cc.o.d"
  "lp_mip_test"
  "lp_mip_test.pdb"
  "lp_mip_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_mip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
