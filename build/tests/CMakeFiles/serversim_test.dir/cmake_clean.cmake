file(REMOVE_RECURSE
  "CMakeFiles/serversim_test.dir/serversim_test.cc.o"
  "CMakeFiles/serversim_test.dir/serversim_test.cc.o.d"
  "serversim_test"
  "serversim_test.pdb"
  "serversim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/serversim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
