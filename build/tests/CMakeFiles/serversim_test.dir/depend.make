# Empty dependencies file for serversim_test.
# This may be replaced when dependencies are built.
