file(REMOVE_RECURSE
  "CMakeFiles/lp_stress_test.dir/lp_stress_test.cc.o"
  "CMakeFiles/lp_stress_test.dir/lp_stress_test.cc.o.d"
  "lp_stress_test"
  "lp_stress_test.pdb"
  "lp_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
