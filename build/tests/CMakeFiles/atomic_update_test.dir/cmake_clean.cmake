file(REMOVE_RECURSE
  "CMakeFiles/atomic_update_test.dir/atomic_update_test.cc.o"
  "CMakeFiles/atomic_update_test.dir/atomic_update_test.cc.o.d"
  "atomic_update_test"
  "atomic_update_test.pdb"
  "atomic_update_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/atomic_update_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
