# Empty dependencies file for controlplane_test.
# This may be replaced when dependencies are built.
