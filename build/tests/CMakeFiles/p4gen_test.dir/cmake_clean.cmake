file(REMOVE_RECURSE
  "CMakeFiles/p4gen_test.dir/p4gen_test.cc.o"
  "CMakeFiles/p4gen_test.dir/p4gen_test.cc.o.d"
  "p4gen_test"
  "p4gen_test.pdb"
  "p4gen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/p4gen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
