# Empty dependencies file for controlplane_state_test.
# This may be replaced when dependencies are built.
