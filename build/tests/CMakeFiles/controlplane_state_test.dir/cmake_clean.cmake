file(REMOVE_RECURSE
  "CMakeFiles/controlplane_state_test.dir/controlplane_state_test.cc.o"
  "CMakeFiles/controlplane_state_test.dir/controlplane_state_test.cc.o.d"
  "controlplane_state_test"
  "controlplane_state_test.pdb"
  "controlplane_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/controlplane_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
