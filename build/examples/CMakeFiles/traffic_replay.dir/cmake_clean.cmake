file(REMOVE_RECURSE
  "CMakeFiles/traffic_replay.dir/traffic_replay.cpp.o"
  "CMakeFiles/traffic_replay.dir/traffic_replay.cpp.o.d"
  "traffic_replay"
  "traffic_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/traffic_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
