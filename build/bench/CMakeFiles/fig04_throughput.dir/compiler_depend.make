# Empty compiler generated dependencies file for fig04_throughput.
# This may be replaced when dependencies are built.
