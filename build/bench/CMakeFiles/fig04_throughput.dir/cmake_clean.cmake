file(REMOVE_RECURSE
  "CMakeFiles/fig04_throughput.dir/fig04_throughput.cc.o"
  "CMakeFiles/fig04_throughput.dir/fig04_throughput.cc.o.d"
  "fig04_throughput"
  "fig04_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
