# Empty compiler generated dependencies file for fig11_runtime_update.
# This may be replaced when dependencies are built.
