file(REMOVE_RECURSE
  "CMakeFiles/fig11_runtime_update.dir/fig11_runtime_update.cc.o"
  "CMakeFiles/fig11_runtime_update.dir/fig11_runtime_update.cc.o.d"
  "fig11_runtime_update"
  "fig11_runtime_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_runtime_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
