# Empty dependencies file for fig08_solver_time.
# This may be replaced when dependencies are built.
