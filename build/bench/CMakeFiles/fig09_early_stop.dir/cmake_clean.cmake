file(REMOVE_RECURSE
  "CMakeFiles/fig09_early_stop.dir/fig09_early_stop.cc.o"
  "CMakeFiles/fig09_early_stop.dir/fig09_early_stop.cc.o.d"
  "fig09_early_stop"
  "fig09_early_stop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_early_stop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
