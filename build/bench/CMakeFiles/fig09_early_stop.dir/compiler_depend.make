# Empty compiler generated dependencies file for fig09_early_stop.
# This may be replaced when dependencies are built.
