file(REMOVE_RECURSE
  "CMakeFiles/ext1_latency_under_load.dir/ext1_latency_under_load.cc.o"
  "CMakeFiles/ext1_latency_under_load.dir/ext1_latency_under_load.cc.o.d"
  "ext1_latency_under_load"
  "ext1_latency_under_load.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext1_latency_under_load.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
