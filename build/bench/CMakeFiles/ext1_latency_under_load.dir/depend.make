# Empty dependencies file for ext1_latency_under_load.
# This may be replaced when dependencies are built.
