file(REMOVE_RECURSE
  "CMakeFiles/fig07_recirculation.dir/fig07_recirculation.cc.o"
  "CMakeFiles/fig07_recirculation.dir/fig07_recirculation.cc.o.d"
  "fig07_recirculation"
  "fig07_recirculation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_recirculation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
