# Empty compiler generated dependencies file for fig06_num_sfcs.
# This may be replaced when dependencies are built.
