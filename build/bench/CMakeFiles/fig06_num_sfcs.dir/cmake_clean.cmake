file(REMOVE_RECURSE
  "CMakeFiles/fig06_num_sfcs.dir/fig06_num_sfcs.cc.o"
  "CMakeFiles/fig06_num_sfcs.dir/fig06_num_sfcs.cc.o.d"
  "fig06_num_sfcs"
  "fig06_num_sfcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_num_sfcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
