file(REMOVE_RECURSE
  "CMakeFiles/fig10_algorithms.dir/fig10_algorithms.cc.o"
  "CMakeFiles/fig10_algorithms.dir/fig10_algorithms.cc.o.d"
  "fig10_algorithms"
  "fig10_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
