// Differential tests for the solver rebuild.
//
//  * SolverDifferentialTest — randomized LPs solved by the sparse-LU
//    kernels (the default) and the legacy dense-inverse reference
//    (SimplexOptions::use_dense_inverse): statuses must match and
//    optimal objectives agree to tolerance, including across
//    warm-restart sequences that tighten/relax bounds between solves.
//    The suite is sharded so > 1000 instances run by default; set
//    SFP_LP_DIFF_INSTANCES to scale the per-shard count up or down.
//  * ParallelMipTest — the parallel tree search must reproduce the
//    deterministic mode's optimal objective for worker counts
//    {1, 2, hardware_concurrency}.
//  * DeterministicTraceTest — deterministic mode must reproduce its
//    incumbent trace and node count bit-for-bit across reruns.
#include <cstdlib>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/mip.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sfp::lp {
namespace {

int InstancesPerShard() {
  if (const char* env = std::getenv("SFP_LP_DIFF_INSTANCES")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 30;
}

// A random box-bounded LP: always bounded (finite bounds on every
// variable), sometimes infeasible — both solvers must agree either way.
Model RandomBoxLp(Rng& rng) {
  Model model;
  model.SetMaximize(rng.Bernoulli(0.5));
  const int n = static_cast<int>(rng.UniformInt(4, 24));
  const int m = static_cast<int>(rng.UniformInt(3, 18));
  for (int v = 0; v < n; ++v) {
    const double lower = rng.Bernoulli(0.2) ? -rng.UniformDouble(0, 5) : 0.0;
    const double upper = lower + rng.UniformDouble(0.5, 10);
    model.AddVar(lower, upper, rng.UniformDouble(-10, 10), false);
  }
  for (int r = 0; r < m; ++r) {
    std::vector<VarId> vars;
    std::vector<double> coeffs;
    for (VarId v = 0; v < n; ++v) {
      if (!rng.Bernoulli(0.3)) continue;  // sparse rows
      vars.push_back(v);
      coeffs.push_back(rng.UniformDouble(-4, 4));
    }
    if (vars.empty()) {
      vars.push_back(static_cast<VarId>(rng.UniformInt(0, n - 1)));
      coeffs.push_back(1.0);
    }
    const double roll = rng.UniformDouble(0, 1);
    const Sense sense = roll < 0.45 ? Sense::kLe : (roll < 0.9 ? Sense::kGe : Sense::kEq);
    model.AddRow(vars, coeffs, sense, rng.UniformDouble(-6, 6));
  }
  return model;
}

// Relative-ish objective agreement: LP optima can be large, so scale
// the tolerance by the magnitude.
void ExpectObjectivesAgree(const Solution& sparse, const Solution& dense) {
  ASSERT_EQ(sparse.status, dense.status);
  if (sparse.status != SolveStatus::kOptimal) return;
  const double scale = std::max({1.0, std::abs(sparse.objective), std::abs(dense.objective)});
  EXPECT_NEAR(sparse.objective, dense.objective, 1e-6 * scale);
}

class SolverDifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverDifferentialTest, SparseLuMatchesDenseReference) {
  const int instances = InstancesPerShard();
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 9176 + 11);
  for (int i = 0; i < instances; ++i) {
    const Model model = RandomBoxLp(rng);

    SimplexOptions dense_options;
    dense_options.use_dense_inverse = true;
    Simplex sparse(model);
    Simplex dense(model, dense_options);
    ExpectObjectivesAgree(sparse.Solve(), dense.Solve());

    // Warm-restart sequence: tighten/relax random bounds in lockstep
    // and re-solve; both engines reuse their previous basis.
    for (int round = 0; round < 3; ++round) {
      const VarId v = static_cast<VarId>(rng.UniformInt(0, model.num_vars() - 1));
      const Variable& var = model.var(v);
      double lower = var.lower, upper = var.upper;
      if (rng.Bernoulli(0.5)) {
        lower = var.lower + rng.UniformDouble(0, 0.5 * (var.upper - var.lower));
      } else {
        upper = var.upper - rng.UniformDouble(0, 0.5 * (var.upper - var.lower));
      }
      sparse.SetVarBounds(v, lower, upper);
      dense.SetVarBounds(v, lower, upper);
      ExpectObjectivesAgree(sparse.Solve(), dense.Solve());
    }
  }
}

// 35 shards x 30 instances = 1050 random LPs (each also re-solved
// three times warm) at the default setting.
INSTANTIATE_TEST_SUITE_P(RandomLps, SolverDifferentialTest, ::testing::Range(0, 35));

// A random knapsack-style MIP with binary and small general-integer
// variables; feasible by construction (all-zeros).
Model RandomMip(Rng& rng) {
  Model model;
  const int n = static_cast<int>(rng.UniformInt(6, 14));
  std::vector<VarId> vars;
  std::vector<double> weights;
  for (int v = 0; v < n; ++v) {
    const bool general = rng.Bernoulli(0.25);
    vars.push_back(model.AddVar(0, general ? 3 : 1, rng.UniformDouble(1, 10), true));
    weights.push_back(rng.UniformDouble(0.5, 4));
  }
  model.AddRow(vars, weights, Sense::kLe, rng.UniformDouble(3, 0.6 * 4 * n));
  for (int r = 0; r < 2; ++r) {
    std::vector<VarId> sub;
    std::vector<double> coeffs;
    for (VarId v = 0; v < n; ++v) {
      if (!rng.Bernoulli(0.4)) continue;
      sub.push_back(v);
      coeffs.push_back(rng.UniformDouble(0.5, 3));
    }
    if (sub.empty()) continue;
    model.AddRow(sub, coeffs, Sense::kLe, rng.UniformDouble(2, 8));
  }
  return model;
}

class ParallelMipTest : public ::testing::TestWithParam<int> {};

TEST_P(ParallelMipTest, MatchesDeterministicObjective) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 5531 + 3);
  const Model model = RandomMip(rng);

  MipResult serial = MipSolver(model).Solve();
  ASSERT_EQ(serial.solution.status, SolveStatus::kOptimal);

  const int hw = std::max(1u, std::thread::hardware_concurrency());
  for (const int workers : {1, 2, hw}) {
    MipOptions options;
    options.deterministic = false;
    options.num_workers = workers;
    MipResult parallel = MipSolver(model, options).Solve();
    ASSERT_EQ(parallel.solution.status, SolveStatus::kOptimal)
        << "workers=" << workers;
    EXPECT_NEAR(parallel.solution.objective, serial.solution.objective, 1e-5)
        << "workers=" << workers;
    EXPECT_NEAR(parallel.best_bound, serial.best_bound, 1e-5) << "workers=" << workers;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMips, ParallelMipTest, ::testing::Range(0, 12));

TEST(DeterministicTraceTest, RerunsAreBitIdentical) {
  Rng rng(77);
  for (int round = 0; round < 5; ++round) {
    const Model model = RandomMip(rng);
    MipResult first = MipSolver(model).Solve();
    MipResult second = MipSolver(model).Solve();

    EXPECT_EQ(first.solution.status, second.solution.status);
    EXPECT_EQ(first.nodes_explored, second.nodes_explored);
    EXPECT_EQ(first.simplex_pivots, second.simplex_pivots);
    ASSERT_EQ(first.incumbent_trace.size(), second.incumbent_trace.size());
    for (std::size_t i = 0; i < first.incumbent_trace.size(); ++i) {
      // Byte-for-byte: the improving objectives must be identical
      // doubles, not merely close (timestamps are wall-clock and are
      // deliberately not compared).
      EXPECT_EQ(first.incumbent_trace[i].objective, second.incumbent_trace[i].objective);
    }
    ASSERT_EQ(first.solution.values.size(), second.solution.values.size());
    for (std::size_t i = 0; i < first.solution.values.size(); ++i) {
      EXPECT_EQ(first.solution.values[i], second.solution.values[i]);
    }
  }
}

TEST(DeterministicTraceTest, SingleWorkerPoolStillTerminates) {
  // Degenerate parallel configuration: one worker must drain the whole
  // tree without deadlocking on the queue's condition variable.
  Model model;
  VarId a = model.AddBinaryVar(3, "a");
  VarId b = model.AddBinaryVar(5, "b");
  VarId c = model.AddBinaryVar(4, "c");
  model.AddRow({a, b, c}, {2, 4, 3}, Sense::kLe, 6);

  MipOptions options;
  options.deterministic = false;
  options.num_workers = 1;
  MipResult result = MipSolver(model, options).Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 8.0, 1e-6);
}

}  // namespace
}  // namespace sfp::lp
