// Unit tests for sfp::common::metrics — counters, histograms, the
// registry's create-on-first-use semantics, and the JSON exporter whose
// schema docs/METRICS.md documents.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"

namespace sfp::common::metrics {
namespace {

TEST(CounterTest, IncrementAndSet) {
  Counter counter;
  EXPECT_EQ(counter.Value(), 0u);
  counter.Increment();
  counter.Increment(41);
  EXPECT_EQ(counter.Value(), 42u);
  counter.Set(7);
  EXPECT_EQ(counter.Value(), 7u);
}

TEST(CounterTest, ConcurrentIncrementsAllLand) {
  Counter counter;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 10000; ++i) counter.Increment();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.Value(), 40000u);
}

TEST(RelaxedCounterTest, CopyPreservesValue) {
  RelaxedCounter counter;
  counter.Add(5);
  RelaxedCounter copy = counter;
  copy.Add(1);
  EXPECT_EQ(counter.Value(), 5u);
  EXPECT_EQ(copy.Value(), 6u);
}

TEST(HistogramTest, BucketsObservationsAgainstBounds) {
  Histogram histogram({1.0, 10.0, 100.0});
  histogram.Observe(0.5);    // bucket 0 (le 1)
  histogram.Observe(1.0);    // bucket 0 (le is inclusive)
  histogram.Observe(5.0);    // bucket 1
  histogram.Observe(100.0);  // bucket 2
  histogram.Observe(1e6);    // overflow bucket
  EXPECT_EQ(histogram.Count(), 5u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.5 + 1.0 + 5.0 + 100.0 + 1e6);
  EXPECT_DOUBLE_EQ(histogram.Min(), 0.5);
  EXPECT_DOUBLE_EQ(histogram.Max(), 1e6);
  EXPECT_EQ(histogram.BucketCount(0), 2u);
  EXPECT_EQ(histogram.BucketCount(1), 1u);
  EXPECT_EQ(histogram.BucketCount(2), 1u);
  EXPECT_EQ(histogram.BucketCount(3), 1u);  // +inf overflow
}

TEST(HistogramTest, EmptyHistogramHasZeroStats) {
  Histogram histogram({1.0});
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 0.0);
  EXPECT_DOUBLE_EQ(histogram.Mean(), 0.0);
}

TEST(HistogramTest, ConcurrentObservationsAllLand) {
  Histogram histogram(ExponentialBounds(1.0, 2.0, 10));
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([t, &histogram] {
      for (int i = 0; i < 5000; ++i) histogram.Observe(static_cast<double>(t + 1));
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(histogram.Count(), 20000u);
  EXPECT_DOUBLE_EQ(histogram.Sum(), 5000.0 * (1 + 2 + 3 + 4));
  EXPECT_DOUBLE_EQ(histogram.Min(), 1.0);
  EXPECT_DOUBLE_EQ(histogram.Max(), 4.0);
}

TEST(ExponentialBoundsTest, GeometricSeries) {
  const auto bounds = ExponentialBounds(1.0, 2.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 1.0);
  EXPECT_DOUBLE_EQ(bounds[1], 2.0);
  EXPECT_DOUBLE_EQ(bounds[2], 4.0);
  EXPECT_DOUBLE_EQ(bounds[3], 8.0);
}

TEST(RegistryTest, GetCounterReturnsStableReference) {
  Registry registry;
  Counter& a = registry.GetCounter("a");
  a.Increment(3);
  Counter& again = registry.GetCounter("a");
  EXPECT_EQ(&a, &again);
  EXPECT_EQ(again.Value(), 3u);
  EXPECT_EQ(registry.Counters().size(), 1u);
}

TEST(RegistryTest, GetHistogramKeepsFirstBounds) {
  Registry registry;
  Histogram& h = registry.GetHistogram("h", {1.0, 2.0});
  Histogram& again = registry.GetHistogram("h", {99.0});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds().size(), 2u);
}

TEST(RegistryTest, SnapshotsCarryAllSeries) {
  Registry registry;
  registry.GetCounter("c1").Increment(5);
  registry.GetCounter("c2").Increment(6);
  registry.GetHistogram("h1", {10.0}).Observe(3.0);
  const auto counters = registry.Counters();
  ASSERT_EQ(counters.size(), 2u);
  const auto histograms = registry.Histograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].name, "h1");
  EXPECT_EQ(histograms[0].count, 1u);
  ASSERT_EQ(histograms[0].bucket_counts.size(), 2u);  // 1 bound + overflow
  EXPECT_EQ(histograms[0].bucket_counts[0], 1u);
}

TEST(JsonTest, EscapesControlCharsAndQuotes) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b\\c"), "a\\\"b\\\\c");
  EXPECT_EQ(JsonEscape("x\ny"), "x\\ny");
}

TEST(JsonTest, NumberClampsNonFinite) {
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_EQ(JsonNumber(std::nan("")), "0");
  EXPECT_EQ(JsonNumber(2.5), "2.5");
}

TEST(JsonTest, RegistryToJsonIsWellFormed) {
  Registry registry;
  registry.GetCounter("pipeline.packets").Set(12);
  auto& histogram = registry.GetHistogram("lat", {1.0, 2.0});
  histogram.Observe(1.5);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"pipeline.packets\": 12"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"le\": \"+inf\""), std::string::npos);
  // Balanced braces/brackets (cheap well-formedness check; the CI
  // validator parses the full file with Python's json module).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(JsonTest, WriteJsonRoundTripsThroughFile) {
  Registry registry;
  registry.GetCounter("n").Set(1);
  const auto path = std::filesystem::temp_directory_path() / "sfp_metrics_test.json";
  {
    std::ofstream out(path);
    registry.WriteJson(out);
  }
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), registry.ToJson());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace sfp::common::metrics
