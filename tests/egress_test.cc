// Tests for the strict-priority egress port.
#include "switchsim/egress.h"

#include <gtest/gtest.h>

namespace sfp::switchsim {
namespace {

// 100 Gbps: a 1250-byte packet takes 1250*8/100 = 100 ns to transmit.
constexpr double kLineRate = 100.0;

TEST(EgressPortTest, ServesFifoWithinOneClass) {
  EgressPort port(1, kLineRate, 1 << 20);
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  port.DrainAll();
  auto departures = port.TakeDepartures();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_NEAR(departures[0].departure_ns, 100.0, 1e-9);
  EXPECT_NEAR(departures[1].departure_ns, 200.0, 1e-9);
  EXPECT_LT(departures[0].packet_id, departures[1].packet_id);
}

TEST(EgressPortTest, HigherClassPreemptsQueueOrderNotService) {
  EgressPort port(2, kLineRate, 1 << 20);
  // Low-priority packet arrives first and starts service immediately.
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  // While it transmits (until t=100), one high and one low arrive.
  ASSERT_TRUE(port.Enqueue(10, 1250, 0).has_value());
  ASSERT_TRUE(port.Enqueue(20, 1250, 1).has_value());
  port.DrainAll();
  auto departures = port.TakeDepartures();
  ASSERT_EQ(departures.size(), 3u);
  // Non-preemptive: first low finishes at 100; then the high-priority
  // packet jumps the remaining low one.
  EXPECT_EQ(departures[0].flow_class, 0);
  EXPECT_EQ(departures[1].flow_class, 1);
  EXPECT_EQ(departures[2].flow_class, 0);
  EXPECT_NEAR(departures[1].departure_ns, 200.0, 1e-9);
  EXPECT_NEAR(departures[2].departure_ns, 300.0, 1e-9);
}

TEST(EgressPortTest, TailDropAtCapacity) {
  EgressPort port(1, kLineRate, /*capacity=*/2500);  // two 1250B packets
  EXPECT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  EXPECT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  // First is in service... backlog still counts both until served.
  EXPECT_FALSE(port.Enqueue(0, 1250, 0).has_value());
  EXPECT_EQ(port.stats(0).dropped, 1u);
  // After service drains, capacity frees up.
  port.DrainUntil(250);
  EXPECT_TRUE(port.Enqueue(250, 1250, 0).has_value());
}

TEST(EgressPortTest, WorkConservingIdleGaps) {
  EgressPort port(1, kLineRate, 1 << 20);
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  // Second packet arrives long after the first finished: no carryover.
  ASSERT_TRUE(port.Enqueue(10000, 1250, 0).has_value());
  port.DrainAll();
  auto departures = port.TakeDepartures();
  ASSERT_EQ(departures.size(), 2u);
  EXPECT_NEAR(departures[1].departure_ns, 10100.0, 1e-9);
  EXPECT_NEAR(port.stats(0).MeanWaitNs(), 0.0, 1e-9);
}

TEST(EgressPortTest, StatsTrackWaits) {
  EgressPort port(1, kLineRate, 1 << 20);
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());  // waits 100 ns
  port.DrainAll();
  port.TakeDepartures();
  EXPECT_EQ(port.stats(0).served, 2u);
  EXPECT_NEAR(port.stats(0).MeanWaitNs(), 50.0, 1e-9);
  EXPECT_NEAR(port.stats(0).max_wait_ns, 100.0, 1e-9);
}

TEST(EgressPortTest, LowPriorityStarvesUnderHighLoad) {
  EgressPort port(2, kLineRate, 1 << 20);
  // Saturating high-priority stream + one low packet at t=0.
  ASSERT_TRUE(port.Enqueue(0, 1250, 0).has_value());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(port.Enqueue(i * 10.0 + 1.0, 1250, 1).has_value());
  }
  port.DrainAll();
  auto departures = port.TakeDepartures();
  // The low-priority packet departs after every high one that was
  // queued before it got a turn... with all arrivals within 500 ns and
  // service 100 ns each, it goes last.
  ASSERT_FALSE(departures.empty());
  double low_departure = 0;
  double max_high_departure = 0;
  for (const auto& d : departures) {
    if (d.flow_class == 0) {
      low_departure = d.departure_ns;
    } else {
      max_high_departure = std::max(max_high_departure, d.departure_ns);
    }
  }
  // Non-preemptive start: the low packet was first in, so it's served
  // first; its *next* chance would have starved. Verify the high class
  // then monopolizes the port.
  EXPECT_GT(max_high_departure, low_departure);
  EXPECT_EQ(port.stats(1).served, 50u);
}

TEST(EgressPortTest, BacklogTracksOccupancy) {
  EgressPort port(1, kLineRate, 1 << 20);
  port.Enqueue(0, 1000, 0);
  port.Enqueue(0, 500, 0);
  EXPECT_EQ(port.BacklogBytes(), 1500u);
  port.DrainAll();
  EXPECT_EQ(port.BacklogBytes(), 0u);
}

}  // namespace
}  // namespace sfp::switchsim
