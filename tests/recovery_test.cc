// Tests for the RecoveryController: signature-driven detection,
// sim-time exponential backoff, and the bounded-attempts quarantine
// that keeps a persistently failing tenant from livelocking the loop.
#include <gtest/gtest.h>

#include <vector>

#include "common/faultinject.h"
#include "nf/firewall.h"
#include "nf/router.h"
#include "scenario/recovery.h"

namespace sfp::scenario {
namespace {

using common::faultinject::FaultPlan;
using common::faultinject::FaultSpec;
using common::faultinject::ScopedFaultPlan;
using dataplane::Sfc;

nf::NfConfig Fw(std::uint16_t blocked_port) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Range(blocked_port, blocked_port),
      switchsim::FieldMatch::Any()));
  return config;
}

nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

switchsim::SwitchConfig SmallSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 2;
  config.blocks_per_stage = 8;
  config.entries_per_block = 200;
  config.backplane_gbps = 400.0;
  return config;
}

core::SfpSystem MakeSystem() {
  core::SfpSystem system(SmallSwitch());
  EXPECT_GT(
      system.ProvisionPhysical({{nf::NfType::kFirewall}, {nf::NfType::kRouter}}), 0);
  return system;
}

/// Out-of-order chain on the {Firewall}, {Router} layout: folds into
/// two passes.
Sfc MultiPassSfc(dataplane::TenantId tenant) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 5.0;
  sfc.chain = {Rt(), Fw(7)};
  return sfc;
}

Sfc SinglePassSfc(dataplane::TenantId tenant) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 5.0;
  sfc.chain = {Fw(7)};
  return sfc;
}

/// Serves `count` packets for `tenant` (dport 2000: never matches the
/// deny rule, so any drop is injected).
void Serve(core::SfpSystem& system, dataplane::TenantId tenant, int count) {
  for (int i = 0; i < count; ++i) {
    system.Process(net::MakeTcpPacket(tenant, net::Ipv4Address::Of(10, 0, 0, 1),
                                      net::Ipv4Address::Of(2, 2, 2, 2), 1024, 2000, 64));
  }
}

TEST(RecoveryControllerTest, StructuralDamageIsDetectedAndRepairedSamePoll) {
  auto system = MakeSystem();
  const Sfc sfc = MultiPassSfc(1);
  const auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted);
  ASSERT_EQ(admit.passes, 2);

  RecoveryController recovery(system);
  recovery.TrackTenant(sfc, admit.passes);

  // Strip the tenant's rules out from under it.
  system.data_plane().DeallocateSfc(1);
  ASSERT_FALSE(system.data_plane().IsAllocated(1));

  recovery.Poll(3.0);
  EXPECT_TRUE(system.data_plane().IsAllocated(1));
  ASSERT_EQ(recovery.episodes().size(), 1u);
  const auto& episode = recovery.episodes()[0];
  EXPECT_EQ(episode.tenant, 1u);
  EXPECT_TRUE(episode.recovered);
  EXPECT_EQ(episode.cause, "structural");
  EXPECT_EQ(episode.attempts, 1);
  EXPECT_DOUBLE_EQ(episode.DurationMs(), 0.0);
  EXPECT_EQ(recovery.counters().detections, 1u);
  EXPECT_EQ(recovery.counters().successes, 1u);
  EXPECT_TRUE(recovery.DegradedTenants().empty());
}

TEST(RecoveryControllerTest, PassesCollapseSignatureFlagsMultiPassTenant) {
  auto system = MakeSystem();
  const Sfc sfc = SinglePassSfc(1);
  const auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted);

  RecoveryController recovery(system);
  // Expected passes deliberately exceed reality: the window's mean
  // pass count (1.0) sits far below 3 - margin, which is exactly what
  // a lost multi-pass tenant's traffic looks like (no catch-all rule,
  // no recirculation).
  recovery.TrackTenant(sfc, 3);

  Serve(system, 1, 32);
  recovery.Poll(1.0);

  ASSERT_EQ(recovery.episodes().size(), 1u);
  EXPECT_EQ(recovery.episodes()[0].cause, "passes-collapse");
  EXPECT_TRUE(recovery.episodes()[0].recovered);

  // The repair updated the expected pass count from the fresh
  // allocation, so the tenant is not re-flagged once its cooldown
  // expires.
  Serve(system, 1, 32);
  recovery.Poll(5.0);
  Serve(system, 1, 32);
  recovery.Poll(6.0);
  EXPECT_EQ(recovery.episodes().size(), 1u);
}

TEST(RecoveryControllerTest, DropSpikeSignatureFlagsInjectedDrops) {
  auto system = MakeSystem();
  const Sfc sfc = MultiPassSfc(1);
  const auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted);

  RecoveryController recovery(system);
  recovery.TrackTenant(sfc, admit.passes);

  {
    FaultPlan plan;
    plan.seed = 99;
    plan.faults = {FaultSpec::Probability("switchsim.pipeline.serve", 0.9)};
    ScopedFaultPlan armed(plan);
    Serve(system, 1, 64);
  }
  recovery.Poll(1.0);

  ASSERT_EQ(recovery.episodes().size(), 1u);
  EXPECT_EQ(recovery.episodes()[0].cause, "drop-spike");
  EXPECT_TRUE(recovery.episodes()[0].recovered);
}

TEST(RecoveryControllerTest, SmallWindowsAreTooNoisyToJudge) {
  auto system = MakeSystem();
  const Sfc sfc = SinglePassSfc(1);
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  RecoveryOptions options;
  options.min_window_packets = 16;
  RecoveryController recovery(system, options);
  recovery.TrackTenant(sfc, 3);  // would flag passes-collapse...

  Serve(system, 1, 8);  // ...but the window is below the floor
  recovery.Poll(1.0);
  EXPECT_TRUE(recovery.episodes().empty());
  EXPECT_EQ(recovery.counters().detections, 0u);
}

TEST(RecoveryControllerTest, BackoffScheduleGatesRepairAttempts) {
  auto system = MakeSystem();
  const Sfc sfc = MultiPassSfc(1);
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  RecoveryOptions options;
  options.max_attempts = 4;
  options.initial_backoff_s = 0.5;
  options.max_backoff_s = 8.0;
  RecoveryController recovery(system, options);
  recovery.TrackTenant(sfc, 2);
  system.data_plane().DeallocateSfc(1);

  // Every repair attempt fails at the reprovision fault point.
  FaultPlan plan;
  plan.seed = 7;
  plan.faults = {FaultSpec::Always("core.reprovision")};
  ScopedFaultPlan armed(plan);

  // Attempt 1 at detection; backoff 0.5 s.
  recovery.Poll(0.0);
  EXPECT_EQ(recovery.counters().attempts, 1u);
  // Inside the backoff window: polls must not attempt.
  recovery.Poll(0.1);
  recovery.Poll(0.4);
  EXPECT_EQ(recovery.counters().attempts, 1u);
  // Attempt 2 at 0.5 s; backoff doubles to 1.0 s.
  recovery.Poll(0.5);
  EXPECT_EQ(recovery.counters().attempts, 2u);
  recovery.Poll(1.4);
  EXPECT_EQ(recovery.counters().attempts, 2u);
  // Attempt 3 at 1.5 s; backoff 2.0 s.
  recovery.Poll(1.5);
  EXPECT_EQ(recovery.counters().attempts, 3u);
  recovery.Poll(3.4);
  EXPECT_EQ(recovery.counters().attempts, 3u);
  // Attempt 4 at 3.5 s: max_attempts reached -> quarantine.
  recovery.Poll(3.5);
  EXPECT_EQ(recovery.counters().attempts, 4u);
  EXPECT_EQ(recovery.counters().quarantined, 1u);
  EXPECT_TRUE(recovery.IsQuarantined(1));
  EXPECT_EQ(recovery.QuarantinedTenants(), std::vector<dataplane::TenantId>{1});

  ASSERT_EQ(recovery.episodes().size(), 1u);
  const auto& episode = recovery.episodes()[0];
  EXPECT_FALSE(episode.recovered);
  EXPECT_EQ(episode.attempts, 4);
  EXPECT_DOUBLE_EQ(episode.detected_s, 0.0);
  EXPECT_DOUBLE_EQ(episode.ended_s, 3.5);

  // Quarantine released the tenant's admission and resources.
  EXPECT_EQ(system.Stats().tenants, 0);
  EXPECT_EQ(system.Stats().entries_used, 0);

  // No livelock: the quarantined tenant consumes no further attempts.
  recovery.Poll(10.0);
  recovery.Poll(60.0);
  EXPECT_EQ(recovery.counters().attempts, 4u);
  EXPECT_EQ(recovery.episodes().size(), 1u);

  // Counters export under system.recover.* (docs/METRICS.md).
  common::metrics::Registry registry;
  recovery.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("system.recover.attempts").Value(), 4u);
  EXPECT_EQ(registry.GetCounter("system.recover.failures").Value(), 4u);
  EXPECT_EQ(registry.GetCounter("system.recover.quarantined").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.recover.successes").Value(), 0u);
}

TEST(RecoveryControllerTest, TransientFaultRecoversAfterBackoff) {
  auto system = MakeSystem();
  const Sfc sfc = MultiPassSfc(1);
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  RecoveryController recovery(system);
  recovery.TrackTenant(sfc, 2);
  system.data_plane().DeallocateSfc(1);

  // Only the first reprovision attempt fails.
  FaultPlan plan;
  plan.seed = 7;
  plan.faults = {FaultSpec::Nth("core.reprovision", 1)};
  ScopedFaultPlan armed(plan);

  recovery.Poll(0.0);  // attempt 1 fails
  EXPECT_TRUE(recovery.episodes().empty());
  recovery.Poll(0.5);  // attempt 2 succeeds after the 0.5 s backoff
  ASSERT_EQ(recovery.episodes().size(), 1u);
  const auto& episode = recovery.episodes()[0];
  EXPECT_TRUE(episode.recovered);
  EXPECT_EQ(episode.attempts, 2);
  EXPECT_DOUBLE_EQ(episode.DurationMs(), 500.0);
  EXPECT_TRUE(system.data_plane().IsAllocated(1));
  EXPECT_EQ(recovery.counters().failures, 1u);
  EXPECT_EQ(recovery.counters().successes, 1u);
}

TEST(RecoveryControllerTest, NoteLostTenantsRepairsWithoutTelemetry) {
  auto system = MakeSystem();
  const Sfc sfc = MultiPassSfc(1);
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  RecoveryController recovery(system);
  recovery.TrackTenant(sfc, 2);
  system.data_plane().DeallocateSfc(1);

  const std::vector<dataplane::TenantId> lost = {1};
  recovery.NoteLostTenants(lost, 2.0);
  EXPECT_EQ(recovery.DegradedTenants(), std::vector<dataplane::TenantId>{1});
  recovery.Poll(2.5);
  ASSERT_EQ(recovery.episodes().size(), 1u);
  EXPECT_EQ(recovery.episodes()[0].cause, "lost");
  EXPECT_DOUBLE_EQ(recovery.episodes()[0].detected_s, 2.0);
  EXPECT_TRUE(system.data_plane().IsAllocated(1));
}

TEST(RecoveryControllerTest, UntrackedTenantIsIgnored) {
  auto system = MakeSystem();
  const Sfc sfc = MultiPassSfc(1);
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  RecoveryController recovery(system);
  recovery.TrackTenant(sfc, 2);
  recovery.UntrackTenant(1);
  ASSERT_TRUE(system.RemoveTenant(1));  // planned departure

  recovery.Poll(1.0);  // no allocation — but no longer tracked
  EXPECT_TRUE(recovery.episodes().empty());
  EXPECT_EQ(recovery.counters().detections, 0u);
}

}  // namespace
}  // namespace sfp::scenario
