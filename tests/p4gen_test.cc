// Tests for the P4 emitter.
#include "p4gen/p4gen.h"

#include <gtest/gtest.h>

namespace sfp::p4gen {
namespace {

TEST(P4GenTest, TableDeclIncludesVirtualizationPrefix) {
  const std::string decl = EmitTableDecl(nf::NfType::kFirewall, 2);
  EXPECT_NE(decl.find("meta.tenant_id : exact"), std::string::npos);
  EXPECT_NE(decl.find("meta.pass"), std::string::npos);
  EXPECT_NE(decl.find("@stage(2)"), std::string::npos);
  EXPECT_NE(decl.find("table tab_fw_s2"), std::string::npos);
  EXPECT_NE(decl.find("deny"), std::string::npos);
  EXPECT_NE(decl.find("default_action = nop()"), std::string::npos);
}

TEST(P4GenTest, TableDeclReflectsMatchKinds) {
  const std::string fw = EmitTableDecl(nf::NfType::kFirewall, 0);
  EXPECT_NE(fw.find("hdr.ipv4.srcAddr : ternary"), std::string::npos);
  EXPECT_NE(fw.find("hdr.l4.dstPort : range"), std::string::npos);
  const std::string rt = EmitTableDecl(nf::NfType::kRouter, 0);
  EXPECT_NE(rt.find("hdr.ipv4.dstAddr : lpm"), std::string::npos);
  const std::string lb = EmitTableDecl(nf::NfType::kLoadBalancer, 0);
  EXPECT_NE(lb.find("hdr.ipv4.dstAddr : exact"), std::string::npos);
}

TEST(P4GenTest, ProgramWalksTheLayoutInStageOrder) {
  dataplane::DataPlane dp(switchsim::SwitchConfig{});
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, nf::NfType::kLoadBalancer));

  const std::string program = EmitProgram(dp, "sfp_demo");
  EXPECT_NE(program.find("parser SfpParser"), std::string::npos);
  EXPECT_NE(program.find("control SfpIngress"), std::string::npos);
  EXPECT_NE(program.find("recirculate_pass"), std::string::npos);

  const auto tc_at = program.find("tab_tc_s0.apply()");
  const auto fw_at = program.find("tab_fw_s1.apply()");
  const auto lb_at = program.find("tab_lb_s2.apply()");
  ASSERT_NE(tc_at, std::string::npos);
  ASSERT_NE(fw_at, std::string::npos);
  ASSERT_NE(lb_at, std::string::npos);
  EXPECT_LT(tc_at, fw_at);
  EXPECT_LT(fw_at, lb_at);
}

TEST(P4GenTest, Fig2LoadBalancerHasThreeTables) {
  const std::string lb = EmitFig2LoadBalancer();
  EXPECT_NE(lb.find("table tab_lb "), std::string::npos);
  EXPECT_NE(lb.find("table tab_lbhash"), std::string::npos);
  EXPECT_NE(lb.find("table tab_lbselect"), std::string::npos);
  // Hash fallback only on tab_lb miss, as in Fig. 2.
  EXPECT_NE(lb.find("if (!tab_lb.apply().hit)"), std::string::npos);
}

}  // namespace
}  // namespace sfp::p4gen
