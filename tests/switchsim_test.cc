// Tests for the switch simulator: match kinds, table lookup semantics,
// stage memory accounting, pipeline traversal, recirculation, timing.
#include "switchsim/pipeline.h"

#include <gtest/gtest.h>

#include "net/packet.h"

namespace sfp::switchsim {
namespace {

using net::Ipv4Address;
using net::MakeTcpPacket;

net::Packet TestPacket(std::uint16_t tenant = 1) {
  return MakeTcpPacket(tenant, Ipv4Address::Of(10, 0, 0, 1), Ipv4Address::Of(10, 0, 0, 2),
                       1111, 80, 128);
}

TEST(FieldMatchTest, ExactMatching) {
  EXPECT_TRUE(FieldMatches(FieldMatch::Exact(42), MatchKind::kExact, 42));
  EXPECT_FALSE(FieldMatches(FieldMatch::Exact(42), MatchKind::kExact, 43));
}

TEST(FieldMatchTest, TernaryMatching) {
  auto m = FieldMatch::Ternary(0x0A000000, 0xFF000000);
  EXPECT_TRUE(FieldMatches(m, MatchKind::kTernary, 0x0A123456));
  EXPECT_FALSE(FieldMatches(m, MatchKind::kTernary, 0x0B123456));
  EXPECT_TRUE(FieldMatches(FieldMatch::Any(), MatchKind::kTernary, 0xDEADBEEF));
}

TEST(FieldMatchTest, LpmMatching) {
  auto m = FieldMatch::Lpm(Ipv4Address::Of(192, 168, 0, 0).value, 16);
  EXPECT_TRUE(FieldMatches(m, MatchKind::kLpm, Ipv4Address::Of(192, 168, 55, 1).value));
  EXPECT_FALSE(FieldMatches(m, MatchKind::kLpm, Ipv4Address::Of(192, 169, 0, 1).value));
  EXPECT_TRUE(FieldMatches(FieldMatch::Lpm(0, 0), MatchKind::kLpm, 12345));
}

TEST(FieldMatchTest, RangeMatching) {
  auto m = FieldMatch::Range(100, 200);
  EXPECT_TRUE(FieldMatches(m, MatchKind::kRange, 100));
  EXPECT_TRUE(FieldMatches(m, MatchKind::kRange, 200));
  EXPECT_FALSE(FieldMatches(m, MatchKind::kRange, 99));
  EXPECT_FALSE(FieldMatches(m, MatchKind::kRange, 201));
}

TEST(TableTest, PriorityWinsOnOverlap) {
  MatchActionTable table("t", {{FieldId::kDstPort, MatchKind::kRange}});
  int fired = 0;
  auto a = table.RegisterAction("low", [&fired](net::Packet&, PacketMeta&,
                                                const ActionArgs&) { fired = 1; });
  auto b = table.RegisterAction("high", [&fired](net::Packet&, PacketMeta&,
                                                 const ActionArgs&) { fired = 2; });
  table.AddEntry({FieldMatch::Range(0, 1000)}, a, {}, /*priority=*/1);
  table.AddEntry({FieldMatch::Range(50, 100)}, b, {}, /*priority=*/9);

  auto packet = TestPacket();  // dst port 80
  PacketMeta meta;
  EXPECT_TRUE(table.Apply(packet, meta));
  EXPECT_EQ(fired, 2);
}

TEST(TableTest, LongestPrefixWins) {
  MatchActionTable table("t", {{FieldId::kDstIp, MatchKind::kLpm}});
  std::uint64_t chosen = 0;
  auto act = table.RegisterAction("set", [&chosen](net::Packet&, PacketMeta&,
                                                   const ActionArgs& args) {
    chosen = args[0];
  });
  table.AddEntry({FieldMatch::Lpm(Ipv4Address::Of(10, 0, 0, 0).value, 8)}, act, {8});
  table.AddEntry({FieldMatch::Lpm(Ipv4Address::Of(10, 0, 0, 0).value, 24)}, act, {24});

  auto packet = TestPacket();  // dst 10.0.0.2
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_EQ(chosen, 24u);
}

TEST(TableTest, MissRunsDefaultAction) {
  MatchActionTable table("t", {{FieldId::kDstPort, MatchKind::kExact}});
  bool default_ran = false;
  auto def = table.RegisterAction("noop", [&default_ran](net::Packet&, PacketMeta&,
                                                         const ActionArgs&) {
    default_ran = true;
  });
  table.SetDefaultAction(def);
  auto packet = TestPacket();
  PacketMeta meta;
  EXPECT_FALSE(table.Apply(packet, meta));
  EXPECT_TRUE(default_ran);
  EXPECT_EQ(table.miss_count(), 1u);
}

TEST(TableTest, RemoveByHandleAndTenant) {
  MatchActionTable table("t", {{FieldId::kDstPort, MatchKind::kExact}});
  auto act = table.RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  auto h1 = table.AddEntry({FieldMatch::Exact(80)}, act, {}, 0, /*tenant=*/1);
  table.AddEntry({FieldMatch::Exact(81)}, act, {}, 0, /*tenant=*/2);
  table.AddEntry({FieldMatch::Exact(82)}, act, {}, 0, /*tenant=*/2);
  EXPECT_EQ(table.num_entries(), 3u);
  EXPECT_TRUE(table.RemoveEntry(h1));
  EXPECT_FALSE(table.RemoveEntry(h1));
  EXPECT_EQ(table.RemoveTenantEntries(2), 2u);
  EXPECT_EQ(table.num_entries(), 0u);
}

TEST(TableTest, NeedsTcamDetection) {
  MatchActionTable exact("e", {{FieldId::kDstIp, MatchKind::kExact}});
  MatchActionTable ternary("t", {{FieldId::kDstIp, MatchKind::kTernary}});
  EXPECT_FALSE(exact.NeedsTcam());
  EXPECT_TRUE(ternary.NeedsTcam());
}

TEST(StageTest, BlockAccounting) {
  SwitchConfig config;
  config.blocks_per_stage = 3;
  config.entries_per_block = 10;
  Stage stage(0, config);
  auto* t1 = stage.AddTable("a", {{FieldId::kDstPort, MatchKind::kExact}});
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(stage.BlocksUsed(), 1);  // empty table still reserves a block

  auto act = t1->RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(stage.CanAddEntry(*t1));
    t1->AddEntry({FieldMatch::Exact(static_cast<std::uint64_t>(i))}, act);
  }
  EXPECT_EQ(stage.BlocksUsed(), 2);  // ceil(15/10)

  auto* t2 = stage.AddTable("b", {{FieldId::kDstPort, MatchKind::kExact}});
  ASSERT_NE(t2, nullptr);
  EXPECT_EQ(stage.BlocksUsed(), 3);
  // Stage is now full: a third table cannot reserve its block.
  EXPECT_EQ(stage.AddTable("c", {{FieldId::kDstPort, MatchKind::kExact}}), nullptr);
  // And t1 cannot grow into a third block for itself.
  auto act2 = t2->RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  (void)act2;
  for (int i = 15; i < 20; ++i) {
    ASSERT_TRUE(stage.CanAddEntry(*t1));
    t1->AddEntry({FieldMatch::Exact(static_cast<std::uint64_t>(i))}, act);
  }
  EXPECT_FALSE(stage.CanAddEntry(*t1));  // 21st entry needs block #3
}

TEST(PipelineTest, SeedsTenantFromVlanAndCountsStages) {
  SwitchConfig config;
  config.num_stages = 4;
  Pipeline pipeline(config);
  auto result = pipeline.Process(TestPacket(/*tenant=*/9));
  EXPECT_EQ(result.meta.tenant_id, 9);
  EXPECT_EQ(result.passes, 1);
  EXPECT_EQ(result.active_stages, 0);
  EXPECT_EQ(result.idle_stages, 4);
  EXPECT_EQ(pipeline.packets_processed(), 1u);
}

TEST(PipelineTest, DropStopsTraversal) {
  SwitchConfig config;
  config.num_stages = 4;
  Pipeline pipeline(config);
  auto* table = pipeline.stage(1).AddTable("fw", {{FieldId::kDstPort, MatchKind::kExact}});
  auto deny = table->RegisterAction("deny", [](net::Packet&, PacketMeta& meta,
                                               const ActionArgs&) { meta.dropped = true; });
  table->AddEntry({FieldMatch::Exact(80)}, deny);

  auto result = pipeline.Process(TestPacket());
  EXPECT_TRUE(result.meta.dropped);
  // Stages 0 (idle) and 1 (active) ran; 2 and 3 were skipped.
  EXPECT_EQ(result.active_stages + result.idle_stages, 2);
  EXPECT_EQ(pipeline.packets_dropped(), 1u);
}

TEST(PipelineTest, RecirculationIncrementsPass) {
  SwitchConfig config;
  config.num_stages = 2;
  Pipeline pipeline(config);
  auto* table = pipeline.stage(1).AddTable("rec", {{FieldId::kPass, MatchKind::kExact}});
  auto rec = table->RegisterAction("recirc", [](net::Packet&, PacketMeta& meta,
                                                const ActionArgs&) {
    meta.recirculate = true;
  });
  // Recirculate on pass 0 and 1, then fall through on pass 2.
  table->AddEntry({FieldMatch::Exact(0)}, rec);
  table->AddEntry({FieldMatch::Exact(1)}, rec);

  auto result = pipeline.Process(TestPacket());
  EXPECT_EQ(result.passes, 3);
  EXPECT_EQ(result.meta.pass, 2);
  EXPECT_EQ(pipeline.recirculations(), 2u);
}

TEST(PipelineTest, RecirculationGuardStopsInfiniteLoop) {
  SwitchConfig config;
  config.num_stages = 1;
  config.max_passes = 5;
  Pipeline pipeline(config);
  auto* table = pipeline.stage(0).AddTable("rec", {{FieldId::kDstPort, MatchKind::kExact}});
  auto rec = table->RegisterAction("recirc", [](net::Packet&, PacketMeta& meta,
                                                const ActionArgs&) {
    meta.recirculate = true;
  });
  table->AddEntry({FieldMatch::Exact(80)}, rec);  // always recirculates

  auto result = pipeline.Process(TestPacket());
  EXPECT_EQ(result.passes, 5);
}

TEST(PipelineTest, ProcessBytesParsesWireFormat) {
  Pipeline pipeline;
  auto bytes = TestPacket(4).Serialize();
  auto result = pipeline.ProcessBytes(bytes);
  EXPECT_FALSE(result.parse_error);
  EXPECT_EQ(result.meta.tenant_id, 4);

  std::vector<std::uint8_t> garbage(5, 0xAB);
  EXPECT_TRUE(pipeline.ProcessBytes(garbage).parse_error);
}

TEST(TimingModelTest, MatchesPaperCalibration) {
  TimingModel timing;
  // 4-NF SFC in one 12-stage pass: ~341 ns (Fig. 5 "SFP").
  const double sfp = timing.LatencyNs(/*active=*/4, /*idle=*/8, /*passes=*/1);
  EXPECT_NEAR(sfp, 341.0, 2.0);
  // Same 4 NFs, one per pass over 4 passes: +~35 ns (Fig. 5 "SFP-Recir").
  const double recir = timing.LatencyNs(/*active=*/4, /*idle=*/44, /*passes=*/4);
  EXPECT_NEAR(recir - sfp, 35.0, 5.0);
}

TEST(PipelineTest, LatencyUsesTimingModel) {
  SwitchConfig config;
  config.num_stages = 12;
  Pipeline pipeline(config);
  auto result = pipeline.Process(TestPacket());
  EXPECT_NEAR(result.latency_ns,
              config.timing.LatencyNs(0, 12, 1), 1e-9);
}

}  // namespace
}  // namespace sfp::switchsim
