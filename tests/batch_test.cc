// Batched-execution tests: ProcessBatch must be bit-identical to a
// scalar Process loop for every batch size and thread count, and the
// serve path must tolerate concurrent tenant admission/departure
// (run under ThreadSanitizer to check the locking discipline).
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "workload/traffic.h"

namespace sfp::core {
namespace {

switchsim::SwitchConfig Testbed() {
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.backplane_gbps = 3200.0;
  return config;
}

nf::NfConfig Fw() {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  return config;
}

nf::NfConfig Lb() {
  nf::NfConfig config;
  config.type = nf::NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 100),
                                                      80,
                                                      net::Ipv4Address::Of(192, 168, 0, 1)));
  return config;
}

nf::NfConfig Tc(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 7));
  return config;
}

/// A system hosting three tenants: an in-order 4-NF chain, a short
/// chain, and a chain whose order conflicts with the layout so it folds
/// over two passes (recirculation coverage).
SfpSystem MakeSystem() {
  SfpSystem system(Testbed());
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                           {nf::NfType::kLoadBalancer},
                           {nf::NfType::kClassifier},
                           {nf::NfType::kRouter}});
  dataplane::Sfc t1;
  t1.tenant = 1;
  t1.bandwidth_gbps = 50;
  t1.chain = {Fw(), Lb(), Tc(1), Rt()};
  dataplane::Sfc t2;
  t2.tenant = 2;
  t2.bandwidth_gbps = 20;
  t2.chain = {Tc(2)};
  dataplane::Sfc t3;  // Router before firewall -> folds into pass 1.
  t3.tenant = 3;
  t3.bandwidth_gbps = 10;
  t3.chain = {Rt(), Fw()};
  EXPECT_TRUE(system.AdmitTenant(t1).admitted);
  EXPECT_TRUE(system.AdmitTenant(t2).admitted);
  const auto a3 = system.AdmitTenant(t3);
  EXPECT_TRUE(a3.admitted);
  EXPECT_EQ(a3.passes, 2);
  return system;
}

/// Mixed workload across the three tenants, many flows each, shuffled.
std::vector<net::Packet> MakeWorkload(int count) {
  Rng rng(42);
  workload::PacketSizeProfile profile;
  std::vector<net::Packet> packets;
  for (const std::uint16_t tenant : {1, 2, 3}) {
    auto flows = workload::GenerateFlows(tenant, /*num_flows=*/37, count / 3, profile, rng);
    packets.insert(packets.end(), flows.begin(), flows.end());
  }
  // Deterministic shuffle so tenants/flows interleave.
  for (std::size_t i = packets.size(); i > 1; --i) {
    std::swap(packets[i - 1],
              packets[static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(i) - 1))]);
  }
  return packets;
}

struct Outcome {
  std::vector<std::uint8_t> wire;
  bool dropped;
  int passes;
  std::uint8_t flow_class;
  std::int32_t egress_port;
  std::uint64_t scratch;
  double latency_ns;

  bool operator==(const Outcome&) const = default;
};

Outcome Of(const switchsim::ProcessResult& result) {
  return {result.packet.Serialize(), result.meta.dropped,     result.passes,
          result.meta.flow_class,    result.meta.egress_port, result.meta.scratch,
          result.latency_ns};
}

TEST(BatchEquivalenceTest, MatchesScalarAcrossBatchSizesAndThreadCounts) {
  const auto workload = MakeWorkload(900);

  auto scalar = MakeSystem();
  std::vector<Outcome> reference;
  reference.reserve(workload.size());
  for (const auto& packet : workload) reference.push_back(Of(scalar.Process(packet)));

  for (const int threads : {1, 2, 3, 4, 8}) {
    for (const std::size_t batch_size : {std::size_t{1}, std::size_t{7}, std::size_t{128},
                                         workload.size()}) {
      auto batched = MakeSystem();
      switchsim::BatchOptions options;
      options.num_threads = threads;
      options.min_parallel_batch = 1;  // force the parallel path
      std::size_t index = 0;
      for (std::size_t off = 0; off < workload.size(); off += batch_size) {
        const std::size_t n = std::min(batch_size, workload.size() - off);
        const auto results =
            batched.ProcessBatch(std::span(workload).subspan(off, n), options);
        ASSERT_EQ(results.size(), n);
        for (std::size_t i = 0; i < n; ++i, ++index) {
          ASSERT_EQ(Of(results[i]), reference[index])
              << "packet " << index << " threads=" << threads
              << " batch_size=" << batch_size;
        }
      }

      // Telemetry and pipeline counters must aggregate identically.
      for (const std::uint16_t tenant : scalar.Telemetry().Tenants()) {
        const auto want = scalar.Telemetry().Tenant(tenant);
        const auto got = batched.Telemetry().Tenant(tenant);
        EXPECT_EQ(got.packets, want.packets);
        EXPECT_EQ(got.bytes, want.bytes);
        EXPECT_EQ(got.drops, want.drops);
        EXPECT_EQ(got.recirculated_packets, want.recirculated_packets);
        EXPECT_EQ(got.total_passes, want.total_passes);
        EXPECT_EQ(got.total_latency_ns, want.total_latency_ns);
        EXPECT_EQ(got.max_latency_ns, want.max_latency_ns);
      }
      const auto& scalar_pipe = scalar.data_plane().pipeline();
      const auto& batched_pipe = batched.data_plane().pipeline();
      EXPECT_EQ(batched_pipe.packets_processed(), scalar_pipe.packets_processed());
      EXPECT_EQ(batched_pipe.packets_dropped(), scalar_pipe.packets_dropped());
      EXPECT_EQ(batched_pipe.recirculations(), scalar_pipe.recirculations());
    }
  }
}

TEST(BatchEquivalenceTest, EmptyBatchAndCustomPool) {
  auto system = MakeSystem();
  EXPECT_TRUE(system.ProcessBatch({}).empty());

  common::WorkerPool pool(3);
  switchsim::BatchOptions options;
  options.num_threads = 3;
  options.min_parallel_batch = 1;
  options.pool = &pool;
  const auto workload = MakeWorkload(90);
  auto scalar = MakeSystem();
  const auto results = system.ProcessBatch(workload, options);
  ASSERT_EQ(results.size(), workload.size());
  for (std::size_t i = 0; i < workload.size(); ++i) {
    EXPECT_EQ(Of(results[i]), Of(scalar.Process(workload[i])));
  }
}

TEST(BatchEquivalenceTest, ExportMetricsSnapshotsCounters) {
  auto system = MakeSystem();
  const auto workload = MakeWorkload(300);
  system.ProcessBatch(workload);

  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("pipeline.packets").Value(),
            system.data_plane().pipeline().packets_processed());
  EXPECT_EQ(registry.GetCounter("pipeline.batches").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("telemetry.total.packets").Value(),
            system.Telemetry().Total().packets);
  EXPECT_EQ(registry.GetCounter("system.tenants").Value(), 3u);
  // Per-table hit counters exist for the provisioned NFs.
  EXPECT_GT(registry.GetCounter("pipeline.stage0.fw_s0.hits").Value(), 0u);
}

// Traffic keeps flowing while another thread churns a tenant through
// admission and departure. Run under TSan to validate the locking; the
// assertions check that resident tenants' results are unperturbed.
TEST(BatchStressTest, ConcurrentProcessAndAdmitRemove) {
  auto system = MakeSystem();
  const auto workload = MakeWorkload(300);

  auto scalar = MakeSystem();
  std::vector<Outcome> reference;
  reference.reserve(workload.size());
  for (const auto& packet : workload) reference.push_back(Of(scalar.Process(packet)));

  std::atomic<bool> stop{false};
  std::atomic<int> churns{0};
  std::thread control([&] {
    dataplane::Sfc churn;
    churn.tenant = 9;
    churn.bandwidth_gbps = 5;
    churn.chain = {Fw(), Tc(3)};
    while (!stop.load(std::memory_order_acquire)) {
      const auto admitted = system.AdmitTenant(churn);
      ASSERT_TRUE(admitted.admitted) << admitted.reason;
      ASSERT_TRUE(system.RemoveTenant(9));
      churns.fetch_add(1, std::memory_order_relaxed);
    }
  });

  common::WorkerPool pool(4);
  switchsim::BatchOptions options;
  options.num_threads = 4;
  options.min_parallel_batch = 1;
  options.pool = &pool;
  for (int round = 0; round < 30; ++round) {
    const auto results = system.ProcessBatch(workload, options);
    ASSERT_EQ(results.size(), workload.size());
    // Tenant 9 installs no overlapping rules for tenants 1..3 (their
    // match keys carry the tenant prefix), so every result must equal
    // the quiescent reference.
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(Of(results[i]), reference[i]) << "round " << round << " packet " << i;
    }
  }
  stop.store(true, std::memory_order_release);
  control.join();
  EXPECT_GT(churns.load(), 0);
  EXPECT_FALSE(system.data_plane().IsAllocated(9));
}

TEST(WorkerPoolTest, ParallelForRunsEveryIndexExactlyOnce) {
  common::WorkerPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int i) { hits[static_cast<std::size_t>(i)].fetch_add(1); });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);

  // Reusable for a second job, and a no-op for empty jobs.
  std::atomic<int> total{0};
  pool.ParallelFor(17, [&](int) { total.fetch_add(1); });
  pool.ParallelFor(0, [&](int) { total.fetch_add(1000); });
  EXPECT_EQ(total.load(), 17);
}

TEST(WorkerPoolTest, SingleThreadPoolRunsOnCaller) {
  common::WorkerPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::atomic<int> on_caller{0};
  pool.ParallelFor(25, [&](int) {
    if (std::this_thread::get_id() == caller) on_caller.fetch_add(1);
  });
  EXPECT_EQ(on_caller.load(), 25);
}

}  // namespace
}  // namespace sfp::core
