// Property tests for the switch simulator: table lookup vs a naive
// oracle, and resource-accounting invariants under random churn.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/packet.h"
#include "switchsim/pipeline.h"

namespace sfp::switchsim {
namespace {

using net::Ipv4Address;

// Naive reference matcher replicating the documented semantics:
// highest priority wins; LPM prefix sum breaks priority ties; earliest
// installation breaks the rest.
const TableEntry* OracleLookup(const MatchActionTable& table, const net::Packet& packet,
                               const PacketMeta& meta) {
  const TableEntry* best = nullptr;
  int best_priority = 0;
  int best_prefix = -1;
  for (const auto& entry : table.entries()) {
    bool match = true;
    int prefix = 0;
    for (std::size_t f = 0; f < table.key().size() && match; ++f) {
      const auto value = GetField(packet, meta, table.key()[f].field);
      match = FieldMatches(entry.matches[f], table.key()[f].kind, value);
      if (table.key()[f].kind == MatchKind::kLpm) prefix += entry.matches[f].prefix_len;
    }
    if (!match) continue;
    if (best == nullptr || entry.priority > best_priority ||
        (entry.priority == best_priority && prefix > best_prefix)) {
      best = &entry;
      best_priority = entry.priority;
      best_prefix = prefix;
    }
  }
  return best;
}

class TableLookupPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(TableLookupPropertyTest, LookupAgreesWithOracle) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 613 + 29);
  MatchActionTable table("t", {{FieldId::kSrcIp, MatchKind::kTernary},
                               {FieldId::kDstIp, MatchKind::kLpm},
                               {FieldId::kDstPort, MatchKind::kRange}});
  const auto noop = table.RegisterAction("noop", [](net::Packet&, PacketMeta&,
                                                    const ActionArgs&) {});

  const int entry_count = static_cast<int>(rng.UniformInt(5, 60));
  for (int e = 0; e < entry_count; ++e) {
    const std::uint32_t src = static_cast<std::uint32_t>(rng.UniformInt(0, 0xFF)) << 24;
    const auto port_lo = static_cast<std::uint64_t>(rng.UniformInt(0, 60000));
    table.AddEntry({FieldMatch::Ternary(src, rng.Bernoulli(0.5) ? 0xFF000000 : 0),
                    FieldMatch::Lpm(static_cast<std::uint32_t>(rng.UniformInt(0, 0xFF)) << 24,
                                    static_cast<int>(rng.UniformInt(0, 16))),
                    FieldMatch::Range(port_lo, port_lo + static_cast<std::uint64_t>(
                                                             rng.UniformInt(0, 5000)))},
                   noop, {}, static_cast<int>(rng.UniformInt(0, 5)));
  }

  for (int trial = 0; trial < 200; ++trial) {
    auto packet = net::MakeTcpPacket(
        1,
        Ipv4Address{static_cast<std::uint32_t>(rng.UniformInt(0, 0xFF)) << 24},
        Ipv4Address{static_cast<std::uint32_t>(rng.UniformInt(0, 0xFF)) << 24},
        static_cast<std::uint16_t>(rng.UniformInt(0, 65000)),
        static_cast<std::uint16_t>(rng.UniformInt(0, 65000)), 64);
    PacketMeta meta;
    const TableEntry* actual = table.Lookup(packet, meta);
    const TableEntry* expected = OracleLookup(table, packet, meta);
    if (expected == nullptr) {
      EXPECT_EQ(actual, nullptr);
    } else {
      ASSERT_NE(actual, nullptr);
      EXPECT_EQ(actual->handle, expected->handle);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTables, TableLookupPropertyTest, ::testing::Range(0, 10));

class StageChurnTest : public ::testing::TestWithParam<int> {};

TEST_P(StageChurnTest, ResourceAccountingSurvivesChurn) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 11);
  SwitchConfig config;
  config.blocks_per_stage = 6;
  config.entries_per_block = 50;
  Stage stage(0, config);
  auto* table = stage.AddTable("t", {{FieldId::kDstPort, MatchKind::kExact}});
  ASSERT_NE(table, nullptr);
  const auto noop = table->RegisterAction("noop", [](net::Packet&, PacketMeta&,
                                                     const ActionArgs&) {});

  std::vector<EntryHandle> live;
  for (int op = 0; op < 600; ++op) {
    if (!live.empty() && rng.Bernoulli(0.45)) {
      const std::size_t at =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_TRUE(table->RemoveEntry(live[at]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else if (stage.CanAddEntry(*table)) {
      live.push_back(table->AddEntry(
          {FieldMatch::Exact(static_cast<std::uint64_t>(rng.UniformInt(0, 65535)))}, noop));
    }
    // Invariants: entries match live handles; blocks = ceil(entries/E)
    // clamped to at least the reserved block; never above the budget.
    EXPECT_EQ(table->num_entries(), live.size());
    EXPECT_EQ(stage.EntriesUsed(), static_cast<std::int64_t>(live.size()));
    const int expected_blocks = std::max<int>(
        1, static_cast<int>((live.size() + 49) / 50));
    EXPECT_EQ(stage.BlocksUsed(), expected_blocks);
    EXPECT_LE(stage.BlocksUsed(), config.blocks_per_stage);
  }
}

INSTANTIATE_TEST_SUITE_P(ChurnSeeds, StageChurnTest, ::testing::Range(0, 6));

// Recirculation behaviour is consistent for any pass budget.
class RecirculationSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(RecirculationSweepTest, PacketMakesExactlyBudgetedPasses) {
  const int budget = GetParam();
  SwitchConfig config;
  config.num_stages = 2;
  config.max_passes = budget;
  Pipeline pipeline(config);
  auto* table = pipeline.stage(1).AddTable("rec", {{FieldId::kDstPort, MatchKind::kExact}});
  const auto rec = table->RegisterAction(
      "recirc", [](net::Packet&, PacketMeta& meta, const ActionArgs&) {
        meta.recirculate = true;
      });
  table->AddEntry({FieldMatch::Exact(80)}, rec);  // always recirculate

  auto result = pipeline.Process(net::MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                                    Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  EXPECT_EQ(result.passes, budget);
  EXPECT_EQ(result.meta.pass, budget - 1);
  EXPECT_EQ(result.active_stages + result.idle_stages, budget * 2);
}

INSTANTIATE_TEST_SUITE_P(Budgets, RecirculationSweepTest, ::testing::Range(1, 8));

}  // namespace
}  // namespace sfp::switchsim
