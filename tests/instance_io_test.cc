// Tests for placement-instance text serialization.
#include "workload/instance_io.h"

#include <sstream>

#include <gtest/gtest.h>

#include "workload/sfc_gen.h"

namespace sfp::workload {
namespace {

TEST(InstanceIoTest, RoundTripsGeneratedInstance) {
  Rng rng(12);
  DatasetParams params;
  params.num_sfcs = 15;
  controlplane::SwitchResources sw;
  const auto instance = GenerateInstance(params, sw, rng);

  std::stringstream buffer;
  ASSERT_TRUE(WriteInstance(instance, buffer));
  const auto loaded = ReadInstance(buffer);
  ASSERT_TRUE(loaded.has_value());

  EXPECT_EQ(loaded->num_types, instance.num_types);
  EXPECT_EQ(loaded->sw.stages, instance.sw.stages);
  EXPECT_EQ(loaded->sw.capacity_gbps, instance.sw.capacity_gbps);
  ASSERT_EQ(loaded->NumSfcs(), instance.NumSfcs());
  for (int l = 0; l < instance.NumSfcs(); ++l) {
    const auto& a = instance.sfcs[static_cast<std::size_t>(l)];
    const auto& b = loaded->sfcs[static_cast<std::size_t>(l)];
    EXPECT_DOUBLE_EQ(a.bandwidth_gbps, b.bandwidth_gbps);
    ASSERT_EQ(a.Length(), b.Length());
    for (int j = 0; j < a.Length(); ++j) {
      EXPECT_EQ(a.boxes[static_cast<std::size_t>(j)].type,
                b.boxes[static_cast<std::size_t>(j)].type);
      EXPECT_EQ(a.boxes[static_cast<std::size_t>(j)].rules,
                b.boxes[static_cast<std::size_t>(j)].rules);
    }
  }
}

TEST(InstanceIoTest, PreservesStateEntries) {
  controlplane::PlacementInstance instance;
  instance.num_types = 2;
  instance.sfcs.push_back({{{0, 100, 50}, {1, 200}}, 7.5});

  std::stringstream buffer;
  ASSERT_TRUE(WriteInstance(instance, buffer));
  const auto loaded = ReadInstance(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sfcs[0].boxes[0].state_entries, 50);
  EXPECT_EQ(loaded->sfcs[0].boxes[1].state_entries, 0);
}

TEST(InstanceIoTest, IgnoresCommentsAndBlankLines) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "switch 4 10 500 1 200  # trailing comment\n"
      "types 3\n"
      "sfc 5.5 0:100 2:300\n");
  const auto loaded = ReadInstance(in);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->sw.stages, 4);
  EXPECT_EQ(loaded->num_types, 3);
  ASSERT_EQ(loaded->NumSfcs(), 1);
  EXPECT_EQ(loaded->sfcs[0].boxes[1].type, 2);
}

TEST(InstanceIoTest, RejectsMalformedInput) {
  // Missing switch line.
  std::stringstream no_switch("types 2\nsfc 1 0:10\n");
  EXPECT_FALSE(ReadInstance(no_switch).has_value());
  // Type out of range.
  std::stringstream bad_type("switch 4 10 500 1 200\ntypes 2\nsfc 1 5:10\n");
  EXPECT_FALSE(ReadInstance(bad_type).has_value());
  // Garbage keyword.
  std::stringstream garbage("switch 4 10 500 1 200\ntypes 2\nbanana\n");
  EXPECT_FALSE(ReadInstance(garbage).has_value());
  // SFC with no boxes.
  std::stringstream empty_sfc("switch 4 10 500 1 200\ntypes 2\nsfc 1\n");
  EXPECT_FALSE(ReadInstance(empty_sfc).has_value());
  // Negative rules.
  std::stringstream negative("switch 4 10 500 1 200\ntypes 2\nsfc 1 0:-5\n");
  EXPECT_FALSE(ReadInstance(negative).has_value());
}

TEST(InstanceIoTest, SaveLoadFile) {
  Rng rng(3);
  DatasetParams params;
  params.num_sfcs = 5;
  controlplane::SwitchResources sw;
  const auto instance = GenerateInstance(params, sw, rng);
  const std::string path = "/tmp/sfp_instance_test.txt";
  ASSERT_TRUE(SaveInstance(instance, path));
  const auto loaded = LoadInstance(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumSfcs(), 5);
  EXPECT_FALSE(LoadInstance("/nonexistent/x.txt").has_value());
}

}  // namespace
}  // namespace sfp::workload
