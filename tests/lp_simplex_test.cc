// Unit and property tests for the bounded-variable revised simplex.
#include "lp/simplex.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/model.h"

namespace sfp::lp {
namespace {

constexpr double kTol = 1e-6;

TEST(SimplexTest, SolvesTwoVariableMaximization) {
  // max 3x + 2y  s.t. x + y <= 4, x + 3y <= 6, x,y >= 0.
  // Optimum at (4, 0) with objective 12.
  Model model;
  VarId x = model.AddVar(0, kInfinity, 3, false, "x");
  VarId y = model.AddVar(0, kInfinity, 2, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 4);
  model.AddRow({x, y}, {1, 3}, Sense::kLe, 6);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 12.0, kTol);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(x)], 4.0, kTol);
  EXPECT_NEAR(sol.values[static_cast<std::size_t>(y)], 0.0, kTol);
}

TEST(SimplexTest, SolvesMinimizationWithGeRows) {
  // min 2x + 3y  s.t. x + y >= 10, x >= 2, y >= 1.
  // Optimum: push everything onto x: (9, 1) -> 21.
  Model model;
  model.SetMaximize(false);
  VarId x = model.AddVar(2, kInfinity, 2, false, "x");
  VarId y = model.AddVar(1, kInfinity, 3, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kGe, 10);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 21.0, kTol);
}

TEST(SimplexTest, HandlesEqualityRows) {
  // max x + y  s.t. x + y == 5, x <= 3, y <= 3.
  Model model;
  VarId x = model.AddVar(0, 3, 1, false, "x");
  VarId y = model.AddVar(0, 3, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kEq, 5);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
  EXPECT_NEAR(sol.values[0] + sol.values[1], 5.0, kTol);
}

TEST(SimplexTest, DetectsInfeasibility) {
  // x <= 1 and x >= 3 simultaneously.
  Model model;
  VarId x = model.AddVar(0, kInfinity, 1, false, "x");
  model.AddRow({x}, {1}, Sense::kLe, 1);
  model.AddRow({x}, {1}, Sense::kGe, 3);

  Simplex solver(model);
  EXPECT_EQ(solver.Solve().status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  Model model;
  VarId x = model.AddVar(0, 10, 1, false, "x");
  VarId y = model.AddVar(0, 10, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kEq, 5);
  model.AddRow({x, y}, {1, 1}, Sense::kEq, 7);

  Simplex solver(model);
  EXPECT_EQ(solver.Solve().status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // max x with no upper limit.
  Model model;
  VarId x = model.AddVar(0, kInfinity, 1, false, "x");
  VarId y = model.AddVar(0, kInfinity, 0, false, "y");
  model.AddRow({x, y}, {-1, 1}, Sense::kGe, -100);  // never binds upward

  Simplex solver(model);
  EXPECT_EQ(solver.Solve().status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, RespectsVariableUpperBounds) {
  // max x + y with x <= 2, y <= 3 as *bounds*, one loose row.
  Model model;
  VarId x = model.AddVar(0, 2, 1, false, "x");
  VarId y = model.AddVar(0, 3, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 100);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 5.0, kTol);
}

TEST(SimplexTest, HandlesNegativeLowerBounds) {
  // min x + y with x, y in [-5, 5] and x + y >= -3.
  Model model;
  model.SetMaximize(false);
  VarId x = model.AddVar(-5, 5, 1, false, "x");
  VarId y = model.AddVar(-5, 5, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kGe, -3);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -3.0, kTol);
}

TEST(SimplexTest, HandlesFreeVariables) {
  // max -|x| style: min x1 + x2 with free y split: y = x1 - x2 ... instead:
  // max y s.t. y <= x, x <= 7, y free.
  Model model;
  VarId x = model.AddVar(0, 7, 0, false, "x");
  VarId y = model.AddVar(-kInfinity, kInfinity, 1, false, "y");
  model.AddRow({y, x}, {1, -1}, Sense::kLe, 0);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 7.0, kTol);
}

TEST(SimplexTest, FixedVariablesStayFixed) {
  Model model;
  VarId x = model.AddVar(3, 3, 10, false, "x");
  VarId y = model.AddVar(0, kInfinity, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 8);

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.values[0], 3.0, kTol);
  EXPECT_NEAR(sol.objective, 30.0 + 5.0, kTol);
}

TEST(SimplexTest, WarmRestartAfterBoundChange) {
  // Solve, tighten a bound, re-solve: result must match a cold solve.
  Model model;
  VarId x = model.AddVar(0, 10, 5, false, "x");
  VarId y = model.AddVar(0, 10, 4, false, "y");
  model.AddRow({x, y}, {6, 4}, Sense::kLe, 24);
  model.AddRow({x, y}, {1, 2}, Sense::kLe, 6);

  Simplex solver(model);
  Solution first = solver.Solve();
  ASSERT_EQ(first.status, SolveStatus::kOptimal);
  EXPECT_NEAR(first.objective, 21.0, kTol);  // classic LP: x=3, y=1.5

  solver.SetVarBounds(x, 0, 1);
  Solution second = solver.Solve();
  ASSERT_EQ(second.status, SolveStatus::kOptimal);
  // With x <= 1: best is x=1, y=2.5 -> 15.
  EXPECT_NEAR(second.objective, 15.0, kTol);

  // Relax back; warm solve must recover the original optimum.
  solver.SetVarBounds(x, 0, 10);
  Solution third = solver.Solve();
  ASSERT_EQ(third.status, SolveStatus::kOptimal);
  EXPECT_NEAR(third.objective, 21.0, kTol);
}

TEST(SimplexTest, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degenerate rows.
  Model model;
  std::vector<VarId> vars;
  for (int i = 0; i < 6; ++i) {
    vars.push_back(model.AddVar(0, kInfinity, std::pow(2.0, 5 - i), false));
  }
  for (int i = 0; i < 6; ++i) {
    std::vector<VarId> row_vars;
    std::vector<double> coeffs;
    for (int j = 0; j < i; ++j) {
      row_vars.push_back(vars[static_cast<std::size_t>(j)]);
      coeffs.push_back(std::pow(2.0, i - j + 1));
    }
    row_vars.push_back(vars[static_cast<std::size_t>(i)]);
    coeffs.push_back(1.0);
    model.AddRow(row_vars, coeffs, Sense::kLe, std::pow(5.0, i + 1));
  }
  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, std::pow(5.0, 6), 1e-3);
}

TEST(SimplexTest, EmptyModelIsOptimal) {
  Model model;
  Simplex solver(model);
  EXPECT_EQ(solver.Solve().status, SolveStatus::kOptimal);
}

TEST(SimplexTest, ModelWithOnlyBoundsNoRows) {
  Model model;
  model.AddVar(1, 4, 2, false, "x");
  model.AddVar(-2, 3, -1, false, "y");
  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  EXPECT_NEAR(sol.objective, 2 * 4 + (-1) * (-2), kTol);
}

// ---------------------------------------------------------------------
// Property test: on random dense LPs over boxed variables, the simplex
// optimum must (a) be feasible and (b) weakly dominate a cloud of random
// feasible points.
class SimplexRandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(SimplexRandomLpTest, OptimumDominatesRandomFeasiblePoints) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 977 + 13);
  const int n = static_cast<int>(rng.UniformInt(2, 8));
  const int m = static_cast<int>(rng.UniformInt(1, 6));

  Model model;
  std::vector<VarId> vars;
  for (int v = 0; v < n; ++v) {
    vars.push_back(model.AddVar(0, rng.UniformDouble(1, 10), rng.UniformDouble(-5, 5),
                                false));
  }
  std::vector<std::vector<double>> coeffs(static_cast<std::size_t>(m));
  std::vector<double> rhs(static_cast<std::size_t>(m));
  for (int r = 0; r < m; ++r) {
    std::vector<double> row;
    for (int v = 0; v < n; ++v) row.push_back(rng.UniformDouble(0, 3));
    rhs[static_cast<std::size_t>(r)] = rng.UniformDouble(5, 30);
    coeffs[static_cast<std::size_t>(r)] = row;
    model.AddRow(vars, row, Sense::kLe, rhs[static_cast<std::size_t>(r)]);
  }

  Simplex solver(model);
  Solution sol = solver.Solve();
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);  // origin is always feasible

  // (a) feasibility of the reported optimum.
  for (int r = 0; r < m; ++r) {
    double lhs = 0;
    for (int v = 0; v < n; ++v) {
      lhs += coeffs[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)] *
             sol.values[static_cast<std::size_t>(v)];
    }
    EXPECT_LE(lhs, rhs[static_cast<std::size_t>(r)] + 1e-5);
  }
  for (int v = 0; v < n; ++v) {
    EXPECT_GE(sol.values[static_cast<std::size_t>(v)], -1e-7);
    EXPECT_LE(sol.values[static_cast<std::size_t>(v)],
              model.var(vars[static_cast<std::size_t>(v)]).upper + 1e-7);
  }

  // (b) dominance over random feasible points.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> point(static_cast<std::size_t>(n));
    for (int v = 0; v < n; ++v) {
      point[static_cast<std::size_t>(v)] =
          rng.UniformDouble(0, model.var(vars[static_cast<std::size_t>(v)]).upper);
    }
    bool feasible = true;
    for (int r = 0; r < m && feasible; ++r) {
      double lhs = 0;
      for (int v = 0; v < n; ++v) {
        lhs += coeffs[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)] *
               point[static_cast<std::size_t>(v)];
      }
      feasible = lhs <= rhs[static_cast<std::size_t>(r)];
    }
    if (!feasible) continue;
    double obj = 0;
    for (int v = 0; v < n; ++v) {
      obj += model.var(vars[static_cast<std::size_t>(v)]).objective *
             point[static_cast<std::size_t>(v)];
    }
    EXPECT_LE(obj, sol.objective + 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomLps, SimplexRandomLpTest, ::testing::Range(0, 40));

}  // namespace
}  // namespace sfp::lp
