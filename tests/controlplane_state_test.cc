// Tests for the §VII "NF States" extension (state memory shares the
// stage SRAM with rule entries) and feasibility properties of the
// structured rounding.
#include <gtest/gtest.h>

#include "controlplane/approx_solver.h"
#include "controlplane/greedy_solver.h"
#include "controlplane/ilp_solver.h"
#include "controlplane/model_builder.h"
#include "controlplane/verifier.h"
#include "lp/simplex.h"
#include "workload/sfc_gen.h"

namespace sfp::controlplane {
namespace {

TEST(NfStateTest, MemoryUnitsIncludeState) {
  NfBox stateless{0, 500, 0};
  NfBox stateful{0, 500, 300};
  EXPECT_EQ(stateless.MemoryUnits(1), 500);
  EXPECT_EQ(stateful.MemoryUnits(1), 800);
  EXPECT_EQ(stateful.MemoryUnits(2), 1300);  // rule width multiplies rules only
}

TEST(NfStateTest, VerifierChargesStateMemory) {
  PlacementInstance instance;
  instance.sw.stages = 1;
  instance.sw.blocks_per_stage = 1;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 1;
  // 600 rules + 500 state = 1100 units > one 1000-entry block.
  instance.sfcs.push_back({{{0, 600, 500}}, 5.0});

  PlacementSolution solution;
  solution.physical = {{true}};
  solution.chains.resize(1);
  solution.chains[0].placed = true;
  solution.chains[0].virtual_stages = {1};

  EXPECT_FALSE(Verify(instance, solution, {MemoryModel::kConsolidated, 1}).ok);
  instance.sfcs[0].boxes[0].state_entries = 300;  // 900 units: fits
  EXPECT_TRUE(Verify(instance, solution, {MemoryModel::kConsolidated, 1}).ok);
}

TEST(NfStateTest, IlpAccountsForStateMemory) {
  // Two single-box chains of the same type; each 600 units with state.
  // One block holds only one of them.
  PlacementInstance instance;
  instance.sw.stages = 1;
  instance.sw.blocks_per_stage = 1;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 1;
  instance.sfcs.push_back({{{0, 300, 300}}, 10.0});
  instance.sfcs.push_back({{{0, 300, 300}}, 8.0});

  IlpOptions options;
  options.model.max_passes = 2;
  auto report = SolveIlp(instance, options);
  ASSERT_EQ(report.status, lp::SolveStatus::kOptimal);
  // 600 + 600 = 1200 > 1000: only the higher-value chain fits.
  EXPECT_NEAR(report.objective, 10.0, 1e-5);

  // Without state both fit (300 + 300 <= 1000).
  instance.sfcs[0].boxes[0].state_entries = 0;
  instance.sfcs[1].boxes[0].state_entries = 0;
  auto no_state = SolveIlp(instance, options);
  ASSERT_EQ(no_state.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(no_state.objective, 18.0, 1e-5);
}

TEST(NfStateTest, GreedyAccountsForStateMemory) {
  PlacementInstance instance;
  instance.sw.stages = 1;
  instance.sw.blocks_per_stage = 1;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 1;
  instance.sfcs.push_back({{{0, 300, 600}}, 10.0});  // 900 units
  instance.sfcs.push_back({{{0, 300, 0}}, 8.0});     // 300 units

  GreedyOptions options;
  options.max_passes = 2;
  auto report = SolveGreedy(instance, options);
  // eq. 13's metric counts rules only, so SFC0 (10/300) outranks SFC1
  // (8/300); SFC0's 900 units land first and SFC1's 300 no longer fit
  // the 1000-entry block.
  EXPECT_TRUE(report.solution.chains[0].placed);
  EXPECT_FALSE(report.solution.chains[1].placed);

  // Without state memory both fit (300 + 300 <= 1000).
  instance.sfcs[0].boxes[0].state_entries = 0;
  auto no_state = SolveGreedy(instance, options);
  EXPECT_EQ(no_state.solution.NumPlaced(), 2);
}

// Structured rounding must produce verifier-clean placements on random
// memory-tight instances (feasible by construction).
class RoundingFeasibilityTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundingFeasibilityTest, EveryDrawVerifies) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  workload::DatasetParams params;
  params.num_sfcs = 25;
  params.num_types = 8;
  SwitchResources sw;
  sw.blocks_per_stage = 6;  // memory-tight
  auto instance = workload::GenerateInstance(params, sw, rng);

  ModelOptions options;
  options.max_passes = 3;
  auto pm = BuildPlacementModel(instance, options);
  lp::Simplex simplex(pm.model);
  auto lp_solution = simplex.Solve();
  ASSERT_EQ(lp_solution.status, lp::SolveStatus::kOptimal);

  VerifyOptions verify_options;
  verify_options.max_passes = 3;
  int verified = 0;
  for (int draw = 0; draw < 20; ++draw) {
    auto rounded = StructuredRound(instance, pm, lp_solution.values, rng);
    ASSERT_TRUE(rounded.has_value());
    auto verdict = Verify(instance, *rounded, verify_options);
    EXPECT_TRUE(verdict.ok) << verdict.violation;
    verified += verdict.ok;
    // The rounded objective never exceeds the LP bound.
    EXPECT_LE(rounded->ObjectiveWeighted(instance), lp_solution.objective + 1e-2);
  }
  EXPECT_EQ(verified, 20);
}

INSTANTIATE_TEST_SUITE_P(TightInstances, RoundingFeasibilityTest, ::testing::Range(0, 6));

TEST(GreedyCompleteFromLpTest, AlwaysVerifies) {
  Rng rng(404);
  workload::DatasetParams params;
  params.num_sfcs = 20;
  params.num_types = 8;
  SwitchResources sw;
  sw.blocks_per_stage = 8;
  auto instance = workload::GenerateInstance(params, sw, rng);

  ModelOptions options;
  options.max_passes = 3;
  auto pm = BuildPlacementModel(instance, options);
  lp::Simplex simplex(pm.model);
  auto lp_solution = simplex.Solve();
  ASSERT_EQ(lp_solution.status, lp::SolveStatus::kOptimal);

  auto completed = GreedyCompleteFromLp(instance, pm, lp_solution.values);
  VerifyOptions verify_options;
  verify_options.max_passes = 3;
  auto verdict = Verify(instance, completed, verify_options);
  EXPECT_TRUE(verdict.ok) << verdict.violation;
  EXPECT_GT(completed.NumPlaced(), 0);
}

}  // namespace
}  // namespace sfp::controlplane
