// Tests for the SFP control plane: model building, verification, the
// exact ILP, the LP+rounding approximation, the greedy baseline, and
// runtime update (§V).
#include <gtest/gtest.h>

#include "controlplane/approx_solver.h"
#include "controlplane/greedy_solver.h"
#include "controlplane/ilp_solver.h"
#include "controlplane/model_builder.h"
#include "controlplane/runtime_update.h"
#include "controlplane/verifier.h"
#include "lp/simplex.h"
#include "workload/sfc_gen.h"

namespace sfp::controlplane {
namespace {

constexpr double kTol = 1e-5;

/// Tiny hand-checkable instance: 2 stages x 1 block x 1000 entries.
PlacementInstance TinyInstance() {
  PlacementInstance instance;
  instance.sw.stages = 2;
  instance.sw.blocks_per_stage = 1;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 2;
  // SFC0: type0(500 rules) -> type1(500 rules), T=10.
  instance.sfcs.push_back({{{0, 500}, {1, 500}}, 10.0});
  // SFC1: type1(400 rules), T=5.
  instance.sfcs.push_back({{{1, 400}}, 5.0});
  return instance;
}

TEST(ModelBuilderTest, TinyInstanceSolvesToHandOptimum) {
  auto instance = TinyInstance();
  IlpOptions options;
  options.model.max_passes = 1;
  auto report = SolveIlp(instance, options);
  ASSERT_EQ(report.status, lp::SolveStatus::kOptimal);
  // Both chains fit: 10*2 + 5*1 = 25.
  EXPECT_NEAR(report.objective, 25.0, kTol);
  EXPECT_EQ(report.solution.NumPlaced(), 2);
  EXPECT_TRUE(Verify(instance, report.solution, {MemoryModel::kConsolidated, 1}).ok);
}

TEST(ModelBuilderTest, CapacityForcesSelection) {
  auto instance = TinyInstance();
  instance.sw.capacity_gbps = 10.0;  // only one pass of SFC0 OR both...
  // SFC0 uses 10 of capacity, SFC1 uses 5: together 15 > 10. The
  // higher-objective choice is SFC0 alone (20 > 5).
  IlpOptions options;
  options.model.max_passes = 1;
  auto report = SolveIlp(instance, options);
  ASSERT_EQ(report.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(report.objective, 20.0, kTol);
  EXPECT_TRUE(report.solution.chains[0].placed);
  EXPECT_FALSE(report.solution.chains[1].placed);
}

TEST(ModelBuilderTest, MemoryForcesSelection) {
  auto instance = TinyInstance();
  // Blow up SFC1's rules so type1's consolidated entries exceed one
  // block if both chains land: 500 + 700 = 1200 > 1000 in one stage.
  // But the solver can still take both if it spreads type1 over two
  // stages — forbid that by making SFC0's type0 occupy stage 0 fully.
  instance.sfcs[1].boxes[0].rules = 700;
  IlpOptions options;
  options.model.max_passes = 1;
  auto report = SolveIlp(instance, options);
  ASSERT_EQ(report.status, lp::SolveStatus::kOptimal);
  // SFC0 needs type0@s0 (block of s0) and type1@s1 (block of s1). With
  // both blocks owned, SFC1's 700 rules of type1 cannot fit anywhere
  // (s1 would need ceil(1200/1000)=2 blocks). Best: SFC0 only -> 20.
  EXPECT_NEAR(report.objective, 20.0, kTol);
}

TEST(ModelBuilderTest, RecirculationUnlocksOutOfOrderChains) {
  PlacementInstance instance;
  instance.sw.stages = 2;
  instance.sw.blocks_per_stage = 2;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 2;
  // Chain wants type1 then type0, but with 2 chains both orders exist;
  // a single pass can host only one order on 2 stages.
  instance.sfcs.push_back({{{0, 100}, {1, 100}}, 10.0});
  instance.sfcs.push_back({{{1, 100}, {0, 100}}, 10.0});

  IlpOptions one_pass;
  one_pass.model.max_passes = 1;
  auto r1 = SolveIlp(instance, one_pass);
  ASSERT_EQ(r1.status, lp::SolveStatus::kOptimal);

  IlpOptions two_pass;
  two_pass.model.max_passes = 2;
  auto r2 = SolveIlp(instance, two_pass);
  ASSERT_EQ(r2.status, lp::SolveStatus::kOptimal);

  // One pass: both types can be installed on both stages (4 blocks),
  // so both chains CAN be placed... but verify the weaker claim that
  // recirculation never hurts and the two-pass solution is verified.
  EXPECT_GE(r2.objective + kTol, r1.objective);
  EXPECT_TRUE(Verify(instance, r2.solution, {MemoryModel::kConsolidated, 2}).ok);
}

TEST(ModelBuilderTest, RecirculationRequiredWhenBlocksScarce) {
  PlacementInstance instance;
  instance.sw.stages = 2;
  instance.sw.blocks_per_stage = 1;  // one NF type per stage only
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 2;
  instance.sfcs.push_back({{{0, 500}, {1, 500}}, 10.0});
  instance.sfcs.push_back({{{1, 500}, {0, 400}}, 8.0});

  // One pass: physical layout must be a permutation of {0,1} over the
  // two stages; only one of the two opposite-order chains fits.
  IlpOptions one_pass;
  one_pass.model.max_passes = 1;
  auto r1 = SolveIlp(instance, one_pass);
  ASSERT_EQ(r1.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(r1.objective, 20.0, kTol);  // SFC0 wins (20 > 16)

  // Two passes: the second chain folds; both fit (capacity allows
  // 10 + 2*8 = 26 <= 100).
  IlpOptions two_pass;
  two_pass.model.max_passes = 2;
  auto r2 = SolveIlp(instance, two_pass);
  ASSERT_EQ(r2.status, lp::SolveStatus::kOptimal);
  EXPECT_NEAR(r2.objective, 36.0, kTol);
  EXPECT_EQ(r2.solution.chains[1].Passes(2), 2);
}

TEST(ModelBuilderTest, DisaggregatedAndAggregatedAgreeOnOptimum) {
  Rng rng(5);
  workload::DatasetParams params;
  params.num_sfcs = 4;
  params.num_types = 3;
  params.min_chain_len = 2;
  params.max_chain_len = 2;
  SwitchResources sw;
  sw.stages = 3;
  sw.blocks_per_stage = 3;
  sw.entries_per_block = 1000;
  sw.capacity_gbps = 60;
  auto instance = workload::GenerateInstance(params, sw, rng);

  IlpOptions agg;
  agg.model.max_passes = 2;
  agg.model.aggregated_consistency = true;
  agg.time_limit_seconds = 15.0;
  IlpOptions dis = agg;
  dis.model.aggregated_consistency = false;

  auto ra = SolveIlp(instance, agg);
  auto rd = SolveIlp(instance, dis);
  if (ra.status != lp::SolveStatus::kOptimal || rd.status != lp::SolveStatus::kOptimal) {
    GTEST_SKIP() << "IP guard tripped on this draw";
  }
  EXPECT_NEAR(ra.objective, rd.objective, 1e-4);
}

TEST(VerifierTest, DetectsOrderViolation) {
  auto instance = TinyInstance();
  PlacementSolution solution;
  solution.physical = {{true, false}, {false, true}};
  solution.chains.resize(2);
  solution.chains[0].placed = true;
  // Virtual stage 3 = pass 2 stage 0 (type0: consistent) then virtual
  // stage 2 = pass 1 stage 1 (type1: consistent) — but decreasing.
  solution.chains[0].virtual_stages = {3, 2};
  auto verdict = Verify(instance, solution, {MemoryModel::kConsolidated, 2});
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.violation.find("order"), std::string::npos);
}

TEST(VerifierTest, DetectsConsistencyViolation) {
  auto instance = TinyInstance();
  PlacementSolution solution;
  solution.physical = {{true, false}, {false, true}};
  solution.chains.resize(2);
  solution.chains[1].placed = true;
  solution.chains[1].virtual_stages = {1};  // type1 at stage0: not installed
  auto verdict = Verify(instance, solution, {MemoryModel::kConsolidated, 1});
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.violation.find("physical"), std::string::npos);
}

TEST(VerifierTest, DetectsMemoryViolation) {
  auto instance = TinyInstance();
  instance.sfcs[1].boxes[0].rules = 700;  // type1 total 1200 > 1000
  PlacementSolution solution;
  solution.physical = {{true, false}, {false, true}};
  solution.chains.resize(2);
  solution.chains[0].placed = true;
  solution.chains[0].virtual_stages = {1, 2};
  solution.chains[1].placed = true;
  solution.chains[1].virtual_stages = {2};
  auto verdict = Verify(instance, solution, {MemoryModel::kConsolidated, 1});
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.violation.find("blocks"), std::string::npos);
}

TEST(VerifierTest, DetectsCapacityViolation) {
  auto instance = TinyInstance();
  instance.sw.capacity_gbps = 9.0;
  PlacementSolution solution;
  solution.physical = {{true, false}, {false, true}};
  solution.chains.resize(2);
  solution.chains[0].placed = true;
  solution.chains[0].virtual_stages = {1, 2};  // T=10 > C=9
  auto verdict = Verify(instance, solution, {MemoryModel::kConsolidated, 1});
  EXPECT_FALSE(verdict.ok);
  EXPECT_NE(verdict.violation.find("backplane"), std::string::npos);
}

TEST(VerifierTest, DetectsMissingTypeInstall) {
  auto instance = TinyInstance();
  PlacementSolution solution;
  solution.physical = {{true, false}, {false, false}};  // type1 nowhere
  solution.chains.resize(2);
  auto verdict = Verify(instance, solution, {MemoryModel::kConsolidated, 1});
  EXPECT_FALSE(verdict.ok);
  VerifyOptions relaxed;
  relaxed.max_passes = 1;
  relaxed.require_all_types_installed = false;
  EXPECT_TRUE(Verify(instance, solution, relaxed).ok);
}

TEST(VerifierTest, ConsolidationVsPerLogicalBlocks) {
  // Two 400-rule logical NFs of the same type in one stage: 1 block
  // consolidated (eq. 24), 2 blocks per-logical (eq. 25).
  PlacementInstance instance;
  instance.sw.stages = 1;
  instance.sw.blocks_per_stage = 1;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 1;
  instance.sfcs.push_back({{{0, 400}}, 5.0});
  instance.sfcs.push_back({{{0, 400}}, 5.0});

  PlacementSolution solution;
  solution.physical = {{true}};
  solution.chains.resize(2);
  solution.chains[0].placed = true;
  solution.chains[0].virtual_stages = {1};
  solution.chains[1].placed = true;
  solution.chains[1].virtual_stages = {2};  // pass 2, same physical stage

  EXPECT_TRUE(Verify(instance, solution, {MemoryModel::kConsolidated, 2}).ok);
  EXPECT_FALSE(Verify(instance, solution, {MemoryModel::kPerLogicalNf, 2}).ok);
}

TEST(ModelBuilderTest, NoConsolidationModelPlacesFewer) {
  Rng rng(11);
  workload::DatasetParams params;
  params.num_sfcs = 6;
  params.num_types = 3;
  params.min_chain_len = 2;
  params.max_chain_len = 2;
  SwitchResources sw;
  sw.stages = 3;
  sw.blocks_per_stage = 2;
  sw.entries_per_block = 1000;
  sw.capacity_gbps = 200;
  auto instance = workload::GenerateInstance(params, sw, rng);

  IlpOptions consolidated;
  consolidated.model.max_passes = 2;
  consolidated.model.memory_model = MemoryModel::kConsolidated;
  consolidated.time_limit_seconds = 15.0;
  IlpOptions per_logical = consolidated;
  per_logical.model.memory_model = MemoryModel::kPerLogicalNf;

  auto rc = SolveIlp(instance, consolidated);
  auto rp = SolveIlp(instance, per_logical);
  if (rc.status != lp::SolveStatus::kOptimal || rp.status != lp::SolveStatus::kOptimal) {
    GTEST_SKIP() << "IP guard tripped on this draw";
  }
  // Consolidation can only help (Fig. 6's claim).
  EXPECT_GE(rc.objective + kTol, rp.objective);
  EXPECT_TRUE(
      Verify(instance, rp.solution, {MemoryModel::kPerLogicalNf, 2}).ok);
}

TEST(SolutionTest, MetricsComputeCorrectly) {
  auto instance = TinyInstance();
  PlacementSolution solution;
  solution.physical = {{true, false}, {false, true}};
  solution.chains.resize(2);
  solution.chains[0].placed = true;
  solution.chains[0].virtual_stages = {1, 2};
  solution.chains[1].placed = true;
  solution.chains[1].virtual_stages = {4};  // second pass, stage 1

  EXPECT_NEAR(solution.OffloadedGbps(instance), 15.0, kTol);
  EXPECT_NEAR(solution.BackplaneGbps(instance), 10.0 + 2 * 5.0, kTol);
  EXPECT_NEAR(solution.ObjectiveWeighted(instance), 25.0, kTol);
  EXPECT_EQ(solution.chains[0].Passes(2), 1);
  EXPECT_EQ(solution.chains[1].Passes(2), 2);
  auto entries = solution.EntriesPerStage(instance);
  EXPECT_EQ(entries[0], 500);
  EXPECT_EQ(entries[1], 900);
  auto blocks = solution.BlocksPerStage(instance, MemoryModel::kConsolidated);
  EXPECT_EQ(blocks[0], 1);
  EXPECT_EQ(blocks[1], 1);
}

TEST(SolutionToValuesTest, RoundTripsThroughExtract) {
  auto instance = TinyInstance();
  ModelOptions options;
  options.max_passes = 2;
  auto pm = BuildPlacementModel(instance, options);

  PlacementSolution solution;
  solution.physical = {{true, false}, {false, true}};
  solution.chains.resize(2);
  solution.chains[0].placed = true;
  solution.chains[0].virtual_stages = {1, 2};
  solution.chains[1].placed = true;
  solution.chains[1].virtual_stages = {2};

  auto values = SolutionToValues(instance, pm, solution);
  auto back = ExtractSolution(instance, pm, values);
  EXPECT_EQ(back.physical, solution.physical);
  ASSERT_EQ(back.chains.size(), solution.chains.size());
  for (std::size_t l = 0; l < back.chains.size(); ++l) {
    EXPECT_EQ(back.chains[l].placed, solution.chains[l].placed);
    EXPECT_EQ(back.chains[l].virtual_stages, solution.chains[l].virtual_stages);
  }
}

TEST(ApproxSolverTest, FindsVerifiedSolutionOnTinyInstance) {
  auto instance = TinyInstance();
  ApproxOptions options;
  options.model.max_passes = 2;
  auto report = SolveApprox(instance, options);
  ASSERT_TRUE(report.ok);
  EXPECT_NEAR(report.objective, 25.0, 1e-4);  // matches the ILP here
  EXPECT_TRUE(Verify(instance, report.solution, {MemoryModel::kConsolidated, 2}).ok);
  // LP upper-bounds eq. 1 up to the pass tie-break epsilon.
  EXPECT_GE(report.lp_bound + 1e-3, report.objective);
}

TEST(GreedySolverTest, PlacesByMetricAndRespectsResources) {
  auto instance = TinyInstance();
  GreedyOptions options;
  options.max_passes = 2;
  auto report = SolveGreedy(instance, options);
  EXPECT_NEAR(report.objective, 25.0, kTol);
  VerifyOptions verify;
  verify.max_passes = 2;
  EXPECT_TRUE(Verify(instance, report.solution, verify).ok);
}

TEST(GreedySolverTest, SkipsChainsThatExceedCapacity) {
  auto instance = TinyInstance();
  instance.sw.capacity_gbps = 10.0;
  GreedyOptions options;
  options.max_passes = 1;
  auto report = SolveGreedy(instance, options);
  // Metric: SFC0 = 10/(2*1000)=0.005; SFC1 = 5/400=0.0125 -> SFC1
  // first (5 capacity), then SFC0 (10) would exceed 10 -> skipped.
  EXPECT_TRUE(report.solution.chains[1].placed);
  EXPECT_FALSE(report.solution.chains[0].placed);
  EXPECT_NEAR(report.objective, 5.0, kTol);
}

TEST(GreedySolverTest, MetricOrderBeatsFifoOnAdversarialInput) {
  // A memory-hogging, low-bandwidth chain arrives first; FIFO wastes
  // the switch memory on it and locks out two high-value chains.
  PlacementInstance instance;
  instance.sw.stages = 2;
  instance.sw.blocks_per_stage = 2;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 2;
  instance.sfcs.push_back({{{0, 2000}, {1, 2000}}, 2.0});  // memory hog
  instance.sfcs.push_back({{{0, 100}}, 8.0});
  instance.sfcs.push_back({{{1, 100}}, 8.0});

  GreedyOptions metric;
  metric.max_passes = 1;
  GreedyOptions fifo = metric;
  fifo.sort_by_metric = false;

  auto rm = SolveGreedy(instance, metric);
  auto rf = SolveGreedy(instance, fifo);
  EXPECT_GT(rm.objective, rf.objective);
}

// ---------------------------------------------------------------------
// Property tests over random instances: algorithm ordering and solution
// validity (TEST_P sweep).
class SolverOrderingTest : public ::testing::TestWithParam<int> {};

TEST_P(SolverOrderingTest, IlpDominatesApproxDominatesNothing) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 3);
  workload::DatasetParams params;
  params.num_sfcs = static_cast<int>(rng.UniformInt(4, 9));
  params.num_types = 4;
  params.min_chain_len = 2;
  params.max_chain_len = 4;
  SwitchResources sw;
  sw.stages = 4;
  sw.blocks_per_stage = 4;
  sw.entries_per_block = 1000;
  sw.capacity_gbps = 80;
  auto instance = workload::GenerateInstance(params, sw, rng);

  IlpOptions ilp_options;
  ilp_options.model.max_passes = 2;
  ilp_options.seed = static_cast<std::uint64_t>(GetParam());
  ilp_options.time_limit_seconds = 10.0;
  ilp_options.relative_gap = 0.01;  // IP plateaus are genuinely hard (Fig. 8)
  auto ilp = SolveIlp(instance, ilp_options);

  ApproxOptions approx_options;
  approx_options.model.max_passes = 2;
  approx_options.seed = static_cast<std::uint64_t>(GetParam()) + 1;
  auto approx = SolveApprox(instance, approx_options);

  GreedyOptions greedy_options;
  greedy_options.max_passes = 2;
  auto greedy = SolveGreedy(instance, greedy_options);

  VerifyOptions verify;
  verify.max_passes = 2;
  if (ilp.solution.NumPlaced() > 0 || ilp.status == lp::SolveStatus::kOptimal) {
    EXPECT_TRUE(Verify(instance, ilp.solution, verify).ok);
  }
  // The B&B dual bound dominates every feasible solution — valid even
  // when the solver stopped at the time limit or the relative gap.
  if (approx.ok) {
    EXPECT_TRUE(Verify(instance, approx.solution, verify).ok);
    EXPECT_GE(ilp.best_bound + 0.1, approx.objective);
    // And the LP relaxation bound dominates the exact optimum.
    EXPECT_GE(approx.lp_bound + 1e-2, ilp.objective);  // slack covers the pass tie-break epsilon
  }
  EXPECT_TRUE(Verify(instance, greedy.solution, verify).ok);
  EXPECT_GE(ilp.best_bound + 0.1, greedy.objective);
  if (ilp.status == lp::SolveStatus::kOptimal) {
    // At proven (gap-)optimality the incumbent itself dominates too.
    EXPECT_GE(ilp.objective * 1.011 + 1e-4, greedy.objective);
    if (approx.ok) EXPECT_GE(ilp.objective * 1.011 + 1e-4, approx.objective);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SolverOrderingTest, ::testing::Range(0, 12));

TEST(IlpSolverTest, TimeLimitProducesTrace) {
  Rng rng(23);
  workload::DatasetParams params;
  params.num_sfcs = 12;
  params.num_types = 6;
  SwitchResources sw;  // defaults: 8x20x1000, 400G
  auto instance = workload::GenerateInstance(params, sw, rng);

  IlpOptions options;
  options.model.max_passes = 2;
  options.time_limit_seconds = 2.0;
  auto report = SolveIlp(instance, options);
  // Either proved optimal quickly or returned a feasible incumbent.
  EXPECT_TRUE(report.status == lp::SolveStatus::kOptimal ||
              report.status == lp::SolveStatus::kFeasible ||
              report.status == lp::SolveStatus::kTimeLimit);
  if (report.status != lp::SolveStatus::kTimeLimit) {
    EXPECT_FALSE(report.incumbent_trace.empty());
    // Bound slack covers the pass tie-break epsilon in the model.
    EXPECT_GE(report.best_bound + 0.1, report.objective);
  }
}

TEST(RuntimeUpdateTest, ResidentsStayPinnedAcrossRefill) {
  Rng rng(31);
  workload::DatasetParams params;
  params.num_sfcs = 10;
  params.num_types = 4;
  params.min_chain_len = 2;
  params.max_chain_len = 3;
  SwitchResources sw;
  sw.stages = 4;
  sw.blocks_per_stage = 4;
  sw.capacity_gbps = 60;
  auto instance = workload::GenerateInstance(params, sw, rng);

  RuntimeUpdateOptions options;
  options.solver.model.max_passes = 2;
  RuntimeUpdateManager manager(instance, options);
  manager.PlaceInitial(5);
  const auto residents_before = manager.Residents();
  ASSERT_FALSE(residents_before.empty());
  for (int l : residents_before) EXPECT_LT(l, 5);

  // Remember resident placements, drop one, refill.
  std::map<int, std::vector<int>> stages_before;
  for (int l : residents_before) {
    stages_before[l] = manager.current().chains[static_cast<std::size_t>(l)].virtual_stages;
  }
  const int victim = *residents_before.begin();
  ASSERT_TRUE(manager.Drop(victim));
  manager.Refill();

  for (int l : residents_before) {
    if (l == victim) continue;
    const auto& chain = manager.current().chains[static_cast<std::size_t>(l)];
    ASSERT_TRUE(chain.placed) << "resident " << l << " evicted by refill";
    EXPECT_EQ(chain.virtual_stages, stages_before[l]) << "resident " << l << " moved";
  }
  VerifyOptions verify;
  verify.max_passes = 2;
  EXPECT_TRUE(Verify(instance, manager.current(), verify).ok);
}

TEST(RuntimeUpdateTest, RefillAdmitsNewSfcsAfterDrops) {
  Rng rng(37);
  workload::DatasetParams params;
  params.num_sfcs = 16;
  params.num_types = 4;
  params.min_chain_len = 2;
  params.max_chain_len = 3;
  SwitchResources sw;
  sw.stages = 4;
  sw.blocks_per_stage = 3;
  sw.capacity_gbps = 50;  // tight: initial placement can't take all
  auto instance = workload::GenerateInstance(params, sw, rng);

  RuntimeUpdateOptions options;
  options.solver.model.max_passes = 2;
  RuntimeUpdateManager manager(instance, options);
  manager.PlaceInitial(8);
  const double before = manager.current().ObjectiveWeighted(instance);

  Rng drop_rng(1);
  manager.DropRandom(1.0, drop_rng);  // everyone leaves
  EXPECT_TRUE(manager.Residents().empty());
  manager.Refill();
  const double after = manager.current().ObjectiveWeighted(instance);
  // With the full candidate pool available the refill should do at
  // least as well as the restricted initial placement.
  EXPECT_GE(after + 1e-4, before * 0.9);
  EXPECT_GT(manager.Residents().size(), 0u);
}

TEST(StructuredRoundTest, ProducesOrderConsistentChains) {
  Rng rng(41);
  workload::DatasetParams params;
  params.num_sfcs = 8;
  params.num_types = 5;
  SwitchResources sw;
  auto instance = workload::GenerateInstance(params, sw, rng);
  ModelOptions options;
  options.max_passes = 2;
  auto pm = BuildPlacementModel(instance, options);
  lp::Simplex simplex(pm.model);
  auto lp_sol = simplex.Solve();
  ASSERT_EQ(lp_sol.status, lp::SolveStatus::kOptimal);

  for (int trial = 0; trial < 20; ++trial) {
    auto rounded = StructuredRound(instance, pm, lp_sol.values, rng);
    if (!rounded) continue;
    for (std::size_t l = 0; l < rounded->chains.size(); ++l) {
      const auto& chain = rounded->chains[l];
      if (!chain.placed) continue;
      for (std::size_t j = 1; j < chain.virtual_stages.size(); ++j) {
        EXPECT_GT(chain.virtual_stages[j], chain.virtual_stages[j - 1]);
      }
      // Every placed box is backed by a physical NF (forced x).
      for (std::size_t j = 0; j < chain.virtual_stages.size(); ++j) {
        const int s = (chain.virtual_stages[j] - 1) % instance.sw.stages;
        const int type = instance.sfcs[l].boxes[j].type;
        EXPECT_TRUE(rounded->physical[static_cast<std::size_t>(type)]
                                     [static_cast<std::size_t>(s)]);
      }
    }
  }
}

}  // namespace
}  // namespace sfp::controlplane
