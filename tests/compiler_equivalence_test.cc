// Compiled-plan differential tests: the per-tenant pipeline compiler
// (docs/COMPILER.md) must be bit-identical to the interpreted path —
// same packet outcomes, same drops, same pipeline/table/telemetry
// counters — across randomized rule sets, thread counts, stateful NFs,
// and rule churn (installs/removals and fig11-style atomic updates)
// interleaved with compiled serving. The churn-concurrency test runs
// under ThreadSanitizer in CI to validate the plan-cache locking.
#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics.h"
#include "common/rng.h"
#include "common/worker_pool.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/rate_limiter.h"
#include "nf/router.h"
#include "switchsim/compiler/plan_cache.h"
#include "workload/traffic.h"

namespace sfp::core {
namespace {

switchsim::SwitchConfig Testbed() {
  switchsim::SwitchConfig config;
  config.num_stages = 12;
  config.backplane_gbps = 3200.0;
  return config;
}

/// One physical NF of every type, one per stage.
const std::vector<std::vector<nf::NfType>>& FullLayout() {
  static const std::vector<std::vector<nf::NfType>> layout = {
      {nf::NfType::kFirewall},   {nf::NfType::kLoadBalancer},
      {nf::NfType::kClassifier}, {nf::NfType::kRouter},
      {nf::NfType::kNat},        {nf::NfType::kRateLimiter}};
  return layout;
}

/// Random SFC over the *stateless* NF types (firewall, classifier,
/// router, NAT, load-balancer set_backend rules). Chain order is
/// shuffled, so some tenants fold over multiple passes.
dataplane::Sfc RandomSfc(dataplane::TenantId tenant, Rng& rng) {
  std::vector<nf::NfType> types = {nf::NfType::kFirewall, nf::NfType::kClassifier,
                                   nf::NfType::kRouter, nf::NfType::kNat,
                                   nf::NfType::kLoadBalancer};
  for (std::size_t i = types.size(); i > 1; --i) {
    std::swap(types[i - 1],
              types[static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(i) - 1))]);
  }
  types.resize(static_cast<std::size_t>(rng.UniformInt(1, 4)));

  dataplane::Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 10;
  for (const auto type : types) {
    nf::NfConfig config;
    config.type = type;
    config.rules = nf::MakeNf(type)->GenerateRules(rng, rng.UniformInt(1, 6));
    sfc.chain.push_back(std::move(config));
  }
  return sfc;
}

nf::NfConfig Fw(std::uint16_t port = 23) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(port, port),
      switchsim::FieldMatch::Any()));
  return config;
}

nf::NfConfig Tc(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 7));
  return config;
}

SfpSystem MakeSystem(bool compiled) {
  SfpSystem system(Testbed());
  system.ProvisionPhysical(FullLayout());
  if (compiled) system.EnableCompiledPlans();
  return system;
}

/// Mixed multi-tenant workload, deterministically shuffled. Includes
/// packets from an unadmitted tenant (99) so the all-dead plan path is
/// exercised alongside real chains.
std::vector<net::Packet> MakeWorkload(const std::vector<dataplane::TenantId>& tenants,
                                      int per_tenant, std::uint64_t seed = 42) {
  Rng rng(seed);
  workload::PacketSizeProfile profile;
  std::vector<net::Packet> packets;
  for (const auto tenant : tenants) {
    auto flows = workload::GenerateFlows(tenant, /*num_flows=*/29, per_tenant, profile, rng);
    packets.insert(packets.end(), flows.begin(), flows.end());
  }
  for (std::size_t i = packets.size(); i > 1; --i) {
    std::swap(packets[i - 1],
              packets[static_cast<std::size_t>(rng.UniformInt(0, static_cast<int>(i) - 1))]);
  }
  return packets;
}

struct Outcome {
  std::vector<std::uint8_t> wire;
  bool dropped;
  int passes;
  std::uint8_t flow_class;
  std::int32_t egress_port;
  std::uint64_t scratch;
  double latency_ns;

  bool operator==(const Outcome&) const = default;
};

Outcome Of(const switchsim::ProcessResult& result) {
  return {result.packet.Serialize(), result.meta.dropped,     result.passes,
          result.meta.flow_class,    result.meta.egress_port, result.meta.scratch,
          result.latency_ns};
}

/// Every exported counter except the families the compiler is
/// *allowed* to change: its own compiler.* stats, the interpreter's
/// flow-decision cache (the compiled path bypasses that cache by
/// design; see docs/COMPILER.md "What is and isn't identical"), and
/// pipeline.batches (these tests serve one side scalar, one batched).
std::map<std::string, std::uint64_t> ComparableCounters(const SfpSystem& system) {
  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  std::map<std::string, std::uint64_t> counters;
  for (const auto& snapshot : registry.Counters()) {
    if (snapshot.name.starts_with("compiler.")) continue;
    if (snapshot.name.starts_with("pipeline.cache.")) continue;
    if (snapshot.name == "pipeline.batches") continue;
    counters.emplace(snapshot.name, snapshot.value);
  }
  return counters;
}

TEST(CompiledEquivalenceTest, RandomizedBitIdenticalAcrossThreads) {
  Rng sfc_rng(7);
  std::vector<dataplane::Sfc> sfcs;
  for (dataplane::TenantId tenant = 1; tenant <= 6; ++tenant) {
    sfcs.push_back(RandomSfc(tenant, sfc_rng));
  }
  const auto workload = MakeWorkload({1, 2, 3, 4, 5, 6, 99}, 120);

  auto interpreted = MakeSystem(/*compiled=*/false);
  for (const auto& sfc : sfcs) {
    ASSERT_TRUE(interpreted.AdmitTenant(sfc).admitted) << "tenant " << sfc.tenant;
  }
  std::vector<Outcome> reference;
  reference.reserve(workload.size());
  for (const auto& packet : workload) reference.push_back(Of(interpreted.Process(packet)));

  for (const int threads : {1, 4}) {
    auto compiled = MakeSystem(/*compiled=*/true);
    for (const auto& sfc : sfcs) {
      ASSERT_TRUE(compiled.AdmitTenant(sfc).admitted) << "tenant " << sfc.tenant;
    }
    switchsim::BatchOptions options;
    options.num_threads = threads;
    options.min_parallel_batch = 1;
    const auto results = compiled.ProcessBatch(workload, options);
    ASSERT_EQ(results.size(), workload.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(Of(results[i]), reference[i]) << "packet " << i << " threads=" << threads;
    }

    // Aggregate counters (pipeline, per-table, telemetry, admission)
    // must agree exactly; only compiler.* / pipeline.cache.* may
    // differ between the two paths.
    EXPECT_EQ(ComparableCounters(compiled), ComparableCounters(interpreted))
        << "threads=" << threads;

    // And the compiled system must actually have served compiled: every
    // admitted tenant compiles (no fallbacks). Single-threaded, not one
    // packet may fall back to the interpreter's flow-decision cache —
    // even tenants whose admit-time plans went stale (later admissions
    // bump shared table epochs) recompile in place on first lookup.
    // Multi-threaded, compile-lock contention may interpret a few.
    common::metrics::Registry registry;
    compiled.ExportMetrics(registry);
    EXPECT_GE(registry.GetCounter("compiler.plans_compiled").Value(), 6u);
    EXPECT_EQ(registry.GetCounter("compiler.fallback_tenants").Value(), 0u);
    if (threads == 1) {
      EXPECT_EQ(registry.GetCounter("pipeline.cache.hits").Value() +
                    registry.GetCounter("pipeline.cache.misses").Value(),
                0u);
    }
  }
}

// Stateful NFs (rate-limiter token buckets, load-balancer pool hashing)
// execute as opaque calls inside compiled plans. On the single-threaded
// batch path packets run in input order, so shared NF state evolves
// identically to the scalar interpreter.
TEST(CompiledEquivalenceTest, StatefulNfsBitIdenticalSingleThread) {
  dataplane::Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 10;
  nf::NfConfig rl;
  rl.type = nf::NfType::kRateLimiter;
  rl.rules.push_back(nf::RateLimiter::Police(0, 0, /*limiter_id=*/0));  // match-all
  nf::NfConfig lb;
  lb.type = nf::NfType::kLoadBalancer;
  lb.rules.push_back(nf::LoadBalancer::PoolSelect(net::Ipv4Address::Of(10, 0, 0, 100), 80,
                                                  /*pool_id=*/0));
  lb.rules.push_back(nf::LoadBalancer::SetBackend(net::Ipv4Address::Of(10, 0, 0, 101), 443,
                                                  net::Ipv4Address::Of(192, 168, 0, 9)));
  sfc.chain = {rl, lb, Tc(5)};

  auto setup = [&](SfpSystem& system) {
    auto* limiter = dynamic_cast<nf::RateLimiter*>(
        system.data_plane().PhysicalNf(5, nf::NfType::kRateLimiter));
    ASSERT_NE(limiter, nullptr);
    // Tight bucket: the burst admits a few packets, then drops mix in.
    EXPECT_EQ(limiter->AddBucket(/*rate_mbps=*/0.5, /*burst_kb=*/2.0), 0u);
    auto* balancer = dynamic_cast<nf::LoadBalancer*>(
        system.data_plane().PhysicalNf(1, nf::NfType::kLoadBalancer));
    ASSERT_NE(balancer, nullptr);
    EXPECT_EQ(balancer->AddPool({net::Ipv4Address::Of(192, 168, 1, 1),
                                 net::Ipv4Address::Of(192, 168, 1, 2),
                                 net::Ipv4Address::Of(192, 168, 1, 3)}),
              0u);
    ASSERT_TRUE(system.AdmitTenant(sfc).admitted);
  };

  auto interpreted = MakeSystem(/*compiled=*/false);
  setup(interpreted);
  auto compiled = MakeSystem(/*compiled=*/true);
  setup(compiled);

  const auto workload = MakeWorkload({1}, 600);
  std::vector<Outcome> reference;
  reference.reserve(workload.size());
  bool saw_drop = false;
  for (const auto& packet : workload) {
    reference.push_back(Of(interpreted.Process(packet)));
    saw_drop |= reference.back().dropped;
  }
  EXPECT_TRUE(saw_drop) << "bucket never throttled; test exercises nothing";

  switchsim::BatchOptions options;
  options.num_threads = 1;
  const auto results = compiled.ProcessBatch(workload, options);
  ASSERT_EQ(results.size(), workload.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(Of(results[i]), reference[i]) << "packet " << i;
  }
  EXPECT_EQ(ComparableCounters(compiled), ComparableCounters(interpreted));
}

// Rule churn — admissions, departures, and fig11-style atomic
// replace batches — interleaved with compiled serving. Every mutation
// is applied identically to an interpreted twin; after each round the
// served outcomes must match bit-for-bit, which proves the mutation
// hooks invalidated every affected plan (a stale plan would keep
// serving the pre-churn rules).
TEST(CompilerChurnTest, InvalidationUnderRuleChurnStaysBitIdentical) {
  Rng rng(11);
  auto interpreted = MakeSystem(/*compiled=*/false);
  auto compiled = MakeSystem(/*compiled=*/true);

  std::vector<dataplane::Sfc> base;
  base.push_back({});  // placeholder so tenants index naturally
  for (dataplane::TenantId tenant = 1; tenant <= 3; ++tenant) {
    auto sfc = RandomSfc(tenant, rng);
    ASSERT_TRUE(interpreted.AdmitTenant(sfc).admitted);
    ASSERT_TRUE(compiled.AdmitTenant(sfc).admitted);
    base.push_back(std::move(sfc));
  }

  const auto workload = MakeWorkload({1, 2, 3, 21, 22, 23, 24}, 40);
  common::WorkerPool pool(2);
  switchsim::BatchOptions options;
  options.num_threads = 2;
  options.min_parallel_batch = 1;
  options.pool = &pool;

  std::vector<dataplane::TenantId> churned;  // admitted by round (a)
  for (int round = 0; round < 12; ++round) {
    const auto results = compiled.ProcessBatch(workload, options);
    ASSERT_EQ(results.size(), workload.size());
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(Of(results[i]), Of(interpreted.Process(workload[i])))
          << "round " << round << " packet " << i;
    }

    switch (round % 3) {
      case 0: {  // admit a fresh tenant
        const auto tenant = static_cast<dataplane::TenantId>(21 + round / 3);
        const auto sfc = RandomSfc(tenant, rng);
        const auto a = interpreted.AdmitTenant(sfc);
        const auto b = compiled.AdmitTenant(sfc);
        ASSERT_EQ(a.admitted, b.admitted) << a.reason << " vs " << b.reason;
        if (a.admitted) churned.push_back(tenant);
        break;
      }
      case 1: {  // remove the most recently churned tenant
        if (churned.empty()) break;
        const auto tenant = churned.back();
        churned.pop_back();
        ASSERT_TRUE(interpreted.RemoveTenant(tenant));
        ASSERT_TRUE(compiled.RemoveTenant(tenant));
        break;
      }
      case 2: {  // fig11: atomically swap tenant 3's rules
        auto replacement = base[3];
        replacement.chain.push_back(Fw(static_cast<std::uint16_t>(1000 + round)));
        const std::vector<dataplane::DataPlane::UpdateOp> ops = {
            {dataplane::DataPlane::UpdateOp::Kind::kRemove, base[3]},
            {dataplane::DataPlane::UpdateOp::Kind::kAdmit, replacement}};
        const auto a = interpreted.data_plane().ApplyAtomic(ops);
        const auto b = compiled.data_plane().ApplyAtomic(ops);
        ASSERT_TRUE(a.ok) << a.error;
        ASSERT_TRUE(b.ok) << b.error;
        base[3] = std::move(replacement);
        break;
      }
    }
  }

  EXPECT_EQ(ComparableCounters(compiled), ComparableCounters(interpreted));
  const auto* cache = compiled.data_plane().pipeline().plan_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->Invalidations(), 0u);
  EXPECT_GT(cache->Recompiles(), 0u);
}

// Compiled serving while another thread churns a tenant through
// admit/remove — each departure invalidates its plan mid-traffic. Run
// under TSan to validate the plan-cache locking; the assertions check
// that resident tenants' compiled results never waver.
TEST(CompilerChurnConcurrencyTest, ConcurrentChurnAndCompiledServe) {
  auto system = MakeSystem(/*compiled=*/true);
  dataplane::Sfc t1;
  t1.tenant = 1;
  t1.bandwidth_gbps = 50;
  t1.chain = {Fw(), Tc(1), Rt()};
  dataplane::Sfc t3;  // router before firewall -> folds into pass 1
  t3.tenant = 3;
  t3.bandwidth_gbps = 10;
  t3.chain = {Rt(), Fw()};
  ASSERT_TRUE(system.AdmitTenant(t1).admitted);
  ASSERT_TRUE(system.AdmitTenant(t3).admitted);

  // Interpreted twin for the quiescent reference outcomes.
  auto scalar = MakeSystem(/*compiled=*/false);
  ASSERT_TRUE(scalar.AdmitTenant(t1).admitted);
  ASSERT_TRUE(scalar.AdmitTenant(t3).admitted);
  const auto workload = MakeWorkload({1, 3}, 150);
  std::vector<Outcome> reference;
  reference.reserve(workload.size());
  for (const auto& packet : workload) reference.push_back(Of(scalar.Process(packet)));

  std::atomic<bool> stop{false};
  std::atomic<int> churns{0};
  std::thread control([&] {
    dataplane::Sfc churn;
    churn.tenant = 9;
    churn.bandwidth_gbps = 5;
    churn.chain = {Fw(), Tc(3)};
    while (!stop.load(std::memory_order_acquire)) {
      const auto admitted = system.AdmitTenant(churn);
      ASSERT_TRUE(admitted.admitted) << admitted.reason;
      ASSERT_TRUE(system.RemoveTenant(9));
      churns.fetch_add(1, std::memory_order_relaxed);
    }
  });

  common::WorkerPool pool(4);
  switchsim::BatchOptions options;
  options.num_threads = 4;
  options.min_parallel_batch = 1;
  options.pool = &pool;
  // Serve at least 20 rounds, and keep serving until the control
  // thread has churned a few times so the races genuinely overlap.
  for (int round = 0;
       round < 20 || churns.load(std::memory_order_relaxed) < 3; ++round) {
    ASSERT_LT(round, 5000) << "churn thread never made progress";
    const auto results = system.ProcessBatch(workload, options);
    ASSERT_EQ(results.size(), workload.size());
    // Tenant 9's churn can never perturb tenants 1/3: their rules carry
    // the (tenant, pass) prefix and their plans stay valid throughout.
    for (std::size_t i = 0; i < results.size(); ++i) {
      ASSERT_EQ(Of(results[i]), reference[i]) << "round " << round << " packet " << i;
    }
  }
  stop.store(true, std::memory_order_release);
  control.join();
  EXPECT_GT(churns.load(), 0);
  EXPECT_FALSE(system.data_plane().IsAllocated(9));
  const auto* cache = system.data_plane().pipeline().plan_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_GT(cache->Invalidations(), 0u);
}

}  // namespace
}  // namespace sfp::core
