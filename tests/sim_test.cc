// Tests for the discrete-event engine and latency statistics.
#include "sim/event_sim.h"

#include <gtest/gtest.h>

namespace sfp::sim {
namespace {

TEST(SimulatorTest, ExecutesInTimestampOrder) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(30, [&] { order.push_back(3); });
  simulator.ScheduleAt(10, [&] { order.push_back(1); });
  simulator.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(simulator.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(simulator.Now(), 30.0);
}

TEST(SimulatorTest, TiesBreakFifo) {
  Simulator simulator;
  std::vector<int> order;
  simulator.ScheduleAt(5, [&] { order.push_back(1); });
  simulator.ScheduleAt(5, [&] { order.push_back(2); });
  simulator.ScheduleAt(5, [&] { order.push_back(3); });
  simulator.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator simulator;
  int fired = 0;
  std::function<void()> chain = [&] {
    if (++fired < 5) simulator.ScheduleAfter(10, chain);
  };
  simulator.ScheduleAt(0, chain);
  simulator.Run();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(simulator.Now(), 40.0);
}

TEST(SimulatorTest, RunUntilStopsEarly) {
  Simulator simulator;
  int fired = 0;
  simulator.ScheduleAt(10, [&] { ++fired; });
  simulator.ScheduleAt(100, [&] { ++fired; });
  EXPECT_EQ(simulator.Run(50), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(simulator.Now(), 50.0);
  // The remaining event still fires on the next Run.
  EXPECT_EQ(simulator.Run(), 1u);
  EXPECT_EQ(fired, 2);
}

TEST(LatencyStatsTest, ComputesMomentsAndPercentiles) {
  LatencyStats stats;
  for (int i = 1; i <= 100; ++i) stats.Add(i);
  EXPECT_EQ(stats.Count(), 100u);
  EXPECT_NEAR(stats.Mean(), 50.5, 1e-9);
  EXPECT_EQ(stats.Min(), 1.0);
  EXPECT_EQ(stats.Max(), 100.0);
  EXPECT_NEAR(stats.Percentile(50), 50.5, 1e-9);
  EXPECT_NEAR(stats.Percentile(99), 99.01, 0.1);
  EXPECT_EQ(stats.Percentile(0), 1.0);
  EXPECT_EQ(stats.Percentile(100), 100.0);
}

TEST(LatencyStatsTest, EmptyStatsAreZero) {
  LatencyStats stats;
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Percentile(50), 0.0);
}

}  // namespace
}  // namespace sfp::sim
