// Graceful-degradation tests: admission retry/backoff + structured
// reject taxonomy, the provisioning degradation chain (approx → greedy
// → static), solver deadline exhaustion, the recirculation-port
// overload model end-to-end, and telemetry retention on departure.
#include <gtest/gtest.h>

#include <chrono>
#include <string>

#include "common/faultinject.h"
#include "core/sfp_system.h"
#include "nf/firewall.h"
#include "nf/router.h"

namespace sfp::core {
namespace {

using common::faultinject::FaultSpec;
using common::faultinject::ScopedFaultPlan;
using dataplane::Sfc;
using net::Ipv4Address;
using net::MakeTcpPacket;
using nf::NfConfig;
using nf::NfType;
using switchsim::FieldMatch;

NfConfig Fw(std::uint16_t blocked_port) {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                            FieldMatch::Any(),
                                            FieldMatch::Range(blocked_port, blocked_port),
                                            FieldMatch::Any()));
  return config;
}

NfConfig Rt() {
  NfConfig config;
  config.type = NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

Sfc OneFw(dataplane::TenantId tenant, std::uint16_t port, double gbps = 5.0) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = gbps;
  sfc.chain = {Fw(port)};
  return sfc;
}

AdmitOptions NoBackoff(int max_attempts = 3) {
  AdmitOptions options;
  options.max_attempts = max_attempts;
  options.initial_backoff = std::chrono::microseconds{0};
  return options;
}

TEST(AdmitRetryTest, TransientInstallFaultIsRetriedToSuccess) {
  SfpSystem system;
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall}}), 0);

  AdmitResult result;
  {
    // Exactly one install fails; the second allocation attempt succeeds.
    ScopedFaultPlan plan(
        {.seed = 1,
         .faults = {FaultSpec::Always("dataplane.install_rule", /*max_fires=*/1)}});
    result = system.AdmitTenant(OneFw(1, 443), NoBackoff());
  }
  EXPECT_TRUE(result.admitted) << result.reason;
  EXPECT_EQ(result.code, AdmitCode::kOk);
  EXPECT_EQ(result.attempts, 2);

  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("system.admit.admitted").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.admit.install_retries").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.admit.rejected.install_fault").Value(), 0u);

  // The retried admission serves traffic normally.
  auto out = system.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                          Ipv4Address::Of(2, 2, 2, 2), 9, 443, 64));
  EXPECT_TRUE(out.meta.dropped);
}

TEST(AdmitRetryTest, PersistentInstallFaultExhaustsRetries) {
  SfpSystem system;
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall}}), 0);

  AdmitResult result;
  {
    ScopedFaultPlan plan(
        {.seed = 1, .faults = {FaultSpec::Always("dataplane.install_rule")}});
    result = system.AdmitTenant(OneFw(1, 443), NoBackoff(/*max_attempts=*/4));
  }
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.code, AdmitCode::kInstallFault);
  EXPECT_EQ(result.attempts, 4);
  EXPECT_NE(result.reason.find("transient rule-install failure"), std::string::npos);
  EXPECT_STREQ(AdmitCodeName(result.code), "install-fault");

  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("system.admit.rejected.install_fault").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.admit.install_retries").Value(), 3u);
  // Nothing leaked onto the switch.
  EXPECT_EQ(system.Stats().tenants, 0);
  EXPECT_EQ(system.Stats().entries_used, 0);
}

TEST(AdmitRetryTest, DeterministicRejectionsAreNotRetried) {
  SfpSystem system;
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall}}), 0);

  // No router NF provisioned: placement is impossible, so the admit
  // must fail in one attempt even with retries configured.
  Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 5.0;
  sfc.chain = {Rt()};
  const auto result = system.AdmitTenant(sfc, NoBackoff(/*max_attempts=*/5));
  EXPECT_FALSE(result.admitted);
  EXPECT_EQ(result.code, AdmitCode::kAllocationFailed);
  EXPECT_EQ(result.attempts, 1);
}

TEST(AdmitRejectTaxonomyTest, CodesCoverEveryRejectPath) {
  auto config = switchsim::SwitchConfig{};
  config.backplane_gbps = 10.0;
  SfpSystem system(config);
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall}}), 0);

  ASSERT_EQ(system.AdmitTenant(OneFw(1, 80, 10.0)).code, AdmitCode::kOk);
  EXPECT_EQ(system.AdmitTenant(OneFw(1, 80, 1.0)).code, AdmitCode::kAlreadyAdmitted);
  // 10 Gbps backplane is fully charged by tenant 1.
  EXPECT_EQ(system.AdmitTenant(OneFw(2, 80, 5.0)).code, AdmitCode::kBackplaneExceeded);

  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("system.admit.admitted").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.admit.rejected.already_admitted").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.admit.rejected.backplane_exceeded").Value(), 1u);
  EXPECT_STREQ(AdmitCodeName(AdmitCode::kBackplaneExceeded), "backplane-exceeded");
}

TEST(ProvisionDegradationTest, ApproxPathWinsWhenHealthy) {
  SfpSystem system;
  const auto report = system.ProvisionPhysicalWithReport({OneFw(1, 80)});
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.path, ProvisionPath::kApprox);
  EXPECT_GT(report.installed, 0);
  EXPECT_FALSE(report.solver_deadline_exceeded);
}

TEST(ProvisionDegradationTest, InjectedSolverDeadlineFallsBackToGreedy) {
  SfpSystem system;
  ProvisionReport report;
  {
    ScopedFaultPlan plan(
        {.seed = 1, .faults = {FaultSpec::Always("controlplane.solver_deadline")}});
    report = system.ProvisionPhysicalWithReport({OneFw(1, 80)});
  }
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.path, ProvisionPath::kGreedy);
  EXPECT_TRUE(report.solver_deadline_exceeded);
  EXPECT_GT(report.installed, 0);

  // The degraded provisioning still serves tenants end to end.
  const auto admit = system.AdmitTenant(OneFw(7, 443));
  ASSERT_TRUE(admit.admitted) << admit.reason;
  auto out = system.Process(MakeTcpPacket(7, Ipv4Address::Of(1, 1, 1, 1),
                                          Ipv4Address::Of(2, 2, 2, 2), 9, 443, 64));
  EXPECT_TRUE(out.meta.dropped);
}

TEST(ProvisionDegradationTest, WallClockDeadlineStopsTheSweep) {
  controlplane::PlacementInstance instance;
  instance.sw.stages = 4;
  instance.sw.blocks_per_stage = 4;
  instance.sw.entries_per_block = 100;
  instance.sw.capacity_gbps = 100.0;
  instance.num_types = nf::kNumNfTypes;
  instance.sfcs.push_back(SfpSystem::ToSpec(OneFw(1, 80)));

  controlplane::ApproxOptions options;
  options.deadline_seconds = 1e-12;  // expires before the first LP
  const auto report = controlplane::SolveApprox(instance, options);
  EXPECT_TRUE(report.deadline_exceeded);
  EXPECT_FALSE(report.ok);
  EXPECT_EQ(report.lp_solves, 0);
}

TEST(ProvisionDegradationTest, StaticLayoutIsTheLastResort) {
  // Two stages, every NF type pre-installed at stage 0. The injected
  // deadline kills the approx tier; greedy proposes each type at stage
  // 0 (duplicates: installs nothing); the static round-robin tier
  // finally lands the odd types at stage 1.
  auto config = switchsim::SwitchConfig{};
  config.num_stages = 2;
  SfpSystem system(config);
  std::vector<nf::NfType> all_types;
  for (int i = 0; i < nf::kNumNfTypes; ++i) all_types.push_back(static_cast<nf::NfType>(i));
  ASSERT_EQ(system.ProvisionPhysical({all_types, {}}), nf::kNumNfTypes);

  ProvisionReport report;
  {
    ScopedFaultPlan plan(
        {.seed = 1, .faults = {FaultSpec::Always("controlplane.solver_deadline")}});
    report = system.ProvisionPhysicalWithReport({});
  }
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.path, ProvisionPath::kStatic);
  EXPECT_GT(report.installed, 0);
  EXPECT_STREQ(ProvisionPathName(report.path), "static");
}

TEST(RecirculationOverloadTest, OverBudgetTenantDropsWhileOthersServe) {
  // Finite recirculation port: folding tenant 1 offers far more than
  // the port rate at t=0, single-pass tenant 2 must be unaffected.
  auto config = switchsim::SwitchConfig{};
  config.recirculation_gbps = 0.01;     // ~100 us per 128B packet
  config.recirculation_queue_ns = 2000;  // tolerates no second packet
  SfpSystem system(config);
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall},
                                      {NfType::kRouter}}),
            0);

  // Tenant 1 folds: router then firewall, placed Rt@stage1 pass0 /
  // Fw@stage0 pass1 -> 2 passes.
  Sfc folding;
  folding.tenant = 1;
  folding.bandwidth_gbps = 5.0;
  folding.chain = {Rt(), Fw(9999)};
  auto admit = system.AdmitTenant(folding);
  ASSERT_TRUE(admit.admitted) << admit.reason;
  ASSERT_EQ(admit.passes, 2);
  ASSERT_EQ(system.AdmitTenant(OneFw(2, 9999)).code, AdmitCode::kOk);

  constexpr int kPackets = 10;
  int t1_served = 0, t1_overload_drops = 0;
  for (int i = 0; i < kPackets; ++i) {
    // All packets share ingress time 0: only the first fits the port.
    auto out = system.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                            Ipv4Address::Of(2, 2, 2, 2), 9, 80, 128));
    if (out.meta.dropped) {
      EXPECT_EQ(out.meta.drop_reason, switchsim::DropReason::kRecirculationOverload);
      ++t1_overload_drops;
    } else {
      EXPECT_EQ(out.passes, 2);
      ++t1_served;
    }
  }
  EXPECT_EQ(t1_served, 1);
  EXPECT_EQ(t1_overload_drops, kPackets - 1);

  for (int i = 0; i < kPackets; ++i) {
    auto out = system.Process(MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                                            Ipv4Address::Of(2, 2, 2, 2), 9, 80, 128));
    EXPECT_FALSE(out.meta.dropped);
    EXPECT_EQ(out.passes, 1);
  }

  // The per-reason breakdown is observable in the exported metrics.
  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("pipeline.drops.recirculation_overload").Value(),
            static_cast<std::uint64_t>(t1_overload_drops));
  EXPECT_EQ(registry.GetCounter("pipeline.drops.nf_action").Value(), 0u);
  EXPECT_EQ(system.Telemetry().Tenant(2).drops, 0u);
  EXPECT_EQ(system.Telemetry().Tenant(1).drops,
            static_cast<std::uint64_t>(t1_overload_drops));
}

TEST(RecirculationOverloadTest, SpacedArrivalsAllFitThePort) {
  auto config = switchsim::SwitchConfig{};
  config.recirculation_gbps = 0.01;
  config.recirculation_queue_ns = 2000;
  SfpSystem system(config);
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall}, {NfType::kRouter}}), 0);
  Sfc folding;
  folding.tenant = 1;
  folding.bandwidth_gbps = 5.0;
  folding.chain = {Rt(), Fw(9999)};
  ASSERT_TRUE(system.AdmitTenant(folding).admitted);

  // One ~128B packet occupies the 0.01 Gbps port for ~118 us; spacing
  // arrivals 200 us apart leaves the port idle each time.
  for (int i = 0; i < 10; ++i) {
    auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                Ipv4Address::Of(2, 2, 2, 2), 9, 80, 128);
    packet.ingress_time_ns = i * 200000.0;
    auto out = system.Process(packet);
    EXPECT_FALSE(out.meta.dropped);
    EXPECT_EQ(out.passes, 2);
  }
  EXPECT_EQ(system.data_plane().pipeline().packets_dropped_by(
                switchsim::DropReason::kRecirculationOverload),
            0u);
}

TEST(TelemetryRetentionTest, DepartedSeriesFollowSystemPolicy) {
  SfpSystem system;
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall}}), 0);
  ASSERT_TRUE(system.AdmitTenant(OneFw(1, 443)).admitted);
  (void)system.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                     Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  ASSERT_EQ(system.Telemetry().Tenant(1).packets, 1u);

  // Default policy: the series survives departure, marked departed.
  ASSERT_TRUE(system.RemoveTenant(1));
  EXPECT_EQ(system.Telemetry().Tenant(1).packets, 1u);
  EXPECT_TRUE(system.Telemetry().IsDeparted(1));

  // Purge-on-departure: the series disappears with the tenant.
  system.Telemetry().SetRetention(dataplane::TelemetryRetention::kPurgeOnDeparture);
  ASSERT_TRUE(system.AdmitTenant(OneFw(2, 443)).admitted);
  (void)system.Process(MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                                     Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  ASSERT_TRUE(system.RemoveTenant(2));
  EXPECT_EQ(system.Telemetry().Tenant(2).packets, 0u);
  EXPECT_FALSE(system.Telemetry().IsDeparted(2));
}

}  // namespace
}  // namespace sfp::core
