// Tests for the scenario orchestration harness: a shortened failure
// storm must complete with zero conservation violations and real
// recovery episodes; same-seed runs must replay byte-for-byte; a
// recovery's blast radius must not touch unaffected tenants' packet
// accounting; and the compiled serve path must produce identical
// accounting under a storm.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "nf/firewall.h"
#include "nf/router.h"
#include "scenario/runner.h"

namespace sfp::scenario {
namespace {

using dataplane::Sfc;
using dataplane::TenantCounters;

/// The builtin failure storm shortened to its first burst (60–180 s)
/// plus recovery tail — small enough for tier-1, violent enough to
/// exercise detection, repair, and backoff.
ScenarioSpec ShortStorm() {
  ScenarioSpec spec = FailureStormScenario();
  spec.duration_s = 240.0;
  return spec;
}

TEST(ScenarioTest, BuiltinCatalogueIsCompleteAndUnique) {
  const auto specs = BuiltinScenarios();
  ASSERT_EQ(specs.size(), 5u);
  std::set<std::string> names;
  for (const auto& spec : specs) {
    EXPECT_FALSE(spec.description.empty()) << spec.name;
    names.insert(spec.name);
  }
  EXPECT_EQ(names.size(), specs.size());

  ScenarioSpec spec;
  EXPECT_TRUE(FindScenario("failure_storm", spec));
  EXPECT_EQ(spec.name, "failure_storm");
  EXPECT_FALSE(FindScenario("no-such-scenario", spec));
}

TEST(ScenarioTest, FailureStormConservesAndRecovers) {
  ScenarioRunner runner(ShortStorm());
  const auto result = runner.Run();

  // Zero conservation violations through the storm (the acceptance
  // invariant): every packet accounted, no leaked rule entries, the
  // backplane never overcommitted.
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.conservation_violations, 0u);
  EXPECT_GT(result.conservation_checks, 3u);
  EXPECT_EQ(result.total.packets, result.packets_sent);
  EXPECT_EQ(result.total.bytes, result.bytes_sent);
  EXPECT_GT(result.packets_sent, 10000u);

  // The storm actually stormed and the loop actually recovered.
  EXPECT_GT(result.fault_fires, 0u);
  EXPECT_GT(result.recovery.detections, 0u);
  EXPECT_GT(result.recovery.successes, 0u);
  EXPECT_FALSE(result.episodes.empty());
  // After the drain, nothing is left mid-repair.
  EXPECT_EQ(result.open_episodes, 0u);
  // Recovery-time percentiles are well-formed.
  EXPECT_LE(result.recovery_p50_ms, result.recovery_p99_ms);
  EXPECT_LE(result.recovery_p99_ms, result.recovery_max_ms);
}

TEST(ScenarioTest, SameSeedReplaysByteForByte) {
  ScenarioRunner a(ShortStorm());
  ScenarioRunner b(ShortStorm());
  const auto ra = a.Run();
  const auto rb = b.Run();

  EXPECT_EQ(ra.packets_sent, rb.packets_sent);
  EXPECT_EQ(ra.bytes_sent, rb.bytes_sent);
  EXPECT_EQ(ra.fault_fires, rb.fault_fires);
  EXPECT_EQ(ra.total.packets, rb.total.packets);
  EXPECT_EQ(ra.total.drops, rb.total.drops);
  EXPECT_EQ(ra.total.recirculated_packets, rb.total.recirculated_packets);
  EXPECT_EQ(ra.total.total_passes, rb.total.total_passes);
  // Latency sums are exact fixed-point — byte-identical, not merely
  // close.
  EXPECT_EQ(ra.total.total_latency_ns, rb.total.total_latency_ns);

  EXPECT_EQ(ra.recovery.detections, rb.recovery.detections);
  EXPECT_EQ(ra.recovery.attempts, rb.recovery.attempts);
  EXPECT_EQ(ra.recovery.successes, rb.recovery.successes);
  EXPECT_EQ(ra.recovery.quarantined, rb.recovery.quarantined);
  ASSERT_EQ(ra.episodes.size(), rb.episodes.size());
  for (std::size_t i = 0; i < ra.episodes.size(); ++i) {
    EXPECT_EQ(ra.episodes[i].tenant, rb.episodes[i].tenant);
    EXPECT_DOUBLE_EQ(ra.episodes[i].detected_s, rb.episodes[i].detected_s);
    EXPECT_DOUBLE_EQ(ra.episodes[i].ended_s, rb.episodes[i].ended_s);
    EXPECT_EQ(ra.episodes[i].attempts, rb.episodes[i].attempts);
    EXPECT_EQ(ra.episodes[i].recovered, rb.episodes[i].recovered);
    EXPECT_EQ(ra.episodes[i].cause, rb.episodes[i].cause);
  }
}

nf::NfConfig Fw(std::uint16_t blocked_port) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Range(blocked_port, blocked_port),
      switchsim::FieldMatch::Any()));
  return config;
}

nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

/// Controlled two-run experiment for the bounded-blast-radius
/// guarantee: three tenants serve identical traffic; in the damage run
/// tenant 2 loses its rules mid-way and the recovery loop repairs it.
/// Returns the final per-tenant counters.
std::vector<TenantCounters> RunControlled(bool damage_tenant2) {
  switchsim::SwitchConfig config;
  config.num_stages = 2;
  config.blocks_per_stage = 8;
  config.entries_per_block = 200;
  config.backplane_gbps = 400.0;
  core::SfpSystem system(config);
  EXPECT_GT(
      system.ProvisionPhysical({{nf::NfType::kFirewall}, {nf::NfType::kRouter}}), 0);

  RecoveryController recovery(system);
  for (dataplane::TenantId tenant = 1; tenant <= 3; ++tenant) {
    Sfc sfc;
    sfc.tenant = tenant;
    sfc.bandwidth_gbps = 4.0;
    sfc.chain = {Rt(), Fw(7)};  // folds: 2 passes
    const auto admit = system.AdmitTenant(sfc);
    EXPECT_TRUE(admit.admitted);
    recovery.TrackTenant(sfc, admit.passes);
  }

  Rng rng(0xB1A57u);
  std::vector<net::Packet> batch;
  std::vector<switchsim::ProcessResult> results;
  for (int tick = 0; tick < 30; ++tick) {
    if (damage_tenant2 && tick == 10) system.data_plane().DeallocateSfc(2);
    batch.clear();
    for (dataplane::TenantId tenant = 1; tenant <= 3; ++tenant) {
      for (int p = 0; p < 24; ++p) {
        auto packet = net::MakeTcpPacket(
            tenant, net::Ipv4Address::Of(10, 0, 0, 1), net::Ipv4Address::Of(2, 2, 2, 2),
            static_cast<std::uint16_t>(1024 + rng.UniformInt(0, 255)),
            static_cast<std::uint16_t>(2000 + rng.UniformInt(0, 999)), 128);
        packet.ingress_time_ns = tick * 1e9 + p * 1e6;
        batch.push_back(std::move(packet));
      }
    }
    switchsim::BatchOptions options;
    options.num_threads = 1;
    results.resize(batch.size());
    system.ProcessBatchInto(batch, results, options);
    recovery.Poll(static_cast<double>(tick));
  }

  if (damage_tenant2) {
    // The damaged tenant was detected and repaired...
    EXPECT_FALSE(recovery.episodes().empty());
    EXPECT_TRUE(system.data_plane().IsAllocated(2));
    bool repaired = false;
    for (const auto& episode : recovery.episodes()) {
      if (episode.tenant == 2 && episode.recovered) repaired = true;
    }
    EXPECT_TRUE(repaired);
  } else {
    EXPECT_TRUE(recovery.episodes().empty());
  }

  std::vector<TenantCounters> counters;
  for (dataplane::TenantId tenant = 1; tenant <= 3; ++tenant) {
    counters.push_back(system.Telemetry().Tenant(tenant));
  }
  return counters;
}

TEST(ScenarioTest, RecoveryBlastRadiusLeavesUnaffectedTenantsByteIdentical) {
  const auto baseline = RunControlled(false);
  const auto damaged = RunControlled(true);
  ASSERT_EQ(baseline.size(), 3u);
  ASSERT_EQ(damaged.size(), 3u);

  // Tenants 1 and 3 (indices 0 and 2) never lost rules; the detection
  // reads and tenant 2's repair batch must not perturb one integer of
  // their packet accounting. (Latency is excluded by design: the
  // timing model may couple tenants through shared-port contention.)
  for (const std::size_t i : {std::size_t{0}, std::size_t{2}}) {
    SCOPED_TRACE("tenant index " + std::to_string(i));
    EXPECT_EQ(baseline[i].packets, damaged[i].packets);
    EXPECT_EQ(baseline[i].bytes, damaged[i].bytes);
    EXPECT_EQ(baseline[i].drops, damaged[i].drops);
    EXPECT_EQ(baseline[i].recirculated_packets, damaged[i].recirculated_packets);
    EXPECT_EQ(baseline[i].total_passes, damaged[i].total_passes);
  }

  // Tenant 2's damage is visible in its own accounting: the packets it
  // served rule-less made a single pass.
  EXPECT_LT(damaged[1].total_passes, baseline[1].total_passes);
  EXPECT_EQ(damaged[1].packets, baseline[1].packets);
}

TEST(ScenarioTest, CompiledPathScenarioMatchesInterpretedAccounting) {
  ScenarioSpec interpreted = ShortStorm();
  interpreted.duration_s = 120.0;
  ScenarioSpec compiled = interpreted;
  compiled.use_compiled_plans = true;

  ScenarioRunner a(interpreted);
  ScenarioRunner b(compiled);
  ASSERT_FALSE(a.system().compiled_plans_enabled());
  ASSERT_TRUE(b.system().compiled_plans_enabled());
  const auto ra = a.Run();
  const auto rb = b.Run();

  EXPECT_TRUE(ra.ok);
  EXPECT_TRUE(rb.ok);
  EXPECT_EQ(ra.packets_sent, rb.packets_sent);
  EXPECT_EQ(ra.total.packets, rb.total.packets);
  EXPECT_EQ(ra.total.bytes, rb.total.bytes);
  EXPECT_EQ(ra.total.drops, rb.total.drops);
  EXPECT_EQ(ra.total.recirculated_packets, rb.total.recirculated_packets);
  EXPECT_EQ(ra.total.total_passes, rb.total.total_passes);
  EXPECT_EQ(ra.total.total_latency_ns, rb.total.total_latency_ns);
  EXPECT_EQ(ra.fault_fires, rb.fault_fires);
  EXPECT_EQ(ra.recovery.detections, rb.recovery.detections);
  EXPECT_EQ(ra.recovery.successes, rb.recovery.successes);
}

TEST(ScenarioTest, ConcurrentServeHoldsInvariants) {
  // Multi-threaded serve: per-packet fault attribution may vary with
  // worker interleaving, but conservation is exact regardless.
  ScenarioSpec spec = ShortStorm();
  spec.duration_s = 150.0;
  spec.serve_threads = 4;
  ScenarioRunner runner(spec);
  const auto result = runner.Run();
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.conservation_violations, 0u);
  EXPECT_EQ(result.total.packets, result.packets_sent);
}

TEST(ScenarioTest, TenantChurnScenarioConserves) {
  ScenarioSpec spec = TenantChurnScenario();
  spec.duration_s = 300.0;
  ScenarioRunner runner(spec);
  const auto result = runner.Run();
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_GT(result.tenants_admitted, 4u);  // churn actually arrived
  EXPECT_GT(result.tenants_departed, 0u);
  EXPECT_EQ(result.total.packets, result.packets_sent);
}

TEST(ScenarioTest, FlashCrowdOverloadDrainsAndConserves) {
  ScenarioSpec spec = FlashCrowdScenario();
  spec.duration_s = 400.0;  // covers the first surge and its drain
  ScenarioRunner runner(spec);
  const auto result = runner.Run();
  EXPECT_TRUE(result.ok) << (result.errors.empty() ? "" : result.errors[0]);
  EXPECT_EQ(result.total.packets, result.packets_sent);
  // The surge overloads the finite recirculation port: drops exist but
  // every one is accounted.
  EXPECT_GT(result.total.drops, 0u);
  EXPECT_LE(result.total.drops, result.total.packets);
}

}  // namespace
}  // namespace sfp::scenario
