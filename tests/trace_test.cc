// Tests for the packet-trace container and its binary format.
#include "net/trace.h"

#include <sstream>

#include <gtest/gtest.h>

namespace sfp::net {
namespace {

Trace MakeTrace(int packets) {
  Trace trace;
  for (int i = 0; i < packets; ++i) {
    trace.Append(i * 1000.0,
                 MakeTcpPacket(1, Ipv4Address::Of(10, 0, 0, 1), Ipv4Address::Of(10, 0, 0, 2),
                               static_cast<std::uint16_t>(1000 + i), 80,
                               static_cast<std::uint32_t>(64 + i)));
  }
  return trace;
}

TEST(TraceTest, WriteReadRoundTrip) {
  const Trace trace = MakeTrace(10);
  std::stringstream buffer;
  ASSERT_TRUE(trace.WriteTo(buffer));

  const auto loaded = Trace::ReadFrom(buffer);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_EQ(loaded->records()[i].timestamp_ns, trace.records()[i].timestamp_ns);
    EXPECT_EQ(loaded->records()[i].frame, trace.records()[i].frame);
  }
  // Frames are parseable packets.
  const auto packet = Packet::Parse(loaded->records()[3].frame);
  ASSERT_TRUE(packet.has_value());
  EXPECT_EQ(packet->Tuple().src_port, 1003);
}

TEST(TraceTest, RejectsCorruptMagicAndTruncation) {
  const Trace trace = MakeTrace(3);
  std::stringstream buffer;
  ASSERT_TRUE(trace.WriteTo(buffer));
  std::string bytes = buffer.str();

  std::string bad_magic = bytes;
  bad_magic[0] = 'X';
  std::stringstream bad1(bad_magic);
  EXPECT_FALSE(Trace::ReadFrom(bad1).has_value());

  std::stringstream truncated(bytes.substr(0, bytes.size() - 10));
  EXPECT_FALSE(Trace::ReadFrom(truncated).has_value());
}

TEST(TraceTest, OfferedLoadComputation) {
  Trace trace;
  // Two 125-byte frames 1000 ns apart: 125*2*8 bits over 1000 ns = 2 Gbps.
  trace.Append(0.0, std::vector<std::uint8_t>(125, 0));
  trace.Append(1000.0, std::vector<std::uint8_t>(125, 0));
  EXPECT_EQ(trace.TotalBytes(), 250u);
  EXPECT_EQ(trace.DurationNs(), 1000.0);
  EXPECT_NEAR(trace.OfferedGbps(), 2.0, 1e-9);
}

TEST(TraceTest, EmptyAndSingleRecordEdgeCases) {
  Trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_EQ(trace.DurationNs(), 0.0);
  EXPECT_EQ(trace.OfferedGbps(), 0.0);
  trace.Append(5.0, std::vector<std::uint8_t>(64, 0));
  EXPECT_EQ(trace.DurationNs(), 0.0);

  std::stringstream buffer;
  ASSERT_TRUE(trace.WriteTo(buffer));
  auto loaded = Trace::ReadFrom(buffer);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 1u);
}

TEST(TraceTest, SaveLoadFile) {
  const Trace trace = MakeTrace(5);
  const std::string path = "/tmp/sfp_trace_test.sfpt";
  ASSERT_TRUE(trace.Save(path));
  const auto loaded = Trace::Load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->size(), 5u);
  EXPECT_FALSE(Trace::Load("/nonexistent/dir/x.sfpt").has_value());
}

}  // namespace
}  // namespace sfp::net
