// Chaos harness (the tentpole's acceptance test): concurrent
// AdmitTenant / RemoveTenant / ProcessBatch under randomized fault
// plans, with conservation invariants asserted after every round, plus
// a sequential byte-for-byte deterministic-replay check.
//
// Round count defaults to 500 and is overridable via SFP_CHAOS_ROUNDS
// (the TSan CI job runs fewer iterations).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/faultinject.h"
#include "common/rng.h"
#include "core/sfp_system.h"
#include "nf/firewall.h"
#include "nf/router.h"

namespace sfp::core {
namespace {

using common::faultinject::FaultPlan;
using common::faultinject::FaultSpec;
using common::faultinject::PointStats;
using common::faultinject::Registry;
using common::faultinject::ScopedFaultPlan;
using dataplane::Sfc;
using net::Ipv4Address;
using net::MakeTcpPacket;
using nf::NfConfig;
using nf::NfType;
using switchsim::FieldMatch;

int ChaosRounds() {
  const char* env = std::getenv("SFP_CHAOS_ROUNDS");
  if (env != nullptr) {
    const int rounds = std::atoi(env);
    if (rounds > 0) return rounds;
  }
  return 500;
}

NfConfig Fw(std::uint16_t blocked_port, int extra_rules = 0) {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                            FieldMatch::Any(),
                                            FieldMatch::Range(blocked_port, blocked_port),
                                            FieldMatch::Any()));
  for (int i = 0; i < extra_rules; ++i) {
    config.rules.push_back(nf::Firewall::Deny(
        FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(),
        FieldMatch::Range(20000 + static_cast<std::uint64_t>(i),
                          20000 + static_cast<std::uint64_t>(i)),
        FieldMatch::Any()));
  }
  return config;
}

NfConfig Rt() {
  NfConfig config;
  config.type = NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

/// Rule entries an admitted SFC occupies: rules + 1 catch-all per
/// logical NF (the conservation invariant's per-tenant charge).
std::int64_t ExpectedEntries(const Sfc& sfc) {
  std::int64_t entries = 0;
  for (const auto& nf : sfc.chain) {
    entries += static_cast<std::int64_t>(nf.rules.size()) + 1;
  }
  return entries;
}

/// A randomly shaped tenant SFC (deterministic in `rng`).
Sfc RandomSfc(dataplane::TenantId tenant, Rng& rng) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = rng.UniformDouble(1.0, 10.0);
  const auto port = static_cast<std::uint16_t>(rng.UniformInt(1, 1000));
  switch (rng.UniformInt(0, 3)) {
    case 0:
      sfc.chain = {Fw(port)};
      break;
    case 1:
      sfc.chain = {Fw(port, static_cast<int>(rng.UniformInt(1, 8)))};
      break;
    case 2:
      sfc.chain = {Fw(port), Rt()};
      break;
    default:
      sfc.chain = {Rt(), Fw(port)};  // out of order: folds
      break;
  }
  return sfc;
}

/// A random fault plan over every production fault point (deterministic
/// in `rng`); roughly one round in four runs fault-free.
FaultPlan RandomPlan(std::uint64_t seed, Rng& rng) {
  FaultPlan plan;
  plan.seed = seed;
  if (rng.Bernoulli(0.25)) return plan;  // healthy round
  const char* kPoints[] = {
      "switchsim.table.add_entry", "switchsim.pipeline.serve",
      "dataplane.install_rule",    "dataplane.apply_op",
      "controlplane.solver_deadline",
  };
  for (const char* point : kPoints) {
    if (!rng.Bernoulli(0.5)) continue;
    if (rng.Bernoulli(0.3)) {
      plan.faults.push_back(FaultSpec::EveryNth(point, rng.UniformInt(2, 10)));
    } else {
      plan.faults.push_back(FaultSpec::Probability(point, rng.UniformDouble(0.01, 0.3)));
    }
  }
  return plan;
}

switchsim::SwitchConfig ChaosSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 4;
  config.blocks_per_stage = 4;
  config.entries_per_block = 100;
  config.backplane_gbps = 200.0;
  return config;
}

AdmitOptions FastRetry() {
  AdmitOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::microseconds{0};
  return options;
}

/// Asserts every conservation invariant of the quiesced system against
/// the test's own model of who is admitted.
void CheckInvariants(SfpSystem& system,
                     const std::map<dataplane::TenantId, Sfc>& admitted,
                     std::uint64_t packets_sent) {
  const auto stats = system.Stats();
  ASSERT_EQ(stats.tenants, static_cast<int>(admitted.size()));

  // Rule-entry conservation: the switch holds exactly the admitted
  // tenants' entries — nothing leaked by failed admissions, removals,
  // or unwound partial installs.
  std::int64_t expected_entries = 0;
  double expected_backplane = 0.0;
  for (const auto& [tenant, sfc] : admitted) {
    ASSERT_TRUE(system.data_plane().IsAllocated(tenant)) << "tenant " << tenant;
    expected_entries += ExpectedEntries(sfc);
  }
  ASSERT_EQ(stats.entries_used, expected_entries);

  // Backplane conservation (eq. 26): the admitted charge never exceeds
  // capacity, whatever faults did.
  ASSERT_LE(stats.backplane_gbps,
            system.data_plane().pipeline().config().backplane_gbps + 1e-9);
  (void)expected_backplane;

  // Telemetry conservation: every served packet was recorded exactly
  // once (departed series are retained under the default policy).
  ASSERT_EQ(system.Telemetry().Total().packets, packets_sent);
}

/// The concurrent churn harness, shared between the interpreted and
/// compiled serve paths: randomized fault plans over admit / remove /
/// batch-serve, invariants checked after every quiesced round.
void RunConcurrentChurn(bool compiled) {
  const int rounds = ChaosRounds();
  SfpSystem system(ChaosSwitch());
  ASSERT_GT(system.ProvisionPhysical({{NfType::kFirewall},
                                      {NfType::kRouter},
                                      {NfType::kFirewall},
                                      {NfType::kRouter}}),
            0);
  if (compiled) {
    system.EnableCompiledPlans();
    ASSERT_TRUE(system.compiled_plans_enabled());
  }

  Rng rng(0xC4A05u);
  std::map<dataplane::TenantId, Sfc> admitted;
  std::uint64_t packets_sent = 0;
  constexpr int kTenantSlots = 8;
  constexpr int kBatch = 96;

  for (int round = 0; round < rounds; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const FaultPlan plan = RandomPlan(static_cast<std::uint64_t>(round) + 1, rng);

    // Pre-build this round's packets (tenants may or may not be
    // admitted; both must serve without violating invariants).
    std::vector<net::Packet> packets;
    packets.reserve(kBatch);
    for (int i = 0; i < kBatch; ++i) {
      const auto tenant =
          static_cast<std::uint16_t>(rng.UniformInt(1, kTenantSlots));
      packets.push_back(MakeTcpPacket(tenant, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9,
                                      static_cast<std::uint16_t>(rng.UniformInt(1, 1200)),
                                      64));
    }

    {
      ScopedFaultPlan armed(plan);
      // Serve traffic concurrently with control-plane churn.
      std::thread server([&system, &packets] { system.ProcessBatch(packets); });
      for (int op = 0; op < kTenantSlots; ++op) {
        const auto tenant = static_cast<dataplane::TenantId>(rng.UniformInt(1, kTenantSlots));
        if (admitted.contains(tenant)) {
          if (rng.Bernoulli(0.5)) {
            ASSERT_TRUE(system.RemoveTenant(tenant));
            admitted.erase(tenant);
          }
        } else if (rng.Bernoulli(0.7)) {
          const Sfc sfc = RandomSfc(tenant, rng);
          const auto result = system.AdmitTenant(sfc, FastRetry());
          if (result.admitted) {
            admitted.emplace(tenant, sfc);
          } else {
            // A rejected tenant must leave no trace.
            ASSERT_NE(result.code, AdmitCode::kOk);
            ASSERT_FALSE(system.data_plane().IsAllocated(tenant));
          }
        }
      }
      server.join();
      packets_sent += packets.size();
    }

    // Quiesced + disarmed: every invariant must hold.
    CheckInvariants(system, admitted, packets_sent);
  }

  // Drain: after removing every tenant the switch must be empty.
  for (const auto& [tenant, sfc] : admitted) ASSERT_TRUE(system.RemoveTenant(tenant));
  admitted.clear();
  CheckInvariants(system, admitted, packets_sent);
  EXPECT_EQ(system.Stats().entries_used, 0);
}

TEST(ChaosTest, ConcurrentChurnUnderRandomFaultPlansHoldsInvariants) {
  RunConcurrentChurn(/*compiled=*/false);
}

TEST(ChaosTest, ConcurrentChurnWithCompiledPlansHoldsInvariants) {
  // Same rounds through the PR 6 compiled serve path: plan compilation
  // and cache invalidation under churn must preserve every invariant.
  RunConcurrentChurn(/*compiled=*/true);
}

/// One sequential chaos scenario; everything observable is folded into
/// the returned transcript for replay comparison.
struct Transcript {
  std::vector<int> admit_codes;
  std::vector<bool> packet_drops;
  std::vector<int> packet_passes;
  std::map<std::string, PointStats> fault_stats;

  bool operator==(const Transcript& other) const {
    if (admit_codes != other.admit_codes || packet_drops != other.packet_drops ||
        packet_passes != other.packet_passes ||
        fault_stats.size() != other.fault_stats.size()) {
      return false;
    }
    for (const auto& [point, stats] : fault_stats) {
      const auto it = other.fault_stats.find(point);
      if (it == other.fault_stats.end()) return false;
      if (stats.hits != it->second.hits || stats.fires != it->second.fires ||
          stats.fired_hits != it->second.fired_hits) {
        return false;
      }
    }
    return true;
  }
};

Transcript RunSequentialScenario(std::uint64_t seed) {
  Transcript transcript;
  SfpSystem system(ChaosSwitch());
  EXPECT_GT(system.ProvisionPhysical({{NfType::kFirewall},
                                      {NfType::kRouter},
                                      {NfType::kFirewall},
                                      {NfType::kRouter}}),
            0);

  Rng rng(seed);
  FaultPlan plan;
  plan.seed = seed;
  plan.faults = {FaultSpec::Probability("dataplane.install_rule", 0.1),
                 FaultSpec::Probability("switchsim.pipeline.serve", 0.05),
                 FaultSpec::Probability("switchsim.table.add_entry", 0.05),
                 FaultSpec::EveryNth("dataplane.apply_op", 7)};
  ScopedFaultPlan armed(plan);

  std::set<dataplane::TenantId> admitted;
  for (int round = 0; round < 40; ++round) {
    const auto tenant = static_cast<dataplane::TenantId>(rng.UniformInt(1, 6));
    if (admitted.contains(tenant) && rng.Bernoulli(0.4)) {
      system.RemoveTenant(tenant);
      admitted.erase(tenant);
    } else if (!admitted.contains(tenant)) {
      const auto result = system.AdmitTenant(RandomSfc(tenant, rng), FastRetry());
      transcript.admit_codes.push_back(static_cast<int>(result.code));
      if (result.admitted) admitted.insert(tenant);
    }
    for (int i = 0; i < 16; ++i) {
      auto out = system.Process(
          MakeTcpPacket(static_cast<std::uint16_t>(rng.UniformInt(1, 6)),
                        Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2), 9,
                        static_cast<std::uint16_t>(rng.UniformInt(1, 1200)), 64));
      transcript.packet_drops.push_back(out.meta.dropped);
      transcript.packet_passes.push_back(out.passes);
    }
  }
  transcript.fault_stats = Registry::Instance().AllStats();
  return transcript;
}

TEST(ChaosTest, SequentialScenarioReplaysByteForByte) {
  const auto a = RunSequentialScenario(12345);
  const auto b = RunSequentialScenario(12345);
  EXPECT_TRUE(a == b) << "same-seed chaos scenario diverged";
  // Sanity: faults actually fired in the scenario.
  std::uint64_t fires = 0;
  for (const auto& [point, stats] : a.fault_stats) fires += stats.fires;
  EXPECT_GT(fires, 0u);

  const auto c = RunSequentialScenario(54321);
  EXPECT_FALSE(a == c) << "different seeds produced identical transcripts";
}

}  // namespace
}  // namespace sfp::core
