// Tests for atomic batched data-plane updates (§V-E reconciliation).
#include <gtest/gtest.h>

#include "dataplane/data_plane.h"
#include "nf/firewall.h"

namespace sfp::dataplane {
namespace {

using net::Ipv4Address;
using net::MakeTcpPacket;
using Op = DataPlane::UpdateOp;

nf::NfConfig Fw(std::uint16_t port, int extra_rules = 0) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(port, port),
      switchsim::FieldMatch::Any()));
  for (int i = 0; i < extra_rules; ++i) {
    config.rules.push_back(nf::Firewall::Deny(
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Range(10000 + static_cast<std::uint64_t>(i),
                                     10000 + static_cast<std::uint64_t>(i)),
        switchsim::FieldMatch::Any()));
  }
  return config;
}

Sfc MakeSfc(TenantId tenant, std::uint16_t port, int extra_rules = 0) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {Fw(port, extra_rules)};
  return sfc;
}

switchsim::SwitchConfig SmallSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 1;
  config.blocks_per_stage = 1;
  config.entries_per_block = 50;
  return config;
}

TEST(AtomicUpdateTest, AppliesMixedBatch) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);

  const auto result = dp.ApplyAtomic({
      Op{Op::Kind::kRemove, MakeSfc(1, 80)},
      Op{Op::Kind::kAdmit, MakeSfc(2, 443)},
      Op{Op::Kind::kAdmit, MakeSfc(3, 22)},
  });
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_FALSE(dp.IsAllocated(1));
  EXPECT_TRUE(dp.IsAllocated(2));
  EXPECT_TRUE(dp.IsAllocated(3));
}

TEST(AtomicUpdateTest, FailedAdmitRollsEverythingBack) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  // Tenant 1 occupies most of the 50-entry block.
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80, /*extra_rules=*/40)).ok);
  const auto entries_before = dp.pipeline().TotalEntriesUsed();

  // Batch: admit a small tenant, then one that cannot possibly fit.
  const auto result = dp.ApplyAtomic({
      Op{Op::Kind::kAdmit, MakeSfc(2, 443)},
      Op{Op::Kind::kAdmit, MakeSfc(3, 22, /*extra_rules=*/45)},
  });
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_op, 1);
  // All-or-nothing: tenant 2's partial admission was rolled back.
  EXPECT_FALSE(dp.IsAllocated(2));
  EXPECT_FALSE(dp.IsAllocated(3));
  EXPECT_TRUE(dp.IsAllocated(1));
  EXPECT_EQ(dp.pipeline().TotalEntriesUsed(), entries_before);

  // Tenant 1's rules still work.
  auto out = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  EXPECT_TRUE(out.meta.dropped);
}

TEST(AtomicUpdateTest, FailedRemoveRestoresRemovedTenants) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);

  // Remove tenant 1, then "remove" a tenant that does not exist.
  const auto result = dp.ApplyAtomic({
      Op{Op::Kind::kRemove, MakeSfc(1, 80)},
      Op{Op::Kind::kRemove, MakeSfc(9, 443)},
  });
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_op, 1);
  EXPECT_EQ(result.error, "tenant not allocated");
  // Tenant 1 was restored with working rules.
  ASSERT_TRUE(dp.IsAllocated(1));
  auto out = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  EXPECT_TRUE(out.meta.dropped);
}

TEST(AtomicUpdateTest, RemoveThenReadmitSwapsInPlace) {
  // Classic reconfiguration: replace a tenant's chain in one atomic step.
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);

  const auto result = dp.ApplyAtomic({
      Op{Op::Kind::kRemove, MakeSfc(1, 80)},
      Op{Op::Kind::kAdmit, MakeSfc(1, 443)},  // same tenant, new config
  });
  ASSERT_TRUE(result.ok) << result.error;
  auto p80 = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  auto p443 = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                       Ipv4Address::Of(2, 2, 2, 2), 9, 443, 64));
  EXPECT_FALSE(p80.meta.dropped);
  EXPECT_TRUE(p443.meta.dropped);
}

TEST(AtomicUpdateTest, EmptyBatchIsNoOp) {
  DataPlane dp(SmallSwitch());
  EXPECT_TRUE(dp.ApplyAtomic({}).ok);
}

}  // namespace
}  // namespace sfp::dataplane
