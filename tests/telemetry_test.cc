// Tests for per-tenant telemetry.
#include "dataplane/telemetry.h"

#include <gtest/gtest.h>

namespace sfp::dataplane {
namespace {

switchsim::ProcessResult Result(std::uint16_t tenant, bool dropped, int passes,
                                double latency_ns) {
  switchsim::ProcessResult r;
  r.meta.tenant_id = tenant;
  r.meta.dropped = dropped;
  r.passes = passes;
  r.latency_ns = latency_ns;
  return r;
}

TEST(TelemetryTest, AccumulatesPerTenant) {
  TelemetryCollector collector;
  collector.Record(100, Result(1, false, 1, 300));
  collector.Record(200, Result(1, true, 1, 100));
  collector.Record(64, Result(2, false, 2, 350));

  const auto t1 = collector.Tenant(1);
  EXPECT_EQ(t1.packets, 2u);
  EXPECT_EQ(t1.bytes, 300u);
  EXPECT_EQ(t1.drops, 1u);
  EXPECT_EQ(t1.recirculated_packets, 0u);
  EXPECT_NEAR(t1.MeanLatencyNs(), 200.0, 1e-9);
  EXPECT_NEAR(t1.DropRate(), 0.5, 1e-9);
  EXPECT_EQ(t1.max_latency_ns, 300.0);

  const auto t2 = collector.Tenant(2);
  EXPECT_EQ(t2.recirculated_packets, 1u);
  EXPECT_NEAR(t2.MeanPasses(), 2.0, 1e-9);
}

TEST(TelemetryTest, UnknownTenantIsZero) {
  TelemetryCollector collector;
  const auto t = collector.Tenant(42);
  EXPECT_EQ(t.packets, 0u);
  EXPECT_EQ(t.MeanLatencyNs(), 0.0);
}

TEST(TelemetryTest, TotalAggregatesAndResetClears) {
  TelemetryCollector collector;
  collector.Record(100, Result(1, false, 1, 300));
  collector.Record(100, Result(2, false, 3, 400));
  const auto total = collector.Total();
  EXPECT_EQ(total.packets, 2u);
  EXPECT_EQ(total.bytes, 200u);
  EXPECT_EQ(total.total_passes, 4u);
  EXPECT_EQ(total.max_latency_ns, 400.0);
  EXPECT_EQ(collector.Tenants(), (std::vector<std::uint16_t>{1, 2}));

  collector.Reset();
  EXPECT_TRUE(collector.Tenants().empty());
  EXPECT_EQ(collector.Total().packets, 0u);
}

TEST(TelemetryRetentionTest, KeepDepartedRetainsSeriesForPostMortem) {
  TelemetryCollector collector;
  collector.Record(100, Result(1, false, 1, 300));
  collector.MarkDeparted(1);
  EXPECT_TRUE(collector.IsDeparted(1));
  EXPECT_EQ(collector.Tenant(1).packets, 1u);
  EXPECT_EQ(collector.DepartedTenants(), (std::vector<std::uint16_t>{1}));
  // Departed series still count toward the aggregate.
  EXPECT_EQ(collector.Total().packets, 1u);
}

TEST(TelemetryRetentionTest, PurgeOnDepartureDropsSeriesImmediately) {
  TelemetryCollector collector;
  collector.SetRetention(TelemetryRetention::kPurgeOnDeparture);
  collector.Record(100, Result(1, false, 1, 300));
  collector.Record(100, Result(2, false, 1, 300));
  collector.MarkDeparted(1);
  EXPECT_FALSE(collector.IsDeparted(1));
  EXPECT_EQ(collector.Tenant(1).packets, 0u);
  EXPECT_EQ(collector.Tenants(), (std::vector<std::uint16_t>{2}));
  // Unknown tenants are a no-op.
  collector.MarkDeparted(42);
  EXPECT_EQ(collector.Tenants(), (std::vector<std::uint16_t>{2}));
}

TEST(TelemetryRetentionTest, DepartedCapEvictsOldestFirst) {
  TelemetryCollector collector;
  collector.SetRetention(TelemetryRetention::kKeepDeparted, /*max_departed_series=*/2);
  for (std::uint16_t tenant = 1; tenant <= 4; ++tenant) {
    collector.Record(100, Result(tenant, false, 1, 300));
  }
  collector.MarkDeparted(1);
  collector.MarkDeparted(2);
  collector.MarkDeparted(3);  // evicts 1 (oldest departure)
  EXPECT_EQ(collector.DepartedTenants(), (std::vector<std::uint16_t>{2, 3}));
  EXPECT_EQ(collector.Tenant(1).packets, 0u);
  collector.MarkDeparted(4);  // evicts 2
  EXPECT_EQ(collector.DepartedTenants(), (std::vector<std::uint16_t>{3, 4}));
  // Active tenants are never evicted; only the map's departed series
  // are bounded, so churn cannot grow memory without limit.
}

TEST(TelemetryRetentionTest, TrafficRevivesDepartedSeries) {
  TelemetryCollector collector;
  collector.Record(100, Result(1, false, 1, 300));
  collector.MarkDeparted(1);
  ASSERT_TRUE(collector.IsDeparted(1));
  // The tenant comes back: the series unmarks and keeps accumulating.
  collector.Record(100, Result(1, false, 1, 300));
  EXPECT_FALSE(collector.IsDeparted(1));
  EXPECT_EQ(collector.Tenant(1).packets, 2u);
}

TEST(TelemetryRetentionTest, LoweringCapEvictsImmediately) {
  TelemetryCollector collector;
  for (std::uint16_t tenant = 1; tenant <= 3; ++tenant) {
    collector.Record(100, Result(tenant, false, 1, 300));
    collector.MarkDeparted(tenant);
  }
  ASSERT_EQ(collector.DepartedTenants().size(), 3u);
  collector.SetRetention(TelemetryRetention::kKeepDeparted, /*max_departed_series=*/1);
  EXPECT_EQ(collector.DepartedTenants(), (std::vector<std::uint16_t>{3}));
}

}  // namespace
}  // namespace sfp::dataplane
