// Stress/property tests for the LP/MIP stack on structured problems
// with independently computable optima.
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/mip.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sfp::lp {
namespace {

// ---------------------------------------------------------------------
// Assignment problems: the LP relaxation of the assignment polytope is
// integral, so the simplex optimum must equal the brute-force minimum
// matching cost.
class AssignmentLpTest : public ::testing::TestWithParam<int> {};

TEST_P(AssignmentLpTest, LpMatchesBruteForceMatching) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 271 + 5);
  const int n = static_cast<int>(rng.UniformInt(2, 7));
  std::vector<std::vector<double>> cost(static_cast<std::size_t>(n),
                                        std::vector<double>(static_cast<std::size_t>(n)));
  for (auto& row : cost) {
    for (auto& c : row) c = rng.UniformDouble(0, 10);
  }

  Model model;
  model.SetMaximize(false);
  std::vector<std::vector<VarId>> x(static_cast<std::size_t>(n),
                                    std::vector<VarId>(static_cast<std::size_t>(n)));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] = model.AddVar(
          0, 1, cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)], false);
    }
  }
  for (int i = 0; i < n; ++i) {
    std::vector<VarId> row_vars, col_vars;
    for (int j = 0; j < n; ++j) {
      row_vars.push_back(x[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)]);
      col_vars.push_back(x[static_cast<std::size_t>(j)][static_cast<std::size_t>(i)]);
    }
    model.AddRow(row_vars, std::vector<double>(static_cast<std::size_t>(n), 1.0),
                 Sense::kEq, 1);
    model.AddRow(col_vars, std::vector<double>(static_cast<std::size_t>(n), 1.0),
                 Sense::kEq, 1);
  }

  Simplex solver(model);
  auto solution = solver.Solve();
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);

  // Brute force over permutations.
  std::vector<int> perm(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) perm[static_cast<std::size_t>(i)] = i;
  double best = 1e100;
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) {
      total += cost[static_cast<std::size_t>(i)][static_cast<std::size_t>(perm[static_cast<std::size_t>(i)])];
    }
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));

  EXPECT_NEAR(solution.objective, best, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(RandomAssignments, AssignmentLpTest, ::testing::Range(0, 25));

// ---------------------------------------------------------------------
// Transportation problems: LP optimum equals a known closed-form on a
// 2x2 grid, and general feasibility/bound sanity on random grids.
TEST(TransportationLpTest, TwoByTwoClosedForm) {
  // supply (10, 20), demand (15, 15), costs [[1, 4], [2, 1]].
  // Optimal: x00=10, x10=5, x11=15 -> 10 + 10 + 15 = 35.
  Model model;
  model.SetMaximize(false);
  VarId x00 = model.AddVar(0, kInfinity, 1, false);
  VarId x01 = model.AddVar(0, kInfinity, 4, false);
  VarId x10 = model.AddVar(0, kInfinity, 2, false);
  VarId x11 = model.AddVar(0, kInfinity, 1, false);
  model.AddRow({x00, x01}, {1, 1}, Sense::kEq, 10);
  model.AddRow({x10, x11}, {1, 1}, Sense::kEq, 20);
  model.AddRow({x00, x10}, {1, 1}, Sense::kEq, 15);
  model.AddRow({x01, x11}, {1, 1}, Sense::kEq, 15);

  Simplex solver(model);
  auto solution = solver.Solve();
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 35.0, 1e-6);
}

// ---------------------------------------------------------------------
// MIP on set covering with verifiable brute force.
class SetCoverMipTest : public ::testing::TestWithParam<int> {};

TEST_P(SetCoverMipTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 733 + 1);
  const int elements = static_cast<int>(rng.UniformInt(3, 8));
  const int sets = static_cast<int>(rng.UniformInt(3, 10));

  std::vector<std::uint32_t> covers(static_cast<std::size_t>(sets), 0);
  std::vector<double> weights(static_cast<std::size_t>(sets));
  for (int s = 0; s < sets; ++s) {
    for (int e = 0; e < elements; ++e) {
      if (rng.Bernoulli(0.4)) covers[static_cast<std::size_t>(s)] |= 1u << e;
    }
    weights[static_cast<std::size_t>(s)] = rng.UniformDouble(1, 5);
  }
  // Guarantee coverage is possible.
  covers[0] = (1u << elements) - 1;

  Model model;
  model.SetMaximize(false);
  std::vector<VarId> vars;
  for (int s = 0; s < sets; ++s) {
    vars.push_back(model.AddVar(0, 1, weights[static_cast<std::size_t>(s)], true));
  }
  for (int e = 0; e < elements; ++e) {
    std::vector<VarId> row;
    std::vector<double> coeffs;
    for (int s = 0; s < sets; ++s) {
      if (covers[static_cast<std::size_t>(s)] & (1u << e)) {
        row.push_back(vars[static_cast<std::size_t>(s)]);
        coeffs.push_back(1.0);
      }
    }
    model.AddRow(std::move(row), std::move(coeffs), Sense::kGe, 1);
  }

  MipSolver solver(model);
  auto result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);

  double best = 1e100;
  for (int mask = 0; mask < (1 << sets); ++mask) {
    std::uint32_t covered = 0;
    double weight = 0;
    for (int s = 0; s < sets; ++s) {
      if (mask & (1 << s)) {
        covered |= covers[static_cast<std::size_t>(s)];
        weight += weights[static_cast<std::size_t>(s)];
      }
    }
    if (covered == (1u << elements) - 1) best = std::min(best, weight);
  }
  EXPECT_NEAR(result.solution.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomCovers, SetCoverMipTest, ::testing::Range(0, 20));

// ---------------------------------------------------------------------
// Warm-restart torture: random sequences of bound changes must always
// agree with a cold solve.
TEST(SimplexWarmRestartTest, RandomBoundChangeSequencesMatchColdSolves) {
  Rng rng(99);
  Model model;
  const int n = 8;
  std::vector<VarId> vars;
  for (int v = 0; v < n; ++v) {
    vars.push_back(model.AddVar(0, 10, rng.UniformDouble(-2, 5), false));
  }
  for (int r = 0; r < 5; ++r) {
    std::vector<double> coeffs;
    for (int v = 0; v < n; ++v) coeffs.push_back(rng.UniformDouble(0, 2));
    model.AddRow(vars, coeffs, Sense::kLe, rng.UniformDouble(10, 40));
  }

  Simplex warm(model);
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);

  for (int step = 0; step < 25; ++step) {
    const VarId v = vars[static_cast<std::size_t>(rng.UniformInt(0, n - 1))];
    const double lo = rng.UniformDouble(0, 5);
    const double hi = lo + rng.UniformDouble(0, 5);
    warm.SetVarBounds(v, lo, hi);
    model.SetVarBounds(v, lo, hi);

    auto warm_solution = warm.Solve();
    Simplex cold(model);
    auto cold_solution = cold.Solve();
    ASSERT_EQ(warm_solution.status, cold_solution.status);
    if (warm_solution.status == SolveStatus::kOptimal) {
      EXPECT_NEAR(warm_solution.objective, cold_solution.objective, 1e-5);
    }
  }
}

}  // namespace
}  // namespace sfp::lp
