// Differential testing: SFP's transparency claim.
//
// Offloading an SFC to the switch must not change its behaviour: for
// any chain and any packet, the virtualized switch pipeline (with its
// stages, tenant/pass prefixes, folding and recirculation) must produce
// exactly the same packet transformations and drop decisions as a
// plain software execution of the same chain (serversim::SoftChain).
#include <gtest/gtest.h>

#include "core/sfp_system.h"
#include "nf/rate_limiter.h"
#include "serversim/soft_chain.h"
#include "workload/sfc_gen.h"
#include "workload/traffic.h"

namespace sfp {
namespace {

using dataplane::Sfc;
using net::Ipv4Address;

class DifferentialTest : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialTest, SwitchMatchesSoftwareExecution) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 1021 + 13);

  // A random concrete chain (3..5 distinct NFs, real rules).
  const int chain_len = static_cast<int>(rng.UniformInt(3, 5));
  auto sfc = workload::GenerateConcreteSfc(/*tenant=*/5, chain_len, 10.0, rng,
                                           /*rules_per_nf=*/25);

  // Physical layout: every NF type installed at a random distinct
  // stage, so some chains fold and recirculate.
  switchsim::SwitchConfig config;
  config.num_stages = nf::kNumNfTypes;
  core::SfpSystem system(config);
  std::vector<int> stages(static_cast<std::size_t>(nf::kNumNfTypes));
  for (int t = 0; t < nf::kNumNfTypes; ++t) stages[static_cast<std::size_t>(t)] = t;
  rng.Shuffle(stages);
  for (int t = 0; t < nf::kNumNfTypes; ++t) {
    ASSERT_TRUE(system.data_plane().InstallPhysicalNf(stages[static_cast<std::size_t>(t)],
                                                      static_cast<nf::NfType>(t)));
  }

  // Rate limiters need their bucket on both sides (same parameters).
  for (int j = 0; j < sfc.Length(); ++j) {
    if (sfc.chain[static_cast<std::size_t>(j)].type == nf::NfType::kRateLimiter) {
      auto* physical = static_cast<nf::RateLimiter*>(system.data_plane().PhysicalNf(
          stages[static_cast<std::size_t>(static_cast<int>(nf::NfType::kRateLimiter))],
          nf::NfType::kRateLimiter));
      ASSERT_NE(physical, nullptr);
      physical->AddBucket(100.0, 10.0);
    }
  }

  const auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted) << admit.reason;

  serversim::SoftChain software(sfc);
  for (int j = 0; j < software.Length(); ++j) {
    if (sfc.chain[static_cast<std::size_t>(j)].type == nf::NfType::kRateLimiter) {
      static_cast<nf::RateLimiter*>(software.nf_instance(j))->AddBucket(100.0, 10.0);
    }
  }

  // Drive both with identical traffic and compare everything visible.
  workload::PacketSizeProfile profile;
  auto packets = workload::GenerateFlows(/*tenant=*/5, /*num_flows=*/32, /*count=*/300,
                                         profile, rng);
  int drops = 0;
  for (const auto& packet : packets) {
    const auto hw = system.Process(packet);
    const auto sw = software.Process(packet);

    ASSERT_EQ(hw.meta.dropped, sw.meta.dropped) << "drop decision diverged";
    if (hw.meta.dropped) {
      ++drops;
      continue;  // post-drop header state is unspecified
    }
    EXPECT_EQ(hw.meta.flow_class, sw.meta.flow_class);
    EXPECT_EQ(hw.meta.egress_port, sw.meta.egress_port);
    ASSERT_TRUE(hw.packet.ipv4.has_value());
    ASSERT_TRUE(sw.packet.ipv4.has_value());
    EXPECT_EQ(hw.packet.ipv4->src, sw.packet.ipv4->src) << "NAT rewrite diverged";
    EXPECT_EQ(hw.packet.ipv4->dst, sw.packet.ipv4->dst) << "LB rewrite diverged";
    EXPECT_EQ(hw.packet.ipv4->ttl, sw.packet.ipv4->ttl) << "router TTL diverged";
    EXPECT_EQ(hw.packet.Tuple().Hash(), sw.packet.Tuple().Hash());
  }
  // Sanity: the comparison exercised real traffic (not all dropped).
  EXPECT_LT(drops, 300);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, DifferentialTest, ::testing::Range(0, 15));

TEST(DifferentialTest, FoldedChainStillMatchesSoftware) {
  // Force maximal folding: physical layout is the exact reverse of the
  // chain, so every NF lands in its own pass.
  switchsim::SwitchConfig config;
  config.num_stages = 4;
  core::SfpSystem system(config);
  ASSERT_TRUE(system.data_plane().InstallPhysicalNf(0, nf::NfType::kRouter));
  ASSERT_TRUE(system.data_plane().InstallPhysicalNf(1, nf::NfType::kClassifier));
  ASSERT_TRUE(system.data_plane().InstallPhysicalNf(2, nf::NfType::kLoadBalancer));
  ASSERT_TRUE(system.data_plane().InstallPhysicalNf(3, nf::NfType::kFirewall));

  Rng rng(7);
  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 5;
  for (const auto type : {nf::NfType::kFirewall, nf::NfType::kLoadBalancer,
                          nf::NfType::kClassifier, nf::NfType::kRouter}) {
    nf::NfConfig nf_config;
    nf_config.type = type;
    auto impl = nf::MakeNf(type);
    nf_config.rules = impl->GenerateRules(rng, 20);
    sfc.chain.push_back(std::move(nf_config));
  }
  const auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted) << admit.reason;
  ASSERT_EQ(admit.passes, 4);  // fully folded

  serversim::SoftChain software(sfc);
  workload::PacketSizeProfile profile;
  for (const auto& packet :
       workload::GenerateFlows(2, /*num_flows=*/16, /*count=*/200, profile, rng)) {
    const auto hw = system.Process(packet);
    const auto sw = software.Process(packet);
    ASSERT_EQ(hw.meta.dropped, sw.meta.dropped);
    if (hw.meta.dropped) continue;
    EXPECT_EQ(hw.meta.flow_class, sw.meta.flow_class);
    EXPECT_EQ(hw.packet.ipv4->dst, sw.packet.ipv4->dst);
    EXPECT_EQ(hw.packet.ipv4->ttl, sw.packet.ipv4->ttl);
  }
}

}  // namespace
}  // namespace sfp
