// IncrementalAdmissionLp decision equivalence and SfpSystem
// integration under Pareto-lifetime churn (workload/churn.h): the
// warm dual-simplex path must agree with the from-scratch cold oracle
// on every admit/reject, release capacity on departure, survive
// dead-column compaction, and — at the system level — match the
// legacy eq. 26 sum-over-admissions check decision for decision.
#include <gtest/gtest.h>

#include <cmath>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/rng.h"
#include "controlplane/admission_lp.h"
#include "core/sfp_system.h"
#include "nf/firewall.h"
#include "workload/churn.h"

namespace sfp {
namespace {

using controlplane::AdmissionDecision;
using controlplane::AdmissionLpOptions;
using controlplane::IncrementalAdmissionLp;
using controlplane::TenantFootprint;

/// Replays a trace against `lp`, asserting every decision against the
/// cold oracle; admit/reject tallies land in the out-params (gtest
/// ASSERTs require a void-returning helper).
void ReplayAgainstColdOracle(IncrementalAdmissionLp& lp,
                             const std::vector<workload::ChurnEvent>& trace,
                             int* admitted_out = nullptr, int* rejected_out = nullptr) {
  int admitted = 0, rejected = 0;
  for (const auto& event : trace) {
    if (event.kind == workload::ChurnEvent::Kind::kDepart) {
      lp.Remove(event.tenant);
      continue;
    }
    const AdmissionDecision cold = lp.ColdReference(event.tenant, event.footprint);
    const AdmissionDecision live = lp.TryAdmit(event.tenant, event.footprint);
    ASSERT_EQ(live.admitted, cold.admitted)
        << "tenant " << event.tenant << " warm/cold decision flip";
    const double tol = 1e-6 * std::max(1.0, std::abs(cold.objective));
    EXPECT_NEAR(live.objective, cold.objective, tol);
    EXPECT_NEAR(live.candidate_value, cold.candidate_value, 1e-6);
    (live.admitted ? admitted : rejected)++;
  }
  if (admitted_out) *admitted_out = admitted;
  if (rejected_out) *rejected_out = rejected;
}

workload::ChurnOptions SmallChurn(std::int64_t population, std::int64_t arrivals) {
  workload::ChurnOptions churn;
  churn.target_population = population;
  churn.num_arrivals = arrivals;
  churn.num_stages = 4;
  return churn;
}

TEST(AdmissionChurnTest, DecisionsMatchColdReferenceUnderChurn) {
  // Tight capacity (~60% of the analytic steady demand) forces a mixed
  // admit/reject stream; every single decision must match the oracle.
  workload::ChurnOptions churn = SmallChurn(32, 160);
  Rng rng(1);
  const auto trace = workload::GenerateChurnTrace(churn, rng);
  const double stage_cap = 32.0 * 5.0 * 1100.0 / 4.0 * 0.6;
  IncrementalAdmissionLp lp(workload::ChurnLpOptions(churn, stage_cap, 32.0 * 9.6 * 0.6));
  int admitted = 0, rejected = 0;
  ReplayAgainstColdOracle(lp, trace, &admitted, &rejected);
  if (HasFatalFailure()) return;
  EXPECT_GT(admitted, 0);
  EXPECT_GT(rejected, 0) << "capacity never bound; differential only saw admits";
}

TEST(AdmissionChurnTest, WarmHitRateUnderSteadyChurn) {
  workload::ChurnOptions churn = SmallChurn(64, 640);
  Rng rng(2);
  const auto trace = workload::GenerateChurnTrace(churn, rng);
  const double stage_cap = 64.0 * 5.0 * 1100.0 / 4.0 * 0.7;
  IncrementalAdmissionLp lp(workload::ChurnLpOptions(churn, stage_cap, 64.0 * 9.6 * 0.7));
  for (const auto& event : trace) {
    if (event.kind == workload::ChurnEvent::Kind::kDepart) {
      lp.Remove(event.tenant);
    } else {
      lp.TryAdmit(event.tenant, event.footprint);
    }
  }
  const auto& counters = lp.counters();
  EXPECT_EQ(counters.solves, 640);
  ASSERT_GT(counters.warm_attempts, 0);
  const double hit = static_cast<double>(counters.warm_successes) /
                     static_cast<double>(counters.warm_attempts);
  EXPECT_GE(hit, 0.9) << "steady churn must ride the dual warm path";
  // O(perturbation): a handful of pivots per decision, not O(tenants).
  EXPECT_LT(counters.total_iterations, 20 * counters.solves);
}

TEST(AdmissionChurnTest, RemoveReleasesCapacityForReadmission) {
  AdmissionLpOptions options;
  options.backplane_gbps = 10.0;
  IncrementalAdmissionLp lp(options);

  TenantFootprint fp;
  fp.bandwidth_gbps = 8.0;
  fp.passes = 1;
  EXPECT_TRUE(lp.TryAdmit(1, fp).admitted);
  EXPECT_FALSE(lp.TryAdmit(2, fp).admitted);  // 8 + 8 > 10
  EXPECT_TRUE(lp.Remove(1));
  EXPECT_FALSE(lp.Remove(1));  // already gone
  EXPECT_TRUE(lp.TryAdmit(3, fp).admitted);   // capacity released
  EXPECT_TRUE(lp.Contains(3));
  EXPECT_FALSE(lp.Contains(1));
  EXPECT_EQ(lp.num_admitted(), 1u);
}

TEST(AdmissionChurnTest, CompactionPreservesDecisionsAndRewarms) {
  // rebuild_slack = 2 forces dead-column compactions constantly; the
  // rebuilt LP must keep answering like the oracle (which only ever
  // sees live columns).
  workload::ChurnOptions churn = SmallChurn(16, 120);
  churn.mean_lifetime = 20.0;  // fast churn: lots of departures
  Rng rng(3);
  const auto trace = workload::GenerateChurnTrace(churn, rng);
  AdmissionLpOptions options =
      workload::ChurnLpOptions(churn, 16.0 * 5.0 * 1100.0 / 4.0 * 0.7, 16.0 * 9.6 * 0.7);
  options.rebuild_slack = 2;
  IncrementalAdmissionLp lp(options);
  ReplayAgainstColdOracle(lp, trace);
  if (HasFatalFailure()) return;
  EXPECT_GT(lp.counters().rebuilds, 0) << "rebuild_slack=2 never compacted";
}

TEST(AdmissionChurnTest, ColdModeAnswersIdenticallyWithoutWarmCredit) {
  // warm=false is the A/B baseline: same decisions, no warm counters.
  workload::ChurnOptions churn = SmallChurn(24, 96);
  Rng rng(4);
  const auto trace = workload::GenerateChurnTrace(churn, rng);
  AdmissionLpOptions options =
      workload::ChurnLpOptions(churn, 24.0 * 5.0 * 1100.0 / 4.0 * 0.7, 24.0 * 9.6 * 0.7);
  options.warm = false;
  IncrementalAdmissionLp lp(options);
  ReplayAgainstColdOracle(lp, trace);
  if (HasFatalFailure()) return;
  EXPECT_EQ(lp.counters().warm_attempts, 0);
  EXPECT_EQ(lp.counters().warm_successes, 0);
}

// --- SfpSystem integration ------------------------------------------

nf::NfConfig Fw(std::uint16_t blocked_port) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Range(blocked_port, blocked_port),
      switchsim::FieldMatch::Any()));
  return config;
}

switchsim::SwitchConfig TestSwitch(double backplane_gbps) {
  switchsim::SwitchConfig config;
  config.num_stages = 8;
  config.blocks_per_stage = 20;
  config.entries_per_block = 1000;
  config.backplane_gbps = backplane_gbps;
  return config;
}

dataplane::Sfc FwSfc(dataplane::TenantId tenant, double bandwidth_gbps) {
  dataplane::Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = bandwidth_gbps;
  sfc.chain = {Fw(443)};
  return sfc;
}

TEST(AdmissionChurnTest, SystemLpMatchesLegacySumDecisionForDecision) {
  core::SfpSystem legacy(TestSwitch(100.0));
  core::SfpSystem lp(TestSwitch(100.0));
  legacy.ProvisionPhysical({{nf::NfType::kFirewall}});
  lp.ProvisionPhysical({{nf::NfType::kFirewall}});
  lp.EnableIncrementalAdmission();
  ASSERT_TRUE(lp.incremental_admission_enabled());
  ASSERT_FALSE(legacy.incremental_admission_enabled());

  Rng rng(9);
  for (int step = 0; step < 60; ++step) {
    const auto tenant = static_cast<dataplane::TenantId>(1 + rng.UniformInt(0, 11));
    if (rng.Bernoulli(0.35)) {
      EXPECT_EQ(legacy.RemoveTenant(tenant), lp.RemoveTenant(tenant)) << "step " << step;
      continue;
    }
    const double bw = static_cast<double>(rng.UniformInt(0, 4)) * 10.0;  // 0 exercises Commit
    const auto a = legacy.AdmitTenant(FwSfc(tenant, bw));
    const auto b = lp.AdmitTenant(FwSfc(tenant, bw));
    EXPECT_EQ(a.admitted, b.admitted) << "step " << step << " bw " << bw;
    EXPECT_EQ(a.code, b.code) << "step " << step;
  }
  EXPECT_EQ(legacy.Stats().tenants, lp.Stats().tenants);
  EXPECT_NEAR(legacy.Stats().backplane_gbps, lp.Stats().backplane_gbps, 1e-9);
}

TEST(AdmissionChurnTest, SystemSeedsExistingTenantsWhenEnabledMidFlight) {
  core::SfpSystem system(TestSwitch(50.0));
  system.ProvisionPhysical({{nf::NfType::kFirewall}});
  ASSERT_TRUE(system.AdmitTenant(FwSfc(1, 30.0)).admitted);
  system.EnableIncrementalAdmission();
  // The seeded commitment must count: a second 30 Gbps tenant busts 50.
  EXPECT_FALSE(system.AdmitTenant(FwSfc(2, 30.0)).admitted);
  EXPECT_TRUE(system.RemoveTenant(1));
  EXPECT_TRUE(system.AdmitTenant(FwSfc(2, 30.0)).admitted);
}

TEST(AdmissionChurnTest, SystemExportsWarmAndLatencyMetricsOnlyWhenEnabled) {
  core::SfpSystem legacy(TestSwitch(100.0));
  legacy.ProvisionPhysical({{nf::NfType::kFirewall}});
  ASSERT_TRUE(legacy.AdmitTenant(FwSfc(1, 10.0)).admitted);
  common::metrics::Registry legacy_registry;
  legacy.ExportMetrics(legacy_registry);
  for (const auto& counter : legacy_registry.Counters()) {
    EXPECT_FALSE(counter.name.starts_with("solver.warm."))
        << counter.name << " leaked into the legacy counter set";
    EXPECT_FALSE(counter.name.starts_with("system.admit.latency."))
        << counter.name << " leaked into the legacy counter set";
  }

  core::SfpSystem warm(TestSwitch(100.0));
  warm.ProvisionPhysical({{nf::NfType::kFirewall}});
  warm.EnableIncrementalAdmission();
  ASSERT_TRUE(warm.AdmitTenant(FwSfc(1, 10.0)).admitted);
  ASSERT_FALSE(warm.AdmitTenant(FwSfc(2, 200.0)).admitted);
  common::metrics::Registry registry;
  warm.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("solver.warm.solves").Value(), 2u);
  EXPECT_EQ(registry.GetCounter("solver.warm.admitted").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("solver.warm.rejected").Value(), 1u);
  EXPECT_EQ(registry.GetCounter("system.admit.latency.count").Value(), 2u);
  EXPECT_GT(registry.GetCounter("system.admit.latency.total_ns").Value(), 0u);
  EXPECT_GE(registry.GetCounter("system.admit.latency.max_ns").Value(),
            registry.GetCounter("system.admit.latency.total_ns").Value() / 2);
}

TEST(AdmissionChurnTest, ConcurrentAdmitsUnderChurn) {
  // TSan target: admission runs under the control mutex, so concurrent
  // admit/remove across threads must be race-free and conserve the
  // ledger.
  core::SfpSystem system(TestSwitch(100000.0));
  system.ProvisionPhysical({{nf::NfType::kFirewall}});
  system.EnableIncrementalAdmission();
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 40;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&system, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const auto tenant = static_cast<dataplane::TenantId>(1 + t * kOpsPerThread + i);
        ASSERT_TRUE(system.AdmitTenant(FwSfc(tenant, 1.0)).admitted);
        if (i % 2 == 0) ASSERT_TRUE(system.RemoveTenant(tenant));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(system.Stats().tenants, kThreads * kOpsPerThread / 2);
  common::metrics::Registry registry;
  system.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("solver.warm.solves").Value(),
            static_cast<std::uint64_t>(kThreads * kOpsPerThread));
}

}  // namespace
}  // namespace sfp
