// Tests for synthetic dataset and traffic generation (§VI-A).
#include "workload/sfc_gen.h"
#include "workload/traffic.h"

#include <gtest/gtest.h>

#include <set>

namespace sfp::workload {
namespace {

TEST(SfcGenTest, RespectsDatasetParameters) {
  Rng rng(1);
  DatasetParams params;
  params.num_sfcs = 40;
  params.num_types = 10;
  params.min_chain_len = 3;
  params.max_chain_len = 7;
  controlplane::SwitchResources sw;
  auto instance = GenerateInstance(params, sw, rng);

  EXPECT_EQ(instance.NumSfcs(), 40);
  EXPECT_EQ(instance.num_types, 10);
  for (const auto& sfc : instance.sfcs) {
    EXPECT_GE(sfc.Length(), 3);
    EXPECT_LE(sfc.Length(), 7);
    EXPECT_GT(sfc.bandwidth_gbps, 0.0);
    EXPECT_LE(sfc.bandwidth_gbps, params.bw_cap_gbps);
    std::set<int> types;
    for (const auto& box : sfc.boxes) {
      EXPECT_GE(box.rules, 100);
      EXPECT_LE(box.rules, 2100);
      types.insert(box.type);
    }
    // distinct_types_in_chain: no repeats when the universe allows.
    EXPECT_EQ(static_cast<int>(types.size()), sfc.Length());
  }
}

TEST(SfcGenTest, FixedChainLengthOverrides) {
  Rng rng(2);
  DatasetParams params;
  params.num_sfcs = 10;
  params.fixed_chain_len = 8;
  controlplane::SwitchResources sw;
  auto instance = GenerateInstance(params, sw, rng);
  for (const auto& sfc : instance.sfcs) EXPECT_EQ(sfc.Length(), 8);
}

TEST(SfcGenTest, BandwidthIsLongTailed) {
  Rng rng(3);
  DatasetParams params;
  params.num_sfcs = 500;
  controlplane::SwitchResources sw;
  auto instance = GenerateInstance(params, sw, rng);
  double max_bw = 0, sum = 0;
  for (const auto& sfc : instance.sfcs) {
    max_bw = std::max(max_bw, sfc.bandwidth_gbps);
    sum += sfc.bandwidth_gbps;
  }
  const double mean = sum / instance.NumSfcs();
  // A long tail: the max is several times the mean.
  EXPECT_GT(max_bw, 3 * mean);
}

TEST(SfcGenTest, DeterministicForSameSeed) {
  DatasetParams params;
  params.num_sfcs = 10;
  controlplane::SwitchResources sw;
  Rng a(7), b(7);
  auto ia = GenerateInstance(params, sw, a);
  auto ib = GenerateInstance(params, sw, b);
  ASSERT_EQ(ia.NumSfcs(), ib.NumSfcs());
  for (int l = 0; l < ia.NumSfcs(); ++l) {
    EXPECT_EQ(ia.sfcs[static_cast<std::size_t>(l)].bandwidth_gbps,
              ib.sfcs[static_cast<std::size_t>(l)].bandwidth_gbps);
    ASSERT_EQ(ia.sfcs[static_cast<std::size_t>(l)].Length(),
              ib.sfcs[static_cast<std::size_t>(l)].Length());
  }
}

TEST(SfcGenTest, ConcreteSfcHasInstallableRules) {
  Rng rng(4);
  auto sfc = GenerateConcreteSfc(/*tenant=*/3, /*chain_len=*/4, /*bw=*/10.0, rng,
                                 /*rules_per_nf=*/20);
  EXPECT_EQ(sfc.tenant, 3);
  EXPECT_EQ(sfc.Length(), 4);
  EXPECT_EQ(sfc.TotalRules(), 4 * 20);
  std::set<nf::NfType> types;
  for (const auto& cfg : sfc.chain) {
    EXPECT_EQ(cfg.rules.size(), 20u);
    types.insert(cfg.type);
  }
  EXPECT_EQ(types.size(), 4u);  // distinct types
}

TEST(PacketSizeProfileTest, SamplesWithinRangeAndBimodal) {
  Rng rng(5);
  PacketSizeProfile profile;
  int small = 0, large = 0, total = 20000;
  for (int i = 0; i < total; ++i) {
    const int size = profile.Sample(rng);
    EXPECT_GE(size, 64);
    EXPECT_LE(size, 1500);
    if (size <= 200) ++small;
    if (size >= 1400) ++large;
  }
  EXPECT_NEAR(static_cast<double>(small) / total, 0.45, 0.02);
  EXPECT_NEAR(static_cast<double>(large) / total, 0.40, 0.02);
}

TEST(PacketSizeProfileTest, MeanMatchesAnalytic) {
  Rng rng(6);
  PacketSizeProfile profile;
  double sum = 0;
  const int total = 50000;
  for (int i = 0; i < total; ++i) sum += profile.Sample(rng);
  EXPECT_NEAR(sum / total, profile.MeanBytes(), 10.0);
}

TEST(GenerateFlowsTest, ProducesRequestedPacketsAndFlows) {
  Rng rng(7);
  PacketSizeProfile profile;
  auto packets = GenerateFlows(/*tenant=*/5, /*num_flows=*/8, /*count=*/500, profile, rng);
  ASSERT_EQ(packets.size(), 500u);
  std::set<std::uint64_t> flows;
  for (const auto& packet : packets) {
    EXPECT_EQ(packet.TenantId(), 5);
    flows.insert(packet.Tuple().Hash());
  }
  EXPECT_LE(flows.size(), 8u);
  EXPECT_GT(flows.size(), 1u);
}

}  // namespace
}  // namespace sfp::workload
