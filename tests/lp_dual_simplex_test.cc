// Dual-simplex warm restarts and incremental model growth
// (SimplexOptions::warm_dual / ::incremental, Simplex::AddColumn /
// AddRow, BasisState remapping). Every warm answer is checked against a
// cold solve of the same model from scratch — the dual path may change
// cost, never the answer.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/simplex.h"

namespace sfp::lp {
namespace {

SimplexOptions WarmOpts() {
  SimplexOptions options;
  options.warm_dual = true;
  options.incremental = true;
  return options;
}

Solution ColdSolve(const Model& model) {
  Simplex cold(model);  // legacy configuration: slack basis, phase 1
  return cold.Solve();
}

void ExpectMatchesCold(const Model& model, const Solution& warm, const char* where) {
  const Solution cold = ColdSolve(model);
  ASSERT_EQ(warm.status, cold.status) << where;
  if (cold.status == SolveStatus::kOptimal) {
    const double tol = 1e-6 * std::max(1.0, std::abs(cold.objective));
    EXPECT_NEAR(warm.objective, cold.objective, tol) << where;
  }
}

/// Random packing LP: maximize c'x, Ax <= b, x in [0, 1], all
/// coefficients nonnegative (the admission-model shape).
Model RandomPackingLp(Rng& rng, int num_vars, int num_rows) {
  Model model;
  for (int v = 0; v < num_vars; ++v) {
    model.AddVar(0.0, 1.0, rng.UniformDouble(0.5, 2.0), /*is_integer=*/false);
  }
  for (int r = 0; r < num_rows; ++r) {
    std::vector<VarId> vars;
    std::vector<double> coeffs;
    for (int v = 0; v < num_vars; ++v) {
      if (rng.Bernoulli(0.4)) {
        vars.push_back(v);
        coeffs.push_back(rng.UniformDouble(0.1, 1.0));
      }
    }
    if (vars.empty()) {
      vars.push_back(static_cast<VarId>(rng.UniformInt(0, num_vars - 1)));
      coeffs.push_back(rng.UniformDouble(0.1, 1.0));
    }
    // Tight enough that rows bind at the optimum.
    model.AddRow(std::move(vars), std::move(coeffs), Sense::kLe,
                 rng.UniformDouble(0.4, 1.4));
  }
  return model;
}

TEST(LpDualSimplexTest, BoundChurnMatchesColdAcrossSeeds) {
  std::int64_t attempts = 0;
  std::int64_t successes = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Rng rng(seed);
    Model model = RandomPackingLp(rng, 12, 6);
    Simplex warm(model, WarmOpts());
    ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);

    for (int op = 0; op < 30; ++op) {
      const VarId v = static_cast<VarId>(rng.UniformInt(0, model.num_vars() - 1));
      double lo = 0.0, hi = 1.0;
      switch (rng.UniformInt(0, 2)) {
        case 0: lo = hi = 0.0; break;          // departure
        case 1: lo = hi = 1.0; break;          // committed arrival
        default: break;                        // relax back to [0, 1]
      }
      model.SetVarBounds(v, lo, hi);
      warm.SetVarBounds(v, lo, hi);
      const Solution solution = warm.Solve();
      ExpectMatchesCold(model, solution, "bound churn");
      if (HasFatalFailure()) return;
    }
    attempts += warm.stats().warm_attempts;
    successes += warm.stats().warm_successes;
  }
  // The traces deliberately wander through infeasible stretches, where
  // every attempt legitimately falls back to phase 1 (and the first
  // solves after recovery start from a phase-1-terminal basis). The
  // dual path still has to carry a meaningful share of the total churn.
  EXPECT_GT(attempts, 0);
  EXPECT_GE(successes, attempts / 8);
}

TEST(LpDualSimplexTest, AddColumnWarmMatchesCold) {
  Rng rng(7);
  Model model = RandomPackingLp(rng, 8, 5);
  Simplex warm(model, WarmOpts());
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);
  const auto before = warm.stats();

  for (int k = 0; k < 12; ++k) {
    std::vector<RowId> rows;
    std::vector<double> coeffs;
    for (RowId r = 0; r < model.num_rows(); ++r) {
      if (rng.Bernoulli(0.5)) {
        rows.push_back(r);
        coeffs.push_back(rng.UniformDouble(0.1, 1.0));
      }
    }
    const double objective = rng.UniformDouble(0.5, 2.0);
    const VarId in_model = model.AddVar(0.0, 1.0, objective, /*is_integer=*/false);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      model.AddRowCoefficient(rows[i], in_model, coeffs[i]);
    }
    const VarId mirrored = warm.AddColumn(0.0, 1.0, objective, rows, coeffs);
    ASSERT_EQ(mirrored, in_model);
    ExpectMatchesCold(model, warm.Solve(), "column append");
    if (HasFatalFailure()) return;
  }
  EXPECT_EQ(warm.stats().warm_attempts - before.warm_attempts, 12);
  // Column appends leave the basis primal feasible or one dual repair
  // away; phase 1 must not be re-entered.
  EXPECT_GE(warm.stats().warm_successes - before.warm_successes, 11);
}

TEST(LpDualSimplexTest, AddRowWarmMatchesCold) {
  Rng rng(11);
  Model model = RandomPackingLp(rng, 10, 4);
  Simplex warm(model, WarmOpts());
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);

  for (int k = 0; k < 6; ++k) {
    std::vector<VarId> vars;
    std::vector<double> coeffs;
    for (VarId v = 0; v < model.num_vars(); ++v) {
      if (rng.Bernoulli(0.5)) {
        vars.push_back(v);
        coeffs.push_back(rng.UniformDouble(0.1, 1.0));
      }
    }
    if (vars.empty()) continue;
    // Cut below the current activity about half the time so the new
    // row actually perturbs the optimum.
    const double rhs = rng.UniformDouble(0.3, 1.2);
    const RowId in_model =
        model.AddRow(vars, coeffs, Sense::kLe, rhs);
    const RowId mirrored = warm.AddRow(Sense::kLe, rhs, vars, coeffs);
    ASSERT_EQ(mirrored, in_model);
    ExpectMatchesCold(model, warm.Solve(), "row append");
    if (HasFatalFailure()) return;
  }
}

TEST(LpDualSimplexTest, RestoreBasisRemapsAcrossGrowth) {
  Rng rng(23);
  Model model = RandomPackingLp(rng, 9, 5);
  Simplex parent(model, WarmOpts());
  ASSERT_EQ(parent.Solve().status, SolveStatus::kOptimal);
  const Simplex::BasisState snapshot = parent.SaveBasis();
  EXPECT_EQ(snapshot.num_struct, 9);
  EXPECT_EQ(snapshot.num_rows, 5);

  // Grow the model past the snapshot: two columns and one row.
  for (int k = 0; k < 2; ++k) {
    const VarId v = model.AddVar(0.0, 1.0, 1.0, /*is_integer=*/false);
    model.AddRowCoefficient(0, v, 0.5);
  }
  std::vector<VarId> vars = {0, 9, 10};
  std::vector<double> coeffs = {0.5, 0.5, 0.5};
  model.AddRow(vars, coeffs, Sense::kLe, 1.0);

  Simplex child(model, WarmOpts());
  child.RestoreBasis(snapshot);  // stale shape: must remap, not crash
  const int refactors_before = child.stats().refactorizations;
  const Solution solution = child.Solve();
  ExpectMatchesCold(model, solution, "restored snapshot after growth");
  // The transplanted basis must be refactorized, never silently reused.
  EXPECT_GT(child.stats().refactorizations, refactors_before);
}

TEST(LpDualSimplexTest, SingularSnapshotFallsBackToSlackBasis) {
  Rng rng(31);
  Model model = RandomPackingLp(rng, 6, 4);
  Simplex warm(model, WarmOpts());
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);

  // Deliberately corrupt: variable 0 occupies every basis slot, which
  // can never factorize. Solve() must detect this and restart from the
  // slack basis instead of reusing garbage.
  Simplex::BasisState bogus;
  bogus.basis.assign(4, 0);
  bogus.status.assign(static_cast<std::size_t>(model.num_vars() + model.num_rows()),
                      0);  // all "at lower"
  bogus.num_struct = model.num_vars();
  bogus.num_rows = model.num_rows();
  warm.RestoreBasis(bogus);
  ExpectMatchesCold(model, warm.Solve(), "singular snapshot");
}

TEST(LpDualSimplexTest, InfeasibleBoundEditAgreesWithCold) {
  Model model;
  const VarId x = model.AddVar(0.0, 2.0, 1.0, false);
  const VarId y = model.AddVar(0.0, 2.0, 1.0, false);
  model.AddRow({x, y}, {1.0, 1.0}, Sense::kGe, 3.0);
  Simplex warm(model, WarmOpts());
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);

  // Fixing both below the covering requirement is infeasible; the dual
  // path may detect it but phase 1 must confirm it.
  model.SetVarBounds(x, 0.0, 0.0);
  model.SetVarBounds(y, 0.5, 0.5);
  warm.SetVarBounds(x, 0.0, 0.0);
  warm.SetVarBounds(y, 0.5, 0.5);
  EXPECT_EQ(warm.Solve().status, SolveStatus::kInfeasible);
  EXPECT_EQ(ColdSolve(model).status, SolveStatus::kInfeasible);

  // Relaxing again re-solves back to the cold answer.
  model.SetVarBounds(x, 0.0, 2.0);
  model.SetVarBounds(y, 0.0, 2.0);
  warm.SetVarBounds(x, 0.0, 2.0);
  warm.SetVarBounds(y, 0.0, 2.0);
  ExpectMatchesCold(model, warm.Solve(), "relax after infeasible");
}

TEST(LpDualSimplexTest, UncongestedAppendIsPivotFreeBoundFlip) {
  Model model;
  const VarId x = model.AddVar(0.0, 1.0, 1.0, false);
  const RowId cap = model.AddRow({x}, {1.0}, Sense::kLe, 100.0);
  Simplex warm(model, WarmOpts());
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);
  const auto before = warm.stats();

  // Plenty of slack: the fresh profitable column just flips to its
  // upper bound during dual-feasibility repair — no pivots at all.
  const VarId y = model.AddVar(0.0, 1.0, 2.0, false);
  model.AddRowCoefficient(cap, y, 1.0);
  std::vector<RowId> rows = {cap};
  std::vector<double> coeffs = {1.0};
  ASSERT_EQ(warm.AddColumn(0.0, 1.0, 2.0, rows, coeffs), y);
  const Solution solution = warm.Solve();
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 3.0, 1e-9);
  EXPECT_NEAR(warm.Value(y), 1.0, 1e-9);
  EXPECT_EQ(warm.stats().warm_successes, before.warm_successes + 1);
  EXPECT_EQ(warm.stats().dual_iterations, before.dual_iterations);
  EXPECT_EQ(warm.stats().iterations, before.iterations);
}

TEST(LpDualSimplexTest, IncrementalCompressionMatchesLegacy) {
  for (std::uint64_t seed = 100; seed < 103; ++seed) {
    Rng rng(seed);
    Model model = RandomPackingLp(rng, 14, 6);
    SimplexOptions inc;
    inc.incremental = true;  // compression without the dual path
    Simplex compressed(model, inc);
    Simplex legacy(model);
    for (int op = 0; op < 20; ++op) {
      const VarId v = static_cast<VarId>(rng.UniformInt(0, model.num_vars() - 1));
      const double fixed = rng.Bernoulli(0.5) ? 1.0 : 0.0;
      const bool relax = rng.Bernoulli(0.3);
      const double lo = relax ? 0.0 : fixed;
      const double hi = relax ? 1.0 : fixed;
      compressed.SetVarBounds(v, lo, hi);
      legacy.SetVarBounds(v, lo, hi);
      const Solution a = compressed.Solve();
      const Solution b = legacy.Solve();
      ASSERT_EQ(a.status, b.status);
      if (a.status == SolveStatus::kOptimal) {
        EXPECT_NEAR(a.objective, b.objective, 1e-7 * std::max(1.0, std::abs(b.objective)));
      }
    }
  }
}

TEST(LpDualSimplexTest, TinyDualBudgetDegradesToPhase1NotWrongAnswers) {
  Rng rng(55);
  Model model = RandomPackingLp(rng, 12, 6);
  SimplexOptions options = WarmOpts();
  options.max_dual_iterations = 1;  // starve the repair loop
  Simplex warm(model, options);
  ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);
  for (int op = 0; op < 15; ++op) {
    const VarId v = static_cast<VarId>(rng.UniformInt(0, model.num_vars() - 1));
    const double fixed = rng.Bernoulli(0.5) ? 1.0 : 0.0;
    model.SetVarBounds(v, fixed, fixed);
    warm.SetVarBounds(v, fixed, fixed);
    ExpectMatchesCold(model, warm.Solve(), "starved dual budget");
    if (HasFatalFailure()) return;
  }
  EXPECT_GT(warm.stats().warm_attempts, 0);
}

TEST(LpDualSimplexTest, ReportValuesOffStillServesValueAccessor) {
  Rng rng(77);
  Model model = RandomPackingLp(rng, 10, 5);
  SimplexOptions options = WarmOpts();
  options.report_values = false;
  Simplex warm(model, options);
  const Solution lean = warm.Solve();
  const Solution cold = ColdSolve(model);
  ASSERT_EQ(lean.status, SolveStatus::kOptimal);
  EXPECT_TRUE(lean.values.empty());
  EXPECT_NEAR(lean.objective, cold.objective, 1e-7 * std::max(1.0, std::abs(cold.objective)));
  // Value() reads the internal primal vector regardless.
  double recomputed = 0.0;
  for (VarId v = 0; v < model.num_vars(); ++v) {
    recomputed += model.var(v).objective * warm.Value(v);
  }
  EXPECT_NEAR(recomputed, lean.objective, 1e-6 * std::max(1.0, std::abs(lean.objective)));
}

TEST(LpDualSimplexTest, RandomizedChurnTraceDifferential) {
  // Mixed-operation fuzz: bound edits + column appends + row appends,
  // every step checked against a cold solve (the warm-vs-cold contract
  // the CI lp-stress shard replays at SFP_LP_DIFF_INSTANCES scale).
  for (std::uint64_t seed = 500; seed < 504; ++seed) {
    Rng rng(seed);
    Model model = RandomPackingLp(rng, 6, 4);
    Simplex warm(model, WarmOpts());
    ASSERT_EQ(warm.Solve().status, SolveStatus::kOptimal);
    for (int op = 0; op < 25; ++op) {
      const int kind = static_cast<int>(rng.UniformInt(0, 3));
      if (kind == 0 && model.num_vars() > 1) {  // fix/relax
        const VarId v = static_cast<VarId>(rng.UniformInt(0, model.num_vars() - 1));
        const double fixed = rng.Bernoulli(0.5) ? 1.0 : 0.0;
        const bool relax = rng.Bernoulli(0.3);
        const double lo = relax ? 0.0 : fixed;
        const double hi = relax ? 1.0 : fixed;
        model.SetVarBounds(v, lo, hi);
        warm.SetVarBounds(v, lo, hi);
      } else if (kind == 1) {  // column append
        std::vector<RowId> rows;
        std::vector<double> coeffs;
        for (RowId r = 0; r < model.num_rows(); ++r) {
          if (rng.Bernoulli(0.6)) {
            rows.push_back(r);
            coeffs.push_back(rng.UniformDouble(0.1, 1.0));
          }
        }
        const double obj = rng.UniformDouble(0.5, 2.0);
        const VarId v = model.AddVar(0.0, 1.0, obj, false);
        for (std::size_t i = 0; i < rows.size(); ++i) {
          model.AddRowCoefficient(rows[i], v, coeffs[i]);
        }
        ASSERT_EQ(warm.AddColumn(0.0, 1.0, obj, rows, coeffs), v);
      } else if (kind == 2 && model.num_rows() < 12) {  // row append
        std::vector<VarId> vars;
        std::vector<double> coeffs;
        for (VarId v = 0; v < model.num_vars(); ++v) {
          if (rng.Bernoulli(0.4)) {
            vars.push_back(v);
            coeffs.push_back(rng.UniformDouble(0.1, 1.0));
          }
        }
        if (vars.empty()) continue;
        const double rhs = rng.UniformDouble(0.5, 2.0);
        ASSERT_EQ(warm.AddRow(Sense::kLe, rhs, vars, coeffs),
                  model.AddRow(vars, coeffs, Sense::kLe, rhs));
      }
      ExpectMatchesCold(model, warm.Solve(), "mixed churn");
      if (HasFatalFailure()) return;
    }
  }
}

}  // namespace
}  // namespace sfp::lp
