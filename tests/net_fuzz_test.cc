// Robustness (fuzz-style) tests: Packet::Parse and Trace::ReadFrom must
// never crash or accept garbage silently, whatever bytes arrive.
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/packet.h"
#include "net/trace.h"

namespace sfp::net {
namespace {

class PacketParseFuzzTest : public ::testing::TestWithParam<int> {};

TEST_P(PacketParseFuzzTest, RandomBytesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 47 + 3);
  for (int trial = 0; trial < 2000; ++trial) {
    const int size = static_cast<int>(rng.UniformInt(0, 200));
    std::vector<std::uint8_t> bytes(static_cast<std::size_t>(size));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(0, 255));
    // Must not crash; result validity is the parser's business.
    auto parsed = Packet::Parse(bytes);
    if (parsed && parsed->ipv4) {
      // Any accepted IPv4 header must have a valid checksum.
      EXPECT_EQ(parsed->ipv4->ComputeChecksum(), parsed->ipv4->checksum);
    }
  }
}

TEST_P(PacketParseFuzzTest, MutatedValidFramesNeverCrash) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 1);
  const auto base = MakeTcpPacket(3, Ipv4Address::Of(10, 0, 0, 1),
                                  Ipv4Address::Of(10, 0, 0, 2), 1234, 80, 128)
                        .Serialize();
  for (int trial = 0; trial < 2000; ++trial) {
    auto bytes = base;
    const int flips = static_cast<int>(rng.UniformInt(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto at =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(bytes.size()) - 1));
      bytes[at] ^= static_cast<std::uint8_t>(1 << rng.UniformInt(0, 7));
    }
    // Occasionally truncate too.
    if (rng.Bernoulli(0.3)) {
      bytes.resize(static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(bytes.size()))));
    }
    (void)Packet::Parse(bytes);  // must not crash
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketParseFuzzTest, ::testing::Range(0, 4));

TEST(TraceFuzzTest, RandomStreamsNeverCrash) {
  Rng rng(99);
  for (int trial = 0; trial < 500; ++trial) {
    const int size = static_cast<int>(rng.UniformInt(0, 300));
    std::string bytes(static_cast<std::size_t>(size), '\0');
    for (auto& b : bytes) b = static_cast<char>(rng.UniformInt(0, 255));
    std::stringstream stream(bytes);
    (void)Trace::ReadFrom(stream);  // must not crash
  }
}

TEST(TraceFuzzTest, MutatedValidTraceNeverCrashes) {
  Trace trace;
  for (int i = 0; i < 5; ++i) {
    trace.Append(i * 100.0, MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                          Ipv4Address::Of(2, 2, 2, 2), 1, 2, 64));
  }
  std::stringstream buffer;
  ASSERT_TRUE(trace.WriteTo(buffer));
  const std::string base = buffer.str();

  Rng rng(7);
  for (int trial = 0; trial < 500; ++trial) {
    std::string bytes = base;
    const auto at =
        static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[at] = static_cast<char>(rng.UniformInt(0, 255));
    std::stringstream stream(bytes);
    auto loaded = Trace::ReadFrom(stream);
    if (loaded) {
      // Accepted traces must still be internally consistent.
      double last = -1;
      for (const auto& record : loaded->records()) {
        EXPECT_GE(record.timestamp_ns, last);
        last = record.timestamp_ns;
      }
    }
  }
}

}  // namespace
}  // namespace sfp::net
