// Tests for the LP/MIP presolve pass.
#include "lp/presolve.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/mip.h"
#include "lp/simplex.h"

namespace sfp::lp {
namespace {

TEST(PresolveTest, RemovesEmptyAndRedundantRows) {
  Model model;
  VarId x = model.AddVar(0, 5, 1, false, "x");
  VarId y = model.AddVar(0, 5, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 100);  // redundant: max 10 <= 100
  model.AddRow({x, y}, {0, 0}, Sense::kLe, 3);    // empty, feasible
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 6);    // binding

  const auto stats = Presolve(model);
  EXPECT_FALSE(stats.infeasible);
  EXPECT_EQ(stats.rows_removed, 2);
  EXPECT_EQ(model.num_rows(), 1);

  Simplex solver(model);
  auto solution = solver.Solve();
  ASSERT_EQ(solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(solution.objective, 6.0, 1e-6);
}

TEST(PresolveTest, SingletonRowsBecomeBounds) {
  Model model;
  VarId x = model.AddVar(0, 100, 1, false, "x");
  model.AddRow({x}, {2}, Sense::kLe, 14);   // x <= 7
  model.AddRow({x}, {1}, Sense::kGe, 3);    // x >= 3
  model.AddRow({x}, {-1}, Sense::kGe, -5);  // x <= 5

  const auto stats = Presolve(model);
  EXPECT_FALSE(stats.infeasible);
  EXPECT_EQ(model.num_rows(), 0);
  EXPECT_GE(stats.bounds_tightened, 2);
  EXPECT_NEAR(model.var(x).lower, 3.0, 1e-9);
  EXPECT_NEAR(model.var(x).upper, 5.0, 1e-9);
}

TEST(PresolveTest, DetectsEmptyRowInfeasibility) {
  Model model;
  VarId x = model.AddVar(0, 1, 1, false, "x");
  model.AddRow({x}, {0}, Sense::kGe, 2);  // 0 >= 2
  EXPECT_TRUE(Presolve(model).infeasible);
}

TEST(PresolveTest, DetectsCrossedBoundInfeasibility) {
  Model model;
  VarId x = model.AddVar(0, 10, 1, false, "x");
  model.AddRow({x}, {1}, Sense::kGe, 8);
  model.AddRow({x}, {1}, Sense::kLe, 3);
  EXPECT_TRUE(Presolve(model).infeasible);
}

TEST(PresolveTest, DetectsActivityInfeasibility) {
  Model model;
  VarId x = model.AddVar(0, 1, 1, false, "x");
  VarId y = model.AddVar(0, 1, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kGe, 5);  // max activity 2 < 5
  EXPECT_TRUE(Presolve(model).infeasible);
}

TEST(PresolveTest, RoundsIntegerBounds) {
  Model model;
  VarId x = model.AddVar(0.3, 4.7, 1, true, "x");
  const auto stats = Presolve(model);
  EXPECT_FALSE(stats.infeasible);
  EXPECT_EQ(model.var(x).lower, 1.0);
  EXPECT_EQ(model.var(x).upper, 4.0);
}

TEST(PresolveTest, SingletonOnIntegerRoundsBound) {
  Model model;
  VarId x = model.AddVar(0, 10, 1, true, "x");
  model.AddRow({x}, {2}, Sense::kLe, 7);  // x <= 3.5 -> 3
  Presolve(model);
  EXPECT_EQ(model.var(x).upper, 3.0);
}

// Property: presolve must not change the optimum of random LPs/MIPs.
class PresolveEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalenceTest, OptimaMatch) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 409 + 17);
  const int n = static_cast<int>(rng.UniformInt(3, 8));
  const int m = static_cast<int>(rng.UniformInt(2, 6));
  const bool integer = rng.Bernoulli(0.5);

  Model model;
  std::vector<VarId> vars;
  for (int v = 0; v < n; ++v) {
    vars.push_back(model.AddVar(0, rng.UniformDouble(1, 6), rng.UniformDouble(-2, 6),
                                integer));
  }
  for (int r = 0; r < m; ++r) {
    std::vector<double> coeffs;
    for (int v = 0; v < n; ++v) {
      coeffs.push_back(rng.Bernoulli(0.3) ? 0.0 : rng.UniformDouble(0, 3));
    }
    model.AddRow(vars, coeffs, Sense::kLe, rng.UniformDouble(2, 25));
  }
  // Sprinkle singleton and redundant rows.
  model.AddRow({vars[0]}, {1.0}, Sense::kLe, rng.UniformDouble(1, 6));
  model.AddRow(vars, std::vector<double>(static_cast<std::size_t>(n), 1.0), Sense::kLe,
               1000.0);

  Model presolved = model;  // value copy
  const auto stats = Presolve(presolved);
  ASSERT_FALSE(stats.infeasible);

  if (integer) {
    MipSolver a(model), b(presolved);
    const auto ra = a.Solve();
    const auto rb = b.Solve();
    ASSERT_EQ(ra.solution.status, SolveStatus::kOptimal);
    ASSERT_EQ(rb.solution.status, SolveStatus::kOptimal);
    EXPECT_NEAR(ra.solution.objective, rb.solution.objective, 1e-5);
  } else {
    Simplex a(model), b(presolved);
    const auto ra = a.Solve();
    const auto rb = b.Solve();
    ASSERT_EQ(ra.status, SolveStatus::kOptimal);
    ASSERT_EQ(rb.status, SolveStatus::kOptimal);
    EXPECT_NEAR(ra.objective, rb.objective, 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomModels, PresolveEquivalenceTest, ::testing::Range(0, 20));

}  // namespace
}  // namespace sfp::lp
