// Tests for cross-tenant recirculation pass co-scheduling (DESIGN.md
// "Cross-tenant pass sharing"): the stage-window ledger, the
// co-scheduler's steering and never-worse guarantees, departure-time
// window compaction through SfpSystem, and — most importantly — the
// equivalence contract: a co-scheduled layout must be observably
// identical to the per-tenant packed reference, packet for packet and
// telemetry field for telemetry field (pass-derived fields excluded:
// reducing those is the feature).
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <vector>

#include "bench/xt_population.h"
#include "common/metrics.h"
#include "dataplane/data_plane.h"
#include "dataplane/telemetry.h"
#include "core/sfp_system.h"
#include "nf/rate_limiter.h"
#include "workload/sfc_gen.h"
#include "workload/traffic.h"

namespace sfp::dataplane {
namespace {

using nf::NfConfig;
using nf::NfType;
using switchsim::FieldMatch;
using switchsim::SwitchConfig;

/// Src-ternary firewall with `rules` deny rules: reads the source
/// address NAT rewrites, so it must precede a NAT in the same chain.
NfConfig OrderedFw(int rules) {
  NfConfig config;
  config.type = NfType::kFirewall;
  for (int r = 0; r < rules; ++r) {
    config.rules.push_back(nf::Firewall::Deny(
        FieldMatch::Ternary(0x0A000000u + (static_cast<std::uint32_t>(r) << 8), 0xFFFFFF00),
        FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Range(443, 443),
        FieldMatch::Any()));
  }
  return config;
}

/// Port-only firewall: independent of every other NF type used here.
NfConfig UnorderedFw(int rules) {
  NfConfig config;
  config.type = NfType::kFirewall;
  for (int r = 0; r < rules; ++r) {
    const auto port = static_cast<std::uint16_t>(7000 + r);
    config.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                              FieldMatch::Any(),
                                              FieldMatch::Range(port, port),
                                              FieldMatch::Any()));
  }
  return config;
}

NfConfig NatConfig() {
  NfConfig config;
  config.type = NfType::kNat;
  config.rules.push_back(nf::Nat::Translate(net::Ipv4Address::Of(10, 1, 2, 3),
                                            net::Ipv4Address::Of(203, 0, 113, 7)));
  return config;
}

Sfc MakeSfc(TenantId tenant, std::vector<NfConfig> chain) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 2.0;
  sfc.chain = std::move(chain);
  return sfc;
}

// ---- steering behaviour ---------------------------------------------

// A successor-free firewall has two instances to choose from (s1 and
// s6 on the bench layout): per-tenant packing takes the earliest, the
// co-scheduler the latest — same pass count either way.
TEST(XtPackingTest, SteersSuccessorFreeNfsToLateStages) {
  auto per_tenant = bench::xt::MakeXtPlane(false);
  auto co_sched = bench::xt::MakeXtPlane(true);
  const auto sfc = MakeSfc(1, {UnorderedFw(4)});

  const auto base = per_tenant.AllocateSfc(sfc);
  const auto co = co_sched.AllocateSfc(sfc);
  ASSERT_TRUE(base.ok) << base.error;
  ASSERT_TRUE(co.ok) << co.error;
  EXPECT_EQ(base.passes, 1);
  EXPECT_EQ(co.passes, 1);
  ASSERT_EQ(base.placements.size(), 1u);
  ASSERT_EQ(co.placements.size(), 1u);
  EXPECT_EQ(base.placements[0].stage, 1);  // earliest firewall instance
  EXPECT_EQ(co.placements[0].stage, 6);    // latest — early capacity preserved
}

// An order-constrained firewall (must precede its NAT) keeps the early
// instance under co-scheduling: it carries a successor, so phase 1
// places it exactly like per-tenant packing does.
TEST(XtPackingTest, OrderConstrainedNfsKeepEarlyStages) {
  auto co_sched = bench::xt::MakeXtPlane(true);
  const auto result = co_sched.AllocateSfc(MakeSfc(1, {OrderedFw(4), NatConfig()}));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 1);
  ASSERT_EQ(result.placements.size(), 2u);
  EXPECT_EQ(result.placements[0].stage, 1);  // firewall before the NAT (s3)
  EXPECT_EQ(result.placements[1].stage, 3);
}

// The engineered bench population: per-tenant packing folds the
// ordered tenants that lose the race for the early firewall instance,
// co-scheduling folds nobody. This is the tentpole acceptance bar
// (>= 20% aggregate passes saved) pinned at unit-test granularity.
TEST(XtPackingTest, PopulationSavesAggregatePasses) {
  auto per_tenant = bench::xt::MakeXtPlane(false);
  auto co_sched = bench::xt::MakeXtPlane(true);
  std::int64_t base_passes = 0, co_passes = 0;
  for (const auto& sfc : bench::xt::BuildXtPopulation(2.0)) {
    const auto base = per_tenant.AllocateSfc(sfc);
    const auto co = co_sched.AllocateSfc(sfc);
    ASSERT_TRUE(base.ok) << "tenant " << sfc.tenant << ": " << base.error;
    ASSERT_TRUE(co.ok) << "tenant " << sfc.tenant << ": " << co.error;
    EXPECT_LE(co.passes, base.passes) << "tenant " << sfc.tenant;  // never worse
    base_passes += base.passes;
    co_passes += co.passes;
  }
  EXPECT_EQ(base_passes, 71);
  EXPECT_EQ(co_passes, 50);
  EXPECT_GE(100 * (base_passes - co_passes) / base_passes, 20);
  EXPECT_TRUE(co_sched.AuditXtLedger().empty());
}

// With the flag off (the default), the ledger is absent, no xt metric
// is exported, and placements are bit-identical to per-tenant packing.
TEST(XtPackingTest, OffByDefaultMatchesPerTenantPacking) {
  SwitchConfig config;
  EXPECT_FALSE(config.cross_tenant_packing);

  auto reference = bench::xt::MakeXtPlane(false);
  auto also_off = bench::xt::MakeXtPlane(false);
  EXPECT_EQ(reference.xt_ledger(), nullptr);
  for (const auto& sfc : bench::xt::BuildXtPopulation(2.0)) {
    const auto a = reference.AllocateSfc(sfc);
    const auto b = also_off.AllocateSfc(sfc);
    ASSERT_EQ(a.ok, b.ok);
    if (!a.ok) continue;
    ASSERT_EQ(a.passes, b.passes);
    ASSERT_EQ(a.placements.size(), b.placements.size());
    for (std::size_t p = 0; p < a.placements.size(); ++p) {
      EXPECT_EQ(a.placements[p].stage, b.placements[p].stage);
      EXPECT_EQ(a.placements[p].pass, b.placements[p].pass);
    }
  }
  common::metrics::Registry registry;
  reference.pipeline().ExportMetrics(registry);
  for (const auto& counter : registry.Counters()) {
    EXPECT_EQ(counter.name.rfind("parallelism.xt.", 0), std::string::npos)
        << counter.name << " exported with cross_tenant_packing off";
  }
}

// xt metrics are exported when the flag is on, and the window ledger's
// open/join accounting shows up in them.
TEST(XtPackingTest, ExportsWindowMetricsWhenEnabled) {
  auto co_sched = bench::xt::MakeXtPlane(true);
  for (const auto& sfc : bench::xt::BuildXtPopulation(2.0)) {
    ASSERT_TRUE(co_sched.AllocateSfc(sfc).ok);
  }
  common::metrics::Registry registry;
  co_sched.pipeline().ExportMetrics(registry);
  std::map<std::string, std::uint64_t> counters;
  for (const auto& counter : registry.Counters()) counters[counter.name] = counter.value;
  ASSERT_TRUE(counters.count("parallelism.xt.allocations"));
  ASSERT_TRUE(counters.count("parallelism.xt.windows_opened"));
  ASSERT_TRUE(counters.count("parallelism.xt.windows_joined"));
  EXPECT_GT(counters["parallelism.xt.allocations"], 0u);
  EXPECT_GT(counters["parallelism.xt.windows_opened"], 0u);
  // 50 tenants share 8 stage windows: joins dominate opens.
  EXPECT_GT(counters["parallelism.xt.windows_joined"],
            counters["parallelism.xt.windows_opened"]);
}

// ---- ledger conservation under churn --------------------------------

// Admit/remove churn over the population: after every mutation the
// ledger audit must hold (tenant sets match, per-tenant entries match
// the retained chains, window sums match the claims, ledger total
// matches the pipeline's occupancy).
TEST(XtPackingTest, LedgerAuditHoldsUnderChurn) {
  auto co_sched = bench::xt::MakeXtPlane(true);
  const auto population = bench::xt::BuildXtPopulation(2.0);
  for (const auto& sfc : population) {
    ASSERT_TRUE(co_sched.AllocateSfc(sfc).ok);
    ASSERT_TRUE(co_sched.AuditXtLedger().empty());
  }
  // Remove every third tenant, then re-admit them.
  for (std::size_t i = 0; i < population.size(); i += 3) {
    ASSERT_TRUE(co_sched.DeallocateSfc(population[i].tenant));
    const auto issues = co_sched.AuditXtLedger();
    ASSERT_TRUE(issues.empty()) << issues.front();
  }
  for (std::size_t i = 0; i < population.size(); i += 3) {
    ASSERT_TRUE(co_sched.AllocateSfc(population[i]).ok);
    const auto issues = co_sched.AuditXtLedger();
    ASSERT_TRUE(issues.empty()) << issues.front();
  }
  ASSERT_NE(co_sched.xt_ledger(), nullptr);
  EXPECT_EQ(co_sched.xt_ledger()->NumTenants(), population.size());
}

// ---- departure-time window compaction (SfpSystem) -------------------

/// Small system on the bench layout with a tight stage budget: a hog
/// tenant fills the early firewall instance, folding a later ordered
/// tenant; the hog's departure must trigger compaction.
core::SfpSystem MakeCompactionSystem() {
  SwitchConfig config;
  config.num_stages = 8;
  config.blocks_per_stage = 1;
  config.entries_per_block = 30;
  config.nf_parallelism = true;
  config.cross_tenant_packing = true;
  core::SfpSystem system(config);
  system.ProvisionPhysical(std::vector<std::vector<NfType>>{
      {NfType::kClassifier}, {NfType::kFirewall}, {NfType::kRouter}, {NfType::kNat},
      {NfType::kLoadBalancer}, {NfType::kClassifier}, {NfType::kFirewall},
      {NfType::kLoadBalancer}});
  return system;
}

TEST(XtPackingTest, DepartureCompactionRepacksFoldedTenant) {
  auto system = MakeCompactionSystem();
  // Hog: 29 rules + catch-all = 30 entries, exactly the s1 budget. It
  // is order-constrained (firewall before NAT), so phase 1 puts it on
  // s1 even under co-scheduling.
  const auto hog = MakeSfc(1, {OrderedFw(29), NatConfig()});
  const auto folded = MakeSfc(2, {OrderedFw(8), NatConfig()});
  ASSERT_TRUE(system.AdmitTenant(hog).admitted);
  const auto admit = system.AdmitTenant(folded);
  ASSERT_TRUE(admit.admitted) << admit.reason;
  // s1 is full: tenant 2's firewall lands on s6, after the NAT (s3),
  // so the chain folds into two passes.
  EXPECT_EQ(admit.passes, 2);

  // Give tenant 2 a telemetry history that compaction must not touch.
  switchsim::ProcessResult sample;
  sample.meta.tenant_id = 2;
  sample.passes = 2;
  sample.latency_ns = 900.0;
  for (int i = 0; i < 5; ++i) system.Telemetry().Record(1000, sample);
  const auto before = system.Telemetry().Tenant(2);

  const double charged_before = system.Stats().backplane_gbps;
  ASSERT_TRUE(system.RemoveTenant(1));

  // Compaction re-planned tenant 2 into a single pass through the
  // atomic update path, shrinking its eq. 26 backplane charge.
  const auto* allocation = system.data_plane().FindAllocation(2);
  ASSERT_NE(allocation, nullptr);
  EXPECT_EQ(allocation->passes, 1);
  EXPECT_LT(system.Stats().backplane_gbps, charged_before);
  EXPECT_EQ(system.data_plane().pipeline().xt_compactions(), 1u);
  EXPECT_EQ(system.data_plane().pipeline().xt_compaction_passes_saved(), 1u);
  const auto issues = system.data_plane().AuditXtLedger();
  EXPECT_TRUE(issues.empty()) << issues.front();

  // The telemetry series is byte-identical: compaction moves rules,
  // never counters.
  const auto after = system.Telemetry().Tenant(2);
  EXPECT_EQ(before.packets, after.packets);
  EXPECT_EQ(before.bytes, after.bytes);
  EXPECT_EQ(before.drops, after.drops);
  EXPECT_EQ(before.recirculated_packets, after.recirculated_packets);
  EXPECT_EQ(before.total_passes, after.total_passes);
  EXPECT_EQ(before.total_latency_ns, after.total_latency_ns);
  EXPECT_EQ(before.max_latency_ns, after.max_latency_ns);
}

// Without a freeing departure there is nothing to compact: removing an
// unrelated single-pass tenant must not move anybody.
TEST(XtPackingTest, NoCompactionWithoutFreedCapacity) {
  auto system = MakeCompactionSystem();
  ASSERT_TRUE(system.AdmitTenant(MakeSfc(1, {OrderedFw(8), NatConfig()})).admitted);
  ASSERT_TRUE(system.AdmitTenant(MakeSfc(2, {UnorderedFw(4)})).admitted);
  ASSERT_TRUE(system.RemoveTenant(2));
  EXPECT_EQ(system.data_plane().pipeline().xt_compactions(), 0u);
  const auto* allocation = system.data_plane().FindAllocation(1);
  ASSERT_NE(allocation, nullptr);
  EXPECT_EQ(allocation->passes, 1);
}

// Churn round through SfpSystem: admissions and departures (with
// compaction firing) keep the ledger audit and the eq. 26 ledger
// consistent at every step.
TEST(XtPackingTest, SystemChurnKeepsLedgerConsistent) {
  SwitchConfig config;
  config.num_stages = 8;
  config.blocks_per_stage = 1;
  config.entries_per_block = bench::xt::kEntriesPerBlock;
  config.nf_parallelism = true;
  config.cross_tenant_packing = true;
  core::SfpSystem system(config);
  system.ProvisionPhysical(std::vector<std::vector<NfType>>{
      {NfType::kClassifier}, {NfType::kFirewall}, {NfType::kRouter}, {NfType::kNat},
      {NfType::kLoadBalancer}, {NfType::kClassifier}, {NfType::kFirewall},
      {NfType::kLoadBalancer}});
  const auto population = bench::xt::BuildXtPopulation(1.0);
  Rng rng(4242);
  std::vector<bool> admitted(population.size(), false);
  int mutations = 0;
  for (int round = 0; round < 200; ++round) {
    const auto pick = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<int>(population.size()) - 1));
    if (admitted[pick]) {
      ASSERT_TRUE(system.RemoveTenant(population[pick].tenant));
      admitted[pick] = false;
    } else {
      const auto result = system.AdmitTenant(population[pick]);
      if (result.admitted) admitted[pick] = true;
    }
    ++mutations;
    const auto issues = system.data_plane().AuditXtLedger();
    ASSERT_TRUE(issues.empty()) << "after mutation " << mutations << ": " << issues.front();
  }
}

// ---- randomized differential: co-scheduled == per-tenant packed -----

int DiffChains() {
  if (const char* env = std::getenv("SFP_XT_DIFF_CHAINS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 300;
}

/// Twin planes on a seed-shuffled layout: `packed` runs per-tenant
/// packing (the PR 9 reference), `co` the cross-tenant co-scheduler.
/// Every NF type is installed once per plane, so the single
/// rate-limiter instance carries identical bucket state on both sides
/// as long as packets are processed in lockstep.
struct XtTwins {
  DataPlane packed;
  DataPlane co;

  static SwitchConfig Config(bool cross_tenant) {
    SwitchConfig config;
    config.num_stages = nf::kNumNfTypes;
    config.blocks_per_stage = 6;
    config.entries_per_block = 100;
    config.nf_parallelism = true;
    config.cross_tenant_packing = cross_tenant;
    return config;
  }

  explicit XtTwins(Rng& rng) : packed(Config(false)), co(Config(true)) {
    std::vector<int> stages(static_cast<std::size_t>(nf::kNumNfTypes));
    for (int t = 0; t < nf::kNumNfTypes; ++t) stages[static_cast<std::size_t>(t)] = t;
    rng.Shuffle(stages);
    for (int t = 0; t < nf::kNumNfTypes; ++t) {
      const int stage = stages[static_cast<std::size_t>(t)];
      const auto type = static_cast<NfType>(t);
      EXPECT_TRUE(packed.InstallPhysicalNf(stage, type));
      EXPECT_TRUE(co.InstallPhysicalNf(stage, type));
      if (type == NfType::kRateLimiter) {
        static_cast<nf::RateLimiter*>(packed.PhysicalNf(stage, type))->AddBucket(100.0, 10.0);
        static_cast<nf::RateLimiter*>(co.PhysicalNf(stage, type))->AddBucket(100.0, 10.0);
      }
    }
  }
};

TEST(XtPackingEquivalenceTest, CoScheduledMatchesPerTenantPacked) {
  const int chains = DiffChains();
  int compared = 0;
  for (int i = 0; i < chains; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 6151 + 29);
    XtTwins twins(rng);
    if (::testing::Test::HasFatalFailure()) return;

    // Several tenants per round so the co-scheduler actually sees
    // cross-tenant windows, not just a lone chain.
    constexpr int kTenants = 3;
    std::vector<TenantId> admitted;
    for (TenantId tenant = 1; tenant <= kTenants; ++tenant) {
      const int chain_len = static_cast<int>(rng.UniformInt(2, 6));
      const auto sfc = workload::GenerateConcreteSfc(tenant, chain_len, 5.0, rng,
                                                     /*rules_per_nf=*/8);
      const auto packed_result = twins.packed.AllocateSfc(sfc);
      const auto co_result = twins.co.AllocateSfc(sfc);
      // Co-scheduling only widens admissibility; whatever the packed
      // reference admits, the co-scheduler admits at no more passes.
      if (packed_result.ok) {
        ASSERT_TRUE(co_result.ok) << "chain " << i << ": " << co_result.error;
        ASSERT_LE(co_result.passes, packed_result.passes) << "chain " << i;
      }
      if (packed_result.ok && co_result.ok) admitted.push_back(tenant);
    }
    if (admitted.empty()) continue;
    ++compared;

    // Lockstep packet differential, telemetry recorded per plane.
    TelemetryCollector packed_telemetry, co_telemetry;
    for (const TenantId tenant : admitted) {
      workload::PacketSizeProfile profile;
      const auto packets =
          workload::GenerateFlows(tenant, /*num_flows=*/6, /*count=*/40, profile, rng);
      for (const auto& packet : packets) {
        const auto a = twins.packed.Process(packet);
        const auto b = twins.co.Process(packet);
        packed_telemetry.Record(1000, a);
        co_telemetry.Record(1000, b);
        ASSERT_EQ(a.meta.dropped, b.meta.dropped) << "chain " << i;
        ASSERT_EQ(a.meta.drop_reason, b.meta.drop_reason) << "chain " << i;
        if (a.meta.dropped) continue;  // post-drop header state is unobservable
        ASSERT_EQ(a.meta.flow_class, b.meta.flow_class) << "chain " << i;
        ASSERT_EQ(a.meta.egress_port, b.meta.egress_port) << "chain " << i;
        ASSERT_EQ(a.meta.scratch, b.meta.scratch) << "chain " << i;
        ASSERT_TRUE(a.packet.ipv4.has_value());
        ASSERT_TRUE(b.packet.ipv4.has_value());
        ASSERT_EQ(a.packet.ipv4->src, b.packet.ipv4->src) << "chain " << i;
        ASSERT_EQ(a.packet.ipv4->dst, b.packet.ipv4->dst) << "chain " << i;
        ASSERT_EQ(a.packet.ipv4->ttl, b.packet.ipv4->ttl) << "chain " << i;
        ASSERT_EQ(a.packet.Tuple().Hash(), b.packet.Tuple().Hash()) << "chain " << i;
      }
    }
    // Per-tenant telemetry matches on every field that is not derived
    // from the pass count (fewer passes is the feature, so
    // recirculated/total_passes/latency legitimately shrink).
    for (const TenantId tenant : admitted) {
      const auto a = packed_telemetry.Tenant(tenant);
      const auto b = co_telemetry.Tenant(tenant);
      ASSERT_EQ(a.packets, b.packets) << "chain " << i << " tenant " << tenant;
      ASSERT_EQ(a.bytes, b.bytes) << "chain " << i << " tenant " << tenant;
      ASSERT_EQ(a.drops, b.drops) << "chain " << i << " tenant " << tenant;
      ASSERT_LE(b.total_passes, a.total_passes) << "chain " << i << " tenant " << tenant;
    }
  }
  EXPECT_GT(compared, 0);
}

TEST(XtPackingEquivalenceTest, CompiledMatchesInterpretedOnCoScheduledLayouts) {
  const int chains = std::min(DiffChains(), 40);
  for (int i = 0; i < chains; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 92821 + 11);
    Rng rng_copy = rng;  // same stream -> identical shuffled layouts
    XtTwins interpreted_twins(rng);
    XtTwins compiled_twins(rng_copy);
    if (::testing::Test::HasFatalFailure()) return;
    compiled_twins.co.EnableCompiledPlans();

    const int chain_len = static_cast<int>(rng.UniformInt(2, 6));
    const auto sfc = workload::GenerateConcreteSfc(/*tenant=*/1, chain_len, 5.0, rng,
                                                   /*rules_per_nf=*/8);
    const auto interpreted = interpreted_twins.co.AllocateSfc(sfc);
    const auto compiled = compiled_twins.co.AllocateSfc(sfc);
    ASSERT_EQ(interpreted.ok, compiled.ok) << "chain " << i;
    if (!interpreted.ok) continue;
    ASSERT_EQ(interpreted.passes, compiled.passes) << "chain " << i;

    workload::PacketSizeProfile profile;
    const auto packets =
        workload::GenerateFlows(/*tenant=*/1, /*num_flows=*/8, /*count=*/128, profile, rng);
    switchsim::BatchOptions options;
    options.num_threads = 1;
    options.min_parallel_batch = 1;
    const auto a = interpreted_twins.co.ProcessBatch(packets, options);
    const auto b = compiled_twins.co.ProcessBatch(packets, options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
      ASSERT_EQ(a[p].meta.dropped, b[p].meta.dropped) << "chain " << i << " pkt " << p;
      ASSERT_EQ(a[p].meta.drop_reason, b[p].meta.drop_reason) << "chain " << i;
      if (a[p].meta.dropped) continue;
      ASSERT_EQ(a[p].meta.flow_class, b[p].meta.flow_class) << "chain " << i;
      ASSERT_EQ(a[p].meta.egress_port, b[p].meta.egress_port) << "chain " << i;
      ASSERT_EQ(a[p].meta.scratch, b[p].meta.scratch) << "chain " << i;
      ASSERT_EQ(a[p].passes, b[p].passes) << "chain " << i;
      ASSERT_EQ(a[p].packet.Tuple().Hash(), b[p].packet.Tuple().Hash()) << "chain " << i;
    }
  }
}

}  // namespace
}  // namespace sfp::dataplane
