// Fault-injection tests for atomic-update rollback (§V-E under
// failures): an injected fault at every op index must leave the data
// plane byte-for-byte equivalent to the pre-batch state, and a double
// fault (rollback restore also failing) must be reported as a
// consistency divergence instead of silently losing tenants.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/faultinject.h"
#include "dataplane/data_plane.h"
#include "nf/firewall.h"

namespace sfp::dataplane {
namespace {

using common::faultinject::FaultSpec;
using common::faultinject::ScopedFaultPlan;
using net::Ipv4Address;
using net::MakeTcpPacket;
using Op = DataPlane::UpdateOp;

nf::NfConfig Fw(std::uint16_t port, int extra_rules = 0) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(port, port),
      switchsim::FieldMatch::Any()));
  for (int i = 0; i < extra_rules; ++i) {
    config.rules.push_back(nf::Firewall::Deny(
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Range(10000 + static_cast<std::uint64_t>(i),
                                     10000 + static_cast<std::uint64_t>(i)),
        switchsim::FieldMatch::Any()));
  }
  return config;
}

Sfc MakeSfc(TenantId tenant, std::uint16_t port, int extra_rules = 0) {
  Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {Fw(port, extra_rules)};
  return sfc;
}

switchsim::SwitchConfig SmallSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 1;
  config.blocks_per_stage = 1;
  config.entries_per_block = 50;
  return config;
}

/// Drop verdicts for a fixed probe matrix (tenants 1..4 x interesting
/// ports) — a packet-level fingerprint of the installed rule set.
std::vector<bool> ProbeFingerprint(DataPlane& dp) {
  std::vector<bool> dropped;
  for (std::uint16_t tenant = 1; tenant <= 4; ++tenant) {
    for (const std::uint16_t port : {std::uint16_t{80}, std::uint16_t{443},
                                     std::uint16_t{22}, std::uint16_t{8080}}) {
      auto out = dp.Process(MakeTcpPacket(tenant, Ipv4Address::Of(1, 1, 1, 1),
                                          Ipv4Address::Of(2, 2, 2, 2), 9, port, 64));
      dropped.push_back(out.meta.dropped);
    }
  }
  return dropped;
}

TEST(RollbackFaultTest, InjectedFaultAtEveryOpIndexRollsBack) {
  const std::vector<Op> ops = {
      Op{Op::Kind::kRemove, MakeSfc(1, 80)},
      Op{Op::Kind::kAdmit, MakeSfc(2, 443)},
      Op{Op::Kind::kAdmit, MakeSfc(3, 22)},
  };
  for (std::size_t fail_at = 0; fail_at < ops.size(); ++fail_at) {
    SCOPED_TRACE("fault before op " + std::to_string(fail_at));
    DataPlane dp(SmallSwitch());
    ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
    ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);
    const auto entries_before = dp.pipeline().TotalEntriesUsed();
    const auto fingerprint_before = ProbeFingerprint(dp);

    DataPlane::BatchResult result;
    {
      ScopedFaultPlan plan(
          {.seed = 1, .faults = {FaultSpec::Nth("dataplane.apply_op", fail_at + 1)}});
      result = dp.ApplyAtomic(ops);
    }
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.failed_op, static_cast<int>(fail_at));
    EXPECT_EQ(result.error, "injected fault before op");
    EXPECT_EQ(result.consistency, DataPlane::BatchResult::Consistency::kConsistent);

    // Differential check: identical resources and identical packet
    // verdicts to the pre-batch plane.
    EXPECT_TRUE(dp.IsAllocated(1));
    EXPECT_FALSE(dp.IsAllocated(2));
    EXPECT_FALSE(dp.IsAllocated(3));
    EXPECT_EQ(dp.pipeline().TotalEntriesUsed(), entries_before);
    EXPECT_EQ(ProbeFingerprint(dp), fingerprint_before);
  }
}

TEST(RollbackFaultTest, TableInstallFaultDuringBatchAdmitRollsBack) {
  // Same differential check, but the fault fires inside the switch
  // table (switchsim.table.add_entry) during the batch's admit op.
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);
  const auto entries_before = dp.pipeline().TotalEntriesUsed();
  const auto fingerprint_before = ProbeFingerprint(dp);

  DataPlane::BatchResult result;
  {
    // Hit #1 of add_entry lands in tenant 3's install (ops run in
    // order; the remove does not add entries; tenant 2's install, with
    // max_fires capping, is allowed through by targeting the Nth hit
    // after tenant 2's two entries: rule + catch-all).
    ScopedFaultPlan plan(
        {.seed = 1, .faults = {FaultSpec::Nth("switchsim.table.add_entry", 3)}});
    result = dp.ApplyAtomic({
        Op{Op::Kind::kAdmit, MakeSfc(2, 443)},
        Op{Op::Kind::kAdmit, MakeSfc(3, 22)},
    });
  }
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_op, 1);
  EXPECT_NE(result.error.find("transient rule-install failure"), std::string::npos)
      << result.error;
  EXPECT_EQ(result.consistency, DataPlane::BatchResult::Consistency::kConsistent);
  EXPECT_TRUE(dp.IsAllocated(1));
  EXPECT_FALSE(dp.IsAllocated(2));
  EXPECT_FALSE(dp.IsAllocated(3));
  EXPECT_EQ(dp.pipeline().TotalEntriesUsed(), entries_before);
  EXPECT_EQ(ProbeFingerprint(dp), fingerprint_before);
}

TEST(RollbackFaultTest, AllocateUnwindsPartialInstallOnFault) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  const auto entries_before = dp.pipeline().TotalEntriesUsed();

  AllocationResult result;
  {
    // The SFC installs 1 rule + 1 catch-all; failing the second install
    // leaves a partial state that AllocateSfc must unwind itself.
    ScopedFaultPlan plan(
        {.seed = 1, .faults = {FaultSpec::Nth("dataplane.install_rule", 2)}});
    result = dp.AllocateSfc(MakeSfc(1, 80, /*extra_rules=*/3));
  }
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.code, AllocCode::kInstallFault);
  EXPECT_TRUE(result.transient());
  EXPECT_TRUE(result.placements.empty());
  EXPECT_FALSE(dp.IsAllocated(1));
  EXPECT_EQ(dp.pipeline().TotalEntriesUsed(), entries_before);
}

TEST(RollbackFaultTest, DoubleFaultDuringRollbackReportsDivergence) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);

  DataPlane::BatchResult result;
  {
    // Op 0 removes tenant 1; the injected fault before op 1 triggers
    // rollback; every restore attempt for tenant 1 then hits a
    // persistent install fault. The plane must report the divergence
    // (and which tenants were lost) instead of aborting.
    ScopedFaultPlan plan({.seed = 1,
                          .faults = {FaultSpec::Nth("dataplane.apply_op", 2),
                                     FaultSpec::Always("dataplane.install_rule")}});
    result = dp.ApplyAtomic({
        Op{Op::Kind::kRemove, MakeSfc(1, 80)},
        Op{Op::Kind::kAdmit, MakeSfc(2, 443)},
    });
  }
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.failed_op, 1);
  EXPECT_EQ(result.consistency, DataPlane::BatchResult::Consistency::kDiverged);
  EXPECT_EQ(result.lost_tenants, (std::vector<TenantId>{1}));
  // Tenant 1 really is gone — the report is truthful — and no partial
  // rule set was left behind.
  EXPECT_FALSE(dp.IsAllocated(1));
  EXPECT_FALSE(dp.IsAllocated(2));
  auto out = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  EXPECT_FALSE(out.meta.dropped);  // tenant 1's deny rule no longer matches
}

TEST(RollbackFaultTest, RetriedRestoreSucceedsAndStaysConsistent) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.AllocateSfc(MakeSfc(1, 80)).ok);
  const auto fingerprint_before = ProbeFingerprint(dp);

  DataPlane::BatchResult result;
  {
    // The fault before op 1 forces rollback; the first restore attempt
    // for tenant 1 fails once (install_rule capped at one fire) and the
    // bounded retry then restores it.
    ScopedFaultPlan plan({.seed = 1,
                          .faults = {FaultSpec::Nth("dataplane.apply_op", 2),
                                     FaultSpec::Always("dataplane.install_rule",
                                                       /*max_fires=*/1)}});
    result = dp.ApplyAtomic({
        Op{Op::Kind::kRemove, MakeSfc(1, 80)},
        Op{Op::Kind::kAdmit, MakeSfc(2, 443)},
    });
  }
  EXPECT_FALSE(result.ok);
  EXPECT_EQ(result.consistency, DataPlane::BatchResult::Consistency::kConsistent);
  EXPECT_TRUE(result.lost_tenants.empty());
  EXPECT_TRUE(dp.IsAllocated(1));
  EXPECT_EQ(ProbeFingerprint(dp), fingerprint_before);
}

}  // namespace
}  // namespace sfp::dataplane
