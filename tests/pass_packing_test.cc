// Tests for intra-chain NF parallelism (DESIGN.md "Intra-chain NF
// parallelism"): the dependency-aware pass packer in
// DataPlane::AllocateSfc, its never-worse fallback, its metrics, and —
// most importantly — the equivalence contract: a packed layout must be
// observably identical to the sequential §IV reference, packet for
// packet, for every chain the conflict analysis lets it touch.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "common/metrics.h"
#include "dataplane/data_plane.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/rate_limiter.h"
#include "workload/sfc_gen.h"
#include "workload/traffic.h"

namespace sfp::dataplane {
namespace {

using net::Ipv4Address;
using net::MakeTcpPacket;
using nf::NfConfig;
using nf::NfType;
using switchsim::FieldMatch;
using switchsim::SwitchConfig;

SwitchConfig Switch(int stages, bool parallel) {
  SwitchConfig config;
  config.num_stages = stages;
  config.blocks_per_stage = 6;
  config.entries_per_block = 100;
  config.nf_parallelism = parallel;
  return config;
}

NfConfig FwBlocking(std::uint16_t port, int copies = 1) {
  NfConfig config;
  config.type = NfType::kFirewall;
  for (int i = 0; i < copies; ++i) {
    config.rules.push_back(nf::Firewall::Deny(
        FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(),
        FieldMatch::Range(static_cast<std::uint16_t>(port + i),
                          static_cast<std::uint16_t>(port + i)),
        FieldMatch::Any()));
  }
  return config;
}

NfConfig TcConfig(std::uint8_t cls) {
  NfConfig config;
  config.type = NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

NfConfig LbConfig(Ipv4Address vip, Ipv4Address dip) {
  NfConfig config;
  config.type = NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(vip, 80, dip));
  return config;
}

NfConfig FwSrcMatch() {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      FieldMatch::Ternary(0x0A000000, 0xFFFFFF00), FieldMatch::Any(), FieldMatch::Any(),
      FieldMatch::Range(443, 443), FieldMatch::Any()));
  return config;
}

NfConfig NatConfig() {
  NfConfig config;
  config.type = NfType::kNat;
  config.rules.push_back(nf::Nat::Translate(Ipv4Address::Of(10, 1, 2, 3),
                                            Ipv4Address::Of(203, 0, 113, 7)));
  return config;
}

NfConfig RlConfig() {
  NfConfig config;
  config.type = NfType::kRateLimiter;
  config.rules.push_back(nf::RateLimiter::Police(0x0A000000, 0xFF000000, 0));
  return config;
}

// Fig. 3's out-of-order SFC 2 (FW -> LB -> TC on a [TC, FW, LB]
// pipeline) needs two passes sequentially, but the three NFs are
// mutually independent: packing runs the whole chain in one pass.
TEST(PassPackingTest, OutOfOrderIndependentChainPacksIntoOnePass) {
  DataPlane dp(Switch(3, /*parallel=*/true));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kLoadBalancer));

  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {FwBlocking(443),
               LbConfig(Ipv4Address::Of(10, 0, 0, 100), Ipv4Address::Of(192, 168, 0, 2)),
               TcConfig(4)};
  const auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 1);
  EXPECT_EQ(result.sequential_passes, 2);
  ASSERT_EQ(result.placements.size(), 3u);
  EXPECT_EQ(result.placements[0].stage, 1);  // FW
  EXPECT_EQ(result.placements[1].stage, 2);  // LB
  EXPECT_EQ(result.placements[2].stage, 0);  // TC runs "early" — independent
  for (const auto& p : result.placements) EXPECT_EQ(p.pass, 0);

  // Same observable outcome as the sequential reference, one pass.
  auto packet = MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                              Ipv4Address::Of(10, 0, 0, 100), 999, 80, 128);
  auto out = dp.Process(packet);
  EXPECT_FALSE(out.meta.dropped);
  EXPECT_EQ(out.passes, 1);
  EXPECT_EQ(out.meta.flow_class, 4);
  EXPECT_EQ(out.packet.ipv4->dst, Ipv4Address::Of(192, 168, 0, 2));

  // Port 443 still firewalled.
  auto blocked = MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                               Ipv4Address::Of(10, 0, 0, 100), 999, 443, 128);
  EXPECT_TRUE(dp.Process(blocked).meta.dropped);
}

TEST(PassPackingTest, FieldConflictFallsBackToSequentialLayout) {
  DataPlane dp(Switch(2, /*parallel=*/true));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kNat));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));

  Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 1;
  // NAT rewrites the source IP the firewall matches: not mergeable, so
  // the out-of-order chain still folds exactly like the §IV planner.
  sfc.chain = {FwSrcMatch(), NatConfig()};
  const auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 2);
  EXPECT_EQ(result.sequential_passes, 2);
  EXPECT_EQ(result.placements[0].stage, 1);
  EXPECT_EQ(result.placements[0].pass, 0);
  EXPECT_EQ(result.placements[1].stage, 0);
  EXPECT_EQ(result.placements[1].pass, 1);

  const auto stats = dp.pipeline().pass_packing();
  EXPECT_GE(stats.reject_field_conflict, 1u);
  EXPECT_EQ(stats.fallback_sequential, 1u);
}

TEST(PassPackingTest, DropGateKeepsStatefulNfOrdered) {
  DataPlane dp(Switch(2, /*parallel=*/true));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kRateLimiter));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  auto* rl = static_cast<nf::RateLimiter*>(dp.PhysicalNf(0, NfType::kRateLimiter));
  ASSERT_NE(rl, nullptr);
  rl->AddBucket(100.0, 10.0);

  Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 1;
  // The firewall must keep filtering *before* the token bucket even
  // though the bucket's stage comes first in the pipeline.
  sfc.chain = {FwBlocking(443), RlConfig()};
  const auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 2);
  EXPECT_GE(dp.pipeline().pass_packing().reject_drop_gate, 1u);
}

TEST(PassPackingTest, SameTypeDuplicatesLandOnDistinctStages) {
  DataPlane dp(Switch(3, /*parallel=*/true));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kFirewall));

  Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 1;
  // Two stateless firewalls commute (union of drop sets); they still
  // need *distinct* physical tables — same (tenant, pass) rules in one
  // table would collide.
  sfc.chain = {FwBlocking(443), FwBlocking(8080), TcConfig(2)};
  const auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 1);
  EXPECT_EQ(result.sequential_passes, 2);
  EXPECT_EQ(result.placements[0].stage, 1);
  EXPECT_EQ(result.placements[1].stage, 2);
  EXPECT_EQ(result.placements[2].stage, 0);

  auto blocked = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                               Ipv4Address::Of(9, 9, 9, 9), 999, 8080, 128);
  EXPECT_TRUE(dp.Process(blocked).meta.dropped);
  auto ok = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(9, 9, 9, 9),
                          999, 80, 128);
  auto out = dp.Process(ok);
  EXPECT_FALSE(out.meta.dropped);
  EXPECT_EQ(out.meta.flow_class, 2);
  EXPECT_EQ(out.passes, 1);
}

TEST(PassPackingTest, PackingRespectsTableCapacity) {
  // One block per stage: each physical NF's table caps at 100 entries.
  SwitchConfig config = Switch(3, /*parallel=*/true);
  config.blocks_per_stage = 1;
  DataPlane dp(config);
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kFirewall));

  // Tenant A nearly fills the stage-1 firewall (90 rules + catch-all
  // of a 100-entry table).
  Sfc filler;
  filler.tenant = 1;
  filler.bandwidth_gbps = 1;
  filler.chain = {FwBlocking(1000, /*copies=*/90)};
  ASSERT_TRUE(dp.AllocateSfc(filler).ok);

  // Tenant B's firewall no longer fits at stage 1; packing places it
  // at stage 2 and still merges the trailing classifier into pass 0.
  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 1;
  sfc.chain = {FwBlocking(443, /*copies=*/20), TcConfig(3)};
  const auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 1);
  EXPECT_EQ(result.sequential_passes, 2);
  EXPECT_EQ(result.placements[0].stage, 2);  // FW skipped the full stage
  EXPECT_EQ(result.placements[1].stage, 0);  // TC packed before it
}

TEST(PassPackingTest, PackingExtendsAdmissibilityUnderPassBudget) {
  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {FwBlocking(443),
               LbConfig(Ipv4Address::Of(10, 0, 0, 100), Ipv4Address::Of(192, 168, 0, 2)),
               TcConfig(4)};

  for (const bool parallel : {false, true}) {
    DataPlane dp(Switch(3, parallel));
    ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
    ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
    ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kLoadBalancer));
    const auto result = dp.AllocateSfc(sfc, /*max_passes=*/1);
    if (parallel) {
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.passes, 1);
      // The reference plan does not fit the budget at all.
      EXPECT_EQ(result.sequential_passes, 0);
    } else {
      EXPECT_FALSE(result.ok);
      EXPECT_EQ(result.code, AllocCode::kNoPlacement);
    }
  }
}

TEST(PassPackingTest, PackingIsOffByDefault) {
  DataPlane dp(Switch(3, /*parallel=*/false));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kLoadBalancer));

  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {FwBlocking(443),
               LbConfig(Ipv4Address::Of(10, 0, 0, 100), Ipv4Address::Of(192, 168, 0, 2)),
               TcConfig(4)};
  const auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 2);  // unchanged §IV behaviour
  EXPECT_EQ(result.sequential_passes, 2);
  // No packing stats recorded while the feature is off.
  EXPECT_EQ(dp.pipeline().pass_packing().sequential, 0u);
  EXPECT_EQ(dp.pipeline().pass_packing().packed, 0u);
}

TEST(PassPackingTest, ExportsPassMetrics) {
  DataPlane dp(Switch(3, /*parallel=*/true));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kLoadBalancer));

  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {FwBlocking(443),
               LbConfig(Ipv4Address::Of(10, 0, 0, 100), Ipv4Address::Of(192, 168, 0, 2)),
               TcConfig(4)};
  ASSERT_TRUE(dp.AllocateSfc(sfc).ok);

  common::metrics::Registry registry;
  dp.pipeline().ExportMetrics(registry);
  std::uint64_t sequential = 0, packed = 0, saved = 0;
  bool found_saved = false;
  for (const auto& counter : registry.Counters()) {
    if (counter.name == "pipeline.passes.sequential") sequential = counter.value;
    if (counter.name == "pipeline.passes.packed") packed = counter.value;
    if (counter.name == "pipeline.passes.saved") {
      saved = counter.value;
      found_saved = true;
    }
  }
  EXPECT_TRUE(found_saved);
  EXPECT_EQ(sequential, 2u);
  EXPECT_EQ(packed, 1u);
  EXPECT_EQ(saved, 1u);
}

// ---- randomized differential: packed == sequential, always ----------

int DiffChains() {
  if (const char* env = std::getenv("SFP_PACK_DIFF_CHAINS")) {
    const int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  return 300;
}

struct TwinSystems {
  DataPlane sequential;
  DataPlane packed;

  explicit TwinSystems(Rng& rng)
      : sequential(Switch(nf::kNumNfTypes, false)), packed(Switch(nf::kNumNfTypes, true)) {
    std::vector<int> stages(static_cast<std::size_t>(nf::kNumNfTypes));
    for (int t = 0; t < nf::kNumNfTypes; ++t) stages[static_cast<std::size_t>(t)] = t;
    rng.Shuffle(stages);
    for (int t = 0; t < nf::kNumNfTypes; ++t) {
      const int stage = stages[static_cast<std::size_t>(t)];
      const auto type = static_cast<NfType>(t);
      EXPECT_TRUE(sequential.InstallPhysicalNf(stage, type));
      EXPECT_TRUE(packed.InstallPhysicalNf(stage, type));
      if (type == NfType::kRateLimiter) {
        // Generated police rules reference bucket 0 (same parameters
        // on both sides so token streams stay comparable).
        static_cast<nf::RateLimiter*>(sequential.PhysicalNf(stage, type))
            ->AddBucket(100.0, 10.0);
        static_cast<nf::RateLimiter*>(packed.PhysicalNf(stage, type))
            ->AddBucket(100.0, 10.0);
      }
    }
  }
};

TEST(PassPackingEquivalenceTest, PackedMatchesSequentialVerdictForVerdict) {
  const int chains = DiffChains();
  int compared = 0;
  std::int64_t total_saved = 0;
  for (int i = 0; i < chains; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 7919 + 17);
    TwinSystems twins(rng);
    if (::testing::Test::HasFatalFailure()) return;

    const int chain_len = static_cast<int>(rng.UniformInt(2, 6));
    const auto sfc = workload::GenerateConcreteSfc(/*tenant=*/1, chain_len, 10.0, rng,
                                                   /*rules_per_nf=*/8);
    const auto seq_result = twins.sequential.AllocateSfc(sfc);
    const auto packed_result = twins.packed.AllocateSfc(sfc);
    // Packing only widens admissibility: whatever the reference admits,
    // the packed plane admits at no more passes.
    ASSERT_EQ(seq_result.ok, packed_result.ok)
        << "chain " << i << ": " << seq_result.error << " / " << packed_result.error;
    if (!seq_result.ok) continue;
    ASSERT_LE(packed_result.passes, seq_result.passes) << "chain " << i;
    ASSERT_EQ(packed_result.sequential_passes, seq_result.passes) << "chain " << i;
    total_saved += seq_result.passes - packed_result.passes;
    ++compared;

    workload::PacketSizeProfile profile;
    const auto packets =
        workload::GenerateFlows(/*tenant=*/1, /*num_flows=*/8, /*count=*/50, profile, rng);
    for (const auto& packet : packets) {
      const auto seq = twins.sequential.Process(packet);
      const auto packed = twins.packed.Process(packet);
      ASSERT_EQ(seq.meta.dropped, packed.meta.dropped) << "chain " << i;
      ASSERT_EQ(seq.meta.drop_reason, packed.meta.drop_reason) << "chain " << i;
      if (seq.meta.dropped) continue;  // post-drop header state is unobservable
      ASSERT_EQ(seq.meta.flow_class, packed.meta.flow_class) << "chain " << i;
      ASSERT_EQ(seq.meta.egress_port, packed.meta.egress_port) << "chain " << i;
      ASSERT_EQ(seq.meta.scratch, packed.meta.scratch) << "chain " << i;
      ASSERT_TRUE(seq.packet.ipv4.has_value());
      ASSERT_TRUE(packed.packet.ipv4.has_value());
      ASSERT_EQ(seq.packet.ipv4->src, packed.packet.ipv4->src) << "chain " << i;
      ASSERT_EQ(seq.packet.ipv4->dst, packed.packet.ipv4->dst) << "chain " << i;
      ASSERT_EQ(seq.packet.ipv4->ttl, packed.packet.ipv4->ttl) << "chain " << i;
      ASSERT_EQ(seq.packet.Tuple().Hash(), packed.packet.Tuple().Hash()) << "chain " << i;
    }
  }
  // The sweep must have exercised real comparisons and real packing.
  EXPECT_GT(compared, 0);
  EXPECT_GT(total_saved, 0) << "no chain ever packed — the feature never engaged";
}

TEST(PassPackingEquivalenceTest, CompiledMatchesInterpretedOnPackedLayouts) {
  const int chains = std::min(DiffChains(), 40);
  for (int i = 0; i < chains; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 104729 + 5);
    Rng rng_copy = rng;  // same stream -> identical shuffled layouts
    TwinSystems twins(rng);  // reuse: .packed interpreted vs compiled
    TwinSystems compiled_twins(rng_copy);
    if (::testing::Test::HasFatalFailure()) return;
    compiled_twins.packed.EnableCompiledPlans();

    const int chain_len = static_cast<int>(rng.UniformInt(2, 6));
    const auto sfc = workload::GenerateConcreteSfc(/*tenant=*/1, chain_len, 10.0, rng,
                                                   /*rules_per_nf=*/8);
    const auto interpreted = twins.packed.AllocateSfc(sfc);
    const auto compiled = compiled_twins.packed.AllocateSfc(sfc);
    ASSERT_EQ(interpreted.ok, compiled.ok) << "chain " << i;
    if (!interpreted.ok) continue;
    ASSERT_EQ(interpreted.passes, compiled.passes) << "chain " << i;

    workload::PacketSizeProfile profile;
    const auto packets =
        workload::GenerateFlows(/*tenant=*/1, /*num_flows=*/8, /*count=*/128, profile, rng);
    switchsim::BatchOptions options;
    options.num_threads = 1;
    options.min_parallel_batch = 1;
    const auto a = twins.packed.ProcessBatch(packets, options);
    const auto b = compiled_twins.packed.ProcessBatch(packets, options);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
      ASSERT_EQ(a[p].meta.dropped, b[p].meta.dropped) << "chain " << i << " pkt " << p;
      ASSERT_EQ(a[p].meta.drop_reason, b[p].meta.drop_reason) << "chain " << i;
      if (a[p].meta.dropped) continue;
      ASSERT_EQ(a[p].meta.flow_class, b[p].meta.flow_class) << "chain " << i;
      ASSERT_EQ(a[p].meta.egress_port, b[p].meta.egress_port) << "chain " << i;
      ASSERT_EQ(a[p].meta.scratch, b[p].meta.scratch) << "chain " << i;
      ASSERT_EQ(a[p].passes, b[p].passes) << "chain " << i;
      ASSERT_EQ(a[p].packet.Tuple().Hash(), b[p].packet.Tuple().Hash()) << "chain " << i;
    }
  }
}

}  // namespace
}  // namespace sfp::dataplane
