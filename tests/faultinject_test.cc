// Tests for the deterministic fault-injection registry.
#include "common/faultinject.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

namespace sfp::common::faultinject {
namespace {

// Every test disarms on exit (ScopedFaultPlan), so the process-wide
// registry never leaks plans across tests.

TEST(FaultInjectTest, DisarmedCostsOneLoad) {
  ASSERT_FALSE(Registry::Instance().armed());
  // With no plan armed the macro must not even record hits.
  EXPECT_FALSE(SFP_FAULT("some.point"));
  EXPECT_EQ(Registry::Instance().Stats("some.point").hits, 0u);
}

TEST(FaultInjectTest, AlwaysFiresEveryHit) {
  ScopedFaultPlan plan({.seed = 7, .faults = {FaultSpec::Always("p.always")}});
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(SFP_FAULT("p.always"));
  // Unlisted points never fire but are still counted.
  EXPECT_FALSE(SFP_FAULT("p.other"));
  const auto stats = Registry::Instance().Stats("p.always");
  EXPECT_EQ(stats.hits, 5u);
  EXPECT_EQ(stats.fires, 5u);
  EXPECT_EQ(stats.fired_hits, (std::vector<std::uint64_t>{1, 2, 3, 4, 5}));
  EXPECT_EQ(Registry::Instance().Stats("p.other").hits, 1u);
  EXPECT_EQ(Registry::Instance().Stats("p.other").fires, 0u);
}

TEST(FaultInjectTest, NthFiresExactlyOnce) {
  ScopedFaultPlan plan({.seed = 7, .faults = {FaultSpec::Nth("p.nth", 3)}});
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(SFP_FAULT("p.nth"));
  EXPECT_EQ(fired, (std::vector<bool>{false, false, true, false, false, false}));
}

TEST(FaultInjectTest, EveryNthFiresPeriodically) {
  ScopedFaultPlan plan({.seed = 7, .faults = {FaultSpec::EveryNth("p.every", 2)}});
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) fired.push_back(SFP_FAULT("p.every"));
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST(FaultInjectTest, MaxFiresCapsAlways) {
  ScopedFaultPlan plan({.seed = 7, .faults = {FaultSpec::Always("p.capped", /*max_fires=*/2)}});
  int fires = 0;
  for (int i = 0; i < 10; ++i) fires += SFP_FAULT("p.capped") ? 1 : 0;
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(Registry::Instance().Stats("p.capped").fired_hits,
            (std::vector<std::uint64_t>{1, 2}));
}

TEST(FaultInjectTest, ProbabilityZeroAndOneAreDegenerate) {
  ScopedFaultPlan plan({.seed = 7,
                        .faults = {FaultSpec::Probability("p.zero", 0.0),
                                   FaultSpec::Probability("p.one", 1.0)}});
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(SFP_FAULT("p.zero"));
    EXPECT_TRUE(SFP_FAULT("p.one"));
  }
}

TEST(FaultInjectTest, ProbabilityIsSeedDeterministic) {
  auto run = [](std::uint64_t seed) {
    ScopedFaultPlan plan({.seed = seed, .faults = {FaultSpec::Probability("p.coin", 0.5)}});
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) fired.push_back(SFP_FAULT("p.coin"));
    return fired;
  };
  const auto a = run(42);
  const auto b = run(42);
  const auto c = run(43);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);  // 2^-200 false-failure odds
  // Roughly half fire.
  const auto fires = static_cast<int>(std::count(a.begin(), a.end(), true));
  EXPECT_GT(fires, 60);
  EXPECT_LT(fires, 140);
}

TEST(FaultInjectTest, PointsHaveIndependentStreams) {
  ScopedFaultPlan plan({.seed = 9,
                        .faults = {FaultSpec::Probability("p.a", 0.5),
                                   FaultSpec::Probability("p.b", 0.5)}});
  std::vector<bool> a, b;
  for (int i = 0; i < 100; ++i) {
    a.push_back(SFP_FAULT("p.a"));
    b.push_back(SFP_FAULT("p.b"));
  }
  EXPECT_NE(a, b);  // distinct FNV-forked streams
}

TEST(FaultInjectTest, InterleavingDoesNotChangePerPointDecisions) {
  // Decision for hit #k of a point depends only on (plan, k), not on
  // what other points did in between — the chaos harness relies on
  // this for cross-thread determinism.
  auto run_a_only = []() {
    ScopedFaultPlan plan({.seed = 11, .faults = {FaultSpec::Probability("p.a", 0.3)}});
    std::vector<bool> fired;
    for (int i = 0; i < 50; ++i) fired.push_back(SFP_FAULT("p.a"));
    return fired;
  };
  auto run_interleaved = []() {
    ScopedFaultPlan plan({.seed = 11,
                          .faults = {FaultSpec::Probability("p.a", 0.3),
                                     FaultSpec::Probability("p.b", 0.9)}});
    std::vector<bool> fired;
    for (int i = 0; i < 50; ++i) {
      (void)SFP_FAULT("p.b");
      fired.push_back(SFP_FAULT("p.a"));
      (void)SFP_FAULT("p.b");
    }
    return fired;
  };
  EXPECT_EQ(run_a_only(), run_interleaved());
}

TEST(FaultInjectTest, ArmResetsStateAndDisarmStops) {
  Registry& registry = Registry::Instance();
  {
    ScopedFaultPlan plan({.seed = 1, .faults = {FaultSpec::Always("p.x")}});
    EXPECT_TRUE(SFP_FAULT("p.x"));
    EXPECT_EQ(registry.Stats("p.x").hits, 1u);
    // Re-arming resets counters.
    registry.Arm({.seed = 1, .faults = {FaultSpec::Always("p.x")}});
    EXPECT_EQ(registry.Stats("p.x").hits, 0u);
    EXPECT_TRUE(SFP_FAULT("p.x"));
  }
  EXPECT_FALSE(registry.armed());
  EXPECT_FALSE(SFP_FAULT("p.x"));
  EXPECT_TRUE(registry.AllStats().empty());
}

TEST(FaultInjectTest, AllStatsSnapshotsEveryPoint) {
  ScopedFaultPlan plan({.seed = 3,
                        .faults = {FaultSpec::Always("p.a"), FaultSpec::Nth("p.b", 2)}});
  (void)SFP_FAULT("p.a");
  (void)SFP_FAULT("p.b");
  (void)SFP_FAULT("p.b");
  const auto all = Registry::Instance().AllStats();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all.at("p.a").fires, 1u);
  EXPECT_EQ(all.at("p.b").hits, 2u);
  EXPECT_EQ(all.at("p.b").fired_hits, (std::vector<std::uint64_t>{2}));
}

TEST(FaultInjectTest, ConcurrentHitsAreSerializedAndCounted) {
  ScopedFaultPlan plan({.seed = 5, .faults = {FaultSpec::EveryNth("p.mt", 3)}});
  constexpr int kThreads = 4;
  constexpr int kHitsPerThread = 1000;
  std::atomic<int> fires{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&fires] {
      for (int i = 0; i < kHitsPerThread; ++i) {
        if (SFP_FAULT("p.mt")) fires.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  const auto stats = Registry::Instance().Stats("p.mt");
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(kThreads * kHitsPerThread));
  EXPECT_EQ(stats.fires, static_cast<std::uint64_t>(kThreads * kHitsPerThread / 3));
  EXPECT_EQ(stats.fires, static_cast<std::uint64_t>(fires.load()));
}

}  // namespace
}  // namespace sfp::common::faultinject
