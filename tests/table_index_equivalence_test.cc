// Equivalence proof for the indexed match-action lookup: randomized
// entry sets (mixed exact/ternary/LPM/range keys, overlapping
// priorities, wildcards, interleaved installs and removes) are driven
// through both the indexed Lookup path and the reference linear scan
// (LookupReference), asserting identical winning entries and identical
// hit/miss/default counters. The parameterized suite totals 10k+
// randomized lookup rounds. Also covers the per-worker flow decision
// cache: epoch invalidation on admission/departure, replay identity,
// and the pipeline.cache.* counter export.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "net/packet.h"
#include "switchsim/flow_cache.h"
#include "switchsim/pipeline.h"
#include "switchsim/table.h"

namespace sfp::switchsim {
namespace {

using net::Ipv4Address;

/// Candidate key fields with small value domains so random packets
/// actually collide with installed entries.
struct FieldDomain {
  FieldId field;
  MatchKind kind;
  std::uint64_t max_value;  // packet/entry values drawn from [0, max]
};

const FieldDomain kFieldPool[] = {
    {FieldId::kTenantId, MatchKind::kExact, 3},
    {FieldId::kPass, MatchKind::kExact, 2},
    {FieldId::kFlowClass, MatchKind::kExact, 3},
    {FieldId::kSrcIp, MatchKind::kTernary, 0xFFFFFFFF},
    {FieldId::kDstIp, MatchKind::kLpm, 0xFFFFFFFF},
    {FieldId::kDstPort, MatchKind::kRange, 2000},
    {FieldId::kSrcPort, MatchKind::kRange, 2000},
    {FieldId::kIpProto, MatchKind::kTernary, 0xFF},
};

/// Random key spec: 2..5 distinct fields from the pool. Most draws
/// contain an exact field (SFP tables always carry the exact
/// (tenant, pass) prefix), but some have none at all — the index must
/// be correct for both.
std::vector<FieldDomain> RandomSpec(Rng& rng) {
  std::vector<FieldDomain> pool(std::begin(kFieldPool), std::end(kFieldPool));
  for (std::size_t i = pool.size(); i > 1; --i) {
    std::swap(pool[i - 1], pool[static_cast<std::size_t>(rng.UniformInt(
                               0, static_cast<std::int64_t>(i) - 1))]);
  }
  const std::size_t arity = static_cast<std::size_t>(rng.UniformInt(2, 5));
  pool.resize(arity);
  return pool;
}

/// Random pattern for one field: wildcard with probability ~0.35,
/// else a concrete (possibly partial) pattern in the field's domain.
FieldMatch RandomMatch(Rng& rng, const FieldDomain& domain) {
  const bool wildcard = rng.Bernoulli(0.35);
  switch (domain.kind) {
    case MatchKind::kExact:
      // Exact fields can be wildcarded too (FieldMatch::Any(), the
      // data plane's per-pass catch-all shape) — such entries live in
      // the table's wildcard side tier and must agree with the
      // reference scan like everything else.
      if (wildcard) return FieldMatch::Any();
      return FieldMatch::Exact(
          static_cast<std::uint64_t>(rng.UniformInt(0, static_cast<std::int64_t>(domain.max_value))));
    case MatchKind::kTernary: {
      if (wildcard) return FieldMatch::Ternary(0, 0);
      // Byte-granular masks give overlapping patterns.
      std::uint64_t mask = 0;
      for (int b = 0; b < 4; ++b) {
        if (rng.Bernoulli(0.5)) mask |= 0xFFULL << (8 * b);
      }
      return FieldMatch::Ternary(rng.Next() & domain.max_value, mask & domain.max_value);
    }
    case MatchKind::kLpm: {
      if (wildcard) return FieldMatch::Lpm(0, 0);
      const int prefix = static_cast<int>(rng.UniformInt(1, 32));
      return FieldMatch::Lpm(rng.Next() & domain.max_value, prefix);
    }
    case MatchKind::kRange: {
      if (wildcard) return FieldMatch::Any();
      const auto lo = static_cast<std::uint64_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(domain.max_value)));
      const auto hi = lo + static_cast<std::uint64_t>(rng.UniformInt(
                               0, static_cast<std::int64_t>(domain.max_value / 4)));
      return FieldMatch::Range(lo, hi);
    }
  }
  return FieldMatch::Any();
}

/// A random packet + metadata whose field values stay inside the
/// domains the entries draw from.
std::pair<net::Packet, PacketMeta> RandomPacket(Rng& rng) {
  auto packet = net::MakeTcpPacket(
      static_cast<std::uint16_t>(rng.UniformInt(0, 3)),
      Ipv4Address{static_cast<std::uint32_t>(rng.Next())},
      Ipv4Address{static_cast<std::uint32_t>(rng.Next())},
      static_cast<std::uint16_t>(rng.UniformInt(0, 2000)),
      static_cast<std::uint16_t>(rng.UniformInt(0, 2000)), 64);
  PacketMeta meta;
  meta.tenant_id = packet.TenantId();
  meta.pass = static_cast<std::uint8_t>(rng.UniformInt(0, 2));
  meta.flow_class = static_cast<std::uint8_t>(rng.UniformInt(0, 3));
  return {std::move(packet), meta};
}

class IndexEquivalenceTest : public ::testing::TestWithParam<int> {};

// 20 seeds x 500 lookups = 10k randomized rounds, each against a table
// under churn (installs, single removes, bulk tenant removes).
TEST_P(IndexEquivalenceTest, IndexedLookupMatchesReferenceUnderChurn) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 17);
  const auto spec = RandomSpec(rng);
  std::vector<MatchFieldSpec> key;
  for (const auto& domain : spec) key.push_back({domain.field, domain.kind});
  MatchActionTable table("t", key);
  const auto noop =
      table.RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  const bool with_default = rng.Bernoulli(0.5);
  if (with_default) table.SetDefaultAction(noop);

  std::vector<EntryHandle> live;
  std::uint64_t expect_hits = 0, expect_misses = 0, expect_defaults = 0;

  for (int round = 0; round < 500; ++round) {
    // Churn: keep the table populated, with occasional removals so the
    // index is rebuilt mid-stream.
    const double op = rng.UniformDouble();
    if (op < 0.60 || live.empty()) {
      std::vector<FieldMatch> matches;
      for (const auto& domain : spec) matches.push_back(RandomMatch(rng, domain));
      const auto handle =
          table.AddEntry(std::move(matches), noop, {},
                         static_cast<int>(rng.UniformInt(-2, 3)),
                         static_cast<std::uint16_t>(rng.UniformInt(0, 3)));
      ASSERT_NE(handle, kInvalidEntryHandle);
      live.push_back(handle);
    } else if (op < 0.75) {
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(live.size()) - 1));
      EXPECT_TRUE(table.RemoveEntry(live[at]));
      live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
    } else if (op < 0.80) {
      const auto tenant = static_cast<std::uint16_t>(rng.UniformInt(0, 3));
      table.RemoveTenantEntries(tenant);
      live.clear();
      for (const auto& entry : table.entries()) live.push_back(entry.handle);
    }

    auto [packet, meta] = RandomPacket(rng);
    const TableEntry* indexed = table.Lookup(packet, meta);
    const TableEntry* reference = table.LookupReference(packet, meta);
    if (reference == nullptr) {
      ASSERT_EQ(indexed, nullptr) << "indexed path matched where the scan missed";
    } else {
      ASSERT_NE(indexed, nullptr) << "indexed path missed where the scan matched";
      ASSERT_EQ(indexed->handle, reference->handle)
          << "winner diverged (priority " << reference->priority << ")";
    }

    // Apply must agree with the reference verdict and advance the
    // hit/miss/default counters exactly as documented.
    if (reference != nullptr) {
      ++expect_hits;
    } else {
      ++expect_misses;
      if (with_default) ++expect_defaults;
    }
    auto applied = packet;
    auto applied_meta = meta;
    EXPECT_EQ(table.Apply(applied, applied_meta), reference != nullptr);
  }

  EXPECT_EQ(table.hit_count(), expect_hits);
  EXPECT_EQ(table.miss_count(), expect_misses);
  EXPECT_EQ(table.default_hit_count(), expect_defaults);
}

INSTANTIATE_TEST_SUITE_P(RandomTables, IndexEquivalenceTest, ::testing::Range(0, 20));

// Pin the catch-all shape the data plane installs on exact-key NFs
// (NAT/LB): a low-priority entry with concrete (tenant, pass) prefix
// and FieldMatch::Any() on the NF's own exact key field must be
// reachable for *every* probe value, not just value 0 — it lives in
// the wildcard side tier, loses to any concrete rule, and still honors
// its own concrete prefix fields.
TEST(WildcardExactTest, CatchAllOnExactKeyFieldIsReachable) {
  MatchActionTable table("nat", {{FieldId::kTenantId, MatchKind::kExact},
                                 {FieldId::kPass, MatchKind::kExact},
                                 {FieldId::kSrcIp, MatchKind::kExact}});
  const auto noop =
      table.RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  const auto translate =
      table.RegisterAction("translate", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  const auto rule = table.AddEntry(
      {FieldMatch::Exact(7), FieldMatch::Exact(0), FieldMatch::Exact(0x0A010203)},
      translate, {}, 0, 7);
  const auto catch_all = table.AddEntry(
      {FieldMatch::Exact(7), FieldMatch::Exact(0), FieldMatch::Any()}, noop, {},
      -1000, 7);
  ASSERT_NE(rule, kInvalidEntryHandle);
  ASSERT_NE(catch_all, kInvalidEntryHandle);

  const auto probe = [&](std::uint16_t tenant, std::uint8_t pass, std::uint32_t src) {
    auto packet = net::MakeTcpPacket(tenant, Ipv4Address{src},
                                     Ipv4Address{0x0A000064}, 1024, 80, 64);
    PacketMeta meta;
    meta.tenant_id = tenant;
    meta.pass = pass;
    return table.Lookup(packet, meta);
  };

  // Concrete rule wins where it matches; any other source falls
  // through to the catch-all (this is the recirculation guarantee).
  const TableEntry* hit = probe(7, 0, 0x0A010203);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->handle, rule);
  const TableEntry* fallback = probe(7, 0, 0xC0A80001);
  ASSERT_NE(fallback, nullptr);
  EXPECT_EQ(fallback->handle, catch_all);
  // The catch-all's concrete prefix fields still constrain it: other
  // tenants and other passes miss outright.
  EXPECT_EQ(probe(8, 0, 0xC0A80001), nullptr);
  EXPECT_EQ(probe(7, 1, 0xC0A80001), nullptr);
  // Removal rebuilds the wildcard tier along with the index.
  EXPECT_TRUE(table.RemoveEntry(catch_all));
  EXPECT_EQ(probe(7, 0, 0xC0A80001), nullptr);
}

// The cached Apply path must produce decisions and counters identical
// to the uncached one, for the same random workload.
class CachedApplyEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(CachedApplyEquivalenceTest, CachedApplyMatchesUncached) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 5);
  const auto spec = RandomSpec(rng);
  std::vector<MatchFieldSpec> key;
  for (const auto& domain : spec) key.push_back({domain.field, domain.kind});
  MatchActionTable cached_table("cached", key);
  MatchActionTable plain_table("plain", key);
  // The action stamps which entry fired into the metadata scratch so
  // divergence is observable.
  for (auto* table : {&cached_table, &plain_table}) {
    table->RegisterAction("stamp",
                          [](net::Packet&, PacketMeta& meta, const ActionArgs& args) {
                            meta.scratch = args.empty() ? 0 : args[0];
                          });
    table->SetDefaultAction(0, {0xDEFA});
  }

  FlowDecisionCache cache(64);  // small: exercises evictions too
  std::uint64_t next_stamp = 1;
  for (int round = 0; round < 400; ++round) {
    if (rng.Bernoulli(0.10) || cached_table.num_entries() == 0) {
      std::vector<FieldMatch> matches;
      for (const auto& domain : spec) matches.push_back(RandomMatch(rng, domain));
      const int priority = static_cast<int>(rng.UniformInt(-2, 3));
      const ActionArgs args = {next_stamp++};
      auto matches_copy = matches;
      ASSERT_NE(cached_table.AddEntry(std::move(matches), 0, args, priority),
                kInvalidEntryHandle);
      ASSERT_NE(plain_table.AddEntry(std::move(matches_copy), 0, args, priority),
                kInvalidEntryHandle);
    } else if (rng.Bernoulli(0.05)) {
      // Remove the same (synchronized) entry from both tables.
      const auto& entries = cached_table.entries();
      const std::size_t at = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(entries.size()) - 1));
      const EntryHandle cached_handle = entries[at].handle;
      const EntryHandle plain_handle = plain_table.entries()[at].handle;
      EXPECT_TRUE(cached_table.RemoveEntry(cached_handle));
      EXPECT_TRUE(plain_table.RemoveEntry(plain_handle));
    }

    auto [packet, meta] = RandomPacket(rng);
    auto cached_packet = packet;
    auto cached_meta = meta;
    auto plain_packet = packet;
    auto plain_meta = meta;
    const bool cached_hit = cached_table.Apply(cached_packet, cached_meta, &cache);
    const bool plain_hit = plain_table.Apply(plain_packet, plain_meta);
    ASSERT_EQ(cached_hit, plain_hit) << "round " << round;
    ASSERT_EQ(cached_meta.scratch, plain_meta.scratch)
        << "cached path fired a different entry at round " << round;
  }
  EXPECT_EQ(cached_table.hit_count(), plain_table.hit_count());
  EXPECT_EQ(cached_table.miss_count(), plain_table.miss_count());
  EXPECT_EQ(cached_table.default_hit_count(), plain_table.default_hit_count());
  // The workload repeats values inside small domains, so the cache must
  // have been exercised in both directions.
  EXPECT_GT(cache.hits() + cache.misses(), 0u);
}

INSTANTIATE_TEST_SUITE_P(RandomWorkloads, CachedApplyEquivalenceTest,
                         ::testing::Range(0, 10));

TEST(FlowDecisionCacheTest, EpochBumpInvalidatesExactlyThatTable) {
  MatchActionTable table("t", {{FieldId::kDstPort, MatchKind::kExact}});
  table.RegisterAction("stamp", [](net::Packet&, PacketMeta& meta, const ActionArgs& args) {
    meta.scratch = args[0];
  });
  table.AddEntry({FieldMatch::Exact(80)}, 0, {1}, /*priority=*/0);

  FlowDecisionCache cache;
  auto packet = net::MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                   Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64);
  PacketMeta meta;
  EXPECT_TRUE(table.Apply(packet, meta, &cache));
  EXPECT_EQ(meta.scratch, 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_TRUE(table.Apply(packet, meta, &cache));
  EXPECT_EQ(cache.hits(), 1u);

  // A higher-priority entry arrives (tenant admission): the epoch bump
  // must force re-resolution — a stale replay would fire entry 1.
  const std::uint64_t epoch_before = table.epoch();
  table.AddEntry({FieldMatch::Exact(80)}, 0, {2}, /*priority=*/5);
  EXPECT_GT(table.epoch(), epoch_before);
  EXPECT_TRUE(table.Apply(packet, meta, &cache));
  EXPECT_EQ(meta.scratch, 2u);
  EXPECT_EQ(cache.misses(), 2u);

  // Departure of the winning entry's owner re-resolves again.
  table.RemoveTenantEntries(0);  // both entries are owner 0
  EXPECT_FALSE(table.Apply(packet, meta, &cache));
  EXPECT_EQ(table.miss_count(), 1u);
  EXPECT_EQ(table.default_hit_count(), 0u);  // no default action set
}

TEST(FlowDecisionCacheTest, NoOpTenantRemovalKeepsEpoch) {
  MatchActionTable table("t", {{FieldId::kDstPort, MatchKind::kExact}});
  table.RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  table.AddEntry({FieldMatch::Exact(80)}, 0, {}, 0, /*owner_tenant=*/7);
  const std::uint64_t epoch = table.epoch();
  EXPECT_EQ(table.RemoveTenantEntries(99), 0u);  // tenant holds nothing here
  EXPECT_EQ(table.epoch(), epoch) << "no-op removal must not invalidate caches";
  EXPECT_EQ(table.RemoveTenantEntries(7), 1u);
  EXPECT_GT(table.epoch(), epoch);
}

TEST(FlowDecisionCacheTest, PipelineExportsCacheCounters) {
  SwitchConfig config;
  config.num_stages = 2;
  Pipeline pipeline(config);
  auto* table = pipeline.stage(0).AddTable("t", {{FieldId::kDstPort, MatchKind::kExact}});
  ASSERT_NE(table, nullptr);
  table->RegisterAction("noop", [](net::Packet&, PacketMeta&, const ActionArgs&) {});
  table->AddEntry({FieldMatch::Exact(80)}, 0);

  std::vector<net::Packet> batch;
  for (int i = 0; i < 256; ++i) {
    batch.push_back(net::MakeTcpPacket(1, Ipv4Address::Of(10, 0, 0, 1),
                                       Ipv4Address::Of(10, 0, 0, 2),
                                       static_cast<std::uint16_t>(1024 + i % 8), 80, 64));
  }
  BatchOptions options;
  options.num_threads = 2;
  pipeline.ProcessBatch(batch, options);
  // The memo key is the *extracted table key tuple* — here just the
  // dst port, shared by all 8 flows — so each worker resolves it once
  // and the rest of the 256 packets replay the memoized decision.
  EXPECT_GT(pipeline.flow_cache_hits(), 0u);
  EXPECT_GT(pipeline.flow_cache_misses(), 0u);

  common::metrics::Registry registry;
  pipeline.ExportMetrics(registry);
  EXPECT_EQ(registry.GetCounter("pipeline.cache.hits").Value(),
            pipeline.flow_cache_hits());
  EXPECT_EQ(registry.GetCounter("pipeline.cache.misses").Value(),
            pipeline.flow_cache_misses());
  EXPECT_EQ(registry.GetCounter("pipeline.cache.evictions").Value(),
            pipeline.flow_cache_evictions());
  EXPECT_EQ(registry.GetCounter("pipeline.stage0.t.default_hits").Value(),
            table->default_hit_count());

  // Disabling the cache must not change results (spot check) and must
  // not advance the cache counters.
  const auto hits_before = pipeline.flow_cache_hits();
  const auto misses_before = pipeline.flow_cache_misses();
  BatchOptions no_cache = options;
  no_cache.flow_cache_slots = 0;
  auto uncached = pipeline.ProcessBatch(batch, no_cache);
  auto cached = pipeline.ProcessBatch(batch, options);
  ASSERT_EQ(uncached.size(), cached.size());
  for (std::size_t i = 0; i < uncached.size(); ++i) {
    EXPECT_EQ(uncached[i].packet.Serialize(), cached[i].packet.Serialize());
    EXPECT_EQ(uncached[i].meta.dropped, cached[i].meta.dropped);
  }
  // Caches are per-call, so the cached batch re-resolves the shared
  // key tuple at least once (once per worker that owns any flows).
  EXPECT_GE(pipeline.flow_cache_misses(), misses_before + 1);
  EXPECT_GT(pipeline.flow_cache_hits(), hits_before);
}

TEST(DefaultHitsTest, DefaultActionServesAreCountedSeparately) {
  MatchActionTable with_default("d", {{FieldId::kDstPort, MatchKind::kExact}});
  with_default.RegisterAction("mark",
                              [](net::Packet&, PacketMeta& meta, const ActionArgs&) {
                                meta.scratch = 42;
                              });
  with_default.SetDefaultAction(0);
  MatchActionTable without_default("n", {{FieldId::kDstPort, MatchKind::kExact}});
  without_default.RegisterAction("mark",
                                 [](net::Packet&, PacketMeta&, const ActionArgs&) {});

  auto packet = net::MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                   Ipv4Address::Of(2, 2, 2, 2), 9, 443, 64);
  PacketMeta meta;
  // Miss + default action: counted as a miss AND a default hit, and
  // the default action still mutates the packet metadata.
  EXPECT_FALSE(with_default.Apply(packet, meta));
  EXPECT_EQ(meta.scratch, 42u);
  EXPECT_EQ(with_default.miss_count(), 1u);
  EXPECT_EQ(with_default.default_hit_count(), 1u);
  // Miss without a default action: a bare miss.
  PacketMeta bare;
  EXPECT_FALSE(without_default.Apply(packet, bare));
  EXPECT_EQ(without_default.miss_count(), 1u);
  EXPECT_EQ(without_default.default_hit_count(), 0u);
}

}  // namespace
}  // namespace sfp::switchsim
