// Tests for the DPDK software-SFC server model and its calibration
// against the paper's measured points (§VI-B).
#include "serversim/server_model.h"

#include <gtest/gtest.h>

#include "common/units.h"

namespace sfp::serversim {
namespace {

TEST(ServerSfcTest, LatencyMatchesPaperCalibration) {
  ServerSfc sfc(ServerConfig{}, DefaultChain());
  // Fig. 5: DPDK average latency ~= 1151 ns.
  EXPECT_NEAR(sfc.PacketLatencyNs(), 1151.0, 3.0);
}

TEST(ServerSfcTest, SaturatesOnlyNearMtu) {
  ServerSfc sfc(ServerConfig{}, DefaultChain());
  // Fig. 4: DPDK reaches 100 Gbps only at ~1500 B frames.
  EXPECT_LT(sfc.ThroughputGbps(1024, 100.0), 99.0);
  EXPECT_NEAR(sfc.ThroughputGbps(1500, 100.0), 100.0, 0.5);
  const int saturating = sfc.SaturatingFrameBytes(100.0);
  EXPECT_GT(saturating, 1200);
  EXPECT_LE(saturating, 1500);
}

TEST(ServerSfcTest, TenTimesGapAt64Bytes) {
  ServerSfc sfc(ServerConfig{}, DefaultChain());
  // Fig. 4: at 64 B the switch (line rate) beats DPDK by >= 10x.
  const double dpdk = sfc.ThroughputGbps(64, 100.0);
  EXPECT_GE(100.0 / dpdk, 10.0);
}

TEST(ServerSfcTest, ThroughputBoundedByOfferAndLineRate) {
  ServerSfc sfc(ServerConfig{}, DefaultChain());
  EXPECT_LE(sfc.ThroughputGbps(1500, 40.0), 40.0 + 1e-9);  // offered bound
  ServerConfig fat;
  fat.worker_cores = 56;  // overprovisioned CPU
  ServerSfc fast(fat, DefaultChain());
  // At MTU frames the overprovisioned server is line-rate bound.
  EXPECT_NEAR(fast.ThroughputGbps(1500, 200.0), fat.line_rate_gbps, 1e-9);
}

TEST(ServerSfcTest, ResourceFootprintMatchesPaper) {
  ServerSfc sfc(ServerConfig{}, DefaultChain());
  // §VI-B: 722 MB memory, 30.35% CPU (17/56 cores).
  EXPECT_NEAR(sfc.MemoryMb(), 722.0, 1.0);
  EXPECT_NEAR(sfc.CpuUtilization(), 17.0 / 56.0, 1e-9);
}

TEST(ServerSfcTest, ThroughputMonotoneInFrameSize) {
  ServerSfc sfc(ServerConfig{}, DefaultChain());
  double prev = 0.0;
  for (int size : {64, 128, 256, 512, 1024, 1500}) {
    const double gbps = sfc.ThroughputGbps(size, 100.0);
    EXPECT_GE(gbps + 1e-9, prev);
    prev = gbps;
  }
}

TEST(ServerSfcTest, LongerChainsAreSlower) {
  auto chain = DefaultChain();
  ServerSfc four(ServerConfig{}, chain);
  chain.push_back({"nat", 500});
  ServerSfc five(ServerConfig{}, chain);
  EXPECT_GT(five.PacketLatencyNs(), four.PacketLatencyNs());
  EXPECT_LT(five.PpsCapacity(), four.PpsCapacity());
  EXPECT_GT(five.MemoryMb(), four.MemoryMb());
}

}  // namespace
}  // namespace sfp::serversim
