// Tests for the SFP data plane: physical NF installation, logical SFC
// allocation with folding/recirculation, multi-tenant isolation, and
// deallocation (§IV).
#include "dataplane/data_plane.h"

#include <gtest/gtest.h>

#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"

namespace sfp::dataplane {
namespace {

using net::Ipv4Address;
using net::MakeTcpPacket;
using nf::NfConfig;
using nf::NfType;
using switchsim::FieldMatch;
using switchsim::SwitchConfig;

SwitchConfig SmallSwitch(int stages = 3) {
  SwitchConfig config;
  config.num_stages = stages;
  config.blocks_per_stage = 4;
  config.entries_per_block = 100;
  return config;
}

NfConfig FirewallBlocking(std::uint16_t port) {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                            FieldMatch::Any(), FieldMatch::Range(port, port),
                                            FieldMatch::Any()));
  return config;
}

NfConfig ClassifierConfig(std::uint8_t cls) {
  NfConfig config;
  config.type = NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

NfConfig LbConfig(Ipv4Address vip, Ipv4Address dip) {
  NfConfig config;
  config.type = NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(vip, 80, dip));
  return config;
}

TEST(DataPlaneTest, InstallPhysicalNfRejectsDuplicates) {
  DataPlane dp(SmallSwitch());
  EXPECT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));
  EXPECT_FALSE(dp.InstallPhysicalNf(0, NfType::kFirewall));
  EXPECT_TRUE(dp.InstallPhysicalNf(0, NfType::kRouter));  // other type OK
  EXPECT_TRUE(dp.HasPhysicalNf(0, NfType::kFirewall));
  EXPECT_FALSE(dp.HasPhysicalNf(1, NfType::kFirewall));
}

TEST(DataPlaneTest, InstallPhysicalNfRespectsBlockBudget) {
  SwitchConfig config = SmallSwitch();
  config.blocks_per_stage = 2;
  DataPlane dp(config);
  EXPECT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));
  EXPECT_TRUE(dp.InstallPhysicalNf(0, NfType::kRouter));
  EXPECT_FALSE(dp.InstallPhysicalNf(0, NfType::kClassifier));  // no block left
}

// The paper's toy example (Fig. 3): pipeline = [TC, FW, LB]; SFC 1 =
// TC -> FW -> LB fits in one pass.
TEST(DataPlaneTest, InOrderSfcUsesOnePass) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kLoadBalancer));

  Sfc sfc;
  sfc.tenant = 1;
  sfc.bandwidth_gbps = 10;
  sfc.chain = {ClassifierConfig(2), FirewallBlocking(443),
               LbConfig(Ipv4Address::Of(10, 0, 0, 100), Ipv4Address::Of(192, 168, 0, 1))};
  auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 1);
  ASSERT_EQ(result.placements.size(), 3u);
  EXPECT_EQ(result.placements[0].stage, 0);
  EXPECT_EQ(result.placements[1].stage, 1);
  EXPECT_EQ(result.placements[2].stage, 2);
  for (const auto& p : result.placements) EXPECT_EQ(p.pass, 0);

  // Traffic to port 80 passes the FW, gets classified and rewritten.
  auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                              Ipv4Address::Of(10, 0, 0, 100), 999, 80, 128);
  auto out = dp.Process(packet);
  EXPECT_FALSE(out.meta.dropped);
  EXPECT_EQ(out.passes, 1);
  EXPECT_EQ(out.meta.flow_class, 2);
  EXPECT_EQ(out.packet.ipv4->dst, Ipv4Address::Of(192, 168, 0, 1));
}

// Fig. 3's SFC 2: FW -> LB -> TC on a [TC, FW, LB] pipeline needs two
// passes, with LB recirculating.
TEST(DataPlaneTest, OutOfOrderSfcFoldsIntoSecondPass) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, NfType::kLoadBalancer));

  Sfc sfc;
  sfc.tenant = 2;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {FirewallBlocking(443),
               LbConfig(Ipv4Address::Of(10, 0, 0, 100), Ipv4Address::Of(192, 168, 0, 2)),
               ClassifierConfig(4)};
  auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 2);
  EXPECT_EQ(result.placements[0].stage, 1);  // FW, pass 0
  EXPECT_EQ(result.placements[0].pass, 0);
  EXPECT_EQ(result.placements[1].stage, 2);  // LB, pass 0 (recirculates)
  EXPECT_EQ(result.placements[1].pass, 0);
  EXPECT_EQ(result.placements[2].stage, 0);  // TC, pass 1
  EXPECT_EQ(result.placements[2].pass, 1);

  auto packet = MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                              Ipv4Address::Of(10, 0, 0, 100), 999, 80, 128);
  auto out = dp.Process(packet);
  EXPECT_FALSE(out.meta.dropped);
  EXPECT_EQ(out.passes, 2);
  EXPECT_EQ(out.packet.ipv4->dst, Ipv4Address::Of(192, 168, 0, 2));
  EXPECT_EQ(out.meta.flow_class, 4);  // TC applied on the second pass
}

TEST(DataPlaneTest, TenantsAreIsolated) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));

  // Tenant 1 blocks port 80; tenant 2 blocks port 443.
  Sfc sfc1;
  sfc1.tenant = 1;
  sfc1.chain = {FirewallBlocking(80)};
  Sfc sfc2;
  sfc2.tenant = 2;
  sfc2.chain = {FirewallBlocking(443)};
  ASSERT_TRUE(dp.AllocateSfc(sfc1).ok);
  ASSERT_TRUE(dp.AllocateSfc(sfc2).ok);

  auto t1_80 = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                        Ipv4Address::Of(2, 2, 2, 2), 999, 80, 64));
  auto t2_80 = dp.Process(MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                                        Ipv4Address::Of(2, 2, 2, 2), 999, 80, 64));
  auto t2_443 = dp.Process(MakeTcpPacket(2, Ipv4Address::Of(1, 1, 1, 1),
                                         Ipv4Address::Of(2, 2, 2, 2), 999, 443, 64));
  EXPECT_TRUE(t1_80.meta.dropped);    // tenant 1's rule fires
  EXPECT_FALSE(t2_80.meta.dropped);   // tenant 2 unaffected by tenant 1
  EXPECT_TRUE(t2_443.meta.dropped);   // tenant 2's own rule fires

  // A tenant with no SFC traverses as pure no-op.
  auto t9 = dp.Process(MakeTcpPacket(9, Ipv4Address::Of(1, 1, 1, 1),
                                     Ipv4Address::Of(2, 2, 2, 2), 999, 80, 64));
  EXPECT_FALSE(t9.meta.dropped);
  EXPECT_EQ(t9.passes, 1);
}

TEST(DataPlaneTest, SameTypeTwiceInChainNeedsSecondInstanceOrFold) {
  // Chain FW -> FW with a single physical FW: must fold to 2 passes.
  DataPlane dp(SmallSwitch(2));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));

  Sfc sfc;
  sfc.tenant = 3;
  sfc.chain = {FirewallBlocking(80), FirewallBlocking(443)};
  auto result = dp.AllocateSfc(sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 2);

  // Both rules take effect even though they share one physical table.
  auto p80 = dp.Process(MakeTcpPacket(3, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  auto p443 = dp.Process(MakeTcpPacket(3, Ipv4Address::Of(1, 1, 1, 1),
                                       Ipv4Address::Of(2, 2, 2, 2), 9, 443, 64));
  auto p22 = dp.Process(MakeTcpPacket(3, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 22, 64));
  EXPECT_TRUE(p80.meta.dropped);
  EXPECT_TRUE(p443.meta.dropped);
  EXPECT_FALSE(p22.meta.dropped);
  EXPECT_EQ(p22.passes, 2);
}

TEST(DataPlaneTest, AllocationFailsBeyondPassBudget) {
  DataPlane dp(SmallSwitch(2));
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));

  Sfc sfc;
  sfc.tenant = 4;
  // 5 firewalls with a pass budget of 3 cannot fit (one per pass).
  for (int i = 0; i < 5; ++i) sfc.chain.push_back(FirewallBlocking(80));
  auto result = dp.AllocateSfc(sfc, /*max_passes=*/3);
  EXPECT_FALSE(result.ok);
  EXPECT_FALSE(dp.IsAllocated(4));

  // Missing physical type fails cleanly too.
  Sfc sfc2;
  sfc2.tenant = 5;
  sfc2.chain = {ClassifierConfig(1)};
  EXPECT_FALSE(dp.AllocateSfc(sfc2).ok);
}

TEST(DataPlaneTest, DuplicateTenantRejected) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));
  Sfc sfc;
  sfc.tenant = 6;
  sfc.chain = {FirewallBlocking(80)};
  ASSERT_TRUE(dp.AllocateSfc(sfc).ok);
  EXPECT_FALSE(dp.AllocateSfc(sfc).ok);
}

TEST(DataPlaneTest, DeallocateRemovesAllTenantState) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));
  Sfc sfc;
  sfc.tenant = 7;
  sfc.chain = {FirewallBlocking(80)};
  ASSERT_TRUE(dp.AllocateSfc(sfc).ok);

  const auto entries_before = dp.pipeline().TotalEntriesUsed();
  EXPECT_GT(entries_before, 0);
  const auto removed = dp.DeallocateSfc(7);
  EXPECT_EQ(removed, static_cast<std::size_t>(entries_before));
  EXPECT_EQ(dp.pipeline().TotalEntriesUsed(), 0);
  EXPECT_FALSE(dp.IsAllocated(7));

  // Traffic that was dropped now sails through.
  auto p = dp.Process(MakeTcpPacket(7, Ipv4Address::Of(1, 1, 1, 1),
                                    Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  EXPECT_FALSE(p.meta.dropped);

  // And the tenant can be re-admitted.
  EXPECT_TRUE(dp.AllocateSfc(sfc).ok);
}

TEST(DataPlaneTest, AllocationRespectsMemoryCapacity) {
  SwitchConfig config = SmallSwitch(1);
  config.blocks_per_stage = 1;
  config.entries_per_block = 10;
  DataPlane dp(config);
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kFirewall));

  // 9 rules + 1 catch-all = 10 entries: fits exactly.
  Sfc big;
  big.tenant = 1;
  NfConfig fw;
  fw.type = NfType::kFirewall;
  for (int i = 0; i < 9; ++i) {
    fw.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                          FieldMatch::Any(),
                                          FieldMatch::Range(static_cast<std::uint64_t>(i),
                                                            static_cast<std::uint64_t>(i)),
                                          FieldMatch::Any()));
  }
  big.chain = {fw};
  ASSERT_TRUE(dp.AllocateSfc(big).ok);

  // No room for even a single-rule SFC now.
  Sfc small;
  small.tenant = 2;
  small.chain = {FirewallBlocking(80)};
  EXPECT_FALSE(dp.AllocateSfc(small).ok);

  // After deallocation it fits.
  dp.DeallocateSfc(1);
  EXPECT_TRUE(dp.AllocateSfc(small).ok);
}

TEST(DataPlaneTest, PhysicalLayoutReflectsInstalls) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kRouter));
  auto layout = dp.PhysicalLayout();
  ASSERT_EQ(layout.size(), 3u);
  EXPECT_EQ(layout[0], std::vector<NfType>{NfType::kClassifier});
  EXPECT_EQ(layout[1], (std::vector<NfType>{NfType::kFirewall, NfType::kRouter}));
  EXPECT_TRUE(layout[2].empty());
}

TEST(DataPlaneTest, RecirculatedLatencyMatchesTimingModel) {
  DataPlane dp(SmallSwitch());
  ASSERT_TRUE(dp.InstallPhysicalNf(0, NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, NfType::kFirewall));

  Sfc sfc;
  sfc.tenant = 1;
  sfc.chain = {FirewallBlocking(443), ClassifierConfig(1)};  // FW@1 then TC@0: 2 passes
  ASSERT_TRUE(dp.AllocateSfc(sfc).ok);

  auto out = dp.Process(MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1),
                                      Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  EXPECT_EQ(out.passes, 2);
  const auto& timing = dp.pipeline().config().timing;
  EXPECT_NEAR(out.latency_ns,
              timing.LatencyNs(out.active_stages, out.idle_stages, out.passes), 1e-9);
}

}  // namespace
}  // namespace sfp::dataplane
