// Tests for packet headers, parsing, and serialization round-trips.
#include "net/packet.h"

#include <gtest/gtest.h>

namespace sfp::net {
namespace {

TEST(MacAddressTest, ToStringFromStringRoundTrip) {
  MacAddress mac{{0xDE, 0xAD, 0xBE, 0xEF, 0x00, 0x42}};
  auto parsed = MacAddress::FromString(mac.ToString());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, mac);
}

TEST(MacAddressTest, RejectsMalformed) {
  EXPECT_FALSE(MacAddress::FromString("not-a-mac").has_value());
  EXPECT_FALSE(MacAddress::FromString("").has_value());
}

TEST(Ipv4AddressTest, ToStringFromStringRoundTrip) {
  auto addr = Ipv4Address::Of(192, 168, 1, 77);
  EXPECT_EQ(addr.ToString(), "192.168.1.77");
  auto parsed = Ipv4Address::FromString("192.168.1.77");
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, addr);
}

TEST(Ipv4AddressTest, RejectsOutOfRangeOctets) {
  EXPECT_FALSE(Ipv4Address::FromString("300.1.1.1").has_value());
  EXPECT_FALSE(Ipv4Address::FromString("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Address::FromString("1.2.3.4.5").has_value());
}

TEST(Ipv4HeaderTest, ChecksumValidatesOnParse) {
  Ipv4Header h;
  h.src = Ipv4Address::Of(10, 0, 0, 1);
  h.dst = Ipv4Address::Of(10, 0, 0, 2);
  h.total_length = 40;
  std::vector<std::uint8_t> bytes;
  h.Serialize(bytes);
  ASSERT_EQ(bytes.size(), Ipv4Header::kSize);
  auto parsed = Ipv4Header::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src, h.src);
  EXPECT_EQ(parsed->dst, h.dst);

  // Corrupt one byte: the checksum must catch it.
  bytes[16] ^= 0xFF;
  EXPECT_FALSE(Ipv4Header::Parse(bytes).has_value());
}

TEST(PacketTest, TcpSerializeParseRoundTrip) {
  Packet p = MakeTcpPacket(/*tenant=*/7, Ipv4Address::Of(10, 1, 0, 5),
                           Ipv4Address::Of(10, 2, 0, 9), 12345, 443, 256);
  EXPECT_EQ(p.WireBytes(), 256u);
  auto bytes = p.Serialize();
  EXPECT_EQ(bytes.size(), 256u);

  auto parsed = Packet::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->TenantId(), 7);
  EXPECT_TRUE(parsed->IsTcp());
  EXPECT_EQ(parsed->Tuple().src_port, 12345);
  EXPECT_EQ(parsed->Tuple().dst_port, 443);
  EXPECT_EQ(parsed->ipv4->src, Ipv4Address::Of(10, 1, 0, 5));
  EXPECT_EQ(parsed->WireBytes(), 256u);
}

TEST(PacketTest, UdpSerializeParseRoundTrip) {
  Packet p = MakeUdpPacket(/*tenant=*/3, Ipv4Address::Of(172, 16, 0, 1),
                           Ipv4Address::Of(172, 16, 0, 2), 5353, 53, 128);
  auto bytes = p.Serialize();
  auto parsed = Packet::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->IsUdp());
  EXPECT_EQ(parsed->Tuple().dst_port, 53);
  EXPECT_EQ(parsed->TenantId(), 3);
}

TEST(PacketTest, UntaggedPacketHasTenantZero) {
  Packet p = MakeTcpPacket(/*tenant=*/0, Ipv4Address::Of(1, 1, 1, 1),
                           Ipv4Address::Of(2, 2, 2, 2), 1000, 80, 64);
  EXPECT_FALSE(p.vlan.has_value());
  EXPECT_EQ(p.TenantId(), 0);
  auto parsed = Packet::Parse(p.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->TenantId(), 0);
}

TEST(PacketTest, MinimumFrameClampsPayload) {
  // Requesting a frame smaller than the headers yields zero payload.
  Packet p = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                           1, 2, 10);
  EXPECT_EQ(p.payload_bytes, 0u);
}

TEST(PacketTest, ParseRejectsTruncated) {
  Packet p = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                           1, 2, 128);
  auto bytes = p.Serialize();
  bytes.resize(20);  // cut inside the IPv4 header
  EXPECT_FALSE(Packet::Parse(bytes).has_value());
}

TEST(FiveTupleTest, HashIsStableAndSpreads) {
  FiveTuple a{Ipv4Address::Of(1, 2, 3, 4), Ipv4Address::Of(5, 6, 7, 8), 100, 200, 6};
  FiveTuple b = a;
  EXPECT_EQ(a.Hash(), b.Hash());
  b.src_port = 101;
  EXPECT_NE(a.Hash(), b.Hash());
}

TEST(VlanTagTest, SerializeParsePreservesFields) {
  VlanTag tag;
  tag.pcp = 5;
  tag.dei = true;
  tag.vid = 0x123;
  std::vector<std::uint8_t> bytes;
  tag.Serialize(bytes);
  auto parsed = VlanTag::Parse(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->pcp, 5);
  EXPECT_TRUE(parsed->dei);
  EXPECT_EQ(parsed->vid, 0x123);
}

}  // namespace
}  // namespace sfp::net
