// Tests for common utilities: RNG determinism/distributions, table
// rendering, unit conversions.
#include <sstream>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"

namespace sfp {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.UniformInt(100, 2100);
    EXPECT_GE(v, 100);
    EXPECT_LE(v, 2100);
  }
}

TEST(RngTest, UniformIntCoversEndpoints) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000 && !(saw_lo && saw_hi); ++i) {
    const auto v = rng.UniformInt(0, 7);
    saw_lo |= v == 0;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformDoubleInHalfOpenUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliFrequencyMatchesP) {
  Rng rng(12);
  int hits = 0;
  const int trials = 50000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.25, 0.01);
}

TEST(RngTest, ParetoIsLongTailedAboveScale) {
  Rng rng(13);
  double max_seen = 0;
  for (int i = 0; i < 20000; ++i) {
    const double v = rng.Pareto(/*shape=*/1.5, /*scale=*/2.0);
    EXPECT_GE(v, 2.0);
    max_seen = std::max(max_seen, v);
  }
  // A long tail should produce draws far above the scale.
  EXPECT_GT(max_seen, 20.0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(14);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 40000; ++i) counts[rng.WeightedIndex(weights)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.25);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(15);
  Rng child = parent.Fork();
  // The child stream must not replay the parent's outputs.
  Rng parent_copy(15);
  (void)parent_copy.Next();  // parent consumed one draw when forking
  int same = 0;
  for (int i = 0; i < 32; ++i) {
    if (child.Next() == parent_copy.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(16);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = values;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(TableTest, RendersAlignedColumns) {
  Table table({"L", "Throughput"});
  table.Row().Add(std::int64_t{10}).Add(247.13, 1);
  table.Row().Add(std::int64_t{20}).Add(9.5, 1);
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("L "), std::string::npos);
  EXPECT_NE(out.find("247.1"), std::string::npos);
  EXPECT_NE(out.find("9.5"), std::string::npos);
}

TEST(TableTest, CsvHasNoPadding) {
  Table table({"a", "b"});
  table.Row().Add("x").Add(std::int64_t{1});
  std::ostringstream os;
  table.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\nx,1\n");
}

TEST(UnitsTest, PpsGbpsRoundTrip) {
  const double pps = GbpsToPps(100.0, 64);
  EXPECT_NEAR(pps, 100e9 / (64 * 8), 1);
  EXPECT_NEAR(PpsToGbps(pps, 64), 100.0, 1e-9);
}

TEST(UnitsTest, CeilDiv) {
  EXPECT_EQ(CeilDiv(0, 5), 0);
  EXPECT_EQ(CeilDiv(1, 5), 1);
  EXPECT_EQ(CeilDiv(5, 5), 1);
  EXPECT_EQ(CeilDiv(6, 5), 2);
  EXPECT_EQ(CeilDiv(2100, 1000), 3);
}

TEST(UnitsTest, CyclesToNanos) {
  EXPECT_NEAR(CyclesToNanos(2200, 2.2), 1000.0, 1e-9);
}

}  // namespace
}  // namespace sfp
