// Unit and property tests for the branch & bound MIP solver.
#include "lp/mip.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "lp/model.h"
#include "lp/rounding.h"

namespace sfp::lp {
namespace {

constexpr double kTol = 1e-5;

// Golden branch & bound tree sizes for PseudocostBranchingKnownTree
// (deterministic mode, fixed node order).
constexpr std::int64_t kPseudoGoldenNodes = 5;
constexpr std::int64_t kFracGoldenNodes = 5;

TEST(MipTest, SolvesSmallKnapsack) {
  // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binaries.
  // Best: a + c (weight 5, value 17) vs b + c (6, 20) -> 20.
  Model model;
  VarId a = model.AddBinaryVar(10, "a");
  VarId b = model.AddBinaryVar(13, "b");
  VarId c = model.AddBinaryVar(7, "c");
  model.AddRow({a, b, c}, {3, 4, 2}, Sense::kLe, 6);

  MipSolver solver(model);
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 20.0, kTol);
  EXPECT_NEAR(result.solution.values[static_cast<std::size_t>(b)], 1.0, kTol);
  EXPECT_NEAR(result.solution.values[static_cast<std::size_t>(c)], 1.0, kTol);
}

TEST(MipTest, SolvesIntegerProgramWithGeneralIntegers) {
  // max x + y, x,y integer, 2x + 3y <= 12, x <= 4 -> x=4, y=1 -> 5.
  Model model;
  VarId x = model.AddVar(0, 4, 1, true, "x");
  VarId y = model.AddVar(0, kInfinity, 1, true, "y");
  model.AddRow({x, y}, {2, 3}, Sense::kLe, 12);

  MipSolver solver(model);
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 5.0, kTol);
}

TEST(MipTest, ReportsInfeasible) {
  Model model;
  VarId x = model.AddBinaryVar(1, "x");
  model.AddRow({x}, {1}, Sense::kGe, 2);

  MipSolver solver(model);
  EXPECT_EQ(solver.Solve().solution.status, SolveStatus::kInfeasible);
}

TEST(MipTest, MinimizationDirection) {
  // min 3x + 5y s.t. x + y >= 4, x <= 2, integers -> x=2,y=2 -> 16.
  Model model;
  model.SetMaximize(false);
  VarId x = model.AddVar(0, 2, 3, true, "x");
  VarId y = model.AddVar(0, kInfinity, 5, true, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kGe, 4);

  MipSolver solver(model);
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 16.0, kTol);
}

TEST(MipTest, MixedIntegerContinuous) {
  // max 2x + y with x binary, y continuous <= 2.5, x + y <= 3.
  Model model;
  VarId x = model.AddBinaryVar(2, "x");
  VarId y = model.AddVar(0, 2.5, 1, false, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 3);

  MipSolver solver(model);
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 2 + 2.0, kTol);  // x=1, y=2
}

TEST(MipTest, InfeasibleMinimizationHasPlusInfinityBound) {
  // Empty feasible set: the infimum over it is +infinity. The bound
  // must not report -infinity (the internal max-sense sentinel).
  Model model;
  model.SetMaximize(false);
  VarId x = model.AddBinaryVar(1, "x");
  model.AddRow({x}, {1}, Sense::kGe, 2);  // x <= 1 can never reach 2

  MipSolver solver(model);
  MipResult result = solver.Solve();
  EXPECT_EQ(result.solution.status, SolveStatus::kInfeasible);
  EXPECT_EQ(result.best_bound, kInfinity);
  EXPECT_EQ(result.nodes_dropped, 0);
}

TEST(MipTest, InfeasibleMaximizationHasMinusInfinityBound) {
  Model model;
  VarId x = model.AddBinaryVar(1, "x");
  model.AddRow({x}, {1}, Sense::kGe, 2);

  MipSolver solver(model);
  MipResult result = solver.Solve();
  EXPECT_EQ(result.solution.status, SolveStatus::kInfeasible);
  EXPECT_EQ(result.best_bound, -kInfinity);
}

TEST(MipTest, DroppedNodeIsNotReportedInfeasible) {
  // A 1-iteration simplex cap makes the root LP hit kIterationLimit:
  // the node is dropped, which proves nothing about feasibility. The
  // solver must say "iteration limit", not "infeasible", and fold the
  // dropped node's (here unbounded) parent bound into best_bound.
  Model model;
  VarId a = model.AddBinaryVar(10, "a");
  VarId b = model.AddBinaryVar(13, "b");
  model.AddRow({a, b}, {3, 4}, Sense::kLe, 5);

  MipOptions options;
  options.simplex.max_iterations = 1;
  MipSolver solver(model, options);
  MipResult result = solver.Solve();
  EXPECT_EQ(result.solution.status, SolveStatus::kIterationLimit);
  EXPECT_EQ(result.nodes_dropped, 1);
  EXPECT_EQ(result.best_bound, kInfinity);  // nothing was proven
}

TEST(MipTest, DroppedNodeBlocksOptimalityClaim) {
  // Same setup but seeded with a feasible incumbent: the tree
  // "exhausts", yet a subtree was dropped, so the incumbent may not be
  // optimal — the status must stay kFeasible and the dual bound must
  // stay above the incumbent.
  Model model;
  VarId a = model.AddBinaryVar(10, "a");
  VarId b = model.AddBinaryVar(13, "b");
  model.AddRow({a, b}, {3, 4}, Sense::kLe, 5);

  MipOptions options;
  options.simplex.max_iterations = 1;
  MipSolver solver(model, options);
  solver.SetInitialIncumbent({1.0, 0.0});  // value 10
  MipResult result = solver.Solve();
  EXPECT_EQ(result.solution.status, SolveStatus::kFeasible);
  EXPECT_NEAR(result.solution.objective, 10.0, kTol);
  EXPECT_EQ(result.nodes_dropped, 1);
  EXPECT_GT(result.best_bound, result.solution.objective);
}

TEST(MipTest, PseudocostBranchingKnownTree) {
  // Fixed 3-item knapsack with binary-representable data, solved to
  // completion under both branching rules. Both must find the optimum;
  // the node counts pin the tree shapes so a behaviour change in the
  // branching logic is caught explicitly.
  //
  // max 8a + 4b + 2c  s.t.  4a + 2b + 1c <= 5  ->  a=1, b=0, c=1: 10.
  Model model;
  VarId a = model.AddBinaryVar(8, "a");
  VarId b = model.AddBinaryVar(4, "b");
  VarId c = model.AddBinaryVar(2, "c");
  model.AddRow({a, b, c}, {4, 2, 1}, Sense::kLe, 5);

  MipOptions pseudo_options;
  pseudo_options.branching = MipOptions::Branching::kPseudocost;
  MipSolver pseudo_solver(model, pseudo_options);
  MipResult pseudo = pseudo_solver.Solve();
  ASSERT_EQ(pseudo.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(pseudo.solution.objective, 10.0, kTol);

  MipOptions frac_options;
  frac_options.branching = MipOptions::Branching::kMostFractional;
  MipSolver frac_solver(model, frac_options);
  MipResult frac = frac_solver.Solve();
  ASSERT_EQ(frac.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(frac.solution.objective, 10.0, kTol);

  // Golden tree sizes for this model (deterministic mode, fixed node
  // order): see DESIGN.md "Solver internals".
  EXPECT_EQ(pseudo.nodes_explored, kPseudoGoldenNodes);
  EXPECT_EQ(frac.nodes_explored, kFracGoldenNodes);
}

TEST(MipTest, PseudocostsSteerTowardHighImpactVariable) {
  // Two fractional binaries; x has 100x the objective impact of y.
  // After the first branchings initialize the pseudocosts, the search
  // must prefer branching on x — visible as a tree no larger than the
  // most-fractional one on the same model.
  Rng rng(4242);
  for (int round = 0; round < 10; ++round) {
    Model model;
    std::vector<VarId> vars;
    std::vector<double> weights;
    const int n = 8;
    for (int i = 0; i < n; ++i) {
      const double value = rng.UniformDouble(1, 10) * (i < 2 ? 100.0 : 1.0);
      vars.push_back(model.AddBinaryVar(value));
      weights.push_back(rng.UniformDouble(1, 4));
    }
    model.AddRow(vars, weights, Sense::kLe, 6.0);

    MipOptions pseudo_options;
    pseudo_options.branching = MipOptions::Branching::kPseudocost;
    MipResult pseudo = MipSolver(model, pseudo_options).Solve();

    MipOptions frac_options;
    frac_options.branching = MipOptions::Branching::kMostFractional;
    MipResult frac = MipSolver(model, frac_options).Solve();

    ASSERT_EQ(pseudo.solution.status, SolveStatus::kOptimal);
    ASSERT_EQ(frac.solution.status, SolveStatus::kOptimal);
    EXPECT_NEAR(pseudo.solution.objective, frac.solution.objective, kTol);
  }
}

TEST(MipTest, TimeLimitReturnsTimeLimitStatusWithoutIncumbent) {
  // A model whose root LP already takes nonzero time cannot be built
  // reliably; instead use a zero-second budget so no node completes...
  // The solver checks the clock before each node, so with limit 0 the
  // root node is never solved.
  Model model;
  VarId x = model.AddBinaryVar(1, "x");
  model.AddRow({x}, {1}, Sense::kLe, 1);

  MipOptions options;
  options.time_limit_seconds = 0.0;
  MipSolver solver(model, options);
  MipResult result = solver.Solve();
  EXPECT_EQ(result.solution.status, SolveStatus::kTimeLimit);
  EXPECT_EQ(result.nodes_explored, 0);
}

TEST(MipTest, IncumbentTraceIsMonotone) {
  Rng rng(7);
  Model model;
  std::vector<VarId> vars;
  std::vector<double> weights;
  for (int i = 0; i < 18; ++i) {
    const double value = rng.UniformDouble(1, 20);
    vars.push_back(model.AddBinaryVar(value));
    weights.push_back(rng.UniformDouble(1, 10));
  }
  model.AddRow(vars, weights, Sense::kLe, 25);

  MipSolver solver(model);
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  ASSERT_FALSE(result.incumbent_trace.empty());
  for (std::size_t i = 1; i < result.incumbent_trace.size(); ++i) {
    EXPECT_GT(result.incumbent_trace[i].objective,
              result.incumbent_trace[i - 1].objective);
    EXPECT_GE(result.incumbent_trace[i].seconds, result.incumbent_trace[i - 1].seconds);
  }
  EXPECT_NEAR(result.incumbent_trace.back().objective, result.solution.objective, kTol);
}

TEST(MipTest, HeuristicCandidatesAreVetted) {
  // A heuristic that proposes an infeasible point must be rejected.
  Model model;
  VarId x = model.AddBinaryVar(5, "x");
  VarId y = model.AddBinaryVar(4, "y");
  model.AddRow({x, y}, {1, 1}, Sense::kLe, 1);

  MipOptions options;
  options.heuristic_period = 1;
  MipSolver solver(model, options);
  solver.SetHeuristic([](const std::vector<double>&, std::vector<double>& cand) {
    cand = {1.0, 1.0};  // violates x + y <= 1
    return true;
  });
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);
  EXPECT_NEAR(result.solution.objective, 5.0, kTol);
}

// ---------------------------------------------------------------------
// Property test: B&B must match exhaustive enumeration on random small
// binary knapsack-style programs.
class MipBruteForceTest : public ::testing::TestWithParam<int> {};

TEST_P(MipBruteForceTest, MatchesBruteForce) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 3571 + 11);
  const int n = static_cast<int>(rng.UniformInt(3, 10));
  const int m = static_cast<int>(rng.UniformInt(1, 4));

  Model model;
  std::vector<VarId> vars;
  std::vector<double> objective;
  for (int v = 0; v < n; ++v) {
    const double obj = rng.UniformDouble(-3, 10);
    vars.push_back(model.AddBinaryVar(obj));
    objective.push_back(obj);
  }
  std::vector<std::vector<double>> coeffs;
  std::vector<double> rhs;
  for (int r = 0; r < m; ++r) {
    std::vector<double> row;
    for (int v = 0; v < n; ++v) row.push_back(rng.UniformDouble(0, 5));
    coeffs.push_back(row);
    rhs.push_back(rng.UniformDouble(3, 15));
    model.AddRow(vars, row, Sense::kLe, rhs.back());
  }

  MipSolver solver(model);
  MipResult result = solver.Solve();
  ASSERT_EQ(result.solution.status, SolveStatus::kOptimal);

  // Exhaustive enumeration.
  double best = -1e100;
  for (int mask = 0; mask < (1 << n); ++mask) {
    bool feasible = true;
    for (int r = 0; r < m && feasible; ++r) {
      double lhs = 0;
      for (int v = 0; v < n; ++v) {
        if (mask & (1 << v)) lhs += coeffs[static_cast<std::size_t>(r)][static_cast<std::size_t>(v)];
      }
      feasible = lhs <= rhs[static_cast<std::size_t>(r)] + 1e-9;
    }
    if (!feasible) continue;
    double obj = 0;
    for (int v = 0; v < n; ++v) {
      if (mask & (1 << v)) obj += objective[static_cast<std::size_t>(v)];
    }
    best = std::max(best, obj);
  }
  EXPECT_NEAR(result.solution.objective, best, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomMips, MipBruteForceTest, ::testing::Range(0, 30));

// Randomized rounding preserves expectation: over many draws, the mean
// of each rounded coordinate approaches the LP value.
TEST(RoundingTest, RandomizedRoundIsUnbiased) {
  Model model;
  VarId x = model.AddBinaryVar(1, "x");
  VarId y = model.AddVar(0, 5, 1, true, "y");
  (void)x;
  (void)y;
  std::vector<double> lp_values = {0.3, 2.7};

  Rng rng(42);
  double sum_x = 0, sum_y = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    auto rounded = RandomizedRound(model, lp_values, rng);
    EXPECT_TRUE(rounded[0] == 0.0 || rounded[0] == 1.0);
    EXPECT_TRUE(rounded[1] == 2.0 || rounded[1] == 3.0);
    sum_x += rounded[0];
    sum_y += rounded[1];
  }
  EXPECT_NEAR(sum_x / trials, 0.3, 0.02);
  EXPECT_NEAR(sum_y / trials, 2.7, 0.02);
}

TEST(RoundingTest, NearestRoundClampsToBounds) {
  Model model;
  model.AddVar(0, 1, 1, true, "x");
  std::vector<double> values = {1.4};  // rounds to 1 (clamped)
  auto rounded = NearestRound(model, values);
  EXPECT_EQ(rounded[0], 1.0);
}

}  // namespace
}  // namespace sfp::lp
