// Unit tests for the per-tenant pipeline compiler (docs/COMPILER.md):
// one test group per layer — the tenant lift, each lowering pass
// (dead-table elimination, constant folding, match fusion), the
// struct-of-arrays plan emission, and the plan cache's warm /
// invalidate / fallback contract. The randomized compiled-vs-
// interpreted bit-identity suite lives in compiler_equivalence_test.cc.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dataplane/data_plane.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "switchsim/compiler/exec.h"
#include "switchsim/compiler/ir.h"
#include "switchsim/compiler/passes.h"
#include "switchsim/compiler/plan.h"
#include "switchsim/compiler/plan_cache.h"

namespace sfp::switchsim::compiler {
namespace {

using dataplane::DataPlane;
using dataplane::Sfc;

nf::NfConfig FwConfig() {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Range(23, 23),
      FieldMatch::Any(), /*priority=*/10));
  config.rules.push_back(nf::Firewall::Allow(
      FieldMatch::Exact(0x0a000001), FieldMatch::Any(), FieldMatch::Any(),
      FieldMatch::Range(23, 23), FieldMatch::Any(), /*priority=*/20));
  return config;
}

nf::NfConfig TcConfig(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

nf::NfConfig RtConfig() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 7));
  return config;
}

/// fw | tc | rt layout with two allocated tenants; tenant 3 folds over
/// two passes (rt before fw).
DataPlane MakeDataPlane() {
  DataPlane dp;
  EXPECT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  EXPECT_TRUE(dp.InstallPhysicalNf(1, nf::NfType::kClassifier));
  EXPECT_TRUE(dp.InstallPhysicalNf(2, nf::NfType::kRouter));
  Sfc t1;
  t1.tenant = 1;
  t1.chain = {FwConfig(), TcConfig(1), RtConfig()};
  Sfc t2;
  t2.tenant = 2;
  t2.chain = {TcConfig(2)};
  Sfc t3;  // router before firewall -> folds into pass 1
  t3.tenant = 3;
  t3.chain = {RtConfig(), FwConfig()};
  EXPECT_TRUE(dp.AllocateSfc(t1).ok);
  EXPECT_TRUE(dp.AllocateSfc(t2).ok);
  const auto a3 = dp.AllocateSfc(t3);
  EXPECT_TRUE(a3.ok);
  EXPECT_EQ(a3.passes, 2);
  return dp;
}

// ---------------------------------------------------------------- lift

TEST(LiftTest, SlicesOnlyTheTenantsEntriesInWinnerOrder) {
  auto dp = MakeDataPlane();
  const auto lifted = LiftTenant(dp.pipeline(), 1, nullptr);
  ASSERT_TRUE(lifted.ok) << lifted.error;
  const TenantIr& ir = lifted.ir;
  EXPECT_EQ(ir.tenant, 1);
  EXPECT_EQ(ir.num_stages, dp.pipeline().num_stages());
  ASSERT_EQ(ir.passes.size(), 1u);  // in-order chain, single pass
  ASSERT_EQ(ir.passes[0].slots.size(), 3u);  // fw, tc, rt tables

  const IrSlot& fw = ir.passes[0].slots[0];
  // 2 configured firewall rules + the per-tenant catch-all.
  ASSERT_EQ(fw.entries.size(), 3u);
  for (const IrEntry& entry : fw.entries) {
    // Every lifted entry names this tenant in the exact prefix.
    EXPECT_EQ(entry.matches[0].value, 1u);
  }
  // Winner order: priority 20 allow, then 10 deny, then -1000 catch-all.
  EXPECT_EQ(fw.entries[0].priority, 20);
  EXPECT_EQ(fw.entries[1].priority, 10);
  EXPECT_EQ(fw.entries[2].priority, -1000);
  EXPECT_TRUE(fw.entries[2].always_matches);
  // srcIp is read (the allow rule constrains it); dstIp never is.
  EXPECT_NE(fw.reads & FieldBit(FieldId::kSrcIp), 0u);
  EXPECT_EQ(fw.reads & FieldBit(FieldId::kDstIp), 0u);
}

TEST(LiftTest, FoldedChainLiftsOnePassPerRecirculation) {
  auto dp = MakeDataPlane();
  const auto lifted = LiftTenant(dp.pipeline(), 3, nullptr);
  ASSERT_TRUE(lifted.ok) << lifted.error;
  ASSERT_EQ(lifted.ir.passes.size(), 2u);
  // Pass 0 holds the router rules, pass 1 the firewall rules.
  EXPECT_TRUE(lifted.ir.passes[0].slots[0].entries.empty());   // fw @ pass 0
  EXPECT_FALSE(lifted.ir.passes[0].slots[2].entries.empty());  // rt @ pass 0
  EXPECT_FALSE(lifted.ir.passes[1].slots[0].entries.empty());  // fw @ pass 1
  // The tail (passes beyond the program) has no entries anywhere.
  for (const IrSlot& slot : lifted.ir.tail.slots) EXPECT_TRUE(slot.entries.empty());
}

TEST(LiftTest, TableWithoutTenantPassPrefixIsUnsupported) {
  Pipeline pipeline;
  auto* table = pipeline.stage(0).AddTable(
      "custom", {{FieldId::kSrcIp, MatchKind::kExact}});
  ASSERT_NE(table, nullptr);
  const auto lifted = LiftTenant(pipeline, 1, nullptr);
  EXPECT_FALSE(lifted.ok);
  EXPECT_NE(lifted.error.find("custom"), std::string::npos);
  EXPECT_NE(lifted.error.find("(tenant, pass)"), std::string::npos);
}

// ------------------------------------------- pass: dead-table elimination

IrSlot MatchSlot(int stage, FieldSet reads = kNoFields, FieldSet writes = kNoFields) {
  IrSlot slot;
  slot.stage = stage;
  slot.kind = SlotKind::kMatch;
  slot.reads = reads;
  slot.writes = writes;
  slot.entries.emplace_back();  // non-empty by default
  return slot;
}

TEST(DeadTableEliminationTest, MarksEmptySlotsDeadAndCountsRealPassesOnly) {
  TenantIr ir;
  ir.passes.emplace_back();
  ir.passes[0].slots.push_back(MatchSlot(0));
  ir.passes[0].slots.push_back(MatchSlot(1));
  ir.passes[0].slots[1].entries.clear();  // no rules for this (tenant, pass)
  ir.tail.slots.push_back(MatchSlot(0));
  ir.tail.slots[0].entries.clear();

  EXPECT_EQ(DeadTableElimination(ir), 1);  // the tail slot is not counted
  EXPECT_EQ(ir.passes[0].slots[0].kind, SlotKind::kMatch);
  EXPECT_EQ(ir.passes[0].slots[1].kind, SlotKind::kDead);
  EXPECT_EQ(ir.passes[0].slots[1].reads, kNoFields);
  EXPECT_EQ(ir.tail.slots[0].kind, SlotKind::kDead);
}

// ------------------------------------------------ pass: constant folding

TEST(ConstantFoldTest, FoldsUnconditionalWinnerAndDropsUnreachableEntries) {
  TenantIr ir;
  ir.passes.emplace_back();
  IrSlot slot = MatchSlot(0, FieldBit(FieldId::kSrcIp), kAllFields);
  slot.entries[0].always_matches = true;
  slot.entries[0].act.traits = ActionTraits::SetFlowClass();
  slot.entries.push_back(slot.entries[0]);  // unreachable runner-up
  slot.entries[1].always_matches = false;
  ir.passes[0].slots.push_back(std::move(slot));

  EXPECT_EQ(ConstantFoldAlwaysMatch(ir), 1);
  const IrSlot& folded = ir.passes[0].slots[0];
  EXPECT_EQ(folded.kind, SlotKind::kAlways);
  EXPECT_EQ(folded.entries.size(), 1u);
  EXPECT_EQ(folded.reads, kNoFields);
  // Only the surviving winner's writes remain.
  EXPECT_EQ(folded.writes, FieldBit(FieldId::kFlowClass));
}

TEST(ConstantFoldTest, LeavesGuardedWinnersAlone) {
  TenantIr ir;
  ir.passes.emplace_back();
  ir.passes[0].slots.push_back(MatchSlot(0, FieldBit(FieldId::kDstPort)));
  ir.passes[0].slots[0].entries[0].always_matches = false;
  EXPECT_EQ(ConstantFoldAlwaysMatch(ir), 0);
  EXPECT_EQ(ir.passes[0].slots[0].kind, SlotKind::kMatch);
  EXPECT_EQ(ir.passes[0].slots[0].entries.size(), 1u);
}

// --------------------------------------------------- pass: match fusion

TEST(MatchFusionTest, FusesSlotsWithDisjointReadAndWriteSets) {
  TenantIr ir;
  ir.passes.emplace_back();
  auto& slots = ir.passes[0].slots;
  // A writes flow_class; B reads dst_port (disjoint) -> fuses with A;
  // C reads flow_class (conflicts with A's write) -> new group.
  slots.push_back(MatchSlot(0, FieldBit(FieldId::kSrcIp), FieldBit(FieldId::kFlowClass)));
  slots.push_back(MatchSlot(1, FieldBit(FieldId::kDstPort), kNoFields));
  slots.push_back(MatchSlot(2, FieldBit(FieldId::kFlowClass), kNoFields));

  EXPECT_EQ(MatchFusion(ir), 1);
  EXPECT_EQ(slots[0].fusion_group, slots[1].fusion_group);
  EXPECT_NE(slots[1].fusion_group, slots[2].fusion_group);
}

TEST(MatchFusionTest, CapsGroupsAtMaxFusedSlots) {
  TenantIr ir;
  ir.passes.emplace_back();
  for (int i = 0; i < kMaxFusedSlots + 4; ++i) {
    ir.passes[0].slots.push_back(MatchSlot(i));  // no conflicts at all
  }
  EXPECT_EQ(MatchFusion(ir), (kMaxFusedSlots - 1) + 3);
  EXPECT_EQ(ir.passes[0].slots[kMaxFusedSlots - 1].fusion_group,
            ir.passes[0].slots[0].fusion_group);
  EXPECT_NE(ir.passes[0].slots[kMaxFusedSlots].fusion_group,
            ir.passes[0].slots[0].fusion_group);
}

TEST(MatchFusionTest, DeadSlotsFuseTransparentlyWithoutCounting) {
  TenantIr ir;
  ir.passes.emplace_back();
  auto& slots = ir.passes[0].slots;
  slots.push_back(MatchSlot(0));
  slots[0].entries.clear();  // dead after DTE
  slots.push_back(MatchSlot(1));
  slots.push_back(MatchSlot(2));
  ASSERT_EQ(DeadTableElimination(ir), 1);
  // dead + live + live: only the third slot joins a group that already
  // has a live member.
  EXPECT_EQ(MatchFusion(ir), 1);
  EXPECT_EQ(slots[0].fusion_group, slots[1].fusion_group);
  EXPECT_EQ(slots[1].fusion_group, slots[2].fusion_group);
}

// ------------------------------------------- emission (SoA layout)

TEST(EmitPlanTest, LaysOutRulesStructOfArraysWithPrecomputedMasks) {
  auto dp = MakeDataPlane();
  dp.EnableCompiledPlans();
  std::string error;
  const auto plan = CompileTenant(dp.pipeline(), 1, nullptr, &error);
  ASSERT_NE(plan, nullptr) << error;
  EXPECT_EQ(plan->tenant, 1);
  ASSERT_EQ(plan->passes.size(), 1u);
  ASSERT_FALSE(plan->table_epochs.empty());

  const CompiledPass& pass = plan->passes[0];
  ASSERT_EQ(pass.slots.size(), 3u);
  for (const CompiledSlot& slot : pass.slots) {
    // Parallel arrays: one op span and one action per entry.
    EXPECT_EQ(slot.op_begin.size(), slot.op_count.size());
    EXPECT_EQ(slot.op_begin.size(), slot.actions.size());
    for (std::size_t e = 0; e < slot.op_begin.size(); ++e) {
      EXPECT_LE(slot.op_begin[e] + slot.op_count[e], plan->ops.size());
    }
  }
  // The firewall's allow rule compiled a pre-masked src-ip op: the fw
  // column is ternary, and FieldMatch::Exact carries a full mask, so
  // emission pre-computes value & mask once at compile time.
  const CompiledSlot& fw = pass.slots[0];
  ASSERT_EQ(fw.kind, SlotKind::kMatch);
  bool found_src_op = false;
  for (std::size_t e = 0; e < fw.op_begin.size(); ++e) {
    for (std::uint16_t o = 0; o < fw.op_count[e]; ++o) {
      const CompiledOp& op = plan->ops[fw.op_begin[e] + o];
      if (op.field == static_cast<std::uint8_t>(FieldId::kSrcIp)) {
        EXPECT_EQ(op.kind, MatchKind::kTernary);
        EXPECT_EQ(op.a, 0x0a000001u & op.b);
        found_src_op = true;
      }
    }
  }
  EXPECT_TRUE(found_src_op);
  // Groups tile the slots exactly once, in order.
  std::uint32_t covered = 0;
  for (const CompiledGroup& group : pass.groups) {
    EXPECT_EQ(group.slot_begin, covered);
    covered += group.slot_count;
  }
  EXPECT_EQ(covered, pass.slots.size());
}

TEST(EmitPlanTest, FoldedCatchAllOnlyTableEmitsNoOps) {
  auto dp = MakeDataPlane();
  // Tenant 2's single-NF chain: tc holds one always-match rule + the
  // catch-all; fw and rt hold nothing.
  const auto plan = CompileTenant(dp.pipeline(), 2, nullptr);
  ASSERT_NE(plan, nullptr);
  const CompiledPass& pass = plan->passes[0];
  EXPECT_EQ(pass.slots[0].kind, SlotKind::kDead);    // fw
  EXPECT_EQ(pass.slots[1].kind, SlotKind::kAlways);  // tc folded
  EXPECT_EQ(pass.slots[2].kind, SlotKind::kDead);    // rt
  // A folded slot matches nothing: a single entry with an empty op span.
  ASSERT_EQ(pass.slots[1].op_count.size(), 1u);
  EXPECT_EQ(pass.slots[1].op_count[0], 0);
  EXPECT_GE(plan->stats.dead_tables, 2);
  EXPECT_GE(plan->stats.folded_tables, 1);
}

// ----------------------------------------------------------- plan cache

TEST(PlanCacheTest, WarmThenAcquireServesTheCompiledPlan) {
  auto dp = MakeDataPlane();
  dp.EnableCompiledPlans();
  auto* cache = dp.pipeline().plan_cache();
  ASSERT_NE(cache, nullptr);
  EXPECT_TRUE(cache->Warm(1));
  const auto plan = cache->Acquire(1);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->Validate());
  EXPECT_GE(cache->PlansCompiled(), 1u);
  EXPECT_EQ(cache->FallbackTenants(), 0u);
}

TEST(PlanCacheTest, MutationHooksInvalidateAndRecompile) {
  auto dp = MakeDataPlane();
  dp.EnableCompiledPlans();
  auto* cache = dp.pipeline().plan_cache();
  ASSERT_TRUE(cache->Warm(1));
  const auto before = cache->Acquire(1);
  const std::uint64_t generation = cache->generation();

  // Departure runs the DataPlane invalidation hook.
  EXPECT_GT(dp.DeallocateSfc(1), 0u);
  EXPECT_GE(cache->Invalidations(), 1u);
  EXPECT_NE(cache->generation(), generation);
  // The old plan is stale; a fresh Acquire compiles the empty program.
  EXPECT_FALSE(before->Validate());
  const auto after = cache->Acquire(1);
  ASSERT_NE(after, nullptr);
  EXPECT_TRUE(after->Validate());
  EXPECT_GE(cache->Recompiles(), 1u);
  for (const CompiledSlot& slot : after->passes.empty()
                                      ? after->tail.slots
                                      : after->passes[0].slots) {
    EXPECT_EQ(slot.kind, SlotKind::kDead);
  }
}

TEST(PlanCacheTest, ExecContextDetectsStaleEpochsPerPacket) {
  auto dp = MakeDataPlane();
  dp.EnableCompiledPlans();
  auto* cache = dp.pipeline().plan_cache();
  ASSERT_TRUE(cache->Warm(1));

  ExecContext exec(*cache);
  // Hold a reference so `before` stays inspectable after the context
  // drops its memoized copy.
  const auto before = cache->Acquire(1);
  ASSERT_NE(before, nullptr);
  ASSERT_EQ(exec.PlanFor(1), before.get());

  // Mutate a lifted table directly — bypassing every DataPlane hook —
  // so only the per-packet epoch backstop can notice.
  auto* table = dp.pipeline().stage(0).tables()[0].get();
  std::vector<FieldMatch> matches(table->key().size(), FieldMatch::Any());
  matches[0] = FieldMatch::Exact(1);
  matches[1] = FieldMatch::Exact(0);
  ASSERT_NE(table->AddEntry(std::move(matches), 0, {}, 5, 1), kInvalidEntryHandle);

  // Stale detected on the very next resolve; the context invalidates
  // and recompiles in place against the mutated table.
  const CompiledPlan* recompiled = exec.PlanFor(1);
  ASSERT_NE(recompiled, nullptr);
  EXPECT_NE(recompiled, before.get());
  EXPECT_FALSE(before->Validate());
  EXPECT_TRUE(recompiled->Validate());
  EXPECT_GE(cache->Invalidations(), 1u);
  EXPECT_GE(cache->Recompiles(), 1u);
}

TEST(PlanCacheTest, UnsupportedTenantIsCachedAsInterpreterFallback) {
  Pipeline pipeline;
  ASSERT_NE(pipeline.stage(0).AddTable("custom", {{FieldId::kSrcIp, MatchKind::kExact}}),
            nullptr);
  PlanCache cache(pipeline, ActionMetadata{});
  std::string error;
  EXPECT_FALSE(cache.Warm(7, &error));
  EXPECT_FALSE(error.empty());
  EXPECT_EQ(cache.Acquire(7), nullptr);
  EXPECT_EQ(cache.FallbackTenants(), 1u);
  EXPECT_EQ(cache.PlansCompiled(), 0u);
}

}  // namespace
}  // namespace sfp::switchsim::compiler
