// End-to-end integration tests: control-plane provisioning drives the
// data plane; tenant traffic flows through the virtualized pipeline;
// dynamic arrival/departure (R1-R5 of §II-A).
#include <gtest/gtest.h>

#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "workload/sfc_gen.h"
#include "workload/traffic.h"

namespace sfp::core {
namespace {

using dataplane::Sfc;
using net::Ipv4Address;
using net::MakeTcpPacket;
using nf::NfConfig;
using nf::NfType;
using switchsim::FieldMatch;

switchsim::SwitchConfig TestSwitch() {
  switchsim::SwitchConfig config;
  config.num_stages = 8;
  config.blocks_per_stage = 20;
  config.entries_per_block = 1000;
  config.backplane_gbps = 400.0;
  return config;
}

NfConfig Fw(std::uint16_t blocked_port) {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                            FieldMatch::Any(),
                                            FieldMatch::Range(blocked_port, blocked_port),
                                            FieldMatch::Any()));
  return config;
}

NfConfig Rt() {
  NfConfig config;
  config.type = NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));  // default route
  return config;
}

NfConfig Lb(Ipv4Address vip, Ipv4Address dip) {
  NfConfig config;
  config.type = NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(vip, 80, dip));
  return config;
}

NfConfig Tc(std::uint8_t cls) {
  NfConfig config;
  config.type = NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

TEST(SfpSystemTest, ExplicitLayoutAndFullChainTraffic) {
  SfpSystem system(TestSwitch());
  ASSERT_EQ(system.ProvisionPhysical({{NfType::kFirewall},
                                      {NfType::kClassifier},
                                      {NfType::kLoadBalancer},
                                      {NfType::kRouter}}),
            4);

  Sfc sfc;
  sfc.tenant = 10;
  sfc.bandwidth_gbps = 20;
  const auto vip = Ipv4Address::Of(10, 0, 0, 100);
  const auto dip = Ipv4Address::Of(192, 168, 1, 1);
  sfc.chain = {Fw(443), Tc(2), Lb(vip, dip), Rt()};
  auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted) << admit.reason;
  EXPECT_EQ(admit.passes, 1);  // in pipeline order

  auto out = system.Process(MakeTcpPacket(10, Ipv4Address::Of(1, 1, 1, 1), vip, 99, 80, 128));
  EXPECT_FALSE(out.meta.dropped);
  EXPECT_EQ(out.meta.flow_class, 2);
  EXPECT_EQ(out.packet.ipv4->dst, dip);
  EXPECT_EQ(out.meta.egress_port, 1);
  EXPECT_EQ(out.passes, 1);

  auto blocked =
      system.Process(MakeTcpPacket(10, Ipv4Address::Of(1, 1, 1, 1), vip, 99, 443, 128));
  EXPECT_TRUE(blocked.meta.dropped);
}

TEST(SfpSystemTest, OutOfOrderChainRecirculatesEndToEnd) {
  SfpSystem system(TestSwitch());
  system.ProvisionPhysical({{NfType::kFirewall},
                            {NfType::kClassifier},
                            {NfType::kLoadBalancer},
                            {NfType::kRouter}});

  Sfc sfc;
  sfc.tenant = 11;
  sfc.bandwidth_gbps = 10;
  // Router first, firewall last: needs a fold.
  sfc.chain = {Rt(), Fw(443)};
  auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted) << admit.reason;
  EXPECT_EQ(admit.passes, 2);
  EXPECT_NEAR(admit.backplane_gbps, 20.0, 1e-9);

  auto out = system.Process(MakeTcpPacket(11, Ipv4Address::Of(1, 1, 1, 1),
                                          Ipv4Address::Of(2, 2, 2, 2), 99, 443, 128));
  EXPECT_EQ(out.passes, 2);
  EXPECT_TRUE(out.meta.dropped);  // FW applies on the second pass
}

TEST(SfpSystemTest, AdmissionControlEnforcesBackplaneCapacity) {
  auto config = TestSwitch();
  config.backplane_gbps = 50.0;
  SfpSystem system(config);
  system.ProvisionPhysical({{NfType::kFirewall}});

  Sfc a;
  a.tenant = 1;
  a.bandwidth_gbps = 30;
  a.chain = {Fw(443)};
  Sfc b = a;
  b.tenant = 2;
  b.bandwidth_gbps = 30;
  EXPECT_TRUE(system.AdmitTenant(a).admitted);
  auto rejected = system.AdmitTenant(b);
  EXPECT_FALSE(rejected.admitted);
  EXPECT_EQ(rejected.reason, "backplane capacity exceeded");
  // Rejection must leave no residue: removing tenant 1 readmits 2.
  EXPECT_TRUE(system.RemoveTenant(1));
  EXPECT_TRUE(system.AdmitTenant(b).admitted);
}

TEST(SfpSystemTest, StatsTrackAdmissionsAndMemory) {
  SfpSystem system(TestSwitch());
  system.ProvisionPhysical({{NfType::kFirewall}, {NfType::kRouter}});

  Sfc sfc;
  sfc.tenant = 5;
  sfc.bandwidth_gbps = 25;
  sfc.chain = {Fw(80), Rt()};
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  auto stats = system.Stats();
  EXPECT_EQ(stats.tenants, 1);
  EXPECT_NEAR(stats.offered_gbps, 25.0, 1e-9);
  EXPECT_NEAR(stats.backplane_gbps, 25.0, 1e-9);
  EXPECT_GT(stats.entries_used, 0);
  EXPECT_GE(stats.blocks_used, 2);

  system.RemoveTenant(5);
  stats = system.Stats();
  EXPECT_EQ(stats.tenants, 0);
  EXPECT_EQ(stats.entries_used, 0);
}

TEST(SfpSystemTest, SolverDrivenProvisioningServesWorkload) {
  SfpSystem system(TestSwitch());
  // Expected workload: a handful of random concrete SFCs.
  Rng rng(99);
  std::vector<Sfc> expected;
  for (int t = 0; t < 5; ++t) {
    expected.push_back(workload::GenerateConcreteSfc(
        static_cast<dataplane::TenantId>(100 + t), 3, 10.0, rng, /*rules_per_nf=*/30));
  }
  controlplane::ApproxOptions options;
  options.model.max_passes = 2;
  const int installed = system.ProvisionPhysical(expected, options);
  EXPECT_GE(installed, nf::kNumNfTypes);  // eq. 4: every type somewhere

  // Every expected tenant can actually be admitted and served.
  int admitted = 0;
  for (const auto& sfc : expected) {
    if (system.AdmitTenant(sfc).admitted) ++admitted;
  }
  EXPECT_GE(admitted, 4);  // near-universal admission on this small load

  workload::PacketSizeProfile profile;
  auto packets = workload::GenerateFlows(expected[0].tenant, 16, 200, profile, rng);
  int processed = 0;
  for (const auto& packet : packets) {
    auto out = system.Process(packet);
    EXPECT_LE(out.passes, 8);
    ++processed;
  }
  EXPECT_EQ(processed, 200);
}

TEST(SfpSystemTest, ManyTenantsChurn) {
  SfpSystem system(TestSwitch());
  system.ProvisionPhysical({{NfType::kFirewall, NfType::kClassifier},
                            {NfType::kLoadBalancer, NfType::kRouter},
                            {NfType::kFirewall, NfType::kRouter},
                            {NfType::kClassifier, NfType::kNat}});

  Rng rng(7);
  std::vector<dataplane::TenantId> active;
  int total_admitted = 0;
  for (int round = 0; round < 50; ++round) {
    if (!active.empty() && rng.Bernoulli(0.4)) {
      const std::size_t at =
          static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(active.size()) - 1));
      EXPECT_TRUE(system.RemoveTenant(active[at]));
      active.erase(active.begin() + static_cast<std::ptrdiff_t>(at));
    } else {
      const auto tenant = static_cast<dataplane::TenantId>(200 + round);
      auto sfc = workload::GenerateConcreteSfc(tenant, 2, 2.0, rng, /*rules_per_nf=*/10);
      if (system.AdmitTenant(sfc).admitted) {
        active.push_back(tenant);
        ++total_admitted;
      }
    }
  }
  EXPECT_GT(total_admitted, 10);
  // Remove everyone: the pipeline must drain to zero tenant entries.
  for (const auto tenant : active) EXPECT_TRUE(system.RemoveTenant(tenant));
  EXPECT_EQ(system.Stats().entries_used, 0);
  EXPECT_EQ(system.Stats().tenants, 0);
}

TEST(SfpSystemTest, TelemetryTracksPerTenantBehaviour) {
  SfpSystem system(TestSwitch());
  system.ProvisionPhysical({{NfType::kFirewall}});

  Sfc sfc;
  sfc.tenant = 3;
  sfc.bandwidth_gbps = 10;
  sfc.chain = {Fw(80)};
  ASSERT_TRUE(system.AdmitTenant(sfc).admitted);

  // 4 packets for tenant 3 (two blocked), 2 for unconfigured tenant 8.
  for (const std::uint16_t port : {80, 80, 443, 22}) {
    system.Process(MakeTcpPacket(3, Ipv4Address::Of(1, 1, 1, 1),
                                 Ipv4Address::Of(2, 2, 2, 2), 9, port, 100));
  }
  for (int i = 0; i < 2; ++i) {
    system.Process(MakeTcpPacket(8, Ipv4Address::Of(1, 1, 1, 1),
                                 Ipv4Address::Of(2, 2, 2, 2), 9, 80, 200));
  }

  const auto t3 = system.Telemetry().Tenant(3);
  EXPECT_EQ(t3.packets, 4u);
  EXPECT_EQ(t3.drops, 2u);
  EXPECT_EQ(t3.bytes, 400u);
  EXPECT_GT(t3.MeanLatencyNs(), 0.0);

  const auto t8 = system.Telemetry().Tenant(8);
  EXPECT_EQ(t8.packets, 2u);
  EXPECT_EQ(t8.drops, 0u);

  const auto total = system.Telemetry().Total();
  EXPECT_EQ(total.packets, 6u);
  EXPECT_EQ(system.Telemetry().Tenants(), (std::vector<std::uint16_t>{3, 8}));
}

TEST(SfpSystemTest, TelemetryCountsRecirculatedTenants) {
  SfpSystem system(TestSwitch());
  system.ProvisionPhysical({{NfType::kFirewall}, {NfType::kClassifier}});

  Sfc sfc;
  sfc.tenant = 6;
  sfc.bandwidth_gbps = 5;
  sfc.chain = {Tc(1), Fw(443)};  // TC @1 then FW @0: folds to 2 passes
  const auto admit = system.AdmitTenant(sfc);
  ASSERT_TRUE(admit.admitted) << admit.reason;
  ASSERT_EQ(admit.passes, 2);

  system.Process(MakeTcpPacket(6, Ipv4Address::Of(1, 1, 1, 1),
                               Ipv4Address::Of(2, 2, 2, 2), 9, 80, 64));
  const auto t6 = system.Telemetry().Tenant(6);
  EXPECT_EQ(t6.recirculated_packets, 1u);
  EXPECT_NEAR(t6.MeanPasses(), 2.0, 1e-9);
}

}  // namespace
}  // namespace sfp::core
