// Tests for the NF dependency analysis behind pass packing
// (DESIGN.md "Intra-chain NF parallelism"): per-NF read/write/drop/
// state summaries, the pairwise independence relation, and the greedy
// run partitioner.
#include "dataplane/nf_deps.h"

#include <gtest/gtest.h>

#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/rate_limiter.h"
#include "nf/router.h"
#include "switchsim/compiler/action_traits.h"

namespace sfp::dataplane {
namespace {

using net::Ipv4Address;
using nf::NfConfig;
using nf::NfType;
using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::compiler::FieldBit;
using switchsim::compiler::kEffectEgressPort;
using switchsim::compiler::kEffectScratch;
using switchsim::compiler::kEffectTtl;
using switchsim::compiler::kNoFields;

// ---- representative tenant configurations ---------------------------

// Deny on a destination-port range; source wildcarded.
NfConfig FwPortOnly() {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(),
                                            FieldMatch::Any(),
                                            FieldMatch::Range(443, 443), FieldMatch::Any()));
  return config;
}

// Deny with a concrete /24 source: the match key reads kSrcIp too.
NfConfig FwSrcMatch() {
  NfConfig config;
  config.type = NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      FieldMatch::Ternary(0x0A000000, 0xFFFFFF00), FieldMatch::Any(), FieldMatch::Any(),
      FieldMatch::Range(443, 443), FieldMatch::Any()));
  return config;
}

NfConfig TcPort(std::uint16_t lo, std::uint16_t hi) {
  NfConfig config;
  config.type = NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(lo, hi, 3));
  return config;
}

NfConfig RtConfig() {
  NfConfig config;
  config.type = NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0x0A000000, 24, 7));
  return config;
}

NfConfig LbConfig() {
  NfConfig config;
  config.type = NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(Ipv4Address::Of(10, 0, 0, 100), 80,
                                                      Ipv4Address::Of(192, 168, 0, 1)));
  return config;
}

NfConfig NatConfig() {
  NfConfig config;
  config.type = NfType::kNat;
  config.rules.push_back(nf::Nat::Translate(Ipv4Address::Of(10, 1, 2, 3),
                                            Ipv4Address::Of(203, 0, 113, 7)));
  return config;
}

NfConfig RlConfig() {
  NfConfig config;
  config.type = NfType::kRateLimiter;
  config.rules.push_back(nf::RateLimiter::Police(0x0A000000, 0xFFFF0000, 0));
  return config;
}

// ---- SummarizeNf ----------------------------------------------------

TEST(NfDepsTest, FirewallSummaryReadsMatchKeyDropsStateless) {
  const NfEffects fw = SummarizeNf(FwPortOnly());
  EXPECT_EQ(fw.reads, FieldBit(FieldId::kDstPort));
  EXPECT_EQ(fw.writes, kNoFields);
  EXPECT_TRUE(fw.may_drop);
  EXPECT_FALSE(fw.stateful);

  const NfEffects fw_src = SummarizeNf(FwSrcMatch());
  EXPECT_EQ(fw_src.reads, FieldBit(FieldId::kSrcIp) | FieldBit(FieldId::kDstPort));
}

TEST(NfDepsTest, WildcardedKeyFieldsAreNotReads) {
  // A full-range port match constrains nothing: the lookup result
  // cannot depend on the field, so it must not count as a read (same
  // rule the compiler's lift applies to IrSlot::reads).
  const NfEffects tc_any = SummarizeNf(TcPort(0, 65535));
  EXPECT_EQ(tc_any.reads, kNoFields);
  const NfEffects tc_narrow = SummarizeNf(TcPort(80, 80));
  EXPECT_EQ(tc_narrow.reads, FieldBit(FieldId::kDstPort));
  EXPECT_EQ(tc_narrow.writes, FieldBit(FieldId::kFlowClass));
  EXPECT_FALSE(tc_narrow.may_drop);
  EXPECT_FALSE(tc_narrow.stateful);
}

TEST(NfDepsTest, RouterSummaryCoversEffectBits) {
  const NfEffects rt = SummarizeNf(RtConfig());
  // LPM /24 is concrete -> key read; the action reads and writes the
  // TTL and writes the egress port (virtual effect bits).
  EXPECT_EQ(rt.reads, FieldBit(FieldId::kDstIp) | kEffectTtl);
  EXPECT_EQ(rt.writes, kEffectEgressPort | kEffectTtl);
  EXPECT_TRUE(rt.may_drop);  // TTL expiry
  EXPECT_FALSE(rt.stateful);
}

TEST(NfDepsTest, LoadBalancerAndNatSummaries) {
  const NfEffects lb = SummarizeNf(LbConfig());
  EXPECT_EQ(lb.reads, FieldBit(FieldId::kDstIp) | FieldBit(FieldId::kDstPort));
  EXPECT_EQ(lb.writes, FieldBit(FieldId::kDstIp) | kEffectScratch);
  EXPECT_FALSE(lb.may_drop);

  const NfEffects nat = SummarizeNf(NatConfig());
  EXPECT_EQ(nat.reads, FieldBit(FieldId::kSrcIp));
  EXPECT_EQ(nat.writes, FieldBit(FieldId::kSrcIp));
  EXPECT_FALSE(nat.may_drop);
  EXPECT_FALSE(nat.stateful);
}

TEST(NfDepsTest, RateLimiterSummaryIsStatefulDropper) {
  const NfEffects rl = SummarizeNf(RlConfig());
  EXPECT_EQ(rl.reads, FieldBit(FieldId::kSrcIp));  // concrete ternary key
  EXPECT_EQ(rl.writes, kNoFields);
  EXPECT_TRUE(rl.may_drop);
  EXPECT_TRUE(rl.stateful);
}

TEST(NfDepsTest, EmptyConfigHasNoEffects) {
  NfConfig empty;
  empty.type = NfType::kFirewall;
  const NfEffects effects = SummarizeNf(empty);
  EXPECT_EQ(effects.reads, kNoFields);
  EXPECT_EQ(effects.writes, kNoFields);
  EXPECT_FALSE(effects.may_drop);
  EXPECT_FALSE(effects.stateful);
}

// ---- Independent ----------------------------------------------------

TEST(NfDepsTest, IndependentPairs) {
  const NfEffects fw = SummarizeNf(FwPortOnly());
  const NfEffects tc = SummarizeNf(TcPort(80, 80));
  const NfEffects rt = SummarizeNf(RtConfig());
  const NfEffects lb = SummarizeNf(LbConfig());
  const NfEffects nat = SummarizeNf(NatConfig());
  const NfEffects rl = SummarizeNf(RlConfig());

  // Disjoint fields and no drop-gate in either direction.
  EXPECT_TRUE(Independent(fw, tc));
  EXPECT_TRUE(Independent(fw, rt));
  EXPECT_TRUE(Independent(fw, lb));
  EXPECT_TRUE(Independent(tc, rt));
  EXPECT_TRUE(Independent(tc, lb));
  EXPECT_TRUE(Independent(tc, nat));
  EXPECT_TRUE(Independent(tc, rl));
  EXPECT_TRUE(Independent(rt, nat));
  EXPECT_TRUE(Independent(lb, nat));
}

TEST(NfDepsTest, FieldConflictsAreRejectedSymmetrically) {
  const NfEffects fw_src = SummarizeNf(FwSrcMatch());
  const NfEffects rt = SummarizeNf(RtConfig());
  const NfEffects lb = SummarizeNf(LbConfig());
  const NfEffects nat = SummarizeNf(NatConfig());
  const NfEffects rl = SummarizeNf(RlConfig());

  MergeReject why = MergeReject::kNone;
  // NAT rewrites the source IP the firewall's key reads.
  EXPECT_FALSE(Independent(fw_src, nat, &why));
  EXPECT_EQ(why, MergeReject::kFieldConflict);
  EXPECT_FALSE(Independent(nat, fw_src, &why));
  EXPECT_EQ(why, MergeReject::kFieldConflict);
  // LB rewrites the destination IP the router routes on.
  EXPECT_FALSE(Independent(rt, lb, &why));
  EXPECT_EQ(why, MergeReject::kFieldConflict);
  // NAT rewrites the source IP the rate limiter polices on.
  EXPECT_FALSE(Independent(nat, rl, &why));
  EXPECT_EQ(why, MergeReject::kFieldConflict);
}

TEST(NfDepsTest, DropGateProtectsStatefulNfs) {
  const NfEffects fw = SummarizeNf(FwPortOnly());
  const NfEffects rt = SummarizeNf(RtConfig());
  const NfEffects rl = SummarizeNf(RlConfig());

  // A dropper reordered around a token bucket would change which
  // packets drain it, diverging future verdicts.
  MergeReject why = MergeReject::kNone;
  EXPECT_FALSE(Independent(fw, rl, &why));
  EXPECT_EQ(why, MergeReject::kDropGate);
  EXPECT_FALSE(Independent(rl, fw, &why));
  EXPECT_EQ(why, MergeReject::kDropGate);
  EXPECT_FALSE(Independent(rt, rl, &why));  // TTL expiry drops too
  EXPECT_EQ(why, MergeReject::kDropGate);

  // Two *stateless* droppers commute: the drop set is the union either
  // way and the reason is kNfAction in both orders.
  EXPECT_TRUE(Independent(fw, rt));
  EXPECT_TRUE(Independent(fw, SummarizeNf(FwPortOnly())));
}

TEST(NfDepsTest, WriteWriteConflicts) {
  // Two classifiers both write flow_class: last-writer-wins makes the
  // order observable.
  const NfEffects a = SummarizeNf(TcPort(80, 80));
  const NfEffects b = SummarizeNf(TcPort(443, 443));
  MergeReject why = MergeReject::kNone;
  EXPECT_FALSE(Independent(a, b, &why));
  EXPECT_EQ(why, MergeReject::kFieldConflict);
}

// ---- MergeRuns ------------------------------------------------------

TEST(NfDepsTest, MergeRunsKeepsIndependentChainWhole) {
  const std::vector<nf::NfConfig> chain = {TcPort(80, 80), FwPortOnly(), LbConfig()};
  std::vector<std::uint64_t> rejects(3, 0);
  EXPECT_EQ(MergeRuns(chain, &rejects), (std::vector<int>{0, 0, 0}));
  EXPECT_EQ(rejects[static_cast<std::size_t>(MergeReject::kFieldConflict)], 0u);
  EXPECT_EQ(rejects[static_cast<std::size_t>(MergeReject::kDropGate)], 0u);
}

TEST(NfDepsTest, MergeRunsSplitsOnFieldConflict) {
  // NAT conflicts with the src-matching firewall two positions back:
  // the run boundary is where independence against *any* member fails.
  const std::vector<nf::NfConfig> chain = {FwSrcMatch(), TcPort(80, 80), NatConfig()};
  std::vector<std::uint64_t> rejects(3, 0);
  EXPECT_EQ(MergeRuns(chain, &rejects), (std::vector<int>{0, 0, 1}));
  EXPECT_EQ(rejects[static_cast<std::size_t>(MergeReject::kFieldConflict)], 1u);
}

TEST(NfDepsTest, MergeRunsSplitsOnDropGate) {
  const std::vector<nf::NfConfig> chain = {RlConfig(), FwPortOnly()};
  std::vector<std::uint64_t> rejects(3, 0);
  EXPECT_EQ(MergeRuns(chain, &rejects), (std::vector<int>{0, 1}));
  EXPECT_EQ(rejects[static_cast<std::size_t>(MergeReject::kDropGate)], 1u);
}

TEST(NfDepsTest, MergeRunsDegenerateInputs) {
  EXPECT_TRUE(MergeRuns({}).empty());
  EXPECT_EQ(MergeRuns({FwPortOnly()}), (std::vector<int>{0}));
  // Rejects pointer is optional.
  EXPECT_EQ(MergeRuns({FwSrcMatch(), NatConfig()}), (std::vector<int>{0, 1}));
}

}  // namespace
}  // namespace sfp::dataplane
