// Tests for branching-SFC flattening (§VII).
#include "dataplane/dag.h"

#include <gtest/gtest.h>

#include "dataplane/data_plane.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"

namespace sfp::dataplane {
namespace {

nf::NfConfig Nf(nf::NfType type) {
  nf::NfConfig config;
  config.type = type;
  return config;
}

TEST(DagTest, ValidatesStructure) {
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});
  EXPECT_TRUE(IsValidDag(dag));

  dag.nodes[1].successors = {5};  // out of range
  EXPECT_FALSE(IsValidDag(dag));

  dag.nodes[1].successors = {0};  // cycle 0 -> 1 -> 0
  EXPECT_FALSE(IsValidDag(dag));
}

TEST(DagTest, DepthsOnDiamond) {
  // 0 -> {1, 2} -> 3 (diamond: 1 and 2 are independent).
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1, 2}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRateLimiter), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});

  const auto depths = TopologicalDepths(dag);
  ASSERT_EQ(depths.size(), 4u);
  EXPECT_EQ(depths[0], 0);
  EXPECT_EQ(depths[1], 1);
  EXPECT_EQ(depths[2], 1);  // same depth as node 1: independent
  EXPECT_EQ(depths[3], 2);
}

TEST(DagTest, DepthsOnWideDagUseLongestPath) {
  // Two entries (0, 1) both feed the join 2; entry 0 also reaches 2
  // through the long arm 0 -> 3 -> 4 -> 2. Depth is the *longest*
  // path, so the join sits at 3, not at 1.
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {2, 3}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {2}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});
  dag.nodes.push_back({Nf(nf::NfType::kRateLimiter), {4}});
  dag.nodes.push_back({Nf(nf::NfType::kNat), {2}});

  const auto depths = TopologicalDepths(dag);
  ASSERT_EQ(depths.size(), 5u);
  EXPECT_EQ(depths[0], 0);
  EXPECT_EQ(depths[1], 0);  // both entries at depth 0: independent
  EXPECT_EQ(depths[2], 3);  // join: longest incoming path wins
  EXPECT_EQ(depths[3], 1);
  EXPECT_EQ(depths[4], 2);
}

TEST(DagTest, FlattenTieBreaksByNodeIndex) {
  // A wide depth-1 layer declared out of index order in the successor
  // list: flatten must order by (depth, node index), not by edge
  // declaration order, so the linearization is deterministic.
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {3, 1, 2}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {4}});
  dag.nodes.push_back({Nf(nf::NfType::kRateLimiter), {4}});
  dag.nodes.push_back({Nf(nf::NfType::kNat), {4}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  ASSERT_EQ(sfc->chain.size(), 5u);
  EXPECT_EQ(sfc->chain[0].type, nf::NfType::kFirewall);
  EXPECT_EQ(sfc->chain[1].type, nf::NfType::kClassifier);   // index 1
  EXPECT_EQ(sfc->chain[2].type, nf::NfType::kRateLimiter);  // index 2
  EXPECT_EQ(sfc->chain[3].type, nf::NfType::kNat);          // index 3
  EXPECT_EQ(sfc->chain[4].type, nf::NfType::kRouter);
}

TEST(DagTest, FlattenOrdersByDepthBeforeIndex) {
  // Node 1 has the *smallest* index after the entry but the deepest
  // position: 0 -> 4 -> 1. Depth dominates index in the ordering.
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {2, 4}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {}});
  dag.nodes.push_back({});  // isolated node: entry at depth 0
  dag.nodes.back().nf = Nf(nf::NfType::kRateLimiter);
  dag.nodes.push_back({Nf(nf::NfType::kNat), {1}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  ASSERT_EQ(sfc->chain.size(), 5u);
  // Depth 0: nodes 0, 3 (index order); depth 1: 2, 4; depth 2: 1.
  EXPECT_EQ(sfc->chain[0].type, nf::NfType::kFirewall);
  EXPECT_EQ(sfc->chain[1].type, nf::NfType::kRateLimiter);
  EXPECT_EQ(sfc->chain[2].type, nf::NfType::kClassifier);
  EXPECT_EQ(sfc->chain[3].type, nf::NfType::kNat);
  EXPECT_EQ(sfc->chain[4].type, nf::NfType::kRouter);
}

TEST(DagTest, FlattenRespectsDependencies) {
  SfcDag dag;
  dag.tenant = 9;
  dag.bandwidth_gbps = 12;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1, 2}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRateLimiter), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  EXPECT_EQ(sfc->tenant, 9);
  EXPECT_EQ(sfc->bandwidth_gbps, 12);
  ASSERT_EQ(sfc->chain.size(), 4u);
  // FW first, RT last; the independent middle pair keeps index order.
  EXPECT_EQ(sfc->chain[0].type, nf::NfType::kFirewall);
  EXPECT_EQ(sfc->chain[1].type, nf::NfType::kClassifier);
  EXPECT_EQ(sfc->chain[2].type, nf::NfType::kRateLimiter);
  EXPECT_EQ(sfc->chain[3].type, nf::NfType::kRouter);
}

TEST(DagTest, FlattenRejectsCycle) {
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {0}});
  EXPECT_FALSE(FlattenDag(dag).has_value());
}

TEST(DagTest, EmptyDagFlattensToEmptyChain) {
  SfcDag dag;
  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  EXPECT_TRUE(sfc->chain.empty());
}

TEST(DagTest, FlattenedDiamondPacksIndependentArmsIntoOnePass) {
  // Diamond FW -> {LB, TC}: the arms are independent by construction
  // (the DAG said so), and their footprints are disjoint, so with
  // SwitchConfig::nf_parallelism the flattened chain packs into one
  // pass even on a stage layout that is out of chain order.
  SfcDag dag;
  dag.tenant = 6;
  dag.bandwidth_gbps = 5;
  nf::NfConfig fw = Nf(nf::NfType::kFirewall);
  fw.rules.push_back(nf::Firewall::Deny(switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Range(443, 443),
                                        switchsim::FieldMatch::Any()));
  nf::NfConfig lb = Nf(nf::NfType::kLoadBalancer);
  lb.rules.push_back(nf::LoadBalancer::SetBackend(
      net::Ipv4Address::Of(10, 0, 0, 100), 80,
      net::Ipv4Address::Of(192, 168, 0, 2)));
  nf::NfConfig tc = Nf(nf::NfType::kClassifier);
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 3));
  dag.nodes.push_back({fw, {1, 2}});
  dag.nodes.push_back({lb, {}});
  dag.nodes.push_back({tc, {}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  ASSERT_EQ(sfc->chain.size(), 3u);

  switchsim::SwitchConfig config;
  config.num_stages = 3;
  config.nf_parallelism = true;
  DataPlane dp(config);
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kClassifier));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(2, nf::NfType::kLoadBalancer));
  const auto result = dp.AllocateSfc(*sfc);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.passes, 1);
  EXPECT_EQ(result.sequential_passes, 2);
}

TEST(DagTest, FlattenedDagAllocatesOnDataPlane) {
  SfcDag dag;
  dag.tenant = 4;
  dag.bandwidth_gbps = 5;
  nf::NfConfig fw = Nf(nf::NfType::kFirewall);
  fw.rules.push_back(nf::Firewall::Deny(switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Range(80, 80),
                                        switchsim::FieldMatch::Any()));
  nf::NfConfig tc = Nf(nf::NfType::kClassifier);
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 2));
  dag.nodes.push_back({fw, {1}});
  dag.nodes.push_back({tc, {}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());

  switchsim::SwitchConfig config;
  config.num_stages = 2;
  DataPlane dp(config);
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, nf::NfType::kClassifier));
  EXPECT_TRUE(dp.AllocateSfc(*sfc).ok);
}

}  // namespace
}  // namespace sfp::dataplane
