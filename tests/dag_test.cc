// Tests for branching-SFC flattening (§VII).
#include "dataplane/dag.h"

#include <gtest/gtest.h>

#include "dataplane/data_plane.h"
#include "nf/classifier.h"
#include "nf/firewall.h"

namespace sfp::dataplane {
namespace {

nf::NfConfig Nf(nf::NfType type) {
  nf::NfConfig config;
  config.type = type;
  return config;
}

TEST(DagTest, ValidatesStructure) {
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});
  EXPECT_TRUE(IsValidDag(dag));

  dag.nodes[1].successors = {5};  // out of range
  EXPECT_FALSE(IsValidDag(dag));

  dag.nodes[1].successors = {0};  // cycle 0 -> 1 -> 0
  EXPECT_FALSE(IsValidDag(dag));
}

TEST(DagTest, DepthsOnDiamond) {
  // 0 -> {1, 2} -> 3 (diamond: 1 and 2 are independent).
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1, 2}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRateLimiter), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});

  const auto depths = TopologicalDepths(dag);
  ASSERT_EQ(depths.size(), 4u);
  EXPECT_EQ(depths[0], 0);
  EXPECT_EQ(depths[1], 1);
  EXPECT_EQ(depths[2], 1);  // same depth as node 1: independent
  EXPECT_EQ(depths[3], 2);
}

TEST(DagTest, FlattenRespectsDependencies) {
  SfcDag dag;
  dag.tenant = 9;
  dag.bandwidth_gbps = 12;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1, 2}});
  dag.nodes.push_back({Nf(nf::NfType::kClassifier), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRateLimiter), {3}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  EXPECT_EQ(sfc->tenant, 9);
  EXPECT_EQ(sfc->bandwidth_gbps, 12);
  ASSERT_EQ(sfc->chain.size(), 4u);
  // FW first, RT last; the independent middle pair keeps index order.
  EXPECT_EQ(sfc->chain[0].type, nf::NfType::kFirewall);
  EXPECT_EQ(sfc->chain[1].type, nf::NfType::kClassifier);
  EXPECT_EQ(sfc->chain[2].type, nf::NfType::kRateLimiter);
  EXPECT_EQ(sfc->chain[3].type, nf::NfType::kRouter);
}

TEST(DagTest, FlattenRejectsCycle) {
  SfcDag dag;
  dag.nodes.push_back({Nf(nf::NfType::kFirewall), {1}});
  dag.nodes.push_back({Nf(nf::NfType::kRouter), {0}});
  EXPECT_FALSE(FlattenDag(dag).has_value());
}

TEST(DagTest, EmptyDagFlattensToEmptyChain) {
  SfcDag dag;
  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());
  EXPECT_TRUE(sfc->chain.empty());
}

TEST(DagTest, FlattenedDagAllocatesOnDataPlane) {
  SfcDag dag;
  dag.tenant = 4;
  dag.bandwidth_gbps = 5;
  nf::NfConfig fw = Nf(nf::NfType::kFirewall);
  fw.rules.push_back(nf::Firewall::Deny(switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Any(),
                                        switchsim::FieldMatch::Range(80, 80),
                                        switchsim::FieldMatch::Any()));
  nf::NfConfig tc = Nf(nf::NfType::kClassifier);
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 2));
  dag.nodes.push_back({fw, {1}});
  dag.nodes.push_back({tc, {}});

  const auto sfc = FlattenDag(dag);
  ASSERT_TRUE(sfc.has_value());

  switchsim::SwitchConfig config;
  config.num_stages = 2;
  DataPlane dp(config);
  ASSERT_TRUE(dp.InstallPhysicalNf(0, nf::NfType::kFirewall));
  ASSERT_TRUE(dp.InstallPhysicalNf(1, nf::NfType::kClassifier));
  EXPECT_TRUE(dp.AllocateSfc(*sfc).ok);
}

}  // namespace
}  // namespace sfp::dataplane
