// Equivalence and concurrency tests for the sharded telemetry
// collector.
//
// TelemetryEquivalenceTest drives the tenant-striped TelemetryCollector
// and a single-map serial reference (the pre-shard semantics,
// reimplemented below) through the same randomized churn — records via
// all three entry points, departures, retention changes, resets — and
// requires every observable (per-tenant counters, totals, tenant and
// departed sets) to match exactly, doubles included. Exactness is the
// point: latency is quantized to fixed point on entry, so no batching
// or interleaving may change any counter by even one ULP.
//
// TelemetryConcurrencyTest hammers the collector from concurrent
// writers, a departure-marking thread, and readers; run under TSan in
// CI. With kKeepDeparted and an unhit cap, no series is ever evicted,
// so total packets must equal the number recorded.
#include "dataplane/telemetry.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <thread>
#include <vector>

#include "common/rng.h"

namespace sfp::dataplane {
namespace {

using sfp::Rng;

switchsim::ProcessResult Result(std::uint16_t tenant, bool dropped, int passes,
                                double latency_ns) {
  switchsim::ProcessResult r;
  r.meta.tenant_id = tenant;
  r.meta.dropped = dropped;
  r.passes = passes;
  r.latency_ns = latency_ns;
  return r;
}

/// Serial single-map reference collector: the seed collector's
/// semantics (revive on traffic, keep/purge retention, global
/// oldest-first departed eviction) with the same fixed-point latency
/// arithmetic as the sharded collector.
class ReferenceCollector {
 public:
  void Record(std::uint32_t wire_bytes, const switchsim::ProcessResult& result) {
    Series& series = series_[result.meta.tenant_id];
    series.departed = false;
    ++series.packets;
    series.bytes += wire_bytes;
    if (result.meta.dropped) ++series.drops;
    if (result.passes > 1) ++series.recirculated_packets;
    series.total_passes += static_cast<std::uint64_t>(result.passes);
    series.latency_fp += TelemetryCollector::QuantizeLatency(result.latency_ns);
    series.max_latency_ns = std::max(series.max_latency_ns, result.latency_ns);
  }

  void SetRetention(TelemetryRetention policy, std::size_t max_departed_series) {
    retention_ = policy;
    max_departed_series_ = max_departed_series;
    EvictExcess();
  }

  void MarkDeparted(std::uint16_t tenant) {
    const auto it = series_.find(tenant);
    if (it == series_.end()) return;
    if (retention_ == TelemetryRetention::kPurgeOnDeparture) {
      series_.erase(it);
      return;
    }
    it->second.departed = true;
    it->second.departed_seq = ++departure_seq_;
    EvictExcess();
  }

  void Reset() {
    series_.clear();
    departure_seq_ = 0;
  }

  TenantCounters Tenant(std::uint16_t tenant) const {
    const auto it = series_.find(tenant);
    return it != series_.end() ? ToCounters(it->second) : TenantCounters{};
  }

  std::vector<std::uint16_t> Tenants() const {
    std::vector<std::uint16_t> tenants;
    for (const auto& [tenant, series] : series_) tenants.push_back(tenant);
    return tenants;  // std::map iterates ascending
  }

  std::vector<std::uint16_t> DepartedTenants() const {
    std::vector<std::uint16_t> tenants;
    for (const auto& [tenant, series] : series_) {
      if (series.departed) tenants.push_back(tenant);
    }
    return tenants;
  }

  TenantCounters Total() const {
    TenantCounters total;
    std::uint64_t latency_fp = 0;
    for (const auto& [tenant, series] : series_) {
      total.packets += series.packets;
      total.bytes += series.bytes;
      total.drops += series.drops;
      total.recirculated_packets += series.recirculated_packets;
      total.total_passes += series.total_passes;
      latency_fp += series.latency_fp;
      total.max_latency_ns = std::max(total.max_latency_ns, series.max_latency_ns);
    }
    total.total_latency_ns =
        static_cast<double>(latency_fp) / TelemetryCollector::kLatencyScale;
    return total;
  }

 private:
  struct Series {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t recirculated_packets = 0;
    std::uint64_t total_passes = 0;
    std::uint64_t latency_fp = 0;
    double max_latency_ns = 0.0;
    bool departed = false;
    std::uint64_t departed_seq = 0;
  };

  static TenantCounters ToCounters(const Series& series) {
    TenantCounters out;
    out.packets = series.packets;
    out.bytes = series.bytes;
    out.drops = series.drops;
    out.recirculated_packets = series.recirculated_packets;
    out.total_passes = series.total_passes;
    out.total_latency_ns =
        static_cast<double>(series.latency_fp) / TelemetryCollector::kLatencyScale;
    out.max_latency_ns = series.max_latency_ns;
    return out;
  }

  void EvictExcess() {
    for (;;) {
      std::size_t departed = 0;
      auto oldest = series_.end();
      for (auto it = series_.begin(); it != series_.end(); ++it) {
        if (!it->second.departed) continue;
        ++departed;
        if (oldest == series_.end() ||
            it->second.departed_seq < oldest->second.departed_seq) {
          oldest = it;
        }
      }
      if (departed <= max_departed_series_) return;
      series_.erase(oldest);
    }
  }

  std::map<std::uint16_t, Series> series_;
  TelemetryRetention retention_ = TelemetryRetention::kKeepDeparted;
  std::size_t max_departed_series_ = 1024;
  std::uint64_t departure_seq_ = 0;
};

void ExpectCountersEqual(const TenantCounters& want, const TenantCounters& got) {
  EXPECT_EQ(want.packets, got.packets);
  EXPECT_EQ(want.bytes, got.bytes);
  EXPECT_EQ(want.drops, got.drops);
  EXPECT_EQ(want.recirculated_packets, got.recirculated_packets);
  EXPECT_EQ(want.total_passes, got.total_passes);
  // Exact double equality is intentional: both sides sum the same
  // fixed-point integers and convert once.
  EXPECT_EQ(want.total_latency_ns, got.total_latency_ns);
  EXPECT_EQ(want.max_latency_ns, got.max_latency_ns);
}

void ExpectEquivalent(const ReferenceCollector& reference,
                      const TelemetryCollector& sharded) {
  ASSERT_EQ(reference.Tenants(), sharded.Tenants());
  EXPECT_EQ(reference.DepartedTenants(), sharded.DepartedTenants());
  ExpectCountersEqual(reference.Total(), sharded.Total());
  const auto snapshot = sharded.TakeSnapshot();
  ExpectCountersEqual(reference.Total(), snapshot.total);
  EXPECT_EQ(reference.DepartedTenants().size(), snapshot.departed);
  ASSERT_EQ(reference.Tenants().size(), snapshot.tenants.size());
  for (const auto& [tenant, counters] : snapshot.tenants) {
    ExpectCountersEqual(reference.Tenant(tenant), counters);
    ExpectCountersEqual(reference.Tenant(tenant), sharded.Tenant(tenant));
  }
}

TEST(TelemetryEquivalenceTest, RandomizedChurnMatchesSerialReference) {
  Rng rng(20220831);
  TelemetryCollector sharded;
  ReferenceCollector reference;

  // More tenants than shards, so stripes collide; more distinct
  // tenants per batch than DeltaTable slots would need flushing only
  // with > 64 — exercised separately below.
  const auto random_tenant = [&] {
    return static_cast<std::uint16_t>(rng.UniformInt(1, 40));
  };

  for (int round = 0; round < 500; ++round) {
    const std::int64_t op = rng.UniformInt(0, 9);
    if (op < 6) {
      const std::size_t n = static_cast<std::size_t>(rng.UniformInt(1, 64));
      std::vector<std::uint32_t> wire(n);
      std::vector<switchsim::ProcessResult> results(n);
      for (std::size_t i = 0; i < n; ++i) {
        wire[i] = static_cast<std::uint32_t>(rng.UniformInt(64, 1500));
        results[i] = Result(random_tenant(), rng.Bernoulli(0.1),
                            static_cast<int>(rng.UniformInt(1, 4)),
                            rng.UniformDouble(0.0, 2000.0));
      }
      switch (round % 3) {
        case 0:
          for (std::size_t i = 0; i < n; ++i) sharded.Record(wire[i], results[i]);
          break;
        case 1:
          sharded.RecordBatch(wire, results);
          break;
        case 2: {
          // Indexed entry point, indices deliberately out of order.
          std::vector<std::uint32_t> indices(n);
          for (std::size_t i = 0; i < n; ++i) {
            indices[i] = static_cast<std::uint32_t>(n - 1 - i);
          }
          sharded.RecordBatch(indices, wire, results);
          break;
        }
      }
      for (std::size_t i = 0; i < n; ++i) reference.Record(wire[i], results[i]);
    } else if (op < 8) {
      const std::uint16_t tenant = static_cast<std::uint16_t>(rng.UniformInt(1, 45));
      sharded.MarkDeparted(tenant);
      reference.MarkDeparted(tenant);
    } else if (op == 8) {
      const auto policy = rng.Bernoulli(0.5) ? TelemetryRetention::kKeepDeparted
                                             : TelemetryRetention::kPurgeOnDeparture;
      const std::size_t cap = static_cast<std::size_t>(rng.UniformInt(0, 8));
      sharded.SetRetention(policy, cap);
      reference.SetRetention(policy, cap);
    } else if (rng.Bernoulli(0.1)) {
      sharded.Reset();
      reference.Reset();
    }
    if (round % 25 == 0) ExpectEquivalent(reference, sharded);
  }
  ExpectEquivalent(reference, sharded);
}

TEST(TelemetryEquivalenceTest, BatchWiderThanDeltaTableFlushesAndStaysExact) {
  // 200 distinct tenants in one batch overflows the 64-slot scratch
  // table, forcing the flush-and-restart path.
  TelemetryCollector sharded;
  ReferenceCollector reference;
  std::vector<std::uint32_t> wire;
  std::vector<switchsim::ProcessResult> results;
  Rng rng(11);
  for (int i = 0; i < 600; ++i) {
    wire.push_back(static_cast<std::uint32_t>(rng.UniformInt(64, 1500)));
    results.push_back(Result(static_cast<std::uint16_t>(1 + i % 200),
                             rng.Bernoulli(0.2), static_cast<int>(rng.UniformInt(1, 3)),
                             rng.UniformDouble(0.0, 500.0)));
  }
  sharded.RecordBatch(wire, results);
  for (std::size_t i = 0; i < wire.size(); ++i) reference.Record(wire[i], results[i]);
  ExpectEquivalent(reference, sharded);
}

TEST(TelemetryConcurrencyTest, ConcurrentRecordReadAndDepartConserveCounts) {
  // kKeepDeparted with the default (unhit) cap: departures only mark,
  // so every recorded packet stays visible and the final total must
  // equal the number recorded. Run under TSan in CI to catch races
  // between the single-shard hot path and all-shard control/read ops.
  TelemetryCollector collector;
  constexpr int kWriters = 4;
  constexpr int kBatches = 200;
  constexpr std::size_t kBatchSize = 64;
  constexpr std::uint16_t kTenants = 32;

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&collector, w] {
      Rng rng(static_cast<std::uint64_t>(100 + w));
      std::vector<std::uint32_t> wire(kBatchSize);
      std::vector<switchsim::ProcessResult> results(kBatchSize);
      for (int b = 0; b < kBatches; ++b) {
        for (std::size_t i = 0; i < kBatchSize; ++i) {
          wire[i] = static_cast<std::uint32_t>(rng.UniformInt(64, 1500));
          results[i] = Result(static_cast<std::uint16_t>(1 + rng.UniformInt(0, kTenants - 1)),
                              rng.Bernoulli(0.05), static_cast<int>(rng.UniformInt(1, 3)),
                              rng.UniformDouble(0.0, 1000.0));
        }
        if (b % 2 == 0) {
          collector.RecordBatch(wire, results);
        } else {
          for (std::size_t i = 0; i < kBatchSize; ++i) {
            collector.Record(wire[i], results[i]);
          }
        }
      }
    });
  }
  threads.emplace_back([&collector] {
    Rng rng(7);
    for (int i = 0; i < 400; ++i) {
      collector.MarkDeparted(static_cast<std::uint16_t>(1 + rng.UniformInt(0, kTenants - 1)));
    }
  });
  threads.emplace_back([&collector] {
    for (int i = 0; i < 200; ++i) {
      (void)collector.Total();
      (void)collector.TakeSnapshot();
      (void)collector.Tenant(static_cast<std::uint16_t>(1 + i % kTenants));
      (void)collector.IsDeparted(static_cast<std::uint16_t>(1 + i % kTenants));
      (void)collector.DepartedTenants();
    }
  });
  for (auto& thread : threads) thread.join();

  const auto total = collector.Total();
  EXPECT_EQ(total.packets, static_cast<std::uint64_t>(kWriters) * kBatches * kBatchSize);
  EXPECT_LE(collector.Tenants().size(), static_cast<std::size_t>(kTenants));
}

}  // namespace
}  // namespace sfp::dataplane
