// Tests for the TelemetryCollector drift query (the recovery loop's
// detection primitive), with emphasis on how windows interact with the
// retention policy: purged or evicted history must never be
// resurrected into a later window, and a re-seen tenant must report a
// restart, not a bogus (or underflowing) delta.
#include <gtest/gtest.h>

#include <vector>

#include "dataplane/telemetry.h"

namespace sfp::dataplane {
namespace {

using Drift = TelemetryCollector::TenantDrift;

switchsim::ProcessResult Result(std::uint16_t tenant, bool dropped, int passes,
                                double latency_ns) {
  switchsim::ProcessResult r;
  r.meta.tenant_id = tenant;
  r.meta.dropped = dropped;
  r.passes = passes;
  r.latency_ns = latency_ns;
  return r;
}

void Send(TelemetryCollector& collector, std::uint16_t tenant, int packets,
          int drops = 0, int passes = 1) {
  for (int i = 0; i < packets; ++i) {
    collector.Record(100, Result(tenant, i < drops, passes, 50.0));
  }
}

const Drift* Find(const std::vector<Drift>& drifts, std::uint16_t tenant) {
  for (const auto& d : drifts) {
    if (d.tenant == tenant) return &d;
  }
  return nullptr;
}

TEST(TelemetryDriftTest, ReportsPerTenantMovementBetweenSnapshots) {
  TelemetryCollector collector;
  Send(collector, 1, 10, 2, 2);
  Send(collector, 2, 4);

  auto window = collector.TakeSnapshot();
  Send(collector, 1, 6, 3, 2);
  Send(collector, 3, 5);

  const auto drifts = collector.DriftSince(window);
  ASSERT_EQ(drifts.size(), 2u);  // tenant 2 was idle — omitted

  const Drift* t1 = Find(drifts, 1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->packets, 6u);
  EXPECT_EQ(t1->drops, 3u);
  EXPECT_EQ(t1->bytes, 600u);
  EXPECT_FALSE(t1->restarted);
  EXPECT_NEAR(t1->DropRate(), 0.5, 1e-12);
  EXPECT_NEAR(t1->MeanPasses(), 2.0, 1e-12);

  // A tenant first seen inside the window reports absolute counters
  // and is not a restart (there was no prior series to lose).
  const Drift* t3 = Find(drifts, 3);
  ASSERT_NE(t3, nullptr);
  EXPECT_EQ(t3->packets, 5u);
  EXPECT_FALSE(t3->restarted);
  EXPECT_EQ(Find(drifts, 2), nullptr);
}

TEST(TelemetryDriftTest, DriftSinceAdvancesTheWindow) {
  TelemetryCollector collector;
  auto window = collector.TakeSnapshot();
  Send(collector, 1, 3);
  EXPECT_EQ(collector.DriftSince(window).size(), 1u);
  // The window moved: with no new traffic the next drift is empty.
  EXPECT_TRUE(collector.DriftSince(window).empty());
  Send(collector, 1, 2);
  const auto drifts = collector.DriftSince(window);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].packets, 2u);
}

TEST(TelemetryDriftTest, PurgedTenantDisappearsWithoutResurrection) {
  TelemetryCollector collector;
  collector.SetRetention(TelemetryRetention::kPurgeOnDeparture);
  Send(collector, 1, 10);
  Send(collector, 2, 4);

  auto window = collector.TakeSnapshot();
  Send(collector, 1, 5);
  collector.MarkDeparted(1);  // purges the series, including the 5 in-window packets

  const auto drifts = collector.DriftSince(window);
  // The purged tenant is simply gone: its pre-window history is not
  // re-counted and its unobserved tail is not invented.
  EXPECT_EQ(Find(drifts, 1), nullptr);
  EXPECT_TRUE(drifts.empty());
}

TEST(TelemetryDriftTest, ReseenAfterPurgeIsARestartNotADelta) {
  TelemetryCollector collector;
  collector.SetRetention(TelemetryRetention::kPurgeOnDeparture);
  Send(collector, 1, 10);

  auto window = collector.TakeSnapshot();
  collector.MarkDeparted(1);
  Send(collector, 1, 3);  // recovered / re-admitted tenant reuses the id

  const auto drifts = collector.DriftSince(window);
  const Drift* t1 = Find(drifts, 1);
  ASSERT_NE(t1, nullptr);
  // Absolute counters of the fresh series — not 13, not 10-underflow.
  EXPECT_EQ(t1->packets, 3u);
  EXPECT_TRUE(t1->restarted);
}

TEST(TelemetryDriftTest, ReseenPastOldCountIsStillARestart) {
  TelemetryCollector collector;
  collector.SetRetention(TelemetryRetention::kPurgeOnDeparture);
  Send(collector, 1, 5);

  auto window = collector.TakeSnapshot();
  collector.MarkDeparted(1);
  // The fresh series accumulates *past* the old count — a pure counter
  // comparison could mistake this for forward progress of the old
  // series; the epoch check must not.
  Send(collector, 1, 9);

  const auto drifts = collector.DriftSince(window);
  const Drift* t1 = Find(drifts, 1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->packets, 9u);
  EXPECT_TRUE(t1->restarted);
}

TEST(TelemetryDriftTest, DepartedButRetainedSeriesDriftsNormally) {
  TelemetryCollector collector;  // default kKeepDeparted
  Send(collector, 1, 10);

  auto window = collector.TakeSnapshot();
  collector.MarkDeparted(1);
  Send(collector, 1, 4);  // revives the same series — same epoch

  const auto drifts = collector.DriftSince(window);
  const Drift* t1 = Find(drifts, 1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->packets, 4u);
  EXPECT_FALSE(t1->restarted);
  // No double count: the collector still has exactly 14.
  EXPECT_EQ(collector.Tenant(1).packets, 14u);
}

TEST(TelemetryDriftTest, EvictedDepartedSeriesRestartsOnRevival) {
  TelemetryCollector collector;
  collector.SetRetention(TelemetryRetention::kKeepDeparted, 1);
  Send(collector, 1, 10);
  Send(collector, 2, 20);

  auto window = collector.TakeSnapshot();
  collector.MarkDeparted(1);
  collector.MarkDeparted(2);  // cap 1: tenant 1 (oldest departed) is evicted
  Send(collector, 1, 2);

  const auto drifts = collector.DriftSince(window);
  const Drift* t1 = Find(drifts, 1);
  ASSERT_NE(t1, nullptr);
  EXPECT_EQ(t1->packets, 2u);
  EXPECT_TRUE(t1->restarted);
  // Tenant 2 was idle (its departure alone is not drift).
  EXPECT_EQ(Find(drifts, 2), nullptr);
}

TEST(TelemetryDriftTest, BootstrapWindowReportsAbsoluteCounters) {
  TelemetryCollector collector;
  Send(collector, 7, 3, 1, 2);
  const auto drifts =
      TelemetryCollector::Drift(TelemetryCollector::Snapshot{}, collector.TakeSnapshot());
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].tenant, 7u);
  EXPECT_EQ(drifts[0].packets, 3u);
  EXPECT_EQ(drifts[0].drops, 1u);
  EXPECT_FALSE(drifts[0].restarted);
}

TEST(TelemetryDriftTest, ResetRestartsEveryReseenSeries) {
  TelemetryCollector collector;
  Send(collector, 1, 8);
  auto window = collector.TakeSnapshot();
  collector.Reset();
  Send(collector, 1, 2);
  const auto drifts = collector.DriftSince(window);
  ASSERT_EQ(drifts.size(), 1u);
  EXPECT_EQ(drifts[0].packets, 2u);
  EXPECT_TRUE(drifts[0].restarted);
}

}  // namespace
}  // namespace sfp::dataplane
