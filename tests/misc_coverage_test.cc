// Coverage for smaller API surfaces: stage/table management, model
// validation, p4gen edge cases, system provisioning details.
#include <gtest/gtest.h>

#include "core/sfp_system.h"
#include "lp/model.h"
#include "p4gen/p4gen.h"
#include "switchsim/pipeline.h"

namespace sfp {
namespace {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchKind;

TEST(StageManagementTest, RemoveTableFreesBlocks) {
  switchsim::SwitchConfig config;
  config.blocks_per_stage = 2;
  switchsim::Stage stage(0, config);
  ASSERT_NE(stage.AddTable("a", {{FieldId::kDstPort, MatchKind::kExact}}), nullptr);
  ASSERT_NE(stage.AddTable("b", {{FieldId::kDstPort, MatchKind::kExact}}), nullptr);
  EXPECT_EQ(stage.BlocksUsed(), 2);
  EXPECT_EQ(stage.AddTable("c", {{FieldId::kDstPort, MatchKind::kExact}}), nullptr);

  EXPECT_TRUE(stage.RemoveTable("a"));
  EXPECT_FALSE(stage.RemoveTable("a"));
  EXPECT_EQ(stage.BlocksUsed(), 1);
  EXPECT_NE(stage.AddTable("c", {{FieldId::kDstPort, MatchKind::kExact}}), nullptr);
  EXPECT_EQ(stage.FindTable("b")->name(), "b");
  EXPECT_EQ(stage.FindTable("zzz"), nullptr);
}

TEST(PipelineAccountingTest, TotalsAggregateAcrossStages) {
  switchsim::SwitchConfig config;
  config.num_stages = 3;
  config.entries_per_block = 10;
  switchsim::Pipeline pipeline(config);
  auto* t0 = pipeline.stage(0).AddTable("a", {{FieldId::kDstPort, MatchKind::kExact}});
  auto* t2 = pipeline.stage(2).AddTable("b", {{FieldId::kDstPort, MatchKind::kExact}});
  ASSERT_NE(t0, nullptr);
  ASSERT_NE(t2, nullptr);
  const auto noop0 = t0->RegisterAction("noop", [](net::Packet&, switchsim::PacketMeta&,
                                                   const switchsim::ActionArgs&) {});
  const auto noop2 = t2->RegisterAction("noop", [](net::Packet&, switchsim::PacketMeta&,
                                                   const switchsim::ActionArgs&) {});
  for (int i = 0; i < 12; ++i) {
    t0->AddEntry({FieldMatch::Exact(static_cast<std::uint64_t>(i))}, noop0);
  }
  t2->AddEntry({FieldMatch::Exact(1)}, noop2);

  EXPECT_EQ(pipeline.TotalEntriesUsed(), 13);
  EXPECT_EQ(pipeline.TotalBlocksUsed(), 2 + 1);  // ceil(12/10) + 1
}

TEST(ModelValidationTest, IntegerVarsEnumerated) {
  lp::Model model;
  model.AddVar(0, 1, 1, true, "a");
  model.AddVar(0, 1, 1, false, "b");
  model.AddVar(0, 5, 1, true, "c");
  const auto ints = model.IntegerVars();
  ASSERT_EQ(ints.size(), 2u);
  EXPECT_EQ(ints[0], 0);
  EXPECT_EQ(ints[1], 2);
  EXPECT_EQ(model.num_nonzeros(), 0u);
  model.AddRow({0, 2}, {1.0, 2.0}, lp::Sense::kLe, 3);
  EXPECT_EQ(model.num_nonzeros(), 2u);
}

TEST(ModelValidationTest, StatusNames) {
  EXPECT_STREQ(lp::ToString(lp::SolveStatus::kOptimal), "optimal");
  EXPECT_STREQ(lp::ToString(lp::SolveStatus::kInfeasible), "infeasible");
  EXPECT_STREQ(lp::ToString(lp::SolveStatus::kUnbounded), "unbounded");
  EXPECT_STREQ(lp::ToString(lp::SolveStatus::kTimeLimit), "time-limit");
  EXPECT_STREQ(lp::ToString(lp::SolveStatus::kFeasible), "feasible");
}

TEST(P4GenCoverageTest, AllNfTypesEmit) {
  for (int t = 0; t < nf::kNumNfTypes; ++t) {
    const auto decl = p4gen::EmitTableDecl(static_cast<nf::NfType>(t), 1);
    EXPECT_NE(decl.find("table tab_"), std::string::npos);
    EXPECT_NE(decl.find("meta.tenant_id"), std::string::npos);
  }
}

TEST(P4GenCoverageTest, EmptyPipelineStillValidSkeleton) {
  dataplane::DataPlane dp{switchsim::SwitchConfig{}};
  const auto program = p4gen::EmitProgram(dp, "empty");
  EXPECT_NE(program.find("parser SfpParser"), std::string::npos);
  EXPECT_NE(program.find("apply {"), std::string::npos);
}

TEST(SfpSystemCoverageTest, RemoveUnknownTenantFails) {
  core::SfpSystem system;
  EXPECT_FALSE(system.RemoveTenant(99));
}

TEST(SfpSystemCoverageTest, ExplicitLayoutSkipsDuplicates) {
  core::SfpSystem system;
  const int installed = system.ProvisionPhysical(
      {{nf::NfType::kFirewall, nf::NfType::kFirewall}, {nf::NfType::kRouter}});
  EXPECT_EQ(installed, 2);  // duplicate firewall in stage 0 skipped
}

TEST(SfpSystemCoverageTest, ToSpecCountsCatchAll) {
  dataplane::Sfc sfc;
  sfc.bandwidth_gbps = 7;
  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.resize(3);
  sfc.chain = {fw};
  const auto spec = core::SfpSystem::ToSpec(sfc);
  EXPECT_EQ(spec.bandwidth_gbps, 7);
  ASSERT_EQ(spec.boxes.size(), 1u);
  EXPECT_EQ(spec.boxes[0].type, static_cast<int>(nf::NfType::kFirewall));
  EXPECT_EQ(spec.boxes[0].rules, 4);  // 3 rules + tenant catch-all
}

TEST(FieldNameTest, AllFieldsNamed) {
  for (const auto field :
       {FieldId::kTenantId, FieldId::kPass, FieldId::kSrcIp, FieldId::kDstIp,
        FieldId::kSrcPort, FieldId::kDstPort, FieldId::kIpProto, FieldId::kDscp,
        FieldId::kFlowClass, FieldId::kEthType}) {
    EXPECT_STRNE(switchsim::FieldName(field), "unknown");
  }
}

}  // namespace
}  // namespace sfp
