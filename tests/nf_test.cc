// Tests for the NF library: each NF's actions, rule builders, and the
// REC variants.
#include "nf/nf.h"

#include <gtest/gtest.h>

#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/rate_limiter.h"
#include "nf/router.h"

namespace sfp::nf {
namespace {

using net::Ipv4Address;
using net::MakeTcpPacket;
using net::MakeUdpPacket;
using switchsim::ActionId;
using switchsim::FieldMatch;
using switchsim::MatchActionTable;
using switchsim::PacketMeta;

// Builds a table for `nf`, binds its actions, and returns the action id
// by name.
ActionId FindAction(const MatchActionTable& table, const std::string& name) {
  for (std::size_t i = 0; i < table.action_names().size(); ++i) {
    if (table.action_names()[i] == name) return static_cast<ActionId>(i);
  }
  return -1;
}

// Installs a single NfRule into a table built from the NF's key spec.
void InstallRule(MatchActionTable& table, const NfRule& rule) {
  const ActionId action = FindAction(table, rule.action);
  ASSERT_GE(action, 0) << "unknown action " << rule.action;
  table.AddEntry(rule.matches, action, rule.args, rule.priority);
}

TEST(NfFactoryTest, CreatesEveryType) {
  for (int t = 0; t < kNumNfTypes; ++t) {
    auto nf = MakeNf(static_cast<NfType>(t));
    ASSERT_NE(nf, nullptr);
    EXPECT_EQ(static_cast<int>(nf->type()), t);
    EXPECT_FALSE(nf->KeySpec().empty());
  }
}

TEST(NfFactoryTest, NamesAreUniqueAndStable) {
  EXPECT_STREQ(NfShortName(NfType::kFirewall), "fw");
  EXPECT_STREQ(NfShortName(NfType::kLoadBalancer), "lb");
  EXPECT_STREQ(NfShortName(NfType::kClassifier), "tc");
  EXPECT_STREQ(NfShortName(NfType::kRouter), "rt");
  EXPECT_STREQ(NfFullName(NfType::kNat), "NAT");
}

TEST(FirewallTest, DenyDropsMatchingTraffic) {
  Firewall fw;
  MatchActionTable table("fw", fw.KeySpec());
  fw.BindActions(table);
  InstallRule(table, Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(),
                                    FieldMatch::Range(80, 80), FieldMatch::Any()));

  auto blocked = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                               999, 80, 64);
  PacketMeta meta;
  table.Apply(blocked, meta);
  EXPECT_TRUE(meta.dropped);

  auto allowed = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                               999, 443, 64);
  PacketMeta meta2;
  table.Apply(allowed, meta2);
  EXPECT_FALSE(meta2.dropped);
}

TEST(FirewallTest, AllowPunchesHoleAboveDeny) {
  Firewall fw;
  MatchActionTable table("fw", fw.KeySpec());
  fw.BindActions(table);
  // Broad deny on port 80, but allow from 10.0.0.0/8.
  InstallRule(table, Firewall::Deny(FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(),
                                    FieldMatch::Range(80, 80), FieldMatch::Any(),
                                    /*priority=*/10));
  InstallRule(table,
              Firewall::Allow(FieldMatch::Ternary(Ipv4Address::Of(10, 0, 0, 0).value,
                                                  0xFF000000),
                              FieldMatch::Any(), FieldMatch::Any(),
                              FieldMatch::Range(80, 80), FieldMatch::Any(),
                              /*priority=*/20));

  auto friendly = MakeTcpPacket(1, Ipv4Address::Of(10, 5, 5, 5), Ipv4Address::Of(2, 2, 2, 2),
                                999, 80, 64);
  PacketMeta meta;
  table.Apply(friendly, meta);
  EXPECT_FALSE(meta.dropped);
}

TEST(LoadBalancerTest, SetBackendRewritesDstIp) {
  LoadBalancer lb;
  MatchActionTable table("lb", lb.KeySpec());
  lb.BindActions(table);
  const auto vip = Ipv4Address::Of(10, 0, 0, 100);
  const auto dip = Ipv4Address::Of(192, 168, 0, 7);
  InstallRule(table, LoadBalancer::SetBackend(vip, 80, dip));

  auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), vip, 999, 80, 64);
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_EQ(packet.ipv4->dst, dip);
}

TEST(LoadBalancerTest, PoolSelectIsFlowAffine) {
  LoadBalancer lb;
  MatchActionTable table("lb", lb.KeySpec());
  lb.BindActions(table);
  const auto vip = Ipv4Address::Of(10, 0, 0, 100);
  const auto pool = lb.AddPool({Ipv4Address::Of(192, 168, 0, 1), Ipv4Address::Of(192, 168, 0, 2),
                                Ipv4Address::Of(192, 168, 0, 3)});
  InstallRule(table, LoadBalancer::PoolSelect(vip, 80, pool));

  // The same flow must always pick the same backend.
  auto p1 = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), vip, 999, 80, 64);
  auto p2 = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), vip, 999, 80, 64);
  PacketMeta m1, m2;
  table.Apply(p1, m1);
  table.Apply(p2, m2);
  EXPECT_EQ(p1.ipv4->dst, p2.ipv4->dst);

  // Across many flows, more than one backend must be used.
  std::set<std::uint32_t> backends;
  for (std::uint16_t sport = 1000; sport < 1100; ++sport) {
    auto p = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), vip, sport, 80, 64);
    PacketMeta m;
    table.Apply(p, m);
    backends.insert(p.ipv4->dst.value);
  }
  EXPECT_GT(backends.size(), 1u);
}

TEST(LoadBalancerTest, ExplicitRuleOutranksPool) {
  LoadBalancer lb;
  MatchActionTable table("lb", lb.KeySpec());
  lb.BindActions(table);
  const auto vip = Ipv4Address::Of(10, 0, 0, 100);
  const auto pinned = Ipv4Address::Of(192, 168, 9, 9);
  const auto pool = lb.AddPool({Ipv4Address::Of(192, 168, 0, 1)});
  InstallRule(table, LoadBalancer::PoolSelect(vip, 80, pool));
  InstallRule(table, LoadBalancer::SetBackend(vip, 80, pinned));

  auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), vip, 999, 80, 64);
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_EQ(packet.ipv4->dst, pinned);
}

TEST(ClassifierTest, SetsFlowClass) {
  Classifier tc;
  MatchActionTable table("tc", tc.KeySpec());
  tc.BindActions(table);
  InstallRule(table, Classifier::ClassifyByPort(80, 90, 3));

  auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                              999, 85, 64);
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_EQ(meta.flow_class, 3);
}

TEST(RouterTest, LpmSelectsEgressAndDecrementsTtl) {
  Router rt;
  MatchActionTable table("rt", rt.KeySpec());
  rt.BindActions(table);
  InstallRule(table, Router::Route(Ipv4Address::Of(10, 0, 0, 0).value, 8, 3));
  InstallRule(table, Router::Route(Ipv4Address::Of(10, 0, 0, 0).value, 24, 7));

  auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(10, 0, 0, 5),
                              999, 80, 64);
  const auto ttl_before = packet.ipv4->ttl;
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_EQ(meta.egress_port, 7);  // /24 beats /8
  EXPECT_EQ(packet.ipv4->ttl, ttl_before - 1);
  EXPECT_FALSE(meta.dropped);
}

TEST(RouterTest, TtlExpiryDrops) {
  Router rt;
  MatchActionTable table("rt", rt.KeySpec());
  rt.BindActions(table);
  InstallRule(table, Router::Route(0, 0, 1));  // default route

  auto packet = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                              999, 80, 64);
  packet.ipv4->ttl = 1;
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_TRUE(meta.dropped);
}

TEST(RateLimiterTest, EnforcesRateOverTime) {
  RateLimiter rl;
  MatchActionTable table("rl", rl.KeySpec());
  rl.BindActions(table);
  // 1 Mbps with a 1 KB burst: a 64B packet is 512 bits; the bucket
  // holds 8000 bits => ~15 packets back-to-back, then drops.
  const auto bucket = rl.AddBucket(/*rate_mbps=*/1.0, /*burst_kb=*/1.0);
  InstallRule(table, RateLimiter::Police(0, 0, bucket));

  int passed = 0, dropped = 0;
  for (int i = 0; i < 30; ++i) {
    auto packet = MakeUdpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                                999, 80, 64);
    PacketMeta meta;
    meta.time_ns = 0.0;  // all at t=0: no refill
    table.Apply(packet, meta);
    meta.dropped ? ++dropped : ++passed;
  }
  EXPECT_EQ(passed, 15);
  EXPECT_EQ(dropped, 15);
  EXPECT_EQ(rl.drops(), 15u);

  // After enough time the bucket refills.
  auto packet = MakeUdpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                              999, 80, 64);
  PacketMeta meta;
  meta.time_ns = 1e9;  // 1 second later
  table.Apply(packet, meta);
  EXPECT_FALSE(meta.dropped);
}

TEST(NatTest, RewritesSourceAddress) {
  Nat nat;
  MatchActionTable table("nat", nat.KeySpec());
  nat.BindActions(table);
  const auto internal = Ipv4Address::Of(10, 0, 0, 5);
  const auto external = Ipv4Address::Of(203, 0, 113, 20);
  InstallRule(table, Nat::Translate(internal, external));

  auto packet = MakeTcpPacket(1, internal, Ipv4Address::Of(8, 8, 8, 8), 999, 80, 64);
  PacketMeta meta;
  table.Apply(packet, meta);
  EXPECT_EQ(packet.ipv4->src, external);
}

TEST(RecVariantTest, RecActionSetsRecirculateUnlessDropped) {
  Firewall fw;
  MatchActionTable table("fw", fw.KeySpec());
  fw.BindActions(table);
  const auto allow_rec = FindAction(table, "allow_rec");
  const auto deny_rec = FindAction(table, "deny_rec");
  ASSERT_GE(allow_rec, 0);
  ASSERT_GE(deny_rec, 0);
  table.AddEntry({FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(),
                  FieldMatch::Range(80, 80), FieldMatch::Any()},
                 allow_rec);
  table.AddEntry({FieldMatch::Any(), FieldMatch::Any(), FieldMatch::Any(),
                  FieldMatch::Range(443, 443), FieldMatch::Any()},
                 deny_rec);

  auto p80 = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                           999, 80, 64);
  PacketMeta m80;
  table.Apply(p80, m80);
  EXPECT_TRUE(m80.recirculate);
  EXPECT_FALSE(m80.dropped);

  auto p443 = MakeTcpPacket(1, Ipv4Address::Of(1, 1, 1, 1), Ipv4Address::Of(2, 2, 2, 2),
                            999, 443, 64);
  PacketMeta m443;
  table.Apply(p443, m443);
  EXPECT_TRUE(m443.dropped);
  EXPECT_FALSE(m443.recirculate);  // dropped packets never recirculate
}

class NfRuleGenerationTest : public ::testing::TestWithParam<int> {};

TEST_P(NfRuleGenerationTest, GeneratedRulesInstallCleanly) {
  const auto type = static_cast<NfType>(GetParam());
  auto nf = MakeNf(type);
  MatchActionTable table(NfShortName(type), nf->KeySpec());
  nf->BindActions(table);
  if (type == NfType::kRateLimiter) {
    static_cast<RateLimiter*>(nf.get())->AddBucket(100, 10);
  }
  Rng rng(77);
  auto rules = nf->GenerateRules(rng, 50);
  ASSERT_EQ(rules.size(), 50u);
  for (const auto& rule : rules) {
    ASSERT_EQ(rule.matches.size(), nf->KeySpec().size());
    InstallRule(table, rule);
  }
  EXPECT_EQ(table.num_entries(), 50u);

  // Installed tables must survive traffic without crashing.
  for (int i = 0; i < 100; ++i) {
    auto packet = MakeTcpPacket(1, Ipv4Address::Of(10, 1, 2, 3), Ipv4Address::Of(10, 4, 5, 6),
                                static_cast<std::uint16_t>(1000 + i), 80, 128);
    PacketMeta meta;
    meta.time_ns = i * 1000.0;
    table.Apply(packet, meta);
  }
}

INSTANTIATE_TEST_SUITE_P(AllNfTypes, NfRuleGenerationTest,
                         ::testing::Range(0, kNumNfTypes));

}  // namespace
}  // namespace sfp::nf
