// Tests for the simulated-annealing placement baseline.
#include "controlplane/annealing_solver.h"

#include <gtest/gtest.h>

#include "controlplane/greedy_solver.h"
#include "controlplane/verifier.h"
#include "workload/sfc_gen.h"

namespace sfp::controlplane {
namespace {

TEST(AnnealingTest, NeverBelowGreedyStart) {
  Rng rng(77);
  workload::DatasetParams params;
  params.num_sfcs = 20;
  params.num_types = 8;
  SwitchResources sw;
  sw.blocks_per_stage = 8;  // memory-tight: ordering matters
  auto instance = workload::GenerateInstance(params, sw, rng);

  GreedyOptions greedy_options;
  greedy_options.max_passes = 3;
  auto greedy = SolveGreedy(instance, greedy_options);

  AnnealingOptions annealing_options;
  annealing_options.placement = greedy_options;
  annealing_options.iterations = 400;
  auto annealed = SolveAnnealing(instance, annealing_options);

  // The annealer starts from the greedy order and keeps the best seen.
  EXPECT_GE(annealed.objective + 1e-9, greedy.objective);
  VerifyOptions verify;
  verify.max_passes = 3;
  EXPECT_TRUE(Verify(instance, annealed.solution, verify).ok);
}

TEST(AnnealingTest, ImprovesOnAdversarialOrder) {
  // An instance where the eq. 13 metric order is suboptimal: two small
  // chains (obj 1 each) rank above a fat chain (obj 2.4) but together
  // consume just enough memory that the fat chain no longer fits, so
  // greedy ends at 2.0 while the hog-first order achieves 2.4.
  PlacementInstance instance;
  instance.sw.stages = 2;
  instance.sw.blocks_per_stage = 2;
  instance.sw.entries_per_block = 1000;
  instance.sw.capacity_gbps = 100;
  instance.num_types = 2;
  instance.sfcs.push_back({{{0, 1800}, {1, 1800}}, 1.2});  // metric 1.2/7200
  instance.sfcs.push_back({{{0, 900}}, 1.0});              // metric 1/900
  instance.sfcs.push_back({{{1, 900}}, 1.0});
  GreedyOptions greedy_options;
  greedy_options.max_passes = 1;
  auto greedy = SolveGreedy(instance, greedy_options);

  AnnealingOptions annealing_options;
  annealing_options.placement = greedy_options;
  annealing_options.iterations = 200;
  annealing_options.seed = 3;
  auto annealed = SolveAnnealing(instance, annealing_options);

  EXPECT_NEAR(greedy.objective, 2.0, 1e-6);
  EXPECT_NEAR(annealed.objective, 2.4, 1e-6);
  EXPECT_GT(annealed.improving_moves, 0);
}

TEST(AnnealingTest, SingleChainAndEmptyInstances) {
  PlacementInstance instance;
  instance.num_types = 1;
  instance.sfcs.push_back({{{0, 100}}, 5.0});
  AnnealingOptions options;
  options.iterations = 10;
  auto report = SolveAnnealing(instance, options);
  EXPECT_NEAR(report.objective, 5.0, 1e-9);
  EXPECT_EQ(report.accepted_moves, 0);  // no moves possible with one chain
}

TEST(AnnealingTest, DeterministicForSeed) {
  Rng rng(5);
  workload::DatasetParams params;
  params.num_sfcs = 12;
  params.num_types = 6;
  SwitchResources sw;
  sw.blocks_per_stage = 6;
  auto instance = workload::GenerateInstance(params, sw, rng);

  AnnealingOptions options;
  options.iterations = 150;
  options.seed = 9;
  auto a = SolveAnnealing(instance, options);
  auto b = SolveAnnealing(instance, options);
  EXPECT_EQ(a.objective, b.objective);
  EXPECT_EQ(a.accepted_moves, b.accepted_moves);
}

}  // namespace
}  // namespace sfp::controlplane
