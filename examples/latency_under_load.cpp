// Latency under load: the classifier's flow class drives strict-
// priority egress queueing, protecting a premium tenant's latency when
// a best-effort tenant floods the port.
//
// Pipeline: both tenants' SFCs classify their traffic (premium ->
// class 2, best-effort -> class 1); the shared egress port then
// schedules by class. The experiment ramps the best-effort offered
// load and reports per-tenant queueing delay.
//
// Run: ./build/examples/latency_under_load
#include <cstdio>
#include <iostream>

#include "common/rng.h"
#include "common/table.h"
#include "common/units.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "switchsim/egress.h"
#include "workload/traffic.h"

using namespace sfp;

namespace {

nf::NfConfig Classify(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

}  // namespace

int main() {
  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kClassifier}});

  dataplane::Sfc premium;
  premium.tenant = 1;
  premium.bandwidth_gbps = 10;
  premium.chain = {Classify(2)};
  dataplane::Sfc best_effort;
  best_effort.tenant = 2;
  best_effort.bandwidth_gbps = 60;
  best_effort.chain = {Classify(1)};
  if (!system.AdmitTenant(premium).admitted || !system.AdmitTenant(best_effort).admitted) {
    std::puts("admission failed");
    return 1;
  }

  Table table({"BE load (Gbps)", "premium wait (ns)", "BE wait (ns)", "BE drops"});
  Rng rng(1);
  const double port_gbps = 100.0;
  for (const double be_gbps : {20.0, 60.0, 95.0, 120.0, 160.0}) {
    // 3 classes (0 unused), 100G port, 150 KB of buffer per class.
    switchsim::EgressPort port(3, port_gbps, 150 * 1000);
    // Premium sends a steady 10G of 500B frames; best-effort sends
    // be_gbps of 1500B frames. Interleave arrivals over 200 us.
    const double horizon_ns = 200e3;
    const double premium_gap = 500 * 8.0 / 10.0;        // ns between frames
    const double be_gap = 1500 * 8.0 / be_gbps;
    double tp = 0, tb = 0;
    while (tp < horizon_ns || tb < horizon_ns) {
      const bool premium_next = tp <= tb;
      const double t = premium_next ? tp : tb;
      const std::uint16_t tenant = premium_next ? 1 : 2;
      const std::uint32_t size = premium_next ? 500 : 1500;
      auto packet = net::MakeTcpPacket(tenant, net::Ipv4Address::Of(10, 0, 0, tenant),
                                       net::Ipv4Address::Of(10, 0, 1, 1), 999, 80, size);
      auto out = system.Process(packet);  // classifier sets the class
      port.Enqueue(t, size, out.meta.flow_class);
      (premium_next ? tp : tb) += premium_next ? premium_gap : be_gap;
    }
    port.DrainAll();
    port.TakeDepartures();
    table.Row()
        .Add(be_gbps, 0)
        .Add(port.stats(2).MeanWaitNs(), 1)
        .Add(port.stats(1).MeanWaitNs(), 1)
        .Add(static_cast<std::int64_t>(port.stats(1).dropped));
  }
  table.Print(std::cout);
  std::puts("\npremium latency stays flat while best-effort queues and drops");
  return 0;
}
