// Emits the P4-16-style program for a provisioned SFP pipeline, plus
// the standalone 3-table load balancer of Fig. 2.
//
// Run: ./build/examples/p4_codegen
#include <cstdio>

#include "p4gen/p4gen.h"

using namespace sfp;

int main() {
  dataplane::DataPlane dp{switchsim::SwitchConfig{}};
  dp.InstallPhysicalNf(0, nf::NfType::kClassifier);
  dp.InstallPhysicalNf(1, nf::NfType::kFirewall);
  dp.InstallPhysicalNf(2, nf::NfType::kLoadBalancer);
  dp.InstallPhysicalNf(3, nf::NfType::kRouter);
  dp.InstallPhysicalNf(4, nf::NfType::kRateLimiter);
  dp.InstallPhysicalNf(5, nf::NfType::kNat);

  std::puts("=== SFP physical pipeline as P4-16 ===\n");
  std::puts(p4gen::EmitProgram(dp, "sfp_pipeline").c_str());
  std::puts("\n=== Fig. 2 three-table load balancer ===\n");
  std::puts(p4gen::EmitFig2LoadBalancer().c_str());
  return 0;
}
