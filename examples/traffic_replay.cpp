// Trace capture & replay: synthesize an IMC'10-style workload, save it
// to the SFPT binary trace format, reload it, and replay it through a
// provisioned SFP switch, reporting per-tenant telemetry.
//
// Run: ./build/examples/traffic_replay [trace-path]
#include <algorithm>
#include <cstdio>
#include <span>
#include <vector>

#include "common/rng.h"
#include "core/sfp_system.h"
#include "net/trace.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "workload/traffic.h"

using namespace sfp;

int main(int argc, char** argv) {
  const std::string path = argc > 1 ? argv[1] : "/tmp/sfp_demo_trace.sfpt";

  // ---- capture: two tenants, bimodal frame sizes, 10 us of traffic.
  Rng rng(2026);
  workload::PacketSizeProfile profile;
  net::Trace capture;
  double clock_ns = 0;
  for (int i = 0; i < 2000; ++i) {
    const std::uint16_t tenant = rng.Bernoulli(0.5) ? 1 : 2;
    const int size = profile.Sample(rng);
    auto packet = net::MakeTcpPacket(
        tenant, net::Ipv4Address::Of(10, tenant & 0xFF, 0, 1),
        net::Ipv4Address::Of(10, 0, 0, 100),
        static_cast<std::uint16_t>(1024 + i % 512), i % 3 == 0 ? 23 : 80,
        static_cast<std::uint32_t>(size));
    capture.Append(clock_ns, packet);
    clock_ns += rng.Exponential(5.0);  // ~200 Mpps aggregate arrivals
  }
  if (!capture.Save(path)) {
    std::printf("cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("captured %zu frames, %.1f KB, offered %.1f Gbps -> %s\n", capture.size(),
              capture.TotalBytes() / 1e3, capture.OfferedGbps(), path.c_str());

  // ---- replay through a provisioned switch.
  auto loaded = net::Trace::Load(path);
  if (!loaded) {
    std::printf("cannot load %s\n", path.c_str());
    return 1;
  }

  core::SfpSystem system{switchsim::SwitchConfig{}};
  system.ProvisionPhysical({{nf::NfType::kFirewall}, {nf::NfType::kClassifier}});
  // Tenant 1 blocks telnet; tenant 2 runs only a classifier.
  dataplane::Sfc t1;
  t1.tenant = 1;
  t1.bandwidth_gbps = 40;
  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),
      switchsim::FieldMatch::Any()));
  t1.chain = {fw};
  dataplane::Sfc t2;
  t2.tenant = 2;
  t2.bandwidth_gbps = 40;
  nf::NfConfig tc;
  tc.type = nf::NfType::kClassifier;
  tc.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, 3));
  t2.chain = {tc};
  if (!system.AdmitTenant(t1).admitted || !system.AdmitTenant(t2).admitted) return 1;

  // Parse the wire bytes first, then serve the replay in batches
  // through the flow-sharded worker pool (ProcessBatch records
  // telemetry exactly as a scalar Process loop would).
  int parse_errors = 0;
  std::vector<net::Packet> frames;
  frames.reserve(loaded->size());
  for (const auto& record : loaded->records()) {
    auto parsed = net::Packet::Parse(record.frame);
    if (!parsed) {
      ++parse_errors;
      continue;
    }
    frames.push_back(std::move(*parsed));
  }
  constexpr std::size_t kBatch = 256;
  for (std::size_t off = 0; off < frames.size(); off += kBatch) {
    const std::size_t n = std::min(kBatch, frames.size() - off);
    system.ProcessBatch(std::span<const net::Packet>(frames).subspan(off, n));
  }

  std::printf("replayed %zu frames in %llu batches (%d parse errors)\n", loaded->size(),
              static_cast<unsigned long long>(
                  system.data_plane().pipeline().batches_processed()),
              parse_errors);
  for (const std::uint16_t tenant : system.Telemetry().Tenants()) {
    const auto counters = system.Telemetry().Tenant(tenant);
    std::printf(
        "tenant %u: %llu pkts, %.1f KB, drop rate %.1f%%, mean latency %.0f ns\n", tenant,
        static_cast<unsigned long long>(counters.packets), counters.bytes / 1e3,
        counters.DropRate() * 100.0, counters.MeanLatencyNs());
  }
  // Tenant 1's telnet share (~1/3) is dropped; tenant 2 drops nothing.
  return 0;
}
