// Multi-tenant cloud scenario (§II-A R2/R3): many tenants with
// different — and differently ordered — SFCs share one physical
// pipeline; tenants join and leave at runtime; out-of-order chains
// recirculate.
//
// Run: ./build/examples/multi_tenant_cloud
#include <cstdio>

#include "common/rng.h"
#include "core/sfp_system.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"
#include "workload/traffic.h"

using namespace sfp;

namespace {

nf::NfConfig Fw(std::uint16_t port) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(port, port),
      switchsim::FieldMatch::Any()));
  return config;
}

nf::NfConfig Tc(std::uint8_t cls) {
  nf::NfConfig config;
  config.type = nf::NfType::kClassifier;
  config.rules.push_back(nf::Classifier::ClassifyByPort(0, 65535, cls));
  return config;
}

nf::NfConfig Lb(net::Ipv4Address vip, net::Ipv4Address dip) {
  nf::NfConfig config;
  config.type = nf::NfType::kLoadBalancer;
  config.rules.push_back(nf::LoadBalancer::SetBackend(vip, 80, dip));
  return config;
}

nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

}  // namespace

int main() {
  core::SfpSystem system{switchsim::SwitchConfig{}};
  // The Fig. 3 pipeline, extended: TC @0, FW @1, LB @2, RT @3.
  system.ProvisionPhysical({{nf::NfType::kClassifier},
                            {nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kRouter}});

  const auto vip = net::Ipv4Address::Of(10, 0, 0, 100);

  // Tenant 1: TC -> FW -> LB (pipeline order: 1 pass, Fig. 3 SFC 1).
  dataplane::Sfc t1;
  t1.tenant = 1;
  t1.bandwidth_gbps = 40;
  t1.chain = {Tc(1), Fw(443), Lb(vip, net::Ipv4Address::Of(192, 168, 0, 1))};

  // Tenant 2: FW -> LB -> TC (out of order: 2 passes, Fig. 3 SFC 2).
  dataplane::Sfc t2;
  t2.tenant = 2;
  t2.bandwidth_gbps = 25;
  t2.chain = {Fw(22), Lb(vip, net::Ipv4Address::Of(192, 168, 0, 2)), Tc(4)};

  // Tenant 3: full 4-NF chain.
  dataplane::Sfc t3;
  t3.tenant = 3;
  t3.bandwidth_gbps = 30;
  t3.chain = {Tc(2), Fw(23), Lb(vip, net::Ipv4Address::Of(192, 168, 0, 3)), Rt()};

  for (const auto* sfc : {&t1, &t2, &t3}) {
    const auto admit = system.AdmitTenant(*sfc);
    std::printf("tenant %u: %s (%d pass(es), charge %.0f Gbps)\n", sfc->tenant,
                admit.admitted ? "admitted" : admit.reason.c_str(), admit.passes,
                admit.backplane_gbps);
  }

  // Traffic: each tenant's HTTP flow picks up its own chain's effects.
  for (std::uint16_t tenant = 1; tenant <= 3; ++tenant) {
    auto out = system.Process(
        net::MakeTcpPacket(tenant, net::Ipv4Address::Of(1, 1, 1, 1), vip, 999, 80, 256));
    std::printf(
        "tenant %u packet: passes=%d class=%u dst=%s dropped=%d latency=%.0f ns\n", tenant,
        out.passes, out.meta.flow_class, out.packet.ipv4->dst.ToString().c_str(),
        out.meta.dropped, out.latency_ns);
  }

  // Isolation check: tenant 2 blocks SSH, tenant 1 does not.
  auto t1_ssh = system.Process(
      net::MakeTcpPacket(1, net::Ipv4Address::Of(1, 1, 1, 1), vip, 999, 22, 64));
  auto t2_ssh = system.Process(
      net::MakeTcpPacket(2, net::Ipv4Address::Of(1, 1, 1, 1), vip, 999, 22, 64));
  std::printf("SSH: tenant1 dropped=%d, tenant2 dropped=%d\n", t1_ssh.meta.dropped,
              t2_ssh.meta.dropped);

  // Churn (§V-E): tenant 2 leaves, a new tenant takes its place.
  system.RemoveTenant(2);
  dataplane::Sfc t4;
  t4.tenant = 4;
  t4.bandwidth_gbps = 50;
  t4.chain = {Fw(8080), Rt()};
  const auto admit4 = system.AdmitTenant(t4);
  std::printf("after tenant 2 left, tenant 4: %s\n",
              admit4.admitted ? "admitted" : admit4.reason.c_str());

  // Former tenant-2 traffic now passes untouched.
  auto ghost = system.Process(
      net::MakeTcpPacket(2, net::Ipv4Address::Of(1, 1, 1, 1), vip, 999, 22, 64));
  std::printf("departed tenant 2 SSH now dropped=%d (expected 0)\n", ghost.meta.dropped);

  const auto stats = system.Stats();
  std::printf("final: %d tenants, %.0f Gbps offered, %.0f Gbps backplane, %d blocks\n",
              stats.tenants, stats.offered_gbps, stats.backplane_gbps, stats.blocks_used);
  return 0;
}
