// Quickstart: provision a switch, admit one tenant's SFC, send packets.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "core/sfp_system.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/router.h"

using namespace sfp;

int main() {
  // A ToR switch: 8 stages x 20 memory blocks x 1000 rule entries,
  // 400 Gbps backplane (the §VI-C configuration).
  switchsim::SwitchConfig config;
  core::SfpSystem system(config);

  // Boot-time: pre-install physical NFs, one (type, stage) pair each.
  system.ProvisionPhysical({{nf::NfType::kFirewall},
                            {nf::NfType::kLoadBalancer},
                            {nf::NfType::kRouter}});

  // A tenant's SFC: firewall -> load balancer -> router.
  const auto vip = net::Ipv4Address::Of(10, 0, 0, 100);
  const auto backend = net::Ipv4Address::Of(192, 168, 1, 42);

  dataplane::Sfc sfc;
  sfc.tenant = 7;  // == VLAN VID of the tenant's traffic
  sfc.bandwidth_gbps = 25.0;

  nf::NfConfig fw;
  fw.type = nf::NfType::kFirewall;
  fw.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(23, 23),  // block telnet
      switchsim::FieldMatch::Any()));

  nf::NfConfig lb;
  lb.type = nf::NfType::kLoadBalancer;
  lb.rules.push_back(nf::LoadBalancer::SetBackend(vip, 80, backend));

  nf::NfConfig rt;
  rt.type = nf::NfType::kRouter;
  rt.rules.push_back(nf::Router::Route(net::Ipv4Address::Of(192, 168, 0, 0).value, 16, 3));

  sfc.chain = {fw, lb, rt};

  const auto admit = system.AdmitTenant(sfc);
  if (!admit.admitted) {
    std::printf("admission failed: %s\n", admit.reason.c_str());
    return 1;
  }
  std::printf("tenant %u admitted: %d pass(es), %.1f Gbps backplane charge\n", sfc.tenant,
              admit.passes, admit.backplane_gbps);

  // HTTP to the VIP: firewall passes, LB rewrites, router forwards.
  auto web = system.Process(
      net::MakeTcpPacket(7, net::Ipv4Address::Of(1, 2, 3, 4), vip, 5555, 80, 512));
  std::printf("HTTP  : dropped=%d dst=%s egress=%d latency=%.0f ns\n", web.meta.dropped,
              web.packet.ipv4->dst.ToString().c_str(), web.meta.egress_port,
              web.latency_ns);

  // Telnet: the firewall drops it.
  auto telnet = system.Process(
      net::MakeTcpPacket(7, net::Ipv4Address::Of(1, 2, 3, 4), vip, 5555, 23, 64));
  std::printf("telnet: dropped=%d\n", telnet.meta.dropped);

  // Another tenant's traffic is untouched (multi-tenancy isolation).
  auto other = system.Process(
      net::MakeTcpPacket(9, net::Ipv4Address::Of(1, 2, 3, 4), vip, 5555, 23, 64));
  std::printf("tenant 9 (no SFC): dropped=%d dst=%s\n", other.meta.dropped,
              other.packet.ipv4->dst.ToString().c_str());

  const auto stats = system.Stats();
  std::printf("stats: %d tenant(s), %.1f Gbps offered, %d blocks, %lld entries\n",
              stats.tenants, stats.offered_gbps, stats.blocks_used,
              static_cast<long long>(stats.entries_used));
  return 0;
}
