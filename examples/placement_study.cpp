// Placement what-if study: compare SFP-IP, SFP-Appro and the greedy
// baseline on a synthetic tenant mix (a miniature of Fig. 10), and show
// a runtime-update cycle (§V-E).
//
// Run: ./build/examples/placement_study [num_sfcs] [seed]
#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "controlplane/annealing_solver.h"
#include "controlplane/approx_solver.h"
#include "controlplane/greedy_solver.h"
#include "controlplane/ilp_solver.h"
#include "controlplane/runtime_update.h"
#include "workload/sfc_gen.h"

#include <iostream>

using namespace sfp;
using namespace sfp::controlplane;

int main(int argc, char** argv) {
  const int num_sfcs = argc > 1 ? std::atoi(argv[1]) : 15;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;

  Rng rng(seed);
  workload::DatasetParams params;
  params.num_sfcs = num_sfcs;
  params.num_types = 10;
  SwitchResources sw;  // 8 stages x 20 blocks x 1000 entries, 400 Gbps
  auto instance = workload::GenerateInstance(params, sw, rng);

  std::printf("placement study: L=%d SFCs, I=%d types, S=%d stages, C=%.0f Gbps\n\n",
              instance.NumSfcs(), instance.num_types, sw.stages, sw.capacity_gbps);

  IlpOptions ilp_options;
  ilp_options.model.max_passes = 3;
  ilp_options.time_limit_seconds = 20.0;
  ilp_options.relative_gap = 1e-3;
  auto ilp = SolveIlp(instance, ilp_options);

  ApproxOptions approx_options;
  approx_options.model.max_passes = 3;
  auto approx = SolveApprox(instance, approx_options);

  GreedyOptions greedy_options;
  greedy_options.max_passes = 3;
  auto greedy = SolveGreedy(instance, greedy_options);

  AnnealingOptions annealing_options;
  annealing_options.placement = greedy_options;
  auto annealed = SolveAnnealing(instance, annealing_options);

  Table table({"algorithm", "objective (eq.1)", "placed", "offloaded Gbps",
               "backplane Gbps", "time (s)"});
  table.Row()
      .Add("SFP-IP")
      .Add(ilp.objective, 1)
      .Add(static_cast<std::int64_t>(ilp.solution.NumPlaced()))
      .Add(ilp.solution.OffloadedGbps(instance), 1)
      .Add(ilp.solution.BackplaneGbps(instance), 1)
      .Add(ilp.seconds, 2);
  table.Row()
      .Add("SFP-Appro")
      .Add(approx.objective, 1)
      .Add(static_cast<std::int64_t>(approx.solution.NumPlaced()))
      .Add(approx.solution.OffloadedGbps(instance), 1)
      .Add(approx.solution.BackplaneGbps(instance), 1)
      .Add(approx.seconds, 2);
  table.Row()
      .Add("Greedy")
      .Add(greedy.objective, 1)
      .Add(static_cast<std::int64_t>(greedy.solution.NumPlaced()))
      .Add(greedy.solution.OffloadedGbps(instance), 1)
      .Add(greedy.solution.BackplaneGbps(instance), 1)
      .Add(greedy.seconds, 4);
  table.Row()
      .Add("Annealing")
      .Add(annealed.objective, 1)
      .Add(static_cast<std::int64_t>(annealed.solution.NumPlaced()))
      .Add(annealed.solution.OffloadedGbps(instance), 1)
      .Add(annealed.solution.BackplaneGbps(instance), 1)
      .Add(annealed.seconds, 2);
  table.Print(std::cout);
  std::printf("\nLP upper bound: %.1f; IP dual bound: %.1f (status %s)\n",
              approx.lp_bound, ilp.best_bound, lp::ToString(ilp.status));

  // Runtime update: drop 30% of residents, refill from the pool.
  std::printf("\nruntime update cycle (drop rate 0.3):\n");
  RuntimeUpdateOptions update_options;
  update_options.solver = approx_options;
  RuntimeUpdateManager manager(instance, update_options);
  manager.PlaceInitial();
  const double before = manager.current().ObjectiveWeighted(instance);
  Rng drop_rng(seed + 1);
  const int dropped = manager.DropRandom(0.3, drop_rng);
  manager.Refill();
  const double after = manager.current().ObjectiveWeighted(instance);
  std::printf("  objective before=%.1f, dropped %d SFC(s), after refill=%.1f\n", before,
              dropped, after);
  return 0;
}
