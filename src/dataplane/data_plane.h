// SFP data plane (§IV): physical NFs on a shared pipeline, virtualized
// to host many tenants' logical SFCs.
//
// Physical NFs are pre-installed, one (type, stage) pair each. Every
// physical NF's match key is the NF's own key *prefixed with two exact
// fields*: the tenant ID and the recirculation pass. Its default rule
// is "No-Op" — forward to the next stage untouched.
//
// Allocating a logical SFC walks the chain through the pipeline in
// passes (the §IV algorithm): starting at stage 0 of pass 0, each
// logical NF is matched to the nearest later physical NF of its type
// with spare memory; when the pipeline end is reached the chain is
// "folded" into the next pass. Rules are copied with the
// (tenant, pass) prefix; the rules of the last NF of every non-final
// pass use the REC action variant so the packet recirculates.
// Additionally a lowest-priority per-(tenant, pass) catch-all No-Op
// rule is installed on that last NF so tenant traffic that misses every
// configured rule still recirculates and completes its chain.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "dataplane/sfc.h"
#include "dataplane/stage_window.h"
#include "switchsim/pipeline.h"

namespace sfp::dataplane {

/// Where one logical NF landed.
struct NfPlacement {
  int stage = 0;
  int pass = 0;
};

/// Failure class of AllocateSfc, so callers can branch without string
/// matching. kInstallFault is the one *transient* class: the placement
/// was feasible but a rule install failed mid-flight (only possible
/// under fault injection) — retrying is sensible.
enum class AllocCode : std::uint8_t {
  kOk = 0,
  kEmptyChain,
  kAlreadyAllocated,
  kNoPlacement,
  kInstallFault,
};

const char* AllocCodeName(AllocCode code);

/// Result of AllocateSfc.
struct AllocationResult {
  bool ok = false;
  AllocCode code = AllocCode::kOk;
  /// Reason when !ok.
  std::string error;
  /// Per-logical-NF placement, parallel to the chain.
  std::vector<NfPlacement> placements;
  /// Total passes the tenant's traffic makes (R_l + 1).
  int passes = 0;
  /// Passes the chain-order reference plan needs (== passes unless
  /// SwitchConfig::nf_parallelism packed independent NFs together; 0
  /// when even the sequential plan is infeasible within the pass
  /// budget but packing found a layout).
  int sequential_passes = 0;

  /// True when retrying the same call may succeed (injected transient
  /// install failure rather than a deterministic capacity/shape miss).
  bool transient() const { return code == AllocCode::kInstallFault; }
};

/// The SFP data plane: a switch pipeline plus the virtualization layer.
class DataPlane {
 public:
  explicit DataPlane(switchsim::SwitchConfig config = {});

  /// Pre-installs a physical NF of `type` at `stage`. At most one NF
  /// of each type per stage; fails (false) when the stage has no spare
  /// block or already hosts this type.
  bool InstallPhysicalNf(int stage, nf::NfType type);

  /// True if a physical NF of `type` exists at `stage`.
  bool HasPhysicalNf(int stage, nf::NfType type) const;

  /// The NF instance backing the physical NF at (stage, type), e.g. to
  /// register load-balancer pools; nullptr if absent.
  nf::NetworkFunction* PhysicalNf(int stage, nf::NfType type);

  /// Allocates a tenant SFC onto the physical pipeline. On failure the
  /// data plane is left unchanged. `max_passes` bounds folding
  /// (defaults to the switch config's recirculation guard).
  AllocationResult AllocateSfc(const Sfc& sfc, std::optional<int> max_passes = {});

  /// Removes every rule of `tenant` and forgets its allocation.
  /// Returns the number of rules removed.
  std::size_t DeallocateSfc(TenantId tenant);

  /// One operation of an atomic update batch. Removals carry the
  /// tenant's SFC so a failed batch can restore it.
  struct UpdateOp {
    enum class Kind { kAdmit, kRemove };
    Kind kind = Kind::kAdmit;
    Sfc sfc;
  };

  /// Result of ApplyAtomic.
  struct BatchResult {
    /// Rollback verdict. kConsistent: the data plane serves exactly as
    /// before the batch (the all-or-nothing guarantee held). kDiverged:
    /// a second fault hit *during rollback* and one or more removed
    /// SFCs could not be restored — `lost_tenants` lists them; their
    /// rules are fully absent (never partially installed).
    enum class Consistency : std::uint8_t { kConsistent = 0, kDiverged };

    bool ok = false;
    /// Index of the op that failed (-1 when ok) and why.
    int failed_op = -1;
    std::string error;
    Consistency consistency = Consistency::kConsistent;
    /// Tenants whose SFCs were lost to a rollback double-fault.
    std::vector<TenantId> lost_tenants;
  };

  /// Applies a batch of admissions/removals with all-or-nothing
  /// semantics (§V-E: reconciling all SFCs on update): ops run in
  /// order; if any fails, every completed op is rolled back in reverse
  /// (re-allocating removed SFCs — their rules are reinstalled, though
  /// possibly at a different feasible placement) and the data plane is
  /// left functionally unchanged. Rollback is double-fault-safe: a
  /// fault while restoring a removed SFC is retried a bounded number of
  /// times and, if it persists, reported as Consistency::kDiverged with
  /// the lost tenants, instead of aborting or silently diverging.
  /// Fault points: "dataplane.apply_op" fails op i before it runs;
  /// install faults inside ops surface through AllocateSfc.
  BatchResult ApplyAtomic(const std::vector<UpdateOp>& ops);

  /// True if the tenant currently has an allocated SFC.
  bool IsAllocated(TenantId tenant) const { return allocations_.contains(tenant); }

  /// The tenant's current allocation (placements + pass count), or
  /// nullptr when none. Valid until the next (de)allocation.
  const AllocationResult* FindAllocation(TenantId tenant) const {
    const auto it = allocations_.find(tenant);
    return it != allocations_.end() ? &it->second : nullptr;
  }

  /// Runs one packet through the shared pipeline.
  switchsim::ProcessResult Process(const net::Packet& packet) {
    return pipeline_.Process(packet);
  }

  /// Batched serve path: shards the batch by flow across a worker pool
  /// (see switchsim::Pipeline::ProcessBatch). Safe to run while another
  /// thread admits or removes tenants; physical-NF installation must
  /// stay quiesced.
  std::vector<switchsim::ProcessResult> ProcessBatch(
      std::span<const net::Packet> packets, const switchsim::BatchOptions& options = {}) {
    return pipeline_.ProcessBatch(packets, options);
  }

  /// ProcessBatch into a caller-reused result buffer (steady-state
  /// serving without per-batch allocation; see
  /// switchsim::Pipeline::ProcessBatchInto).
  void ProcessBatchInto(std::span<const net::Packet> packets,
                        std::span<switchsim::ProcessResult> results,
                        const switchsim::BatchOptions& options = {}) {
    pipeline_.ProcessBatchInto(packets, results, options);
  }

  /// Turns on the pipeline compiler (docs/COMPILER.md) for the batched
  /// serve path: per-tenant plans are compiled from the installed rules
  /// and executed by the batch workers, with interpreted fallback per
  /// tenant. Action traits are derived from each physical NF's
  /// TraitsOf. Call after installing the physical layout; installing
  /// another physical NF later rebuilds the metadata (dropping all
  /// cached plans). Admissions, departures, and atomic updates
  /// proactively invalidate the affected tenant's plan.
  void EnableCompiledPlans();
  bool compiled_plans_enabled() const { return pipeline_.compiler_enabled(); }

  switchsim::Pipeline& pipeline() { return pipeline_; }
  const switchsim::Pipeline& pipeline() const { return pipeline_; }

  /// The fabric-wide stage-window occupancy ledger, or nullptr unless
  /// SwitchConfig::cross_tenant_packing (DESIGN.md "Cross-tenant pass
  /// sharing"). Read-only; valid until the next (de)allocation.
  const StageWindowLedger* xt_ledger() const {
    return pipeline_.config().cross_tenant_packing ? &xt_ledger_ : nullptr;
  }

  /// The SFC a tenant was admitted with (retained for departure-time
  /// window compaction; cross_tenant_packing only). nullptr when
  /// unknown.
  const Sfc* RetainedSfc(TenantId tenant) const {
    const auto it = retained_.find(tenant);
    return it != retained_.end() ? &it->second : nullptr;
  }

  /// One tenant whose retained SFC would re-plan into fewer passes
  /// against the current ledger (its own footprint discounted).
  struct CompactionCandidate {
    TenantId tenant = 0;
    int current_passes = 0;
    int replanned_passes = 0;
  };

  /// Probes every allocated multi-pass tenant for a window-compaction
  /// win (pure — nothing is moved). Candidates are sorted biggest
  /// pass saving first, ties by tenant id, so the §V-E re-provision
  /// driver in SfpSystem::RemoveTenant applies them deterministically.
  /// Empty unless cross_tenant_packing.
  std::vector<CompactionCandidate> PlanCompaction();

  /// Ledger conservation check (empty == consistent, entries describe
  /// violations): ledger tenants == allocated tenants, per-tenant
  /// ledger entries == Σ (rules + 1) over the retained chain, window
  /// occupancy == Σ claims, and the ledger total == the pipeline's
  /// installed entry count. Always empty when cross_tenant_packing is
  /// off.
  std::vector<std::string> AuditXtLedger() const;

  /// All physical NF types installed per stage (for inspection/P4 gen).
  std::vector<std::vector<nf::NfType>> PhysicalLayout() const;

 private:
  struct PhysicalNfSlot {
    nf::NfType type;
    int stage;
    std::unique_ptr<nf::NetworkFunction> nf;
    switchsim::MatchActionTable* table;  // owned by the pipeline stage
    std::map<std::string, switchsim::ActionId> actions;
    switchsim::ActionId noop = -1;
  };

  PhysicalNfSlot* FindSlot(int stage, nf::NfType type);
  const PhysicalNfSlot* FindSlot(int stage, nf::NfType type) const;

  /// One planned rule-copy target: which physical slot hosts logical
  /// NF j, at which (stage, pass), and whether its rules carry the REC
  /// variant (execution-order-last step of a non-final pass).
  struct PlanStep {
    PhysicalNfSlot* slot = nullptr;
    NfPlacement placement;
    bool rec = false;
  };

  /// Chain-order §IV planner: each NF lands at the nearest later stage
  /// of its type with spare memory; the chain folds into the next pass
  /// at the pipeline end. Pure (no installs). Returns false when the
  /// chain cannot be placed within `pass_limit` (plan is then invalid).
  bool PlanSequential(const Sfc& sfc, int pass_limit, std::vector<PlanStep>& plan);

  /// Dependency-aware planner (DESIGN.md "Intra-chain NF parallelism"):
  /// partitions the chain into maximal runs of mutually independent
  /// NFs (nf_deps.h) and places each run inside one pass, so
  /// out-of-order but commuting NFs stop forcing recirculations.
  /// `rejects` tallies failed merges by MergeReject. Pure.
  bool PlanPacked(const Sfc& sfc, int pass_limit, std::vector<PlanStep>& plan,
                  std::vector<std::uint64_t>& rejects);

  /// Cross-tenant co-scheduler (DESIGN.md "Cross-tenant pass
  /// sharing"): schedules successor-carrying NFs exactly like
  /// PlanPacked (earliest feasible (pass, stage)), then steers
  /// successor-free NFs to the best-scoring slot — fewest extra
  /// passes, then the latest stage, then windows other tenants
  /// already hold open — so early-stage capacity stays free for
  /// order-constrained chains and claims line up in shared windows.
  /// With `replan_tenant` set (departure compaction probe) that
  /// tenant's own table entries and window claims are discounted, as
  /// if it had departed. Pure.
  bool PlanCoScheduled(const Sfc& sfc, int pass_limit, std::vector<PlanStep>& plan,
                       std::optional<TenantId> replan_tenant = {});

  /// Marks the execution-order-last step of every non-final pass with
  /// the REC flag (stage order, then table order within the stage —
  /// the interpreter's execution order) and returns the pass count.
  int AssignRecMarks(std::vector<PlanStep>& plan) const;

  /// Drops `tenant`'s compiled plan after a rule mutation (no-op while
  /// the compiler is off or the tenant has no cached plan).
  void InvalidatePlan(TenantId tenant);

  switchsim::Pipeline pipeline_;
  std::vector<PhysicalNfSlot> slots_;
  /// tenant -> placements of its chain (for bookkeeping / tests).
  std::map<TenantId, AllocationResult> allocations_;
  /// Shared (pass, stage) occupancy across tenants; only populated
  /// while cross_tenant_packing is on.
  StageWindowLedger xt_ledger_;
  /// Admitted SFCs kept for departure-time compaction re-plans
  /// (cross_tenant_packing only).
  std::map<TenantId, Sfc> retained_;
};

}  // namespace sfp::dataplane
