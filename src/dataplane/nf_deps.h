// NF dependency analysis for intra-chain parallelism (DESIGN.md,
// "Intra-chain NF parallelism").
//
// Two adjacent NFs of a tenant chain may share a recirculation pass —
// saving one ≈341 ns pass plus recirculation-port bandwidth — iff
// reordering them is unobservable. This module aggregates each logical
// NF's read/write/drop/state footprint from its rules and the NF
// library's ActionTraits, and decides pairwise independence:
//
//   A ∥ B  iff  writes(A) ∩ reads(B) = ∅
//          and  writes(B) ∩ reads(A) = ∅
//          and  writes(A) ∩ writes(B) = ∅
//          and  neither's drop decision gates the other's state
//               (¬(may_drop(A) ∧ stateful(B)) ∧ ¬(may_drop(B) ∧ stateful(A)))
//
// reads(X) = the match-key fields X's rules actually constrain (a
// wildcarded key field is not a read — the lookup result cannot depend
// on it) plus the action bodies' declared reads. writes(X) = the
// action bodies' declared writes, including the virtual effect bits
// (egress port, scratch, TTL) that no key can match but ProcessResult
// exposes. DataPlane::AllocateSfc turns every *dependent* pair into a
// directed ordering edge (keep chain order across passes, or by stage
// within one pass) and list-schedules the chain under those edges;
// runs of mutually independent NFs (MergeRuns) are the edge-free
// special case and collapse into a single pass (see data_plane.cc).
#pragma once

#include <cstdint>
#include <vector>

#include "nf/nf.h"
#include "switchsim/compiler/action_traits.h"

namespace sfp::dataplane {

/// Aggregated footprint of one logical NF (rules + action traits).
struct NfEffects {
  switchsim::compiler::FieldSet reads = switchsim::compiler::kNoFields;
  switchsim::compiler::FieldSet writes = switchsim::compiler::kNoFields;
  /// Any rule's action may drop the packet.
  bool may_drop = false;
  /// Any rule's action mutates NF-instance state.
  bool stateful = false;
};

/// Why a candidate NF could not join the run under construction.
enum class MergeReject : std::uint8_t {
  kNone = 0,
  /// A field-level conflict (read-after-write, write-after-read, or
  /// write-after-write) with a run member.
  kFieldConflict,
  /// A drop decision would gate a stateful member (or vice versa).
  kDropGate,
};

/// Summarizes `config`'s rules against its NF type's key spec and
/// action traits. Unknown action names aggregate as fully conservative
/// (reads/writes everything, may drop, stateful), so they never merge.
NfEffects SummarizeNf(const nf::NfConfig& config);

/// True iff A and B commute (see the relation above). When false and
/// `why` is non-null, *why names the first violated clause.
bool Independent(const NfEffects& a, const NfEffects& b, MergeReject* why = nullptr);

/// Directed precedence edges over one chain's effect summaries:
/// preds[j] lists every i < j whose effects conflict with j's
/// (i.e. !Independent), so i must execute before j on the switch.
/// Each conflict is tallied into `rejects` by MergeReject when
/// non-null (`rejects` must then have at least 3 elements). Both the
/// per-tenant packed planner and the cross-tenant co-scheduler derive
/// their ordering constraints from this one relation.
std::vector<std::vector<std::size_t>> BuildPrecedence(
    const std::vector<NfEffects>& effects, std::vector<std::uint64_t>* rejects = nullptr);

/// Per chain element: true when no later element depends on it
/// (it appears in no preds list). Successor-free NFs are the ones the
/// cross-tenant co-scheduler may steer to late stage windows — nothing
/// downstream constrains where they run.
std::vector<bool> SuccessorFree(const std::vector<std::vector<std::size_t>>& preds);

/// Partitions `chain` into maximal runs of mutually independent NFs:
/// returns one entry per chain element giving its run index (runs are
/// contiguous, numbered 0, 1, ... in chain order). A candidate joins
/// the current run only if independent of *every* member. Each failed
/// join is tallied into `rejects` by reason (field conflicts before
/// drop gates when both apply — Independent reports the first clause).
/// `rejects` must have at least 3 elements (indexable by MergeReject).
std::vector<int> MergeRuns(const std::vector<nf::NfConfig>& chain,
                           std::vector<std::uint64_t>* rejects = nullptr);

}  // namespace sfp::dataplane
