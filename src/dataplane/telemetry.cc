#include "dataplane/telemetry.h"

#include <algorithm>

namespace sfp::dataplane {

void TelemetryCollector::Record(std::uint32_t wire_bytes,
                                const switchsim::ProcessResult& result) {
  TenantCounters& counters = per_tenant_[result.meta.tenant_id];
  ++counters.packets;
  counters.bytes += wire_bytes;
  if (result.meta.dropped) ++counters.drops;
  if (result.passes > 1) ++counters.recirculated_packets;
  counters.total_passes += static_cast<std::uint64_t>(result.passes);
  counters.total_latency_ns += result.latency_ns;
  counters.max_latency_ns = std::max(counters.max_latency_ns, result.latency_ns);
}

TenantCounters TelemetryCollector::Tenant(std::uint16_t tenant) const {
  const auto it = per_tenant_.find(tenant);
  return it != per_tenant_.end() ? it->second : TenantCounters{};
}

std::vector<std::uint16_t> TelemetryCollector::Tenants() const {
  std::vector<std::uint16_t> tenants;
  tenants.reserve(per_tenant_.size());
  for (const auto& [tenant, counters] : per_tenant_) tenants.push_back(tenant);
  return tenants;
}

TenantCounters TelemetryCollector::Total() const {
  TenantCounters total;
  for (const auto& [tenant, counters] : per_tenant_) {
    total.packets += counters.packets;
    total.bytes += counters.bytes;
    total.drops += counters.drops;
    total.recirculated_packets += counters.recirculated_packets;
    total.total_passes += counters.total_passes;
    total.total_latency_ns += counters.total_latency_ns;
    total.max_latency_ns = std::max(total.max_latency_ns, counters.max_latency_ns);
  }
  return total;
}

}  // namespace sfp::dataplane
