#include "dataplane/telemetry.h"

#include <algorithm>
#include <cmath>

namespace sfp::dataplane {
namespace {

/// Locks every shard mutex in index order and releases on destruction.
/// Callers must hold (or not need) the control mutex first; the fixed
/// order makes the all-shard acquisition deadlock-free against the
/// single-shard hot path.
class AllShardsLock {
 public:
  template <typename Shards>
  explicit AllShardsLock(Shards& shards) {
    locks_.reserve(shards.size());
    for (auto& shard : shards) locks_.emplace_back(shard.mutex);
  }

 private:
  std::vector<std::unique_lock<std::mutex>> locks_;
};

}  // namespace

TenantCounters TelemetryCollector::Series::ToCounters() const {
  TenantCounters out;
  Accumulate(out);
  return out;
}

void TelemetryCollector::Series::Accumulate(TenantCounters& out) const {
  out.packets += packets;
  out.bytes += bytes;
  out.drops += drops;
  out.recirculated_packets += recirculated_packets;
  out.total_passes += total_passes;
  // latency_fp is exact, so summing the converted doubles per series
  // would reintroduce order dependence; instead callers that aggregate
  // multiple series (Total/TakeSnapshot) sum fp units and convert
  // once. For the single-series case the two are identical.
  out.total_latency_ns += static_cast<double>(latency_fp) / kLatencyScale;
  out.max_latency_ns = std::max(out.max_latency_ns, max_latency_ns);
}

TelemetryCollector::Delta* TelemetryCollector::DeltaTable::Find(std::uint16_t tenant) {
  for (std::size_t i = 0; i < size; ++i) {
    if (entries[i].tenant == tenant) return &entries[i];
  }
  return nullptr;
}

TelemetryCollector::Delta* TelemetryCollector::DeltaTable::TryAdd(std::uint16_t tenant) {
  if (size == kCapacity) return nullptr;
  entries[size] = Delta{};
  entries[size].tenant = tenant;
  return &entries[size++];
}

void TelemetryCollector::Record(std::uint32_t wire_bytes,
                                const switchsim::ProcessResult& result) {
  Delta delta;
  delta.tenant = result.meta.tenant_id;
  delta.packets = 1;
  delta.bytes = wire_bytes;
  delta.drops = result.meta.dropped ? 1 : 0;
  delta.recirculated_packets = result.passes > 1 ? 1 : 0;
  delta.total_passes = static_cast<std::uint64_t>(result.passes);
  delta.latency_fp = QuantizeLatency(result.latency_ns);
  delta.max_latency_ns = result.latency_ns;
  ApplyDelta(delta);
}

void TelemetryCollector::RecordBatch(std::span<const std::uint32_t> wire_bytes,
                                     std::span<const switchsim::ProcessResult> results) {
  DeltaTable table;
  const std::size_t n = std::min(wire_bytes.size(), results.size());
  for (std::size_t i = 0; i < n; ++i) {
    const switchsim::ProcessResult& result = results[i];
    const std::uint16_t tenant = result.meta.tenant_id;
    Delta* delta = table.Find(tenant);
    if (delta == nullptr) {
      delta = table.TryAdd(tenant);
      if (delta == nullptr) {
        // More distinct tenants than scratch slots: merge what we
        // have and start a fresh table. Merging early is harmless —
        // all accumulators are exact and associative.
        FlushDeltas(table);
        table.size = 0;
        delta = table.TryAdd(tenant);
      }
    }
    ++delta->packets;
    delta->bytes += wire_bytes[i];
    if (result.meta.dropped) ++delta->drops;
    if (result.passes > 1) ++delta->recirculated_packets;
    delta->total_passes += static_cast<std::uint64_t>(result.passes);
    delta->latency_fp += QuantizeLatency(result.latency_ns);
    delta->max_latency_ns = std::max(delta->max_latency_ns, result.latency_ns);
  }
  FlushDeltas(table);
}

void TelemetryCollector::RecordBatch(std::span<const std::uint32_t> indices,
                                     std::span<const net::Packet> packets,
                                     std::span<const switchsim::ProcessResult> results) {
  DeltaTable table;
  for (const std::uint32_t index : indices) {
    const switchsim::ProcessResult& result = results[index];
    const std::uint16_t tenant = result.meta.tenant_id;
    Delta* delta = table.Find(tenant);
    if (delta == nullptr) {
      delta = table.TryAdd(tenant);
      if (delta == nullptr) {
        FlushDeltas(table);
        table.size = 0;
        delta = table.TryAdd(tenant);
      }
    }
    ++delta->packets;
    delta->bytes += packets[index].WireBytes();
    if (result.meta.dropped) ++delta->drops;
    if (result.passes > 1) ++delta->recirculated_packets;
    delta->total_passes += static_cast<std::uint64_t>(result.passes);
    delta->latency_fp += QuantizeLatency(result.latency_ns);
    delta->max_latency_ns = std::max(delta->max_latency_ns, result.latency_ns);
  }
  FlushDeltas(table);
}

void TelemetryCollector::RecordBatch(std::span<const std::uint32_t> indices,
                                     std::span<const std::uint32_t> wire_bytes,
                                     std::span<const switchsim::ProcessResult> results) {
  DeltaTable table;
  for (const std::uint32_t index : indices) {
    const switchsim::ProcessResult& result = results[index];
    const std::uint16_t tenant = result.meta.tenant_id;
    Delta* delta = table.Find(tenant);
    if (delta == nullptr) {
      delta = table.TryAdd(tenant);
      if (delta == nullptr) {
        FlushDeltas(table);
        table.size = 0;
        delta = table.TryAdd(tenant);
      }
    }
    ++delta->packets;
    delta->bytes += wire_bytes[index];
    if (result.meta.dropped) ++delta->drops;
    if (result.passes > 1) ++delta->recirculated_packets;
    delta->total_passes += static_cast<std::uint64_t>(result.passes);
    delta->latency_fp += QuantizeLatency(result.latency_ns);
    delta->max_latency_ns = std::max(delta->max_latency_ns, result.latency_ns);
  }
  FlushDeltas(table);
}

void TelemetryCollector::ApplyDelta(const Delta& delta) {
  Shard& shard = state_->shards[ShardOf(delta.tenant)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto [it, inserted] = shard.series.try_emplace(delta.tenant);
  Series& series = it->second;
  if (inserted) {
    series.epoch = state_->series_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  }
  series.departed = false;  // traffic revives a departed series
  series.packets += delta.packets;
  series.bytes += delta.bytes;
  series.drops += delta.drops;
  series.recirculated_packets += delta.recirculated_packets;
  series.total_passes += delta.total_passes;
  series.latency_fp += delta.latency_fp;
  series.max_latency_ns = std::max(series.max_latency_ns, delta.max_latency_ns);
}

void TelemetryCollector::FlushDeltas(const DeltaTable& table) {
  // Merge once per touched shard: group the (few) entries by shard so
  // each shard mutex is taken at most once per flush.
  for (std::size_t shard_index = 0; shard_index < kShardCount; ++shard_index) {
    Shard* shard = nullptr;
    std::unique_lock<std::mutex> lock;
    for (std::size_t i = 0; i < table.size; ++i) {
      const Delta& delta = table.entries[i];
      if (ShardOf(delta.tenant) != shard_index) continue;
      if (shard == nullptr) {
        shard = &state_->shards[shard_index];
        lock = std::unique_lock<std::mutex>(shard->mutex);
      }
      const auto [it, inserted] = shard->series.try_emplace(delta.tenant);
      Series& series = it->second;
      if (inserted) {
        series.epoch = state_->series_epoch.fetch_add(1, std::memory_order_relaxed) + 1;
      }
      series.departed = false;
      series.packets += delta.packets;
      series.bytes += delta.bytes;
      series.drops += delta.drops;
      series.recirculated_packets += delta.recirculated_packets;
      series.total_passes += delta.total_passes;
      series.latency_fp += delta.latency_fp;
      series.max_latency_ns = std::max(series.max_latency_ns, delta.max_latency_ns);
    }
  }
}

TenantCounters TelemetryCollector::Tenant(std::uint16_t tenant) const {
  const Shard& shard = state_->shards[ShardOf(tenant)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(tenant);
  return it != shard.series.end() ? it->second.ToCounters() : TenantCounters{};
}

std::vector<std::uint16_t> TelemetryCollector::Tenants() const {
  std::lock_guard<std::mutex> control(state_->control_mutex);
  AllShardsLock shards(state_->shards);
  std::vector<std::uint16_t> tenants;
  for (const Shard& shard : state_->shards) {
    for (const auto& [tenant, series] : shard.series) tenants.push_back(tenant);
  }
  std::sort(tenants.begin(), tenants.end());
  return tenants;
}

std::vector<std::uint16_t> TelemetryCollector::DepartedTenants() const {
  std::lock_guard<std::mutex> control(state_->control_mutex);
  AllShardsLock shards(state_->shards);
  std::vector<std::uint16_t> tenants;
  for (const Shard& shard : state_->shards) {
    for (const auto& [tenant, series] : shard.series) {
      if (series.departed) tenants.push_back(tenant);
    }
  }
  std::sort(tenants.begin(), tenants.end());
  return tenants;
}

TenantCounters TelemetryCollector::Total() const {
  return TakeSnapshot().total;
}

TelemetryCollector::Snapshot TelemetryCollector::TakeSnapshot() const {
  std::lock_guard<std::mutex> control(state_->control_mutex);
  AllShardsLock shards(state_->shards);
  Snapshot snapshot;
  std::uint64_t total_latency_fp = 0;
  struct Row {
    std::uint16_t tenant;
    TenantCounters counters;
    std::uint64_t epoch;
  };
  std::vector<Row> rows;
  for (const Shard& shard : state_->shards) {
    for (const auto& [tenant, series] : shard.series) {
      rows.push_back({tenant, series.ToCounters(), series.epoch});
      if (series.departed) ++snapshot.departed;
      snapshot.total.packets += series.packets;
      snapshot.total.bytes += series.bytes;
      snapshot.total.drops += series.drops;
      snapshot.total.recirculated_packets += series.recirculated_packets;
      snapshot.total.total_passes += series.total_passes;
      total_latency_fp += series.latency_fp;
      snapshot.total.max_latency_ns =
          std::max(snapshot.total.max_latency_ns, series.max_latency_ns);
    }
  }
  snapshot.total.total_latency_ns = static_cast<double>(total_latency_fp) / kLatencyScale;
  std::sort(rows.begin(), rows.end(),
            [](const Row& a, const Row& b) { return a.tenant < b.tenant; });
  snapshot.tenants.reserve(rows.size());
  snapshot.epochs.reserve(rows.size());
  for (const Row& row : rows) {
    snapshot.tenants.emplace_back(row.tenant, row.counters);
    snapshot.epochs.push_back(row.epoch);
  }
  return snapshot;
}

std::vector<TelemetryCollector::TenantDrift> TelemetryCollector::Drift(
    const Snapshot& before, const Snapshot& after) {
  std::vector<TenantDrift> drift;
  std::size_t b = 0;
  for (std::size_t a = 0; a < after.tenants.size(); ++a) {
    const auto& [tenant, cur] = after.tenants[a];
    while (b < before.tenants.size() && before.tenants[b].first < tenant) ++b;
    const bool known = b < before.tenants.size() && before.tenants[b].first == tenant;
    const bool same_series = known && b < before.epochs.size() &&
                             a < after.epochs.size() &&
                             before.epochs[b] == after.epochs[a];
    TenantDrift d;
    d.tenant = tenant;
    if (same_series) {
      const TenantCounters& prev = before.tenants[b].second;
      // Every record bumps packets, so an unchanged packet count means
      // the whole series is unchanged — an idle tenant this window.
      if (cur.packets == prev.packets) continue;
      d.packets = cur.packets - prev.packets;
      d.bytes = cur.bytes - prev.bytes;
      d.drops = cur.drops - prev.drops;
      d.recirculated_packets = cur.recirculated_packets - prev.recirculated_packets;
      d.total_passes = cur.total_passes - prev.total_passes;
    } else {
      // First sight of this series: its absolute counters are the
      // window delta. `restarted` only when an older series existed —
      // a brand-new tenant is not a restart.
      d.restarted = known;
      d.packets = cur.packets;
      d.bytes = cur.bytes;
      d.drops = cur.drops;
      d.recirculated_packets = cur.recirculated_packets;
      d.total_passes = cur.total_passes;
      if (cur.packets == 0) continue;  // created but never recorded into
    }
    drift.push_back(d);
  }
  return drift;
}

std::vector<TelemetryCollector::TenantDrift> TelemetryCollector::DriftSince(
    Snapshot& window_start) const {
  Snapshot now = TakeSnapshot();
  auto drift = Drift(window_start, now);
  window_start = std::move(now);
  return drift;
}

void TelemetryCollector::SetRetention(TelemetryRetention policy,
                                      std::size_t max_departed_series) {
  std::lock_guard<std::mutex> control(state_->control_mutex);
  AllShardsLock shards(state_->shards);
  state_->retention = policy;
  state_->max_departed_series = max_departed_series;
  EvictExcessDepartedLocked();
}

void TelemetryCollector::MarkDeparted(std::uint16_t tenant) {
  std::lock_guard<std::mutex> control(state_->control_mutex);
  AllShardsLock shards(state_->shards);
  Shard& shard = state_->shards[ShardOf(tenant)];
  const auto it = shard.series.find(tenant);
  if (it == shard.series.end()) return;
  if (state_->retention == TelemetryRetention::kPurgeOnDeparture) {
    shard.series.erase(it);
    return;
  }
  it->second.departed = true;
  it->second.departed_seq = ++state_->departure_seq;
  EvictExcessDepartedLocked();
}

bool TelemetryCollector::IsDeparted(std::uint16_t tenant) const {
  const Shard& shard = state_->shards[ShardOf(tenant)];
  std::lock_guard<std::mutex> lock(shard.mutex);
  const auto it = shard.series.find(tenant);
  return it != shard.series.end() && it->second.departed;
}

void TelemetryCollector::Reset() {
  std::lock_guard<std::mutex> control(state_->control_mutex);
  AllShardsLock shards(state_->shards);
  for (Shard& shard : state_->shards) shard.series.clear();
  state_->departure_seq = 0;
}

void TelemetryCollector::EvictExcessDepartedLocked() {
  std::size_t departed = 0;
  for (const Shard& shard : state_->shards) {
    for (const auto& [tenant, series] : shard.series) {
      if (series.departed) ++departed;
    }
  }
  while (departed > state_->max_departed_series) {
    // Evict the globally oldest departure, scanning across shards —
    // identical policy to the pre-shard collector.
    Shard* oldest_shard = nullptr;
    std::map<std::uint16_t, Series>::iterator oldest;
    for (Shard& shard : state_->shards) {
      for (auto it = shard.series.begin(); it != shard.series.end(); ++it) {
        if (!it->second.departed) continue;
        if (oldest_shard == nullptr ||
            it->second.departed_seq < oldest->second.departed_seq) {
          oldest_shard = &shard;
          oldest = it;
        }
      }
    }
    oldest_shard->series.erase(oldest);
    --departed;
  }
}

}  // namespace sfp::dataplane
