#include "dataplane/telemetry.h"

#include <algorithm>

namespace sfp::dataplane {

void TelemetryCollector::Record(std::uint32_t wire_bytes,
                                const switchsim::ProcessResult& result) {
  std::lock_guard<std::mutex> lock(*mutex_);
  Series& series = per_tenant_[result.meta.tenant_id];
  series.departed = false;  // traffic revives a departed series
  TenantCounters& counters = series.counters;
  ++counters.packets;
  counters.bytes += wire_bytes;
  if (result.meta.dropped) ++counters.drops;
  if (result.passes > 1) ++counters.recirculated_packets;
  counters.total_passes += static_cast<std::uint64_t>(result.passes);
  counters.total_latency_ns += result.latency_ns;
  counters.max_latency_ns = std::max(counters.max_latency_ns, result.latency_ns);
}

TenantCounters TelemetryCollector::Tenant(std::uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = per_tenant_.find(tenant);
  return it != per_tenant_.end() ? it->second.counters : TenantCounters{};
}

std::vector<std::uint16_t> TelemetryCollector::Tenants() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::uint16_t> tenants;
  tenants.reserve(per_tenant_.size());
  for (const auto& [tenant, series] : per_tenant_) tenants.push_back(tenant);
  return tenants;
}

std::vector<std::uint16_t> TelemetryCollector::DepartedTenants() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  std::vector<std::uint16_t> tenants;
  for (const auto& [tenant, series] : per_tenant_) {
    if (series.departed) tenants.push_back(tenant);
  }
  return tenants;
}

TenantCounters TelemetryCollector::Total() const {
  std::lock_guard<std::mutex> lock(*mutex_);
  TenantCounters total;
  for (const auto& [tenant, series] : per_tenant_) {
    const TenantCounters& counters = series.counters;
    total.packets += counters.packets;
    total.bytes += counters.bytes;
    total.drops += counters.drops;
    total.recirculated_packets += counters.recirculated_packets;
    total.total_passes += counters.total_passes;
    total.total_latency_ns += counters.total_latency_ns;
    total.max_latency_ns = std::max(total.max_latency_ns, counters.max_latency_ns);
  }
  return total;
}

void TelemetryCollector::SetRetention(TelemetryRetention policy,
                                      std::size_t max_departed_series) {
  std::lock_guard<std::mutex> lock(*mutex_);
  retention_ = policy;
  max_departed_series_ = max_departed_series;
  EvictExcessDepartedLocked();
}

void TelemetryCollector::MarkDeparted(std::uint16_t tenant) {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = per_tenant_.find(tenant);
  if (it == per_tenant_.end()) return;
  if (retention_ == TelemetryRetention::kPurgeOnDeparture) {
    per_tenant_.erase(it);
    return;
  }
  it->second.departed = true;
  it->second.departed_seq = ++departure_seq_;
  EvictExcessDepartedLocked();
}

bool TelemetryCollector::IsDeparted(std::uint16_t tenant) const {
  std::lock_guard<std::mutex> lock(*mutex_);
  const auto it = per_tenant_.find(tenant);
  return it != per_tenant_.end() && it->second.departed;
}

void TelemetryCollector::Reset() {
  std::lock_guard<std::mutex> lock(*mutex_);
  per_tenant_.clear();
  departure_seq_ = 0;
}

void TelemetryCollector::EvictExcessDepartedLocked() {
  std::size_t departed = 0;
  for (const auto& [tenant, series] : per_tenant_) {
    if (series.departed) ++departed;
  }
  while (departed > max_departed_series_) {
    // Evict the oldest departure.
    auto oldest = per_tenant_.end();
    for (auto it = per_tenant_.begin(); it != per_tenant_.end(); ++it) {
      if (!it->second.departed) continue;
      if (oldest == per_tenant_.end() ||
          it->second.departed_seq < oldest->second.departed_seq) {
        oldest = it;
      }
    }
    per_tenant_.erase(oldest);
    --departed;
  }
}

}  // namespace sfp::dataplane
