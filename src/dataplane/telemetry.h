// Per-tenant telemetry for the SFP data plane.
//
// Cloud operators bill and debug per tenant; the data plane therefore
// tracks, per tenant ID: packets/bytes in, drops, recirculations, and
// latency aggregates. The collector is fed by the owner of the
// pipeline (SfpSystem::Process records every result, and the batched
// serve path feeds whole worker slices through RecordBatch) and is
// cheap enough for per-packet use.
//
// Sharding: tenants are striped across kShardCount shards
// (tenant % kShardCount), each with its own mutex and series map, so
// concurrent batch workers recording disjoint tenants never contend.
// RecordBatch accumulates per-tenant deltas worker-locally in a
// fixed-size scratch table and merges them under each shard lock once
// per batch, instead of taking a lock per packet.
//
// Exactness: latencies are quantized once on entry to a fixed-point
// integer (1/4096 ns units, < 2^-13 ns rounding error — far below the
// 0.5 ns granularity of the timing model), so per-tenant sums are
// plain integer arithmetic. Summation order therefore cannot change
// the result: batched recording with any worker interleaving is
// bit-identical to serial per-packet Record calls.
//
// Retention: under long-running tenant churn the per-tenant maps would
// grow without bound, so departures are subject to an explicit policy
// (SetRetention): either purge the series immediately, or — the
// default — keep it marked "departed" for post-mortem reads, bounded
// by a cap beyond which the oldest departed series are evicted.
//
// Thread safety: the hot path (Record / RecordBatch shard merges)
// takes only the owning shard's mutex. Control-plane operations
// (MarkDeparted, SetRetention, Reset) and whole-collector reads
// (Total, Tenants, Snapshot, ...) take a control mutex plus every
// shard mutex in index order, giving them a consistent point-in-time
// view and preserving the seed collector's global oldest-first
// departed eviction. The lock order (control, then shards ascending;
// hot path holds exactly one shard lock and never the control lock)
// is acyclic, so the collector cannot deadlock.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "switchsim/pipeline.h"

namespace sfp::dataplane {

/// Counters for one tenant.
struct TenantCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t recirculated_packets = 0;  // packets that made >1 pass
  std::uint64_t total_passes = 0;
  double total_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  double MeanLatencyNs() const { return packets ? total_latency_ns / packets : 0.0; }
  double MeanPasses() const {
    return packets ? static_cast<double>(total_passes) / packets : 0.0;
  }
  double DropRate() const {
    return packets ? static_cast<double>(drops) / packets : 0.0;
  }
};

/// What happens to a tenant's series when it departs.
enum class TelemetryRetention : std::uint8_t {
  /// Keep the series, marked departed, until the departed-series cap
  /// forces eviction of the oldest (default).
  kKeepDeparted = 0,
  /// Drop the series as soon as the tenant departs.
  kPurgeOnDeparture,
};

/// Aggregating collector keyed by tenant ID, striped over locked
/// shards so batch workers recording different tenants don't contend.
class TelemetryCollector {
 public:
  /// Tenant-stripe count. A power of two so the stripe of a tenant is
  /// a mask, sized to keep contention negligible at the pool's
  /// maximum parallelism (8) without bloating whole-collector scans.
  static constexpr std::size_t kShardCount = 16;

  /// Fixed-point latency scale: 1 ns == 4096 units. Dyadic, so any
  /// latency that is a multiple of 2^-12 ns converts exactly.
  static constexpr double kLatencyScale = 4096.0;

  /// Point-in-time copy of every retained series, taken under one
  /// all-shard locking pass (vs. one lock acquisition per tenant when
  /// calling Tenant() in a loop).
  struct Snapshot {
    TenantCounters total;
    /// Ascending by tenant ID.
    std::vector<std::pair<std::uint16_t, TenantCounters>> tenants;
    /// Series-creation epoch of tenants[i] (parallel array). A fresh
    /// series — tenant first seen, or seen again after its old series
    /// was purged, evicted, or Reset away — gets a new, strictly
    /// increasing epoch, so drift queries can tell a counter restart
    /// from ordinary forward progress.
    std::vector<std::uint64_t> epochs;
    /// How many of `tenants` are currently marked departed.
    std::size_t departed = 0;
  };

  /// Per-tenant counter movement between two snapshots (the recovery
  /// loop's drift query; see docs/SCENARIOS.md).
  struct TenantDrift {
    std::uint16_t tenant = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t recirculated_packets = 0;
    std::uint64_t total_passes = 0;
    /// The series restarted between the snapshots (purged or evicted,
    /// then seen again): the fields above are the new series' absolute
    /// counters. The purged window tail is unobservable by design —
    /// purged history is never resurrected into a later window.
    bool restarted = false;

    double DropRate() const {
      return packets ? static_cast<double>(drops) / packets : 0.0;
    }
    double MeanPasses() const {
      return packets ? static_cast<double>(total_passes) / packets : 0.0;
    }
  };

  /// Drift between two snapshots of the same collector: one entry per
  /// tenant present in `after` that moved, ascending by ID. Tenants
  /// idle across the window are omitted; a tenant purged between the
  /// snapshots simply disappears (its history is not re-counted). A
  /// default-constructed `before` yields every tenant's absolute
  /// counters (the bootstrap window).
  static std::vector<TenantDrift> Drift(const Snapshot& before, const Snapshot& after);

  /// Windowed poll primitive: computes the drift since `window_start`
  /// and advances `window_start` to the fresh snapshot it took.
  std::vector<TenantDrift> DriftSince(Snapshot& window_start) const;

  /// Records one processed packet (its original wire size plus the
  /// pipeline's result). A departed tenant that sends again is revived
  /// (unmarked).
  void Record(std::uint32_t wire_bytes, const switchsim::ProcessResult& result);

  /// Records a batch: wire_bytes[i] pairs with results[i]. Deltas are
  /// accumulated lock-free in a scratch table and merged once per
  /// touched shard. Bit-identical to calling Record per element.
  void RecordBatch(std::span<const std::uint32_t> wire_bytes,
                   std::span<const switchsim::ProcessResult> results);

  /// Indexed RecordBatch: records wire_bytes[i] / results[i] for each
  /// i in `indices`. `wire_bytes` and `results` are full-batch arrays;
  /// `indices` selects this worker's slice (the shape handed to
  /// switchsim::BatchOptions::result_sink).
  void RecordBatch(std::span<const std::uint32_t> indices,
                   std::span<const std::uint32_t> wire_bytes,
                   std::span<const switchsim::ProcessResult> results);

  /// Indexed RecordBatch computing wire sizes on the fly from the
  /// original input packets (pure arithmetic over header presence).
  /// Fusing the size computation here keeps it on the batch workers —
  /// no serial full-batch pre-pass on the caller thread.
  void RecordBatch(std::span<const std::uint32_t> indices,
                   std::span<const net::Packet> packets,
                   std::span<const switchsim::ProcessResult> results);

  /// Counters for `tenant` (zeros if never seen or evicted).
  TenantCounters Tenant(std::uint16_t tenant) const;

  /// All tenants with a live series (active and retained-departed),
  /// ascending by ID.
  std::vector<std::uint16_t> Tenants() const;

  /// Tenants currently marked departed (subset of Tenants()).
  std::vector<std::uint16_t> DepartedTenants() const;

  /// Aggregate over every retained tenant.
  TenantCounters Total() const;

  /// Copies every retained series and the aggregate in one all-shard
  /// locking pass. Use for metrics export instead of Tenants() +
  /// Tenant() per ID.
  Snapshot TakeSnapshot() const;

  /// Configures the departure policy. `max_departed_series` bounds how
  /// many departed series kKeepDeparted retains before evicting the
  /// oldest-departed.
  void SetRetention(TelemetryRetention policy, std::size_t max_departed_series = 1024);

  /// Applies the retention policy to `tenant`'s series (call on
  /// tenant departure). Unknown tenants are a no-op.
  void MarkDeparted(std::uint16_t tenant);

  bool IsDeparted(std::uint16_t tenant) const;

  /// Drops all state (e.g. per measurement interval).
  void Reset();

  static constexpr std::size_t ShardOf(std::uint16_t tenant) {
    return tenant % kShardCount;
  }

  /// Quantizes a latency to fixed-point units (exposed so tests and
  /// reference collectors can reproduce the exact arithmetic; inline —
  /// it runs per packet inside the fused batch sinks). The +0.5
  /// truncation matches llround for the non-negative values latencies
  /// take, without the per-packet libm call.
  static std::uint64_t QuantizeLatency(double latency_ns) {
    if (latency_ns <= 0.0) return 0;
    return static_cast<std::uint64_t>(latency_ns * kLatencyScale + 0.5);
  }

 private:
  /// Exact integer accumulators for one tenant. Latency is summed in
  /// fixed-point so the total is independent of summation order.
  struct Series {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t recirculated_packets = 0;
    std::uint64_t total_passes = 0;
    std::uint64_t latency_fp = 0;  // kLatencyScale units
    double max_latency_ns = 0.0;
    bool departed = false;
    /// Departure order for oldest-first eviction.
    std::uint64_t departed_seq = 0;
    /// Creation order (strictly increasing, never reused): drift
    /// queries compare epochs to detect a purged-and-recreated series.
    std::uint64_t epoch = 0;

    TenantCounters ToCounters() const;
    void Accumulate(TenantCounters& out) const;
  };

  /// Worker-local delta accumulated by RecordBatch before the shard
  /// merge. Same exact-arithmetic fields as Series.
  struct Delta {
    std::uint16_t tenant = 0;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t drops = 0;
    std::uint64_t recirculated_packets = 0;
    std::uint64_t total_passes = 0;
    std::uint64_t latency_fp = 0;
    double max_latency_ns = 0.0;
  };

  /// Fixed-capacity scratch table of per-tenant deltas: no heap in
  /// the steady-state serve loop. Batches touching more distinct
  /// tenants than fit are handled by flushing and restarting.
  struct DeltaTable {
    static constexpr std::size_t kCapacity = 64;
    std::array<Delta, kCapacity> entries;
    std::size_t size = 0;

    Delta* Find(std::uint16_t tenant);
    Delta* TryAdd(std::uint16_t tenant);  // nullptr when full
  };

  struct Shard {
    mutable std::mutex mutex;
    std::map<std::uint16_t, Series> series;
  };

  /// Heap-held so the collector stays movable (SfpSystem holds it by
  /// value and is itself movable) despite the non-movable mutexes.
  struct State {
    std::array<Shard, kShardCount> shards;
    /// Guards retention settings + departure_seq and serializes
    /// control-plane operations against each other. Never taken by
    /// the record hot path.
    mutable std::mutex control_mutex;
    TelemetryRetention retention = TelemetryRetention::kKeepDeparted;
    std::size_t max_departed_series = 1024;
    std::uint64_t departure_seq = 0;
    /// Series-creation counter (atomic: series are created under the
    /// owning shard's lock, and shards create concurrently).
    std::atomic<std::uint64_t> series_epoch{0};
  };

  void ApplyDelta(const Delta& delta);  // locks the owning shard
  void FlushDeltas(const DeltaTable& table);
  /// Requires control_mutex + all shard mutexes held.
  void EvictExcessDepartedLocked();

  std::unique_ptr<State> state_ = std::make_unique<State>();
};

}  // namespace sfp::dataplane
