// Per-tenant telemetry for the SFP data plane.
//
// Cloud operators bill and debug per tenant; the data plane therefore
// tracks, per tenant ID: packets/bytes in, drops, recirculations, and
// latency aggregates. The collector is fed by the owner of the
// pipeline (SfpSystem::Process records every result) and is cheap
// enough for per-packet use.
//
// Retention: under long-running tenant churn the per-tenant map would
// grow without bound, so departures are subject to an explicit policy
// (SetRetention): either purge the series immediately, or — the
// default — keep it marked "departed" for post-mortem reads, bounded
// by a cap beyond which the oldest departed series are evicted.
//
// Thread safety: all methods take an internal mutex, so a control
// thread may MarkDeparted/read while the serve thread records.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "switchsim/pipeline.h"

namespace sfp::dataplane {

/// Counters for one tenant.
struct TenantCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t recirculated_packets = 0;  // packets that made >1 pass
  std::uint64_t total_passes = 0;
  double total_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  double MeanLatencyNs() const { return packets ? total_latency_ns / packets : 0.0; }
  double MeanPasses() const {
    return packets ? static_cast<double>(total_passes) / packets : 0.0;
  }
  double DropRate() const {
    return packets ? static_cast<double>(drops) / packets : 0.0;
  }
};

/// What happens to a tenant's series when it departs.
enum class TelemetryRetention : std::uint8_t {
  /// Keep the series, marked departed, until the departed-series cap
  /// forces eviction of the oldest (default).
  kKeepDeparted = 0,
  /// Drop the series as soon as the tenant departs.
  kPurgeOnDeparture,
};

/// Aggregating collector keyed by tenant ID.
class TelemetryCollector {
 public:
  /// Records one processed packet (its original wire size plus the
  /// pipeline's result). A departed tenant that sends again is revived
  /// (unmarked).
  void Record(std::uint32_t wire_bytes, const switchsim::ProcessResult& result);

  /// Counters for `tenant` (zeros if never seen or evicted).
  TenantCounters Tenant(std::uint16_t tenant) const;

  /// All tenants with a live series (active and retained-departed),
  /// ascending by ID.
  std::vector<std::uint16_t> Tenants() const;

  /// Tenants currently marked departed (subset of Tenants()).
  std::vector<std::uint16_t> DepartedTenants() const;

  /// Aggregate over every retained tenant.
  TenantCounters Total() const;

  /// Configures the departure policy. `max_departed_series` bounds how
  /// many departed series kKeepDeparted retains before evicting the
  /// oldest-departed.
  void SetRetention(TelemetryRetention policy, std::size_t max_departed_series = 1024);

  /// Applies the retention policy to `tenant`'s series (call on
  /// tenant departure). Unknown tenants are a no-op.
  void MarkDeparted(std::uint16_t tenant);

  bool IsDeparted(std::uint16_t tenant) const;

  /// Drops all state (e.g. per measurement interval).
  void Reset();

 private:
  struct Series {
    TenantCounters counters;
    bool departed = false;
    /// Departure order for oldest-first eviction.
    std::uint64_t departed_seq = 0;
  };

  void EvictExcessDepartedLocked();

  /// By pointer so the collector stays movable (SfpSystem holds it by
  /// value and is itself movable).
  std::unique_ptr<std::mutex> mutex_ = std::make_unique<std::mutex>();
  TelemetryRetention retention_ = TelemetryRetention::kKeepDeparted;
  std::size_t max_departed_series_ = 1024;
  std::uint64_t departure_seq_ = 0;
  std::map<std::uint16_t, Series> per_tenant_;
};

}  // namespace sfp::dataplane
