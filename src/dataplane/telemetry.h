// Per-tenant telemetry for the SFP data plane.
//
// Cloud operators bill and debug per tenant; the data plane therefore
// tracks, per tenant ID: packets/bytes in, drops, recirculations, and
// latency aggregates. The collector is fed by the owner of the
// pipeline (SfpSystem::Process records every result) and is cheap
// enough for per-packet use.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "switchsim/pipeline.h"

namespace sfp::dataplane {

/// Counters for one tenant.
struct TenantCounters {
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
  std::uint64_t drops = 0;
  std::uint64_t recirculated_packets = 0;  // packets that made >1 pass
  std::uint64_t total_passes = 0;
  double total_latency_ns = 0.0;
  double max_latency_ns = 0.0;

  double MeanLatencyNs() const { return packets ? total_latency_ns / packets : 0.0; }
  double MeanPasses() const {
    return packets ? static_cast<double>(total_passes) / packets : 0.0;
  }
  double DropRate() const {
    return packets ? static_cast<double>(drops) / packets : 0.0;
  }
};

/// Aggregating collector keyed by tenant ID.
class TelemetryCollector {
 public:
  /// Records one processed packet (its original wire size plus the
  /// pipeline's result).
  void Record(std::uint32_t wire_bytes, const switchsim::ProcessResult& result);

  /// Counters for `tenant` (zeros if never seen).
  TenantCounters Tenant(std::uint16_t tenant) const;

  /// All tenants seen, ascending by ID.
  std::vector<std::uint16_t> Tenants() const;

  /// Aggregate over every tenant.
  TenantCounters Total() const;

  /// Drops all state (e.g. per measurement interval).
  void Reset() { per_tenant_.clear(); }

 private:
  std::map<std::uint16_t, TenantCounters> per_tenant_;
};

}  // namespace sfp::dataplane
