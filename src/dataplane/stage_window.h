// Fabric-wide stage-window occupancy ledger (DESIGN.md "Cross-tenant
// pass sharing").
//
// A *stage window* is one (pass, stage) coordinate of the virtualized
// pipeline. A tenant whose chain visits that coordinate "opens" the
// window; later tenants that land NFs in the same coordinate "join"
// it. The ledger records, per admitted tenant, every claim the
// installed plan made — which table, at which (pass, stage), with how
// many rule entries — and aggregates the claims into per-window
// occupancy shared across tenants.
//
// The allocator consults the ledger when cross_tenant_packing is on:
// the co-scheduled planner prefers placements whose window is already
// open, so pass boundaries line up across the tenant population and
// scarce early-stage table capacity stays available for
// order-constrained chains. Departure-time compaction re-plans
// retained SFCs with their own footprint discounted (TenantFootprint).
//
// Invariants (AuditXtLedger in data_plane.h checks them):
//   * ledger tenants == allocated tenants,
//   * per tenant, Σ claim entries == Σ (rules + 1) over its chain,
//   * Σ all claim entries == Pipeline::TotalEntriesUsed(),
//   * every window's occupancy == Σ of the claims inside it.
//
// Not thread-safe on its own; DataPlane mutates it only under the
// control-plane paths that already serialize (de)allocations.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dataplane/sfc.h"

namespace sfp::switchsim {
class MatchActionTable;
}

namespace sfp::dataplane {

class StageWindowLedger {
 public:
  /// One installed logical NF: its rule entries in one physical table
  /// at one (pass, stage) coordinate.
  struct Claim {
    int pass = 0;
    int stage = 0;
    const switchsim::MatchActionTable* table = nullptr;
    std::int64_t entries = 0;
  };

  /// Aggregate occupancy of one (pass, stage) window.
  struct Window {
    /// Live claims (logical NF placements) inside the window.
    std::int64_t claims = 0;
    /// Total rule entries those claims hold.
    std::int64_t entries = 0;
  };

  /// (pass, stage).
  using WindowKey = std::pair<int, int>;

  /// Records a tenant's installed plan. The tenant must not already be
  /// in the ledger. Returns {windows opened, windows joined}: a claim
  /// "joins" when its (pass, stage) window was open before this call
  /// (another tenant holds it), and "opens" it otherwise — claims of
  /// this same commit sharing a coordinate count once as opened.
  std::pair<std::uint64_t, std::uint64_t> Commit(TenantId tenant,
                                                 std::vector<Claim> claims);

  /// Releases every claim of `tenant`; windows that drain to zero are
  /// erased. No-op when the tenant is absent.
  void Release(TenantId tenant);

  bool HasTenant(TenantId tenant) const { return claims_.contains(tenant); }

  /// True when at least one live claim sits at (pass, stage).
  bool WindowOpen(int pass, int stage) const {
    return windows_.contains(WindowKey{pass, stage});
  }

  /// Like WindowOpen, but ignoring `exclude`'s own claims — true only
  /// when some *other* tenant holds (pass, stage). Used by departure
  /// compaction probes so a tenant's current placement doesn't bias
  /// its own re-plan.
  bool WindowOpenExcluding(int pass, int stage, TenantId exclude) const;

  /// Per-table entry footprint of one tenant (for discounting the
  /// tenant's own rules when probing a re-plan). Empty when absent.
  std::map<const switchsim::MatchActionTable*, std::int64_t> TenantFootprint(
      TenantId tenant) const;

  /// Total entries the ledger books for `tenant` (0 when absent).
  std::int64_t TenantEntries(TenantId tenant) const;

  /// Total entries across every tenant.
  std::int64_t TotalEntries() const;

  std::size_t NumTenants() const { return claims_.size(); }

  const std::map<TenantId, std::vector<Claim>>& claims() const { return claims_; }
  const std::map<WindowKey, Window>& windows() const { return windows_; }

 private:
  std::map<TenantId, std::vector<Claim>> claims_;
  std::map<WindowKey, Window> windows_;
};

}  // namespace sfp::dataplane
