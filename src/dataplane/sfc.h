// Tenant-facing SFC description.
#pragma once

#include <cstdint>
#include <vector>

#include "nf/nf.h"

namespace sfp::dataplane {

/// Tenant identifier (the VLAN VID / "tenant ID" of §III).
using TenantId = std::uint16_t;

/// A tenant's service function chain: an ordered list of configured
/// NFs plus its bandwidth demand T_l (Gbps).
struct Sfc {
  TenantId tenant = 0;
  double bandwidth_gbps = 0.0;
  std::vector<nf::NfConfig> chain;

  /// Chain length J_l.
  int Length() const { return static_cast<int>(chain.size()); }

  /// Total configured rules across the chain (sum of F_jl).
  std::int64_t TotalRules() const {
    std::int64_t total = 0;
    for (const auto& nf : chain) total += static_cast<std::int64_t>(nf.rules.size());
    return total;
  }
};

}  // namespace sfp::dataplane
