// Branching SFCs (§VII "Branches inside SFC").
//
// Tenants may express their chain as a DAG (if-else control flow
// between NFs). The paper's simplification: dependent tables must land
// in later stages, independent tables may share a stage — "we regard
// NFs as sequential virtual tables". This module implements that
// flattening: a topological linearization of the DAG, plus the depth
// labelling that identifies which NFs are mutually independent (same
// depth = could share a stage on a target that packs independent
// tables into one MAU).
#pragma once

#include <optional>
#include <vector>

#include "dataplane/sfc.h"

namespace sfp::dataplane {

/// One DAG node: an NF plus the indices of its successors.
struct DagNode {
  nf::NfConfig nf;
  std::vector<int> successors;
};

/// A tenant SFC expressed as a DAG over NFs. Edges run from a node to
/// each successor; entry nodes are those with no predecessors.
struct SfcDag {
  TenantId tenant = 0;
  double bandwidth_gbps = 0.0;
  std::vector<DagNode> nodes;
};

/// Validates the DAG (successor indices in range, acyclic). Returns
/// false for malformed graphs.
bool IsValidDag(const SfcDag& dag);

/// Longest-path depth per node (entry nodes = 0); nodes with equal
/// depth are independent and mergeable into one stage on targets that
/// support it. Empty vector if the DAG is invalid.
std::vector<int> TopologicalDepths(const SfcDag& dag);

/// Flattens per §VII into a sequential Sfc: nodes ordered by depth,
/// ties broken by node index (deterministic). Returns nullopt if the
/// DAG is invalid.
std::optional<Sfc> FlattenDag(const SfcDag& dag);

}  // namespace sfp::dataplane
