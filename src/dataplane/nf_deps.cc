#include "dataplane/nf_deps.h"

#include <algorithm>

#include "switchsim/compiler/ir.h"

namespace sfp::dataplane {

using switchsim::compiler::FieldBit;
using switchsim::compiler::IsWildcardMatch;
using switchsim::compiler::kNoFields;

NfEffects SummarizeNf(const nf::NfConfig& config) {
  NfEffects effects;
  const auto nf = nf::MakeNf(config.type);
  const auto key = nf->KeySpec();
  for (const auto& rule : config.rules) {
    // Match-key reads: only fields this rule concretely constrains — a
    // wildcarded key field cannot influence the lookup result (same
    // test the compiler's lift uses for IrSlot::reads). Rules with
    // fewer patterns than key fields are malformed and rejected at
    // install; treat the overlap defensively.
    const std::size_t fields = std::min(rule.matches.size(), key.size());
    for (std::size_t f = 0; f < fields; ++f) {
      if (!IsWildcardMatch(rule.matches[f], key[f].kind, key[f].field)) {
        effects.reads |= FieldBit(key[f].field);
      }
    }
    const auto traits = nf->TraitsOf(rule.action);
    effects.reads |= traits.reads;
    effects.writes |= traits.writes;
    effects.may_drop = effects.may_drop || traits.may_drop;
    effects.stateful = effects.stateful || traits.stateful;
  }
  return effects;
}

bool Independent(const NfEffects& a, const NfEffects& b, MergeReject* why) {
  if ((a.writes & b.reads) != kNoFields || (b.writes & a.reads) != kNoFields ||
      (a.writes & b.writes) != kNoFields) {
    if (why != nullptr) *why = MergeReject::kFieldConflict;
    return false;
  }
  // A stateful NF reordered before a dropper would charge its state
  // (e.g. token buckets) for packets the dropper kills, diverging
  // future verdicts. Two stateless droppers commute: the drop set is
  // the union either way and the reason is kNfAction in both orders.
  if ((a.may_drop && b.stateful) || (b.may_drop && a.stateful)) {
    if (why != nullptr) *why = MergeReject::kDropGate;
    return false;
  }
  if (why != nullptr) *why = MergeReject::kNone;
  return true;
}

std::vector<std::vector<std::size_t>> BuildPrecedence(
    const std::vector<NfEffects>& effects, std::vector<std::uint64_t>* rejects) {
  std::vector<std::vector<std::size_t>> preds(effects.size());
  for (std::size_t j = 0; j < effects.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      MergeReject why = MergeReject::kNone;
      if (!Independent(effects[i], effects[j], &why)) {
        preds[j].push_back(i);
        if (rejects != nullptr) ++(*rejects)[static_cast<std::size_t>(why)];
      }
    }
  }
  return preds;
}

std::vector<bool> SuccessorFree(const std::vector<std::vector<std::size_t>>& preds) {
  std::vector<bool> free(preds.size(), true);
  for (const auto& list : preds) {
    for (const std::size_t i : list) free[i] = false;
  }
  return free;
}

std::vector<int> MergeRuns(const std::vector<nf::NfConfig>& chain,
                           std::vector<std::uint64_t>* rejects) {
  std::vector<int> run_of(chain.size(), 0);
  if (chain.empty()) return run_of;

  std::vector<NfEffects> effects;
  effects.reserve(chain.size());
  for (const auto& config : chain) effects.push_back(SummarizeNf(config));

  int run = 0;
  std::size_t run_begin = 0;
  for (std::size_t j = 1; j < chain.size(); ++j) {
    MergeReject first_reject = MergeReject::kNone;
    bool joins = true;
    for (std::size_t m = run_begin; m < j; ++m) {
      MergeReject why = MergeReject::kNone;
      if (!Independent(effects[m], effects[j], &why)) {
        joins = false;
        if (first_reject == MergeReject::kNone) first_reject = why;
        break;
      }
    }
    if (!joins) {
      if (rejects != nullptr) {
        ++(*rejects)[static_cast<std::size_t>(first_reject)];
      }
      ++run;
      run_begin = j;
    }
    run_of[j] = run;
  }
  return run_of;
}

}  // namespace sfp::dataplane
