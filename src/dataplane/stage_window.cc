#include "dataplane/stage_window.h"

#include "common/check.h"

namespace sfp::dataplane {

std::pair<std::uint64_t, std::uint64_t> StageWindowLedger::Commit(
    TenantId tenant, std::vector<Claim> claims) {
  SFP_CHECK_MSG(!claims_.contains(tenant), "ledger: tenant already committed");
  std::uint64_t opened = 0;
  std::uint64_t joined = 0;
  for (const Claim& claim : claims) {
    const WindowKey key{claim.pass, claim.stage};
    auto it = windows_.find(key);
    if (it == windows_.end()) {
      ++opened;
      it = windows_.emplace(key, Window{}).first;
    } else if (it->second.claims > 0) {
      ++joined;
    }
    ++it->second.claims;
    it->second.entries += claim.entries;
  }
  claims_.emplace(tenant, std::move(claims));
  return {opened, joined};
}

void StageWindowLedger::Release(TenantId tenant) {
  const auto it = claims_.find(tenant);
  if (it == claims_.end()) return;
  for (const Claim& claim : it->second) {
    const auto wit = windows_.find(WindowKey{claim.pass, claim.stage});
    SFP_CHECK_MSG(wit != windows_.end(), "ledger: releasing an unknown window");
    --wit->second.claims;
    wit->second.entries -= claim.entries;
    if (wit->second.claims == 0) windows_.erase(wit);
  }
  claims_.erase(it);
}

bool StageWindowLedger::WindowOpenExcluding(int pass, int stage,
                                            TenantId exclude) const {
  const auto wit = windows_.find(WindowKey{pass, stage});
  if (wit == windows_.end()) return false;
  const auto cit = claims_.find(exclude);
  if (cit == claims_.end()) return true;
  std::int64_t own = 0;
  for (const Claim& claim : cit->second) {
    if (claim.pass == pass && claim.stage == stage) ++own;
  }
  return wit->second.claims > own;
}

std::map<const switchsim::MatchActionTable*, std::int64_t>
StageWindowLedger::TenantFootprint(TenantId tenant) const {
  std::map<const switchsim::MatchActionTable*, std::int64_t> footprint;
  const auto it = claims_.find(tenant);
  if (it == claims_.end()) return footprint;
  for (const Claim& claim : it->second) footprint[claim.table] += claim.entries;
  return footprint;
}

std::int64_t StageWindowLedger::TenantEntries(TenantId tenant) const {
  std::int64_t total = 0;
  const auto it = claims_.find(tenant);
  if (it == claims_.end()) return 0;
  for (const Claim& claim : it->second) total += claim.entries;
  return total;
}

std::int64_t StageWindowLedger::TotalEntries() const {
  std::int64_t total = 0;
  for (const auto& [key, window] : windows_) total += window.entries;
  return total;
}

}  // namespace sfp::dataplane
