#include "dataplane/data_plane.h"

#include <algorithm>
#include <map>
#include <tuple>

#include "common/check.h"
#include "common/faultinject.h"
#include "common/logging.h"
#include "dataplane/nf_deps.h"
#include "switchsim/compiler/plan_cache.h"

namespace sfp::dataplane {

using switchsim::ActionArgs;
using switchsim::ActionId;
using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

const char* AllocCodeName(AllocCode code) {
  switch (code) {
    case AllocCode::kOk:
      return "ok";
    case AllocCode::kEmptyChain:
      return "empty-chain";
    case AllocCode::kAlreadyAllocated:
      return "already-allocated";
    case AllocCode::kNoPlacement:
      return "no-placement";
    case AllocCode::kInstallFault:
      return "install-fault";
  }
  return "unknown";
}

DataPlane::DataPlane(switchsim::SwitchConfig config) : pipeline_(config) {}

DataPlane::PhysicalNfSlot* DataPlane::FindSlot(int stage, nf::NfType type) {
  for (auto& slot : slots_) {
    if (slot.stage == stage && slot.type == type) return &slot;
  }
  return nullptr;
}

const DataPlane::PhysicalNfSlot* DataPlane::FindSlot(int stage, nf::NfType type) const {
  for (const auto& slot : slots_) {
    if (slot.stage == stage && slot.type == type) return &slot;
  }
  return nullptr;
}

bool DataPlane::InstallPhysicalNf(int stage, nf::NfType type) {
  SFP_CHECK_GE(stage, 0);
  SFP_CHECK_LT(stage, pipeline_.num_stages());
  if (FindSlot(stage, type) != nullptr) return false;

  auto nf = nf::MakeNf(type);
  // Physical key = [tenant, pass] prefix + the NF's own key (§IV).
  std::vector<MatchFieldSpec> key = {{FieldId::kTenantId, MatchKind::kExact},
                                     {FieldId::kPass, MatchKind::kExact}};
  for (const auto& field : nf->KeySpec()) key.push_back(field);

  const std::string table_name =
      std::string(nf::NfShortName(type)) + "_s" + std::to_string(stage);
  auto* table = pipeline_.stage(stage).AddTable(table_name, std::move(key));
  if (table == nullptr) return false;  // stage out of blocks

  nf->BindActions(*table);
  PhysicalNfSlot slot;
  slot.type = type;
  slot.stage = stage;
  slot.table = table;
  // The "No-Ops" default rule of §IV, plus its REC twin for folding.
  nf::RegisterWithRecVariant(*table, "noop",
                             [](net::Packet&, switchsim::PacketMeta&, const ActionArgs&) {});
  for (std::size_t i = 0; i < table->action_names().size(); ++i) {
    slot.actions[table->action_names()[i]] = static_cast<ActionId>(i);
  }
  slot.noop = slot.actions.at("noop");
  table->SetDefaultAction(slot.noop);
  slot.nf = std::move(nf);
  slots_.push_back(std::move(slot));
  // A new physical table changes the lifted program shape for everyone:
  // rebuild the compiler's action metadata (which also drops every
  // cached plan).
  if (pipeline_.compiler_enabled()) EnableCompiledPlans();
  return true;
}

void DataPlane::EnableCompiledPlans() {
  switchsim::compiler::ActionMetadata metadata;
  for (const auto& slot : slots_) {
    const auto& names = slot.table->action_names();
    std::vector<switchsim::compiler::ActionTraits> traits;
    traits.reserve(names.size());
    for (const std::string& name : names) {
      const bool rec = name.size() > 4 && name.ends_with("_rec");
      const std::string base = rec ? name.substr(0, name.size() - 4) : name;
      switchsim::compiler::ActionTraits t = base == "noop"
                                                ? switchsim::compiler::ActionTraits::Noop()
                                                : slot.nf->TraitsOf(base);
      if (rec) t.recirculate = true;
      traits.push_back(t);
    }
    metadata.tables.emplace(slot.table, std::move(traits));
  }
  pipeline_.EnableCompiler(std::move(metadata));
}

void DataPlane::InvalidatePlan(TenantId tenant) {
  if (auto* cache = pipeline_.plan_cache()) cache->Invalidate(tenant);
}

bool DataPlane::HasPhysicalNf(int stage, nf::NfType type) const {
  return FindSlot(stage, type) != nullptr;
}

nf::NetworkFunction* DataPlane::PhysicalNf(int stage, nf::NfType type) {
  auto* slot = FindSlot(stage, type);
  return slot != nullptr ? slot->nf.get() : nullptr;
}

bool DataPlane::PlanSequential(const Sfc& sfc, int pass_limit,
                               std::vector<PlanStep>& plan) {
  plan.clear();
  // Prospective extra entries per table, so capacity checks account for
  // earlier NFs of this same SFC landing in the same table.
  std::map<const switchsim::MatchActionTable*, std::int64_t> pending;

  int pass = 0;
  int cursor = 0;  // next candidate stage within the current pass
  for (std::size_t j = 0; j < sfc.chain.size(); ++j) {
    const auto& logical = sfc.chain[j];
    // Rules + one catch-all No-Op entry per logical NF.
    const std::int64_t entries = static_cast<std::int64_t>(logical.rules.size()) + 1;
    PhysicalNfSlot* chosen = nullptr;
    while (chosen == nullptr) {
      for (int k = cursor; k < pipeline_.num_stages(); ++k) {
        auto* slot = FindSlot(k, logical.type);
        if (slot == nullptr) continue;
        const std::int64_t already = pending[slot->table];
        if (!pipeline_.stage(k).CanAddEntries(*slot->table, already + entries)) continue;
        chosen = slot;
        cursor = k + 1;
        break;
      }
      if (chosen != nullptr) break;
      // Fold into the next pass (§IV: "the SFC is folded and gets into
      // the pipeline in the next pass").
      ++pass;
      cursor = 0;
      if (pass >= pass_limit) return false;
    }
    pending[chosen->table] += entries;
    plan.push_back({chosen, NfPlacement{chosen->stage, pass}, false});
  }
  return true;
}

bool DataPlane::PlanPacked(const Sfc& sfc, int pass_limit, std::vector<PlanStep>& plan,
                           std::vector<std::uint64_t>& rejects) {
  const std::size_t n = sfc.chain.size();
  plan.assign(n, PlanStep{});

  // Precedence edges: a conflicting pair (i before j in the chain)
  // must also execute in that order on the switch — either pass(i) <
  // pass(j), or the same pass with stage(i) < stage(j), which is
  // exactly the §IV same-pass semantics. An independent pair carries
  // no edge at all: either side may run first, even in an earlier
  // pass. Runs of mutually independent NFs (MergeRuns) are the
  // edge-free special case and collapse into one pass here.
  std::vector<NfEffects> effects;
  effects.reserve(n);
  for (const auto& logical : sfc.chain) effects.push_back(SummarizeNf(logical));
  const auto preds = BuildPrecedence(effects, &rejects);

  // Greedy list scheduling in chain order: each NF takes the earliest
  // (pass, stage) that (a) hosts its type with table capacity left,
  // (b) is not already claimed by this chain in that pass (two logical
  // NFs in one table would merge their (tenant, pass) rule sets), and
  // (c) executes after every conflicting predecessor.
  std::map<const switchsim::MatchActionTable*, std::int64_t> pending;
  std::vector<std::vector<const switchsim::MatchActionTable*>> claimed(
      static_cast<std::size_t>(pass_limit));
  for (std::size_t j = 0; j < n; ++j) {
    const auto& logical = sfc.chain[j];
    const std::int64_t entries = static_cast<std::int64_t>(logical.rules.size()) + 1;
    PhysicalNfSlot* chosen = nullptr;
    int chosen_pass = 0;
    for (int p = 0; p < pass_limit && chosen == nullptr; ++p) {
      // Stage floor within pass p from the precedence edges; a
      // predecessor scheduled after pass p rules the pass out.
      int floor = 0;
      bool feasible = true;
      for (const std::size_t i : preds[j]) {
        if (plan[i].placement.pass > p) {
          feasible = false;
          break;
        }
        if (plan[i].placement.pass == p) {
          floor = std::max(floor, plan[i].placement.stage + 1);
        }
      }
      if (!feasible) continue;
      const auto& used = claimed[static_cast<std::size_t>(p)];
      for (int k = floor; k < pipeline_.num_stages(); ++k) {
        auto* slot = FindSlot(k, logical.type);
        if (slot == nullptr) continue;
        if (std::find(used.begin(), used.end(), slot->table) != used.end()) continue;
        const std::int64_t already = pending[slot->table];
        if (!pipeline_.stage(k).CanAddEntries(*slot->table, already + entries)) continue;
        chosen = slot;
        chosen_pass = p;
        break;
      }
    }
    if (chosen == nullptr) return false;  // no pass within the budget fits
    pending[chosen->table] += entries;
    claimed[static_cast<std::size_t>(chosen_pass)].push_back(chosen->table);
    plan[j] = PlanStep{chosen, NfPlacement{chosen->stage, chosen_pass}, false};
  }
  return true;
}

bool DataPlane::PlanCoScheduled(const Sfc& sfc, int pass_limit,
                                std::vector<PlanStep>& plan,
                                std::optional<TenantId> replan_tenant) {
  const std::size_t n = sfc.chain.size();
  plan.assign(n, PlanStep{});

  std::vector<NfEffects> effects;
  effects.reserve(n);
  for (const auto& logical : sfc.chain) effects.push_back(SummarizeNf(logical));
  const auto preds = BuildPrecedence(effects);
  const auto successor_free = SuccessorFree(preds);

  // Compaction probes plan as if the tenant had already departed: its
  // installed entries are discounted from every capacity check and its
  // own claims don't count as open windows.
  std::map<const switchsim::MatchActionTable*, std::int64_t> pending;
  if (replan_tenant.has_value()) {
    for (const auto& [table, entries] : xt_ledger_.TenantFootprint(*replan_tenant)) {
      pending[table] = -entries;
    }
  }
  auto window_open = [this, &replan_tenant](int pass, int stage) {
    return replan_tenant.has_value()
               ? xt_ledger_.WindowOpenExcluding(pass, stage, *replan_tenant)
               : xt_ledger_.WindowOpen(pass, stage);
  };

  std::vector<std::vector<const switchsim::MatchActionTable*>> claimed(
      static_cast<std::size_t>(pass_limit));
  int max_pass = -1;  // highest pass index placed so far (-1: none)

  // Stage floor for NF j within pass p under the already-placed
  // precedence edges; false when a predecessor lands after pass p.
  auto pass_floor = [&](std::size_t j, int p, int& floor) {
    floor = 0;
    for (const std::size_t i : preds[j]) {
      if (plan[i].placement.pass > p) return false;
      if (plan[i].placement.pass == p) {
        floor = std::max(floor, plan[i].placement.stage + 1);
      }
    }
    return true;
  };

  auto commit = [&](std::size_t j, PhysicalNfSlot* slot, int p, std::int64_t entries) {
    pending[slot->table] += entries;
    claimed[static_cast<std::size_t>(p)].push_back(slot->table);
    plan[j] = PlanStep{slot, NfPlacement{slot->stage, p}, false};
    max_pass = std::max(max_pass, p);
  };

  // Phase 1: NFs some later NF depends on take the earliest feasible
  // (pass, stage), exactly like PlanPacked. Every predecessor of any
  // NF carries a successor by definition, so this prefix is closed
  // under the precedence relation: phase-2 NFs find all their
  // predecessors already placed.
  for (std::size_t j = 0; j < n; ++j) {
    if (successor_free[j]) continue;
    const auto& logical = sfc.chain[j];
    const std::int64_t entries = static_cast<std::int64_t>(logical.rules.size()) + 1;
    PhysicalNfSlot* chosen = nullptr;
    for (int p = 0; p < pass_limit && chosen == nullptr; ++p) {
      int floor = 0;
      if (!pass_floor(j, p, floor)) continue;
      const auto& used = claimed[static_cast<std::size_t>(p)];
      for (int k = floor; k < pipeline_.num_stages(); ++k) {
        auto* slot = FindSlot(k, logical.type);
        if (slot == nullptr) continue;
        if (std::find(used.begin(), used.end(), slot->table) != used.end()) continue;
        const std::int64_t already = pending[slot->table];
        if (!pipeline_.stage(k).CanAddEntries(*slot->table, already + entries)) continue;
        chosen = slot;
        commit(j, slot, p, entries);
        break;
      }
    }
    if (chosen == nullptr) return false;
  }

  // Phase 2: successor-free NFs — nothing downstream constrains where
  // they run, so pick the feasible slot minimizing (extra passes over
  // the plan so far, latest stage, window not already open for another
  // tenant, pass index). Preferring *late* stages keeps scarce
  // early-stage table capacity for order-constrained chains — the
  // lever behind the aggregate pass savings — and among equal stages
  // the open-window bit lines this tenant's claims up with windows the
  // population already holds, so departures compact instead of
  // fragmenting. Extra passes dominate the score, so the per-tenant
  // plan never grows a pass just to steer late or join a window.
  for (std::size_t j = 0; j < n; ++j) {
    if (!successor_free[j]) continue;
    const auto& logical = sfc.chain[j];
    const std::int64_t entries = static_cast<std::int64_t>(logical.rules.size()) + 1;
    PhysicalNfSlot* best = nullptr;
    int best_pass = 0;
    std::tuple<int, int, int, int> best_score{};
    for (int p = 0; p < pass_limit; ++p) {
      int floor = 0;
      if (!pass_floor(j, p, floor)) continue;
      const auto& used = claimed[static_cast<std::size_t>(p)];
      for (int k = floor; k < pipeline_.num_stages(); ++k) {
        auto* slot = FindSlot(k, logical.type);
        if (slot == nullptr) continue;
        if (std::find(used.begin(), used.end(), slot->table) != used.end()) continue;
        const std::int64_t already = pending[slot->table];
        if (!pipeline_.stage(k).CanAddEntries(*slot->table, already + entries)) continue;
        const int extra = p > max_pass ? p - max_pass : 0;
        const std::tuple<int, int, int, int> score{
            extra, -k, window_open(p, k) ? 0 : 1, p};
        if (best == nullptr || score < best_score) {
          best = slot;
          best_pass = p;
          best_score = score;
        }
      }
    }
    if (best == nullptr) return false;
    commit(j, best, best_pass, entries);
  }
  return true;
}

int DataPlane::AssignRecMarks(std::vector<PlanStep>& plan) const {
  // Execution order within a pass is (stage, table position within the
  // stage) — the interpreter walks stages in order and each stage's
  // tables in creation order. The last-executed step of every
  // non-final pass carries REC so the packet recirculates into the
  // next pass.
  auto exec_key = [this](const PlanStep& step) {
    const auto& tables = pipeline_.stage(step.placement.stage).tables();
    int table_pos = 0;
    for (std::size_t t = 0; t < tables.size(); ++t) {
      if (tables[t].get() == step.slot->table) {
        table_pos = static_cast<int>(t);
        break;
      }
    }
    return std::pair<int, int>(step.placement.stage, table_pos);
  };

  int total_passes = 0;
  for (const PlanStep& step : plan) {
    total_passes = std::max(total_passes, step.placement.pass + 1);
  }
  std::vector<std::size_t> last(static_cast<std::size_t>(total_passes));
  std::vector<bool> seen(static_cast<std::size_t>(total_passes), false);
  for (std::size_t j = 0; j < plan.size(); ++j) {
    const auto p = static_cast<std::size_t>(plan[j].placement.pass);
    if (!seen[p] || exec_key(plan[last[p]]) < exec_key(plan[j])) {
      last[p] = j;
      seen[p] = true;
    }
    plan[j].rec = false;
  }
  for (int p = 0; p + 1 < total_passes; ++p) {
    plan[last[static_cast<std::size_t>(p)]].rec = true;
  }
  return total_passes;
}

AllocationResult DataPlane::AllocateSfc(const Sfc& sfc, std::optional<int> max_passes) {
  AllocationResult result;
  const int pass_limit = max_passes.value_or(pipeline_.config().max_passes);

  if (sfc.chain.empty()) {
    result.code = AllocCode::kEmptyChain;
    result.error = "empty chain";
    return result;
  }
  if (allocations_.contains(sfc.tenant)) {
    result.code = AllocCode::kAlreadyAllocated;
    result.error = "tenant already allocated";
    return result;
  }

  // ---- plan (pure): match logical NFs to physical slots --------------
  std::vector<PlanStep> plan;
  std::vector<PlanStep> sequential;
  const bool sequential_ok = PlanSequential(sfc, pass_limit, sequential);
  const int sequential_passes = sequential_ok ? AssignRecMarks(sequential) : 0;

  switchsim::Pipeline::PassPackingStats stats;
  const bool xt = pipeline_.config().cross_tenant_packing;
  // Cross-tenant co-scheduling implies dependency-aware planning: the
  // packed per-tenant plan is the reference the co-scheduled plan must
  // never be worse than.
  const bool dependency_aware = pipeline_.config().nf_parallelism || xt;
  bool use_packed = false;
  bool use_xt = false;
  int total_passes = sequential_passes;
  if (dependency_aware) {
    std::vector<std::uint64_t> rejects(3, 0);
    std::vector<PlanStep> packed;
    const bool packed_ok = PlanPacked(sfc, pass_limit, packed, rejects);
    const int packed_passes = packed_ok ? AssignRecMarks(packed) : 0;
    stats.reject_field_conflict =
        rejects[static_cast<std::size_t>(MergeReject::kFieldConflict)];
    stats.reject_drop_gate = rejects[static_cast<std::size_t>(MergeReject::kDropGate)];
    // Never-worse fallback: keep the sequential reference layout when
    // greedy packing needs at least as many passes (or failed).
    use_packed = packed_ok && (!sequential_ok || packed_passes < sequential_passes);
    if (sequential_ok && packed_ok && packed_passes >= sequential_passes) {
      stats.fallback_sequential = 1;
    }
    if (use_packed) {
      plan = std::move(packed);
      total_passes = packed_passes;
    }
  }
  if (xt) {
    // Co-schedule against the fabric-wide stage-window ledger. The
    // per-tenant never-worse guard compares against the reference the
    // PR-9 selection just made: the co-scheduled plan is installed
    // only when it needs no more passes (it may also succeed where the
    // per-tenant planners failed, extending admissibility).
    std::vector<PlanStep> co;
    const bool co_ok = PlanCoScheduled(sfc, pass_limit, co);
    const int co_passes = co_ok ? AssignRecMarks(co) : 0;
    const bool have_reference = use_packed || sequential_ok;
    const int reference_passes = use_packed ? total_passes : sequential_passes;
    use_xt = co_ok && (!have_reference || co_passes <= reference_passes);
    if (use_xt) {
      plan = std::move(co);
      total_passes = co_passes;
    } else if (have_reference) {
      stats.xt_fallback = 1;
    }
  }
  if (!use_packed && !use_xt) {
    if (!sequential_ok) {
      result.code = AllocCode::kNoPlacement;
      result.error = "cannot place the chain within the recirculation budget";
      return result;
    }
    plan = std::move(sequential);
  }
  stats.sequential = static_cast<std::uint64_t>(sequential_passes);
  stats.packed = static_cast<std::uint64_t>(total_passes);
  stats.xt_allocations = use_xt ? 1 : 0;

  // ---- install: copy rules with the (tenant, pass) prefix ------------
  // A rule install can fail transiently under fault injection
  // ("dataplane.install_rule" here, "switchsim.table.add_entry" inside
  // the table). On failure every entry installed so far is unwound so
  // the data plane is left exactly as before the call.
  // Unwind sweeps every physical table, but tables holding none of
  // this tenant's rules are a no-op remove and keep their lookup epoch,
  // so in-flight workers' memoized decisions for other tenants stay
  // valid (flow_cache.h invalidation contract).
  auto unwind_install = [this, &sfc, &result](const char* where) {
    for (auto& slot : slots_) slot.table->RemoveTenantEntries(sfc.tenant);
    InvalidatePlan(sfc.tenant);
    result.placements.clear();
    result.code = AllocCode::kInstallFault;
    result.error = std::string("transient rule-install failure (") + where + ")";
  };

  for (std::size_t j = 0; j < plan.size(); ++j) {
    const auto& step = plan[j];
    const auto& logical = sfc.chain[j];
    // AssignRecMarks flagged the execution-order-last step of every
    // non-final pass.
    const bool rec = step.rec;

    for (const auto& rule : logical.rules) {
      const std::string action_name = rec ? rule.action + "_rec" : rule.action;
      const auto it = step.slot->actions.find(action_name);
      SFP_CHECK_MSG(it != step.slot->actions.end(), "unknown NF action in rule");
      std::vector<FieldMatch> matches = {FieldMatch::Exact(sfc.tenant),
                                         FieldMatch::Exact(
                                             static_cast<std::uint64_t>(step.placement.pass))};
      for (const auto& m : rule.matches) matches.push_back(m);
      if (SFP_FAULT("dataplane.install_rule") ||
          step.slot->table->AddEntry(std::move(matches), it->second, rule.args,
                                     rule.priority,
                                     sfc.tenant) == switchsim::kInvalidEntryHandle) {
        unwind_install(nf::NfFullName(logical.type));
        return result;
      }
    }
    // Tenant catch-all: No-Op (or recirculating No-Op) at the lowest
    // priority so configured rules always win.
    const ActionId catch_all =
        rec ? step.slot->actions.at("noop_rec") : step.slot->noop;
    std::vector<FieldMatch> matches = {FieldMatch::Exact(sfc.tenant),
                                       FieldMatch::Exact(
                                           static_cast<std::uint64_t>(step.placement.pass))};
    for (std::size_t f = 0; f < step.slot->nf->KeySpec().size(); ++f) {
      matches.push_back(FieldMatch::Any());
    }
    if (SFP_FAULT("dataplane.install_rule") ||
        step.slot->table->AddEntry(std::move(matches), catch_all, {}, /*priority=*/-1000,
                                   sfc.tenant) == switchsim::kInvalidEntryHandle) {
      unwind_install("catch-all");
      return result;
    }
    result.placements.push_back(step.placement);
  }

  result.ok = true;
  result.passes = total_passes;
  result.sequential_passes = sequential_passes;
  if (xt) {
    // Book the installed placements in the shared ledger (one claim
    // per logical NF) — also for non-co-scheduled installs, so the
    // ledger mirrors the pipeline's whole occupancy and later tenants
    // see every open window.
    std::vector<StageWindowLedger::Claim> claims;
    claims.reserve(plan.size());
    for (std::size_t j = 0; j < plan.size(); ++j) {
      claims.push_back({plan[j].placement.pass, plan[j].placement.stage,
                        plan[j].slot->table,
                        static_cast<std::int64_t>(sfc.chain[j].rules.size()) + 1});
    }
    const auto [opened, joined] = xt_ledger_.Commit(sfc.tenant, std::move(claims));
    stats.xt_windows_opened = opened;
    stats.xt_windows_joined = joined;
    retained_[sfc.tenant] = sfc;
  }
  if (dependency_aware) pipeline_.RecordPassPacking(stats);
  allocations_[sfc.tenant] = result;
  // The tenant's rules just changed under any previously compiled plan
  // (re-admission after departure); the per-packet epoch check would
  // catch it, but invalidating here keeps the serve path fast.
  InvalidatePlan(sfc.tenant);
  SFP_LOG_DEBUG << "allocated tenant " << sfc.tenant << " over " << total_passes
                << " pass(es)";
  return result;
}

std::size_t DataPlane::DeallocateSfc(TenantId tenant) {
  std::size_t removed = 0;
  // Each per-table removal bumps that table's lookup epoch (only where
  // rules were actually removed), which invalidates exactly the flow
  // decision caches that could name the departed tenant's entries; the
  // serve path may keep running concurrently throughout.
  for (auto& slot : slots_) removed += slot.table->RemoveTenantEntries(tenant);
  allocations_.erase(tenant);
  // No-ops unless cross_tenant_packing booked the tenant at admit.
  xt_ledger_.Release(tenant);
  retained_.erase(tenant);
  InvalidatePlan(tenant);
  return removed;
}

std::vector<DataPlane::CompactionCandidate> DataPlane::PlanCompaction() {
  std::vector<CompactionCandidate> candidates;
  if (!pipeline_.config().cross_tenant_packing) return candidates;
  const int pass_limit = pipeline_.config().max_passes;
  for (const auto& [tenant, allocation] : allocations_) {
    if (allocation.passes <= 1) continue;  // already optimal
    const auto it = retained_.find(tenant);
    if (it == retained_.end()) continue;
    std::vector<PlanStep> probe;
    if (!PlanCoScheduled(it->second, pass_limit, probe, tenant)) continue;
    const int replanned = AssignRecMarks(probe);
    if (replanned < allocation.passes) {
      candidates.push_back({tenant, allocation.passes, replanned});
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const CompactionCandidate& a, const CompactionCandidate& b) {
              const int sa = a.current_passes - a.replanned_passes;
              const int sb = b.current_passes - b.replanned_passes;
              if (sa != sb) return sa > sb;
              return a.tenant < b.tenant;
            });
  return candidates;
}

std::vector<std::string> DataPlane::AuditXtLedger() const {
  std::vector<std::string> issues;
  if (!pipeline_.config().cross_tenant_packing) return issues;
  for (const auto& [tenant, allocation] : allocations_) {
    if (!xt_ledger_.HasTenant(tenant)) {
      issues.push_back("tenant " + std::to_string(tenant) +
                       " allocated but missing from the ledger");
    }
  }
  for (const auto& [tenant, claims] : xt_ledger_.claims()) {
    if (!allocations_.contains(tenant)) {
      issues.push_back("tenant " + std::to_string(tenant) +
                       " in the ledger but not allocated");
      continue;
    }
    const auto it = retained_.find(tenant);
    if (it == retained_.end()) {
      issues.push_back("tenant " + std::to_string(tenant) + " has no retained SFC");
      continue;
    }
    std::int64_t expected = 0;
    for (const auto& logical : it->second.chain) {
      expected += static_cast<std::int64_t>(logical.rules.size()) + 1;
    }
    if (xt_ledger_.TenantEntries(tenant) != expected) {
      issues.push_back("tenant " + std::to_string(tenant) + " books " +
                       std::to_string(xt_ledger_.TenantEntries(tenant)) +
                       " ledger entries, chain expects " + std::to_string(expected));
    }
  }
  // Window aggregates must equal the per-tenant claims that formed them.
  std::map<StageWindowLedger::WindowKey, StageWindowLedger::Window> recomputed;
  for (const auto& [tenant, claims] : xt_ledger_.claims()) {
    for (const auto& claim : claims) {
      auto& window = recomputed[{claim.pass, claim.stage}];
      ++window.claims;
      window.entries += claim.entries;
    }
  }
  if (recomputed.size() != xt_ledger_.windows().size()) {
    issues.push_back("window count diverges from the committed claims");
  } else {
    for (const auto& [key, window] : xt_ledger_.windows()) {
      const auto it = recomputed.find(key);
      if (it == recomputed.end() || it->second.claims != window.claims ||
          it->second.entries != window.entries) {
        issues.push_back("window (pass " + std::to_string(key.first) + ", stage " +
                         std::to_string(key.second) + ") occupancy diverges");
      }
    }
  }
  // And the ledger total must equal the rules actually installed.
  if (xt_ledger_.TotalEntries() != pipeline_.TotalEntriesUsed()) {
    issues.push_back("ledger books " + std::to_string(xt_ledger_.TotalEntries()) +
                     " entries, pipeline holds " +
                     std::to_string(pipeline_.TotalEntriesUsed()));
  }
  return issues;
}

DataPlane::BatchResult DataPlane::ApplyAtomic(const std::vector<UpdateOp>& ops) {
  BatchResult result;
  std::vector<int> completed;  // indices of ops applied so far

  auto undo = [this, &ops, &completed, &result]() {
    for (auto it = completed.rbegin(); it != completed.rend(); ++it) {
      const UpdateOp& op = ops[static_cast<std::size_t>(*it)];
      if (op.kind == UpdateOp::Kind::kAdmit) {
        DeallocateSfc(op.sfc.tenant);
        continue;
      }
      // The SFC fit before the batch and all later ops are already
      // undone, so re-allocation into the restored resources succeeds
      // (possibly at a different feasible placement) — unless a second
      // fault hits the restore itself. Transient install faults are
      // retried a bounded number of times; a persistent failure is
      // reported as a consistency divergence rather than aborting.
      AllocationResult restored;
      for (int attempt = 0; attempt < 3; ++attempt) {
        restored = AllocateSfc(op.sfc);
        if (restored.ok || !restored.transient()) break;
      }
      if (!restored.ok) {
        SFP_LOG_ERROR << "atomic-update rollback failed to restore tenant "
                      << op.sfc.tenant << ": " << restored.error;
        result.consistency = BatchResult::Consistency::kDiverged;
        result.lost_tenants.push_back(op.sfc.tenant);
      }
    }
  };

  for (std::size_t i = 0; i < ops.size(); ++i) {
    const UpdateOp& op = ops[i];
    if (SFP_FAULT("dataplane.apply_op")) {
      undo();
      result.failed_op = static_cast<int>(i);
      result.error = "injected fault before op";
      return result;
    }
    if (op.kind == UpdateOp::Kind::kAdmit) {
      const auto allocation = AllocateSfc(op.sfc);
      if (!allocation.ok) {
        undo();
        result.failed_op = static_cast<int>(i);
        result.error = allocation.error;
        return result;
      }
    } else {
      if (!allocations_.contains(op.sfc.tenant)) {
        undo();
        result.failed_op = static_cast<int>(i);
        result.error = "tenant not allocated";
        return result;
      }
      DeallocateSfc(op.sfc.tenant);
    }
    completed.push_back(static_cast<int>(i));
  }
  result.ok = true;
  return result;
}

std::vector<std::vector<nf::NfType>> DataPlane::PhysicalLayout() const {
  std::vector<std::vector<nf::NfType>> layout(
      static_cast<std::size_t>(pipeline_.num_stages()));
  for (const auto& slot : slots_) {
    layout[static_cast<std::size_t>(slot.stage)].push_back(slot.type);
  }
  return layout;
}

}  // namespace sfp::dataplane
