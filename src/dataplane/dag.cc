#include "dataplane/dag.h"

#include <algorithm>
#include <numeric>

namespace sfp::dataplane {

bool IsValidDag(const SfcDag& dag) {
  const int n = static_cast<int>(dag.nodes.size());
  for (const auto& node : dag.nodes) {
    for (const int successor : node.successors) {
      if (successor < 0 || successor >= n) return false;
    }
  }
  // Kahn's algorithm: all nodes must drain.
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const auto& node : dag.nodes) {
    for (const int successor : node.successors) ++indegree[static_cast<std::size_t>(successor)];
  }
  std::vector<int> frontier;
  for (int v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
  }
  int drained = 0;
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    ++drained;
    for (const int successor : dag.nodes[static_cast<std::size_t>(v)].successors) {
      if (--indegree[static_cast<std::size_t>(successor)] == 0) frontier.push_back(successor);
    }
  }
  return drained == n;
}

std::vector<int> TopologicalDepths(const SfcDag& dag) {
  if (!IsValidDag(dag)) return {};
  const int n = static_cast<int>(dag.nodes.size());
  std::vector<int> depth(static_cast<std::size_t>(n), 0);
  std::vector<int> indegree(static_cast<std::size_t>(n), 0);
  for (const auto& node : dag.nodes) {
    for (const int successor : node.successors) ++indegree[static_cast<std::size_t>(successor)];
  }
  std::vector<int> frontier;
  for (int v = 0; v < n; ++v) {
    if (indegree[static_cast<std::size_t>(v)] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const int v = frontier.back();
    frontier.pop_back();
    for (const int successor : dag.nodes[static_cast<std::size_t>(v)].successors) {
      depth[static_cast<std::size_t>(successor)] =
          std::max(depth[static_cast<std::size_t>(successor)],
                   depth[static_cast<std::size_t>(v)] + 1);
      if (--indegree[static_cast<std::size_t>(successor)] == 0) frontier.push_back(successor);
    }
  }
  return depth;
}

std::optional<Sfc> FlattenDag(const SfcDag& dag) {
  const auto depths = TopologicalDepths(dag);
  if (depths.empty() && !dag.nodes.empty()) return std::nullopt;

  std::vector<int> order(dag.nodes.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&depths](int a, int b) {
    return depths[static_cast<std::size_t>(a)] < depths[static_cast<std::size_t>(b)];
  });

  Sfc sfc;
  sfc.tenant = dag.tenant;
  sfc.bandwidth_gbps = dag.bandwidth_gbps;
  for (const int v : order) sfc.chain.push_back(dag.nodes[static_cast<std::size_t>(v)].nf);
  return sfc;
}

}  // namespace sfp::dataplane
