// Software-SFC server model (the DPDK baseline of §VI-B).
//
// Substitutes the paper's testbed servers (Xeon Gold 5120T @ 2.2 GHz,
// 100G ConnectX-5). A chain of NFs runs on `worker_cores` DPDK lcores;
// each packet costs a per-NF cycle budget plus fixed NIC/PCIe overhead.
// Throughput is packet-rate bound: the cores sustain
//   pps_capacity = worker_cores * clock / cycles_per_packet,
// and the achieved rate for frame size B is
//   min(offered, line_rate, pps_capacity * B * 8).
//
// Calibration against the paper's measured points (documented in
// EXPERIMENTS.md): (a) average processing latency ~= 1151 ns for the
// 4-NF chain; (b) 100 Gbps reached only at ~1500 B frames; (c) >= 10x
// packet-rate deficit vs the switch at 64 B; (d) ~722 MB memory and
// 17/56 cores in use.
#pragma once

#include <vector>

#include "net/packet.h"

namespace sfp::serversim {

/// Static server parameters (defaults = the paper's testbed).
struct ServerConfig {
  double clock_ghz = 2.2;
  int total_cores = 56;  // 4 sockets x 14... reported pool size
  /// Cores running SFC workers. The paper uses 16 cores for
  /// client+SFC+receiver plus 1 DPDK master (17/56 = 30.35% CPU);
  /// 10 of those drive the chain in this calibration, which puts the
  /// 100 Gbps saturation point at ~1450 B frames as Fig. 4 shows.
  int worker_cores = 10;
  int master_cores = 1;
  /// Fixed per-packet I/O cost: NIC DMA + PCIe + mempool handling.
  double io_overhead_cycles = 600;
  /// Resident memory per NF instance (MB); DPDK hugepages + tables
  /// (4 NFs x 180.5 MB = the paper's 722 MB).
  double memory_per_nf_mb = 180.5;
  double line_rate_gbps = 100.0;
};

/// One software NF in the chain: cycles charged per packet.
struct SoftwareNf {
  const char* name = "nf";
  double cycles_per_packet = 700;
};

/// The standard 4-NF chain of §VI-B (firewall, LB, classifier, router)
/// with per-NF costs calibrated so the whole chain processes one packet
/// in ~1151 ns on one core (including I/O overhead).
std::vector<SoftwareNf> DefaultChain();

/// Analytic + per-packet software SFC model.
class ServerSfc {
 public:
  ServerSfc(ServerConfig config, std::vector<SoftwareNf> chain);

  /// Per-packet processing latency (ns): I/O + sum of NF costs. The
  /// latency is load-independent in this model (no queueing), matching
  /// the paper's unloaded latency microbenchmark.
  double PacketLatencyNs() const;

  /// Sustainable packet rate (packets/second) across worker cores.
  double PpsCapacity() const;

  /// Achieved throughput in Gbps for `frame_bytes` frames at
  /// `offered_gbps` offered load.
  double ThroughputGbps(int frame_bytes, double offered_gbps) const;

  /// Smallest frame size at which the chain sustains `target_gbps`.
  int SaturatingFrameBytes(double target_gbps) const;

  /// Total resident memory (MB) of the SFC processes.
  double MemoryMb() const;

  /// Fraction of the server's cores consumed (workers + master).
  double CpuUtilization() const;

  const ServerConfig& config() const { return config_; }
  const std::vector<SoftwareNf>& chain() const { return chain_; }

 private:
  ServerConfig config_;
  std::vector<SoftwareNf> chain_;
  double chain_cycles_ = 0.0;
};

}  // namespace sfp::serversim
