// Functional software SFC executor.
//
// Runs a tenant's NF chain the way a server-based NFV platform would:
// one match-action table per NF, applied strictly in chain order, with
// none of the switch's stage/memory/recirculation machinery. This is
// the behavioural ground truth for the data plane: SFP's claim is that
// offloading an SFC to the switch is *transparent*, so for any chain
// and any packet the switch pipeline must produce the same packet
// transformations and drop decisions as this executor (differential
// test: `tests/differential_test.cc`).
#pragma once

#include <memory>
#include <vector>

#include "dataplane/sfc.h"
#include "switchsim/table.h"

namespace sfp::serversim {

/// A software instance of one tenant's chain.
class SoftChain {
 public:
  /// Builds per-NF tables from the chain's configs. NFs needing
  /// instance state (LB pools, rate-limiter buckets) own it internally;
  /// use `nf_instance` to reach them before sending traffic.
  explicit SoftChain(const dataplane::Sfc& sfc);

  /// Applies the whole chain to one packet; returns the resulting
  /// metadata (dropped, flow class, egress, rewrites applied in place
  /// on the returned packet).
  struct Result {
    net::Packet packet;
    switchsim::PacketMeta meta;
  };
  Result Process(const net::Packet& packet) const;

  /// The NF instance backing chain position `j` (for pools/buckets).
  nf::NetworkFunction* nf_instance(int j) { return nfs_[static_cast<std::size_t>(j)].get(); }

  int Length() const { return static_cast<int>(tables_.size()); }

 private:
  std::vector<std::unique_ptr<nf::NetworkFunction>> nfs_;
  std::vector<std::unique_ptr<switchsim::MatchActionTable>> tables_;
};

}  // namespace sfp::serversim
