#include "serversim/soft_chain.h"

#include "common/check.h"

namespace sfp::serversim {

SoftChain::SoftChain(const dataplane::Sfc& sfc) {
  for (const auto& config : sfc.chain) {
    auto nf = nf::MakeNf(config.type);
    auto table = std::make_unique<switchsim::MatchActionTable>(
        nf::NfShortName(config.type), nf->KeySpec());
    nf->BindActions(*table);
    // Software chains forward on miss like the switch's No-Op default.
    const auto noop = table->RegisterAction(
        "noop", [](net::Packet&, switchsim::PacketMeta&, const switchsim::ActionArgs&) {});
    table->SetDefaultAction(noop);

    for (const auto& rule : config.rules) {
      // Resolve the action by name (no REC variants in software).
      switchsim::ActionId action = -1;
      for (std::size_t a = 0; a < table->action_names().size(); ++a) {
        if (table->action_names()[a] == rule.action) {
          action = static_cast<switchsim::ActionId>(a);
          break;
        }
      }
      SFP_CHECK_MSG(action >= 0, "unknown NF action in software chain");
      table->AddEntry(rule.matches, action, rule.args, rule.priority);
    }
    nfs_.push_back(std::move(nf));
    tables_.push_back(std::move(table));
  }
}

SoftChain::Result SoftChain::Process(const net::Packet& packet) const {
  Result result;
  result.packet = packet;
  result.meta.tenant_id = packet.TenantId();
  for (const auto& table : tables_) {
    table->Apply(result.packet, result.meta);
    if (result.meta.dropped) break;
  }
  return result;
}

}  // namespace sfp::serversim
