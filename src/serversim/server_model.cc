#include "serversim/server_model.h"

#include <algorithm>

#include "common/check.h"
#include "common/units.h"

namespace sfp::serversim {

std::vector<SoftwareNf> DefaultChain() {
  // Per-NF cycle budgets calibrated so that io_overhead (600) + chain
  // (1932) = 2532 cycles = ~1151 ns at 2.2 GHz — the paper's measured
  // DPDK chain latency (Fig. 5).
  return {
      {"firewall", 420},
      {"load_balancer", 560},
      {"classifier", 380},
      {"router", 572},
  };
}

ServerSfc::ServerSfc(ServerConfig config, std::vector<SoftwareNf> chain)
    : config_(config), chain_(std::move(chain)) {
  SFP_CHECK_GT(config_.clock_ghz, 0.0);
  SFP_CHECK_GT(config_.worker_cores, 0);
  for (const auto& nf : chain_) chain_cycles_ += nf.cycles_per_packet;
}

double ServerSfc::PacketLatencyNs() const {
  return CyclesToNanos(config_.io_overhead_cycles + chain_cycles_, config_.clock_ghz);
}

double ServerSfc::PpsCapacity() const {
  const double cycles = config_.io_overhead_cycles + chain_cycles_;
  return config_.worker_cores * config_.clock_ghz * 1e9 / cycles;
}

double ServerSfc::ThroughputGbps(int frame_bytes, double offered_gbps) const {
  SFP_CHECK_GT(frame_bytes, 0);
  const double cpu_bound_gbps = PpsToGbps(PpsCapacity(), frame_bytes);
  return std::min({offered_gbps, config_.line_rate_gbps, cpu_bound_gbps});
}

int ServerSfc::SaturatingFrameBytes(double target_gbps) const {
  const double pps = PpsCapacity();
  // Smallest B with pps * B * 8 >= target.
  return static_cast<int>(target_gbps * 1e9 / (pps * kBitsPerByte)) + 1;
}

double ServerSfc::MemoryMb() const {
  return static_cast<double>(chain_.size()) * config_.memory_per_nf_mb;
}

double ServerSfc::CpuUtilization() const {
  return static_cast<double>(config_.worker_cores + config_.master_cores +
                             /*client + receiver side-cores*/ 6) /
         config_.total_cores;
}

}  // namespace sfp::serversim
