// SfpSystem — the top-level SFP facade (the paper's full system).
//
// Wires the control plane and the data plane together:
//
//   1. `ProvisionPhysical` runs the §V placement over an expected
//      workload (or an explicit layout) and pre-installs the physical
//      NFs on the switch pipeline — the boot-time step of §IV. The
//      solver path degrades gracefully (LP+rounding → greedy →
//      static layout → structured error; see ProvisionReport).
//   2. `AdmitTenant` / `RemoveTenant` manage logical SFCs at runtime
//      (§V-E): admission copies tenant rules onto the shared physical
//      NFs with (tenant, pass) match prefixes and REC recirculation
//      marks, retrying transient install faults with bounded backoff;
//      departure releases rules, memory and backplane bandwidth and
//      applies the telemetry retention policy.
//   3. `Process` serves tenant packets through the virtualized
//      pipeline; `ProcessBatch` serves whole batches flow-sharded
//      across a worker pool (DESIGN.md, "Batched execution").
//
// Admission enforces the backplane-capacity constraint (eq. 26):
// a tenant whose folded chain would push sum(passes x T) past the chip
// capacity is rejected even when switch memory would suffice.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "controlplane/admission_lp.h"
#include "controlplane/approx_solver.h"
#include "dataplane/data_plane.h"
#include "dataplane/telemetry.h"

namespace sfp::core {

/// Failure class of an admission attempt, so callers (and the chaos
/// harness) can branch without string matching.
enum class AdmitCode : std::uint8_t {
  kOk = 0,
  /// The tenant already holds an admitted SFC.
  kAlreadyAdmitted,
  /// No feasible placement (shape/memory/recirculation budget) —
  /// deterministic; retrying the same SFC cannot help.
  kAllocationFailed,
  /// eq. 26: admitting would push sum(passes x T) past the backplane.
  kBackplaneExceeded,
  /// Transient rule-install faults persisted through every retry.
  kInstallFault,
};

const char* AdmitCodeName(AdmitCode code);

/// Result of an admission attempt.
struct AdmitResult {
  bool admitted = false;
  AdmitCode code = AdmitCode::kOk;
  std::string reason;           // set when rejected (for humans)
  int passes = 0;               // R_l + 1 when admitted
  double backplane_gbps = 0.0;  // capacity charged (passes * T)
  int attempts = 0;             // allocation attempts (>1 = retried faults)
};

/// Retry policy for transient install faults during admission.
struct AdmitOptions {
  /// Total allocation attempts (1 = no retry).
  int max_attempts = 3;
  /// Sleep before the first retry; doubles each further retry. Zero
  /// disables sleeping (tests / chaos harness).
  std::chrono::microseconds initial_backoff{50};
};

/// Failure class of a re-provision attempt (the recovery loop's repair
/// primitive; see docs/SCENARIOS.md).
enum class ReprovisionCode : std::uint8_t {
  kOk = 0,
  /// Every attempt failed but each batch rolled back consistently: if
  /// the tenant was allocated before, it still serves its chain.
  kFault,
  /// A rollback double-fault lost the tenant's rules (its admission is
  /// released; a later re-provision may re-admit it from scratch).
  kDiverged,
  /// The re-allocated chain's passes would push eq. 26 past the
  /// backplane; the tenant was deallocated and its admission released.
  kBackplaneExceeded,
};

const char* ReprovisionCodeName(ReprovisionCode code);

/// Result of a re-provision attempt.
struct ReprovisionResult {
  bool ok = false;
  ReprovisionCode code = ReprovisionCode::kOk;
  std::string reason;  // set when !ok
  int passes = 0;      // R_l + 1 when ok
  int attempts = 0;    // batch attempts (>1 = retried faults)
};

/// Which solver ultimately produced the physical layout.
enum class ProvisionPath : std::uint8_t {
  /// §V-B LP relaxation + randomized rounding (the intended path).
  kApprox = 0,
  /// Algorithm 2 greedy — used when the approx solver fails or blows
  /// its deadline.
  kGreedy,
  /// Static one-NF-of-each-type round-robin layout — last resort.
  kStatic,
  /// Even the static layout installed nothing.
  kFailed,
};

const char* ProvisionPathName(ProvisionPath path);

/// Outcome of the boot-time provisioning degradation chain.
struct ProvisionReport {
  bool ok = false;
  ProvisionPath path = ProvisionPath::kFailed;
  int installed = 0;
  std::string error;  // set when !ok
  /// The approx solver hit its deadline (wall clock or injected).
  bool solver_deadline_exceeded = false;
};

/// System-wide counters.
struct SfpStats {
  int tenants = 0;
  double offered_gbps = 0.0;    // sum of admitted T_l
  double backplane_gbps = 0.0;  // sum of admitted passes * T_l
  int blocks_used = 0;
  std::int64_t entries_used = 0;
};

/// The SFP system.
class SfpSystem {
 public:
  explicit SfpSystem(switchsim::SwitchConfig config = {});

  /// Boot-time physical provisioning from an expected workload: solves
  /// the §V placement (LP + rounding) on the abstract instance derived
  /// from `expected` and installs the chosen physical NFs, degrading to
  /// the greedy solver and then a static layout when a solver fails or
  /// exhausts its deadline. Returns the number of physical NFs
  /// installed.
  int ProvisionPhysical(const std::vector<dataplane::Sfc>& expected,
                        const controlplane::ApproxOptions& options = {});

  /// Same degradation chain with the full report (which path won, what
  /// failed). Prefer this in robustness-aware callers.
  ProvisionReport ProvisionPhysicalWithReport(
      const std::vector<dataplane::Sfc>& expected,
      const controlplane::ApproxOptions& options = {});

  /// Installs an explicit physical layout: one NF of each listed type
  /// per stage. Returns the number installed.
  int ProvisionPhysical(const std::vector<std::vector<nf::NfType>>& layout);

  /// Turns on the per-tenant pipeline compiler (docs/COMPILER.md) for
  /// the batched serve path and warm-compiles every already-admitted
  /// tenant; tenants admitted afterwards are warm-compiled as part of
  /// AdmitTenant, so their first served batch already runs compiled.
  /// Results and counters are bit-identical to the interpreted path.
  void EnableCompiledPlans();
  bool compiled_plans_enabled() const { return data_plane_.compiled_plans_enabled(); }

  /// Switches the eq. 26 admission check onto the incremental
  /// admission LP (controlplane/admission_lp.h): the running ledger
  /// becomes a persistent LP whose basis warm-restarts across
  /// arrivals/departures via dual-simplex repair, so steady-state
  /// admit cost stays proportional to the perturbation as the tenant
  /// population grows. Decisions are equivalent to the legacy
  /// sum-over-admissions check (both accept iff used + passes*T fits
  /// the backplane). Already-admitted tenants are seeded in. `warm` =
  /// false keeps the LP but cold-starts every solve (A/B baseline).
  /// Off by default; when off, admission behaves exactly as before.
  void EnableIncrementalAdmission(bool warm = true);
  bool incremental_admission_enabled() const { return admission_lp_ != nullptr; }

  /// Admits a tenant SFC (§IV allocation + eq. 26 admission control).
  /// Transient install faults are retried per `options`; the result
  /// carries the structured reject code.
  AdmitResult AdmitTenant(const dataplane::Sfc& sfc, const AdmitOptions& options = {});

  /// Removes a tenant, releases its resources, and applies the
  /// telemetry retention policy to its series. Returns false if the
  /// tenant is unknown. With SwitchConfig::cross_tenant_packing the
  /// departure also runs window compaction: remaining multi-pass
  /// tenants whose chains now re-plan into fewer passes (the departed
  /// tenant's windows freed capacity) are moved through the §V-E
  /// atomic-update path, biggest saving first, bounded per departure.
  /// A compaction move only ever *reduces* a tenant's pass count — and
  /// with it its eq. 26 backplane charge — and never touches its
  /// telemetry series.
  bool RemoveTenant(dataplane::TenantId tenant);

  /// Re-provisions a tenant through the §V-E atomic-update path: one
  /// ApplyAtomic batch removes the current allocation (when present)
  /// and re-admits `sfc` — the authoritative desired chain. All-or-
  /// nothing: a failed batch rolls back, leaving a previously
  /// allocated tenant still serving (kFault); only a rollback
  /// double-fault loses it (kDiverged, admission released). On success
  /// the eq. 26 charge is re-checked against the re-allocated pass
  /// count and the admission record updated. Works on tenants whose
  /// rules were already lost (IsAllocated false ⇒ admit-only batch),
  /// whether or not their admission record survived. Never touches the
  /// telemetry series — a recovered tenant keeps its history. Fault
  /// point "core.reprovision" fails an attempt before the batch runs.
  ReprovisionResult ReprovisionTenant(const dataplane::Sfc& sfc,
                                      const AdmitOptions& options = {});

  /// Serves one packet through the shared pipeline and records
  /// per-tenant telemetry.
  switchsim::ProcessResult Process(const net::Packet& packet) {
    const std::uint32_t wire = packet.WireBytes();
    auto result = data_plane_.Process(packet);
    telemetry_.Record(wire, result);
    return result;
  }

  /// Batched serve path: processes the whole batch through the
  /// flow-sharded worker pool, with telemetry accounting fused into
  /// the batch workers (each worker batch-records its own shard into
  /// the sharded collector). Counters are bit-identical to a scalar
  /// Process loop — the collector sums latencies in fixed-point, so
  /// worker interleaving cannot change any total. Concurrent
  /// AdmitTenant/RemoveTenant from another thread is safe; traffic
  /// itself must come from one thread at a time (or via this batch
  /// API, which parallelizes internally). A caller-provided
  /// options.result_sink still runs, after telemetry, on each worker.
  std::vector<switchsim::ProcessResult> ProcessBatch(
      std::span<const net::Packet> packets, const switchsim::BatchOptions& options = {});

  /// ProcessBatch into a caller-reused result buffer: same semantics
  /// (including the fused telemetry sinks), but the steady-state serve
  /// loop does no per-batch allocation — every result field is
  /// rewritten, so the buffer needs no re-zeroing between batches.
  void ProcessBatchInto(std::span<const net::Packet> packets,
                        std::span<switchsim::ProcessResult> results,
                        const switchsim::BatchOptions& options = {});

  /// Snapshots pipeline counters, per-tenant telemetry, and the
  /// admission/reject taxonomy into `registry` (names documented in
  /// docs/METRICS.md).
  void ExportMetrics(common::metrics::Registry& registry) const;

  SfpStats Stats() const;

  /// Per-tenant packet/byte/drop/latency counters.
  const dataplane::TelemetryCollector& Telemetry() const { return telemetry_; }
  dataplane::TelemetryCollector& Telemetry() { return telemetry_; }

  dataplane::DataPlane& data_plane() { return data_plane_; }
  const dataplane::DataPlane& data_plane() const { return data_plane_; }

  /// Converts a concrete SFC into the abstract control-plane form
  /// (type index = NfType, F_jl = rule count).
  static controlplane::SfcSpec ToSpec(const dataplane::Sfc& sfc);

 private:
  /// Files one AdmitTenant wall-clock sample (control_mutex_ held).
  void RecordAdmitLatency(bool timed, std::chrono::steady_clock::time_point started);

  /// ReprovisionTenant body; control_mutex_ must be held.
  ReprovisionResult ReprovisionTenantLocked(const dataplane::Sfc& sfc,
                                            const AdmitOptions& options);

  /// Departure-time window compaction (control_mutex_ held): applies
  /// DataPlane::PlanCompaction candidates through ReprovisionTenantLocked
  /// until no candidate improves, a move stops paying off, or the
  /// per-departure move bound is hit. Cross_tenant_packing only.
  void CompactAfterDeparture();

  dataplane::DataPlane data_plane_;
  /// tenant -> (bandwidth, passes) of admitted SFCs.
  struct Admission {
    double bandwidth_gbps;
    int passes;
  };
  std::map<dataplane::TenantId, Admission> admissions_;
  /// Incremental admission LP (EnableIncrementalAdmission); null = the
  /// legacy sum-over-admissions eq. 26 check. Guarded by control_mutex_.
  std::unique_ptr<controlplane::IncrementalAdmissionLp> admission_lp_;
  /// AdmitTenant wall-clock accounting (only measured while the
  /// admission LP is enabled; exported as system.admit.latency.*).
  /// Guarded by control_mutex_.
  std::uint64_t admit_latency_count_ = 0;
  std::uint64_t admit_latency_total_ns_ = 0;
  std::uint64_t admit_latency_max_ns_ = 0;
  dataplane::TelemetryCollector telemetry_;
  /// Admission outcome taxonomy (exported as system.admit.*).
  common::metrics::RelaxedCounter admits_ok_;
  common::metrics::RelaxedCounter rejects_already_;
  common::metrics::RelaxedCounter rejects_alloc_;
  common::metrics::RelaxedCounter rejects_backplane_;
  common::metrics::RelaxedCounter rejects_install_;
  common::metrics::RelaxedCounter install_retries_;
  /// Serializes control-plane mutations (AdmitTenant/RemoveTenant/
  /// Stats) against each other, so they can run concurrently with the
  /// serve path. Held by pointer to keep SfpSystem movable.
  std::unique_ptr<std::mutex> control_mutex_ = std::make_unique<std::mutex>();
};

}  // namespace sfp::core
