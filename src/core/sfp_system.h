// SfpSystem — the top-level SFP facade (the paper's full system).
//
// Wires the control plane and the data plane together:
//
//   1. `ProvisionPhysical` runs the §V placement over an expected
//      workload (or an explicit layout) and pre-installs the physical
//      NFs on the switch pipeline — the boot-time step of §IV.
//   2. `AdmitTenant` / `RemoveTenant` manage logical SFCs at runtime
//      (§V-E): admission copies tenant rules onto the shared physical
//      NFs with (tenant, pass) match prefixes and REC recirculation
//      marks; departure releases rules, memory and backplane bandwidth.
//   3. `Process` serves tenant packets through the virtualized
//      pipeline; `ProcessBatch` serves whole batches flow-sharded
//      across a worker pool (DESIGN.md, "Batched execution").
//
// Admission enforces the backplane-capacity constraint (eq. 26):
// a tenant whose folded chain would push sum(passes x T) past the chip
// capacity is rejected even when switch memory would suffice.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/metrics.h"
#include "controlplane/approx_solver.h"
#include "dataplane/data_plane.h"
#include "dataplane/telemetry.h"

namespace sfp::core {

/// Result of an admission attempt.
struct AdmitResult {
  bool admitted = false;
  std::string reason;           // set when rejected
  int passes = 0;               // R_l + 1 when admitted
  double backplane_gbps = 0.0;  // capacity charged (passes * T)
};

/// System-wide counters.
struct SfpStats {
  int tenants = 0;
  double offered_gbps = 0.0;    // sum of admitted T_l
  double backplane_gbps = 0.0;  // sum of admitted passes * T_l
  int blocks_used = 0;
  std::int64_t entries_used = 0;
};

/// The SFP system.
class SfpSystem {
 public:
  explicit SfpSystem(switchsim::SwitchConfig config = {});

  /// Boot-time physical provisioning from an expected workload: solves
  /// the §V placement (LP + rounding) on the abstract instance derived
  /// from `expected` and installs the chosen physical NFs. Returns the
  /// number of physical NFs installed.
  int ProvisionPhysical(const std::vector<dataplane::Sfc>& expected,
                        const controlplane::ApproxOptions& options = {});

  /// Installs an explicit physical layout: one NF of each listed type
  /// per stage. Returns the number installed.
  int ProvisionPhysical(const std::vector<std::vector<nf::NfType>>& layout);

  /// Admits a tenant SFC (§IV allocation + eq. 26 admission control).
  AdmitResult AdmitTenant(const dataplane::Sfc& sfc);

  /// Removes a tenant and releases its resources. Returns false if the
  /// tenant is unknown.
  bool RemoveTenant(dataplane::TenantId tenant);

  /// Serves one packet through the shared pipeline and records
  /// per-tenant telemetry.
  switchsim::ProcessResult Process(const net::Packet& packet) {
    const std::uint32_t wire = packet.WireBytes();
    auto result = data_plane_.Process(packet);
    telemetry_.Record(wire, result);
    return result;
  }

  /// Batched serve path: processes the whole batch through the
  /// flow-sharded worker pool, then records telemetry in input order on
  /// the calling thread, so telemetry is identical to a scalar Process
  /// loop. Concurrent AdmitTenant/RemoveTenant from another thread is
  /// safe; traffic itself must come from one thread at a time (or via
  /// this batch API, which parallelizes internally).
  std::vector<switchsim::ProcessResult> ProcessBatch(
      std::span<const net::Packet> packets, const switchsim::BatchOptions& options = {});

  /// Snapshots pipeline counters and per-tenant telemetry into
  /// `registry` (names documented in docs/METRICS.md).
  void ExportMetrics(common::metrics::Registry& registry) const;

  SfpStats Stats() const;

  /// Per-tenant packet/byte/drop/latency counters.
  const dataplane::TelemetryCollector& Telemetry() const { return telemetry_; }
  dataplane::TelemetryCollector& Telemetry() { return telemetry_; }

  dataplane::DataPlane& data_plane() { return data_plane_; }
  const dataplane::DataPlane& data_plane() const { return data_plane_; }

  /// Converts a concrete SFC into the abstract control-plane form
  /// (type index = NfType, F_jl = rule count).
  static controlplane::SfcSpec ToSpec(const dataplane::Sfc& sfc);

 private:
  dataplane::DataPlane data_plane_;
  /// tenant -> (bandwidth, passes) of admitted SFCs.
  struct Admission {
    double bandwidth_gbps;
    int passes;
  };
  std::map<dataplane::TenantId, Admission> admissions_;
  dataplane::TelemetryCollector telemetry_;
  /// Serializes control-plane mutations (AdmitTenant/RemoveTenant/
  /// Stats) against each other, so they can run concurrently with the
  /// serve path. Held by pointer to keep SfpSystem movable.
  std::unique_ptr<std::mutex> control_mutex_ = std::make_unique<std::mutex>();
};

}  // namespace sfp::core
