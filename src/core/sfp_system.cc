#include "core/sfp_system.h"

#include <algorithm>
#include <cmath>
#include <thread>

#include "common/faultinject.h"
#include "common/logging.h"
#include "controlplane/greedy_solver.h"
#include "switchsim/compiler/plan_cache.h"

namespace sfp::core {

const char* AdmitCodeName(AdmitCode code) {
  switch (code) {
    case AdmitCode::kOk:
      return "ok";
    case AdmitCode::kAlreadyAdmitted:
      return "already-admitted";
    case AdmitCode::kAllocationFailed:
      return "allocation-failed";
    case AdmitCode::kBackplaneExceeded:
      return "backplane-exceeded";
    case AdmitCode::kInstallFault:
      return "install-fault";
  }
  return "unknown";
}

const char* ReprovisionCodeName(ReprovisionCode code) {
  switch (code) {
    case ReprovisionCode::kOk:
      return "ok";
    case ReprovisionCode::kFault:
      return "fault";
    case ReprovisionCode::kDiverged:
      return "diverged";
    case ReprovisionCode::kBackplaneExceeded:
      return "backplane-exceeded";
  }
  return "unknown";
}

const char* ProvisionPathName(ProvisionPath path) {
  switch (path) {
    case ProvisionPath::kApprox:
      return "approx";
    case ProvisionPath::kGreedy:
      return "greedy";
    case ProvisionPath::kStatic:
      return "static";
    case ProvisionPath::kFailed:
      return "failed";
  }
  return "unknown";
}

SfpSystem::SfpSystem(switchsim::SwitchConfig config) : data_plane_(config) {}

void SfpSystem::RecordAdmitLatency(bool timed,
                                   std::chrono::steady_clock::time_point started) {
  if (!timed) return;
  const auto elapsed = std::chrono::steady_clock::now() - started;
  const auto ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed).count());
  ++admit_latency_count_;
  admit_latency_total_ns_ += ns;
  admit_latency_max_ns_ = std::max(admit_latency_max_ns_, ns);
}

controlplane::SfcSpec SfpSystem::ToSpec(const dataplane::Sfc& sfc) {
  controlplane::SfcSpec spec;
  spec.bandwidth_gbps = sfc.bandwidth_gbps;
  for (const auto& nf : sfc.chain) {
    spec.boxes.push_back({static_cast<int>(nf.type),
                          static_cast<std::int64_t>(nf.rules.size()) + 1});  // +catch-all
  }
  return spec;
}

namespace {

/// Installs the solver's physical layout onto the data plane.
int InstallSolution(dataplane::DataPlane& data_plane,
                    const controlplane::PlacementInstance& instance,
                    const controlplane::PlacementSolution& solution) {
  int installed = 0;
  for (int i = 0; i < instance.num_types; ++i) {
    for (int s = 0; s < instance.sw.stages; ++s) {
      if (!solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]) {
        continue;
      }
      if (data_plane.InstallPhysicalNf(s, static_cast<nf::NfType>(i))) ++installed;
    }
  }
  return installed;
}

}  // namespace

int SfpSystem::ProvisionPhysical(const std::vector<dataplane::Sfc>& expected,
                                 const controlplane::ApproxOptions& options) {
  return ProvisionPhysicalWithReport(expected, options).installed;
}

ProvisionReport SfpSystem::ProvisionPhysicalWithReport(
    const std::vector<dataplane::Sfc>& expected,
    const controlplane::ApproxOptions& options) {
  ProvisionReport report;

  controlplane::PlacementInstance instance;
  const auto& config = data_plane_.pipeline().config();
  instance.sw.stages = config.num_stages;
  instance.sw.blocks_per_stage = config.blocks_per_stage;
  instance.sw.entries_per_block = config.entries_per_block;
  instance.sw.capacity_gbps = config.backplane_gbps;
  instance.num_types = nf::kNumNfTypes;
  for (const auto& sfc : expected) instance.sfcs.push_back(ToSpec(sfc));

  // Tier 1: LP relaxation + randomized rounding (§V-B).
  const auto approx = controlplane::SolveApprox(instance, options);
  report.solver_deadline_exceeded = approx.deadline_exceeded;
  if (approx.ok) {
    report.installed = InstallSolution(data_plane_, instance, approx.solution);
    if (report.installed > 0) {
      report.ok = true;
      report.path = ProvisionPath::kApprox;
      SFP_LOG_INFO << "provisioned " << report.installed << " physical NFs (approx)";
      return report;
    }
  }
  SFP_LOG_WARN << "approx provisioning "
               << (approx.deadline_exceeded ? "exhausted its deadline" : "failed")
               << " without a usable placement; degrading to greedy";

  // Tier 2: Algorithm 2 greedy over the same instance.
  controlplane::GreedyOptions greedy_options;
  greedy_options.max_passes = options.model.max_passes;
  greedy_options.memory_model = options.model.memory_model;
  const auto greedy = controlplane::SolveGreedy(instance, greedy_options);
  report.installed = InstallSolution(data_plane_, instance, greedy.solution);
  if (report.installed > 0) {
    report.ok = true;
    report.path = ProvisionPath::kGreedy;
    SFP_LOG_INFO << "provisioned " << report.installed << " physical NFs (greedy fallback)";
    return report;
  }
  SFP_LOG_WARN << "greedy provisioning placed nothing; degrading to the static layout";

  // Tier 3: one NF of each type, round-robin over stages — always
  // serves single-NF chains even when no solver produced a placement.
  for (int i = 0; i < nf::kNumNfTypes; ++i) {
    if (data_plane_.InstallPhysicalNf(i % config.num_stages, static_cast<nf::NfType>(i))) {
      ++report.installed;
    }
  }
  if (report.installed > 0) {
    report.ok = true;
    report.path = ProvisionPath::kStatic;
    SFP_LOG_WARN << "provisioned " << report.installed << " physical NFs (static layout)";
    return report;
  }

  report.path = ProvisionPath::kFailed;
  report.error = "no provisioning path installed any physical NF (approx "
                 + std::string(approx.deadline_exceeded ? "deadline-exceeded" : "failed")
                 + ", greedy empty, static install rejected)";
  SFP_LOG_ERROR << report.error;
  return report;
}

int SfpSystem::ProvisionPhysical(const std::vector<std::vector<nf::NfType>>& layout) {
  int installed = 0;
  for (std::size_t stage = 0; stage < layout.size(); ++stage) {
    for (const nf::NfType type : layout[stage]) {
      if (data_plane_.InstallPhysicalNf(static_cast<int>(stage), type)) ++installed;
    }
  }
  return installed;
}

namespace {

/// Fuses telemetry recording into the batch workers via
/// BatchOptions::result_sink; wire sizes (pure arithmetic over header
/// presence, no locks) are computed in the sink too, so there is no
/// serial full-batch pre-pass on the caller thread at all.
switchsim::BatchOptions FuseTelemetry(dataplane::TelemetryCollector& telemetry,
                                      std::span<const net::Packet> packets,
                                      const switchsim::BatchOptions& options) {
  switchsim::BatchOptions fused = options;
  fused.result_sink = [&telemetry, packets, caller_sink = options.result_sink](
                          std::span<const std::uint32_t> indices,
                          std::span<const switchsim::ProcessResult> results) {
    telemetry.RecordBatch(indices, packets, results);
    if (caller_sink) caller_sink(indices, results);
  };
  return fused;
}

}  // namespace

std::vector<switchsim::ProcessResult> SfpSystem::ProcessBatch(
    std::span<const net::Packet> packets, const switchsim::BatchOptions& options) {
  return data_plane_.ProcessBatch(packets, FuseTelemetry(telemetry_, packets, options));
}

void SfpSystem::ProcessBatchInto(std::span<const net::Packet> packets,
                                 std::span<switchsim::ProcessResult> results,
                                 const switchsim::BatchOptions& options) {
  data_plane_.ProcessBatchInto(packets, results, FuseTelemetry(telemetry_, packets, options));
}

void SfpSystem::ExportMetrics(common::metrics::Registry& registry) const {
  data_plane_.pipeline().ExportMetrics(registry);
  // One all-shard locking pass for the whole collector instead of a
  // lock acquisition per tenant.
  const auto snapshot = telemetry_.TakeSnapshot();
  const auto& total = snapshot.total;
  registry.GetCounter("telemetry.total.packets").Set(total.packets);
  registry.GetCounter("telemetry.total.bytes").Set(total.bytes);
  registry.GetCounter("telemetry.total.drops").Set(total.drops);
  registry.GetCounter("telemetry.total.recirculated_packets")
      .Set(total.recirculated_packets);
  registry.GetCounter("telemetry.total.passes").Set(total.total_passes);
  // Latency sums are exported in the collector's exact fixed-point
  // units (1/4096 ns) so the bench-regression gate can compare them
  // bit-for-bit; total_latency_ns is fp/4096 and converts back
  // exactly.
  registry.GetCounter("telemetry.total.latency_fp")
      .Set(static_cast<std::uint64_t>(
          std::llround(total.total_latency_ns * dataplane::TelemetryCollector::kLatencyScale)));
  registry.GetCounter("telemetry.tenants").Set(snapshot.tenants.size());
  registry.GetCounter("telemetry.departed").Set(snapshot.departed);
  for (const auto& [tenant, counters] : snapshot.tenants) {
    const std::string prefix = "telemetry.tenant" + std::to_string(tenant) + ".";
    registry.GetCounter(prefix + "packets").Set(counters.packets);
    registry.GetCounter(prefix + "bytes").Set(counters.bytes);
    registry.GetCounter(prefix + "drops").Set(counters.drops);
    registry.GetCounter(prefix + "recirculated_packets").Set(counters.recirculated_packets);
    registry.GetCounter(prefix + "passes").Set(counters.total_passes);
  }
  registry.GetCounter("system.admit.admitted").Set(admits_ok_.Value());
  registry.GetCounter("system.admit.rejected.already_admitted").Set(rejects_already_.Value());
  registry.GetCounter("system.admit.rejected.allocation_failed").Set(rejects_alloc_.Value());
  registry.GetCounter("system.admit.rejected.backplane_exceeded")
      .Set(rejects_backplane_.Value());
  registry.GetCounter("system.admit.rejected.install_fault").Set(rejects_install_.Value());
  registry.GetCounter("system.admit.install_retries").Set(install_retries_.Value());
  {
    std::lock_guard<std::mutex> lock(*control_mutex_);
    registry.GetCounter("system.tenants").Set(admissions_.size());
    if (admission_lp_) {
      // solver.warm.* plus admit-latency accounting only exist on the
      // incremental-admission path, so legacy bench baselines keep
      // their exact counter sets.
      admission_lp_->ExportMetrics(registry);
      registry.GetCounter("system.admit.latency.count").Set(admit_latency_count_);
      registry.GetCounter("system.admit.latency.total_ns").Set(admit_latency_total_ns_);
      registry.GetCounter("system.admit.latency.max_ns").Set(admit_latency_max_ns_);
    }
  }
}

void SfpSystem::EnableIncrementalAdmission(bool warm) {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  // The data plane's AllocateSfc already enforces memory/placement
  // feasibility per arrival, so the system-level LP carries only the
  // shared eq. 26 backplane row; per-stage entry rows are exercised by
  // the controlplane-level churn workloads where footprints are
  // explicit.
  controlplane::AdmissionLpOptions options;
  options.backplane_gbps = data_plane_.pipeline().config().backplane_gbps;
  options.warm = warm;
  admission_lp_ = std::make_unique<controlplane::IncrementalAdmissionLp>(options);
  for (const auto& [tenant, admission] : admissions_) {
    controlplane::TenantFootprint footprint;
    footprint.bandwidth_gbps = admission.bandwidth_gbps;
    footprint.passes = admission.passes;
    admission_lp_->Commit(tenant, footprint);
  }
}

void SfpSystem::EnableCompiledPlans() {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  data_plane_.EnableCompiledPlans();
  auto* cache = data_plane_.pipeline().plan_cache();
  for (const auto& [tenant, admission] : admissions_) cache->Warm(tenant);
}

AdmitResult SfpSystem::AdmitTenant(const dataplane::Sfc& sfc, const AdmitOptions& options) {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  // Admission latency SLO accounting (only measured on the LP path so
  // the legacy path stays clock-free).
  const bool timed = admission_lp_ != nullptr;
  const auto started =
      timed ? std::chrono::steady_clock::now() : std::chrono::steady_clock::time_point{};
  AdmitResult result;
  if (admissions_.contains(sfc.tenant)) {
    result.code = AdmitCode::kAlreadyAdmitted;
    result.reason = "tenant already admitted";
    rejects_already_.Add();
    return result;
  }

  // §IV allocation onto the shared pipeline. Transient faults (rule
  // installs failing mid-allocation; AllocateSfc has already unwound
  // the partial install) are retried with exponential backoff;
  // deterministic rejections (no placement, empty chain) are not.
  const int max_attempts = std::max(1, options.max_attempts);
  dataplane::AllocationResult allocation;
  auto backoff = options.initial_backoff;
  for (result.attempts = 1; result.attempts <= max_attempts; ++result.attempts) {
    allocation = data_plane_.AllocateSfc(sfc);
    if (allocation.ok || !allocation.transient()) break;
    if (result.attempts == max_attempts) break;
    install_retries_.Add();
    SFP_LOG_WARN << "tenant " << sfc.tenant << " hit a transient install fault (attempt "
                 << result.attempts << "/" << max_attempts << "): " << allocation.error;
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
  }
  result.attempts = std::min(result.attempts, max_attempts);
  if (!allocation.ok) {
    result.code = allocation.transient() ? AdmitCode::kInstallFault
                                         : AdmitCode::kAllocationFailed;
    result.reason = allocation.error;
    (allocation.transient() ? rejects_install_ : rejects_alloc_).Add();
    return result;
  }

  // eq. 26 admission control: recirculated traffic competes with new
  // inbound traffic on the backplane. With the incremental LP enabled
  // the decision comes from a dual-simplex warm re-solve over the
  // persistent admission LP (O(perturbation)); otherwise the legacy
  // sum over all admissions decides (O(tenants)). Both accept iff
  // used + passes*T fits the backplane.
  const double charge = allocation.passes * sfc.bandwidth_gbps;
  bool accepted;
  if (admission_lp_) {
    controlplane::TenantFootprint footprint;
    footprint.bandwidth_gbps = sfc.bandwidth_gbps;
    footprint.passes = allocation.passes;
    if (footprint.bandwidth_gbps > 0.0) {
      accepted = admission_lp_->TryAdmit(sfc.tenant, footprint).admitted;
    } else {
      // Zero charge always fits (matches the legacy check); the LP's
      // decision rule needs a positive objective pull to be unique.
      admission_lp_->Commit(sfc.tenant, footprint);
      accepted = true;
    }
  } else {
    double used = 0.0;
    for (const auto& [tenant, admission] : admissions_) {
      used += admission.passes * admission.bandwidth_gbps;
    }
    accepted = used + charge <= data_plane_.pipeline().config().backplane_gbps + 1e-9;
  }
  if (!accepted) {
    data_plane_.DeallocateSfc(sfc.tenant);
    result.code = AdmitCode::kBackplaneExceeded;
    result.reason = "backplane capacity exceeded";
    rejects_backplane_.Add();
    RecordAdmitLatency(timed, started);
    return result;
  }

  admissions_[sfc.tenant] = {sfc.bandwidth_gbps, allocation.passes};
  result.admitted = true;
  result.code = AdmitCode::kOk;
  result.passes = allocation.passes;
  result.backplane_gbps = charge;
  admits_ok_.Add();
  // Warm compile so the tenant's first served batch runs the compiled
  // plan instead of paying a serve-path try-lock compile.
  if (auto* cache = data_plane_.pipeline().plan_cache()) cache->Warm(sfc.tenant);
  RecordAdmitLatency(timed, started);
  return result;
}

ReprovisionResult SfpSystem::ReprovisionTenant(const dataplane::Sfc& sfc,
                                               const AdmitOptions& options) {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  return ReprovisionTenantLocked(sfc, options);
}

ReprovisionResult SfpSystem::ReprovisionTenantLocked(const dataplane::Sfc& sfc,
                                                     const AdmitOptions& options) {
  ReprovisionResult result;

  using UpdateOp = dataplane::DataPlane::UpdateOp;
  using BatchResult = dataplane::DataPlane::BatchResult;
  const int max_attempts = std::max(1, options.max_attempts);
  auto backoff = options.initial_backoff;
  BatchResult batch;
  for (result.attempts = 1; result.attempts <= max_attempts; ++result.attempts) {
    // Rebuilt each attempt: a diverging earlier attempt can change
    // whether the tenant is still allocated.
    std::vector<UpdateOp> ops;
    if (data_plane_.IsAllocated(sfc.tenant)) {
      ops.push_back({UpdateOp::Kind::kRemove, sfc});
    }
    ops.push_back({UpdateOp::Kind::kAdmit, sfc});
    if (SFP_FAULT("core.reprovision")) {
      batch = BatchResult{};
      batch.error = "injected reprovision fault (core.reprovision)";
    } else {
      batch = data_plane_.ApplyAtomic(ops);
    }
    if (batch.ok ||
        batch.consistency == BatchResult::Consistency::kDiverged) {
      break;
    }
    if (result.attempts == max_attempts) break;
    install_retries_.Add();
    SFP_LOG_WARN << "tenant " << sfc.tenant << " re-provision attempt " << result.attempts
                 << "/" << max_attempts << " failed: " << batch.error;
    if (backoff.count() > 0) {
      std::this_thread::sleep_for(backoff);
      backoff *= 2;
    }
  }
  result.attempts = std::min(result.attempts, max_attempts);

  if (!batch.ok) {
    if (batch.consistency == BatchResult::Consistency::kDiverged) {
      // The rollback double-fault already stripped the tenant's rules;
      // release its backplane charge so the admission ledger matches
      // what the pipeline serves. Its telemetry series stays live (the
      // tenant has not departed — it is broken, and a later
      // re-provision can still repair it from scratch).
      admissions_.erase(sfc.tenant);
      if (admission_lp_) admission_lp_->Remove(sfc.tenant);
      result.code = ReprovisionCode::kDiverged;
    } else {
      result.code = ReprovisionCode::kFault;
    }
    result.reason = batch.error;
    return result;
  }

  const auto* allocation = data_plane_.FindAllocation(sfc.tenant);
  SFP_CHECK_MSG(allocation != nullptr, "successful re-provision batch left no allocation");
  result.passes = allocation->passes;

  // eq. 26 re-check: folding may land the re-allocated chain on a
  // different pass count, changing its backplane charge. With the LP
  // enabled the old charge is released and the new one re-offered as a
  // warm re-solve; otherwise the legacy sum decides.
  const double charge = result.passes * sfc.bandwidth_gbps;
  bool accepted;
  if (admission_lp_) {
    admission_lp_->Remove(sfc.tenant);  // no-op when not committed
    controlplane::TenantFootprint footprint;
    footprint.bandwidth_gbps = sfc.bandwidth_gbps;
    footprint.passes = result.passes;
    if (footprint.bandwidth_gbps > 0.0) {
      accepted = admission_lp_->TryAdmit(sfc.tenant, footprint).admitted;
    } else {
      admission_lp_->Commit(sfc.tenant, footprint);
      accepted = true;
    }
  } else {
    double used = 0.0;
    for (const auto& [tenant, admission] : admissions_) {
      if (tenant == sfc.tenant) continue;
      used += admission.passes * admission.bandwidth_gbps;
    }
    accepted = used + charge <= data_plane_.pipeline().config().backplane_gbps + 1e-9;
  }
  if (!accepted) {
    data_plane_.DeallocateSfc(sfc.tenant);
    admissions_.erase(sfc.tenant);
    result.code = ReprovisionCode::kBackplaneExceeded;
    result.reason = "backplane capacity exceeded after re-provision";
    return result;
  }

  admissions_[sfc.tenant] = {sfc.bandwidth_gbps, result.passes};
  result.ok = true;
  result.code = ReprovisionCode::kOk;
  if (auto* cache = data_plane_.pipeline().plan_cache()) cache->Warm(sfc.tenant);
  return result;
}

bool SfpSystem::RemoveTenant(dataplane::TenantId tenant) {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  if (!admissions_.contains(tenant)) return false;
  data_plane_.DeallocateSfc(tenant);
  admissions_.erase(tenant);
  if (admission_lp_) admission_lp_->Remove(tenant);
  telemetry_.MarkDeparted(tenant);
  if (data_plane_.pipeline().config().cross_tenant_packing) CompactAfterDeparture();
  return true;
}

void SfpSystem::CompactAfterDeparture() {
  // Bounded so a single departure cannot stall the control plane: at
  // most this many §V-E moves per departure. Each successful move
  // strictly reduces the population's aggregate pass count, so the
  // loop also terminates without the bound.
  constexpr int kMaxMovesPerDeparture = 8;
  for (int move = 0; move < kMaxMovesPerDeparture; ++move) {
    const auto candidates = data_plane_.PlanCompaction();
    if (candidates.empty()) return;
    const auto& best = candidates.front();
    const auto* sfc = data_plane_.RetainedSfc(best.tenant);
    if (sfc == nullptr) return;
    const auto before = best.current_passes;
    // No backoff: a transiently faulted move is simply skipped — the
    // next departure probes again. kDiverged inside the batch is
    // handled by ReprovisionTenantLocked (admission released); the
    // recovery loop repairs such tenants like any other structural
    // damage.
    AdmitOptions options;
    options.max_attempts = 1;
    const auto result = ReprovisionTenantLocked(*sfc, options);
    if (!result.ok) return;
    if (result.passes >= before) return;  // lateral move: stop compacting
    data_plane_.pipeline().RecordXtCompaction(
        static_cast<std::uint64_t>(before - result.passes));
    SFP_LOG_DEBUG << "compacted tenant " << best.tenant << " from " << before << " to "
                  << result.passes << " pass(es) after a departure";
  }
}

SfpStats SfpSystem::Stats() const {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  SfpStats stats;
  stats.tenants = static_cast<int>(admissions_.size());
  for (const auto& [tenant, admission] : admissions_) {
    stats.offered_gbps += admission.bandwidth_gbps;
    stats.backplane_gbps += admission.passes * admission.bandwidth_gbps;
  }
  stats.blocks_used = data_plane_.pipeline().TotalBlocksUsed();
  stats.entries_used = data_plane_.pipeline().TotalEntriesUsed();
  return stats;
}

}  // namespace sfp::core
