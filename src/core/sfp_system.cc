#include "core/sfp_system.h"

#include "common/logging.h"

namespace sfp::core {

SfpSystem::SfpSystem(switchsim::SwitchConfig config) : data_plane_(config) {}

controlplane::SfcSpec SfpSystem::ToSpec(const dataplane::Sfc& sfc) {
  controlplane::SfcSpec spec;
  spec.bandwidth_gbps = sfc.bandwidth_gbps;
  for (const auto& nf : sfc.chain) {
    spec.boxes.push_back({static_cast<int>(nf.type),
                          static_cast<std::int64_t>(nf.rules.size()) + 1});  // +catch-all
  }
  return spec;
}

int SfpSystem::ProvisionPhysical(const std::vector<dataplane::Sfc>& expected,
                                 const controlplane::ApproxOptions& options) {
  controlplane::PlacementInstance instance;
  const auto& config = data_plane_.pipeline().config();
  instance.sw.stages = config.num_stages;
  instance.sw.blocks_per_stage = config.blocks_per_stage;
  instance.sw.entries_per_block = config.entries_per_block;
  instance.sw.capacity_gbps = config.backplane_gbps;
  instance.num_types = nf::kNumNfTypes;
  for (const auto& sfc : expected) instance.sfcs.push_back(ToSpec(sfc));

  const auto report = controlplane::SolveApprox(instance, options);
  if (!report.ok) {
    SFP_LOG_WARN << "physical provisioning found no verified placement; "
                    "falling back to one NF of each type per stage round-robin";
    int installed = 0;
    for (int i = 0; i < nf::kNumNfTypes; ++i) {
      if (data_plane_.InstallPhysicalNf(i % config.num_stages, static_cast<nf::NfType>(i))) {
        ++installed;
      }
    }
    return installed;
  }

  int installed = 0;
  for (int i = 0; i < instance.num_types; ++i) {
    for (int s = 0; s < instance.sw.stages; ++s) {
      if (!report.solution.physical[static_cast<std::size_t>(i)][static_cast<std::size_t>(s)]) {
        continue;
      }
      if (data_plane_.InstallPhysicalNf(s, static_cast<nf::NfType>(i))) ++installed;
    }
  }
  SFP_LOG_INFO << "provisioned " << installed << " physical NFs";
  return installed;
}

int SfpSystem::ProvisionPhysical(const std::vector<std::vector<nf::NfType>>& layout) {
  int installed = 0;
  for (std::size_t stage = 0; stage < layout.size(); ++stage) {
    for (const nf::NfType type : layout[stage]) {
      if (data_plane_.InstallPhysicalNf(static_cast<int>(stage), type)) ++installed;
    }
  }
  return installed;
}

std::vector<switchsim::ProcessResult> SfpSystem::ProcessBatch(
    std::span<const net::Packet> packets, const switchsim::BatchOptions& options) {
  auto results = data_plane_.ProcessBatch(packets, options);
  // Telemetry aggregation is sequential (input order) on this thread:
  // identical to a scalar Process loop, and the collector needs no
  // locking.
  for (std::size_t i = 0; i < packets.size(); ++i) {
    telemetry_.Record(packets[i].WireBytes(), results[i]);
  }
  return results;
}

void SfpSystem::ExportMetrics(common::metrics::Registry& registry) const {
  data_plane_.pipeline().ExportMetrics(registry);
  const auto total = telemetry_.Total();
  registry.GetCounter("telemetry.total.packets").Set(total.packets);
  registry.GetCounter("telemetry.total.bytes").Set(total.bytes);
  registry.GetCounter("telemetry.total.drops").Set(total.drops);
  registry.GetCounter("telemetry.total.recirculated_packets")
      .Set(total.recirculated_packets);
  registry.GetCounter("telemetry.total.passes").Set(total.total_passes);
  for (const std::uint16_t tenant : telemetry_.Tenants()) {
    const auto counters = telemetry_.Tenant(tenant);
    const std::string prefix = "telemetry.tenant" + std::to_string(tenant) + ".";
    registry.GetCounter(prefix + "packets").Set(counters.packets);
    registry.GetCounter(prefix + "bytes").Set(counters.bytes);
    registry.GetCounter(prefix + "drops").Set(counters.drops);
    registry.GetCounter(prefix + "recirculated_packets").Set(counters.recirculated_packets);
    registry.GetCounter(prefix + "passes").Set(counters.total_passes);
  }
  {
    std::lock_guard<std::mutex> lock(*control_mutex_);
    registry.GetCounter("system.tenants").Set(admissions_.size());
  }
}

AdmitResult SfpSystem::AdmitTenant(const dataplane::Sfc& sfc) {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  AdmitResult result;
  if (admissions_.contains(sfc.tenant)) {
    result.reason = "tenant already admitted";
    return result;
  }

  // §IV allocation onto the shared pipeline.
  const auto allocation = data_plane_.AllocateSfc(sfc);
  if (!allocation.ok) {
    result.reason = allocation.error;
    return result;
  }

  // eq. 26 admission control: recirculated traffic competes with new
  // inbound traffic on the backplane.
  const double charge = allocation.passes * sfc.bandwidth_gbps;
  double used = 0.0;
  for (const auto& [tenant, admission] : admissions_) {
    used += admission.passes * admission.bandwidth_gbps;
  }
  if (used + charge > data_plane_.pipeline().config().backplane_gbps + 1e-9) {
    data_plane_.DeallocateSfc(sfc.tenant);
    result.reason = "backplane capacity exceeded";
    return result;
  }

  admissions_[sfc.tenant] = {sfc.bandwidth_gbps, allocation.passes};
  result.admitted = true;
  result.passes = allocation.passes;
  result.backplane_gbps = charge;
  return result;
}

bool SfpSystem::RemoveTenant(dataplane::TenantId tenant) {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  if (!admissions_.contains(tenant)) return false;
  data_plane_.DeallocateSfc(tenant);
  admissions_.erase(tenant);
  return true;
}

SfpStats SfpSystem::Stats() const {
  std::lock_guard<std::mutex> lock(*control_mutex_);
  SfpStats stats;
  stats.tenants = static_cast<int>(admissions_.size());
  for (const auto& [tenant, admission] : admissions_) {
    stats.offered_gbps += admission.bandwidth_gbps;
    stats.backplane_gbps += admission.passes * admission.bandwidth_gbps;
  }
  stats.blocks_used = data_plane_.pipeline().TotalBlocksUsed();
  stats.entries_used = data_plane_.pipeline().TotalEntriesUsed();
  return stats;
}

}  // namespace sfp::core
