#include "net/packet.h"

#include <algorithm>

#include "common/check.h"

namespace sfp::net {

std::uint64_t FiveTuple::Hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(src_ip.value, 4);
  mix(dst_ip.value, 4);
  mix(src_port, 2);
  mix(dst_port, 2);
  mix(protocol, 1);
  return h;
}

FiveTuple Packet::Tuple() const {
  FiveTuple t;
  if (ipv4) {
    t.src_ip = ipv4->src;
    t.dst_ip = ipv4->dst;
    t.protocol = ipv4->protocol;
  }
  if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

namespace {

/// Writes the header stack (with the on-wire fixups: outer EtherType,
/// inner EtherType, IPv4 total_length, UDP length) to `out`, which
/// must have room for the packet's full header length. Returns the
/// header byte count. Heap-free: the single shared implementation
/// behind Serialize/SerializeInto.
std::size_t WriteHeaders(const Packet& p, std::uint8_t* out) {
  std::size_t at = 0;
  EthernetHeader eth_copy = p.eth;
  eth_copy.ether_type =
      static_cast<std::uint16_t>(p.vlan ? EtherType::kVlan : EtherType::kIpv4);
  eth_copy.WriteTo(out + at);
  at += EthernetHeader::kSize;
  if (p.vlan) {
    VlanTag tag = *p.vlan;
    tag.inner_ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
    tag.WriteTo(out + at);
    at += VlanTag::kSize;
  }
  if (p.ipv4) {
    Ipv4Header ip = *p.ipv4;
    std::uint16_t l4 = 0;
    if (p.tcp) l4 = TcpHeader::kSize;
    if (p.udp) l4 = UdpHeader::kSize;
    ip.total_length =
        static_cast<std::uint16_t>(Ipv4Header::kSize + l4 + p.payload_bytes);
    ip.WriteTo(out + at);
    at += Ipv4Header::kSize;
  }
  if (p.tcp) {
    p.tcp->WriteTo(out + at);
    at += TcpHeader::kSize;
  }
  if (p.udp) {
    UdpHeader u = *p.udp;
    u.length = static_cast<std::uint16_t>(UdpHeader::kSize + p.payload_bytes);
    u.WriteTo(out + at);
    at += UdpHeader::kSize;
  }
  return at;
}

}  // namespace

std::vector<std::uint8_t> Packet::Serialize() const {
  std::vector<std::uint8_t> out;
  SerializeInto(out);
  return out;
}

void Packet::SerializeInto(std::vector<std::uint8_t>& out) const {
  // clear + resize value-initializes every byte, so the payload region
  // is zeroed in the same pass that sizes the buffer; headers then
  // overwrite their prefix. No allocation once capacity suffices.
  out.clear();
  out.resize(WireBytes());
  WriteHeaders(*this, out.data());
}

std::size_t Packet::SerializeInto(std::span<std::uint8_t> out) const {
  const std::uint32_t wire = WireBytes();
  if (out.size() < wire) return 0;
  const std::size_t header_bytes = WriteHeaders(*this, out.data());
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(header_bytes),
            out.begin() + static_cast<std::ptrdiff_t>(wire), std::uint8_t{0});
  return wire;
}

std::optional<Packet> Packet::Parse(std::span<const std::uint8_t> bytes) {
  Packet p;
  auto eth = EthernetHeader::Parse(bytes);
  if (!eth) return std::nullopt;
  p.eth = *eth;
  std::size_t offset = EthernetHeader::kSize;
  std::uint16_t next_type = p.eth.ether_type;

  if (next_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    auto vlan = VlanTag::Parse(bytes.subspan(offset));
    if (!vlan) return std::nullopt;
    p.vlan = *vlan;
    offset += VlanTag::kSize;
    next_type = vlan->inner_ether_type;
  }
  if (next_type != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    // Non-IP frame: keep only L2 view.
    p.payload_bytes = static_cast<std::uint32_t>(bytes.size() - offset);
    return p;
  }
  auto ip = Ipv4Header::Parse(bytes.subspan(offset));
  if (!ip) return std::nullopt;
  p.ipv4 = *ip;
  offset += Ipv4Header::kSize;

  if (ip->protocol == static_cast<std::uint8_t>(IpProto::kTcp)) {
    auto tcp = TcpHeader::Parse(bytes.subspan(offset));
    if (!tcp) return std::nullopt;
    p.tcp = *tcp;
    offset += TcpHeader::kSize;
  } else if (ip->protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    auto udp = UdpHeader::Parse(bytes.subspan(offset));
    if (!udp) return std::nullopt;
    p.udp = *udp;
    offset += UdpHeader::kSize;
  }
  p.payload_bytes = static_cast<std::uint32_t>(bytes.size() - offset);
  return p;
}

namespace {

Packet MakeL4Packet(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                    std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes,
                    bool is_tcp) {
  Packet p;
  p.eth.src = MacAddress{{0x02, 0, 0, 0, 0, 1}};
  p.eth.dst = MacAddress{{0x02, 0, 0, 0, 0, 2}};
  if (tenant != 0) {
    VlanTag tag;
    tag.vid = tenant & 0x0FFF;
    p.vlan = tag;
  }
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(is_tcp ? IpProto::kTcp : IpProto::kUdp);
  p.ipv4 = ip;
  std::uint32_t header_bytes;
  if (is_tcp) {
    TcpHeader tcp;
    tcp.src_port = sport;
    tcp.dst_port = dport;
    p.tcp = tcp;
    header_bytes = EthernetHeader::kSize + (tenant ? VlanTag::kSize : 0) +
                   Ipv4Header::kSize + TcpHeader::kSize;
  } else {
    UdpHeader udp;
    udp.src_port = sport;
    udp.dst_port = dport;
    p.udp = udp;
    header_bytes = EthernetHeader::kSize + (tenant ? VlanTag::kSize : 0) +
                   Ipv4Header::kSize + UdpHeader::kSize;
  }
  p.payload_bytes = frame_bytes > header_bytes ? frame_bytes - header_bytes : 0;
  return p;
}

}  // namespace

Packet MakeTcpPacket(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                     std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes) {
  return MakeL4Packet(tenant, src, dst, sport, dport, frame_bytes, /*is_tcp=*/true);
}

Packet MakeUdpPacket(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                     std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes) {
  return MakeL4Packet(tenant, src, dst, sport, dport, frame_bytes, /*is_tcp=*/false);
}

}  // namespace sfp::net
