#include "net/packet.h"

#include <algorithm>

#include "common/check.h"

namespace sfp::net {

std::uint64_t FiveTuple::Hash() const {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  auto mix = [&h](std::uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 0x100000001B3ULL;
    }
  };
  mix(src_ip.value, 4);
  mix(dst_ip.value, 4);
  mix(src_port, 2);
  mix(dst_port, 2);
  mix(protocol, 1);
  return h;
}

std::uint32_t Packet::WireBytes() const {
  std::uint32_t bytes = EthernetHeader::kSize;
  if (vlan) bytes += VlanTag::kSize;
  if (ipv4) bytes += Ipv4Header::kSize;
  if (tcp) bytes += TcpHeader::kSize;
  if (udp) bytes += UdpHeader::kSize;
  return bytes + payload_bytes;
}

FiveTuple Packet::Tuple() const {
  FiveTuple t;
  if (ipv4) {
    t.src_ip = ipv4->src;
    t.dst_ip = ipv4->dst;
    t.protocol = ipv4->protocol;
  }
  if (tcp) {
    t.src_port = tcp->src_port;
    t.dst_port = tcp->dst_port;
  } else if (udp) {
    t.src_port = udp->src_port;
    t.dst_port = udp->dst_port;
  }
  return t;
}

std::vector<std::uint8_t> Packet::Serialize() const {
  std::vector<std::uint8_t> out;
  out.reserve(WireBytes());
  EthernetHeader eth_copy = eth;
  eth_copy.ether_type = static_cast<std::uint16_t>(vlan ? EtherType::kVlan : EtherType::kIpv4);
  eth_copy.Serialize(out);
  if (vlan) {
    VlanTag tag = *vlan;
    tag.inner_ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
    tag.Serialize(out);
  }
  if (ipv4) {
    Ipv4Header ip = *ipv4;
    std::uint16_t l4 = 0;
    if (tcp) l4 = TcpHeader::kSize;
    if (udp) l4 = UdpHeader::kSize;
    ip.total_length =
        static_cast<std::uint16_t>(Ipv4Header::kSize + l4 + payload_bytes);
    ip.Serialize(out);
  }
  if (tcp) tcp->Serialize(out);
  if (udp) {
    UdpHeader u = *udp;
    u.length = static_cast<std::uint16_t>(UdpHeader::kSize + payload_bytes);
    u.Serialize(out);
  }
  out.resize(out.size() + payload_bytes, 0);
  return out;
}

std::optional<Packet> Packet::Parse(std::span<const std::uint8_t> bytes) {
  Packet p;
  auto eth = EthernetHeader::Parse(bytes);
  if (!eth) return std::nullopt;
  p.eth = *eth;
  std::size_t offset = EthernetHeader::kSize;
  std::uint16_t next_type = p.eth.ether_type;

  if (next_type == static_cast<std::uint16_t>(EtherType::kVlan)) {
    auto vlan = VlanTag::Parse(bytes.subspan(offset));
    if (!vlan) return std::nullopt;
    p.vlan = *vlan;
    offset += VlanTag::kSize;
    next_type = vlan->inner_ether_type;
  }
  if (next_type != static_cast<std::uint16_t>(EtherType::kIpv4)) {
    // Non-IP frame: keep only L2 view.
    p.payload_bytes = static_cast<std::uint32_t>(bytes.size() - offset);
    return p;
  }
  auto ip = Ipv4Header::Parse(bytes.subspan(offset));
  if (!ip) return std::nullopt;
  p.ipv4 = *ip;
  offset += Ipv4Header::kSize;

  if (ip->protocol == static_cast<std::uint8_t>(IpProto::kTcp)) {
    auto tcp = TcpHeader::Parse(bytes.subspan(offset));
    if (!tcp) return std::nullopt;
    p.tcp = *tcp;
    offset += TcpHeader::kSize;
  } else if (ip->protocol == static_cast<std::uint8_t>(IpProto::kUdp)) {
    auto udp = UdpHeader::Parse(bytes.subspan(offset));
    if (!udp) return std::nullopt;
    p.udp = *udp;
    offset += UdpHeader::kSize;
  }
  p.payload_bytes = static_cast<std::uint32_t>(bytes.size() - offset);
  return p;
}

namespace {

Packet MakeL4Packet(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                    std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes,
                    bool is_tcp) {
  Packet p;
  p.eth.src = MacAddress{{0x02, 0, 0, 0, 0, 1}};
  p.eth.dst = MacAddress{{0x02, 0, 0, 0, 0, 2}};
  if (tenant != 0) {
    VlanTag tag;
    tag.vid = tenant & 0x0FFF;
    p.vlan = tag;
  }
  Ipv4Header ip;
  ip.src = src;
  ip.dst = dst;
  ip.protocol = static_cast<std::uint8_t>(is_tcp ? IpProto::kTcp : IpProto::kUdp);
  p.ipv4 = ip;
  std::uint32_t header_bytes;
  if (is_tcp) {
    TcpHeader tcp;
    tcp.src_port = sport;
    tcp.dst_port = dport;
    p.tcp = tcp;
    header_bytes = EthernetHeader::kSize + (tenant ? VlanTag::kSize : 0) +
                   Ipv4Header::kSize + TcpHeader::kSize;
  } else {
    UdpHeader udp;
    udp.src_port = sport;
    udp.dst_port = dport;
    p.udp = udp;
    header_bytes = EthernetHeader::kSize + (tenant ? VlanTag::kSize : 0) +
                   Ipv4Header::kSize + UdpHeader::kSize;
  }
  p.payload_bytes = frame_bytes > header_bytes ? frame_bytes - header_bytes : 0;
  return p;
}

}  // namespace

Packet MakeTcpPacket(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                     std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes) {
  return MakeL4Packet(tenant, src, dst, sport, dport, frame_bytes, /*is_tcp=*/true);
}

Packet MakeUdpPacket(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                     std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes) {
  return MakeL4Packet(tenant, src, dst, sport, dport, frame_bytes, /*is_tcp=*/false);
}

}  // namespace sfp::net
