// Protocol header definitions with wire-format serialization.
//
// The switch simulator parses packets from bytes before the ingress
// pipeline and deparses them after egress, mirroring the shared
// parser/deparser of a real P4 target (§VII "Shared Parser/Deparser").
// Header fields are kept in host byte order in the structs; Serialize/
// Parse convert to/from network byte order.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace sfp::net {

/// 48-bit MAC address.
struct MacAddress {
  std::array<std::uint8_t, 6> bytes{};

  bool operator==(const MacAddress&) const = default;
  /// "aa:bb:cc:dd:ee:ff"
  std::string ToString() const;
  /// Parses "aa:bb:cc:dd:ee:ff"; returns nullopt on malformed input.
  static std::optional<MacAddress> FromString(const std::string& text);
};

/// IPv4 address as a host-order 32-bit value.
struct Ipv4Address {
  std::uint32_t value = 0;

  bool operator==(const Ipv4Address&) const = default;
  auto operator<=>(const Ipv4Address&) const = default;
  std::string ToString() const;
  static std::optional<Ipv4Address> FromString(const std::string& text);
  /// Convenience constructor from dotted quad.
  static Ipv4Address Of(std::uint8_t a, std::uint8_t b, std::uint8_t c, std::uint8_t d) {
    return Ipv4Address{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                       (std::uint32_t{c} << 8) | d};
  }
};

/// EtherType values used by the simulator.
enum class EtherType : std::uint16_t {
  kIpv4 = 0x0800,
  kVlan = 0x8100,
  kArp = 0x0806,
};

/// IP protocol numbers used by the simulator.
enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
};

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddress dst;
  MacAddress src;
  std::uint16_t ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  void Serialize(std::vector<std::uint8_t>& out) const;
  /// Writes exactly kSize bytes at `out` (caller guarantees room).
  /// The allocation-free primitive the vector/span paths share.
  void WriteTo(std::uint8_t* out) const;
  static std::optional<EthernetHeader> Parse(std::span<const std::uint8_t> in);
};

/// 802.1Q tag. SFP uses the VID as (part of) the tenant ID (§III
/// Assumptions: tenant traffic is isolated by VLAN/VxLAN/GRE headers).
struct VlanTag {
  static constexpr std::size_t kSize = 4;
  std::uint8_t pcp = 0;
  bool dei = false;
  std::uint16_t vid = 0;  // 12 bits
  std::uint16_t inner_ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);

  void Serialize(std::vector<std::uint8_t>& out) const;
  /// Writes exactly kSize bytes at `out` (caller guarantees room).
  void WriteTo(std::uint8_t* out) const;
  static std::optional<VlanTag> Parse(std::span<const std::uint8_t> in);
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint8_t dscp = 0;
  std::uint16_t total_length = 0;
  std::uint16_t identification = 0;
  std::uint8_t ttl = 64;
  std::uint8_t protocol = static_cast<std::uint8_t>(IpProto::kTcp);
  std::uint16_t checksum = 0;  // filled by Serialize
  Ipv4Address src;
  Ipv4Address dst;

  /// Serializes with a freshly computed header checksum.
  void Serialize(std::vector<std::uint8_t>& out) const;
  /// Serializes with the checksum field as-is (no recomputation).
  void SerializeRaw(std::vector<std::uint8_t>& out) const;
  /// Writes exactly kSize bytes at `out` with a freshly computed
  /// checksum (caller guarantees room). Heap-free.
  void WriteTo(std::uint8_t* out) const;
  /// WriteTo with the checksum field as-is (no recomputation).
  void WriteRawTo(std::uint8_t* out) const;
  /// Parses and validates the checksum; returns nullopt on corruption.
  static std::optional<Ipv4Header> Parse(std::span<const std::uint8_t> in);
  /// RFC 791 header checksum over the 20-byte header. Computed on a
  /// stack buffer — no allocation.
  std::uint16_t ComputeChecksum() const;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;  // CWR..FIN bitfield
  std::uint16_t window = 0xFFFF;

  void Serialize(std::vector<std::uint8_t>& out) const;
  /// Writes exactly kSize bytes at `out` (caller guarantees room).
  void WriteTo(std::uint8_t* out) const;
  static std::optional<TcpHeader> Parse(std::span<const std::uint8_t> in);
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;

  void Serialize(std::vector<std::uint8_t>& out) const;
  /// Writes exactly kSize bytes at `out` (caller guarantees room).
  void WriteTo(std::uint8_t* out) const;
  static std::optional<UdpHeader> Parse(std::span<const std::uint8_t> in);
};

}  // namespace sfp::net
