// Structured packet representation used throughout the simulators.
//
// A Packet is the parsed view (Ethernet, optional VLAN tenant tag, IPv4,
// TCP or UDP) plus the payload length; Serialize/Parse convert to and
// from the wire format so the switch simulator's parser/deparser path is
// exercised with real bytes. Frame sizes in the evaluation are the full
// on-wire length (headers + payload), matching the 64..1500 B packet
// sizes of Fig. 4/5.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "net/headers.h"

namespace sfp::net {

/// Canonical 5-tuple used by NF match keys and flow hashing.
struct FiveTuple {
  Ipv4Address src_ip;
  Ipv4Address dst_ip;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;

  bool operator==(const FiveTuple&) const = default;

  /// Stable hash (FNV-1a over the packed tuple) for flow-affine choices
  /// such as the load balancer's 'tab_lbhash'.
  std::uint64_t Hash() const;
};

/// Parsed packet.
struct Packet {
  EthernetHeader eth;
  std::optional<VlanTag> vlan;  // carries the tenant ID (VID)
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  /// L4 payload length in bytes.
  std::uint32_t payload_bytes = 0;
  /// Ingress timestamp in nanoseconds assigned by the traffic source
  /// (0 = unstamped). Not part of the wire format; the pipeline copies
  /// it into PacketMeta::time_ns for time-aware NFs (rate limiter) and
  /// the recirculation-port overload model.
  double ingress_time_ns = 0.0;

  /// Total frame length on the wire (inline — runs per packet in the
  /// fused telemetry sinks).
  std::uint32_t WireBytes() const {
    std::uint32_t bytes = EthernetHeader::kSize;
    if (vlan) bytes += VlanTag::kSize;
    if (ipv4) bytes += Ipv4Header::kSize;
    if (tcp) bytes += TcpHeader::kSize;
    if (udp) bytes += UdpHeader::kSize;
    return bytes + payload_bytes;
  }

  /// 5-tuple (zeroes for non-IP or port-less packets).
  FiveTuple Tuple() const;

  /// Tenant ID = VLAN VID, or 0 when untagged.
  std::uint16_t TenantId() const { return vlan ? vlan->vid : 0; }

  bool IsTcp() const { return tcp.has_value(); }
  bool IsUdp() const { return udp.has_value(); }

  /// Wire-format serialization (payload emitted as zero bytes).
  /// Reserves WireBytes() up front — exactly one allocation.
  std::vector<std::uint8_t> Serialize() const;

  /// Serializes into a caller-owned buffer (resized to WireBytes()).
  /// Reusing the same vector across packets makes the steady state
  /// allocation-free once its capacity has grown to the largest frame.
  void SerializeInto(std::vector<std::uint8_t>& out) const;

  /// Serializes into a caller-owned span. Returns the frame length
  /// written, or 0 if the span is smaller than WireBytes(). Never
  /// allocates.
  std::size_t SerializeInto(std::span<std::uint8_t> out) const;

  /// Parses a frame; returns nullopt on truncation/corruption.
  static std::optional<Packet> Parse(std::span<const std::uint8_t> bytes);
};

/// Builds a TCP packet for `tenant` with the given 5-tuple; the payload
/// is sized so the full frame is `frame_bytes` (minimum = header sizes).
Packet MakeTcpPacket(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                     std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes);

/// UDP variant of MakeTcpPacket.
Packet MakeUdpPacket(std::uint16_t tenant, Ipv4Address src, Ipv4Address dst,
                     std::uint16_t sport, std::uint16_t dport, std::uint32_t frame_bytes);

}  // namespace sfp::net
