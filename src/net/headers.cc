#include "net/headers.h"

#include <algorithm>
#include <cstdio>

namespace sfp::net {
namespace {

void Put16At(std::uint8_t* p, std::uint16_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v & 0xFF);
}

void Put32At(std::uint8_t* p, std::uint32_t v) {
  Put16At(p, static_cast<std::uint16_t>(v >> 16));
  Put16At(p + 2, static_cast<std::uint16_t>(v & 0xFFFF));
}

/// Grows `out` by `size` zero bytes and returns a pointer to the new
/// region. With pre-reserved capacity this never reallocates.
std::uint8_t* Grow(std::vector<std::uint8_t>& out, std::size_t size) {
  const std::size_t at = out.size();
  out.resize(at + size);
  return out.data() + at;
}

std::uint16_t Get16(std::span<const std::uint8_t> in, std::size_t at) {
  return static_cast<std::uint16_t>((in[at] << 8) | in[at + 1]);
}

std::uint32_t Get32(std::span<const std::uint8_t> in, std::size_t at) {
  return (static_cast<std::uint32_t>(Get16(in, at)) << 16) | Get16(in, at + 2);
}

std::uint16_t OnesComplementSum(std::span<const std::uint8_t> bytes) {
  std::uint32_t sum = 0;
  for (std::size_t i = 0; i + 1 < bytes.size(); i += 2) {
    sum += Get16(bytes, i);
  }
  if (bytes.size() % 2 == 1) sum += static_cast<std::uint32_t>(bytes.back()) << 8;
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

}  // namespace

std::string MacAddress::ToString() const {
  char buf[18];
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x", bytes[0], bytes[1],
                bytes[2], bytes[3], bytes[4], bytes[5]);
  return buf;
}

std::optional<MacAddress> MacAddress::FromString(const std::string& text) {
  MacAddress mac;
  unsigned int parts[6];
  if (std::sscanf(text.c_str(), "%x:%x:%x:%x:%x:%x", &parts[0], &parts[1], &parts[2],
                  &parts[3], &parts[4], &parts[5]) != 6) {
    return std::nullopt;
  }
  for (int i = 0; i < 6; ++i) {
    if (parts[i] > 0xFF) return std::nullopt;
    mac.bytes[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(parts[i]);
  }
  return mac;
}

std::string Ipv4Address::ToString() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (value >> 24) & 0xFF, (value >> 16) & 0xFF,
                (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

std::optional<Ipv4Address> Ipv4Address::FromString(const std::string& text) {
  unsigned int a, b, c, d;
  char tail;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) {
    return std::nullopt;
  }
  if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
  return Of(static_cast<std::uint8_t>(a), static_cast<std::uint8_t>(b),
            static_cast<std::uint8_t>(c), static_cast<std::uint8_t>(d));
}

void EthernetHeader::Serialize(std::vector<std::uint8_t>& out) const {
  WriteTo(Grow(out, kSize));
}

void EthernetHeader::WriteTo(std::uint8_t* out) const {
  std::copy(dst.bytes.begin(), dst.bytes.end(), out);
  std::copy(src.bytes.begin(), src.bytes.end(), out + 6);
  Put16At(out + 12, ether_type);
}

std::optional<EthernetHeader> EthernetHeader::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  EthernetHeader h;
  std::copy(in.begin(), in.begin() + 6, h.dst.bytes.begin());
  std::copy(in.begin() + 6, in.begin() + 12, h.src.bytes.begin());
  h.ether_type = Get16(in, 12);
  return h;
}

void VlanTag::Serialize(std::vector<std::uint8_t>& out) const {
  WriteTo(Grow(out, kSize));
}

void VlanTag::WriteTo(std::uint8_t* out) const {
  const std::uint16_t tci = static_cast<std::uint16_t>((pcp & 0x7) << 13) |
                            static_cast<std::uint16_t>(dei ? 1 << 12 : 0) |
                            static_cast<std::uint16_t>(vid & 0x0FFF);
  Put16At(out, tci);
  Put16At(out + 2, inner_ether_type);
}

std::optional<VlanTag> VlanTag::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  VlanTag tag;
  const std::uint16_t tci = Get16(in, 0);
  tag.pcp = static_cast<std::uint8_t>(tci >> 13);
  tag.dei = (tci >> 12) & 1;
  tag.vid = tci & 0x0FFF;
  tag.inner_ether_type = Get16(in, 2);
  return tag;
}

std::uint16_t Ipv4Header::ComputeChecksum() const {
  std::uint8_t bytes[kSize];
  Ipv4Header copy = *this;
  copy.checksum = 0;
  copy.WriteRawTo(bytes);
  return OnesComplementSum(std::span<const std::uint8_t>(bytes, kSize));
}

void Ipv4Header::SerializeRaw(std::vector<std::uint8_t>& out) const {
  WriteRawTo(Grow(out, kSize));
}

void Ipv4Header::WriteRawTo(std::uint8_t* out) const {
  out[0] = 0x45;  // version 4, IHL 5
  out[1] = dscp;
  Put16At(out + 2, total_length);
  Put16At(out + 4, identification);
  Put16At(out + 6, 0);  // flags + fragment offset (unused)
  out[8] = ttl;
  out[9] = protocol;
  Put16At(out + 10, checksum);
  Put32At(out + 12, src.value);
  Put32At(out + 16, dst.value);
}

void Ipv4Header::Serialize(std::vector<std::uint8_t>& out) const {
  WriteTo(Grow(out, kSize));
}

void Ipv4Header::WriteTo(std::uint8_t* out) const {
  Ipv4Header copy = *this;
  copy.checksum = 0;
  copy.checksum = copy.ComputeChecksum();
  copy.WriteRawTo(out);
}

std::optional<Ipv4Header> Ipv4Header::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  if ((in[0] >> 4) != 4 || (in[0] & 0x0F) != 5) return std::nullopt;
  Ipv4Header h;
  h.dscp = in[1];
  h.total_length = Get16(in, 2);
  h.identification = Get16(in, 4);
  h.ttl = in[8];
  h.protocol = in[9];
  h.checksum = Get16(in, 10);
  h.src.value = Get32(in, 12);
  h.dst.value = Get32(in, 16);
  if (h.ComputeChecksum() != h.checksum) return std::nullopt;
  return h;
}

void TcpHeader::Serialize(std::vector<std::uint8_t>& out) const {
  WriteTo(Grow(out, kSize));
}

void TcpHeader::WriteTo(std::uint8_t* out) const {
  Put16At(out, src_port);
  Put16At(out + 2, dst_port);
  Put32At(out + 4, seq);
  Put32At(out + 8, ack);
  out[12] = 0x50;  // data offset 5, reserved 0
  out[13] = flags;
  Put16At(out + 14, window);
  Put16At(out + 16, 0);  // checksum (not modelled)
  Put16At(out + 18, 0);  // urgent pointer
}

std::optional<TcpHeader> TcpHeader::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  TcpHeader h;
  h.src_port = Get16(in, 0);
  h.dst_port = Get16(in, 2);
  h.seq = Get32(in, 4);
  h.ack = Get32(in, 8);
  h.flags = in[13];
  h.window = Get16(in, 14);
  return h;
}

void UdpHeader::Serialize(std::vector<std::uint8_t>& out) const {
  WriteTo(Grow(out, kSize));
}

void UdpHeader::WriteTo(std::uint8_t* out) const {
  Put16At(out, src_port);
  Put16At(out + 2, dst_port);
  Put16At(out + 4, length);
  Put16At(out + 6, 0);  // checksum (not modelled)
}

std::optional<UdpHeader> UdpHeader::Parse(std::span<const std::uint8_t> in) {
  if (in.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = Get16(in, 0);
  h.dst_port = Get16(in, 2);
  h.length = Get16(in, 4);
  return h;
}

}  // namespace sfp::net
