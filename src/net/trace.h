// Packet-trace capture and replay.
//
// The evaluation drives the data plane with "synthetic traffic workload
// and trace [27]". This module provides a compact binary trace format
// (a pcap-like container specialized to this simulator) so workloads
// can be captured once and replayed deterministically:
//
//   header : "SFPT" magic, u32 version, u64 record count
//   record : f64 timestamp_ns, u32 frame length, frame bytes
//
// All integers little-endian.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "net/packet.h"

namespace sfp::net {

/// One timestamped frame.
struct TraceRecord {
  double timestamp_ns = 0.0;
  std::vector<std::uint8_t> frame;
};

/// An in-memory packet trace.
class Trace {
 public:
  /// Appends a record; timestamps must be non-decreasing.
  void Append(double timestamp_ns, std::vector<std::uint8_t> frame);

  /// Convenience: serialize a parsed packet and append.
  void Append(double timestamp_ns, const Packet& packet);

  const std::vector<TraceRecord>& records() const { return records_; }
  std::size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }

  /// Total bytes across all frames.
  std::uint64_t TotalBytes() const;

  /// Duration between first and last record (0 for <2 records).
  double DurationNs() const;

  /// Average offered load over the trace duration, in Gbps.
  double OfferedGbps() const;

  /// Writes the binary format; returns false on I/O failure.
  bool WriteTo(std::ostream& os) const;

  /// Reads the binary format; returns nullopt on malformed input.
  static std::optional<Trace> ReadFrom(std::istream& is);

  /// File-based convenience wrappers.
  bool Save(const std::string& path) const;
  static std::optional<Trace> Load(const std::string& path);

 private:
  std::vector<TraceRecord> records_;
};

}  // namespace sfp::net
