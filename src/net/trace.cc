#include "net/trace.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/check.h"

namespace sfp::net {
namespace {

constexpr char kMagic[4] = {'S', 'F', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;

template <typename T>
void PutRaw(std::ostream& os, const T& value) {
  os.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool GetRaw(std::istream& is, T& value) {
  is.read(reinterpret_cast<char*>(&value), sizeof(T));
  return static_cast<bool>(is);
}

}  // namespace

void Trace::Append(double timestamp_ns, std::vector<std::uint8_t> frame) {
  SFP_CHECK_MSG(records_.empty() || timestamp_ns >= records_.back().timestamp_ns,
                "trace timestamps must be non-decreasing");
  records_.push_back(TraceRecord{timestamp_ns, std::move(frame)});
}

void Trace::Append(double timestamp_ns, const Packet& packet) {
  Append(timestamp_ns, packet.Serialize());
}

std::uint64_t Trace::TotalBytes() const {
  std::uint64_t total = 0;
  for (const auto& record : records_) total += record.frame.size();
  return total;
}

double Trace::DurationNs() const {
  if (records_.size() < 2) return 0.0;
  return records_.back().timestamp_ns - records_.front().timestamp_ns;
}

double Trace::OfferedGbps() const {
  const double duration = DurationNs();
  if (duration <= 0.0) return 0.0;
  return static_cast<double>(TotalBytes()) * 8.0 / duration;  // bytes*8 / ns == Gbps
}

bool Trace::WriteTo(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  PutRaw(os, kVersion);
  PutRaw(os, static_cast<std::uint64_t>(records_.size()));
  for (const auto& record : records_) {
    PutRaw(os, record.timestamp_ns);
    PutRaw(os, static_cast<std::uint32_t>(record.frame.size()));
    os.write(reinterpret_cast<const char*>(record.frame.data()),
             static_cast<std::streamsize>(record.frame.size()));
  }
  return static_cast<bool>(os);
}

std::optional<Trace> Trace::ReadFrom(std::istream& is) {
  char magic[4];
  is.read(magic, sizeof(magic));
  if (!is || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) return std::nullopt;
  std::uint32_t version = 0;
  std::uint64_t count = 0;
  if (!GetRaw(is, version) || version != kVersion) return std::nullopt;
  if (!GetRaw(is, count)) return std::nullopt;

  Trace trace;
  double last_ts = -1.0;
  for (std::uint64_t r = 0; r < count; ++r) {
    double timestamp = 0.0;
    std::uint32_t length = 0;
    if (!GetRaw(is, timestamp) || !GetRaw(is, length)) return std::nullopt;
    if (timestamp < last_ts) return std::nullopt;  // corrupt ordering
    if (length > (1u << 16)) return std::nullopt;  // sanity: jumbo++ limit
    std::vector<std::uint8_t> frame(length);
    is.read(reinterpret_cast<char*>(frame.data()), static_cast<std::streamsize>(length));
    if (!is) return std::nullopt;
    last_ts = timestamp;
    trace.records_.push_back(TraceRecord{timestamp, std::move(frame)});
  }
  return trace;
}

bool Trace::Save(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  return os && WriteTo(os);
}

std::optional<Trace> Trace::Load(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) return std::nullopt;
  return ReadFrom(is);
}

}  // namespace sfp::net
