// Telemetry-driven recovery loop (docs/SCENARIOS.md).
//
// The RecoveryController closes the loop between the sharded
// TelemetryCollector and the §V-E atomic-update path: it polls the
// collector's drift query for damage signatures — per-tenant drop-rate
// spikes and multi-pass throughput collapse (a tenant whose rules were
// lost stops recirculating, so its window mean pass count falls to 1) —
// plus a structural check (allocation gone), and repairs flagged
// tenants through SfpSystem::ReprovisionTenant. Repairs that keep
// failing are retried with sim-time exponential backoff and, after a
// bounded number of attempts, the tenant is *quarantined* (removed,
// resources released) instead of livelocking the loop — a persistently
// broken tenant can never starve the healthy ones.
//
// Blast radius: detection only reads telemetry, and a repair runs one
// atomic batch that touches only the damaged tenant's (tenant, pass)
// rules, so unaffected tenants' packet accounting is byte-identical
// with and without a concurrent recovery (asserted in
// tests/scenario_test.cc).
//
// Detectability boundary: a *single-pass* tenant whose rules are lost
// keeps forwarding (the physical NFs' default action is No-Op), so its
// telemetry is indistinguishable from health — only the structural
// check catches it. Multi-pass tenants are always telemetry-visible.
//
// The controller is single-threaded by design: the scenario driver
// calls Poll from its tick loop. All times are simulated seconds.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "core/sfp_system.h"

namespace sfp::scenario {

/// Tuning for the detection/repair loop.
struct RecoveryOptions {
  /// Window drop rate above which a tenant is flagged ("drop-spike").
  double drop_rate_threshold = 0.10;
  /// A multi-pass tenant is flagged when its window mean pass count
  /// falls more than this below its expected passes
  /// ("passes-collapse").
  double passes_margin = 0.5;
  /// Windows with fewer packets than this are too noisy to judge.
  std::uint64_t min_window_packets = 16;
  /// Repair attempts before the tenant is quarantined.
  int max_attempts = 5;
  /// Sim-time backoff before the second attempt; doubles per failure.
  double initial_backoff_s = 0.5;
  double max_backoff_s = 8.0;
  /// Detection holdoff after a successful repair, so the window that
  /// straddles the repair cannot re-flag the tenant on stale damage.
  double cooldown_s = 1.5;
  /// Anti-thrash escalation ceiling: a tenant re-flagged shortly after
  /// a successful repair (it is probably sitting in a fault storm the
  /// repair cannot fix) doubles its holdoff per repeat, up to this cap;
  /// staying healthy past twice the current holdoff resets it.
  double max_cooldown_s = 30.0;
};

/// One closed detection→repair episode.
struct RecoveryEpisode {
  dataplane::TenantId tenant = 0;
  double detected_s = 0.0;
  double ended_s = 0.0;
  int attempts = 0;
  /// true = repaired; false = quarantined after max_attempts.
  bool recovered = false;
  /// Signature that triggered detection: "structural", "drop-spike",
  /// "passes-collapse", or "lost" (externally reported divergence).
  std::string cause;

  double DurationMs() const { return (ended_s - detected_s) * 1e3; }
};

/// Monotonic loop counters (exported as system.recover.*).
struct RecoveryCounters {
  std::uint64_t polls = 0;
  std::uint64_t detections = 0;
  std::uint64_t attempts = 0;
  std::uint64_t successes = 0;
  std::uint64_t failures = 0;
  std::uint64_t diverged = 0;
  std::uint64_t quarantined = 0;
};

class RecoveryController {
 public:
  explicit RecoveryController(core::SfpSystem& system, RecoveryOptions options = {});

  /// Registers a tenant's desired state (its authoritative SFC and the
  /// pass count its admission landed on). Re-tracking an id replaces
  /// the record.
  void TrackTenant(const dataplane::Sfc& sfc, int expected_passes);

  /// Forgets a tenant (planned departure — not damage).
  void UntrackTenant(dataplane::TenantId tenant);

  /// Marks externally observed rollback-divergence victims (e.g. a
  /// driver's own ApplyAtomic reporting lost_tenants) as damaged, so
  /// the next Poll repairs them without waiting for telemetry.
  void NoteLostTenants(std::span<const dataplane::TenantId> tenants, double now_s);

  /// One loop iteration at simulated time `now_s`: consumes the drift
  /// window, flags damage signatures, and runs every due repair
  /// (respecting per-tenant backoff).
  void Poll(double now_s);

  bool IsQuarantined(dataplane::TenantId tenant) const;
  std::vector<dataplane::TenantId> QuarantinedTenants() const;

  /// Tenants currently flagged as damaged and awaiting repair.
  std::vector<dataplane::TenantId> DegradedTenants() const;

  const std::vector<RecoveryEpisode>& episodes() const { return episodes_; }
  const RecoveryCounters& counters() const { return counters_; }

  /// Exports the loop counters as system.recover.* (docs/METRICS.md).
  void ExportMetrics(common::metrics::Registry& registry) const;

 private:
  enum class Health : std::uint8_t { kHealthy, kDegraded, kQuarantined };

  struct Tracked {
    dataplane::Sfc sfc;
    int expected_passes = 1;
    Health health = Health::kHealthy;
    double detected_s = 0.0;
    int attempts = 0;
    double backoff_s = 0.0;
    double next_attempt_s = 0.0;
    double cooldown_until_s = 0.0;
    /// Escalating holdoff state (see RecoveryOptions::max_cooldown_s).
    double current_cooldown_s = 0.0;
    double last_repair_s = -1e300;
    std::string cause;
  };

  void Flag(Tracked& tracked, double now_s, const char* cause);

  core::SfpSystem& system_;
  RecoveryOptions options_;
  std::map<dataplane::TenantId, Tracked> tracked_;
  /// Rolling drift window start (advanced by every Poll).
  dataplane::TelemetryCollector::Snapshot window_;
  std::vector<RecoveryEpisode> episodes_;
  RecoveryCounters counters_;
};

}  // namespace sfp::scenario
