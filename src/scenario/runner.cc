#include "scenario/runner.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"
#include "nf/firewall.h"
#include "nf/router.h"

namespace sfp::scenario {

namespace {

using common::faultinject::FaultSchedule;
using common::faultinject::Registry;

constexpr double kNever = std::numeric_limits<double>::infinity();

/// Tenant NF builders. Firewall deny ports live in [1, 1000] while
/// generated traffic uses destination ports >= 2000, so the steady
/// state has no NF drops — drop spikes then cleanly attribute to
/// injected faults or recirculation overload.
nf::NfConfig Fw(std::uint16_t blocked_port, int extra_rules = 0) {
  nf::NfConfig config;
  config.type = nf::NfType::kFirewall;
  config.rules.push_back(nf::Firewall::Deny(
      switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Any(),
      switchsim::FieldMatch::Range(blocked_port, blocked_port),
      switchsim::FieldMatch::Any()));
  for (int i = 0; i < extra_rules; ++i) {
    const auto port = static_cast<std::uint64_t>(500 + i);
    config.rules.push_back(nf::Firewall::Deny(
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Any(),
        switchsim::FieldMatch::Any(), switchsim::FieldMatch::Range(port, port),
        switchsim::FieldMatch::Any()));
  }
  return config;
}

nf::NfConfig Rt() {
  nf::NfConfig config;
  config.type = nf::NfType::kRouter;
  config.rules.push_back(nf::Router::Route(0, 0, 1));
  return config;
}

/// Rule entries an admitted SFC occupies (rules + 1 catch-all per NF).
std::int64_t ExpectedEntries(const dataplane::Sfc& sfc) {
  std::int64_t entries = 0;
  for (const auto& nf : sfc.chain) {
    entries += static_cast<std::int64_t>(nf.rules.size()) + 1;
  }
  return entries;
}

std::uint64_t SumFaultFires() {
  std::uint64_t fires = 0;
  for (const auto& [point, stats] : Registry::Instance().AllStats()) fires += stats.fires;
  return fires;
}

}  // namespace

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::ceil(q * static_cast<double>(values.size())) - 1.0;
  const auto index = static_cast<std::size_t>(
      std::clamp(rank, 0.0, static_cast<double>(values.size() - 1)));
  return values[index];
}

ScenarioRunner::ScenarioRunner(ScenarioSpec spec) : spec_(std::move(spec)) {
  system_ = std::make_unique<core::SfpSystem>(spec_.switch_config);
  const auto layout = spec_.layout.empty()
                          ? std::vector<std::vector<nf::NfType>>{{nf::NfType::kFirewall},
                                                                 {nf::NfType::kRouter}}
                          : spec_.layout;
  if (system_->ProvisionPhysical(layout) == 0) {
    setup_error_ = "scenario '" + spec_.name + "': physical layout installed no NFs";
  }
  // Departed series must survive churn for the packet-conservation
  // check; the cap comfortably exceeds any builtin scenario's
  // lifetime tenant count.
  system_->Telemetry().SetRetention(dataplane::TelemetryRetention::kKeepDeparted, 8192);
  if (spec_.use_compiled_plans) system_->EnableCompiledPlans();
  recovery_ = std::make_unique<RecoveryController>(*system_, spec_.recovery);
}

bool ScenarioRunner::SpawnTenant(double now_s, double departs_s, Rng& rng) {
  dataplane::Sfc sfc;
  sfc.tenant = next_tenant_++;
  sfc.bandwidth_gbps = std::min(rng.Pareto(2.0, 1.0), 8.0);
  const auto port = static_cast<std::uint16_t>(rng.UniformInt(1, 400));
  if (rng.UniformDouble() < spec_.multi_pass_fraction) {
    // Out-of-order on the {Firewall}, {Router} layout: folds into a
    // second pass, making the tenant telemetry-visible when damaged.
    if (rng.Bernoulli(0.5)) {
      sfc.chain = {Rt(), Fw(port, static_cast<int>(rng.UniformInt(0, 4)))};
    } else {
      sfc.chain = {Fw(port), Rt(), Fw(static_cast<std::uint16_t>(port + 1))};
    }
  } else {
    sfc.chain = rng.Bernoulli(0.5)
                    ? std::vector<nf::NfConfig>{Fw(port)}
                    : std::vector<nf::NfConfig>{Fw(port, 2), Rt()};
  }

  core::AdmitOptions options;
  options.max_attempts = 3;
  options.initial_backoff = std::chrono::microseconds{0};
  const auto result = system_->AdmitTenant(sfc, options);
  if (!result.admitted) return false;
  recovery_->TrackTenant(sfc, result.passes);
  ActiveTenant tenant;
  tenant.sfc = std::move(sfc);
  tenant.passes = result.passes;
  tenant.departs_s = departs_s;
  tenant.rank = next_rank_++;
  active_.push_back(std::move(tenant));
  (void)now_s;
  return true;
}

double ScenarioRunner::LoadFactor(double now_s) const {
  double factor = 1.0;
  for (const auto& event : spec_.events) {
    if (now_s < event.start_s || now_s >= event.end_s) continue;
    switch (event.kind) {
      case Event::Kind::kDiurnal: {
        const double phase = 2.0 * M_PI * (now_s - event.start_s) / event.period_s;
        factor *= std::max(0.0, 1.0 + event.amplitude * std::sin(phase));
        break;
      }
      case Event::Kind::kFlashCrowd:
        factor *= event.load_multiplier;
        break;
      default:
        break;
    }
  }
  return factor;
}

double ScenarioRunner::DriftWeight(double now_s, int rank, int population) const {
  double weight = 1.0;
  if (population <= 1) return weight;
  for (const auto& event : spec_.events) {
    if (event.kind != Event::Kind::kTrafficDrift) continue;
    if (now_s < event.start_s || now_s >= event.end_s) continue;
    const double span = std::max(event.end_s - event.start_s, 1e-9);
    const double f = std::clamp((now_s - event.start_s) / span, 0.0, 1.0) *
                     event.drift_fraction;
    const double position =
        2.0 * static_cast<double>(rank) / static_cast<double>(population - 1) - 1.0;
    weight *= std::max(0.0, 1.0 + f * position);
  }
  return weight;
}

void ScenarioRunner::CheckConservation(double now_s, ScenarioResult& result) {
  ++result.conservation_checks;
  auto violate = [&](const std::string& message) {
    ++result.conservation_violations;
    if (result.errors.size() < 8) {
      result.errors.push_back("t=" + std::to_string(now_s) + "s: " + message);
    }
  };

  // Every generated packet was recorded exactly once (departed series
  // retained; tenant ids never reused).
  const auto total = system_->Telemetry().Total();
  if (total.packets != packets_sent_) {
    violate("telemetry packets " + std::to_string(total.packets) + " != sent " +
            std::to_string(packets_sent_));
  }
  if (total.bytes != bytes_sent_) {
    violate("telemetry bytes " + std::to_string(total.bytes) + " != sent " +
            std::to_string(bytes_sent_));
  }
  if (total.drops > total.packets) violate("drops exceed packets");

  // Rule-entry conservation: the switch holds exactly the currently
  // allocated tenants' entries — nothing leaked by faulted admissions,
  // removals, quarantines, or re-provisions.
  const auto stats = system_->Stats();
  std::int64_t expected_entries = 0;
  for (const auto& tenant : active_) {
    if (system_->data_plane().IsAllocated(tenant.sfc.tenant)) {
      expected_entries += ExpectedEntries(tenant.sfc);
    }
  }
  if (stats.entries_used != expected_entries) {
    violate("entries used " + std::to_string(stats.entries_used) + " != expected " +
            std::to_string(expected_entries));
  }

  // eq. 26: the admitted backplane charge never exceeds capacity.
  const double capacity = system_->data_plane().pipeline().config().backplane_gbps;
  if (stats.backplane_gbps > capacity + 1e-6) {
    violate("backplane charge " + std::to_string(stats.backplane_gbps) +
            " exceeds capacity " + std::to_string(capacity));
  }

  // Cross-tenant packing extends rule-entry conservation to the shared
  // stage-window ledger: its books must match the pipeline exactly.
  for (const auto& issue : system_->data_plane().AuditXtLedger()) {
    violate("xt ledger: " + issue);
  }
}

ScenarioResult ScenarioRunner::Run() {
  ScenarioResult result;
  if (!setup_error_.empty()) {
    result.errors.push_back(setup_error_);
    return result;
  }

  Rng root(spec_.seed);
  Rng shape_rng = root.Fork();
  Rng traffic_rng = root.Fork();
  Rng churn_rng = root.Fork();

  FaultSchedule schedule;
  for (const auto& event : spec_.events) {
    if (event.kind == Event::Kind::kFaultStorm) {
      schedule.AddWindow(event.start_s, event.end_s, event.plan);
    }
  }

  for (int i = 0; i < spec_.initial_tenants; ++i) {
    if (SpawnTenant(0.0, kNever, shape_rng)) {
      ++result.tenants_admitted;
    } else {
      ++result.admit_rejects;
    }
  }

  // Lazily armed per-churn-event arrival clocks.
  std::vector<double> next_arrival(spec_.events.size(), -1.0);

  const auto total_ticks =
      static_cast<std::uint64_t>(std::llround(spec_.duration_s / spec_.tick_s));
  double next_poll = 0.0;
  double next_check = spec_.check_interval_s;
  std::vector<net::Packet> batch;
  std::vector<switchsim::ProcessResult> results;

  for (std::uint64_t tick = 0; tick < total_ticks; ++tick) {
    const double now = static_cast<double>(tick) * spec_.tick_s;

    // Fault windows. Re-arming resets the registry's counters, so
    // harvest the outgoing window set's firing count first.
    const std::uint64_t pending_fires = schedule.active() ? SumFaultFires() : 0;
    if (schedule.AdvanceTo(now)) result.fault_fires += pending_fires;

    // Tenant churn: Poisson arrivals, Pareto lifetimes.
    for (std::size_t e = 0; e < spec_.events.size(); ++e) {
      const auto& event = spec_.events[e];
      if (event.kind != Event::Kind::kTenantChurn) continue;
      if (now < event.start_s || now >= event.end_s) continue;
      if (next_arrival[e] < event.start_s) {
        next_arrival[e] = event.start_s + churn_rng.Exponential(1.0 / event.arrivals_per_s);
      }
      while (next_arrival[e] <= now) {
        const double lifetime =
            churn_rng.Pareto(event.pareto_shape, event.pareto_scale_s);
        if (SpawnTenant(now, now + lifetime, shape_rng)) {
          ++result.tenants_admitted;
        } else {
          ++result.admit_rejects;
        }
        next_arrival[e] += churn_rng.Exponential(1.0 / event.arrivals_per_s);
      }
    }

    // Quarantined tenants stop sending (the controller already
    // released their resources); departures release theirs here.
    bool departed_this_tick = false;
    for (auto it = active_.begin(); it != active_.end();) {
      if (recovery_->IsQuarantined(it->sfc.tenant)) {
        it = active_.erase(it);
      } else if (it->departs_s <= now) {
        system_->RemoveTenant(it->sfc.tenant);
        recovery_->UntrackTenant(it->sfc.tenant);
        ++result.tenants_departed;
        departed_this_tick = true;
        it = active_.erase(it);
      } else {
        ++it;
      }
    }
    // Cross-tenant window compaction inside RemoveTenant may have
    // legally re-provisioned survivors into fewer passes; re-track
    // them so the recovery loop's passes-collapse signature doesn't
    // mistake the improvement for damage.
    if (departed_this_tick &&
        system_->data_plane().pipeline().config().cross_tenant_packing) {
      for (auto& tenant : active_) {
        const auto* allocation =
            system_->data_plane().FindAllocation(tenant.sfc.tenant);
        if (allocation == nullptr || allocation->passes == tenant.passes) continue;
        tenant.passes = allocation->passes;
        recovery_->TrackTenant(tenant.sfc, tenant.passes);
      }
    }

    // Offered load for this tick: per-tenant packet counts scaled by
    // the global load factor and the tenant's drift weight. Each
    // tenant's packets arrive as one contiguous microburst (ingress
    // gap spec_.packet_gap_ns), tenant bursts spread evenly across the
    // tick — burst depth therefore scales with load, which is what
    // lets flash crowds overload the finite recirculation port while
    // steady bursts drain within its queue bound.
    batch.clear();
    const double factor = LoadFactor(now);
    const double clump_spacing_ns =
        spec_.tick_s * 1e9 / static_cast<double>(std::max<std::size_t>(active_.size(), 1));
    bool truncated = false;
    for (std::size_t i = 0; i < active_.size() && !truncated; ++i) {
      const auto& tenant = active_[i];
      const double weight =
          DriftWeight(now, static_cast<int>(i), static_cast<int>(active_.size()));
      const auto count = static_cast<int>(
          std::llround(spec_.packets_per_tenant_tick * factor * weight));
      for (int p = 0; p < count; ++p) {
        if (batch.size() >= spec_.max_batch) {
          truncated = true;
          break;
        }
        auto packet = net::MakeTcpPacket(
            tenant.sfc.tenant, net::Ipv4Address::Of(10, 0, 0, 1),
            net::Ipv4Address::Of(2, 2, 2, 2),
            static_cast<std::uint16_t>(1024 + traffic_rng.UniformInt(0, 255)),
            static_cast<std::uint16_t>(2000 + traffic_rng.UniformInt(0, 9999)),
            static_cast<std::uint32_t>(traffic_rng.UniformInt(64, 1200)));
        packet.ingress_time_ns = now * 1e9 + static_cast<double>(i) * clump_spacing_ns +
                                 static_cast<double>(p) * spec_.packet_gap_ns;
        bytes_sent_ += packet.WireBytes();
        batch.push_back(std::move(packet));
      }
    }
    if (truncated) ++result.truncated_ticks;
    if (!batch.empty()) {
      switchsim::BatchOptions options;
      options.num_threads = spec_.serve_threads;
      results.resize(batch.size());
      system_->ProcessBatchInto(batch, results, options);
      packets_sent_ += batch.size();
    }

    if (spec_.enable_recovery && now + 1e-9 >= next_poll) {
      recovery_->Poll(now);
      while (next_poll <= now + 1e-9) next_poll += spec_.poll_interval_s;
    }
    if (now + 1e-9 >= next_check) {
      CheckConservation(now, result);
      while (next_check <= now + 1e-9) next_check += spec_.check_interval_s;
    }
  }

  if (schedule.active()) result.fault_fires += SumFaultFires();
  schedule.Stop();

  // Traffic-free drain: let pending backoffs finish so episodes close
  // with the registry disarmed (repairs can no longer be faulted).
  if (spec_.enable_recovery) {
    for (int i = 1; i <= spec_.drain_polls; ++i) {
      recovery_->Poll(spec_.duration_s + static_cast<double>(i) * spec_.poll_interval_s);
    }
  }
  for (auto it = active_.begin(); it != active_.end();) {
    if (recovery_->IsQuarantined(it->sfc.tenant)) {
      it = active_.erase(it);
    } else {
      ++it;
    }
  }
  CheckConservation(spec_.duration_s, result);

  result.ticks = total_ticks;
  result.packets_sent = packets_sent_;
  result.bytes_sent = bytes_sent_;
  result.total = system_->Telemetry().Total();
  result.recovery = recovery_->counters();
  result.episodes = recovery_->episodes();
  result.open_episodes = recovery_->DegradedTenants().size();
  std::vector<double> durations;
  for (const auto& episode : result.episodes) {
    if (episode.recovered) durations.push_back(episode.DurationMs());
  }
  result.recovery_p50_ms = Percentile(durations, 0.50);
  result.recovery_p99_ms = Percentile(durations, 0.99);
  result.recovery_max_ms = durations.empty()
                               ? 0.0
                               : *std::max_element(durations.begin(), durations.end());
  result.ok = result.conservation_violations == 0;
  return result;
}

}  // namespace sfp::scenario
