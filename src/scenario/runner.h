// Scenario driver: executes a ScenarioSpec against a live SfpSystem
// (docs/SCENARIOS.md).
//
// The runner owns the simulated clock. Each tick it advances the fault
// schedule, applies churn arrivals/departures, synthesizes the tick's
// offered load (every packet stamped with its simulated ingress time,
// so the finite recirculation port's virtual-time backlog behaves),
// serves it through SfpSystem::ProcessBatch, and — on the poll cadence
// — runs the RecoveryController. Conservation invariants are checked
// periodically and at the end; a violation fails the run but does not
// abort it (the report lists every violation).
//
// Determinism: with spec.serve_threads = 1 the whole run — packets,
// drops, fault firings, recovery episodes — is a pure function of
// spec.seed, which is what the bench/scn_* baselines are gated on.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "scenario/recovery.h"
#include "scenario/scenario.h"

namespace sfp::scenario {

/// Everything observable about one scenario run.
struct ScenarioResult {
  /// True when the run completed with zero conservation violations and
  /// no setup error.
  bool ok = false;
  /// Setup/conservation failure messages (capped; counts are exact).
  std::vector<std::string> errors;

  std::uint64_t ticks = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t bytes_sent = 0;
  /// Ticks whose batch hit spec.max_batch and was truncated.
  std::uint64_t truncated_ticks = 0;

  std::uint64_t tenants_admitted = 0;
  std::uint64_t tenants_departed = 0;
  std::uint64_t admit_rejects = 0;

  std::uint64_t conservation_checks = 0;
  std::uint64_t conservation_violations = 0;

  /// Total fault-point firings across every storm window.
  std::uint64_t fault_fires = 0;

  /// Final telemetry aggregate (all tenants, departed included).
  dataplane::TenantCounters total;

  RecoveryCounters recovery;
  std::vector<RecoveryEpisode> episodes;
  /// Detection-to-repair times of recovered episodes (simulated ms).
  double recovery_p50_ms = 0.0;
  double recovery_p99_ms = 0.0;
  double recovery_max_ms = 0.0;
  /// Tenants still flagged when the run (including drain polls) ended.
  std::uint64_t open_episodes = 0;
};

/// Percentile over `values` (q in [0, 1]; nearest-rank). 0 when empty.
double Percentile(std::vector<double> values, double q);

class ScenarioRunner {
 public:
  explicit ScenarioRunner(ScenarioSpec spec);

  /// Executes the scenario once. Call at most once per runner.
  ScenarioResult Run();

  core::SfpSystem& system() { return *system_; }
  const RecoveryController& recovery() const { return *recovery_; }

 private:
  struct ActiveTenant {
    dataplane::Sfc sfc;
    int passes = 1;
    /// Simulated departure time; infinity = stays for the whole run.
    double departs_s = 0.0;
    /// Stable position for drift weighting.
    int rank = 0;
  };

  /// Builds and admits one tenant; returns true when admitted.
  bool SpawnTenant(double now_s, double departs_s, Rng& rng);
  double LoadFactor(double now_s) const;
  double DriftWeight(double now_s, int rank, int population) const;
  void CheckConservation(double now_s, ScenarioResult& result);

  ScenarioSpec spec_;
  std::unique_ptr<core::SfpSystem> system_;
  std::unique_ptr<RecoveryController> recovery_;
  std::string setup_error_;

  std::vector<ActiveTenant> active_;
  dataplane::TenantId next_tenant_ = 1;
  int next_rank_ = 0;
  std::uint64_t packets_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
};

}  // namespace sfp::scenario
