#include "scenario/recovery.h"

#include <algorithm>

#include "common/logging.h"

namespace sfp::scenario {

RecoveryController::RecoveryController(core::SfpSystem& system, RecoveryOptions options)
    : system_(system), options_(options) {
  // Anchor the drift window at construction so the first Poll sees
  // only traffic served after the controller came up.
  window_ = system_.Telemetry().TakeSnapshot();
}

void RecoveryController::TrackTenant(const dataplane::Sfc& sfc, int expected_passes) {
  Tracked tracked;
  tracked.sfc = sfc;
  tracked.expected_passes = expected_passes;
  tracked_[sfc.tenant] = std::move(tracked);
}

void RecoveryController::UntrackTenant(dataplane::TenantId tenant) {
  tracked_.erase(tenant);
}

void RecoveryController::NoteLostTenants(std::span<const dataplane::TenantId> tenants,
                                         double now_s) {
  for (const dataplane::TenantId tenant : tenants) {
    const auto it = tracked_.find(tenant);
    if (it == tracked_.end() || it->second.health != Health::kHealthy) continue;
    Flag(it->second, now_s, "lost");
  }
}

void RecoveryController::Flag(Tracked& tracked, double now_s, const char* cause) {
  tracked.health = Health::kDegraded;
  tracked.detected_s = now_s;
  tracked.attempts = 0;
  tracked.backoff_s = options_.initial_backoff_s;
  tracked.next_attempt_s = now_s;  // first repair runs in the same poll
  tracked.cause = cause;
  ++counters_.detections;
}

void RecoveryController::Poll(double now_s) {
  ++counters_.polls;

  // Detection: one drift window per poll. Tenants whose series
  // restarted inside the window (purged then re-seen) report absolute
  // counters, not movement — skip signature checks for that window.
  const auto drifts = system_.Telemetry().DriftSince(window_);
  for (auto& [tenant, tracked] : tracked_) {
    if (tracked.health != Health::kHealthy) continue;
    if (now_s < tracked.cooldown_until_s) continue;

    const char* cause = nullptr;
    if (!system_.data_plane().IsAllocated(tenant)) {
      cause = "structural";
    } else {
      const auto it = std::lower_bound(
          drifts.begin(), drifts.end(), tenant,
          [](const dataplane::TelemetryCollector::TenantDrift& d, dataplane::TenantId id) {
            return d.tenant < id;
          });
      if (it != drifts.end() && it->tenant == tenant && !it->restarted &&
          it->packets >= options_.min_window_packets) {
        if (it->DropRate() > options_.drop_rate_threshold) {
          cause = "drop-spike";
        } else if (tracked.expected_passes > 1 &&
                   it->MeanPasses() <
                       static_cast<double>(tracked.expected_passes) - options_.passes_margin) {
          cause = "passes-collapse";
        }
      }
    }
    if (cause != nullptr) {
      SFP_LOG_INFO << "recovery: tenant " << tenant << " flagged (" << cause << ") at t="
                   << now_s << "s";
      Flag(tracked, now_s, cause);
    }
  }

  // Repair: every degraded tenant whose backoff has elapsed gets one
  // atomic re-provision. The call itself does not retry or sleep —
  // backoff is sim-time, spread across polls.
  for (auto& [tenant, tracked] : tracked_) {
    if (tracked.health != Health::kDegraded) continue;
    if (now_s + 1e-12 < tracked.next_attempt_s) continue;

    ++counters_.attempts;
    ++tracked.attempts;
    core::AdmitOptions once;
    once.max_attempts = 1;
    once.initial_backoff = std::chrono::microseconds{0};
    const auto result = system_.ReprovisionTenant(tracked.sfc, once);
    if (result.ok) {
      ++counters_.successes;
      episodes_.push_back({tenant, tracked.detected_s, now_s, tracked.attempts, true,
                           tracked.cause});
      tracked.health = Health::kHealthy;
      tracked.expected_passes = result.passes;
      // Escalate the holdoff when damage recurs on the heels of the
      // last repair (a storm the re-provision cannot cure): doubling
      // it caps pointless repair churn — and the quarantine risk each
      // attempt carries — for the storm's duration.
      if (tracked.detected_s <= tracked.last_repair_s + 2.0 * tracked.current_cooldown_s) {
        tracked.current_cooldown_s =
            std::min(tracked.current_cooldown_s * 2.0, options_.max_cooldown_s);
      } else {
        tracked.current_cooldown_s = options_.cooldown_s;
      }
      tracked.last_repair_s = now_s;
      tracked.cooldown_until_s = now_s + tracked.current_cooldown_s;
      continue;
    }

    ++counters_.failures;
    if (result.code == core::ReprovisionCode::kDiverged) ++counters_.diverged;
    if (tracked.attempts >= options_.max_attempts) {
      // Quarantine: stop burning attempts on a tenant that cannot be
      // repaired; release whatever it still holds so healthy tenants
      // can use the capacity. The scenario driver stops its traffic.
      ++counters_.quarantined;
      episodes_.push_back({tenant, tracked.detected_s, now_s, tracked.attempts, false,
                           tracked.cause});
      tracked.health = Health::kQuarantined;
      system_.RemoveTenant(tenant);  // false when the admission is already gone
      SFP_LOG_ERROR << "recovery: tenant " << tenant << " quarantined after "
                    << tracked.attempts << " attempts (" << result.reason << ")";
    } else {
      tracked.next_attempt_s = now_s + tracked.backoff_s;
      tracked.backoff_s = std::min(tracked.backoff_s * 2.0, options_.max_backoff_s);
    }
  }
}

bool RecoveryController::IsQuarantined(dataplane::TenantId tenant) const {
  const auto it = tracked_.find(tenant);
  return it != tracked_.end() && it->second.health == Health::kQuarantined;
}

std::vector<dataplane::TenantId> RecoveryController::QuarantinedTenants() const {
  std::vector<dataplane::TenantId> tenants;
  for (const auto& [tenant, tracked] : tracked_) {
    if (tracked.health == Health::kQuarantined) tenants.push_back(tenant);
  }
  return tenants;
}

std::vector<dataplane::TenantId> RecoveryController::DegradedTenants() const {
  std::vector<dataplane::TenantId> tenants;
  for (const auto& [tenant, tracked] : tracked_) {
    if (tracked.health == Health::kDegraded) tenants.push_back(tenant);
  }
  return tenants;
}

void RecoveryController::ExportMetrics(common::metrics::Registry& registry) const {
  registry.GetCounter("system.recover.polls").Set(counters_.polls);
  registry.GetCounter("system.recover.detections").Set(counters_.detections);
  registry.GetCounter("system.recover.attempts").Set(counters_.attempts);
  registry.GetCounter("system.recover.successes").Set(counters_.successes);
  registry.GetCounter("system.recover.failures").Set(counters_.failures);
  registry.GetCounter("system.recover.diverged").Set(counters_.diverged);
  registry.GetCounter("system.recover.quarantined").Set(counters_.quarantined);
  registry.GetCounter("system.recover.episodes").Set(episodes_.size());
}

}  // namespace sfp::scenario
