// Declarative scenario specs: multi-hour simulated operating
// conditions for the full SFP system (docs/SCENARIOS.md).
//
// A scenario is a switch configuration, an initial tenant population,
// and a script of time-windowed events over a simulated clock:
//
//   kFaultStorm    — arms a fault plan (SFP_FAULT points) for the
//                    window; overlapping storms merge deterministically
//                    (common::faultinject::FaultSchedule).
//   kFlashCrowd    — multiplies every tenant's offered load.
//   kDiurnal       — sinusoidal load factor (day/night swing).
//   kTenantChurn   — Poisson tenant arrivals with Pareto lifetimes.
//   kTrafficDrift  — gradually skews load across the tenant
//                    population (busy tenants get busier).
//
// Everything is derived from ScenarioSpec::seed and simulated time;
// with serve_threads = 1 a scenario replays byte-for-byte, which is
// what the bench/scn_* baselines are gated on.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/faultinject.h"
#include "nf/nf.h"
#include "scenario/recovery.h"
#include "switchsim/pipeline.h"

namespace sfp::scenario {

/// One time-windowed condition. Only the fields of its kind apply.
struct Event {
  enum class Kind : std::uint8_t {
    kFaultStorm = 0,
    kFlashCrowd,
    kDiurnal,
    kTenantChurn,
    kTrafficDrift,
  };

  Kind kind = Kind::kFaultStorm;
  /// Active while start_s <= now < end_s (simulated seconds).
  double start_s = 0.0;
  double end_s = 0.0;

  /// kFaultStorm: plan armed for the window.
  common::faultinject::FaultPlan plan;

  /// kFlashCrowd: load factor applied to every tenant.
  double load_multiplier = 1.0;

  /// kDiurnal: factor = max(0, 1 + amplitude * sin(2π (now-start)/period)).
  double period_s = 3600.0;
  double amplitude = 0.5;

  /// kTenantChurn: Poisson arrival rate; lifetimes ~ Pareto(shape, scale).
  double arrivals_per_s = 0.05;
  double pareto_shape = 1.5;
  double pareto_scale_s = 30.0;

  /// kTrafficDrift: by end of the window, per-tenant load factors are
  /// spread linearly over [1 - f, 1 + f] across the population (f
  /// ramps from 0 at start to drift_fraction at end), so aggregate
  /// load stays roughly flat while its distribution shifts.
  double drift_fraction = 0.5;
};

const char* EventKindName(Event::Kind kind);

/// A full scenario. Defaults give a small deterministic run; the
/// builtin catalogue fills in the interesting shapes.
struct ScenarioSpec {
  std::string name = "custom";
  std::string description;
  std::uint64_t seed = 1;

  /// Simulated horizon and driver tick.
  double duration_s = 600.0;
  double tick_s = 1.0;

  switchsim::SwitchConfig switch_config;
  /// Explicit physical layout (stage -> NF types), installed verbatim
  /// — scenarios avoid the LP solver so runs cannot degrade
  /// differently across machines. Empty = {{Firewall}, {Router}}.
  std::vector<std::vector<nf::NfType>> layout;

  /// Initial population admitted at t = 0.
  int initial_tenants = 6;
  /// Fraction of generated tenants given a folding (multi-pass) chain.
  /// Multi-pass tenants are the telemetry-visible ones (see
  /// docs/SCENARIOS.md, "Detectability boundary").
  double multi_pass_fraction = 0.75;

  /// Base offered load: packets per tenant per tick at factor 1.0.
  int packets_per_tenant_tick = 16;
  /// A tenant's packets within a tick arrive as one contiguous
  /// microburst, back-to-back at this ingress gap. Burst depth scales
  /// with offered load, so surges build recirculation backlog (and
  /// overload-drop) while steady bursts drain inside the queue bound.
  double packet_gap_ns = 100.0;
  /// Safety cap on one tick's batch (flash crowds are truncated here).
  std::size_t max_batch = 8192;

  /// Worker shards for the serve path. 1 (default) keeps per-packet
  /// fault attribution and timing byte-reproducible for bench
  /// baselines; > 1 exercises concurrency (invariants only).
  int serve_threads = 1;
  /// Serve through the per-tenant compiled-plan path (docs/COMPILER.md).
  bool use_compiled_plans = false;

  std::vector<Event> events;

  bool enable_recovery = true;
  RecoveryOptions recovery;
  /// Recovery poll cadence (simulated seconds).
  double poll_interval_s = 1.0;
  /// Extra traffic-free polls after the horizon so in-flight backoffs
  /// can finish and close their episodes.
  int drain_polls = 10;

  /// Conservation-invariant check cadence (also always run at end).
  double check_interval_s = 10.0;
};

/// The builtin catalogue (one spec per event archetype).
ScenarioSpec FailureStormScenario();
ScenarioSpec FlashCrowdScenario();
ScenarioSpec DiurnalScenario();
ScenarioSpec TenantChurnScenario();
ScenarioSpec TrafficDriftScenario();

std::vector<ScenarioSpec> BuiltinScenarios();

/// Looks up a builtin by name; false when unknown.
bool FindScenario(const std::string& name, ScenarioSpec& out);

}  // namespace sfp::scenario
