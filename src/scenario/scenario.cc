#include "scenario/scenario.h"

namespace sfp::scenario {

using common::faultinject::FaultPlan;
using common::faultinject::FaultSpec;

const char* EventKindName(Event::Kind kind) {
  switch (kind) {
    case Event::Kind::kFaultStorm: return "fault-storm";
    case Event::Kind::kFlashCrowd: return "flash-crowd";
    case Event::Kind::kDiurnal: return "diurnal";
    case Event::Kind::kTenantChurn: return "tenant-churn";
    case Event::Kind::kTrafficDrift: return "traffic-drift";
  }
  return "?";
}

namespace {

/// Shared small-switch base: two stages so out-of-order chains fold
/// (multi-pass tenants are the telemetry-visible ones), a finite
/// recirculation port so flash crowds can overload it, and modest
/// memory so churn exercises admission rejects.
ScenarioSpec Base(std::string name, std::string description) {
  ScenarioSpec spec;
  spec.name = std::move(name);
  spec.description = std::move(description);
  spec.switch_config.num_stages = 2;
  spec.switch_config.blocks_per_stage = 8;
  spec.switch_config.entries_per_block = 200;
  spec.switch_config.backplane_gbps = 400.0;
  // 40 Gbps drains a steady 16-packet microburst (~126 ns to serialize
  // an average frame vs the 100 ns ingress gap) but not a flash-crowd
  // burst six times as deep; 8 µs of queue absorbs size variance.
  spec.switch_config.recirculation_gbps = 40.0;
  spec.switch_config.recirculation_queue_ns = 8000.0;
  spec.layout = {{nf::NfType::kFirewall}, {nf::NfType::kRouter}};
  return spec;
}

Event Storm(double start_s, double end_s, std::uint64_t seed,
            std::vector<FaultSpec> faults) {
  Event event;
  event.kind = Event::Kind::kFaultStorm;
  event.start_s = start_s;
  event.end_s = end_s;
  event.plan.seed = seed;
  event.plan.faults = std::move(faults);
  return event;
}

}  // namespace

ScenarioSpec FailureStormScenario() {
  ScenarioSpec spec = Base("failure_storm",
                           "three seed-driven fault bursts: injected serve drops plus "
                           "atomic-update and rule-install faults; the recovery loop "
                           "re-provisions flagged tenants through the storms");
  spec.seed = 0xF57A11u;
  spec.duration_s = 900.0;
  spec.initial_tenants = 8;
  // Each burst drops a slice of served packets (telemetry drop-spike
  // signature) and fails a fraction of repair batches (exercising
  // sim-time backoff and, via rollback double-faults, divergence).
  // Repair-path fault rates are set with compounding in mind: one
  // re-provision batch rolls apply_op per op (x2) and install_rule /
  // add_entry per installed rule (x4-10), so even these low per-point
  // probabilities leave every repair a ~20-40% coin flip during a
  // storm. High enough to exercise backoff and the occasional
  // quarantine; low enough that five consecutive failures (the
  // quarantine bar) stay rare — a storm should degrade the fleet, not
  // execute it.
  spec.events.push_back(Storm(
      60.0, 180.0, 11,
      {FaultSpec::Probability("switchsim.pipeline.serve", 0.25),
       FaultSpec::Probability("dataplane.apply_op", 0.15),
       FaultSpec::Probability("dataplane.install_rule", 0.03)}));
  spec.events.push_back(Storm(
      330.0, 450.0, 22,
      {FaultSpec::Probability("switchsim.pipeline.serve", 0.40),
       FaultSpec::Probability("core.reprovision", 0.30),
       FaultSpec::Probability("switchsim.table.add_entry", 0.02)}));
  spec.events.push_back(Storm(
      620.0, 700.0, 33,
      {FaultSpec::EveryNth("switchsim.pipeline.serve", 3),
       FaultSpec::Probability("dataplane.apply_op", 0.15),
       FaultSpec::Probability("dataplane.install_rule", 0.03)}));
  return spec;
}

ScenarioSpec FlashCrowdScenario() {
  ScenarioSpec spec = Base("flash_crowd",
                           "two sudden load surges overload the finite recirculation "
                           "port; overload drops must stay attributed and conserved, "
                           "and the backlog must drain after each surge");
  spec.seed = 0xF1A54u;
  spec.duration_s = 900.0;
  spec.initial_tenants = 6;
  // Less recirculation headroom than the base config: the x6 surge
  // must actually overload the port (two-pass microbursts of ~100
  // packets exceed the 8 us queue at 25 Gbps; steady 16-packet bursts
  // drain).
  spec.switch_config.recirculation_gbps = 25.0;
  Event surge;
  surge.kind = Event::Kind::kFlashCrowd;
  surge.start_s = 200.0;
  surge.end_s = 320.0;
  surge.load_multiplier = 6.0;
  spec.events.push_back(surge);
  surge.start_s = 600.0;
  surge.end_s = 660.0;
  surge.load_multiplier = 10.0;
  spec.events.push_back(surge);
  // Overload drops are congestion, not damage — keep the drop-spike
  // detector from thrashing re-provisions that cannot help.
  spec.recovery.drop_rate_threshold = 0.60;
  return spec;
}

ScenarioSpec DiurnalScenario() {
  ScenarioSpec spec = Base("diurnal",
                           "two simulated hours of sinusoidal day/night load with a "
                           "small fault burst at the nightly trough");
  spec.seed = 0xD10A1u;
  spec.duration_s = 7200.0;
  spec.tick_s = 2.0;
  spec.check_interval_s = 60.0;
  spec.initial_tenants = 6;
  // At the nightly trough a 1-tick drift window holds ~6 packets —
  // below the detector's noise floor. A 10 s poll window keeps the
  // trough storm detectable without lowering the floor.
  spec.poll_interval_s = 10.0;
  Event cycle;
  cycle.kind = Event::Kind::kDiurnal;
  cycle.start_s = 0.0;
  cycle.end_s = spec.duration_s;
  cycle.period_s = 3600.0;
  cycle.amplitude = 0.6;
  spec.events.push_back(cycle);
  spec.events.push_back(Storm(
      2640.0, 2760.0, 44,
      {FaultSpec::Probability("switchsim.pipeline.serve", 0.30),
       FaultSpec::Probability("dataplane.apply_op", 0.15)}));
  return spec;
}

ScenarioSpec TenantChurnScenario() {
  ScenarioSpec spec = Base("tenant_churn",
                           "Poisson arrivals with Pareto lifetimes churn the tenant "
                           "population for half a simulated hour; admission control, "
                           "telemetry retention, and rule-entry conservation hold "
                           "throughout");
  spec.seed = 0xC4A54u;
  spec.duration_s = 1800.0;
  spec.initial_tenants = 4;
  Event churn;
  churn.kind = Event::Kind::kTenantChurn;
  churn.start_s = 0.0;
  churn.end_s = spec.duration_s;
  churn.arrivals_per_s = 0.08;
  churn.pareto_shape = 1.5;
  churn.pareto_scale_s = 60.0;
  spec.events.push_back(churn);
  spec.events.push_back(Storm(
      900.0, 1000.0, 55,
      {FaultSpec::Probability("dataplane.install_rule", 0.10),
       FaultSpec::Probability("switchsim.table.add_entry", 0.03),
       FaultSpec::Probability("switchsim.pipeline.serve", 0.15)}));
  return spec;
}

ScenarioSpec TrafficDriftScenario() {
  ScenarioSpec spec = Base("traffic_drift",
                           "per-tenant load drifts apart over the run while a mid-run "
                           "fault burst hits; drift alone must not trip the recovery "
                           "loop's damage signatures");
  spec.seed = 0xD41F7u;
  spec.duration_s = 900.0;
  spec.initial_tenants = 8;
  Event drift;
  drift.kind = Event::Kind::kTrafficDrift;
  drift.start_s = 100.0;
  drift.end_s = 800.0;
  drift.drift_fraction = 0.7;
  spec.events.push_back(drift);
  spec.events.push_back(Storm(
      400.0, 480.0, 66,
      {FaultSpec::Probability("switchsim.pipeline.serve", 0.30),
       FaultSpec::Probability("dataplane.apply_op", 0.20)}));
  return spec;
}

std::vector<ScenarioSpec> BuiltinScenarios() {
  return {FailureStormScenario(), FlashCrowdScenario(), DiurnalScenario(),
          TenantChurnScenario(), TrafficDriftScenario()};
}

bool FindScenario(const std::string& name, ScenarioSpec& out) {
  for (auto& spec : BuiltinScenarios()) {
    if (spec.name == name) {
      out = std::move(spec);
      return true;
    }
  }
  return false;
}

}  // namespace sfp::scenario
