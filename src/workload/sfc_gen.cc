#include "workload/sfc_gen.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace sfp::workload {

controlplane::PlacementInstance GenerateInstance(const DatasetParams& params,
                                                 const controlplane::SwitchResources& sw,
                                                 Rng& rng) {
  SFP_CHECK_GT(params.num_sfcs, 0);
  SFP_CHECK_GT(params.num_types, 0);
  controlplane::PlacementInstance instance;
  instance.sw = sw;
  instance.num_types = params.num_types;

  std::vector<int> type_pool(static_cast<std::size_t>(params.num_types));
  std::iota(type_pool.begin(), type_pool.end(), 0);

  for (int l = 0; l < params.num_sfcs; ++l) {
    controlplane::SfcSpec sfc;
    const int length =
        params.fixed_chain_len > 0
            ? params.fixed_chain_len
            : static_cast<int>(rng.UniformInt(params.min_chain_len, params.max_chain_len));

    if (params.distinct_types_in_chain && length <= params.num_types) {
      rng.Shuffle(type_pool);
      for (int j = 0; j < length; ++j) {
        sfc.boxes.push_back({type_pool[static_cast<std::size_t>(j)],
                             rng.UniformInt(params.min_rules, params.max_rules)});
      }
    } else {
      for (int j = 0; j < length; ++j) {
        sfc.boxes.push_back({static_cast<int>(rng.UniformInt(0, params.num_types - 1)),
                             rng.UniformInt(params.min_rules, params.max_rules)});
      }
    }

    sfc.bandwidth_gbps = std::min(
        params.bw_cap_gbps, rng.Pareto(params.bw_pareto_shape, params.bw_pareto_scale_gbps));
    instance.sfcs.push_back(std::move(sfc));
  }
  instance.CheckValid();
  return instance;
}

dataplane::Sfc GenerateConcreteSfc(dataplane::TenantId tenant, int chain_len,
                                   double bandwidth_gbps, Rng& rng, int rules_per_nf) {
  SFP_CHECK_GT(chain_len, 0);
  dataplane::Sfc sfc;
  sfc.tenant = tenant;
  sfc.bandwidth_gbps = bandwidth_gbps;

  std::vector<int> types(static_cast<std::size_t>(nf::kNumNfTypes));
  std::iota(types.begin(), types.end(), 0);
  rng.Shuffle(types);

  for (int j = 0; j < chain_len; ++j) {
    const auto type = static_cast<nf::NfType>(
        j < nf::kNumNfTypes ? types[static_cast<std::size_t>(j)]
                            : static_cast<int>(rng.UniformInt(0, nf::kNumNfTypes - 1)));
    auto nf_impl = nf::MakeNf(type);
    nf::NfConfig config;
    config.type = type;
    const int count = rules_per_nf > 0
                          ? rules_per_nf
                          : static_cast<int>(rng.UniformInt(100, 2100)) / 20;  // scaled
    config.rules = nf_impl->GenerateRules(rng, count);
    sfc.chain.push_back(std::move(config));
  }
  return sfc;
}

}  // namespace sfp::workload
