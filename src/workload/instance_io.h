// Text serialization for placement instances.
//
// Line-oriented format, '#' comments allowed:
//
//   switch <stages> <blocks_per_stage> <entries_per_block> <rule_width> <capacity_gbps>
//   types <I>
//   sfc <bandwidth_gbps> <type:rules[:state]> <type:rules[:state]> ...
//
// Used by the sfpctl tool so datasets can be generated once, shared,
// and re-solved with different algorithms.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "controlplane/instance.h"

namespace sfp::workload {

/// Writes the instance; returns false on I/O failure.
bool WriteInstance(const controlplane::PlacementInstance& instance, std::ostream& os);

/// Parses an instance; returns nullopt with no partial state on any
/// syntax or range error.
std::optional<controlplane::PlacementInstance> ReadInstance(std::istream& is);

/// File-based convenience wrappers.
bool SaveInstance(const controlplane::PlacementInstance& instance, const std::string& path);
std::optional<controlplane::PlacementInstance> LoadInstance(const std::string& path);

}  // namespace sfp::workload
