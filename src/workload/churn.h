// Pareto-lifetime tenant churn traces (online admission at scale).
//
// Arrivals form a Poisson process whose rate lambda = target_population
// / mean_lifetime keeps ~target_population tenants live in steady
// state (Little's law); lifetimes are Pareto(shape, scale) with the
// scale chosen so the mean equals mean_lifetime (shape > 1), giving
// the long-tailed session lengths real tenant workloads show: most
// tenants churn quickly while a heavy tail stays pinned for the whole
// trace. Each arrival carries a synthetic TenantFootprint drawn like
// the §VI-A dataset — chain length U[3, 7], per-NF entries
// U[100, 2100], per-SFC bandwidth Pareto(1.6, 3.0) capped at one port
// — folded onto the physical stages from a random offset so long
// chains wrap around the pipeline (recirculation passes charge the
// eq. 26 backplane row multiple times).
//
// The trace is the shared input of bench/ext3_admission_churn, the
// AdmissionChurnTest differential suite and `sfpctl churn`: all three
// replay the identical event stream for a given (options, seed).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "controlplane/admission_lp.h"

namespace sfp::workload {

/// Knobs for one churn trace. Defaults follow the §VI-A dataset shape.
struct ChurnOptions {
  /// Steady-state live-tenant target (sets the Poisson arrival rate).
  std::int64_t target_population = 1000;
  /// Total arrival events to generate.
  std::int64_t num_arrivals = 5000;
  /// Mean tenant lifetime in trace seconds.
  double mean_lifetime = 100.0;
  /// Lifetime tail index (> 1 so the mean exists). 1.5 gives the
  /// classic heavy tail: ~10% of tenants hold ~50% of tenant-seconds.
  double lifetime_pareto_shape = 1.5;
  /// Departures scheduled after the final arrival are dropped so the
  /// trace ends at steady-state population (the p99 measurement
  /// window); set false to drain the population to zero instead.
  bool truncate_at_last_arrival = true;

  /// Footprint synthesis (see sfc_gen.h DatasetParams for provenance).
  int num_stages = 12;
  int min_chain_len = 3;
  int max_chain_len = 7;
  std::int64_t min_rules = 100;
  std::int64_t max_rules = 2100;
  double bw_pareto_shape = 1.6;
  double bw_pareto_scale_gbps = 3.0;
  double bw_cap_gbps = 100.0;
};

/// One arrival or departure. Departures reference the tenant of a
/// prior arrival and carry an empty footprint.
struct ChurnEvent {
  enum class Kind { kArrive, kDepart };
  double time = 0.0;
  Kind kind = Kind::kArrive;
  controlplane::IncrementalAdmissionLp::TenantKey tenant = 0;
  controlplane::TenantFootprint footprint;
};

/// Draws one tenant footprint from the dataset distributions.
controlplane::TenantFootprint SyntheticFootprint(const ChurnOptions& options, Rng& rng);

/// Generates a time-sorted arrival/departure stream. Tenant keys are
/// the arrival index (0, 1, ...); every departure follows its arrival.
std::vector<ChurnEvent> GenerateChurnTrace(const ChurnOptions& options, Rng& rng);

/// The admission LP sized for `options`: stage rows at
/// `stage_entry_capacity` entries each plus an eq. 26 backplane row.
controlplane::AdmissionLpOptions ChurnLpOptions(const ChurnOptions& options,
                                                double stage_entry_capacity,
                                                double backplane_gbps);

}  // namespace sfp::workload
