#include "workload/churn.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace sfp::workload {

controlplane::TenantFootprint SyntheticFootprint(const ChurnOptions& options, Rng& rng) {
  SFP_CHECK_GT(options.num_stages, 0);
  SFP_CHECK_LE(options.min_chain_len, options.max_chain_len);
  controlplane::TenantFootprint footprint;
  footprint.bandwidth_gbps =
      std::min(rng.Pareto(options.bw_pareto_shape, options.bw_pareto_scale_gbps),
               options.bw_cap_gbps);
  const int chain_len =
      static_cast<int>(rng.UniformInt(options.min_chain_len, options.max_chain_len));
  const int start = static_cast<int>(rng.UniformInt(0, options.num_stages - 1));
  // Fold the chain onto consecutive stages from a random offset; a wrap
  // past the last stage is one recirculation pass (charges eq. 26 again).
  footprint.passes = 1 + (start + chain_len - 1) / options.num_stages;
  std::vector<double> per_stage(static_cast<std::size_t>(options.num_stages), 0.0);
  for (int i = 0; i < chain_len; ++i) {
    const int stage = (start + i) % options.num_stages;
    per_stage[static_cast<std::size_t>(stage)] +=
        static_cast<double>(rng.UniformInt(options.min_rules, options.max_rules));
  }
  for (int s = 0; s < options.num_stages; ++s) {
    if (per_stage[static_cast<std::size_t>(s)] != 0.0) {
      footprint.stage_entries.emplace_back(s, per_stage[static_cast<std::size_t>(s)]);
    }
  }
  return footprint;
}

std::vector<ChurnEvent> GenerateChurnTrace(const ChurnOptions& options, Rng& rng) {
  SFP_CHECK_GT(options.target_population, 0);
  SFP_CHECK_GT(options.num_arrivals, 0);
  SFP_CHECK_GT(options.mean_lifetime, 0.0);
  SFP_CHECK_GT(options.lifetime_pareto_shape, 1.0);

  // Pareto mean = scale * shape / (shape - 1); invert for the scale
  // that yields mean_lifetime.
  const double lifetime_scale = options.mean_lifetime *
                                (options.lifetime_pareto_shape - 1.0) /
                                options.lifetime_pareto_shape;
  const double mean_interarrival =
      options.mean_lifetime / static_cast<double>(options.target_population);

  std::vector<ChurnEvent> events;
  events.reserve(static_cast<std::size_t>(2 * options.num_arrivals));
  double clock = 0.0;
  for (std::int64_t t = 0; t < options.num_arrivals; ++t) {
    clock += rng.Exponential(mean_interarrival);
    ChurnEvent arrive;
    arrive.time = clock;
    arrive.kind = ChurnEvent::Kind::kArrive;
    arrive.tenant = static_cast<controlplane::IncrementalAdmissionLp::TenantKey>(t);
    arrive.footprint = SyntheticFootprint(options, rng);
    events.push_back(std::move(arrive));

    ChurnEvent depart;
    depart.time = clock + rng.Pareto(options.lifetime_pareto_shape, lifetime_scale);
    depart.kind = ChurnEvent::Kind::kDepart;
    depart.tenant = static_cast<controlplane::IncrementalAdmissionLp::TenantKey>(t);
    events.push_back(std::move(depart));
  }
  const double horizon = clock;
  if (options.truncate_at_last_arrival) {
    std::erase_if(events, [horizon](const ChurnEvent& e) {
      return e.kind == ChurnEvent::Kind::kDepart && e.time > horizon;
    });
  }
  // Deterministic replay order: exact time ties (measure-zero for
  // continuous draws, but belt and braces) break by tenant then kind.
  std::sort(events.begin(), events.end(), [](const ChurnEvent& a, const ChurnEvent& b) {
    if (a.time != b.time) return a.time < b.time;
    if (a.tenant != b.tenant) return a.tenant < b.tenant;
    return a.kind < b.kind;
  });
  return events;
}

controlplane::AdmissionLpOptions ChurnLpOptions(const ChurnOptions& options,
                                                double stage_entry_capacity,
                                                double backplane_gbps) {
  controlplane::AdmissionLpOptions lp;
  lp.stage_capacity.assign(static_cast<std::size_t>(options.num_stages),
                           stage_entry_capacity);
  lp.backplane_gbps = backplane_gbps;
  return lp;
}

}  // namespace sfp::workload
