#include "workload/traffic.h"

#include "common/check.h"

namespace sfp::workload {
namespace {

/// The canonical flow -> packet mapping shared by GenerateFlows and
/// TrafficSource: tenant-tagged TCP to the virtual service VIP, one
/// source address + port per flow index.
net::Packet SynthesizePacket(std::uint16_t tenant, int flow, int frame_bytes) {
  const auto src = net::Ipv4Address::Of(
      10, 1, static_cast<std::uint8_t>(flow >> 8), static_cast<std::uint8_t>(flow & 0xFF));
  const auto dst = net::Ipv4Address::Of(10, 0, 0, 100);
  const auto sport = static_cast<std::uint16_t>(1024 + flow % 50000);
  return net::MakeTcpPacket(tenant, src, dst, sport, 80,
                            static_cast<std::uint32_t>(frame_bytes));
}

}  // namespace

PacketSizeProfile::PacketSizeProfile(double small_fraction, double medium_fraction)
    : small_fraction_(small_fraction), medium_fraction_(medium_fraction) {
  SFP_CHECK_GE(small_fraction, 0.0);
  SFP_CHECK_GE(medium_fraction, 0.0);
  SFP_CHECK_LE(small_fraction + medium_fraction, 1.0);
}

int PacketSizeProfile::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  if (u < small_fraction_) return static_cast<int>(rng.UniformInt(64, 200));
  if (u < small_fraction_ + medium_fraction_) return static_cast<int>(rng.UniformInt(201, 1399));
  return static_cast<int>(rng.UniformInt(1400, 1500));
}

double PacketSizeProfile::MeanBytes() const {
  const double large_fraction = 1.0 - small_fraction_ - medium_fraction_;
  return small_fraction_ * (64 + 200) / 2.0 + medium_fraction_ * (201 + 1399) / 2.0 +
         large_fraction * (1400 + 1500) / 2.0;
}

std::vector<net::Packet> GenerateFlows(std::uint16_t tenant, int num_flows, int count,
                                       const PacketSizeProfile& profile, Rng& rng) {
  SFP_CHECK_GT(num_flows, 0);
  std::vector<net::Packet> packets;
  packets.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const int flow = static_cast<int>(rng.UniformInt(0, num_flows - 1));
    const int size = profile.Sample(rng);
    packets.push_back(SynthesizePacket(tenant, flow, size));
  }
  return packets;
}

TrafficSource::TrafficSource(const TrafficSpec& spec, std::uint64_t seed)
    : spec_(spec), seed_(seed), rng_(seed) {
  SFP_CHECK_GT(spec.num_flows, 0);
}

net::Packet TrafficSource::Next() {
  // Draw order (flow, then size) matches GenerateFlows, so a random
  // source with the same seed reproduces its stream exactly.
  int flow;
  if (spec_.round_robin_flows) {
    flow = next_flow_;
    next_flow_ = (next_flow_ + 1) % spec_.num_flows;
  } else {
    flow = static_cast<int>(rng_.UniformInt(0, spec_.num_flows - 1));
  }
  const int size =
      spec_.frame_bytes > 0 ? spec_.frame_bytes : spec_.profile.Sample(rng_);
  ++generated_;
  return SynthesizePacket(spec_.tenant, flow, size);
}

std::size_t TrafficSource::Refill(PacketBatch& batch, std::size_t count) {
  batch.packets.resize(count);
  for (std::size_t i = 0; i < count; ++i) batch.packets[i] = Next();
  return count;
}

void TrafficSource::Reset() {
  rng_ = Rng(seed_);
  generated_ = 0;
  next_flow_ = 0;
}

}  // namespace sfp::workload
