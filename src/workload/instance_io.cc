#include "workload/instance_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace sfp::workload {

bool WriteInstance(const controlplane::PlacementInstance& instance, std::ostream& os) {
  // Full round-trip precision for the bandwidth doubles.
  os << std::setprecision(17);
  os << "# SFP placement instance\n";
  os << "switch " << instance.sw.stages << " " << instance.sw.blocks_per_stage << " "
     << instance.sw.entries_per_block << " " << instance.sw.rule_width << " "
     << instance.sw.capacity_gbps << "\n";
  os << "types " << instance.num_types << "\n";
  for (const auto& sfc : instance.sfcs) {
    os << "sfc " << sfc.bandwidth_gbps;
    for (const auto& box : sfc.boxes) {
      os << " " << box.type << ":" << box.rules;
      if (box.state_entries > 0) os << ":" << box.state_entries;
    }
    os << "\n";
  }
  return static_cast<bool>(os);
}

std::optional<controlplane::PlacementInstance> ReadInstance(std::istream& is) {
  controlplane::PlacementInstance instance;
  bool saw_switch = false;
  bool saw_types = false;
  std::string line;
  while (std::getline(is, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream tokens(line);
    std::string keyword;
    if (!(tokens >> keyword)) continue;  // blank line

    if (keyword == "switch") {
      if (!(tokens >> instance.sw.stages >> instance.sw.blocks_per_stage >>
            instance.sw.entries_per_block >> instance.sw.rule_width >>
            instance.sw.capacity_gbps)) {
        return std::nullopt;
      }
      if (instance.sw.stages <= 0 || instance.sw.blocks_per_stage <= 0 ||
          instance.sw.entries_per_block <= 0 || instance.sw.rule_width <= 0) {
        return std::nullopt;
      }
      saw_switch = true;
    } else if (keyword == "types") {
      if (!(tokens >> instance.num_types) || instance.num_types <= 0) return std::nullopt;
      saw_types = true;
    } else if (keyword == "sfc") {
      controlplane::SfcSpec sfc;
      if (!(tokens >> sfc.bandwidth_gbps) || sfc.bandwidth_gbps < 0) return std::nullopt;
      std::string box_text;
      while (tokens >> box_text) {
        controlplane::NfBox box;
        char colon1 = 0, colon2 = 0;
        std::istringstream box_tokens(box_text);
        if (!(box_tokens >> box.type >> colon1 >> box.rules) || colon1 != ':') {
          return std::nullopt;
        }
        if (box_tokens >> colon2 >> box.state_entries) {
          if (colon2 != ':') return std::nullopt;
        }
        if (box.type < 0 || box.rules < 0 || box.state_entries < 0) return std::nullopt;
        sfc.boxes.push_back(box);
      }
      if (sfc.boxes.empty()) return std::nullopt;
      instance.sfcs.push_back(std::move(sfc));
    } else {
      return std::nullopt;  // unknown keyword
    }
  }
  if (!saw_switch || !saw_types) return std::nullopt;
  for (const auto& sfc : instance.sfcs) {
    for (const auto& box : sfc.boxes) {
      if (box.type >= instance.num_types) return std::nullopt;
    }
  }
  return instance;
}

bool SaveInstance(const controlplane::PlacementInstance& instance, const std::string& path) {
  std::ofstream os(path);
  return os && WriteInstance(instance, os);
}

std::optional<controlplane::PlacementInstance> LoadInstance(const std::string& path) {
  std::ifstream is(path);
  if (!is) return std::nullopt;
  return ReadInstance(is);
}

}  // namespace sfp::workload
