// Traffic synthesis: packet-size mixture and flow generation.
//
// The evaluation sends traffic with "packet size varying from 64 to
// 1500 Bytes that cover most packet size [27]" (Benson et al., IMC'10).
// IMC'10 reports a strongly bimodal datacenter size distribution —
// most packets are either small (<200 B, ACK/control) or near-MTU.
// PacketSizeProfile reproduces that mixture; fixed sizes are used for
// the Fig. 4/5 sweeps.
//
// Two generation styles are offered:
//  - GenerateFlows materializes a whole trace as a vector (convenient
//    for tests and equivalence checks);
//  - TrafficSource streams the same kind of traffic into a reusable
//    PacketBatch, so long benchmark runs never hold more than one
//    batch in memory and — because net::Packet owns no heap data —
//    refills are allocation-free once the batch vector has grown.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/rng.h"
#include "net/packet.h"

namespace sfp::workload {

/// Bimodal packet-size sampler (IMC'10-style).
class PacketSizeProfile {
 public:
  /// Default mixture: 45% small (64..200 B), 15% medium (201..1399 B),
  /// 40% near-MTU (1400..1500 B).
  PacketSizeProfile() = default;
  PacketSizeProfile(double small_fraction, double medium_fraction);

  /// Draws one frame size in bytes.
  int Sample(Rng& rng) const;

  /// Mean frame size of the mixture (analytic).
  double MeanBytes() const;

 private:
  double small_fraction_ = 0.45;
  double medium_fraction_ = 0.15;
};

/// Generates `count` packets for `tenant` spread over `num_flows`
/// distinct 5-tuples, with frame sizes drawn from `profile`. The
/// output vector is reserved up front (one allocation).
std::vector<net::Packet> GenerateFlows(std::uint16_t tenant, int num_flows, int count,
                                       const PacketSizeProfile& profile, Rng& rng);

/// Reusable packet buffer for TrafficSource::Refill. Refills assign
/// packets in place; keep one batch alive across a run and the steady
/// state never touches the heap.
struct PacketBatch {
  std::vector<net::Packet> packets;

  std::size_t size() const { return packets.size(); }
  std::span<const net::Packet> View() const { return packets; }
};

/// What a TrafficSource emits.
struct TrafficSpec {
  std::uint16_t tenant = 1;
  /// Distinct 5-tuples the stream cycles/samples over (>= 1).
  int num_flows = 1;
  /// > 0: every frame is exactly this size; <= 0: sizes are drawn from
  /// `profile`.
  int frame_bytes = 0;
  /// true: flows advance round-robin (deterministic probe mixes);
  /// false: each packet picks a uniform-random flow (GenerateFlows
  /// semantics).
  bool round_robin_flows = false;
  PacketSizeProfile profile;
};

/// Deterministic streaming packet generator. Two sources constructed
/// with the same spec and seed emit identical streams, so a scalar
/// reference run and a batched run can each stream their own copy and
/// still see the very same packets.
class TrafficSource {
 public:
  explicit TrafficSource(const TrafficSpec& spec, std::uint64_t seed = 2022);

  /// Next packet of the stream (by value; net::Packet is heap-free).
  net::Packet Next();

  /// Overwrites batch.packets[0..count) in place with the next `count`
  /// packets and returns `count`. The stream is infinite. The batch
  /// vector is resized to `count`; with a constant `count` only the
  /// first call allocates.
  std::size_t Refill(PacketBatch& batch, std::size_t count);

  /// Restarts the stream from the beginning (same seed).
  void Reset();

  /// Packets emitted since construction/Reset.
  std::uint64_t generated() const { return generated_; }

  const TrafficSpec& spec() const { return spec_; }

 private:
  TrafficSpec spec_;
  std::uint64_t seed_;
  Rng rng_;
  std::uint64_t generated_ = 0;
  int next_flow_ = 0;  // round-robin cursor
};

}  // namespace sfp::workload
