// Traffic synthesis: packet-size mixture and flow generation.
//
// The evaluation sends traffic with "packet size varying from 64 to
// 1500 Bytes that cover most packet size [27]" (Benson et al., IMC'10).
// IMC'10 reports a strongly bimodal datacenter size distribution —
// most packets are either small (<200 B, ACK/control) or near-MTU.
// PacketSizeProfile reproduces that mixture; fixed sizes are used for
// the Fig. 4/5 sweeps.
#pragma once

#include <vector>

#include "common/rng.h"
#include "net/packet.h"

namespace sfp::workload {

/// Bimodal packet-size sampler (IMC'10-style).
class PacketSizeProfile {
 public:
  /// Default mixture: 45% small (64..200 B), 15% medium (201..1399 B),
  /// 40% near-MTU (1400..1500 B).
  PacketSizeProfile() = default;
  PacketSizeProfile(double small_fraction, double medium_fraction);

  /// Draws one frame size in bytes.
  int Sample(Rng& rng) const;

  /// Mean frame size of the mixture (analytic).
  double MeanBytes() const;

 private:
  double small_fraction_ = 0.45;
  double medium_fraction_ = 0.15;
};

/// Generates `count` packets for `tenant` spread over `num_flows`
/// distinct 5-tuples, with frame sizes drawn from `profile`.
std::vector<net::Packet> GenerateFlows(std::uint16_t tenant, int num_flows, int count,
                                       const PacketSizeProfile& profile, Rng& rng);

}  // namespace sfp::workload
