// Synthetic SFC dataset generation (§VI-A).
//
// "Each SFC randomly chooses different NFs to compose the chain, and
//  the number of rules for each NF uniformly ranges from 100 to 2100;
//  the bandwidth requirement of each NF follows the long-tail
//  distribution."
//
// Two flavours are produced: abstract PlacementInstances for the
// control-plane experiments (types are indices 0..I-1) and concrete
// dataplane::Sfc objects (real NF rules) for end-to-end runs.
#pragma once

#include "common/rng.h"
#include "controlplane/instance.h"
#include "dataplane/sfc.h"

namespace sfp::workload {

/// Knobs matching the paper's dataset description.
struct DatasetParams {
  int num_sfcs = 20;        // L
  int num_types = 10;       // I
  /// Chain length is uniform in [min, max] (avg 5 with 3..7); a
  /// positive fixed_chain_len overrides both (Fig. 7 uses length 8).
  int min_chain_len = 3;
  int max_chain_len = 7;
  int fixed_chain_len = 0;
  /// Rules per NF ~ U[min_rules, max_rules].
  std::int64_t min_rules = 100;
  std::int64_t max_rules = 2100;
  /// Per-SFC bandwidth ~ Pareto(shape, scale), capped at one port.
  double bw_pareto_shape = 1.6;
  double bw_pareto_scale_gbps = 3.0;
  double bw_cap_gbps = 100.0;
  /// Chains avoid repeating an NF type when the universe allows it.
  bool distinct_types_in_chain = true;
};

/// Generates an abstract control-plane instance.
controlplane::PlacementInstance GenerateInstance(const DatasetParams& params,
                                                 const controlplane::SwitchResources& sw,
                                                 Rng& rng);

/// Generates one concrete tenant SFC over the real NF library. The
/// chain types are drawn from the library's kNumNfTypes; `rules_per_nf`
/// rules are synthesized per NF (<=0 draws U[100, 2100] like the
/// abstract dataset, scaled down by `rule_scale` to keep end-to-end
/// tests fast).
dataplane::Sfc GenerateConcreteSfc(dataplane::TenantId tenant, int chain_len,
                                   double bandwidth_gbps, Rng& rng, int rules_per_nf = -1);

}  // namespace sfp::workload
