// Minimal discrete-event simulation engine.
//
// Used by the latency-distribution experiments and examples: packet
// sources schedule arrivals; switch/server components process them and
// schedule completions. Events fire in timestamp order; ties break in
// schedule order (FIFO), which keeps runs deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace sfp::sim {

/// Simulated time in nanoseconds.
using TimeNs = double;

/// Event callback.
using EventFn = std::function<void()>;

/// The event loop.
class Simulator {
 public:
  /// Schedules `fn` at absolute time `at` (>= now).
  void ScheduleAt(TimeNs at, EventFn fn);

  /// Schedules `fn` after `delay` from now.
  void ScheduleAfter(TimeNs delay, EventFn fn) { ScheduleAt(now_ + delay, std::move(fn)); }

  /// Runs until the queue drains or `until` (simulated) is reached.
  /// Returns the number of events executed.
  std::size_t Run(TimeNs until = -1.0);

  /// Current simulated time.
  TimeNs Now() const { return now_; }

  /// Pending event count.
  std::size_t Pending() const { return queue_.size(); }

 private:
  struct Event {
    TimeNs at;
    std::uint64_t seq;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;  // FIFO among ties
    }
  };
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimeNs now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

/// Online mean/min/max/percentile-ish accumulator for latencies.
class LatencyStats {
 public:
  void Add(double value_ns);
  double Mean() const { return count_ ? sum_ / count_ : 0.0; }
  double Min() const { return count_ ? min_ : 0.0; }
  double Max() const { return count_ ? max_ : 0.0; }
  std::size_t Count() const { return count_; }
  /// Exact percentile over the retained samples (all samples retained).
  double Percentile(double p) const;

 private:
  std::vector<double> samples_;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace sfp::sim
