#include "sim/event_sim.h"

#include <algorithm>
#include <cmath>

namespace sfp::sim {

void Simulator::ScheduleAt(TimeNs at, EventFn fn) {
  SFP_CHECK_GE(at, now_);
  queue_.push(Event{at, next_seq_++, std::move(fn)});
}

std::size_t Simulator::Run(TimeNs until) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    if (until >= 0.0 && queue_.top().at > until) {
      now_ = until;  // future events stay queued for the next Run()
      return executed;
    }
    // priority_queue::top is const; we need to move the callback out.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = event.at;
    event.fn();
    ++executed;
  }
  return executed;
}

void LatencyStats::Add(double value_ns) {
  samples_.push_back(value_ns);
  sum_ += value_ns;
  if (count_ == 0) {
    min_ = max_ = value_ns;
  } else {
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
  }
  ++count_;
}

double LatencyStats::Percentile(double p) const {
  SFP_CHECK_GE(p, 0.0);
  SFP_CHECK_LE(p, 100.0);
  if (samples_.empty()) return 0.0;
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * (static_cast<double>(sorted.size()) - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace sfp::sim
