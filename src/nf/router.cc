#include "nf/router.h"

#include "common/check.h"

namespace sfp::nf {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

std::vector<MatchFieldSpec> Router::KeySpec() const {
  return {{FieldId::kDstIp, MatchKind::kLpm}};
}

void Router::BindActions(switchsim::MatchActionTable& table) {
  RegisterWithRecVariant(
      table, "route",
      [](net::Packet& packet, switchsim::PacketMeta& meta, const switchsim::ActionArgs& args) {
        SFP_CHECK_EQ(args.size(), 1u);
        meta.egress_port = static_cast<std::int32_t>(args[0]);
        if (packet.ipv4) {
          if (packet.ipv4->ttl == 0 || --packet.ipv4->ttl == 0) {
            meta.dropped = true;
          }
        }
      });
}

NfRule Router::Route(std::uint32_t prefix, int prefix_len, std::int32_t egress_port) {
  NfRule rule;
  rule.matches = {FieldMatch::Lpm(prefix, prefix_len)};
  rule.action = "route";
  rule.args = {static_cast<std::uint64_t>(egress_port)};
  return rule;
}

std::vector<NfRule> Router::GenerateRules(Rng& rng, int count) const {
  std::vector<NfRule> rules;
  rules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto prefix = static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFF)) << 16;
    const int len = static_cast<int>(rng.UniformInt(8, 24));
    rules.push_back(Route(prefix, len, static_cast<std::int32_t>(rng.UniformInt(0, 31))));
  }
  return rules;
}

switchsim::compiler::ActionTraits Router::TraitsOf(const std::string& action) const {
  using switchsim::compiler::ActionTraits;
  if (action == "route") return ActionTraits::Route();
  return ActionTraits::Opaque();
}

}  // namespace sfp::nf
