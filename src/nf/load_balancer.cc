#include "nf/load_balancer.h"

#include "common/check.h"

namespace sfp::nf {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

std::vector<MatchFieldSpec> LoadBalancer::KeySpec() const {
  return {
      {FieldId::kDstIp, MatchKind::kExact},
      {FieldId::kDstPort, MatchKind::kExact},
  };
}

void LoadBalancer::BindActions(switchsim::MatchActionTable& table) {
  RegisterWithRecVariant(
      table, "set_backend",
      [](net::Packet& packet, switchsim::PacketMeta& meta, const switchsim::ActionArgs& args) {
        SFP_CHECK_EQ(args.size(), 1u);
        if (packet.ipv4) packet.ipv4->dst.value = static_cast<std::uint32_t>(args[0]);
        meta.scratch = args[0];
      });
  RegisterWithRecVariant(
      table, "pool_select",
      [this](net::Packet& packet, switchsim::PacketMeta& meta,
             const switchsim::ActionArgs& args) {
        SFP_CHECK_EQ(args.size(), 1u);
        const auto& pool = pools_[static_cast<std::size_t>(args[0])];
        SFP_CHECK(!pool.empty());
        const std::uint64_t hash = packet.Tuple().Hash();
        const net::Ipv4Address dip = pool[hash % pool.size()];
        if (packet.ipv4) packet.ipv4->dst = dip;
        meta.scratch = dip.value;
      });
}

std::uint64_t LoadBalancer::AddPool(std::vector<net::Ipv4Address> backends) {
  SFP_CHECK(!backends.empty());
  pools_.push_back(std::move(backends));
  return pools_.size() - 1;
}

NfRule LoadBalancer::SetBackend(net::Ipv4Address vip, std::uint16_t vport,
                                net::Ipv4Address dip) {
  NfRule rule;
  rule.matches = {FieldMatch::Exact(vip.value), FieldMatch::Exact(vport)};
  rule.action = "set_backend";
  rule.args = {dip.value};
  // Explicit rules outrank hash fallback ('tab_lb' is consulted first).
  rule.priority = 10;
  return rule;
}

NfRule LoadBalancer::PoolSelect(net::Ipv4Address vip, std::uint16_t vport,
                                std::uint64_t pool_id) {
  NfRule rule;
  rule.matches = {FieldMatch::Exact(vip.value), FieldMatch::Exact(vport)};
  rule.action = "pool_select";
  rule.args = {pool_id};
  rule.priority = 5;
  return rule;
}

std::vector<NfRule> LoadBalancer::GenerateRules(Rng& rng, int count) const {
  std::vector<NfRule> rules;
  rules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto vip = net::Ipv4Address::Of(
        10, 0, static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
        static_cast<std::uint8_t>(rng.UniformInt(1, 254)));
    const auto vport = static_cast<std::uint16_t>(rng.UniformInt(80, 9000));
    const auto dip = net::Ipv4Address::Of(
        192, 168, static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
        static_cast<std::uint8_t>(rng.UniformInt(1, 254)));
    rules.push_back(SetBackend(vip, vport, dip));
  }
  return rules;
}

switchsim::compiler::ActionTraits LoadBalancer::TraitsOf(const std::string& action) const {
  using switchsim::compiler::ActionTraits;
  using switchsim::FieldId;
  using switchsim::compiler::FieldBit;
  if (action == "set_backend") return ActionTraits::SetBackend();
  // pool_select hashes the 5-tuple into this instance's pools, so it
  // stays an opaque call — but its effects are known, which keeps it
  // fusable and packable: it reads the hash inputs, rewrites the
  // destination (and scratch), and the pool table itself is
  // configuration, not per-packet state.
  if (action == "pool_select") {
    return ActionTraits::Opaque(
        FieldBit(FieldId::kDstIp) | switchsim::compiler::kEffectScratch,
        /*may_drop=*/false,
        FieldBit(FieldId::kSrcIp) | FieldBit(FieldId::kDstIp) |
            FieldBit(FieldId::kSrcPort) | FieldBit(FieldId::kDstPort) |
            FieldBit(FieldId::kIpProto),
        /*stateful=*/false);
  }
  return ActionTraits::Opaque();
}

}  // namespace sfp::nf
