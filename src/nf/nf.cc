#include "nf/nf.h"

#include "common/check.h"
#include "nf/classifier.h"
#include "nf/firewall.h"
#include "nf/load_balancer.h"
#include "nf/nat.h"
#include "nf/rate_limiter.h"
#include "nf/router.h"

namespace sfp::nf {

const char* NfShortName(NfType type) {
  switch (type) {
    case NfType::kFirewall:
      return "fw";
    case NfType::kLoadBalancer:
      return "lb";
    case NfType::kClassifier:
      return "tc";
    case NfType::kRouter:
      return "rt";
    case NfType::kRateLimiter:
      return "rl";
    case NfType::kNat:
      return "nat";
  }
  return "??";
}

const char* NfFullName(NfType type) {
  switch (type) {
    case NfType::kFirewall:
      return "Firewall";
    case NfType::kLoadBalancer:
      return "LoadBalancer";
    case NfType::kClassifier:
      return "TrafficClassifier";
    case NfType::kRouter:
      return "Router";
    case NfType::kRateLimiter:
      return "RateLimiter";
    case NfType::kNat:
      return "NAT";
  }
  return "Unknown";
}

switchsim::compiler::ActionTraits NetworkFunction::TraitsOf(const std::string&) const {
  return switchsim::compiler::ActionTraits::Opaque();
}

std::unique_ptr<NetworkFunction> MakeNf(NfType type) {
  switch (type) {
    case NfType::kFirewall:
      return std::make_unique<Firewall>();
    case NfType::kLoadBalancer:
      return std::make_unique<LoadBalancer>();
    case NfType::kClassifier:
      return std::make_unique<Classifier>();
    case NfType::kRouter:
      return std::make_unique<Router>();
    case NfType::kRateLimiter:
      return std::make_unique<RateLimiter>();
    case NfType::kNat:
      return std::make_unique<Nat>();
  }
  SFP_CHECK_MSG(false, "unknown NF type");
  return nullptr;
}

void RegisterWithRecVariant(switchsim::MatchActionTable& table, const std::string& name,
                            switchsim::ActionFn fn) {
  table.RegisterAction(name, fn);
  table.RegisterAction(name + "_rec",
                       [fn](net::Packet& packet, switchsim::PacketMeta& meta,
                            const switchsim::ActionArgs& args) {
                         fn(packet, meta, args);
                         if (!meta.dropped) meta.recirculate = true;
                       });
}

}  // namespace sfp::nf
