#include "nf/nat.h"

#include "common/check.h"

namespace sfp::nf {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

std::vector<MatchFieldSpec> Nat::KeySpec() const {
  return {{FieldId::kSrcIp, MatchKind::kExact}};
}

void Nat::BindActions(switchsim::MatchActionTable& table) {
  RegisterWithRecVariant(
      table, "rewrite_src",
      [](net::Packet& packet, switchsim::PacketMeta&, const switchsim::ActionArgs& args) {
        SFP_CHECK_EQ(args.size(), 1u);
        if (packet.ipv4) packet.ipv4->src.value = static_cast<std::uint32_t>(args[0]);
      });
}

NfRule Nat::Translate(net::Ipv4Address internal, net::Ipv4Address external) {
  NfRule rule;
  rule.matches = {FieldMatch::Exact(internal.value)};
  rule.action = "rewrite_src";
  rule.args = {external.value};
  return rule;
}

std::vector<NfRule> Nat::GenerateRules(Rng& rng, int count) const {
  std::vector<NfRule> rules;
  rules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto internal = net::Ipv4Address::Of(
        10, static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
        static_cast<std::uint8_t>(rng.UniformInt(0, 255)),
        static_cast<std::uint8_t>(rng.UniformInt(1, 254)));
    const auto external = net::Ipv4Address::Of(
        203, 0, 113, static_cast<std::uint8_t>(rng.UniformInt(1, 254)));
    rules.push_back(Translate(internal, external));
  }
  return rules;
}

switchsim::compiler::ActionTraits Nat::TraitsOf(const std::string& action) const {
  using switchsim::compiler::ActionTraits;
  if (action == "rewrite_src") return ActionTraits::SetSrcIp();
  return ActionTraits::Opaque();
}

}  // namespace sfp::nf
