#include "nf/rate_limiter.h"

#include <algorithm>

#include "common/check.h"

namespace sfp::nf {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

std::vector<MatchFieldSpec> RateLimiter::KeySpec() const {
  return {
      {FieldId::kSrcIp, MatchKind::kTernary},
      {FieldId::kFlowClass, MatchKind::kTernary},
  };
}

void RateLimiter::BindActions(switchsim::MatchActionTable& table) {
  RegisterWithRecVariant(
      table, "police",
      [this](net::Packet& packet, switchsim::PacketMeta& meta,
             const switchsim::ActionArgs& args) {
        SFP_CHECK_EQ(args.size(), 1u);
        std::lock_guard<std::mutex> lock(mutex_);
        SFP_CHECK_LT(args[0], buckets_.size());
        Bucket& bucket = buckets_[static_cast<std::size_t>(args[0])];
        // Refill since the last packet, capped at the burst capacity.
        const double elapsed_ns = std::max(0.0, meta.time_ns - bucket.last_ns);
        bucket.tokens_bits = std::min(bucket.capacity_bits,
                                      bucket.tokens_bits + elapsed_ns * bucket.rate_bits_per_ns);
        bucket.last_ns = std::max(bucket.last_ns, meta.time_ns);
        const double bits = packet.WireBytes() * 8.0;
        if (bucket.tokens_bits >= bits) {
          bucket.tokens_bits -= bits;
        } else {
          meta.dropped = true;
          ++drops_;
        }
      });
}

std::uint64_t RateLimiter::AddBucket(double rate_mbps, double burst_kb) {
  SFP_CHECK_GT(rate_mbps, 0.0);
  SFP_CHECK_GT(burst_kb, 0.0);
  Bucket bucket;
  bucket.rate_bits_per_ns = rate_mbps * 1e6 / 1e9;
  bucket.capacity_bits = burst_kb * 8e3;
  bucket.tokens_bits = bucket.capacity_bits;  // start full
  std::lock_guard<std::mutex> lock(mutex_);
  buckets_.push_back(bucket);
  return buckets_.size() - 1;
}

NfRule RateLimiter::Police(std::uint32_t src_ip, std::uint32_t mask,
                           std::uint64_t limiter_id) {
  NfRule rule;
  rule.matches = {FieldMatch::Ternary(src_ip, mask), FieldMatch::Any()};
  rule.action = "police";
  rule.args = {limiter_id};
  return rule;
}

std::vector<NfRule> RateLimiter::GenerateRules(Rng& rng, int count) const {
  std::vector<NfRule> rules;
  rules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const std::uint32_t src =
        static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFF)) << 16;
    // Workload-generation rules reference bucket 0; real deployments
    // allocate buckets via AddBucket before installing rules.
    rules.push_back(Police(src, 0xFFFF0000, 0));
  }
  return rules;
}

switchsim::compiler::ActionTraits RateLimiter::TraitsOf(const std::string& action) const {
  using switchsim::compiler::ActionTraits;
  // police mutates the shared token bucket and may drop, but writes no
  // matchable field and reads only the packet's size and timestamp
  // (neither is writable by any action). stateful: its verdict depends
  // on which packets drained the bucket before, so the pass packer
  // must not reorder it relative to dropping actions.
  if (action == "police") {
    return ActionTraits::Opaque(switchsim::compiler::kNoFields, /*may_drop=*/true,
                                switchsim::compiler::kNoFields, /*stateful=*/true);
  }
  return ActionTraits::Opaque();
}

}  // namespace sfp::nf
