// Network function library.
//
// Each NF follows the P4 behavioural style of §II-B: a match key over
// header/metadata fields plus a small set of actions. An NF object
// knows how to (a) declare its key, (b) bind its action implementations
// onto a MatchActionTable (each action also gets a "_rec" variant that
// additionally requests recirculation — the REC argument of §IV), and
// (c) synthesize plausible rules for workload generation.
//
// NF instances may hold state (load-balancer pools, rate-limiter token
// buckets, NAT bindings); the data plane owns one instance per physical
// NF and the bound actions capture it.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "switchsim/compiler/action_traits.h"
#include "switchsim/table.h"

namespace sfp::nf {

/// The NF types shipped with SFP. The first four are the paper's
/// prototype NFs (§VI-A); rate limiter and NAT are the extensions the
/// background section cites as switch-implementable [11, 13].
enum class NfType : std::uint8_t {
  kFirewall = 0,
  kLoadBalancer = 1,
  kClassifier = 2,
  kRouter = 3,
  kRateLimiter = 4,
  kNat = 5,
};

inline constexpr int kNumNfTypes = 6;

/// Short name used in table names and P4 emission ("fw", "lb", ...).
const char* NfShortName(NfType type);

/// Human-readable name ("Firewall", ...).
const char* NfFullName(NfType type);

/// One logical rule of a tenant's NF configuration, expressed against
/// the NF's own key (without the tenant/pass prefix the data plane
/// prepends when offloading, §IV).
struct NfRule {
  std::vector<switchsim::FieldMatch> matches;
  std::string action;
  switchsim::ActionArgs args;
  int priority = 0;
};

/// A tenant-facing NF configuration: a type plus its rules.
struct NfConfig {
  NfType type = NfType::kFirewall;
  std::vector<NfRule> rules;
};

/// Abstract network function.
class NetworkFunction {
 public:
  virtual ~NetworkFunction() = default;

  virtual NfType type() const = 0;

  /// The NF's match key (header/metadata fields only).
  virtual std::vector<switchsim::MatchFieldSpec> KeySpec() const = 0;

  /// Registers this NF's actions on `table`. For every action "x" a
  /// variant "x_rec" is also registered that performs the same work and
  /// then sets meta.recirculate (the REC argument of §IV).
  virtual void BindActions(switchsim::MatchActionTable& table) = 0;

  /// Generates `count` synthetic rules for workload/testing purposes.
  virtual std::vector<NfRule> GenerateRules(Rng& rng, int count) const = 0;

  /// Compiler traits of the base action `action` (no "_rec" suffix; the
  /// data plane adds the recirculation bit for the rec twins). The
  /// default — fully opaque: may write anything, may drop — is always
  /// correct; NFs override it per action so the pipeline compiler
  /// (switchsim/compiler/) can inline bodies and fuse stages.
  /// Correctness never depends on an override: an opaque action simply
  /// runs the registered callback, exactly as interpreted.
  virtual switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const;
};

/// Factory for the built-in NF types.
std::unique_ptr<NetworkFunction> MakeNf(NfType type);

/// Helper used by NF implementations: registers `fn` under `name` and
/// a recirculating twin under `name` + "_rec".
void RegisterWithRecVariant(switchsim::MatchActionTable& table, const std::string& name,
                            switchsim::ActionFn fn);

}  // namespace sfp::nf
