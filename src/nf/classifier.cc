#include "nf/classifier.h"

#include "common/check.h"

namespace sfp::nf {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

std::vector<MatchFieldSpec> Classifier::KeySpec() const {
  return {
      {FieldId::kSrcIp, MatchKind::kTernary},
      {FieldId::kDstIp, MatchKind::kTernary},
      {FieldId::kDstPort, MatchKind::kRange},
      {FieldId::kIpProto, MatchKind::kTernary},
  };
}

void Classifier::BindActions(switchsim::MatchActionTable& table) {
  RegisterWithRecVariant(
      table, "set_class",
      [](net::Packet&, switchsim::PacketMeta& meta, const switchsim::ActionArgs& args) {
        SFP_CHECK_EQ(args.size(), 1u);
        meta.flow_class = static_cast<std::uint8_t>(args[0]);
      });
}

NfRule Classifier::ClassifyByPort(std::uint16_t dst_port_lo, std::uint16_t dst_port_hi,
                                  std::uint8_t flow_class) {
  NfRule rule;
  rule.matches = {FieldMatch::Any(), FieldMatch::Any(),
                  FieldMatch::Range(dst_port_lo, dst_port_hi), FieldMatch::Any()};
  rule.action = "set_class";
  rule.args = {flow_class};
  return rule;
}

NfRule Classifier::ClassifyBySrc(std::uint32_t src_ip, std::uint32_t mask,
                                 std::uint8_t flow_class) {
  NfRule rule;
  rule.matches = {FieldMatch::Ternary(src_ip, mask), FieldMatch::Any(), FieldMatch::Any(),
                  FieldMatch::Any()};
  rule.action = "set_class";
  rule.args = {flow_class};
  rule.priority = 5;
  return rule;
}

std::vector<NfRule> Classifier::GenerateRules(Rng& rng, int count) const {
  std::vector<NfRule> rules;
  rules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto lo = static_cast<std::uint16_t>(rng.UniformInt(1, 60000));
    const auto hi = static_cast<std::uint16_t>(lo + rng.UniformInt(0, 2000));
    rules.push_back(ClassifyByPort(lo, hi, static_cast<std::uint8_t>(rng.UniformInt(1, 7))));
  }
  return rules;
}

switchsim::compiler::ActionTraits Classifier::TraitsOf(const std::string& action) const {
  using switchsim::compiler::ActionTraits;
  if (action == "set_class") return ActionTraits::SetFlowClass();
  return ActionTraits::Opaque();
}

}  // namespace sfp::nf
