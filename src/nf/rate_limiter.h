// Token-bucket rate limiter (cf. on-switch rate limiters [11]).
//
// Key: ternary src IP + ternary flow class. Action:
// police(limiter_id, rate_mbps, burst_kb) — charges the packet against
// the identified token bucket and drops when the bucket is empty.
// Bucket state is per-NF-instance (switch register memory); time comes
// from PacketMeta::time_ns set by the traffic source.
//
// Buckets are shared across flows, so policing under the batched path
// is serialized by a per-instance mutex: totals are conserved, but
// which packet of two concurrent flows empties a shared bucket depends
// on worker interleaving (the documented batched-vs-scalar exception).
#pragma once

#include <mutex>

#include "nf/nf.h"

namespace sfp::nf {

class RateLimiter : public NetworkFunction {
 public:
  NfType type() const override { return NfType::kRateLimiter; }
  std::vector<switchsim::MatchFieldSpec> KeySpec() const override;
  void BindActions(switchsim::MatchActionTable& table) override;
  std::vector<NfRule> GenerateRules(Rng& rng, int count) const override;
  switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const override;

  /// Allocates a token bucket; returns its limiter id.
  std::uint64_t AddBucket(double rate_mbps, double burst_kb);

  /// Police rule for a source prefix against the given bucket.
  static NfRule Police(std::uint32_t src_ip, std::uint32_t mask, std::uint64_t limiter_id);

  std::uint64_t drops() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return drops_;
  }

 private:
  struct Bucket {
    double rate_bits_per_ns = 0.0;
    double capacity_bits = 0.0;
    double tokens_bits = 0.0;
    double last_ns = 0.0;
  };
  mutable std::mutex mutex_;  // guards buckets_ and drops_
  std::vector<Bucket> buckets_;
  std::uint64_t drops_ = 0;
};

}  // namespace sfp::nf
