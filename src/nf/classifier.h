// Traffic classifier (the paper's 'tc').
//
// Tags packets with a flow class in metadata; downstream NFs (and the
// egress queueing discipline of a real switch) key on the class.
// Key: ternary src/dst IP, range dst port, ternary protocol.
// Action: set_class(class_id).
#pragma once

#include "nf/nf.h"

namespace sfp::nf {

class Classifier : public NetworkFunction {
 public:
  NfType type() const override { return NfType::kClassifier; }
  std::vector<switchsim::MatchFieldSpec> KeySpec() const override;
  void BindActions(switchsim::MatchActionTable& table) override;
  std::vector<NfRule> GenerateRules(Rng& rng, int count) const override;
  switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const override;

  /// Classifies traffic to `dst_port_lo..hi` as `flow_class`.
  static NfRule ClassifyByPort(std::uint16_t dst_port_lo, std::uint16_t dst_port_hi,
                               std::uint8_t flow_class);

  /// Classifies traffic from a source prefix as `flow_class`.
  static NfRule ClassifyBySrc(std::uint32_t src_ip, std::uint32_t mask,
                              std::uint8_t flow_class);
};

}  // namespace sfp::nf
