// Static NAT (source-address translation, cf. gateway NFs [14, 31]).
//
// Key: exact src IP. Action: rewrite_src(new_ip). The reverse
// direction is a second NAT instance keyed on dst IP in a real
// deployment; this module models the outbound half.
#pragma once

#include "nf/nf.h"

namespace sfp::nf {

class Nat : public NetworkFunction {
 public:
  NfType type() const override { return NfType::kNat; }
  std::vector<switchsim::MatchFieldSpec> KeySpec() const override;
  void BindActions(switchsim::MatchActionTable& table) override;
  std::vector<NfRule> GenerateRules(Rng& rng, int count) const override;
  switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const override;

  /// Static binding internal -> external.
  static NfRule Translate(net::Ipv4Address internal, net::Ipv4Address external);
};

}  // namespace sfp::nf
