#include "nf/firewall.h"

namespace sfp::nf {

using switchsim::FieldId;
using switchsim::FieldMatch;
using switchsim::MatchFieldSpec;
using switchsim::MatchKind;

std::vector<MatchFieldSpec> Firewall::KeySpec() const {
  return {
      {FieldId::kSrcIp, MatchKind::kTernary},   {FieldId::kDstIp, MatchKind::kTernary},
      {FieldId::kSrcPort, MatchKind::kRange},   {FieldId::kDstPort, MatchKind::kRange},
      {FieldId::kIpProto, MatchKind::kTernary},
  };
}

void Firewall::BindActions(switchsim::MatchActionTable& table) {
  RegisterWithRecVariant(table, "allow",
                         [](net::Packet&, switchsim::PacketMeta&,
                            const switchsim::ActionArgs&) {});
  RegisterWithRecVariant(table, "deny",
                         [](net::Packet&, switchsim::PacketMeta& meta,
                            const switchsim::ActionArgs&) { meta.dropped = true; });
}

NfRule Firewall::Deny(FieldMatch src_ip, FieldMatch dst_ip, FieldMatch src_port,
                      FieldMatch dst_port, FieldMatch proto, int priority) {
  NfRule rule;
  rule.matches = {src_ip, dst_ip, src_port, dst_port, proto};
  rule.action = "deny";
  rule.priority = priority;
  return rule;
}

NfRule Firewall::Allow(FieldMatch src_ip, FieldMatch dst_ip, FieldMatch src_port,
                       FieldMatch dst_port, FieldMatch proto, int priority) {
  NfRule rule;
  rule.matches = {src_ip, dst_ip, src_port, dst_port, proto};
  rule.action = "allow";
  rule.priority = priority;
  return rule;
}

std::vector<NfRule> Firewall::GenerateRules(Rng& rng, int count) const {
  std::vector<NfRule> rules;
  rules.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    // Mostly deny rules over random /24-masked sources and port ranges,
    // mixed with a few allows, mimicking ACL-style configs.
    const std::uint32_t src =
        static_cast<std::uint32_t>(rng.UniformInt(0, 0xFFFFFF)) << 8;
    const std::uint16_t port_lo = static_cast<std::uint16_t>(rng.UniformInt(1, 60000));
    const std::uint16_t port_hi =
        static_cast<std::uint16_t>(port_lo + rng.UniformInt(0, 5000));
    const bool deny = rng.Bernoulli(0.8);
    auto rule = deny ? Deny(FieldMatch::Ternary(src, 0xFFFFFF00), FieldMatch::Any(),
                            FieldMatch::Any(), FieldMatch::Range(port_lo, port_hi),
                            FieldMatch::Any())
                     : Allow(FieldMatch::Ternary(src, 0xFFFFFF00), FieldMatch::Any(),
                             FieldMatch::Any(), FieldMatch::Range(port_lo, port_hi),
                             FieldMatch::Any());
    rules.push_back(std::move(rule));
  }
  return rules;
}

switchsim::compiler::ActionTraits Firewall::TraitsOf(const std::string& action) const {
  using switchsim::compiler::ActionTraits;
  if (action == "allow") return ActionTraits::Noop();
  if (action == "deny") return ActionTraits::Drop();
  return ActionTraits::Opaque();
}

}  // namespace sfp::nf
