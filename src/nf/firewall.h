// Stateless 5-tuple firewall (the paper's 'fw', cf. P4Guard [12]).
//
// Key: ternary src/dst IP, port ranges, ternary protocol.
// Actions: allow (pass), deny (drop). Default: allow.
#pragma once

#include "nf/nf.h"

namespace sfp::nf {

class Firewall : public NetworkFunction {
 public:
  NfType type() const override { return NfType::kFirewall; }
  std::vector<switchsim::MatchFieldSpec> KeySpec() const override;
  void BindActions(switchsim::MatchActionTable& table) override;
  std::vector<NfRule> GenerateRules(Rng& rng, int count) const override;
  switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const override;

  /// Builds a deny rule for an exact 5-tuple-ish pattern: any field can
  /// be wildcarded by passing FieldMatch::Any().
  static NfRule Deny(switchsim::FieldMatch src_ip, switchsim::FieldMatch dst_ip,
                     switchsim::FieldMatch src_port, switchsim::FieldMatch dst_port,
                     switchsim::FieldMatch proto, int priority = 10);

  /// Allow rule (useful to punch holes above a broad deny).
  static NfRule Allow(switchsim::FieldMatch src_ip, switchsim::FieldMatch dst_ip,
                      switchsim::FieldMatch src_port, switchsim::FieldMatch dst_port,
                      switchsim::FieldMatch proto, int priority = 20);
};

}  // namespace sfp::nf
