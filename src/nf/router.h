// LPM router (the paper's 'rt').
//
// Key: dst IP (LPM). Action: route(egress_port) — selects the output
// port and decrements TTL; packets whose TTL hits zero are dropped.
#pragma once

#include "nf/nf.h"

namespace sfp::nf {

class Router : public NetworkFunction {
 public:
  NfType type() const override { return NfType::kRouter; }
  std::vector<switchsim::MatchFieldSpec> KeySpec() const override;
  void BindActions(switchsim::MatchActionTable& table) override;
  std::vector<NfRule> GenerateRules(Rng& rng, int count) const override;
  switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const override;

  /// Route rule: prefix/len -> egress port.
  static NfRule Route(std::uint32_t prefix, int prefix_len, std::int32_t egress_port);
};

}  // namespace sfp::nf
