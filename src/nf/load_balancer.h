// L4 load balancer (the paper's 'lb', cf. SilkRoad [10]).
//
// The P4 example of Fig. 2 uses three tables: 'tab_lb' (explicit
// VIP->DIP rules users install), and a hash fallback through
// 'tab_lbhash' + 'tab_lbselect'. The physical-NF form collapses the
// fallback into the 'pool_select' action: it hashes the 5-tuple and
// picks a DIP from a registered backend pool — the same observable
// behaviour with one big table, per the §VII "Multiple-table NFs"
// simplification. The standalone 3-table composition is demonstrated
// in examples/p4_codegen.cc.
//
// Key: exact dst IP (VIP) + exact dst port.
// Actions: set_backend(dip) — explicit rule; pool_select(pool_id) —
// flow-affine hash selection.
#pragma once

#include "nf/nf.h"

namespace sfp::nf {

class LoadBalancer : public NetworkFunction {
 public:
  NfType type() const override { return NfType::kLoadBalancer; }
  std::vector<switchsim::MatchFieldSpec> KeySpec() const override;
  void BindActions(switchsim::MatchActionTable& table) override;
  std::vector<NfRule> GenerateRules(Rng& rng, int count) const override;
  switchsim::compiler::ActionTraits TraitsOf(const std::string& action) const override;

  /// Registers a backend pool; returns its id for pool_select rules.
  /// Pools are append-only for the NF instance's lifetime.
  std::uint64_t AddPool(std::vector<net::Ipv4Address> backends);

  const std::vector<net::Ipv4Address>& pool(std::uint64_t id) const {
    return pools_[static_cast<std::size_t>(id)];
  }
  std::size_t num_pools() const { return pools_.size(); }

  /// Explicit VIP:port -> DIP rule ('tab_lb' semantics).
  static NfRule SetBackend(net::Ipv4Address vip, std::uint16_t vport,
                           net::Ipv4Address dip);

  /// Hash-select rule over a pool ('tab_lbhash' + 'tab_lbselect').
  static NfRule PoolSelect(net::Ipv4Address vip, std::uint16_t vport,
                           std::uint64_t pool_id);

 private:
  std::vector<std::vector<net::Ipv4Address>> pools_;
};

}  // namespace sfp::nf
