// P4-16-style source emission for a composed SFP pipeline.
//
// The paper prototypes its NFs in P4 and chains them in one program
// (§II-B, Fig. 2). This module renders the simulator's current
// physical layout as a human-readable P4-16-like program: header/
// metadata declarations, a parser, one table per physical NF (with the
// tenant/pass key prefix), and an apply block that walks the stages and
// ends with the recirculation primitive. The output is documentation-
// grade P4 (it is not fed to a real compiler in this repo), and it is
// exercised by examples/p4_codegen.
#pragma once

#include <string>

#include "dataplane/data_plane.h"

namespace sfp::p4gen {

/// Renders the full program for the data plane's current layout.
std::string EmitProgram(const dataplane::DataPlane& dp, const std::string& program_name);

/// Renders only the table declaration for one NF type (unit-testable
/// building block).
std::string EmitTableDecl(nf::NfType type, int stage);

/// Renders the standalone 3-table load balancer of Fig. 2 ('tab_lb' +
/// 'tab_lbhash' + 'tab_lbselect'), demonstrating the multi-table NF
/// the §VII simplification collapses.
std::string EmitFig2LoadBalancer();

}  // namespace sfp::p4gen
