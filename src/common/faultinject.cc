#include "common/faultinject.h"

namespace sfp::common::faultinject {
namespace {

/// Stable 64-bit FNV-1a over the point name, so every point derives the
/// same RNG stream for a given plan seed on every platform.
std::uint64_t Fnv1a(const std::string& text) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

const char* TriggerName(Trigger trigger) {
  switch (trigger) {
    case Trigger::kNever: return "never";
    case Trigger::kAlways: return "always";
    case Trigger::kProbability: return "probability";
    case Trigger::kNth: return "nth";
    case Trigger::kEveryNth: return "every-nth";
  }
  return "?";
}

FaultSpec FaultSpec::Always(std::string point, std::uint64_t max_fires) {
  FaultSpec spec;
  spec.point = std::move(point);
  spec.trigger = Trigger::kAlways;
  spec.max_fires = max_fires;
  return spec;
}

FaultSpec FaultSpec::Probability(std::string point, double p) {
  FaultSpec spec;
  spec.point = std::move(point);
  spec.trigger = Trigger::kProbability;
  spec.probability = p;
  return spec;
}

FaultSpec FaultSpec::Nth(std::string point, std::uint64_t n) {
  FaultSpec spec;
  spec.point = std::move(point);
  spec.trigger = Trigger::kNth;
  spec.n = n;
  return spec;
}

FaultSpec FaultSpec::EveryNth(std::string point, std::uint64_t n) {
  FaultSpec spec;
  spec.point = std::move(point);
  spec.trigger = Trigger::kEveryNth;
  spec.n = n;
  return spec;
}

std::atomic<bool> Registry::armed_flag_{false};

Registry& Registry::Instance() {
  static Registry* registry = new Registry();  // never destroyed
  return *registry;
}

void Registry::Arm(const FaultPlan& plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  seed_ = plan.seed;
  plan_ = plan.faults;
  points_.clear();
  armed_flag_.store(true, std::memory_order_relaxed);
}

void Registry::Disarm() {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_flag_.store(false, std::memory_order_relaxed);
  plan_.clear();
  points_.clear();
}

Registry::PointState& Registry::FindOrCreate(const std::string& point) {
  auto it = points_.find(point);
  if (it != points_.end()) return it->second;
  PointState state;
  for (const FaultSpec& spec : plan_) {
    if (spec.point == point) {
      state.spec = spec;
      break;
    }
  }
  state.spec.point = point;  // unlisted points keep Trigger::kNever
  state.rng = Rng(seed_ ^ Fnv1a(point));
  return points_.emplace(point, std::move(state)).first->second;
}

bool Registry::ShouldFail(const char* point) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!armed_flag_.load(std::memory_order_relaxed)) return false;
  PointState& state = FindOrCreate(point);
  const std::uint64_t hit = ++state.stats.hits;

  bool fire = false;
  switch (state.spec.trigger) {
    case Trigger::kNever:
      break;
    case Trigger::kAlways:
      fire = true;
      break;
    case Trigger::kProbability:
      // Draw even when already capped, so hit #k's decision never
      // depends on the cap.
      fire = state.rng.Bernoulli(state.spec.probability);
      break;
    case Trigger::kNth:
      fire = hit == state.spec.n;
      break;
    case Trigger::kEveryNth:
      fire = state.spec.n > 0 && hit % state.spec.n == 0;
      break;
  }
  if (fire && state.stats.fires >= state.spec.max_fires) fire = false;
  if (fire) {
    ++state.stats.fires;
    state.stats.fired_hits.push_back(hit);
  }
  return fire;
}

PointStats Registry::Stats(const std::string& point) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = points_.find(point);
  return it != points_.end() ? it->second.stats : PointStats{};
}

std::map<std::string, PointStats> Registry::AllStats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, PointStats> stats;
  for (const auto& [name, state] : points_) stats[name] = state.stats;
  return stats;
}

void FaultSchedule::AddWindow(double start, double end, FaultPlan plan) {
  SFP_CHECK_MSG(windows_.size() < 64, "FaultSchedule supports at most 64 windows");
  windows_.push_back({start, end, std::move(plan)});
}

bool FaultSchedule::AdvanceTo(double now) {
  std::uint64_t mask = 0;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (now >= windows_[i].start && now < windows_[i].end) mask |= std::uint64_t{1} << i;
  }
  if (mask == active_mask_) return false;
  active_mask_ = mask;
  if (mask == 0) {
    Registry::Instance().Disarm();
    return true;
  }
  // Merge the active windows: specs concatenate (a point listed twice
  // keeps the first window's rule — Arm() installs first-match-wins
  // per point via FindOrCreate) and the seed mixes every active
  // window's seed with its index, so any distinct active set draws
  // from a distinct, reproducible stream.
  FaultPlan merged;
  merged.seed = 0x5CEDFA17u;
  for (std::size_t i = 0; i < windows_.size(); ++i) {
    if (!(mask & (std::uint64_t{1} << i))) continue;
    merged.seed = merged.seed * 1099511628211ULL ^ (windows_[i].plan.seed + i);
    for (const FaultSpec& spec : windows_[i].plan.faults) merged.faults.push_back(spec);
  }
  Registry::Instance().Arm(merged);
  return true;
}

void FaultSchedule::Stop() {
  if (active_mask_ == 0) return;
  active_mask_ = 0;
  Registry::Instance().Disarm();
}

}  // namespace sfp::common::faultinject
