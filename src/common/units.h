// Units helpers shared across the library.
//
// Bandwidth is carried as double Gbps (the paper's unit throughout);
// latency as double nanoseconds; memory as integer rule entries and
// blocks. The strong-typedef-free choice keeps the arithmetic in the
// optimizer simple; helpers here centralise the conversions so no module
// hand-rolls 8.0 * 1e9 style constants.
#pragma once

#include <cstdint>

namespace sfp {

constexpr double kBitsPerByte = 8.0;

/// Converts packets/second at a given frame size to Gbps on the wire.
constexpr double PpsToGbps(double pps, int packet_bytes) {
  return pps * packet_bytes * kBitsPerByte / 1e9;
}

/// Converts a Gbps rate at a given frame size to packets/second.
constexpr double GbpsToPps(double gbps, int packet_bytes) {
  return gbps * 1e9 / (packet_bytes * kBitsPerByte);
}

/// Converts CPU cycles at a given clock (GHz) to nanoseconds.
constexpr double CyclesToNanos(double cycles, double clock_ghz) {
  return cycles / clock_ghz;
}

/// Ceiling division for non-negative integers; used for block
/// occupancy (the eq. 11 / eq. 24 ceilings).
constexpr std::int64_t CeilDiv(std::int64_t numerator, std::int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

}  // namespace sfp
