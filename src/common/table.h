// Aligned plain-text table printer used by the benchmark harnesses to
// emit the rows/series of each paper figure, plus CSV export so results
// can be re-plotted.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace sfp {

/// Column-aligned text table. Cells are strings; numeric helpers format
/// with a fixed precision. Rendered with a header rule, suitable for
/// pasting into EXPERIMENTS.md.
class Table {
 public:
  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Starts a new row. Subsequent Add* calls fill it left to right.
  Table& Row();

  /// Appends a string cell to the current row.
  Table& Add(std::string cell);

  /// Appends an integer cell.
  Table& Add(std::int64_t value);

  /// Appends a floating-point cell with `precision` decimals.
  Table& Add(double value, int precision = 1);

  /// Renders the aligned table.
  void Print(std::ostream& os) const;

  /// Renders as CSV (no alignment padding).
  void PrintCsv(std::ostream& os) const;

  /// Number of data rows so far.
  std::size_t NumRows() const { return rows_.size(); }

  /// Raw cells, for machine-readable export (bench JSON).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string FormatDouble(double value, int precision);

}  // namespace sfp
