// Lightweight assertion macros used across the SFP library.
//
// SFP_CHECK* are always-on invariant checks (they survive NDEBUG): a
// violated check indicates a programming error inside the library or a
// caller breaking a documented precondition, and aborts with a message.
// SFP_DCHECK compiles away in release builds and is used on hot paths.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace sfp::detail {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr, const char* msg) {
  std::fprintf(stderr, "SFP_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               msg[0] ? " — " : "", msg);
  std::abort();
}

}  // namespace sfp::detail

#define SFP_CHECK_MSG(cond, msg)                                \
  do {                                                          \
    if (!(cond)) {                                              \
      ::sfp::detail::CheckFailed(__FILE__, __LINE__, #cond, msg); \
    }                                                           \
  } while (0)

#define SFP_CHECK(cond) SFP_CHECK_MSG(cond, "")

#define SFP_CHECK_GE(a, b) SFP_CHECK((a) >= (b))
#define SFP_CHECK_GT(a, b) SFP_CHECK((a) > (b))
#define SFP_CHECK_LE(a, b) SFP_CHECK((a) <= (b))
#define SFP_CHECK_LT(a, b) SFP_CHECK((a) < (b))
#define SFP_CHECK_EQ(a, b) SFP_CHECK((a) == (b))
#define SFP_CHECK_NE(a, b) SFP_CHECK((a) != (b))

#ifndef NDEBUG
#define SFP_DCHECK(cond) SFP_CHECK(cond)
#else
#define SFP_DCHECK(cond) \
  do {                   \
  } while (0)
#endif
