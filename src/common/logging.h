// Minimal leveled logger.
//
// The library itself logs sparingly (solver progress, placement events);
// benches and examples raise the level for narration. The level is
// process-global and can be initialised from the SFP_LOG environment
// variable ("debug", "info", "warn", "error", "off").
#pragma once

#include <sstream>
#include <string>

namespace sfp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns the current process-global log level.
LogLevel GetLogLevel();

/// Sets the process-global log level.
void SetLogLevel(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error"/"off" (case-insensitive).
/// Unknown strings map to kInfo.
LogLevel ParseLogLevel(const std::string& name);

namespace detail {

/// Stream-style log sink; emits on destruction if `level` is enabled.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace sfp

#define SFP_LOG(level) \
  ::sfp::detail::LogMessage(::sfp::LogLevel::level, __FILE__, __LINE__)

#define SFP_LOG_DEBUG SFP_LOG(kDebug)
#define SFP_LOG_INFO SFP_LOG(kInfo)
#define SFP_LOG_WARN SFP_LOG(kWarn)
#define SFP_LOG_ERROR SFP_LOG(kError)
