// Lightweight performance-metrics registry (counters + histograms) with
// a JSON exporter.
//
// The hot paths of the switch simulator bump RelaxedCounters (plain
// relaxed atomics, copyable so counter owners keep value semantics);
// a Registry aggregates named Counters and Histograms and serializes
// them to the machine-readable JSON consumed by the bench harnesses
// (schema documented in docs/METRICS.md). Everything is thread-safe:
// counters and histogram observations use relaxed atomics, name lookup
// uses a mutex only on first registration.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace sfp::common::metrics {

/// Relaxed atomic counter that stays copyable/movable (copies snapshot
/// the value), so aggregates holding one — Pipeline, MatchActionTable —
/// keep their value semantics.
class RelaxedCounter {
 public:
  RelaxedCounter() = default;
  RelaxedCounter(const RelaxedCounter& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  RelaxedCounter& operator=(const RelaxedCounter& other) {
    value_.store(other.value_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  void Add(std::uint64_t delta = 1) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Set(std::uint64_t value) { value_.store(value, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Relaxed atomic double with the same copy semantics as
/// RelaxedCounter (copies snapshot the value). Used for shared
/// virtual-time clocks such as the pipeline's recirculation port.
class RelaxedDouble {
 public:
  RelaxedDouble() = default;
  explicit RelaxedDouble(double value) : value_(value) {}
  RelaxedDouble(const RelaxedDouble& other)
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  RelaxedDouble& operator=(const RelaxedDouble& other) {
    value_.store(other.value_.load(std::memory_order_relaxed), std::memory_order_relaxed);
    return *this;
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  /// CAS primitive for read-modify-write updates (e.g. advancing a
  /// virtual clock to max(now, old) + service).
  bool CompareExchange(double& expected, double desired) {
    return value_.compare_exchange_weak(expected, desired, std::memory_order_relaxed);
  }

 private:
  std::atomic<double> value_{0.0};
};

/// A named monotonic counter owned by a Registry.
class Counter {
 public:
  void Increment(std::uint64_t delta = 1) { value_.Add(delta); }
  /// Overwrites the value — used when snapshotting component-internal
  /// counters (e.g. Pipeline::ExportMetrics) into a registry.
  void Set(std::uint64_t value) { value_.Set(value); }
  std::uint64_t Value() const { return value_.Value(); }

 private:
  RelaxedCounter value_;
};

/// A histogram over fixed upper-bound buckets plus count/sum/min/max.
/// Buckets are non-cumulative; an implicit overflow bucket catches
/// values above the last bound. Observe() is thread-safe.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  std::uint64_t Count() const { return count_.Value(); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  double Min() const;
  double Max() const;
  double Mean() const;
  const std::vector<double>& bounds() const { return bounds_; }
  /// Bucket i counts values <= bounds()[i]; index bounds().size() is
  /// the overflow bucket.
  std::uint64_t BucketCount(std::size_t i) const;

 private:
  std::vector<double> bounds_;                  // ascending upper bounds
  std::vector<RelaxedCounter> buckets_;         // bounds_.size() + 1
  RelaxedCounter count_;
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// `count` bucket bounds starting at `start`, multiplied by `factor`
/// (e.g. ExponentialBounds(1, 2, 12) = 1, 2, 4, ..., 2048).
std::vector<double> ExponentialBounds(double start, double factor, int count);

/// Point-in-time view of a registry's contents (for exporters/tests).
struct CounterSnapshot {
  std::string name;
  std::uint64_t value = 0;
};
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0, min = 0.0, max = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> bucket_counts;  // bounds.size() + 1
};

/// Named counters and histograms. GetCounter/GetHistogram create on
/// first use and return references that stay valid for the registry's
/// lifetime, so hot paths can cache them.
class Registry {
 public:
  Counter& GetCounter(const std::string& name);
  /// `bounds` is only consulted on first creation; empty = the default
  /// exponential layout.
  Histogram& GetHistogram(const std::string& name, std::vector<double> bounds = {});

  std::vector<CounterSnapshot> Counters() const;
  std::vector<HistogramSnapshot> Histograms() const;

  /// Writes `{"counters": {...}, "histograms": {...}}` (the "metrics"
  /// object of the bench JSON schema, docs/METRICS.md).
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& text);

/// Formats a double as a JSON number (finite; non-finite values are
/// clamped to 0 so the output always parses).
std::string JsonNumber(double value);

}  // namespace sfp::common::metrics
