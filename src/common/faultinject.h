// Deterministic, seed-driven fault injection (the chaos-testing
// substrate of the robustness work).
//
// A fault *point* is a named site in the code — e.g.
// "switchsim.table.add_entry" or "dataplane.install_rule" — guarded by
// the SFP_FAULT(name) macro. Production code asks "should this
// operation fail now?" and implements its real degradation path
// (unwind, retry, fall back) when the answer is yes. A *plan* arms the
// process-wide registry with trigger rules per point: always, never,
// fire with probability p, fire on exactly the nth hit, or fire every
// nth hit, each optionally capped by max_fires.
//
// Determinism: every point derives its own RNG stream from
// (plan seed, FNV-1a(point name)) and keeps its own hit counter, so
// whether hit #k of a point fires is a pure function of the plan — the
// same seed reproduces the same fault sequence even when points are
// exercised from multiple threads (per-point decisions are serialized;
// only the interleaving *across* points may vary). The registry records
// which hit indices fired so tests can assert byte-for-byte replay.
//
// Zero cost when disabled: SFP_FAULT first checks a process-wide
// relaxed atomic flag; with no plan armed the macro is a single relaxed
// load and a branch, so fault points may sit on serve paths.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"

namespace sfp::common::faultinject {

/// When a fault point fires.
enum class Trigger : std::uint8_t {
  kNever = 0,     // never fires (default for unlisted points)
  kAlways,        // fires on every hit
  kProbability,   // fires on each hit with probability `probability`
  kNth,           // fires on exactly hit number `n` (1-based)
  kEveryNth,      // fires on every hit whose index is a multiple of `n`
};

const char* TriggerName(Trigger trigger);

/// Trigger rule for one fault point.
struct FaultSpec {
  std::string point;
  Trigger trigger = Trigger::kNever;
  double probability = 0.0;                     // kProbability
  std::uint64_t n = 0;                          // kNth / kEveryNth
  std::uint64_t max_fires = ~std::uint64_t{0};  // cap on total fires

  static FaultSpec Always(std::string point, std::uint64_t max_fires = ~std::uint64_t{0});
  static FaultSpec Probability(std::string point, double p);
  static FaultSpec Nth(std::string point, std::uint64_t n);
  static FaultSpec EveryNth(std::string point, std::uint64_t n);
};

/// A full fault plan: the seed plus one rule per targeted point.
struct FaultPlan {
  std::uint64_t seed = 1;
  std::vector<FaultSpec> faults;
};

/// Observed state of one fault point (for assertions and replay
/// checks). `fired_hits` lists the 1-based hit indices that fired, in
/// firing order — deterministic for a given plan.
struct PointStats {
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  std::vector<std::uint64_t> fired_hits;
};

/// The process-wide fault registry. Thread-safe; all decision state is
/// behind one mutex (only reached when a plan is armed).
class Registry {
 public:
  static Registry& Instance();

  /// Installs `plan` and enables fault evaluation. Replaces any
  /// previous plan and resets all counters.
  void Arm(const FaultPlan& plan);

  /// Clears the plan, all counters and the fired log, and disables
  /// fault evaluation (SFP_FAULT back to one relaxed load).
  void Disarm();

  bool armed() const { return armed_flag_.load(std::memory_order_relaxed); }

  /// Decides whether the current hit of `point` fails. Records the hit
  /// either way. Called via SFP_FAULT only while armed.
  bool ShouldFail(const char* point);

  /// Stats for one point (zeros if never hit).
  PointStats Stats(const std::string& point) const;

  /// Stats for every point hit since Arm(), keyed by name. Comparing
  /// two runs' maps checks deterministic replay.
  std::map<std::string, PointStats> AllStats() const;

  /// Fast armed check for the SFP_FAULT macro.
  static bool FastArmed() { return armed_flag_.load(std::memory_order_relaxed); }

  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  Registry() = default;

  struct PointState {
    FaultSpec spec;
    Rng rng{0};
    PointStats stats;
  };

  PointState& FindOrCreate(const std::string& point);

  static std::atomic<bool> armed_flag_;
  mutable std::mutex mutex_;
  std::uint64_t seed_ = 1;
  std::vector<FaultSpec> plan_;
  std::map<std::string, PointState> points_;
};

/// A time-indexed fault schedule (the scenario runner's storm driver):
/// each window arms its plan while the driver's clock is inside
/// [start, end). AdvanceTo(now) arms the merged plan of every active
/// window (specs concatenated, seeds mixed deterministically from the
/// active-window set) and disarms the registry when none is active.
///
/// Arming resets the registry's per-point hit counters, so fault
/// decisions are a pure function of (active-window set, hits since
/// that set last changed) — a single-threaded driver replaying the
/// same schedule gets byte-identical fault sequences.
class FaultSchedule {
 public:
  /// Registers a window arming `plan` for simulated time
  /// [start, end). At most 64 windows per schedule.
  void AddWindow(double start, double end, FaultPlan plan);

  /// Applies the window set active at `now`. Returns true when the
  /// armed state changed (a window opened or closed).
  bool AdvanceTo(double now);

  /// Disarms the registry if this schedule armed it (end-of-run
  /// cleanup; also safe when nothing is armed).
  void Stop();

  /// True while at least one window is armed.
  bool active() const { return active_mask_ != 0; }
  std::size_t windows() const { return windows_.size(); }

 private:
  struct Window {
    double start;
    double end;
    FaultPlan plan;
  };
  std::vector<Window> windows_;
  /// Bitmask of the currently armed windows.
  std::uint64_t active_mask_ = 0;
};

/// RAII helper: arms `plan` on construction, disarms on destruction.
class ScopedFaultPlan {
 public:
  explicit ScopedFaultPlan(const FaultPlan& plan) { Registry::Instance().Arm(plan); }
  ~ScopedFaultPlan() { Registry::Instance().Disarm(); }
  ScopedFaultPlan(const ScopedFaultPlan&) = delete;
  ScopedFaultPlan& operator=(const ScopedFaultPlan&) = delete;
};

}  // namespace sfp::common::faultinject

/// True if the named fault point should fail now. One relaxed atomic
/// load when no plan is armed.
#define SFP_FAULT(point)                                \
  (::sfp::common::faultinject::Registry::FastArmed() && \
   ::sfp::common::faultinject::Registry::Instance().ShouldFail(point))
