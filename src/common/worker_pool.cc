#include "common/worker_pool.h"

#include <algorithm>
#include <cstdlib>

namespace sfp::common {

int DefaultParallelism() {
  if (const char* env = std::getenv("SFP_WORKER_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hardware = std::thread::hardware_concurrency();
  return std::clamp(static_cast<int>(hardware), 1, 8);
}

WorkerPool::WorkerPool(int num_threads) {
  const int pool_threads = std::max(0, num_threads - 1);
  threads_.reserve(static_cast<std::size_t>(pool_threads));
  for (int i = 0; i < pool_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& thread : threads_) thread.join();
}

void WorkerPool::WorkerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* task = nullptr;
    int count = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      task = task_;
      count = count_;
    }
    // The job may already be fully claimed (or retired) by the time
    // this worker wakes; the cursor check below handles both.
    if (task == nullptr) continue;
    for (int i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
         i = next_.fetch_add(1, std::memory_order_relaxed)) {
      (*task)(i);
      if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == count) {
        std::lock_guard<std::mutex> lock(mutex_);
        done_cv_.notify_all();
      }
    }
  }
}

void WorkerPool::ParallelFor(int count, const std::function<void(int)>& task) {
  if (count <= 0) return;
  std::lock_guard<std::mutex> serialize(job_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    task_ = &task;
    count_ = count;
    next_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    ++generation_;
  }
  work_cv_.notify_all();
  // The caller is a worker too: claim indices until none remain.
  for (int i = next_.fetch_add(1, std::memory_order_relaxed); i < count;
       i = next_.fetch_add(1, std::memory_order_relaxed)) {
    task(i);
    completed_.fetch_add(1, std::memory_order_acq_rel);
  }
  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [&] { return completed_.load(std::memory_order_acquire) == count; });
  task_ = nullptr;
}

WorkerPool& WorkerPool::Shared() {
  static WorkerPool pool(DefaultParallelism());
  return pool;
}

}  // namespace sfp::common
