// Wall-clock stopwatch used for solver time limits and bench timing.
#pragma once

#include <chrono>

namespace sfp {

/// Monotonic stopwatch. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch at zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time in seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace sfp
