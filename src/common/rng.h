// Deterministic random number generation for workload synthesis and the
// randomized-rounding approximation.
//
// Every stochastic component in the library takes an explicit Rng so
// experiments are reproducible from a single seed. The engine is
// splitmix64-seeded xoshiro256**, which is fast, high-quality and
// stable across platforms (unlike std::mt19937 distributions whose
// outputs are not specified bit-exactly across standard libraries, the
// distribution code here is ours and therefore reproducible).
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace sfp {

/// xoshiro256** PRNG with helper distributions used by SFP.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit lanes via splitmix64 so that nearby seeds
  /// yield uncorrelated streams.
  explicit Rng(std::uint64_t seed = 0x5F0C0FFEEULL);

  /// UniformRandomBitGenerator interface (usable with <random> too).
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }
  result_type operator()() { return Next(); }

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [0, 1).
  double UniformDouble();

  /// Uniform real in [lo, hi).
  double UniformDouble(double lo, double hi);

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p);

  /// Pareto(shape, scale) draw: long-tail distribution used for per-SFC
  /// bandwidth demands (§VI-A: "the bandwidth requirement of each NF
  /// follows the long-tail distribution").
  double Pareto(double shape, double scale);

  /// Exponential draw with the given mean (> 0).
  double Exponential(double mean);

  /// Index in [0, weights.size()) drawn proportionally to weights.
  /// Requires at least one strictly positive weight.
  std::size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child stream; used to hand sub-components
  /// their own generator without sharing state.
  Rng Fork();

 private:
  std::uint64_t state_[4];
};

}  // namespace sfp
