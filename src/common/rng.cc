#include "common/rng.h"

#include <limits>

namespace sfp {
namespace {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& lane : state_) lane = SplitMix64(sm);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  SFP_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) {  // full 64-bit range
    return static_cast<std::int64_t>(Next());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() -
                              std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t draw = Next();
  while (draw >= limit) draw = Next();
  return lo + static_cast<std::int64_t>(draw % span);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  SFP_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Pareto(double shape, double scale) {
  SFP_CHECK_GT(shape, 0.0);
  SFP_CHECK_GT(scale, 0.0);
  double u = UniformDouble();
  // Guard against u == 0 which would yield +inf.
  if (u <= 0.0) u = 0x1.0p-53;
  return scale / std::pow(u, 1.0 / shape);
}

double Rng::Exponential(double mean) {
  SFP_CHECK_GT(mean, 0.0);
  double u = UniformDouble();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    SFP_CHECK_GE(w, 0.0);
    total += w;
  }
  SFP_CHECK_GT(total, 0.0);
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace sfp
