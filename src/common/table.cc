#include "common/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace sfp {

std::string FormatDouble(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SFP_CHECK(!headers_.empty());
}

Table& Table::Row() {
  rows_.emplace_back();
  return *this;
}

Table& Table::Add(std::string cell) {
  SFP_CHECK_MSG(!rows_.empty(), "call Row() before Add()");
  SFP_CHECK_LT(rows_.back().size(), headers_.size());
  rows_.back().push_back(std::move(cell));
  return *this;
}

Table& Table::Add(std::int64_t value) { return Add(std::to_string(value)); }

Table& Table::Add(double value, int precision) {
  return Add(FormatDouble(value, precision));
}

void Table::Print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string();
      os << (c == 0 ? "" : "  ");
      os << cell << std::string(widths[c] - cell.size(), ' ');
    }
    os << "\n";
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) total += widths[c] + (c ? 2 : 0);
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) emit_row(row);
}

void Table::PrintCsv(std::ostream& os) const {
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c == 0 ? "" : ",") << cells[c];
    }
    os << "\n";
  };
  emit_row(headers_);
  for (const auto& row : rows_) emit_row(row);
}

}  // namespace sfp
