#include "common/logging.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace sfp {
namespace {

std::atomic<int>& LevelStorage() {
  static std::atomic<int> level{[] {
    const char* env = std::getenv("SFP_LOG");
    if (env == nullptr) return static_cast<int>(LogLevel::kWarn);
    return static_cast<int>(ParseLogLevel(env));
  }()};
  return level;
}

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return static_cast<LogLevel>(LevelStorage().load()); }

void SetLogLevel(LogLevel level) { LevelStorage().store(static_cast<int>(level)); }

LogLevel ParseLogLevel(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return LogLevel::kInfo;
}

namespace detail {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(static_cast<int>(level) >= static_cast<int>(GetLogLevel())) {
  if (!enabled_) return;
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelTag(level) << " " << (base ? base + 1 : file) << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  stream_ << "\n";
  std::fputs(stream_.str().c_str(), stderr);
}

}  // namespace detail
}  // namespace sfp
