// Small persistent worker pool used by the batched packet-processing
// path (switchsim::Pipeline::ProcessBatch) and the parallel
// branch & bound tree search (lp::MipSolver with deterministic off,
// which runs one long-lived worker task per index).
//
// ParallelFor(count, task) runs task(0..count-1) across the pool's
// threads *and* the calling thread, returning once every index has
// finished. Indices are claimed with an atomic cursor, so the pool
// works correctly with any thread count — including zero pool threads,
// where the caller simply runs every index itself. One job runs at a
// time; concurrent ParallelFor callers serialize. Do not call
// ParallelFor from inside a task (it would self-deadlock).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace sfp::common {

/// Default shard/thread count for batched processing: the hardware
/// concurrency clamped to [1, 8], overridable with SFP_WORKER_THREADS.
int DefaultParallelism();

class WorkerPool {
 public:
  /// Spawns `num_threads - 1` worker threads (the caller of ParallelFor
  /// is the remaining worker).
  explicit WorkerPool(int num_threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Threads participating in a ParallelFor (pool threads + caller).
  int num_threads() const { return static_cast<int>(threads_.size()) + 1; }

  /// Runs task(i) for every i in [0, count) and waits for completion.
  void ParallelFor(int count, const std::function<void(int)>& task);

  /// Process-wide pool sized by DefaultParallelism(), created on first
  /// use.
  static WorkerPool& Shared();

 private:
  void WorkerLoop();

  std::mutex mutex_;
  std::condition_variable work_cv_;  // signals workers: a new job exists
  std::condition_variable done_cv_;  // signals the caller: job finished
  const std::function<void(int)>* task_ = nullptr;  // guarded by mutex_
  int count_ = 0;                                   // guarded by mutex_
  std::uint64_t generation_ = 0;                    // guarded by mutex_
  bool stop_ = false;                               // guarded by mutex_
  std::atomic<int> next_{0};       // next unclaimed index
  std::atomic<int> completed_{0};  // indices finished
  std::mutex job_mutex_;           // serializes ParallelFor callers
  std::vector<std::thread> threads_;
};

}  // namespace sfp::common
